// Persist-cost-per-lifecycle-event at increasing registry sizes, fsync
// included — the measurement behind the durable-backend section of
// docs/PERFORMANCE.md. The file backend rewrites the merged registry per
// event (O(registry)); the segmented log appends one framed record
// (O(event)), so its cost is flat in the number of sites. Not part of
// the tracked bench gate (disk-bound): run with
// go test -run '^$' -bench PersistEvent -benchmem .
package autowrap_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"autowrap/internal/lr"
	"autowrap/internal/store"
	"autowrap/internal/store/filestore"
	"autowrap/internal/store/logstore"
)

func seedN(b *testing.B, n int) *store.Store {
	st := store.New()
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("site-%04d.example.com", i)
		if _, err := st.Put(site, &lr.Compiled{Left: `<div class="a">`, Right: `</div>`}, store.Meta{}); err != nil {
			b.Fatal(err)
		}
		if _, err := st.PutCandidate(site, &lr.Compiled{Left: `<div class="b">`, Right: `</div>`}, store.Meta{}); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

func BenchmarkFilePersistEvent(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("sites=%d", n), func(b *testing.B) {
			st := seedN(b, n)
			fb, err := filestore.Open(filepath.Join(b.TempDir(), "wrappers.json"))
			if err != nil {
				b.Fatal(err)
			}
			fb.Attach(0, st)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					err = fb.AppendPromotion(0, "site-0000.example.com", store.OpPromote, 2)
				} else {
					err = fb.AppendPromotion(0, "site-0000.example.com", store.OpRollback, 0)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLogPersistEvent(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("sites=%d", n), func(b *testing.B) {
			st := seedN(b, n)
			lb, err := logstore.Open(b.TempDir(), logstore.Options{SegmentBytes: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			defer lb.Close()
			if err := lb.SeedFrom(st); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					err = lb.AppendPromotion(0, "site-0000.example.com", store.OpPromote, 2)
				} else {
					err = lb.AppendPromotion(0, "site-0000.example.com", store.OpRollback, 0)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
