package autowrap

import (
	"autowrap/internal/multitype"
	"autowrap/internal/rank"
	"autowrap/internal/single"
)

// SingleEntityResult is the outcome of single-entity learning: all
// top-ranked wrappers (pages often expose the entity in several consistent
// locations — title tag, heading, breadcrumb — and all of them tie).
type SingleEntityResult = single.Result

// SingleEntityOptions configures LearnSingleEntity.
type SingleEntityOptions struct {
	// Enumerator defaults to EnumTopDown.
	Enumerator string
	// MinPageCoverage is the minimum fraction of pages a winner must
	// extract its item on (default 0.5).
	MinPageCoverage float64
}

// LearnSingleEntity learns a wrapper for pages that each contain exactly one
// entity of interest (paper Appendix B.2): the wrapper space is enumerated,
// wrappers extracting more than one item from any page are discarded, and
// the wrappers covering the most labels win. The list-goodness prior does
// not apply to single entities, so no Models are needed.
func LearnSingleEntity(ind Inductor, labels *NodeSet, opt SingleEntityOptions) (*SingleEntityResult, error) {
	return single.Learn(ind, labels, single.Config{
		Enumerator:      opt.Enumerator,
		MinPageCoverage: opt.MinPageCoverage,
	})
}

// RecordType declares one field of a multi-type record extraction.
type RecordType struct {
	// Name identifies the field ("name", "zipcode", ...).
	Name string
	// Annotator produces this field's noisy labels.
	Annotator Annotator
	// P and R are this field's annotation-model parameters; zero values
	// default to 0.95 / 0.30.
	P, R float64
}

// RecordsResult is the outcome of multi-type learning.
type RecordsResult struct {
	// Wrappers holds the chosen wrapper per declared type.
	Wrappers []Wrapper
	// Records are assembled tuples of text contents, one value per type.
	Records [][]string
	// PagesFailed counts pages whose extraction could not be assembled
	// into records.
	PagesFailed int
}

// LearnRecords jointly learns one wrapper per record field and assembles
// records from the interleaved extractions (paper Appendix A). Between two
// consecutive nodes of the first type there must be exactly one node of
// every other type; pages violating this produce no records.
func LearnRecords(c *Corpus, m *Models, types ...RecordType) (*RecordsResult, error) {
	mts := make([]multitype.Type, len(types))
	for i, t := range types {
		p, r := t.P, t.R
		if p == 0 {
			p = 0.95
		}
		if r == 0 {
			r = 0.30
		}
		mts[i] = multitype.Type{
			Name:     t.Name,
			Inductor: NewXPathInductor(c),
			Labels:   t.Annotator.Annotate(c),
			Ann:      rank.NewAnnotationModel(p, r),
		}
	}
	res, err := multitype.Learn(c, mts, multitype.Config{Pub: m.Pub})
	if err != nil {
		return nil, err
	}
	out := &RecordsResult{}
	if res.Best == nil {
		return out, nil
	}
	out.Wrappers = append(out.Wrappers, res.Best.Wrappers...)
	out.PagesFailed = res.Best.PagesFailed
	for _, rec := range res.Best.Records {
		row := make([]string, len(rec))
		for i, ord := range rec {
			if ord >= 0 {
				row[i] = c.TextContent(ord)
			}
		}
		out.Records = append(out.Records, row)
	}
	return out, nil
}
