// Package autowrap is a noise-tolerant wrapper induction library for
// structured web extraction, implementing Dalvi, Kumar and Soliman,
// "Automatic Wrappers for Large Scale Web Extraction", PVLDB 4(4), 2011.
//
// Script-generated websites render database records into structurally
// identical pages, so a small extraction rule (a wrapper) — an xpath or a
// pair of string delimiters — extracts every record from every page of a
// site. Classic wrapper induction needs clean per-site labeled examples;
// autowrap instead accepts cheap noisy annotations (a dictionary of known
// entity names, a regular expression) and still learns the right wrapper:
//
//  1. it enumerates the wrapper space — every distinct wrapper any subset
//     of the noisy labels can produce — with the BottomUp (blackbox) or
//     TopDown (feature-based) algorithms, and
//  2. ranks each candidate by P(labels | wrapper output) · P(output),
//     combining an annotator noise model with a web publication model that
//     scores how list-like the output is (record-segment schema size and
//     alignment under KDE-learned distributions).
//
// Basic use:
//
//	c := autowrap.ParsePages(htmlPages)
//	labels := autowrap.DictionaryAnnotator("brands", knownNames).Annotate(c)
//	res, err := autowrap.Learn(autowrap.NewXPathInductor(c), labels,
//	    autowrap.GenericModels(c), autowrap.Options{})
//	// res.Best.Wrapper.Rule() is an xpath; res.Extraction(c) the node set.
//
// Beyond single-site learning the package exposes the full production
// lifecycle: LearnBatch learns many sites concurrently, Compile and the
// WrapperStore turn winners into versioned portable artifacts, NewExtractor
// serves them to unseen pages, and the maintenance loop (NewMonitor,
// Repairer, WrapperStore.Promote/Rollback) detects template drift from
// serving-time health signals and re-learns tripped sites with validated
// promotion. NewDispatcher and NewServer put all of it behind one HTTP
// service — multi-site dispatch with hot-swapped wrapper versions,
// admission control with backpressure, and drift repair over the wire;
// cmd/wrapserved is the ready-made daemon and cmd/loadgen its load
// harness. See docs/ARCHITECTURE.md for the end-to-end walkthrough.
package autowrap

import (
	"context"
	"fmt"
	"os"

	"autowrap/internal/annotate"
	"autowrap/internal/audit"
	"autowrap/internal/bitset"
	"autowrap/internal/core"
	"autowrap/internal/corpus"
	"autowrap/internal/dom"
	"autowrap/internal/drift"
	"autowrap/internal/engine"
	"autowrap/internal/enum"
	"autowrap/internal/extract"
	"autowrap/internal/htmlparse"
	"autowrap/internal/jobs"
	"autowrap/internal/lr"
	"autowrap/internal/rank"
	"autowrap/internal/segment"
	"autowrap/internal/serve"
	"autowrap/internal/shard"
	"autowrap/internal/stats"
	"autowrap/internal/store"
	"autowrap/internal/store/filestore"
	"autowrap/internal/store/logstore"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// Core types, re-exported from the implementation packages.
type (
	// Corpus is a set of parsed pages from one website; text nodes carry
	// global ordinals used by NodeSet.
	Corpus = corpus.Corpus
	// NodeSet is a set of text-node ordinals (labels, extractions).
	NodeSet = bitset.Set
	// Wrapper is a learned extraction rule.
	Wrapper = wrapper.Wrapper
	// Inductor is a wrapper induction system φ (XPATH, LR, ...).
	Inductor = wrapper.Inductor
	// Annotator produces noisy labels over a corpus.
	Annotator = annotate.Annotator
	// Result is a ranked wrapper space; Result.Best is the learned
	// wrapper.
	Result = core.Result
	// Candidate is one ranked wrapper.
	Candidate = core.Candidate
	// Models bundles the annotation and publication models used for
	// ranking.
	Models = rank.Scorer

	// Engine is the concurrent multi-site batch learner: N sites in,
	// bounded workers, per-site error isolation, aggregate throughput
	// stats. Build one with NewEngine, or use LearnBatch for one-shot
	// batches.
	Engine = engine.Engine
	// BatchSite describes one site of a batch (corpus + annotator or
	// precomputed labels + inductor factory + learning config).
	BatchSite = engine.SiteSpec
	// BatchOptions bounds a batch run (worker count, label threshold,
	// progress callback).
	BatchOptions = engine.Options
	// BatchResult holds one SiteOutcome per input site plus BatchStats.
	BatchResult = engine.BatchResult
	// SiteOutcome is one site's learned result, error, or skip.
	SiteOutcome = engine.SiteResult
	// BatchStats aggregates a batch: learned/failed/skipped counts, wall
	// and serial-equivalent work time, speedup and sites/sec.
	BatchStats = engine.Stats
	// LearnConfig is the per-site learning configuration carried by a
	// BatchSite; build one with NewLearnConfig.
	LearnConfig = core.Config

	// Node is one node of a parsed HTML page; serving-time extraction
	// results reference these.
	Node = dom.Node
	// Portable is a compiled, corpus-independent wrapper: the durable
	// artifact of the learn/serve split. Build one with Compile, persist
	// it with MarshalWrapper or a WrapperStore, apply it to unseen pages
	// with ApplyPage or an Extractor.
	Portable = wrapper.Portable
	// WrapperStore is a versioned registry of compiled wrappers keyed by
	// site, with atomic Save/Load.
	WrapperStore = store.Store
	// StoredWrapper is one immutable version in a WrapperStore.
	StoredWrapper = store.Entry
	// StoredMeta carries provenance (score, label count) into a store Put.
	StoredMeta = store.Meta

	// Extractor is the streaming extraction runtime: pages in, records
	// out, on a bounded worker pool with per-page error isolation.
	Extractor = extract.Runtime
	// ExtractPage is one unit of serving work (raw HTML or parsed Root).
	ExtractPage = extract.Page
	// ExtractResult is one page's extraction outcome.
	ExtractResult = extract.Result
	// ExtractBatch is an Extractor.Run outcome: index-aligned results
	// plus throughput stats.
	ExtractBatch = extract.Batch
	// ExtractStream is a running streaming extraction (Extractor.Stream).
	ExtractStream = extract.Stream
	// ExtractStats aggregates a run: pages/sec, records/sec, speedup.
	ExtractStats = extract.Stats
	// ExtractOptions bounds an Extractor (worker count, stream window) and
	// carries the OnResult health tap a Monitor hooks into.
	ExtractOptions = extract.Options
	// RuntimeHealth is an Extractor's lifetime health snapshot
	// (Extractor.Health): pages, failures, empties, records.
	RuntimeHealth = extract.HealthCounts

	// Monitor aggregates serving-time health signals per site and trips a
	// site when its sliding window violates the HealthPolicy — the
	// detection half of the wrapper-maintenance loop. Build one with
	// NewMonitor.
	Monitor = drift.Monitor
	// SiteHealth is one monitored site's sliding-window state; wire its
	// Observe method into ExtractOptions.OnResult.
	SiteHealth = drift.SiteHealth
	// HealthPolicy configures when a site trips (window size, empty and
	// failure fractions, record-count collapse vs. the learn-time
	// profile).
	HealthPolicy = drift.Policy
	// HealthStats is a point-in-time snapshot of one site's window.
	HealthStats = drift.Stats
	// WrapperProfile is the learn-time extraction footprint stored with a
	// wrapper version; drift detection is calibrated against it.
	WrapperProfile = store.Profile
	// Repairer is the response half of the loop: re-learn a tripped site
	// on fresh pages, stage the winner as a new store version, and promote
	// it only after it beats the incumbent on a held-out sample.
	Repairer = drift.Repairer
	// RepairReport is one repair attempt's outcome.
	RepairReport = drift.Report
	// RepairEval summarizes a wrapper's held-out validation footprint.
	RepairEval = drift.Eval
	// RelearnSpec builds the per-site re-learning recipe a Repairer uses.
	RelearnSpec = drift.LearnSpec

	// Dispatcher routes extraction requests to per-site hot-swappable
	// runtimes, all backed by one WrapperStore: a promote or rollback swaps
	// the served wrapper atomically, without dropping in-flight requests
	// and without a restart. Build one with NewDispatcher.
	Dispatcher = serve.Dispatcher
	// DispatcherOptions bounds a Dispatcher (extraction workers) and wires
	// its drift Monitor.
	DispatcherOptions = serve.Options
	// ServedExtraction is one dispatcher request's outcome: the wrapper
	// version that served it plus per-page results.
	ServedExtraction = serve.Extraction
	// SiteServingStatus is one site's serving state (active vs serving
	// version, epoch, health, drift window, request metrics).
	SiteServingStatus = serve.SiteStatus
	// Server is the HTTP extraction service over a Dispatcher: the
	// /v1/extract hot path behind an AdmissionGate, /healthz, /metrics and
	// the lifecycle admin routes. Build one with NewServer; cmd/wrapserved
	// is the ready-made daemon.
	Server = serve.Server
	// ServerConfig wires a Server (dispatcher, gate, deadlines, repairer).
	ServerConfig = serve.ServerConfig
	// AdmissionGate bounds the serving hot path: a slot semaphore plus a
	// bounded wait queue, shedding overload as 429 + Retry-After instead of
	// collapsing. Build one with NewAdmissionGate.
	AdmissionGate = serve.Gate
	// AdmissionOptions sizes an AdmissionGate.
	AdmissionOptions = serve.GateOptions

	// ShardRing is the consistent-hash ring partitioning site names across
	// a fleet of serving shards: byte-stable across restarts, minimal key
	// movement when the shard count changes. Build one with NewShardRing.
	ShardRing = shard.Ring
	// ShardRouter fronts a fleet of per-shard Servers behind one handler,
	// routing every request to the site's ring owner and aggregating
	// /metrics across the fleet. Build one with NewShardRouter;
	// cmd/wrapserved -shards N is the ready-made fleet daemon.
	ShardRouter = serve.ShardRouter
	// ForwardOptions tunes a forwarding front end built with
	// NewForwardRouter: per-request timeout, body cap, boot-handshake
	// behavior.
	ForwardOptions = serve.ForwardOptions

	// JobManager is the asynchronous maintenance plane: a bounded queue of
	// learn/repair jobs drained by a worker pool isolated from the extract
	// hot path. Build one with NewJobManager; a Server with a Repairer
	// creates a default one.
	JobManager = jobs.Manager
	// JobOptions sizes a JobManager (workers, queue depth, history).
	JobOptions = jobs.Options
	// JobSnapshot is one job's point-in-time public state
	// (queued/running/done/failed/canceled, timings, result).
	JobSnapshot = jobs.Snapshot
	// JobMetrics is the maintenance plane's counters for /metrics.
	JobMetrics = jobs.Metrics
	// Maintainer is the autonomous repair loop: drift trips auto-enqueue
	// rate-limited repair jobs re-learning from recently served pages.
	// Build one with NewMaintainer.
	Maintainer = serve.Maintainer
	// MaintainerOptions tunes the loop (scan interval, per-site rate
	// limit, minimum cached pages).
	MaintainerOptions = serve.MaintainerOptions

	// StoreBackend is the pluggable durability seam under the registry:
	// lifecycle events in, reproduced registries out. FileStoreBackend
	// (OpenFileStore) keeps the original atomic-JSON-file format;
	// LogStoreBackend (OpenLogStore) appends one fsync'd record per
	// event to a segmented, CRC-framed, crash-recovering log.
	StoreBackend = store.Backend
	// StoreOp names one lifecycle mutation on the backend wire
	// (put/candidate/promote/rollback).
	StoreOp = store.Op
	// FileStoreBackend is the atomic-JSON-file StoreBackend.
	FileStoreBackend = filestore.Backend
	// LogStoreBackend is the append-only segmented-log StoreBackend.
	LogStoreBackend = logstore.Backend
	// LogStoreOptions tunes a LogStoreBackend (segment size, fsync).
	LogStoreOptions = logstore.Options
	// AuditLedger is the tamper-evident lifecycle ledger: a hash-chained
	// JSON-lines file with periodic Merkle checkpoints recording every
	// learn/candidate/promote/rollback/drift-trip/auto-repair fleet-wide.
	// Open one with OpenAuditLedger; verify with VerifyAuditLedger.
	AuditLedger = audit.Ledger
	// AuditLedgerOptions tunes an AuditLedger (checkpoint cadence, ring).
	AuditLedgerOptions = audit.Options
	// AuditRecord is one chained ledger entry.
	AuditRecord = audit.Record
	// AuditReport summarizes a verified ledger walk.
	AuditReport = audit.Report
	// AuditStats are the ledger's live counters (under /metrics).
	AuditStats = audit.Stats
)

// Ranking variants (the paper's Sec. 7.3 ablations).
const (
	// VariantNTW uses the full score P(L|X)·P(X).
	VariantNTW = rank.NTW
	// VariantNTWL uses only the annotation term.
	VariantNTWL = rank.NTWL
	// VariantNTWX uses only the publication term.
	VariantNTWX = rank.NTWX
)

// Enumeration algorithm names for Options.Enumerator.
const (
	EnumTopDown  = enum.AlgoTopDown
	EnumBottomUp = enum.AlgoBottomUp
	EnumNaive    = enum.AlgoNaive
)

// Job kinds of the asynchronous maintenance plane (JobManager.Submit).
const (
	JobKindLearn  = jobs.KindLearn
	JobKindRepair = jobs.KindRepair
)

// ZipcodePattern matches five-digit US zipcodes (the Appendix A regexp
// annotator).
const ZipcodePattern = annotate.ZipcodePattern

// ParsePages parses raw HTML pages from one website into a corpus. The
// parser is tolerant: any input produces a tree.
func ParsePages(htmls []string) *Corpus { return corpus.ParseHTML(htmls) }

// ParseFiles reads and parses HTML files from disk.
func ParseFiles(paths []string) (*Corpus, error) {
	htmls := make([]string, len(paths))
	for i, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("autowrap: %w", err)
		}
		htmls[i] = string(b)
	}
	return ParsePages(htmls), nil
}

// DictionaryAnnotator labels every text node containing an exact
// word-boundary mention of a dictionary entry (case-insensitive).
func DictionaryAnnotator(name string, entries []string) Annotator {
	return annotate.NewDictionary(name, entries)
}

// RegexpAnnotator labels every text node matching the pattern.
func RegexpAnnotator(name, pattern string) (Annotator, error) {
	return annotate.NewRegexp(name, pattern)
}

// NewXPathInductor builds the xpath wrapper inductor of Dalvi et al. [6]
// over the corpus: rules are xpaths with child/descendant edges, attribute
// filters and child-number filters.
func NewXPathInductor(c *Corpus) Inductor {
	return xpinduct.New(c, xpinduct.Options{})
}

// NewLRInductor builds the WIEN LR inductor (Kushmerick et al.): rules are
// (left, right) string delimiter pairs over the serialized page, with
// delimiter length capped at maxContext bytes (0 selects the default, 64).
func NewLRInductor(c *Corpus, maxContext int) Inductor {
	return lr.New(c, maxContext)
}

// NewHLRTInductor builds the HLRT extension of LR: head/tail strings
// restrict extraction to a page region, defeating navigation chrome whose
// local markup mimics the record list. The simplified induction guarantees
// fidelity only (not full well-behavedness), so prefer it as a direct
// learner rather than under enumeration; see the package documentation.
func NewHLRTInductor(c *Corpus, maxContext, maxRegion int) Inductor {
	return lr.NewHLRT(c, maxContext, maxRegion)
}

// TrainingSite pairs a corpus with known-good extractions; LearnModels fits
// the ranking models from such samples.
type TrainingSite struct {
	Corpus *Corpus
	Gold   *NodeSet
}

// ModelOptions tunes model learning; zero values select defaults.
type ModelOptions struct {
	// AnnotatorPrecision / AnnotatorRecall override the estimated
	// annotation-model parameters; 0 keeps the estimate from the samples.
	AnnotatorPrecision float64
	AnnotatorRecall    float64
	// BandwidthScale scales the KDE bandwidth (ablation knob).
	BandwidthScale float64
	// MaxSegmentTokens / MaxPairs / EditCap bound the publication-model
	// feature computation.
	MaxSegmentTokens int
	MaxPairs         int
	EditCap          int
}

func (o ModelOptions) segOptions() segment.Options {
	return segment.Options{
		MaxSegmentTokens: o.MaxSegmentTokens,
		MaxPairs:         o.MaxPairs,
		EditCap:          o.EditCap,
	}
}

// LearnModels estimates the annotation model (p, r) of the given annotator
// and fits the publication model's feature distributions from sample sites
// with gold labels (paper Sec. 7: "learned from a sample of half the
// websites").
func LearnModels(samples []TrainingSite, annot Annotator, opt ModelOptions) (*Models, error) {
	var pooled annotate.Stats
	rsamples := make([]rank.SiteSample, 0, len(samples))
	for _, s := range samples {
		labels := annot.Annotate(s.Corpus)
		pooled = pooled.Add(annotate.Measure(s.Corpus, labels, s.Gold))
		rsamples = append(rsamples, rank.SiteSample{Corpus: s.Corpus, Gold: s.Gold})
	}
	p, r := pooled.ModelParams()
	if opt.AnnotatorPrecision > 0 {
		p = opt.AnnotatorPrecision
	}
	if opt.AnnotatorRecall > 0 {
		r = opt.AnnotatorRecall
	}
	pub, err := rank.LearnPublicationModel(rsamples, opt.segOptions(),
		stats.KDEOptions{BandwidthScale: opt.BandwidthScale})
	if err != nil {
		return nil, err
	}
	return &Models{Ann: rank.NewAnnotationModel(p, r), Pub: pub}, nil
}

// GenericModels returns ranking models with broad, domain-independent
// priors: annotator p=0.95/r=0.30 and publication-model distributions
// covering typical record lists (2–6 text fields per record, near-regular
// alignment). Use LearnModels with gold samples when available; the generic
// models are enough for well-structured sites and power the quickstart.
func GenericModels(c *Corpus) *Models {
	schema := stats.MustKDE([]int{2, 3, 3, 4, 4, 5, 5, 6}, stats.KDEOptions{Support: 64})
	align := stats.MustKDE([]int{0, 0, 0, 1, 1, 2, 3, 5}, stats.KDEOptions{Support: 256})
	return &Models{
		Ann: rank.NewAnnotationModel(0.95, 0.30),
		Pub: &rank.PublicationModel{Schema: schema, Align: align},
	}
}

// Options configures Learn.
type Options struct {
	// Variant selects the ranking components (default VariantNTW).
	Variant rank.Variant
	// Enumerator selects the wrapper-space enumeration algorithm
	// (default EnumTopDown; EnumBottomUp works for any well-behaved
	// blackbox inductor).
	Enumerator string
	// MaxEnumCalls bounds enumeration effort.
	MaxEnumCalls int64
	// ScoreWorkers fans the candidate-ranking loop out over that many
	// goroutines with results identical to the serial path. Parallel
	// scoring is opt-in (<= 1 stays serial); pass runtime.GOMAXPROCS(0)
	// to saturate the machine from a single site. Prefer batch-level
	// parallelism (LearnBatch) when learning many sites.
	ScoreWorkers int
}

// Learn runs noise-tolerant wrapper induction: enumerate the wrapper space
// of the labels, rank by P(L|X)·P(X), return the ranked candidates.
func Learn(ind Inductor, labels *NodeSet, m *Models, opt Options) (*Result, error) {
	return core.Learn(ind, labels, NewLearnConfig(m, opt))
}

// NewEngine builds a reusable multi-site batch learner.
func NewEngine(opt BatchOptions) *Engine { return engine.New(opt) }

// NewLearnConfig builds a BatchSite's learning configuration from ranking
// models and the same Options Learn takes.
func NewLearnConfig(m *Models, opt Options) LearnConfig {
	return LearnConfig{
		Enumerator:   opt.Enumerator,
		EnumOptions:  enum.Options{MaxCalls: opt.MaxEnumCalls},
		Scorer:       m,
		Variant:      opt.Variant,
		ScoreWorkers: opt.ScoreWorkers,
	}
}

// LearnBatch learns N sites concurrently on a bounded worker pool — the
// paper's deployment shape (Yahoo!-scale extraction runs the single-site
// pipeline over hundreds of independent sites). Every site gets its own
// slot in the result: a failing or panicking site reports an error there
// without disturbing the batch, and per-site learning is byte-identical to
// calling Learn serially. Cancel ctx to stop at the next site boundary;
// partial results are returned alongside the context's error.
func LearnBatch(ctx context.Context, sites []BatchSite, opt BatchOptions) (*BatchResult, error) {
	return engine.LearnBatch(ctx, sites, opt)
}

// NaiveLearn is the baseline that trains the inductor directly on all the
// (noisy) labels — the paper's NAIVE. A single bad label typically makes it
// over-generalize grossly; it exists for comparison.
func NaiveLearn(ind Inductor, labels *NodeSet) (Wrapper, error) {
	return core.Naive(ind, labels)
}

// Extracted materializes a wrapper's extraction as page-grouped strings.
func Extracted(c *Corpus, w Wrapper) [][]string {
	out := make([][]string, len(c.Pages))
	w.Extract().ForEach(func(ord int) {
		p := c.PageOf(ord)
		out[p] = append(out[p], c.TextContent(ord))
	})
	return out
}

// --- Serving: compiled wrappers, the wrapper store, the extraction runtime ---

// Compile turns a learned wrapper into its portable, corpus-independent
// form: an xpath wrapper compiles its rule to an evaluable expression, an
// LR wrapper to a delimiter matcher over any page's character stream. The
// result applies to pages that did not exist at learning time — the
// paper's learn-once / extract-from-millions split.
func Compile(w Wrapper) (Portable, error) { return store.Compile(w) }

// MarshalWrapper renders a compiled wrapper in its stable, versioned JSON
// wire form.
func MarshalWrapper(p Portable) ([]byte, error) { return store.MarshalWrapper(p) }

// UnmarshalWrapper decodes and re-compiles a wrapper from its wire form —
// typically in a different process than the one that learned it.
func UnmarshalWrapper(data []byte) (Portable, error) { return store.UnmarshalWrapper(data) }

// ParsePage parses one HTML page for serving-time extraction. The parser
// is tolerant: any input produces a tree.
func ParsePage(html string) *Node { return htmlparse.Parse(html) }

// NewWrapperStore returns an empty versioned wrapper registry.
func NewWrapperStore() *WrapperStore { return store.New() }

// LoadWrapperStore reads a registry saved with WrapperStore.Save,
// validating every stored rule eagerly.
func LoadWrapperStore(path string) (*WrapperStore, error) { return store.Load(path) }

// LoadWrapperStorePartition reads only one shard's slice of a saved
// registry: sites the ring assigns elsewhere are skipped before any
// validation or rule compilation, so a shard's boot cost is proportional
// to its partition, not the whole registry.
func LoadWrapperStorePartition(path string, ring *ShardRing, shardID int) (*WrapperStore, error) {
	return store.LoadPartition(path, ring, shardID)
}

// StoreBatch records a LearnBatch run's winners in the store: one new
// version per successfully learned site. It returns how many sites were
// stored; compile failures are joined into err without blocking the rest.
func StoreBatch(s *WrapperStore, batch *BatchResult) (int, error) { return s.PutBatch(batch) }

// NewExtractor builds the streaming extraction runtime serving one
// compiled wrapper: Run for index-aligned batches, Stream for channels,
// both on a bounded worker pool with per-page error isolation and output
// independent of the worker count. Every completed page updates the
// extractor's lifetime Health counters and fires opt.OnResult, the tap a
// Monitor's SiteHealth.Observe hooks into.
func NewExtractor(p Portable, opt ExtractOptions) *Extractor { return extract.New(p, opt) }

// NewDispatcher builds the store-backed multi-site serving dispatcher:
// requests are routed to one hot-swappable extraction runtime per site,
// rebuilt lazily whenever the site's store epoch moves (Put, Promote,
// Rollback — see WrapperStore.Epoch). In-flight requests always finish on
// the runtime they started with; the swap only changes what the next
// request loads.
func NewDispatcher(s *WrapperStore, opt DispatcherOptions) *Dispatcher {
	return serve.NewDispatcher(s, opt)
}

// NewServer builds the HTTP extraction service over a dispatcher:
// POST /v1/extract behind admission control, GET /healthz and /metrics,
// the lifecycle admin routes /v1/sites, /v1/promote, /v1/rollback, and —
// when a Repairer is configured — the asynchronous maintenance plane:
// POST /v1/learn and /v1/repair enqueue background jobs (202 + job id),
// introspected via GET /v1/jobs[/{id}]. Mount Handler() on an
// http.Server; cmd/wrapserved is the ready-made daemon with graceful
// drain.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.NewServer(cfg) }

// NewAdmissionGate builds the hot path's admission controller; zero
// options select defaults (64 slots, 4x queue, 1s Retry-After).
func NewAdmissionGate(opt AdmissionOptions) *AdmissionGate { return serve.NewGate(opt) }

// NewShardRing builds the consistent-hash ring for a fleet of `shards`
// serving shards with `vnodes` virtual nodes per shard (vnodes <= 0
// selects the default, 128). The same (shards, vnodes) pair always
// yields the same site assignment, across processes and restarts.
func NewShardRing(shards, vnodes int) *ShardRing { return shard.NewRing(shards, vnodes) }

// NewShardRouter builds the fleet front end over per-shard Servers. The
// build callback is invoked once per shard, in order, and returns that
// shard's fully-wired Server. Persistence is the store backend's job:
// wire one shared StoreBackend into every shard's ServerConfig (with
// ServerConfig.Shard set) and each lifecycle event is persisted by —
// and costs — only the mutating shard. Mount Handler() on an
// http.Server; cmd/wrapserved -shards N is the ready-made fleet daemon.
func NewShardRouter(ring *ShardRing, build func(shardID int) (*Server, error)) (*ShardRouter, error) {
	return serve.NewShardRouter(ring, build)
}

// NewForwardRouter builds the multi-process fleet front end: the same
// router surface as NewShardRouter, but each partition is a shard
// PROCESS at peers[k] ("host:port") reached over persistent
// connections, with the ring topology pinned per request via the
// X-Ring-Hash header. At boot it handshakes every reachable peer's
// ring fingerprint (a mismatch fails the boot; an unreachable peer only
// degrades its partition). cmd/wrapserved -role front is the
// ready-made daemon; -role shard boots the matching peer process.
func NewForwardRouter(ring *ShardRing, peers []string, opt ForwardOptions) (*ShardRouter, error) {
	return serve.NewForwardRouter(ring, peers, opt)
}

// OpenFileStore opens the atomic-JSON-file store backend over path —
// the original on-disk registry format, byte-for-byte. The file need
// not exist yet; Load on a missing file yields an empty registry.
func OpenFileStore(path string) (*FileStoreBackend, error) { return filestore.Open(path) }

// OpenLogStore opens (creating if needed) the append-only segmented-log
// store backend at dir and replays it: every lifecycle event is one
// CRC-framed, fsync'd record, rotation writes a snapshot and compacts,
// and a torn tail from a crash is truncated instead of failing the
// boot. Zero options select defaults (1 MiB segments, fsync on).
func OpenLogStore(dir string, opt LogStoreOptions) (*LogStoreBackend, error) {
	return logstore.Open(dir, opt)
}

// OpenAuditLedger opens (creating if needed) the hash-chained lifecycle
// audit ledger at path, verifying the existing chain as it replays.
// Zero options select defaults (Merkle checkpoint every 64 events).
func OpenAuditLedger(path string, opt AuditLedgerOptions) (*AuditLedger, error) {
	return audit.Open(path, opt)
}

// VerifyAuditLedger walks the ledger at path from genesis and pinpoints
// the first broken link: any flipped byte, dropped line or reordered
// record surfaces as an *audit.TamperError naming the offending
// sequence number.
func VerifyAuditLedger(path string) (AuditReport, error) { return audit.VerifyFile(path) }

// NewJobManager builds the asynchronous maintenance plane's job queue +
// worker pool; zero options select defaults (1 worker, queue depth 16,
// history 256). The pool is fully isolated from the extraction hot path:
// an extract burst can never starve a learn, and vice versa.
func NewJobManager(opt JobOptions) *JobManager { return jobs.New(opt) }

// NewMaintainer builds the autonomous repair loop over a server: drift
// trips enqueue rate-limited repair jobs that re-learn a site from the
// dispatcher's recently served pages, so a drifted site heals with no
// operator call. Requires a server with a Repairer and job manager, drift
// monitoring, and DispatcherOptions.RecentPages > 0. Call Start to arm it
// and Stop before shutdown.
func NewMaintainer(s *Server, opt MaintainerOptions) (*Maintainer, error) {
	return serve.NewMaintainer(s, opt)
}

// --- Maintenance: drift detection, automatic re-learning, promote/rollback ---

// NewMonitor builds the per-site drift monitor; zero HealthPolicy fields
// select defaults (window 32, trip after 8 pages at >50% empties, >50%
// failures, or mean records under 50% of the learn-time profile).
// Register each served site with its stored profile, wire the returned
// SiteHealth's Observe into the site's ExtractOptions.OnResult, and poll
// Monitor.Tripped (or set HealthPolicy.OnTrip) to dispatch repairs.
func NewMonitor(policy HealthPolicy) *Monitor { return drift.NewMonitor(policy) }

// ProfileOf computes a wrapper's learn-time health profile: its per-page
// record counts over the corpus it was induced from. StoreBatch records
// profiles automatically; use this when storing wrappers one at a time via
// WrapperStore.Put.
func ProfileOf(c *Corpus, w Wrapper) *WrapperProfile {
	return store.ProfileOf(c.PerPageCounts(w.Extract()))
}
