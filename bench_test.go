// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced scale (see DESIGN.md for the experiment index and cmd/benchrun
// for paper-scale runs), plus the multi-site engine benchmarks tracked for
// regressions by scripts/bench.sh and CI (see benchmarks/README.md).
//
// Each benchmark runs one full experiment per iteration and reports the
// headline quantities as custom metrics (F1 values, call counts, sites/sec,
// speedup), so `go test -bench=. -benchmem` both times the pipeline and
// regenerates the numbers.
package autowrap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"autowrap"
	"autowrap/internal/dataset"
	"autowrap/internal/drift"
	"autowrap/internal/engine"
	"autowrap/internal/experiments"
	"autowrap/internal/extract"
	"autowrap/internal/lr"
	"autowrap/internal/segment"
	"autowrap/internal/serve"
	"autowrap/internal/shard"
	"autowrap/internal/stats"
	"autowrap/internal/store"
	"autowrap/internal/store/logstore"
)

// learnWith runs NTW with an explicit enumeration algorithm (the
// enumerator ablation).
func learnWith(ind autowrap.Inductor, labels *autowrap.NodeSet,
	m *autowrap.Models, algo string) (*autowrap.Result, error) {
	return autowrap.Learn(ind, labels, m, autowrap.Options{Enumerator: algo})
}

// Bench-scale datasets, built once and shared across benchmarks.
var (
	onceDealers sync.Once
	benchDeal   *dataset.Dataset

	onceDisc  sync.Once
	benchDisc *dataset.Dataset

	onceProd  sync.Once
	benchProd *dataset.Dataset

	onceT1  sync.Once
	benchT1 *dataset.Dataset
)

func dealers(b *testing.B) *dataset.Dataset {
	b.Helper()
	onceDealers.Do(func() {
		ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 24, NumPages: 10})
		if err != nil {
			b.Fatal(err)
		}
		benchDeal = ds
	})
	return benchDeal
}

func disc(b *testing.B) *dataset.Dataset {
	b.Helper()
	onceDisc.Do(func() {
		ds, err := dataset.Disc(dataset.DiscOptions{})
		if err != nil {
			b.Fatal(err)
		}
		benchDisc = ds
	})
	return benchDisc
}

func products(b *testing.B) *dataset.Dataset {
	b.Helper()
	onceProd.Do(func() {
		ds, err := dataset.Products(dataset.ProductsOptions{})
		if err != nil {
			b.Fatal(err)
		}
		benchProd = ds
	})
	return benchProd
}

func table1Dealers(b *testing.B) *dataset.Dataset {
	b.Helper()
	onceT1.Do(func() {
		ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 8, NumPages: 25})
		if err != nil {
			b.Fatal(err)
		}
		benchT1 = ds
	})
	return benchT1
}

// --- Engine: concurrent multi-site learning (ISSUE 1 tentpole) ---

// engineSpecs builds the 24-site DEALERS batch the engine benchmarks run:
// specs are rebuilt per call so no wrapper/label caches leak between runs.
func engineSpecs(b *testing.B) []engine.SiteSpec {
	b.Helper()
	ds := dealers(b)
	models, err := dataset.LearnModels(ds.Train(), ds.TypeName, ds.Annotator,
		segment.Options{}, stats.KDEOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return experiments.BatchSpecs(ds, experiments.KindXPath, models.Scorer,
		experiments.BatchConfig{})
}

// learnBatchOnce runs one full batch and returns it, failing the benchmark
// on any per-site error.
func learnBatchOnce(b *testing.B, specs []engine.SiteSpec, workers int) *engine.BatchResult {
	b.Helper()
	batch, err := engine.LearnBatch(context.Background(), specs,
		engine.Options{Workers: workers, MinLabels: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range batch.Failed() {
		b.Fatalf("site %s failed: %v", f.Name, f.Err)
	}
	return batch
}

// serialBatchTime measures the 1-worker batch once; the parallel benchmarks
// report their speedup against it.
var (
	onceSerialBatch sync.Once
	serialBatchNs   float64
)

func serialBatchBaseline(b *testing.B) float64 {
	b.Helper()
	onceSerialBatch.Do(func() {
		specs := engineSpecs(b)
		learnBatchOnce(b, specs, 1) // warm dataset/model caches
		start := time.Now()
		learnBatchOnce(b, specs, 1)
		serialBatchNs = float64(time.Since(start).Nanoseconds())
	})
	return serialBatchNs
}

// benchEngine times LearnBatch at a fixed worker count and reports
// throughput (sites/sec), the pool's internal work/wall speedup, and the
// wall-clock speedup against the measured serial baseline.
func benchEngine(b *testing.B, workers int) {
	serialNs := serialBatchBaseline(b)
	specs := engineSpecs(b)
	b.ResetTimer()
	var batch *engine.BatchResult
	start := time.Now()
	for i := 0; i < b.N; i++ {
		batch = learnBatchOnce(b, specs, workers)
	}
	elapsed := time.Since(start)
	perRun := float64(elapsed.Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(batch.Stats.Sites)/(perRun/1e9), "sites/sec")
	b.ReportMetric(serialNs/perRun, "speedup-vs-serial")
	b.ReportMetric(batch.Stats.Speedup(), "pool-speedup")
}

// BenchmarkEngineBatchSerial is the 1-worker reference point.
func BenchmarkEngineBatchSerial(b *testing.B) { benchEngine(b, 1) }

// BenchmarkEngineBatch8Workers is the acceptance configuration: 24 DEALERS
// sites on 8 workers. On a machine with >= 8 cores, speedup-vs-serial
// should exceed 3x; TestLearnBatchMatchesSerialLearn (batch_test.go)
// separately proves the per-site results are identical to serial.
func BenchmarkEngineBatch8Workers(b *testing.B) { benchEngine(b, 8) }

// BenchmarkEngineBatchMaxWorkers saturates the host (GOMAXPROCS workers).
func BenchmarkEngineBatchMaxWorkers(b *testing.B) { benchEngine(b, 0) }

// BenchmarkCoreParallelScoring isolates the fanned-out ranking loop: one
// site, serial vs GOMAXPROCS scoring workers.
func BenchmarkCoreParallelScoring(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		name := "serial"
		if workers != 1 {
			name = "maxworkers"
		}
		b.Run(name, func(b *testing.B) {
			ds := dealers(b)
			models, err := dataset.LearnModels(ds.Train(), ds.TypeName, ds.Annotator,
				segment.Options{}, stats.KDEOptions{})
			if err != nil {
				b.Fatal(err)
			}
			site := ds.Eval()[0]
			labels := ds.Annotator.Annotate(site.Corpus)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ind, err := experiments.NewInductor(experiments.KindXPath, site.Corpus)
				if err != nil {
					b.Fatal(err)
				}
				res, err := autowrap.Learn(ind, labels, models.Scorer,
					autowrap.Options{ScoreWorkers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Best == nil {
					b.Fatal("no result")
				}
			}
		})
	}
}

// --- Extraction runtime: serving throughput (ISSUE 2 tentpole) ---

// extractFixture learns one wrapper on a DEALERS-style site and prepares a
// raw-HTML page batch for the serving benchmarks, so each iteration runs
// the full serve path: parse + compiled-wrapper evaluation.
var (
	onceExtract    sync.Once
	extractServed  autowrap.Portable
	extractBatchIn []extract.Page
)

func extractFixture(b *testing.B) (autowrap.Portable, []extract.Page) {
	b.Helper()
	onceExtract.Do(func() {
		ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 2, NumPages: 64})
		if err != nil {
			b.Fatal(err)
		}
		site := ds.Sites[0]
		labels := ds.Annotator.Annotate(site.Corpus)
		res, err := autowrap.Learn(autowrap.NewXPathInductor(site.Corpus), labels,
			autowrap.GenericModels(site.Corpus), autowrap.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Best == nil {
			b.Fatal("no wrapper learned for the extraction fixture")
		}
		p, err := autowrap.Compile(res.Best.Wrapper)
		if err != nil {
			b.Fatal(err)
		}
		// Round-trip through the wire form so the benchmark serves exactly
		// what a restarted process would.
		blob, err := autowrap.MarshalWrapper(p)
		if err != nil {
			b.Fatal(err)
		}
		extractServed, err = autowrap.UnmarshalWrapper(blob)
		if err != nil {
			b.Fatal(err)
		}
		for i, page := range site.Corpus.Pages {
			extractBatchIn = append(extractBatchIn, extract.Page{
				ID: site.Name + "/" + sizeName("p", i), HTML: page.HTML,
			})
		}
	})
	return extractServed, extractBatchIn
}

// serialExtractTime measures the 1-worker run once; the parallel
// benchmarks report their speedup against it.
var (
	onceSerialExtract sync.Once
	serialExtractNs   float64
)

func serialExtractBaseline(b *testing.B) float64 {
	b.Helper()
	onceSerialExtract.Do(func() {
		p, pages := extractFixture(b)
		rt := extract.New(p, extract.Options{Workers: 1})
		if _, err := rt.Run(context.Background(), pages); err != nil {
			b.Fatal(err) // warm-up run
		}
		// Average over enough runs to match the benchmarks' steady state —
		// a one-shot measurement reads ~20% fast (no accumulated GC
		// pressure) and would bias every speedup-vs-serial metric low.
		const runs = 30
		start := time.Now()
		for i := 0; i < runs; i++ {
			if _, err := rt.Run(context.Background(), pages); err != nil {
				b.Fatal(err)
			}
		}
		serialExtractNs = float64(time.Since(start).Nanoseconds()) / runs
	})
	return serialExtractNs
}

// benchExtract times the runtime at a fixed worker count and reports
// pages/sec, records/sec and the wall-clock speedup against the measured
// serial run. TestRunDeterministicAcrossWorkers (internal/extract) proves
// the outputs are byte-identical across these configurations.
func benchExtract(b *testing.B, workers int) {
	serialNs := serialExtractBaseline(b)
	p, pages := extractFixture(b)
	rt := extract.New(p, extract.Options{Workers: workers})
	b.ResetTimer()
	var batch *extract.Batch
	start := time.Now()
	for i := 0; i < b.N; i++ {
		var err error
		batch, err = rt.Run(context.Background(), pages)
		if err != nil {
			b.Fatal(err)
		}
		if batch.Stats.Failed > 0 {
			b.Fatalf("extraction failures: %+v", batch.Failed())
		}
	}
	elapsed := time.Since(start)
	perRun := float64(elapsed.Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(batch.Stats.Pages)/(perRun/1e9), "pages/sec")
	b.ReportMetric(float64(batch.Stats.Records)/(perRun/1e9), "records/sec")
	b.ReportMetric(serialNs/perRun, "speedup-vs-serial")
}

// BenchmarkExtractSerial is the 1-worker reference point.
func BenchmarkExtractSerial(b *testing.B) { benchExtract(b, 1) }

// BenchmarkExtract8Workers is the acceptance configuration: on a host with
// >= 8 cores, speedup-vs-serial approaches the worker count (the per-page
// work is independent; only the final stats merge is shared).
func BenchmarkExtract8Workers(b *testing.B) { benchExtract(b, 8) }

// BenchmarkExtractMaxWorkers saturates the host (GOMAXPROCS workers).
func BenchmarkExtractMaxWorkers(b *testing.B) { benchExtract(b, 0) }

// BenchmarkExtractStream pushes the same batch through the channel-based
// streaming path (in-order delivery) at GOMAXPROCS workers.
func BenchmarkExtractStream(b *testing.B) {
	p, pages := extractFixture(b)
	rt := extract.New(p, extract.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := make(chan extract.Page)
		go func() {
			defer close(in)
			for _, pg := range pages {
				in <- pg
			}
		}()
		st := rt.Stream(context.Background(), in)
		n := 0
		for res := range st.Results() {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			n += len(res.Texts)
		}
		if n == 0 {
			b.Fatal("stream extracted nothing")
		}
	}
}

// BenchmarkExtractMonitored is BenchmarkExtractMaxWorkers with the drift
// monitor's health observer wired into OnResult — the whole point of the
// health-signal design is that monitoring costs nothing measurable on the
// serving fast path, and this benchmark (gated next to the unmonitored
// BenchmarkExtract* runs) keeps that claim honest.
func BenchmarkExtractMonitored(b *testing.B) {
	p, pages := extractFixture(b)
	m := drift.NewMonitor(drift.Policy{Window: 64})
	h := m.Register("bench", &store.Profile{Pages: len(pages), MeanRecords: 6})
	rt := extract.New(p, extract.Options{OnResult: h.Observe})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := rt.Run(context.Background(), pages)
		if err != nil {
			b.Fatal(err)
		}
		if batch.Stats.Failed > 0 {
			b.Fatalf("extraction failures: %+v", batch.Failed())
		}
	}
	b.StopTimer()
	if h.Stats().Pages == 0 {
		b.Fatal("monitor observed nothing")
	}
}

// BenchmarkHealthObserve times the health-signal hot path itself: one
// sliding-window observation, which every served page pays when a monitor
// is attached. It must stay allocation-free (also pinned by
// TestObserveIsAllocationFree) and in the tens of nanoseconds.
func BenchmarkHealthObserve(b *testing.B) {
	m := drift.NewMonitor(drift.Policy{Window: 64})
	h := m.Register("bench", &store.Profile{Pages: 64, MeanRecords: 6})
	res := &extract.Result{Texts: []string{"a", "b", "c", "d", "e", "f"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(res)
	}
}

// --- Serving daemon (internal/serve), tracked by the bench gate ---

// serveFixture builds a monitored dispatcher over a store holding the
// extraction fixture's wrapper: the full serving stack minus HTTP.
func serveFixture(b *testing.B) (*serve.Dispatcher, []extract.Page) {
	b.Helper()
	p, pages := extractFixture(b)
	st := store.New()
	if _, err := st.Put("bench", p, store.Meta{
		Profile: &store.Profile{Pages: len(pages), MeanRecords: 6},
	}); err != nil {
		b.Fatal(err)
	}
	mon := drift.NewMonitor(drift.Policy{Window: 64})
	return serve.NewDispatcher(st, serve.Options{Monitor: mon}), pages
}

// BenchmarkServeExtractDispatch times the dispatcher's single-page hot
// path per request: store-epoch staleness check, atomic runtime load,
// extraction, health observation and metrics — everything a daemon request
// pays on top of the bare runtime, minus HTTP.
func BenchmarkServeExtractDispatch(b *testing.B) {
	d, pages := serveFixture(b)
	ctx := context.Background()
	one := pages[:1]
	if _, err := d.Extract(ctx, "bench", one); err != nil {
		b.Fatal(err) // warm-up builds the runtime binding
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		ext, err := d.Extract(ctx, "bench", one)
		if err != nil {
			b.Fatal(err)
		}
		if len(ext.Results) != 1 || ext.Results[0].Err != nil {
			b.Fatalf("bad extraction: %+v", ext.Results)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/sec")
}

// BenchmarkServeExtractDispatchBatch is the batched flavor: the whole
// fixture batch per request, through the dispatcher's pool path.
func BenchmarkServeExtractDispatchBatch(b *testing.B) {
	d, pages := serveFixture(b)
	ctx := context.Background()
	if _, err := d.Extract(ctx, "bench", pages); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		ext, err := d.Extract(ctx, "bench", pages)
		if err != nil {
			b.Fatal(err)
		}
		if len(ext.Records()) == 0 {
			b.Fatal("no records")
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N*len(pages))/elapsed.Seconds(), "pages/sec")
}

// BenchmarkServeExtractHTTP is the end-to-end request cost: a real HTTP
// round trip through the admission gate, JSON codec both ways, and the
// dispatcher hot path, one page per request — the daemon's serving
// overhead in its deployment shape.
func BenchmarkServeExtractHTTP(b *testing.B) {
	d, pages := serveFixture(b)
	srv, err := serve.NewServer(serve.ServerConfig{Dispatcher: d})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := hs.Client()
	body, err := json.Marshal(serve.ExtractRequest{
		Site: "bench",
		Page: &serve.PageInput{ID: pages[0].ID, HTML: pages[0].HTML},
	})
	if err != nil {
		b.Fatal(err)
	}
	// Verify the wire path once, then time request round trips.
	resp, err := client.Post(hs.URL+"/v1/extract", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var out serve.ExtractResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 || len(out.Results[0].Records) == 0 {
		b.Fatalf("wire check: status %d, results %+v", resp.StatusCode, out.Results)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(hs.URL+"/v1/extract", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/sec")
}

// forwardFixture boots a one-shard serving fleet twice over: a local
// front (the in-process ShardRouter calling the shard directly) and a
// forwarding front (NewForwardRouter proxying to the same server shape
// over HTTP). Both fronts serve the identical request, so the timing
// difference between the two benchmarks below is exactly the transport
// seam's forwarding hop.
func forwardFixture(b *testing.B) (localURL, fwdURL string, body []byte) {
	b.Helper()
	d, pages := serveFixture(b)
	ring := shard.NewRing(1, 64)

	local, err := serve.NewShardRouter(ring, func(int) (*serve.Server, error) {
		return serve.NewServer(serve.ServerConfig{Dispatcher: d, Ring: ring})
	})
	if err != nil {
		b.Fatal(err)
	}
	localFront := httptest.NewServer(local.Handler())
	b.Cleanup(localFront.Close)

	shardSrv, err := serve.NewServer(serve.ServerConfig{Dispatcher: d, Shard: 0, Ring: ring})
	if err != nil {
		b.Fatal(err)
	}
	shardHS := httptest.NewServer(shardSrv.Handler())
	b.Cleanup(shardHS.Close)
	fwd, err := serve.NewForwardRouter(ring,
		[]string{strings.TrimPrefix(shardHS.URL, "http://")}, serve.ForwardOptions{})
	if err != nil {
		b.Fatal(err)
	}
	fwdFront := httptest.NewServer(fwd.Handler())
	b.Cleanup(fwdFront.Close)

	body, err = json.Marshal(serve.ExtractRequest{
		Site: "bench",
		Page: &serve.PageInput{ID: pages[0].ID, HTML: pages[0].HTML},
	})
	if err != nil {
		b.Fatal(err)
	}
	return localFront.URL, fwdFront.URL, body
}

func benchForwardExtract(b *testing.B, pickFwd bool) {
	localURL, fwdURL, body := forwardFixture(b)
	url := localURL
	if pickFwd {
		url = fwdURL
	}
	client := &http.Client{}
	post := func() {
		resp, err := client.Post(url+"/v1/extract", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	post() // warm-up: runtime binding, connection pool, handshake cache
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		post()
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/sec")
}

// BenchmarkForwardExtractLocal is the client-observed request cost
// against the in-process fleet front: one HTTP hop, direct ShardClient
// dispatch behind it. The baseline for the forwarding-cost row in
// PERFORMANCE.md.
func BenchmarkForwardExtractLocal(b *testing.B) { benchForwardExtract(b, false) }

// BenchmarkForwardExtractForwarded is the same request through a
// forwarding front proxying to a shard process shape over a persistent
// connection — two HTTP hops. The delta against ForwardExtractLocal is
// the per-request price of splitting the fleet into processes.
func BenchmarkForwardExtractForwarded(b *testing.B) { benchForwardExtract(b, true) }

// shardedFixture builds the fleet's dispatch layer at benchmark scale:
// one learned wrapper served under nSites site names, consistent-hash
// partitioned across N dispatchers exactly the way wrapserved -shards
// does it (store.Split over the ring, one monitored dispatcher per
// partition). Returns each shard's dispatcher and its owned site list.
func shardedFixture(b *testing.B, shards, nSites int) ([]*serve.Dispatcher, [][]string, []extract.Page) {
	b.Helper()
	p, pages := extractFixture(b)
	full := store.New()
	sites := make([]string, nSites)
	for i := range sites {
		sites[i] = fmt.Sprintf("site-%03d.example.com", i)
		if _, err := full.Put(sites[i], p, store.Meta{
			Profile: &store.Profile{Pages: len(pages), MeanRecords: 6},
		}); err != nil {
			b.Fatal(err)
		}
	}
	ring := shard.NewRing(shards, 64)
	parts := full.Split(ring, shards)
	ds := make([]*serve.Dispatcher, shards)
	for k := range ds {
		ds[k] = serve.NewDispatcher(parts[k], serve.Options{
			Monitor: drift.NewMonitor(drift.Policy{Window: 64}),
		})
	}
	return ds, ring.Partition(sites), pages
}

// benchShardedDispatch drives N concurrent lanes, one per shard, each
// cycling through its own partition's sites on its own dispatcher — the
// fleet's dispatch plane with zero cross-shard sharing. Aggregate
// req/sec is the headline: on a multi-core host it scales with shard
// count because the lanes touch disjoint stores, monitors and metrics;
// on a single core it pins that sharding adds no contention or
// allocation over the single-dispatcher baseline (see PERFORMANCE.md
// for measured numbers on both).
func benchShardedDispatch(b *testing.B, shards int) {
	ds, owned, pages := shardedFixture(b, shards, 64)
	ctx := context.Background()
	one := pages[:1]
	for k, sites := range owned {
		for _, site := range sites {
			if _, err := ds[k].Extract(ctx, site, one); err != nil {
				b.Fatal(err) // warm-up builds every runtime binding
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		n := b.N / shards
		if k < b.N%shards {
			n++
		}
		if n == 0 || len(owned[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k, n int) {
			defer wg.Done()
			d, sites := ds[k], owned[k]
			for i := 0; i < n; i++ {
				ext, err := d.Extract(ctx, sites[i%len(sites)], one)
				if err != nil {
					b.Error(err)
					return
				}
				if len(ext.Results) != 1 || ext.Results[0].Err != nil {
					b.Errorf("bad extraction: %+v", ext.Results)
					return
				}
			}
		}(k, n)
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/sec")
}

func BenchmarkShardedDispatch1(b *testing.B) { benchShardedDispatch(b, 1) }

func BenchmarkShardedDispatch4(b *testing.B) { benchShardedDispatch(b, 4) }

func BenchmarkShardedDispatch8(b *testing.B) { benchShardedDispatch(b, 8) }

// BenchmarkJobsSubmit times the maintenance plane's full job cycle for
// trivial runners — submit, dispatch to a worker, finalize, snapshot
// bookkeeping — i.e. the overhead the async plane wraps around a learn.
// Tracked by the bench gate: this path must stay negligible next to the
// learning it schedules.
func BenchmarkJobsSubmit(b *testing.B) {
	m := autowrap.NewJobManager(autowrap.JobOptions{
		Workers: 2, QueueDepth: 256, History: 32,
	})
	noop := func(ctx context.Context, _ func(string)) (any, error) { return nil, nil }
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for {
			if _, err := m.Submit(autowrap.JobKindRepair, "bench", noop); err == nil {
				break
			}
			runtime.Gosched() // queue full: workers are draining, retry
		}
	}
	b.StopTimer()
	if err := m.Drain(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/sec")
}

// BenchmarkLogAppend times one lifecycle event through the segmented-log
// backend's hot path — frame encode, CRC, shadow-registry apply — with
// fsync off, so the number is the framing cost the log adds per event,
// not the disk's. Tracked by the bench gate: persistence must stay
// O(event), and cheap.
func BenchmarkLogAppend(b *testing.B) {
	seed := store.New()
	if _, err := seed.Put("bench.example.com",
		&lr.Compiled{Left: `<div class="a">`, Right: `</div>`}, store.Meta{}); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.PutCandidate("bench.example.com",
		&lr.Compiled{Left: `<div class="b">`, Right: `</div>`}, store.Meta{}); err != nil {
		b.Fatal(err)
	}
	lb, err := logstore.Open(b.TempDir(), logstore.Options{NoSync: true, SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer lb.Close()
	if err := lb.SeedFrom(seed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Promote/rollback alternation: every iteration is one valid,
		// constant-size promotion record.
		if i%2 == 0 {
			err = lb.AppendPromotion(0, "bench.example.com", store.OpPromote, 2)
		} else {
			err = lb.AppendPromotion(0, "bench.example.com", store.OpRollback, 0)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogAppendGroup is BenchmarkLogAppend with group commit on and
// REAL fsync: appends mark the segment dirty and a background flusher
// syncs once per interval, so the per-append cost is framing plus a
// dirty bit — the fsync is amortized across the batch. Compare against
// a NoSync:false run of the backend to see what the group buys; tracked
// by the bench gate so the group-commit path stays O(event).
func BenchmarkLogAppendGroup(b *testing.B) {
	seed := store.New()
	if _, err := seed.Put("bench.example.com",
		&lr.Compiled{Left: `<div class="a">`, Right: `</div>`}, store.Meta{}); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.PutCandidate("bench.example.com",
		&lr.Compiled{Left: `<div class="b">`, Right: `</div>`}, store.Meta{}); err != nil {
		b.Fatal(err)
	}
	lb, err := logstore.Open(b.TempDir(), logstore.Options{
		SyncInterval: 20 * time.Millisecond, SegmentBytes: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lb.Close()
	if err := lb.SeedFrom(seed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			err = lb.AppendPromotion(0, "bench.example.com", store.OpPromote, 2)
		} else {
			err = lb.AppendPromotion(0, "bench.example.com", store.OpRollback, 0)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditAppend times one event through the audit ledger's hot
// path — canonical JSON encode, sha256 chain link, ring update, and the
// amortized Merkle checkpoint every 64 events — with fsync off. Tracked
// by the bench gate: the tamper-evidence tax per lifecycle event.
func BenchmarkAuditAppend(b *testing.B) {
	led, err := autowrap.OpenAuditLedger(
		filepath.Join(b.TempDir(), "audit.jsonl"), autowrap.AuditLedgerOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer led.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := led.Append(i%8, "promote", "bench.example.com", 2, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2(a): # of wrapper calls for LR ---

func BenchmarkFig2aEnumerationLR(b *testing.B) {
	ds := dealers(b)
	b.ResetTimer()
	var s experiments.EnumSummary
	for i := 0; i < b.N; i++ {
		res, err := experiments.EnumExperiment(ds, experiments.KindLR,
			experiments.EnumConfig{RunNaiveMax: 10})
		if err != nil {
			b.Fatal(err)
		}
		s = res.Summarize()
	}
	b.ReportMetric(float64(s.MedianTopDownCalls), "topdown-calls")
	b.ReportMetric(float64(s.MedianBottomUpCalls), "bottomup-calls")
	b.ReportMetric(s.MedianNaiveCalls, "naive-calls")
}

// --- Figure 2(b): # of wrapper calls for XPATH ---

func BenchmarkFig2bEnumerationXPath(b *testing.B) {
	ds := dealers(b)
	b.ResetTimer()
	var s experiments.EnumSummary
	for i := 0; i < b.N; i++ {
		res, err := experiments.EnumExperiment(ds, experiments.KindXPath,
			experiments.EnumConfig{RunNaiveMax: 10})
		if err != nil {
			b.Fatal(err)
		}
		s = res.Summarize()
	}
	b.ReportMetric(float64(s.MedianTopDownCalls), "topdown-calls")
	b.ReportMetric(float64(s.MedianBottomUpCalls), "bottomup-calls")
	b.ReportMetric(s.MedianNaiveCalls, "naive-calls")
}

// --- Figure 2(c): running time for XPATH enumeration ---

func BenchmarkFig2cEnumerationTime(b *testing.B) {
	ds := dealers(b)
	b.ResetTimer()
	var s experiments.EnumSummary
	for i := 0; i < b.N; i++ {
		res, err := experiments.EnumExperiment(ds, experiments.KindXPath,
			experiments.EnumConfig{RunNaiveMax: 0})
		if err != nil {
			b.Fatal(err)
		}
		s = res.Summarize()
	}
	b.ReportMetric(s.MedianTopDownMs, "topdown-ms")
	b.ReportMetric(s.MedianBottomUpMs, "bottomup-ms")
}

// --- Figures 2(d)–2(g), 3(c): accuracy experiments ---

func benchAccuracy(b *testing.B, ds *dataset.Dataset, kind string) {
	b.Helper()
	b.ResetTimer()
	var res *experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AccuracyExperiment(ds, kind, experiments.AccuracyConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Naive.F1, "naive-F1")
	b.ReportMetric(res.NTW.F1, "ntw-F1")
	b.ReportMetric(res.Naive.Precision, "naive-P")
	b.ReportMetric(res.NTW.Precision, "ntw-P")
}

func BenchmarkFig2dXPathDealers(b *testing.B) { benchAccuracy(b, dealers(b), experiments.KindXPath) }

func BenchmarkFig2eLRDealers(b *testing.B) { benchAccuracy(b, dealers(b), experiments.KindLR) }

func BenchmarkFig2fXPathDisc(b *testing.B) { benchAccuracy(b, disc(b), experiments.KindXPath) }

func BenchmarkFig2gLRDisc(b *testing.B) { benchAccuracy(b, disc(b), experiments.KindLR) }

func BenchmarkFig3cProducts(b *testing.B) { benchAccuracy(b, products(b), experiments.KindXPath) }

// --- Figures 2(h)/2(i): ranking-component ablation ---

func benchVariants(b *testing.B, kind string) {
	b.Helper()
	ds := dealers(b)
	b.ResetTimer()
	var res *experiments.VariantsResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.VariantsExperiment(ds, kind, experiments.AccuracyConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NTW.F1, "ntw-F1")
	b.ReportMetric(res.NTWL.F1, "ntwL-F1")
	b.ReportMetric(res.NTWX.F1, "ntwX-F1")
}

func BenchmarkFig2hVariantsXPath(b *testing.B) { benchVariants(b, experiments.KindXPath) }

func BenchmarkFig2iVariantsLR(b *testing.B) { benchVariants(b, experiments.KindLR) }

// --- Table 1: accuracy vs controlled annotator precision/recall ---

func BenchmarkTable1AnnotatorGrid(b *testing.B) {
	ds := table1Dealers(b)
	b.ResetTimer()
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1Experiment(ds, experiments.Table1Config{
			PGrid: []float64{0.1, 0.5, 0.9},
			RGrid: []float64{0.05, 0.15, 0.3},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.F1[0][0], "worst-corner-F1")
	b.ReportMetric(res.F1[1][1], "center-F1")
	b.ReportMetric(res.F1[2][2], "best-corner-F1")
}

// --- Figures 3(a)/3(b): multi-type extraction ---

func BenchmarkFig3aMultiType(b *testing.B) {
	ds := dealers(b)
	b.ResetTimer()
	var res *experiments.MultiTypeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MultiTypeExperiment(ds, experiments.MultiTypeConfig{MaxSites: 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NaiveRecords.F1, "naive-record-F1")
	b.ReportMetric(res.NTWRecords.F1, "ntw-record-F1")
}

func BenchmarkFig3bMultiVsSingle(b *testing.B) {
	ds := dealers(b)
	b.ResetTimer()
	var res *experiments.MultiTypeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MultiTypeExperiment(ds, experiments.MultiTypeConfig{MaxSites: 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NameMulti.F1, "name-multi-F1")
	b.ReportMetric(res.NameSingle.F1, "name-single-F1")
	b.ReportMetric(res.ZipMulti.F1, "zip-multi-F1")
	b.ReportMetric(res.ZipSingle.F1, "zip-single-F1")
}

// --- Appendix B.2: single-entity extraction ---

func BenchmarkB2SingleEntity(b *testing.B) {
	ds := disc(b)
	titles := dataset.DiscSeedTitles(dataset.DiscOptions{})
	b.ResetTimer()
	var res *experiments.SingleEntityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.SingleEntityExperiment(ds, titles, experiments.SingleEntityConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Correct), "sites-correct")
	b.ReportMetric(float64(res.WithTies), "sites-with-ties")
}

// --- Ablations of design choices (DESIGN.md) ---

// BenchmarkAblationLRContextCap sweeps the LR delimiter cap: induction cost
// and accuracy as MaxContext grows.
func BenchmarkAblationLRContextCap(b *testing.B) {
	ds := dealers(b)
	site := ds.Sites[1]
	labels := ds.Annotator.Annotate(site.Corpus)
	for _, cap := range []int{8, 16, 32, 64} {
		b.Run(sizeName("ctx", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ind := lr.New(site.Corpus, cap)
				if _, err := ind.Induce(labels); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKDEBandwidth measures how the bandwidth scale shifts the
// learned distributions (and with them the NTW score landscape).
func BenchmarkAblationKDEBandwidth(b *testing.B) {
	ds := dealers(b)
	for _, scale := range []float64{0.5, 1, 2} {
		name := "scale1"
		if scale == 0.5 {
			name = "scale0.5"
		} else if scale == 2 {
			name = "scale2"
		}
		b.Run(name, func(b *testing.B) {
			var m *dataset.Models
			for i := 0; i < b.N; i++ {
				var err error
				m, err = dataset.LearnModels(ds.Train(), ds.TypeName, ds.Annotator,
					segment.Options{}, stats.KDEOptions{BandwidthScale: scale})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Scorer.Pub.Schema.Bandwidth(), "schema-bw")
		})
	}
}

// BenchmarkAblationSegmentPairs sweeps how many segment pairs feed the
// publication model features.
func BenchmarkAblationSegmentPairs(b *testing.B) {
	ds := dealers(b)
	site := ds.Sites[1]
	gold := site.Gold[ds.TypeName]
	for _, pairs := range []int{4, 12, 25, 50} {
		b.Run(sizeName("pairs", pairs), func(b *testing.B) {
			var f segment.Features
			for i := 0; i < b.N; i++ {
				var ok bool
				f, ok = segment.Compute(site.Corpus, gold, segment.Options{MaxPairs: pairs})
				if !ok {
					b.Fatal("gold list did not segment")
				}
			}
			b.ReportMetric(float64(f.SchemaSize), "schema")
			b.ReportMetric(float64(f.Alignment), "align")
		})
	}
}

// BenchmarkAblationHostileFraction sweeps the fraction of LR-hostile sites
// in DEALERS and reports the LR NTW accuracy: the design choice that
// reproduces Fig. 2(e)'s ≈0.9 ceiling. (The effective fraction is higher
// than the knob: one of the five random layouts is hostile by itself.)
func BenchmarkAblationHostileFraction(b *testing.B) {
	for _, frac := range []float64{0.1, 0.3, 0.5} {
		name := "frac10"
		if frac == 0.3 {
			name = "frac30"
		} else if frac == 0.5 {
			name = "frac50"
		}
		b.Run(name, func(b *testing.B) {
			ds, err := dataset.Dealers(dataset.DealersOptions{
				NumSites: 16, NumPages: 8, LRHostileFrac: frac,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res *experiments.AccuracyResult
			for i := 0; i < b.N; i++ {
				res, err = experiments.AccuracyExperiment(ds, experiments.KindLR,
					experiments.AccuracyConfig{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.NTW.F1, "lr-ntw-F1")
		})
	}
}

// BenchmarkAblationEnumerator compares TopDown vs BottomUp inside the full
// NTW pipeline.
func BenchmarkAblationEnumerator(b *testing.B) {
	ds := dealers(b)
	for _, algo := range []string{"topdown", "bottomup"} {
		b.Run(algo, func(b *testing.B) {
			models, err := dataset.LearnModels(ds.Train(), ds.TypeName, ds.Annotator,
				segment.Options{}, stats.KDEOptions{})
			if err != nil {
				b.Fatal(err)
			}
			site := ds.Eval()[0]
			labels := ds.Annotator.Annotate(site.Corpus)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ind, err := experiments.NewInductor(experiments.KindXPath, site.Corpus)
				if err != nil {
					b.Fatal(err)
				}
				res, err := learnWith(ind, labels, models.Scorer, algo)
				if err != nil {
					b.Fatal(err)
				}
				if res == nil {
					b.Fatal("no result")
				}
			}
		})
	}
}

func sizeName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{digits[v%10]}, buf...)
		v /= 10
	}
	return prefix + string(buf)
}
