// Package leakcheck asserts that a stretch of work leaves no goroutines
// behind: snapshot the goroutines alive at a baseline, run the work, then
// verify — with a grace period, because teardown is asynchronous — that
// everything started since has exited. It backs both the package tests of
// the concurrent planes (serve, jobs) and the soak harness's
// goroutine-baseline invariant, which is why the core works on plain
// values instead of *testing.T.
//
// Goroutines are identified by where they were created plus their topmost
// frame, with addresses stripped, so two runs of the same code produce the
// same identities. The baseline is a multiset: a leak is any identity with
// more live goroutines at verify time than at snapshot time, which keeps a
// pre-existing worker pool from masking a newly leaked worker of the same
// shape.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// DefaultGrace is how long Verify retries before declaring a leak. Closed
// listeners, canceled workers and expiring timers all need a few scheduler
// rounds to unwind; two seconds is far beyond any of them and still cheap
// on the passing path (Verify polls, it does not sleep the full grace).
const DefaultGrace = 2 * time.Second

// Snapshot is a multiset of goroutine identities at one point in time.
type Snapshot map[string]int

// TB is the fragment of testing.TB that Check needs, kept narrow so the
// package imports no testing machinery and stays usable from cmd/soak.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Take snapshots the goroutines alive right now.
func Take() Snapshot {
	s := make(Snapshot)
	for _, id := range identities() {
		s[id]++
	}
	return s
}

// ignored reports goroutines that are not ours to account for: runtime
// helpers (GC workers, finalizers), the testing framework's runners, and
// the signal-delivery goroutine, all of which come and go on their own
// schedule.
func ignored(id string) bool {
	for _, prefix := range []string{
		"runtime.",
		"testing.",
		"os/signal.",
	} {
		if strings.HasPrefix(id, prefix) {
			return true
		}
	}
	return false
}

// identities parses the full goroutine dump into one identity string per
// goroutine: "created-by ← top-frame", with argument lists and addresses
// stripped so identities are stable across runs.
func identities() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, block := range strings.Split(string(buf), "\n\n") {
		lines := strings.Split(strings.TrimSpace(block), "\n")
		if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
			continue
		}
		top := funcName(lines[1])
		created := ""
		for _, ln := range lines {
			if rest, ok := strings.CutPrefix(ln, "created by "); ok {
				created, _, _ = strings.Cut(rest, " in goroutine")
				break
			}
		}
		id := top
		if created != "" {
			id = created + " ← " + top
		}
		if !ignored(id) {
			out = append(out, id)
		}
	}
	return out
}

// funcName strips the argument list from a stack frame's function line.
func funcName(line string) string {
	line = strings.TrimSpace(line)
	if i := strings.LastIndexByte(line, '('); i > 0 {
		return line[:i]
	}
	return line
}

// Verify returns nil once every goroutine started since the baseline has
// exited, polling until the grace period runs out; after that it reports
// the leaked identities and their counts. grace <= 0 selects DefaultGrace.
func (base Snapshot) Verify(grace time.Duration) error {
	if grace <= 0 {
		grace = DefaultGrace
	}
	deadline := time.Now().Add(grace)
	for {
		leaked := base.leakedNow()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leakcheck: %d goroutine(s) leaked:\n\t%s",
				len(leaked), strings.Join(leaked, "\n\t"))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// leakedNow lists identities with more live goroutines than the baseline,
// one element per excess goroutine, sorted for stable error output.
func (base Snapshot) leakedNow() []string {
	now := Take()
	var leaked []string
	for id, n := range now {
		for extra := n - base[id]; extra > 0; extra-- {
			leaked = append(leaked, id)
		}
	}
	sort.Strings(leaked)
	return leaked
}

// Check snapshots the current goroutines and registers a cleanup that
// fails the test if any goroutine started during the test is still running
// once the grace period expires. Call it first in the test so the cleanup
// runs after every other cleanup (servers closed, managers drained).
func Check(t TB) {
	t.Helper()
	base := Take()
	t.Cleanup(func() {
		if err := base.Verify(DefaultGrace); err != nil {
			t.Errorf("%v", err)
		}
	})
}
