package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestVerifyPassesWhenNothingLeaks(t *testing.T) {
	base := Take()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	if err := base.Verify(time.Second); err != nil {
		t.Fatalf("clean run reported a leak: %v", err)
	}
}

func TestVerifyCatchesABlockedGoroutine(t *testing.T) {
	base := Take()
	block := make(chan struct{})
	go func() { <-block }()
	err := base.Verify(150 * time.Millisecond)
	if err == nil {
		close(block)
		t.Fatal("blocked goroutine not reported as a leak")
	}
	if !strings.Contains(err.Error(), "TestVerifyCatchesABlockedGoroutine") {
		t.Fatalf("leak report does not name the creator: %v", err)
	}
	// Unblocking clears the leak within the grace period.
	close(block)
	if err := base.Verify(time.Second); err != nil {
		t.Fatalf("leak reported after the goroutine exited: %v", err)
	}
}

func TestVerifyToleratesSlowTeardown(t *testing.T) {
	base := Take()
	go func() { time.Sleep(100 * time.Millisecond) }()
	// The goroutine is still alive when Verify starts; the grace period
	// must absorb it.
	if err := base.Verify(2 * time.Second); err != nil {
		t.Fatalf("slow-exiting goroutine reported as a leak: %v", err)
	}
}

// fakeTB records Errorf calls and runs cleanups, standing in for *testing.T
// so Check's failure path is testable.
type fakeTB struct {
	cleanups []func()
	failed   bool
}

func (f *fakeTB) Helper()                           {}
func (f *fakeTB) Cleanup(fn func())                 { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(format string, args ...any) { f.failed = true }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckFailsTheTestOnLeak(t *testing.T) {
	ft := &fakeTB{}
	Check(ft)
	block := make(chan struct{})
	go func() { <-block }()
	defer close(block)
	// Shrink the wait by verifying through the recorded cleanup directly;
	// DefaultGrace applies, so this costs ~2s only on this failure path.
	ft.runCleanups()
	if !ft.failed {
		t.Fatal("Check did not fail the test for a leaked goroutine")
	}
}
