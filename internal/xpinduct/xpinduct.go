// Package xpinduct implements the XPATH wrapper inductor of Dalvi et al. [6]
// in the feature-based form the paper derives in Sec. 5: for each text node
// we look at the path from the node to the root and record, per position i
// (1 = the node's parent element), the tag name, the same-tag child number
// and every HTML attribute. Induction intersects the features of the
// labeled nodes; extraction matches every text node whose features contain
// that intersection. Theorem 5: this inductor is well-behaved.
package xpinduct

import (
	"sort"
	"strconv"
	"strings"

	"autowrap/internal/corpus"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpath"
)

// Options configures feature extraction.
type Options struct {
	// MaxDepth bounds how many ancestors contribute features; 0 means the
	// full path to the root. Bounding depth is an ablation knob, not a
	// paper parameter.
	MaxDepth int
	// IgnoreAttrs lists attribute keys excluded from features (e.g. style
	// junk). The defaults exclude nothing.
	IgnoreAttrs []string
}

// New builds the XPATH inductor over the corpus.
func New(c *corpus.Corpus, opt Options) *wrapper.FeatureSpace {
	ignored := make(map[string]bool, len(opt.IgnoreAttrs))
	for _, k := range opt.IgnoreAttrs {
		ignored[strings.ToLower(k)] = true
	}
	fs := wrapper.NewFeatureSpace("xpath", c, renderRule)
	for ord := 0; ord < c.NumTexts(); ord++ {
		n := c.Text(ord)
		pos := 0
		for _, anc := range n.Ancestors() {
			pos++
			if opt.MaxDepth > 0 && pos > opt.MaxDepth {
				break
			}
			fs.AddFeature(ord, wrapper.Attr{Kind: "tag", Pos: pos}, anc.Tag)
			fs.AddFeature(ord, wrapper.Attr{Kind: "cn", Pos: pos},
				strconv.Itoa(anc.ChildNumber()))
			for _, a := range anc.Attrs {
				if ignored[a.Key] {
					continue
				}
				fs.AddFeature(ord, wrapper.Attr{Kind: "@" + a.Key, Pos: pos}, a.Val)
			}
		}
	}
	fs.Seal()
	return fs
}

// renderRule converts an intersected feature set into the equivalent xpath
// expression (illustrated by Equation (3) in the paper). Positions count
// upward from the labeled text node's parent; position gaps render as '*'
// steps so the expression's semantics match the feature semantics exactly.
func renderRule(fs *wrapper.FeatureSpace, featIDs []int32) string {
	if len(featIDs) == 0 {
		return "//text()"
	}
	type stepInfo struct {
		tag   string
		cn    int
		attrs [][2]string
	}
	byPos := make(map[int]*stepInfo)
	maxPos := 0
	for _, fid := range featIDs {
		a := fs.FeatureAttr(fid)
		v := fs.FeatureValue(fid)
		si := byPos[a.Pos]
		if si == nil {
			si = &stepInfo{tag: "*"}
			byPos[a.Pos] = si
		}
		if a.Pos > maxPos {
			maxPos = a.Pos
		}
		switch {
		case a.Kind == "tag":
			si.tag = v
		case a.Kind == "cn":
			si.cn, _ = strconv.Atoi(v)
		case strings.HasPrefix(a.Kind, "@"):
			si.attrs = append(si.attrs, [2]string{a.Kind[1:], v})
		}
	}
	var sb strings.Builder
	for pos := maxPos; pos >= 1; pos-- {
		if pos == maxPos {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		si := byPos[pos]
		if si == nil {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(si.tag)
		if si.cn > 0 {
			sb.WriteString("[")
			sb.WriteString(strconv.Itoa(si.cn))
			sb.WriteString("]")
		}
		sort.Slice(si.attrs, func(i, j int) bool { return si.attrs[i][0] < si.attrs[j][0] })
		for _, kv := range si.attrs {
			sb.WriteString("[@")
			sb.WriteString(kv[0])
			sb.WriteString("='")
			sb.WriteString(kv[1])
			sb.WriteString("']")
		}
	}
	sb.WriteString("/text()")
	return sb.String()
}

// RuleExpr parses the rendered rule of a wrapper produced by this inductor.
// It exists so integration tests can verify that the rendered xpath
// evaluates to exactly the wrapper's extraction.
func RuleExpr(w wrapper.Wrapper) (*xpath.Expr, error) {
	return xpath.Parse(w.Rule())
}
