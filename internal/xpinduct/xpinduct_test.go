package xpinduct

import (
	"fmt"
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/enum"
	"autowrap/internal/wrapper"
)

func dealerSite() *corpus.Corpus {
	mk := func(rows ...[3]string) string {
		var sb strings.Builder
		sb.WriteString(`<html><body><div class="header"><h1>Dealer Locator</h1></div>`)
		sb.WriteString(`<div class="dealerlinks"><table>`)
		for _, r := range rows {
			fmt.Fprintf(&sb,
				`<tr><td><u>%s</u><br>%s</td><td>%s</td></tr>`, r[0], r[1], r[2])
		}
		sb.WriteString(`</table></div>`)
		sb.WriteString(`<div class="footer">Copyright 2010</div></body></html>`)
		return sb.String()
	}
	return corpus.ParseHTML([]string{
		mk([3]string{"PORTER FURNITURE", "201 HWY 30 West", "662-534-3672"},
			[3]string{"WOODLAND FURNITURE", "123 Main St", "662-456-4315"}),
		mk([3]string{"ACME CHAIRS", "9 Elm Ave", "555-111-2222"},
			[3]string{"BEDS AND MORE", "77 Oak Blvd", "555-333-4444"},
			[3]string{"SOFA CITY", "4 Pine Rd", "555-555-6666"}),
	})
}

func ords(t *testing.T, c *corpus.Corpus, contents ...string) *bitset.Set {
	t.Helper()
	s := c.EmptySet()
	for _, want := range contents {
		found := false
		for ord := 0; ord < c.NumTexts(); ord++ {
			if c.TextContent(ord) == want {
				s.Add(ord)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("content %q not found", want)
		}
	}
	return s
}

func TestInduceFromTwoNames(t *testing.T) {
	c := dealerSite()
	ind := New(c, Options{})
	// Labels from different row positions, so the child-number feature at
	// the <tr> level drops out of the intersection.
	w, err := ind.Induce(ords(t, c, "PORTER FURNITURE", "BEDS AND MORE"))
	if err != nil {
		t.Fatal(err)
	}
	got := c.Contents(w.Extract())
	if len(got) != 5 {
		t.Fatalf("extracted %v, want the 5 names", got)
	}
	for _, v := range got {
		if !strings.Contains(v, " ") || strings.Contains(v, "-") {
			t.Fatalf("unexpected extraction %q", v)
		}
	}
}

func TestRuleRendersAsXPath(t *testing.T) {
	c := dealerSite()
	ind := New(c, Options{})
	w, _ := ind.Induce(ords(t, c, "PORTER FURNITURE", "ACME CHAIRS"))
	rule := w.Rule()
	if !strings.Contains(rule, "u") || !strings.HasSuffix(rule, "/text()") {
		t.Fatalf("rule = %q", rule)
	}
	if !strings.Contains(rule, "dealerlinks") {
		t.Fatalf("rule should mention the ancestor class: %q", rule)
	}
}

// TestRuleEvalMatchesExtraction: the rendered xpath, evaluated by the xpath
// engine, selects exactly the wrapper's extraction. This ties the feature
// semantics to the concrete wrapper language.
func TestRuleEvalMatchesExtraction(t *testing.T) {
	c := dealerSite()
	ind := New(c, Options{})
	cases := [][]string{
		{"PORTER FURNITURE", "ACME CHAIRS"},
		{"PORTER FURNITURE"},
		{"201 HWY 30 West", "9 Elm Ave"},
		{"PORTER FURNITURE", "9 Elm Ave"},          // noisy mix
		{"Dealer Locator", "Copyright 2010"},       // junk mix
		{"662-534-3672", "555-111-2222"},           // phones (second td)
		{"PORTER FURNITURE", "WOODLAND FURNITURE"}, // same page
	}
	for _, labels := range cases {
		w, err := ind.Induce(ords(t, c, labels...))
		if err != nil {
			t.Fatal(err)
		}
		expr, err := RuleExpr(w)
		if err != nil {
			t.Fatalf("rule %q does not parse: %v", w.Rule(), err)
		}
		viaXPath := c.EmptySet()
		for _, p := range c.Pages {
			for _, n := range expr.Eval(p.Root) {
				if ord := c.OrdinalOf(n); ord >= 0 {
					viaXPath.Add(ord)
				}
			}
		}
		if !viaXPath.Equal(w.Extract()) {
			t.Fatalf("labels %v: xpath eval (%d nodes) != feature extraction (%d nodes); rule %q",
				labels, viaXPath.Count(), w.Extract().Count(), w.Rule())
		}
	}
}

func TestNoiseOverGeneralizes(t *testing.T) {
	c := dealerSite()
	ind := New(c, Options{})
	clean, _ := ind.Induce(ords(t, c, "PORTER FURNITURE", "ACME CHAIRS"))
	noisy, _ := ind.Induce(ords(t, c, "PORTER FURNITURE", "ACME CHAIRS", "201 HWY 30 West"))
	if noisy.Extract().Count() <= clean.Extract().Count() {
		t.Fatalf("noisy wrapper should over-generalize: %d vs %d",
			noisy.Extract().Count(), clean.Extract().Count())
	}
}

func TestWellBehaved(t *testing.T) {
	c := dealerSite()
	ind := New(c, Options{})
	labels := ords(t, c, "PORTER FURNITURE", "ACME CHAIRS", "SOFA CITY",
		"9 Elm Ave", "Copyright 2010")
	if err := wrapper.CheckWellBehaved(ind, labels); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerationAgreement(t *testing.T) {
	c := dealerSite()
	ind := New(c, Options{})
	labels := ords(t, c, "PORTER FURNITURE", "ACME CHAIRS", "SOFA CITY",
		"9 Elm Ave", "662-534-3672", "Dealer Locator")
	naive, err := enum.Naive(ind, labels)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := enum.BottomUp(ind, labels, enum.Options{})
	if err != nil {
		t.Fatal(err)
	}
	td, err := enum.TopDown(ind, labels, enum.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(naive.Signatures()) != fmt.Sprint(bu.Signatures()) {
		t.Fatalf("BottomUp != Naive: %d vs %d", len(bu.Items), len(naive.Items))
	}
	if fmt.Sprint(naive.Signatures()) != fmt.Sprint(td.Signatures()) {
		t.Fatalf("TopDown != Naive: %d vs %d", len(td.Items), len(naive.Items))
	}
	if td.Calls != int64(len(naive.Items)) {
		t.Fatalf("Theorem 3 violated: %d calls for k=%d", td.Calls, len(naive.Items))
	}
	if bu.Calls > int64(len(naive.Items))*int64(labels.Count()) {
		t.Fatalf("Theorem 2 violated: %d calls", bu.Calls)
	}
}

func TestMaxDepthOption(t *testing.T) {
	c := dealerSite()
	full := New(c, Options{})
	shallow := New(c, Options{MaxDepth: 1})
	labels := ords(t, c, "PORTER FURNITURE", "ACME CHAIRS")
	wf, _ := full.Induce(labels)
	ws, _ := shallow.Induce(labels)
	// Depth-1 features (just the <u> parent) cannot exclude other text
	// wrapped in matching elements at other positions; the shallow wrapper
	// is at most as specific.
	if !wf.Extract().SubsetOf(ws.Extract()) {
		t.Fatal("shallow features must be weaker or equal")
	}
}

func TestIgnoreAttrs(t *testing.T) {
	c := corpus.ParseHTML([]string{
		`<div class="a" style="color:red"><span>x</span></div><div class="b" style="color:red"><span>y</span></div>`,
	})
	withStyle := New(c, Options{})
	noStyle := New(c, Options{IgnoreAttrs: []string{"style"}})
	labels := ords(t, c, "x")
	w1, _ := withStyle.Induce(labels)
	w2, _ := noStyle.Induce(labels)
	// Ignoring style removes a shared feature; class still separates.
	if w1.Extract().Count() != 1 || w2.Extract().Count() != 1 {
		t.Fatalf("counts: %d, %d", w1.Extract().Count(), w2.Extract().Count())
	}
	if strings.Contains(w2.Rule(), "style") {
		t.Fatalf("ignored attr leaked into rule: %q", w2.Rule())
	}
}

func TestEmptyLabelsRejected(t *testing.T) {
	c := dealerSite()
	ind := New(c, Options{})
	if _, err := ind.Induce(c.EmptySet()); err == nil {
		t.Fatal("expected error")
	}
}
