package xpinduct

import (
	"math/rand"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/gen"
)

// TestRuleEvalMatchesExtractionOnGeneratedSites closes the loop between the
// feature semantics and the concrete xpath language on realistic markup:
// for random label subsets over generated dealer sites, the rendered rule,
// evaluated by the xpath engine, selects exactly the wrapper's extraction.
func TestRuleEvalMatchesExtractionOnGeneratedSites(t *testing.T) {
	pool := gen.BusinessPool(77, 400, 0)
	rng := rand.New(rand.NewSource(123))
	for seed := int64(0); seed < 5; seed++ {
		site, err := gen.DealerSite(gen.DealerConfig{Seed: seed + 200, Pool: pool, NumPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		c := site.Corpus
		ind := New(c, Options{})
		for trial := 0; trial < 6; trial++ {
			labels := bitset.New(c.NumTexts())
			n := 1 + rng.Intn(5)
			for labels.Count() < n {
				labels.Add(rng.Intn(c.NumTexts()))
			}
			w, err := ind.Induce(labels)
			if err != nil {
				t.Fatal(err)
			}
			expr, err := RuleExpr(w)
			if err != nil {
				t.Fatalf("site %s labels %v: rule %q does not parse: %v",
					site.Name, labels.Indices(), w.Rule(), err)
			}
			viaXPath := c.EmptySet()
			for _, p := range c.Pages {
				for _, node := range expr.Eval(p.Root) {
					if ord := c.OrdinalOf(node); ord >= 0 {
						viaXPath.Add(ord)
					}
				}
			}
			if !viaXPath.Equal(w.Extract()) {
				t.Fatalf("site %s (%s layout) labels %v: xpath eval %d nodes != extraction %d nodes; rule %q",
					site.Name, site.Layout, labels.Indices(),
					viaXPath.Count(), w.Extract().Count(), w.Rule())
			}
		}
	}
}
