package xpinduct

import (
	"fmt"

	"autowrap/internal/corpus"
	"autowrap/internal/dom"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpath"
)

// Compiled is the portable form of an XPATH wrapper: the rendered rule
// parsed once into an *xpath.Expr and evaluated against any page root.
// Extraction keeps only the extractable text-node universe
// (corpus.IsExtractableText), matching what induction indexed.
type Compiled struct {
	expr *xpath.Expr
}

// Compile converts an induced XPATH wrapper into its portable form by
// parsing the wrapper's rendered rule. Only wrappers from the xpath feature
// space compile; TABLE or other feature wrappers are rejected.
func Compile(w wrapper.Wrapper) (*Compiled, error) {
	fw, ok := w.(*wrapper.FeatureWrapper)
	if !ok || fw.Space().Name() != "xpath" {
		return nil, fmt.Errorf("xpinduct: cannot compile %T into a portable xpath wrapper", w)
	}
	return CompileRule(w.Rule())
}

// CompileRule compiles an xpath rule string — the store's load path, where
// rules arrive from persisted JSON rather than a live wrapper.
func CompileRule(rule string) (*Compiled, error) {
	expr, err := xpath.Parse(rule)
	if err != nil {
		return nil, fmt.Errorf("xpinduct: compile: %w", err)
	}
	if !expr.Text {
		return nil, fmt.Errorf("xpinduct: compile: rule %q does not select text nodes", rule)
	}
	return &Compiled{expr: expr}, nil
}

// Lang implements wrapper.Portable.
func (c *Compiled) Lang() string { return "xpath" }

// Rule implements wrapper.Portable.
func (c *Compiled) Rule() string { return c.expr.String() }

// ApplyPage implements wrapper.Portable.
func (c *Compiled) ApplyPage(root *dom.Node) []*dom.Node {
	nodes := c.expr.Eval(root)
	out := make([]*dom.Node, 0, len(nodes))
	for _, n := range nodes {
		if corpus.IsExtractableText(n) {
			out = append(out, n)
		}
	}
	return out
}

var _ wrapper.Portable = (*Compiled)(nil)
