package shard_test

import (
	"testing"

	"autowrap/internal/shard"
)

// FuzzRingOwner throws arbitrary site IDs at rings of arbitrary size and
// checks the three invariants the fleet depends on: the owner is always
// a single shard in range, an identically-built ring agrees (restart
// stability), and growing the fleet by one only ever relocates a site to
// the new shard.
func FuzzRingOwner(f *testing.F) {
	f.Add("dealer-001", uint8(4))
	f.Add("", uint8(1))
	f.Add("news.example.com/listing?page=2", uint8(8))
	f.Add("\x00\xff\xfe", uint8(3))
	f.Add("a", uint8(16))
	f.Fuzz(func(t *testing.T, site string, shards uint8) {
		n := int(shards%16) + 1
		r := shard.NewRing(n, 32)
		got := r.Owner(site)
		if got < 0 || got >= n {
			t.Fatalf("Owner(%q) = %d with %d shards, out of range", site, got, n)
		}
		if again := shard.NewRing(n, 32).Owner(site); again != got {
			t.Fatalf("Owner(%q) unstable across construction: %d vs %d", site, got, again)
		}
		grown := shard.NewRing(n+1, 32).Owner(site)
		if grown != got && grown != n {
			t.Fatalf("Owner(%q) moved %d->%d when growing %d->%d shards; only the new shard %d may gain keys", site, got, grown, n, n+1, n)
		}
	})
}
