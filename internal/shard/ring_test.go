package shard_test

import (
	"fmt"
	"testing"

	"autowrap/internal/shard"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("site-%05d.example.com", i)
	}
	return out
}

func TestRingOwnerInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		r := shard.NewRing(n, 64)
		for _, k := range keys(2000) {
			got := r.Owner(k)
			if got < 0 || got >= n {
				t.Fatalf("shards=%d Owner(%q) = %d, out of range", n, k, got)
			}
		}
	}
}

// TestRingStableAcrossConstruction pins that two rings built with the
// same parameters route identically — the in-process equivalent of a
// restart: a rebuilt router must agree with the store partitioner that
// loaded each shard's sites before it.
func TestRingStableAcrossConstruction(t *testing.T) {
	a := shard.NewRing(8, 128)
	b := shard.NewRing(8, 128)
	for _, k := range keys(5000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("Owner(%q) differs across identically-built rings: %d vs %d", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingGoldenOwners pins the byte-level routing contract. If this
// test fails, the hash or the vnode labels changed, and every deployed
// fleet would reshard on upgrade — don't "fix" the expectations without
// meaning exactly that.
func TestRingGoldenOwners(t *testing.T) {
	r := shard.NewRing(4, 128)
	golden := []struct {
		site string
		want int
	}{
		{"dealer-001", 2},
		{"dealer-002", 3},
		{"dealer-003", 1},
		{"news.example.com", 2},
		{"shop.example.org", 1},
		{"forum.example.net", 3},
		{"site-000", 0},
		{"site-001", 2},
		{"bench", 1},
	}
	for _, g := range golden {
		if got := r.Owner(g.site); got != g.want {
			t.Errorf("Owner(%q) = %d, want %d (routing is no longer byte-stable)", g.site, got, g.want)
		}
	}
}

// TestRingMinimalMovement checks the consistent-hashing contract on
// growth: resharding N -> N+1 moves roughly 1/(N+1) of keys, and every
// key that moves lands on the new shard — existing shards never trade
// keys among themselves.
func TestRingMinimalMovement(t *testing.T) {
	const total = 20000
	ks := keys(total)
	for _, n := range []int{2, 4, 8} {
		old := shard.NewRing(n, 128)
		grown := shard.NewRing(n+1, 128)
		moved := 0
		for _, k := range ks {
			a, b := old.Owner(k), grown.Owner(k)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("shards %d->%d: %q moved %d->%d, but only the new shard %d may gain keys", n, n+1, k, a, b, n)
			}
		}
		frac := float64(moved) / total
		ideal := 1.0 / float64(n+1)
		if frac > 1.5*ideal {
			t.Errorf("shards %d->%d moved %.3f of keys, want <= 1.5x ideal %.3f", n, n+1, frac, ideal)
		}
		if moved == 0 {
			t.Errorf("shards %d->%d moved no keys; the new shard owns nothing", n, n+1)
		}
	}
}

// TestRingBalance bounds the load skew virtual nodes are supposed to
// buy: with the default vnode count no shard strays far from the mean.
// The inputs are fixed, so this is deterministic, not flaky.
func TestRingBalance(t *testing.T) {
	const total = 20000
	ks := keys(total)
	for _, n := range []int{2, 4, 8} {
		r := shard.NewRing(n, shard.DefaultVNodes)
		counts := make([]int, n)
		for _, k := range ks {
			counts[r.Owner(k)]++
		}
		mean := float64(total) / float64(n)
		for s, c := range counts {
			ratio := float64(c) / mean
			if ratio < 0.5 || ratio > 1.6 {
				t.Errorf("shards=%d: shard %d owns %d keys (%.2fx mean), outside [0.5, 1.6]; counts=%v", n, s, c, ratio, counts)
			}
		}
	}
}

func TestRingPartition(t *testing.T) {
	r := shard.NewRing(4, 128)
	ks := keys(1000)
	parts := r.Partition(ks)
	if len(parts) != 4 {
		t.Fatalf("Partition returned %d buckets, want 4", len(parts))
	}
	seen := make(map[string]int)
	for s, bucket := range parts {
		for _, k := range bucket {
			if prev, dup := seen[k]; dup {
				t.Fatalf("%q appears in shards %d and %d", k, prev, s)
			}
			seen[k] = s
			if r.Owner(k) != s {
				t.Fatalf("%q in bucket %d but Owner says %d", k, s, r.Owner(k))
			}
		}
	}
	if len(seen) != len(ks) {
		t.Fatalf("Partition covered %d of %d keys", len(seen), len(ks))
	}
}

func TestRingClamping(t *testing.T) {
	r := shard.NewRing(0, 0)
	if r.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1 after clamping", r.Shards())
	}
	if r.VNodes() != shard.DefaultVNodes {
		t.Fatalf("VNodes() = %d, want DefaultVNodes %d", r.VNodes(), shard.DefaultVNodes)
	}
	if got := r.Owner("anything"); got != 0 {
		t.Fatalf("one-shard ring Owner = %d, want 0", got)
	}
}

// TestRingOwnerAllocFree pins that routing a request to its shard costs
// zero heap allocations — Owner sits on the fleet's extract hot path.
func TestRingOwnerAllocFree(t *testing.T) {
	r := shard.NewRing(8, 128)
	site := "dealer-042.example.com"
	allocs := testing.AllocsPerRun(1000, func() {
		_ = r.Owner(site)
	})
	if allocs != 0 {
		t.Fatalf("Owner allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := shard.NewRing(8, 128)
	ks := keys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(ks[i&1023])
	}
}

// TestRingFingerprint pins the fingerprint's two contractual properties:
// equal parameters agree (across independently built rings), and any
// parameter change — shard count or vnode count — disagrees. The fleet
// ring-agreement handshake rides entirely on this.
func TestRingFingerprint(t *testing.T) {
	a := shard.NewRing(4, 64)
	b := shard.NewRing(4, 64)
	if a.Fingerprint() == "" {
		t.Fatal("Fingerprint() is empty")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal rings disagree: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if got := shard.NewRing(3, 64).Fingerprint(); got == a.Fingerprint() {
		t.Fatalf("3-shard ring shares fingerprint with 4-shard ring: %q", got)
	}
	if got := shard.NewRing(4, 128).Fingerprint(); got == a.Fingerprint() {
		t.Fatalf("vnodes=128 ring shares fingerprint with vnodes=64 ring: %q", got)
	}
}
