// Package shard partitions the serving plane by site: a consistent-hash
// ring with virtual nodes assigns every site ID to exactly one of N
// shards. The assignment is a fixed function of the site's bytes — no
// per-process seed, no randomization — so it is byte-stable across
// restarts and across machines: a router, a store partitioner and a load
// generator built with the same (shards, vnodes) parameters always agree
// on who owns what. Growing the fleet moves the minimum: resharding
// N -> N+1 relocates only the ~1/(N+1) of sites whose ring arcs the new
// shard's virtual nodes claim, and every relocated site moves *to* the
// new shard — an existing shard never steals from another.
package shard

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard when NewRing is
// given vnodes < 1. 128 points per shard keeps the expected load imbalance
// across shards in the ±10-15% range without making ring construction or
// the lookup table noticeable.
const DefaultVNodes = 128

// fnv-1a 64-bit parameters. The hash is pinned here rather than taken
// from hash/fnv so the ring's byte-stability is a property of this
// package, not of a stdlib implementation detail, and so Owner can run
// over a string without converting it to []byte.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashString is FNV-1a over the string's bytes, finished with a 64-bit
// avalanche mix. Raw FNV-1a keeps nearly-identical inputs (vnode labels,
// sequential site IDs) correlated in the high bits, which clusters ring
// points and skews shard balance as badly as 80/20; the finalizer spreads
// them uniformly. Allocation-free.
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Ring is an immutable consistent-hash ring: build one with NewRing and
// share it freely — lookups are read-only and safe for concurrent use.
// A site's owner is the shard whose next virtual node clockwise from
// hash(site) is reached first.
type Ring struct {
	shards int
	vnodes int
	// hash is the sorted circle of virtual-node positions; owner[i] is
	// the shard that placed hash[i]. Parallel slices keep Owner's binary
	// search walking one contiguous uint64 array.
	hash  []uint64
	owner []int32
	// fingerprint condenses the whole assignment function — shard count,
	// vnode count and every ring point — into one comparable string; see
	// Fingerprint.
	fingerprint string
}

// NewRing builds the ring for a fleet of the given size. shards < 1 is
// clamped to 1 (a one-shard ring routes everything to shard 0, which is
// exactly the unsharded daemon); vnodes < 1 selects DefaultVNodes. Two
// rings built with equal parameters are interchangeable — same points,
// same owners, forever.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		shards: shards,
		vnodes: vnodes,
		hash:   make([]uint64, 0, shards*vnodes),
		owner:  make([]int32, 0, shards*vnodes),
	}
	type point struct {
		h     uint64
		shard int32
	}
	points := make([]point, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		// The label feeding the hash is part of the wire-stable contract:
		// changing it reshards every deployment. See TestRingGoldenOwners.
		label := "shard-" + strconv.Itoa(s) + "/vnode-"
		for v := 0; v < vnodes; v++ {
			points = append(points, point{hashString(label + strconv.Itoa(v)), int32(s)})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		// A 64-bit collision between two labels is astronomically unlikely;
		// break the tie deterministically anyway so construction order can
		// never matter.
		return points[i].shard < points[j].shard
	})
	for _, p := range points {
		r.hash = append(r.hash, p.h)
		r.owner = append(r.owner, p.shard)
	}
	// Fold every sorted ring point (position and owner) into one 64-bit
	// digest with the same FNV-1a/avalanche mix used for placement. Two
	// rings agree on this digest iff they agree on the entire assignment
	// function, so it can stand in for "same topology" on the wire.
	d := uint64(fnvOffset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			d ^= (v >> (8 * i)) & 0xff
			d *= fnvPrime64
		}
	}
	mix(uint64(shards))
	mix(uint64(vnodes))
	for i := range r.hash {
		mix(r.hash[i])
		mix(uint64(r.owner[i]))
	}
	d ^= d >> 33
	d *= 0xff51afd7ed558ccd
	d ^= d >> 33
	r.fingerprint = fmt.Sprintf("n%d-v%d-%016x", shards, vnodes, d)
	return r
}

// Fingerprint identifies the ring's complete assignment function — shard
// count, vnode count and every ring point — as one short string, e.g.
// "n4-v128-9f2a...". Two processes whose rings print the same fingerprint
// route every site identically; any difference in parameters (or in the
// label contract baked into NewRing) changes it. The fleet front end pins
// this value on every forwarded request (X-Ring-Hash) and shard processes
// refuse requests carrying a different one, so a misconfigured peer can
// never silently serve the wrong partition.
func (r *Ring) Fingerprint() string { return r.fingerprint }

// Shards is the fleet size the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// VNodes is the virtual-node count per shard.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner maps a site ID to its shard in [0, Shards()). It is
// allocation-free — one hash plus one binary search — and sits on the
// fleet router's request hot path.
func (r *Ring) Owner(site string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashString(site)
	// First virtual node clockwise from h, wrapping past the top.
	lo, hi := 0, len(r.hash)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.hash[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.hash) {
		lo = 0
	}
	return int(r.owner[lo])
}

// Partition groups site IDs by owning shard: the returned slice has
// exactly Shards() buckets and every input lands in exactly one of them,
// in input order.
func (r *Ring) Partition(sites []string) [][]string {
	out := make([][]string, r.shards)
	for _, s := range sites {
		k := r.Owner(s)
		out[k] = append(out[k], s)
	}
	return out
}
