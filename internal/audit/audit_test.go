package audit_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autowrap/internal/audit"
)

func openLedger(t *testing.T, path string, opt audit.Options) *audit.Ledger {
	t.Helper()
	l, err := audit.Open(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// fillLedger appends n lifecycle events across shards and sites.
func fillLedger(t *testing.T, l *audit.Ledger, n int) {
	t.Helper()
	events := []string{audit.EventLearn, audit.EventCandidate, audit.EventPromote,
		audit.EventRollback, audit.EventDriftTrip, audit.EventAutoRepair}
	for i := 0; i < n; i++ {
		err := l.Append(i%4, events[i%len(events)],
			fmt.Sprintf("site-%d.example.com", i%7), i%3, fmt.Sprintf("event %d", i))
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestLedgerChainAndVerify pins the happy path: events append, the
// chain verifies from genesis, counters agree, reopen continues the
// chain seamlessly and the result still verifies.
func TestLedgerChainAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l := openLedger(t, path, audit.Options{NoSync: true})
	fillLedger(t, l, 10)
	st := l.Stats()
	if st.Events != 10 || st.Records != 10 || st.Checkpoints != 0 {
		t.Fatalf("stats after 10 events: %+v", st)
	}
	rep, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 10 || rep.LastSeq != 10 {
		t.Fatalf("verify report: %+v", rep)
	}
	recent := l.Recent(3)
	if len(recent) != 3 || recent[2].Seq != 10 || recent[0].Seq != 8 {
		t.Fatalf("Recent(3) = %+v", recent)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues the chain: the next record's Prev is the old head.
	l2 := openLedger(t, path, audit.Options{NoSync: true})
	defer l2.Close()
	if got := l2.Stats(); got.LastSeq != 10 {
		t.Fatalf("reopen lost the chain position: %+v", got)
	}
	fillLedger(t, l2, 5)
	rep2, err := audit.VerifyFile(path)
	if err != nil {
		t.Fatalf("chain broken across reopen: %v", err)
	}
	if rep2.Events != 15 || rep2.LastSeq != 15 {
		t.Fatalf("after reopen+append: %+v", rep2)
	}
}

// TestLedgerCheckpoints pins the Merkle cadence: every CheckpointEvery
// events a checkpoint record lands, its root verifies, and tampering
// with a batch's event makes the walk fail before its checkpoint.
func TestLedgerCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l := openLedger(t, path, audit.Options{CheckpointEvery: 4, NoSync: true})
	fillLedger(t, l, 10)
	st := l.Stats()
	if st.Checkpoints != 2 {
		t.Fatalf("10 events at cadence 4: %d checkpoints, want 2", st.Checkpoints)
	}
	if st.Records != 12 {
		t.Fatalf("10 events + 2 checkpoints: %d records", st.Records)
	}
	if _, err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint records must carry a sha256-sized hex root.
	found := 0
	for _, rec := range l.Recent(0) {
		if rec.Event == audit.EventCheckpoint {
			found++
			if len(rec.Detail) != 64 {
				t.Fatalf("checkpoint root %q is not sha256 hex", rec.Detail)
			}
		}
	}
	if found != 2 {
		t.Fatalf("recent ring shows %d checkpoints, want 2", found)
	}
	l.Close()
}

// TestLedgerTamperDetectedAtEveryOffset is the acceptance pin for
// tamper-evidence: flip one bit at EVERY byte of the ledger in turn, and
// each time Verify must fail with a *TamperError whose sequence number
// is no later than the record the damaged byte belongs to (damage to
// record k may legitimately surface at k's own hash or at k+1's Prev
// link, never after).
func TestLedgerTamperDetectedAtEveryOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l := openLedger(t, path, audit.Options{CheckpointEvery: 3, NoSync: true})
	fillLedger(t, l, 7)
	l.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Map each byte offset to the 1-based line (record) it belongs to.
	lineOf := make([]uint64, len(clean))
	line := uint64(1)
	for i, b := range clean {
		lineOf[i] = line
		if b == '\n' {
			line++
		}
	}
	tampered := filepath.Join(t.TempDir(), "tampered.jsonl")
	for off := 0; off < len(clean); off++ {
		data := append([]byte(nil), clean...)
		data[off] ^= 0x01
		if err := os.WriteFile(tampered, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, verr := audit.VerifyFile(tampered)
		var te *audit.TamperError
		if !errors.As(verr, &te) {
			t.Fatalf("flip at byte %d (record %d) went undetected: %v", off, lineOf[off], verr)
		}
		if te.Seq > lineOf[off]+1 {
			t.Fatalf("flip at byte %d (record %d) blamed on seq %d — damage localized too late",
				off, lineOf[off], te.Seq)
		}
	}
}

// TestLedgerTornTailRecovery pins the crash asymmetry: Open truncates an
// unterminated final line and continues; a torn line in the middle (or
// any complete-but-wrong record) refuses to open.
func TestLedgerTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l := openLedger(t, path, audit.Options{NoSync: true})
	fillLedger(t, l, 5)
	l.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: drop the final newline and half the last record.
	if err := os.WriteFile(path, clean[:len(clean)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openLedger(t, path, audit.Options{NoSync: true})
	if l2.RecoveredBytes() == 0 {
		t.Fatal("torn tail went unreported")
	}
	if got := l2.Stats(); got.LastSeq != 4 {
		t.Fatalf("recovery kept seq %d, want 4 (the last complete record)", got.LastSeq)
	}
	// The chain continues from the recovered head and verifies whole.
	if err := l2.Append(0, audit.EventPromote, "x", 2, "post-recovery"); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	rep, err := audit.VerifyFile(path)
	if err != nil {
		t.Fatalf("post-recovery chain does not verify: %v", err)
	}
	if rep.LastSeq != 5 {
		t.Fatalf("post-recovery seq %d, want 5", rep.LastSeq)
	}

	// Mid-chain damage is tampering, not a crash: Open must refuse.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, oerr := audit.Open(path, audit.Options{})
	var te *audit.TamperError
	if !errors.As(oerr, &te) {
		t.Fatalf("Open accepted a mid-chain break: %v", oerr)
	}
}

// TestLedgerNilSafety pins that a nil ledger is a full no-op surface, so
// the serving plane can thread one through unconditionally.
func TestLedgerNilSafety(t *testing.T) {
	var l *audit.Ledger
	if err := l.Append(0, audit.EventLearn, "x", 1, ""); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st != (audit.Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if rec := l.Recent(5); rec != nil {
		t.Fatalf("nil Recent = %+v", rec)
	}
	if p := l.Path(); p != "" {
		t.Fatalf("nil Path = %q", p)
	}
	if _, err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerClosedAppend pins that appends after Close fail loudly.
func TestLedgerClosedAppend(t *testing.T) {
	l := openLedger(t, filepath.Join(t.TempDir(), "a.jsonl"), audit.Options{NoSync: true})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, audit.EventLearn, "x", 1, ""); err == nil ||
		!strings.Contains(err.Error(), "closed") {
		t.Fatalf("append on closed ledger: %v", err)
	}
}
