// Package audit is the tamper-evident half of the durability subsystem:
// an append-only, hash-chained ledger of every lifecycle event in the
// fleet — learn, candidate, promote, rollback, drift trip, auto-repair.
// At fleet scale "which wrapper version produced this record and why was
// it promoted" must be answerable later and trustworthy then; the chain
// is what makes the answer trustworthy.
//
// The ledger is a JSON-lines file. Every record carries Prev (the hash
// of the record before it; "genesis" for the first) and Hash (sha256
// over the record's canonical encoding with Hash blanked). Any byte
// changed after the fact breaks either its own hash or its successor's
// Prev link, and Verify walks the chain from genesis and names the first
// sequence number where it breaks.
//
// Every CheckpointEvery events the ledger appends a checkpoint record
// whose Detail is the Merkle root over the batch's record hashes
// (pairwise sha256, odd leaf duplicated). The chain alone already
// detects tampering; checkpoints give an external auditor compact roots
// to copy somewhere the ledger's writer cannot reach — with the roots
// anchored elsewhere, even a full rewrite-and-rechain of the file is
// detectable.
//
// Crash recovery mirrors logstore's: Open truncates a torn (unterminated)
// final line and continues the chain from the last complete record, but
// any complete record that fails the chain fails Open with a
// *TamperError — a crash can tear the tail, only tampering breaks the
// middle.
package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Genesis is the Prev link of the first record in a ledger.
const Genesis = "genesis"

// Lifecycle event names recorded in the ledger. Checkpoints are emitted
// by the ledger itself.
const (
	EventLearn      = "learn"
	EventCandidate  = "candidate"
	EventPromote    = "promote"
	EventRollback   = "rollback"
	EventDriftTrip  = "drift-trip"
	EventAutoRepair = "auto-repair"
	EventCheckpoint = "checkpoint"
)

// Record is one chained ledger entry.
type Record struct {
	Seq     uint64 `json:"seq"`
	TimeMS  int64  `json:"time_unix_ms"`
	Shard   int    `json:"shard"`
	Event   string `json:"event"`
	Site    string `json:"site,omitempty"`
	Version int    `json:"version,omitempty"`
	// Detail is free-form context; for checkpoint records it is the hex
	// Merkle root over the batch's record hashes.
	Detail string `json:"detail,omitempty"`
	Prev   string `json:"prev"`
	Hash   string `json:"hash"`
}

// hashOf computes the record's chain hash: sha256 over the canonical
// JSON encoding with the Hash field blanked.
func hashOf(r Record) string {
	r.Hash = ""
	b, err := json.Marshal(r)
	if err != nil {
		// Record has no unmarshalable fields; this cannot happen.
		panic("audit: marshal record: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// merkleRoot folds leaf hashes pairwise (sha256(left||right)) up to one
// root, duplicating the last leaf at odd levels. Empty input yields the
// hash of nothing.
func merkleRoot(leaves [][]byte) []byte {
	if len(leaves) == 0 {
		sum := sha256.Sum256(nil)
		return sum[:]
	}
	level := make([][]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			sum := sha256.Sum256(append(append([]byte(nil), level[i]...), level[i+1]...))
			next = append(next, sum[:])
		}
		level = next
	}
	return level[0]
}

// TamperError reports the first broken link in a ledger walk.
type TamperError struct {
	Seq    uint64 // sequence number of the offending record
	Line   int    // 1-based line in the ledger file
	Reason string
	Err    error
}

func (e *TamperError) Error() string {
	return fmt.Sprintf("audit: chain broken at seq %d (line %d): %s", e.Seq, e.Line, e.Reason)
}

func (e *TamperError) Unwrap() error { return e.Err }

// Report summarizes a verified ledger.
type Report struct {
	Records     uint64 `json:"records"`
	Events      uint64 `json:"events"`
	Checkpoints uint64 `json:"checkpoints"`
	LastSeq     uint64 `json:"last_seq"`
	LastHash    string `json:"last_hash"`
}

// Stats are the ledger's live counters, exposed under /metrics.
type Stats struct {
	Records     uint64 `json:"records"`
	Events      uint64 `json:"events"`
	Checkpoints uint64 `json:"checkpoints"`
	LastSeq     uint64 `json:"last_seq"`
}

// Options tune a ledger; the zero value selects defaults.
type Options struct {
	// CheckpointEvery is the batch size between Merkle checkpoints.
	// Default 64 events.
	CheckpointEvery int
	// Recent is how many records the in-memory ring keeps for
	// GET /v1/audit. Default 512.
	Recent int
	// NoSync skips the fsync after each append (tests/benchmarks only).
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	if o.Recent <= 0 {
		o.Recent = 512
	}
	return o
}

// Ledger is an open audit ledger. All methods are safe on a nil
// receiver (appends become no-ops, reads return zero values), so the
// serving plane can thread one through unconditionally and auditing
// stays strictly opt-in.
type Ledger struct {
	path string
	opt  Options

	mu        sync.Mutex
	f         *os.File
	seq       uint64
	prev      string   // hash of the last record
	leaves    [][]byte // record hashes since the last checkpoint
	stats     Stats
	recent    []Record
	recovered int64 // bytes of torn tail Open dropped
}

// Open opens (creating if needed) the ledger at path, replaying and
// verifying the existing chain. A torn final line is truncated; a broken
// chain anywhere else fails with a *TamperError.
func Open(path string, opt Options) (*Ledger, error) {
	if path == "" {
		return nil, fmt.Errorf("audit: empty path")
	}
	opt = opt.withDefaults()
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("audit: %w", err)
	}
	st, torn, err := walkChain(data, true)
	if err != nil {
		return nil, err
	}
	if torn >= 0 {
		if err := os.Truncate(path, torn); err != nil {
			return nil, fmt.Errorf("audit: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	l := &Ledger{
		path:   path,
		opt:    opt,
		f:      f,
		seq:    st.seq,
		prev:   st.prev,
		leaves: st.leaves,
		stats:  st.stats(),
	}
	if torn >= 0 {
		l.recovered = int64(len(data)) - torn
	}
	n := len(st.recent)
	if n > opt.Recent {
		st.recent = st.recent[n-opt.Recent:]
	}
	l.recent = st.recent
	return l, nil
}

// Path returns the ledger file's path ("" on a nil ledger).
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// RecoveredBytes reports how many torn-tail bytes Open dropped.
func (l *Ledger) RecoveredBytes() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovered
}

// Append chains and persists one lifecycle event. On a nil ledger it is
// a no-op. Every CheckpointEvery events a checkpoint record follows
// automatically.
func (l *Ledger) Append(shard int, event, site string, version int, detail string) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("audit: ledger closed")
	}
	if err := l.appendLocked(shard, event, site, version, detail); err != nil {
		return err
	}
	if len(l.leaves) >= l.opt.CheckpointEvery {
		root := merkleRoot(l.leaves)
		l.leaves = l.leaves[:0]
		return l.appendLocked(shard, EventCheckpoint, "", 0, hex.EncodeToString(root))
	}
	return nil
}

func (l *Ledger) appendLocked(shard int, event, site string, version int, detail string) error {
	prev := l.prev
	if l.seq == 0 {
		prev = Genesis
	}
	rec := Record{
		Seq:     l.seq + 1,
		TimeMS:  time.Now().UnixMilli(),
		Shard:   shard,
		Event:   event,
		Site:    site,
		Version: version,
		Detail:  detail,
		Prev:    prev,
	}
	rec.Hash = hashOf(rec)
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	line = append(line, '\n')
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("audit: append: %w", err)
	}
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("audit: sync: %w", err)
		}
	}
	l.seq = rec.Seq
	l.prev = rec.Hash
	l.stats.Records++
	l.stats.LastSeq = rec.Seq
	if event == EventCheckpoint {
		l.stats.Checkpoints++
	} else {
		l.stats.Events++
		leaf, _ := hex.DecodeString(rec.Hash)
		l.leaves = append(l.leaves, leaf)
	}
	l.recent = append(l.recent, rec)
	if len(l.recent) > l.opt.Recent {
		l.recent = l.recent[len(l.recent)-l.opt.Recent:]
	}
	return nil
}

// Stats returns the live counters (zero on a nil ledger).
func (l *Ledger) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Recent returns up to n of the newest records, oldest first (nil on a
// nil ledger).
func (l *Ledger) Recent(n int) []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.recent) {
		n = len(l.recent)
	}
	return append([]Record(nil), l.recent[len(l.recent)-n:]...)
}

// Verify re-reads the ledger file and walks the whole chain from
// genesis, strictly: any invalid or torn line is a *TamperError naming
// the first offending sequence number.
func (l *Ledger) Verify() (Report, error) {
	if l == nil {
		return Report{}, nil
	}
	return VerifyFile(l.path)
}

// Close syncs and closes the ledger file.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if !l.opt.NoSync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// VerifyFile walks the chain of the ledger at path from genesis. It is
// strict: every line must be a complete, correctly chained record, and
// every checkpoint's Merkle root must match its batch. The returned
// error is a *TamperError naming the first broken sequence number.
func VerifyFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("audit: verify: %w", err)
	}
	st, _, err := walkChain(data, false)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Records:     st.stats().Records,
		Events:      st.stats().Events,
		Checkpoints: st.stats().Checkpoints,
		LastSeq:     st.seq,
		LastHash:    st.prev,
	}, nil
}

// chainState is the walk's running state: enough to verify, and enough
// for Open to continue appending where the file left off.
type chainState struct {
	seq         uint64
	prev        string
	leaves      [][]byte
	records     uint64
	events      uint64
	checkpoints uint64
	recent      []Record
}

func (st *chainState) stats() Stats {
	return Stats{Records: st.records, Events: st.events, Checkpoints: st.checkpoints, LastSeq: st.seq}
}

// walkChain verifies the serialized ledger line by line. When tornOK is
// true an unterminated final line is tolerated and its byte offset is
// returned for truncation (-1 when the file is clean); when false it is
// a *TamperError like any other damage.
func walkChain(data []byte, tornOK bool) (st chainState, tornAt int64, err error) {
	tornAt = -1
	st.prev = ""
	offset := int64(0)
	line := 0
	for len(data) > 0 {
		line++
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			if tornOK {
				return st, offset, nil
			}
			return st, -1, &TamperError{Seq: st.seq + 1, Line: line, Reason: "torn final record"}
		}
		raw := data[:nl]
		data = data[nl+1:]
		var rec Record
		if uerr := json.Unmarshal(raw, &rec); uerr != nil {
			return st, -1, &TamperError{Seq: st.seq + 1, Line: line,
				Reason: "unreadable record: " + uerr.Error(), Err: uerr}
		}
		// The ledger only ever writes canonical json.Marshal lines, so a
		// stored line that parses but differs from its re-encoding was
		// edited after the fact — e.g. a flipped byte in a field name that
		// json.Unmarshal would silently ignore.
		if canon, _ := json.Marshal(rec); !bytes.Equal(raw, canon) {
			return st, -1, &TamperError{Seq: st.seq + 1, Line: line,
				Reason: "non-canonical encoding: record bytes differ from their re-encoding"}
		}
		if rec.Seq != st.seq+1 {
			return st, -1, &TamperError{Seq: st.seq + 1, Line: line,
				Reason: fmt.Sprintf("sequence skew: record claims seq %d, chain expects %d", rec.Seq, st.seq+1)}
		}
		wantPrev := st.prev
		if st.seq == 0 {
			wantPrev = Genesis
		}
		if rec.Prev != wantPrev {
			return st, -1, &TamperError{Seq: rec.Seq, Line: line,
				Reason: fmt.Sprintf("prev-link mismatch: record carries %.16s…, chain head is %.16s…", rec.Prev, wantPrev)}
		}
		if got := hashOf(rec); got != rec.Hash {
			return st, -1, &TamperError{Seq: rec.Seq, Line: line,
				Reason: fmt.Sprintf("hash mismatch: stored %.16s…, computed %.16s…", rec.Hash, got)}
		}
		if rec.Event == EventCheckpoint {
			root := hex.EncodeToString(merkleRoot(st.leaves))
			if rec.Detail != root {
				return st, -1, &TamperError{Seq: rec.Seq, Line: line,
					Reason: fmt.Sprintf("checkpoint root mismatch: stored %.16s…, computed %.16s…", rec.Detail, root)}
			}
			st.leaves = st.leaves[:0]
			st.checkpoints++
		} else {
			leaf, derr := hex.DecodeString(rec.Hash)
			if derr != nil || len(leaf) != sha256.Size {
				return st, -1, &TamperError{Seq: rec.Seq, Line: line,
					Reason: "hash is not a sha256 hex digest", Err: derr}
			}
			st.leaves = append(st.leaves, leaf)
			st.events++
		}
		st.seq = rec.Seq
		st.prev = rec.Hash
		st.records++
		st.recent = append(st.recent, rec)
		if len(st.recent) > 4096 {
			st.recent = st.recent[len(st.recent)-2048:]
		}
		offset += int64(nl) + 1
	}
	return st, -1, nil
}
