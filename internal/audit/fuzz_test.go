package audit_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"autowrap/internal/audit"
	"autowrap/internal/chaos"
)

// FuzzAuditChain throws arbitrary bytes at the chain walker: whatever is
// on disk, Open must never panic, must answer either a working ledger
// (torn tails truncated) or a typed *TamperError, and a ledger it does
// return must keep the chain verifiable after further appends.
func FuzzAuditChain(f *testing.F) {
	// Seeds: a genuinely valid ledger, its truncations and mutations, and
	// the chaos corpus of historically decoder-breaking shapes.
	path := filepath.Join(f.TempDir(), "audit.jsonl")
	l, err := audit.Open(path, audit.Options{CheckpointEvery: 3, NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := l.Append(i%2, audit.EventPromote, "seed.example.com", i+1, ""); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0x01
	f.Add(mutated)
	for _, seed := range chaos.Seeds() {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "audit.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := audit.Open(path, audit.Options{NoSync: true})
		if err != nil {
			var te *audit.TamperError
			if !errors.As(err, &te) {
				t.Fatalf("Open failed without a typed error: %v", err)
			}
			return
		}
		defer l.Close()
		// A ledger Open accepted must continue its chain: append on top of
		// whatever survived and the whole file must still verify.
		if err := l.Append(0, audit.EventLearn, "fuzz.example.com", 1, "post-open"); err != nil {
			t.Fatalf("opened ledger refused an append: %v", err)
		}
		l.Close()
		rep, verr := audit.VerifyFile(path)
		if verr != nil {
			t.Fatalf("chain broken after append on opened ledger: %v", verr)
		}
		if rep.LastSeq == 0 {
			t.Fatal("verified ledger claims no records despite an append")
		}
	})
}
