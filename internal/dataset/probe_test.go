package dataset

import (
	"testing"
	"time"

	"autowrap/internal/gen"
)

// TestProbeGeneration guards against generation-time regressions: a site
// must build in well under a second.
func TestProbeGeneration(t *testing.T) {
	start := time.Now()
	pool := gen.BusinessPool(1001, 4000, 0)
	t.Logf("pool built in %v (%d businesses)", time.Since(start), len(pool))
	for i := 0; i < 3; i++ {
		s := time.Now()
		site, err := gen.DealerSite(gen.DealerConfig{Seed: int64(1001 + i*97 + 13), Pool: pool, NumPages: 12})
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(s)
		t.Logf("dealer site %d built in %v (%d texts, layout %s)", i, d, site.Corpus.NumTexts(), site.Layout)
		if d > 2*time.Second {
			t.Fatalf("dealer site generation too slow: %v", d)
		}
	}
	s := time.Now()
	disc, err := gen.DiscSite(gen.DiscConfig{Seed: 2031, SeedAlbums: gen.AlbumPool(2002, 11, 0.35)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("disc site built in %v (%d texts)", time.Since(s), disc.Corpus.NumTexts())
}
