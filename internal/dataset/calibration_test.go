package dataset

import (
	"testing"

	"autowrap/internal/annotate"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
)

// smallDealers keeps calibration tests fast while large enough for stable
// pooled statistics.
func smallDealers(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Dealers(DealersOptions{NumSites: 60})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestDealersAnnotatorCalibration checks the dictionary annotator lands near
// the paper's reported quality (p=0.95, r=0.24 for DEALERS).
func TestDealersAnnotatorCalibration(t *testing.T) {
	ds := smallDealers(t)
	var pooled annotate.Stats
	for _, s := range ds.Sites {
		labels := ds.Annotator.Annotate(s.Corpus)
		pooled = pooled.Add(annotate.Measure(s.Corpus, labels, s.Gold[ds.TypeName]))
	}
	p, r := pooled.Precision(), pooled.Recall()
	t.Logf("DEALERS annotator: precision=%.3f recall=%.3f (paper: 0.95 / 0.24); TP=%d FP=%d",
		p, r, pooled.TP, pooled.FP)
	if p < 0.88 || p > 0.995 {
		t.Errorf("dealer annotator precision %.3f outside [0.88, 0.995]", p)
	}
	if r < 0.19 || r > 0.30 {
		t.Errorf("dealer annotator recall %.3f outside [0.19, 0.30]", r)
	}
}

// TestDiscAnnotatorCalibration checks the DISC annotator (paper: p=0.81,
// r=0.90, recall measured over pages with at least one annotation).
func TestDiscAnnotatorCalibration(t *testing.T) {
	ds, err := Disc(DiscOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var pooled annotate.Stats
	tpPages, goldOnAnnotated := 0, 0
	for _, s := range ds.Sites {
		labels := ds.Annotator.Annotate(s.Corpus)
		gold := s.Gold[ds.TypeName]
		pooled = pooled.Add(annotate.Measure(s.Corpus, labels, gold))
		// Per-page recall accounting as in the paper: only pages with at
		// least one annotation count.
		perPageLabels := s.Corpus.PerPageCounts(labels)
		perPageGold := s.Corpus.PerPageCounts(gold)
		goldAndLabeled := s.Corpus.PerPageCounts(labels)
		_ = goldAndLabeled
		for pi := range perPageLabels {
			if perPageLabels[pi] == 0 {
				continue
			}
			goldOnAnnotated += perPageGold[pi]
		}
		tpPages += pooled.TP - tpPages + 0 // pooled already has TP; no-op guard
	}
	pagedRecall := float64(pooled.TP) / float64(goldOnAnnotated)
	t.Logf("DISC annotator: precision=%.3f paged-recall=%.3f raw-recall=%.3f (paper: 0.81 / 0.90); TP=%d FP=%d",
		pooled.Precision(), pagedRecall, pooled.Recall(), pooled.TP, pooled.FP)
	if p := pooled.Precision(); p < 0.70 || p > 0.92 {
		t.Errorf("disc annotator precision %.3f outside [0.70, 0.92]", p)
	}
	if pagedRecall < 0.80 || pagedRecall > 0.98 {
		t.Errorf("disc annotator paged recall %.3f outside [0.80, 0.98]", pagedRecall)
	}
}

func TestProductsAnnotatorSane(t *testing.T) {
	ds, err := Products(ProductsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dict.Size() > 463 {
		t.Fatalf("dict size %d exceeds the paper's 463", ds.Dict.Size())
	}
	var pooled annotate.Stats
	for _, s := range ds.Sites {
		labels := ds.Annotator.Annotate(s.Corpus)
		pooled = pooled.Add(annotate.Measure(s.Corpus, labels, s.Gold[ds.TypeName]))
	}
	t.Logf("PRODUCTS annotator: precision=%.3f recall=%.3f dict=%d",
		pooled.Precision(), pooled.Recall(), ds.Dict.Size())
	if pooled.Precision() < 0.85 {
		t.Errorf("products annotator precision %.3f too low", pooled.Precision())
	}
	if pooled.Recall() < 0.35 || pooled.Recall() > 0.85 {
		t.Errorf("products annotator recall %.3f outside [0.35, 0.85]", pooled.Recall())
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	ds := smallDealers(t)
	train, evalSites := ds.Train(), ds.Eval()
	if len(train)+len(evalSites) != len(ds.Sites) {
		t.Fatal("split loses sites")
	}
	seen := make(map[string]bool)
	for _, s := range train {
		seen[s.Name] = true
	}
	for _, s := range evalSites {
		if seen[s.Name] {
			t.Fatalf("site %s in both halves", s.Name)
		}
	}
}

func TestLearnModels(t *testing.T) {
	ds := smallDealers(t)
	m, err := LearnModels(ds.Train(), ds.TypeName, ds.Annotator, segment.Options{}, stats.KDEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("learned model params: p=%.3f r=%.3f (annot precision %.3f recall %.3f)",
		m.P, m.R, m.AnnotPrecision, m.AnnotRecall)
	t.Logf("schema KDE mode=%d, align KDE mode=%d",
		m.Scorer.Pub.Schema.Mode(), m.Scorer.Pub.Align.Mode())
	if m.R < 0.15 || m.R > 0.35 {
		t.Errorf("learned r=%.3f implausible", m.R)
	}
	if m.P < 0.99 {
		// p is 1 - FP/non-gold: with ~2000 non-gold nodes per site and ~1
		// FP, p should be very close to 1.
		t.Errorf("learned p=%.3f implausible", m.P)
	}
	if m.Scorer.Pub.Schema.Mode() < 1 || m.Scorer.Pub.Schema.Mode() > 8 {
		t.Errorf("schema mode %d implausible for dealer records", m.Scorer.Pub.Schema.Mode())
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Dealers(DealersOptions{NumSites: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dealers(DealersOptions{NumSites: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sites {
		for pi := range a.Sites[i].Corpus.Pages {
			if a.Sites[i].Corpus.Pages[pi].HTML != b.Sites[i].Corpus.Pages[pi].HTML {
				t.Fatalf("site %d page %d differs between identical builds", i, pi)
			}
		}
	}
}
