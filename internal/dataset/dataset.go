// Package dataset assembles the three evaluation datasets of the paper's
// Sec. 7 and Appendix B from the synthetic site generator, together with
// their automatic annotators:
//
//   - DEALERS: 330 dealer-locator websites; dictionary annotator over a
//     partial sample of business names (paper: p≈0.95, r≈0.24).
//   - DISC: 15 discography websites; dictionary of the track names of 11
//     seed albums (paper: p≈0.81, r≈0.90, recall measured on pages with at
//     least one annotation).
//   - PRODUCTS: 10 shopping websites; dictionary of 463 cellphone models
//     from five brands (Appendix B.1).
//
// Model parameters (annotator p/r and the publication-model feature
// distributions) are learned from the even-indexed half of each dataset's
// sites; accuracy experiments run on the odd half.
package dataset

import (
	"fmt"
	"math/rand"

	"autowrap/internal/annotate"
	"autowrap/internal/gen"
	"autowrap/internal/rank"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
)

// Dataset is one evaluation dataset.
type Dataset struct {
	Name string
	// TypeName is the single-type extraction target ("name", "track",
	// "product").
	TypeName string
	Sites    []*gen.Site
	// Dict is the automatic annotator's dictionary.
	Dict *annotate.Dictionary
	// Annotator labels text nodes for TypeName.
	Annotator annotate.Annotator
}

// Train returns the even-indexed sites (model learning sample).
func (d *Dataset) Train() []*gen.Site { return split(d.Sites, 0) }

// Eval returns the odd-indexed sites (held-out accuracy measurement).
func (d *Dataset) Eval() []*gen.Site { return split(d.Sites, 1) }

func split(sites []*gen.Site, parity int) []*gen.Site {
	var out []*gen.Site
	for i, s := range sites {
		if i%2 == parity {
			out = append(out, s)
		}
	}
	return out
}

// DealersOptions sizes the DEALERS dataset; zero values select paper scale.
type DealersOptions struct {
	NumSites int
	NumPages int
	// PoolSize is the global business pool ("Yahoo! Local database").
	PoolSize int
	// DictFrac is the fraction of the pool in the dictionary; it directly
	// sets the annotator's expected recall (paper: 0.24).
	DictFrac float64
	// LRHostileFrac is the fraction of sites with no perfect LR wrapper.
	LRHostileFrac float64
	// Drift applies that many template mutations to every site, leaving
	// the record data untouched (see gen.DealerConfig.Drift): the same
	// options with Drift 0 and Drift n yield a before/after pair of the
	// whole dataset for wrapper-drift experiments.
	Drift int
	Seed  int64
}

func (o DealersOptions) withDefaults() DealersOptions {
	if o.NumSites == 0 {
		o.NumSites = 330
	}
	if o.NumPages == 0 {
		o.NumPages = 12
	}
	if o.PoolSize == 0 {
		o.PoolSize = 4000
	}
	if o.DictFrac == 0 {
		o.DictFrac = 0.24
	}
	if o.LRHostileFrac == 0 {
		o.LRHostileFrac = 0.30
	}
	if o.Seed == 0 {
		o.Seed = 1001
	}
	return o
}

// Dealers builds the DEALERS dataset.
func Dealers(opt DealersOptions) (*Dataset, error) {
	opt = opt.withDefaults()
	pool := gen.BusinessPool(opt.Seed, opt.PoolSize, 0)
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	var dictEntries []string
	for _, b := range pool {
		if rng.Float64() < opt.DictFrac {
			dictEntries = append(dictEntries, b.Name)
		}
	}
	dict := annotate.NewDictionary("yahoo-local", dictEntries)

	ds := &Dataset{Name: "DEALERS", TypeName: "name", Dict: dict, Annotator: dict}
	for i := 0; i < opt.NumSites; i++ {
		site, err := gen.DealerSite(gen.DealerConfig{
			Seed:      opt.Seed + int64(i)*97 + 13,
			SiteName:  fmt.Sprintf("dealers-%03d", i),
			Pool:      pool,
			NumPages:  opt.NumPages,
			LRHostile: rng.Float64() < opt.LRHostileFrac,
			Drift:     opt.Drift,
		})
		if err != nil {
			return nil, fmt.Errorf("dataset: dealers site %d: %w", i, err)
		}
		ds.Sites = append(ds.Sites, site)
	}
	return ds, nil
}

// DiscOptions sizes the DISC dataset.
type DiscOptions struct {
	NumSites   int
	SeedAlbums int
	Seed       int64
}

func (o DiscOptions) withDefaults() DiscOptions {
	if o.NumSites == 0 {
		o.NumSites = 15
	}
	if o.SeedAlbums == 0 {
		o.SeedAlbums = 11
	}
	if o.Seed == 0 {
		o.Seed = 2002
	}
	return o
}

// Disc builds the DISC dataset. The dictionary holds the track names of the
// seed albums (the paper's "list of 11 popular albums along with their
// track information").
func Disc(opt DiscOptions) (*Dataset, error) {
	opt = opt.withDefaults()
	seeds := gen.AlbumPool(opt.Seed, opt.SeedAlbums, 0.35)
	var dictEntries []string
	for _, a := range seeds {
		dictEntries = append(dictEntries, a.Tracks...)
	}
	dict := annotate.NewDictionary("seed-albums", dictEntries)

	ds := &Dataset{Name: "DISC", TypeName: "track", Dict: dict, Annotator: dict}
	for i := 0; i < opt.NumSites; i++ {
		site, err := gen.DiscSite(gen.DiscConfig{
			Seed:       opt.Seed + int64(i)*101 + 29,
			SiteName:   fmt.Sprintf("disc-%02d", i),
			SeedAlbums: seeds,
		})
		if err != nil {
			return nil, fmt.Errorf("dataset: disc site %d: %w", i, err)
		}
		ds.Sites = append(ds.Sites, site)
	}
	return ds, nil
}

// DiscSeedTitles returns the titles of the seed albums for the given
// options: the annotation dictionary of the single-entity experiment
// (Appendix B.2 uses "the same set of albums as our seed database").
func DiscSeedTitles(opt DiscOptions) []string {
	opt = opt.withDefaults()
	seeds := gen.AlbumPool(opt.Seed, opt.SeedAlbums, 0.35)
	titles := make([]string, len(seeds))
	for i, a := range seeds {
		titles[i] = a.Title
	}
	return titles
}

// ProductsOptions sizes the PRODUCTS dataset.
type ProductsOptions struct {
	NumSites int
	PoolSize int
	// DictSize caps the dictionary (paper: 463 models from five brands).
	DictSize int
	Seed     int64
}

func (o ProductsOptions) withDefaults() ProductsOptions {
	if o.NumSites == 0 {
		o.NumSites = 10
	}
	if o.PoolSize == 0 {
		o.PoolSize = 700
	}
	if o.DictSize == 0 {
		o.DictSize = 463
	}
	if o.Seed == 0 {
		o.Seed = 3003
	}
	return o
}

// Products builds the PRODUCTS dataset.
func Products(opt ProductsOptions) (*Dataset, error) {
	opt = opt.withDefaults()
	pool := gen.ProductPool(opt.Seed, opt.PoolSize)
	dictBrand := make(map[string]bool)
	for _, b := range gen.DictBrands {
		dictBrand[b] = true
	}
	var dictEntries []string
	for _, p := range pool {
		if dictBrand[p.Brand] && len(dictEntries) < opt.DictSize {
			dictEntries = append(dictEntries, p.Name)
		}
	}
	dict := annotate.NewDictionary("wikipedia-models", dictEntries)

	ds := &Dataset{Name: "PRODUCTS", TypeName: "product", Dict: dict, Annotator: dict}
	for i := 0; i < opt.NumSites; i++ {
		site, err := gen.ProductsSite(gen.ProductsConfig{
			Seed:     opt.Seed + int64(i)*89 + 41,
			SiteName: fmt.Sprintf("shop-%02d", i),
			Pool:     pool,
		})
		if err != nil {
			return nil, fmt.Errorf("dataset: products site %d: %w", i, err)
		}
		ds.Sites = append(ds.Sites, site)
	}
	return ds, nil
}

// Models bundles everything learned from the training half.
type Models struct {
	Scorer *rank.Scorer
	// P and R are the estimated annotation-model parameters.
	P, R float64
	// AnnotPrecision/AnnotRecall are the conventional measures, reported
	// in experiment output for comparison with the paper's numbers.
	AnnotPrecision, AnnotRecall float64
}

// LearnModels estimates the annotator parameters and fits the publication
// model from the training sites' gold lists.
func LearnModels(train []*gen.Site, typeName string, annot annotate.Annotator,
	segOpt segment.Options, kdeOpt stats.KDEOptions) (*Models, error) {
	var pooled annotate.Stats
	var samples []rank.SiteSample
	for _, s := range train {
		gold, ok := s.Gold[typeName]
		if !ok {
			return nil, fmt.Errorf("dataset: site %s has no gold for type %q", s.Name, typeName)
		}
		labels := annot.Annotate(s.Corpus)
		pooled = pooled.Add(annotate.Measure(s.Corpus, labels, gold))
		samples = append(samples, rank.SiteSample{Corpus: s.Corpus, Gold: gold})
	}
	p, r := pooled.ModelParams()
	pub, err := rank.LearnPublicationModel(samples, segOpt, kdeOpt)
	if err != nil {
		return nil, err
	}
	return &Models{
		Scorer:         &rank.Scorer{Ann: rank.NewAnnotationModel(p, r), Pub: pub},
		P:              p,
		R:              r,
		AnnotPrecision: pooled.Precision(),
		AnnotRecall:    pooled.Recall(),
	}, nil
}
