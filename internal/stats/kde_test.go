package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKDEEmptyRejected(t *testing.T) {
	if _, err := NewKDE(nil, KDEOptions{}); err == nil {
		t.Fatal("expected error for empty samples")
	}
}

func TestKDENegativeRejected(t *testing.T) {
	if _, err := NewKDE([]int{3, -1}, KDEOptions{}); err == nil {
		t.Fatal("expected error for negative sample")
	}
}

func TestKDENormalized(t *testing.T) {
	k := MustKDE([]int{2, 3, 3, 4, 8}, KDEOptions{})
	sum := 0.0
	for v := 0; v <= k.Support(); v++ {
		sum += k.Prob(v)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sums to %v", sum)
	}
}

func TestKDEPeakNearData(t *testing.T) {
	k := MustKDE([]int{4, 4, 4, 5, 3}, KDEOptions{})
	mode := k.Mode()
	if mode < 3 || mode > 5 {
		t.Fatalf("mode = %d, want within [3,5]", mode)
	}
	if k.Prob(4) <= k.Prob(20) {
		t.Fatal("probability at data should exceed far tail")
	}
}

func TestKDESmoothsAdjacentIntegers(t *testing.T) {
	// Samples only at 4: neighbors 3 and 5 still get real mass thanks to
	// the minimum bandwidth.
	k := MustKDE([]int{4, 4, 4, 4}, KDEOptions{})
	if k.Prob(3) < 10*DefaultFloor {
		t.Fatalf("neighbor mass too small: %v", k.Prob(3))
	}
	if k.Prob(3) >= k.Prob(4) {
		t.Fatal("neighbor should have less mass than the sample point")
	}
}

func TestKDEFloorPreventsMinusInf(t *testing.T) {
	k := MustKDE([]int{1}, KDEOptions{})
	lp := k.LogProb(k.Support())
	if math.IsInf(lp, -1) || math.IsNaN(lp) {
		t.Fatalf("LogProb at far value = %v", lp)
	}
	if k.LogProb(-5) >= k.LogProb(1) {
		t.Fatal("out-of-support mass should be below sample mass")
	}
}

func TestKDEBandwidthScale(t *testing.T) {
	samples := []int{2, 4, 6, 8, 10, 12}
	narrow := MustKDE(samples, KDEOptions{BandwidthScale: 0.5})
	wide := MustKDE(samples, KDEOptions{BandwidthScale: 3})
	if narrow.Bandwidth() >= wide.Bandwidth() {
		t.Fatalf("bandwidths not ordered: %v vs %v", narrow.Bandwidth(), wide.Bandwidth())
	}
	// A wide kernel spreads more mass to gaps between samples.
	if wide.Prob(3) <= narrow.Prob(3) == (wide.Prob(2) > narrow.Prob(2)) {
		// sanity only; the strong assertion is on bandwidth ordering above
		t.Log("gap mass comparison inconclusive")
	}
}

func TestKDEModeTracksDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var samples []int
	for i := 0; i < 400; i++ {
		// Mixture centered at 6.
		samples = append(samples, 4+rng.Intn(5))
	}
	k := MustKDE(samples, KDEOptions{})
	if m := k.Mode(); m < 4 || m > 8 {
		t.Fatalf("mode = %d, want within [4,8]", m)
	}
}

func TestKDEIdenticalSamplesDeterministic(t *testing.T) {
	a := MustKDE([]int{3, 1, 4, 1, 5}, KDEOptions{})
	b := MustKDE([]int{3, 1, 4, 1, 5}, KDEOptions{})
	for v := 0; v <= a.Support(); v++ {
		if a.Prob(v) != b.Prob(v) {
			t.Fatal("KDE not deterministic")
		}
	}
}

func TestKDESupportOverride(t *testing.T) {
	k := MustKDE([]int{2}, KDEOptions{Support: 50})
	if k.Support() != 50 {
		t.Fatalf("support = %d", k.Support())
	}
	if k.Prob(50) <= 0 {
		t.Fatal("support edge has no mass")
	}
}
