// Package stats implements the kernel density estimation the paper uses to
// learn feature-value distributions: "Since both schema size and alignment
// are discrete valued features, we use the kernel density methods that learn
// a smooth distribution from finite data samples" (Sec. 6.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// KDE is a Gaussian kernel density estimate over non-negative integers,
// normalized to a probability mass function on [0, Support].
type KDE struct {
	samples   []float64
	bandwidth float64
	support   int
	pmf       []float64
	floor     float64
}

// DefaultFloor is the minimum probability mass assigned to any value inside
// the support, preventing -Inf log scores for rare-but-possible values.
const DefaultFloor = 1e-6

// KDEOptions tunes estimation. Zero values select defaults.
type KDEOptions struct {
	// BandwidthScale multiplies the Silverman rule-of-thumb bandwidth.
	// Default 1.0. Exposed for the ablation bench.
	BandwidthScale float64
	// MinBandwidth lower-bounds the bandwidth; discrete features need at
	// least ~0.75 to smooth between adjacent integers. Default 0.75.
	MinBandwidth float64
	// Support extends the pmf domain; default is 2*max(sample)+10.
	Support int
	// Floor is the minimum pmf value; default DefaultFloor.
	Floor float64
}

// NewKDE fits a density to the given integer-valued samples.
func NewKDE(samples []int, opt KDEOptions) (*KDE, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("stats: KDE requires at least one sample")
	}
	if opt.BandwidthScale == 0 {
		opt.BandwidthScale = 1.0
	}
	if opt.MinBandwidth == 0 {
		opt.MinBandwidth = 0.75
	}
	if opt.Floor == 0 {
		opt.Floor = DefaultFloor
	}
	fs := make([]float64, len(samples))
	maxV := 0
	for i, v := range samples {
		if v < 0 {
			return nil, fmt.Errorf("stats: negative sample %d", v)
		}
		fs[i] = float64(v)
		if v > maxV {
			maxV = v
		}
	}
	if opt.Support == 0 {
		opt.Support = 2*maxV + 10
	}
	h := silverman(fs) * opt.BandwidthScale
	if h < opt.MinBandwidth {
		h = opt.MinBandwidth
	}
	k := &KDE{samples: fs, bandwidth: h, support: opt.Support, floor: opt.Floor}
	k.buildPMF()
	return k, nil
}

// MustKDE is NewKDE that panics on error; for tests and internal fits on
// generator-controlled data.
func MustKDE(samples []int, opt KDEOptions) *KDE {
	k, err := NewKDE(samples, opt)
	if err != nil {
		panic(err)
	}
	return k
}

func silverman(xs []float64) float64 {
	n := float64(len(xs))
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= n
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	sigma := math.Sqrt(varsum / math.Max(n-1, 1))
	// Robust sigma: min(stddev, IQR/1.34), the usual Silverman refinement.
	iqr := interquartile(xs)
	if iqr > 0 && iqr/1.34 < sigma {
		sigma = iqr / 1.34
	}
	if sigma == 0 {
		sigma = 1
	}
	return 1.06 * sigma * math.Pow(n, -0.2)
}

func interquartile(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return q(0.75) - q(0.25)
}

func (k *KDE) buildPMF() {
	k.pmf = make([]float64, k.support+1)
	inv := 1.0 / (k.bandwidth * math.Sqrt2)
	for v := 0; v <= k.support; v++ {
		x := float64(v)
		d := 0.0
		for _, s := range k.samples {
			z := (x - s) * inv
			d += math.Exp(-z * z)
		}
		k.pmf[v] = d
	}
	sum := 0.0
	for _, p := range k.pmf {
		sum += p
	}
	if sum == 0 {
		sum = 1
	}
	for i := range k.pmf {
		k.pmf[i] = k.pmf[i]/sum + k.floor
	}
	// Renormalize after flooring.
	sum = 0
	for _, p := range k.pmf {
		sum += p
	}
	for i := range k.pmf {
		k.pmf[i] /= sum
	}
}

// Prob returns the probability mass of integer value v. Values outside the
// support get the floor mass.
func (k *KDE) Prob(v int) float64 {
	if v < 0 || v > k.support {
		return k.floor / (1 + k.floor*float64(k.support+1))
	}
	return k.pmf[v]
}

// LogProb returns ln Prob(v).
func (k *KDE) LogProb(v int) float64 { return math.Log(k.Prob(v)) }

// Bandwidth exposes the fitted bandwidth (for tests and diagnostics).
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Support exposes the pmf domain upper bound.
func (k *KDE) Support() int { return k.support }

// Mode returns the value with maximal probability mass.
func (k *KDE) Mode() int {
	best, bi := -1.0, 0
	for v, p := range k.pmf {
		if p > best {
			best, bi = p, v
		}
	}
	return bi
}
