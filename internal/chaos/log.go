package chaos

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
)

// FlipByte flips one random bit of one rng-chosen byte in the file at
// path and reports the offset it hit. It models silent at-rest
// corruption — a disk, a copy, an editor — of exactly the kind a
// hash-chained ledger or a CRC-framed log must detect rather than
// serve. Newline bytes are skipped so the damage lands inside a record,
// not on the line structure (both are detectable; the in-record flip is
// the subtler case worth pinning).
func FlipByte(path string, rng *rand.Rand) (offset int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("chaos: flip byte: %w", err)
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("chaos: flip byte: %s is empty", path)
	}
	for tries := 0; tries < 64; tries++ {
		i := rng.Intn(len(data))
		if data[i] == '\n' {
			continue
		}
		data[i] ^= byte(1 << rng.Intn(8))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return 0, fmt.Errorf("chaos: flip byte: %w", err)
		}
		return int64(i), nil
	}
	return 0, fmt.Errorf("chaos: flip byte: %s is all newlines", path)
}

// AppendTornFrame appends the wreckage of an interrupted log append to
// the segment at path: a frame header whose length field promises more
// payload than follows, then an rng-sized run of junk bytes. A
// crash-consistent reopen must truncate the segment back to the last
// whole record instead of refusing to boot — and must never trust
// whatever valid-looking bytes land after the tear.
func AppendTornFrame(path string, rng *rand.Rand) error {
	junk := make([]byte, 3+rng.Intn(29))
	rng.Read(junk)
	frame := make([]byte, 8+len(junk))
	// Promise a payload far longer than the junk that follows, with a
	// checksum that cannot match it.
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(junk))+512)
	binary.LittleEndian.PutUint32(frame[4:8], rng.Uint32())
	copy(frame[8:], junk)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("chaos: torn frame: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("chaos: torn frame: %w", err)
	}
	return f.Close()
}
