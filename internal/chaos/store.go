package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
)

// CorruptStoreEntry rewrites the wrapper registry at path with exactly one
// site entry poisoned — its wrapper language replaced by one no codec
// knows — and reports which site and version it hit. The write models a
// partial/botched mid-write mutation of the store file, the failure mode
// store.LoadRecovered exists for: a strict store.Load of the result must
// fail naming that site and version, and LoadRecovered must load every
// other site while reporting the poisoned one.
//
// The choice of victim is driven by rng, so a seeded soak run corrupts the
// same site every time. The file is rewritten in place (not atomically) on
// purpose: chaos does not get to use the safe path.
func CorruptStoreEntry(path string, rng *rand.Rand) (site string, version int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", 0, fmt.Errorf("chaos: corrupt store: %w", err)
	}
	// Operate on the generic JSON shape so this package does not import
	// the store (whose tests and consumers import chaos corpora).
	var f struct {
		Format     int                         `json:"format"`
		Sites      map[string][]map[string]any `json:"sites"`
		Promotions map[string][]int            `json:"promotions"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return "", 0, fmt.Errorf("chaos: corrupt store %s: %w", path, err)
	}
	if len(f.Sites) == 0 {
		return "", 0, fmt.Errorf("chaos: corrupt store %s: no sites to poison", path)
	}
	names := make([]string, 0, len(f.Sites))
	for name := range f.Sites {
		names = append(names, name)
	}
	sort.Strings(names)
	site = names[rng.Intn(len(names))]
	entries := f.Sites[site]
	if len(entries) == 0 {
		return "", 0, fmt.Errorf("chaos: corrupt store %s: site %q has no versions", path, site)
	}
	version = len(entries) // poison the newest version
	entries[version-1]["lang"] = "chaos-corrupt"
	entries[version-1]["rule"] = "\x00 not a rule"
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return "", 0, fmt.Errorf("chaos: corrupt store %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return "", 0, fmt.Errorf("chaos: corrupt store %s: %w", path, err)
	}
	return site, version, nil
}
