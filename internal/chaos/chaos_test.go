package chaos

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
)

// TestBodiesDeterministic pins the replayability contract: the same seed
// yields the same byte stream, a different seed a different one.
func TestBodiesDeterministic(t *testing.T) {
	a, b := NewBodies(7), NewBodies(7)
	other := NewBodies(8)
	diverged := false
	for i := 0; i < 256; i++ {
		x, y := a.Malformed(), b.Malformed()
		if !bytes.Equal(x, y) {
			t.Fatalf("body %d diverged under the same seed:\n%q\n%q", i, x, y)
		}
		if !bytes.Equal(x, other.Malformed()) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical streams")
	}
}

// TestSeedsMostlyInvalid sanity-checks the fixed corpus: nearly all seeds
// must fail a plain encoding/json decode of the request shape (the
// deliberately-valid stragglers exercise the accept path).
func TestSeedsMostlyInvalid(t *testing.T) {
	type page struct {
		ID   string `json:"id"`
		HTML string `json:"html"`
	}
	type req struct {
		Site      string `json:"site"`
		TimeoutMS int    `json:"timeout_ms"`
		Page      *page  `json:"page"`
		Pages     []page `json:"pages"`
	}
	invalid := 0
	for _, s := range Seeds() {
		var r req
		dec := json.NewDecoder(bytes.NewReader(s))
		if err := dec.Decode(&r); err != nil || dec.More() {
			invalid++
		}
	}
	if n := len(Seeds()); invalid < n*3/4 {
		t.Fatalf("only %d/%d seeds are invalid; the corpus lost its teeth", invalid, n)
	}
}

func TestMalformedNeverEmptyForever(t *testing.T) {
	b := NewBodies(1)
	nonEmpty := 0
	for i := 0; i < 100; i++ {
		if len(b.Malformed()) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 50 {
		t.Fatalf("%d/100 malformed bodies were empty", 100-nonEmpty)
	}
}

// TestCorruptStoreEntryDeterministic checks the victim choice replays
// from the seed. The store file is a minimal hand-built registry; the
// strict/recovered load behaviour over the result is pinned in
// internal/store's regression tests.
func TestCorruptStoreEntryDeterministic(t *testing.T) {
	mk := func(t *testing.T) string {
		t.Helper()
		path := t.TempDir() + "/wrappers.json"
		reg := `{"format":1,"sites":{` +
			`"a":[{"site":"a","version":1,"lang":"lr","lr":{"left":"<b>","right":"</b>"}}],` +
			`"b":[{"site":"b","version":1,"lang":"lr","lr":{"left":"<i>","right":"</i>"}}]},` +
			`"promotions":{"a":[1],"b":[1]}}`
		if err := os.WriteFile(path, []byte(reg), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1, p2 := mk(t), mk(t)
	s1, v1, err := CorruptStoreEntry(p1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s2, v2, err := CorruptStoreEntry(p2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || v1 != v2 {
		t.Fatalf("same seed picked different victims: %s v%d vs %s v%d", s1, v1, s2, v2)
	}
	// The poisoned entry must actually be unloadable-looking: lang swapped.
	var f struct {
		Sites map[string][]map[string]any `json:"sites"`
	}
	data, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if got := f.Sites[s1][v1-1]["lang"]; got != "chaos-corrupt" {
		t.Fatalf("victim entry lang = %v, want chaos-corrupt", got)
	}
}
