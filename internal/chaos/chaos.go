// Package chaos generates deterministic hostile inputs for the soak
// harness (cmd/soak): malformed and truncated request bodies, mid-write
// store corruption, and misbehaving HTTP clients. Every generator is
// driven by a caller-seeded math/rand source, so a soak run's entire
// fault schedule replays byte-for-byte from its -seed — a failure found
// at seed 7 is a failure reproducible at seed 7.
//
// The package deliberately depends on nothing above the standard library
// (plus encoding/json for store surgery), so the serving plane's own
// packages can pull its corpora into their fuzz targets without an import
// cycle.
package chaos

import (
	"math/rand"
)

// Bodies streams malformed /v1/extract request bodies: a rotation of
// fixed pathological shapes interleaved with seeded mutations (truncation,
// byte flips, hostile insertions) of an otherwise valid request. Mutated
// bodies are not guaranteed to be invalid JSON — a flipped byte can land
// in a string — which is the point: the decoder must answer every one of
// them with a clean verdict either way, never a panic.
type Bodies struct {
	rng *rand.Rand
	n   int
}

// NewBodies returns a deterministic malformed-body stream for the seed.
func NewBodies(seed int64) *Bodies {
	return &Bodies{rng: rand.New(rand.NewSource(seed))}
}

// validBase is the well-formed request the mutators start from.
const validBase = `{"site":"soak-site","timeout_ms":250,"pages":[{"id":"p0","html":"<html><body><div class=\"a\">alpha-0</div></body></html>"},{"html":"<p>two</p>"}]}`

// seeds is the fixed pathological corpus: shapes that have historically
// broken hand-rolled JSON decoders (truncation at every structural
// boundary, type confusion, encoding garbage, scanner state abuse).
var seeds = []string{
	``,
	` `,
	`null`,
	`true`,
	`42`,
	`"just a string"`,
	`[]`,
	`["not an object"]`,
	`{`,
	`}`,
	`{}`,
	`{{}}`,
	`{"site"`,
	`{"site":`,
	`{"site":}`,
	`{"site":"x"`,
	`{"site":"x",}`,
	`{"site" "x"}`,
	`{"site":42}`,
	`{"site":null,"pages":[{}]}`,
	`{"site":"x"} trailing`,
	`{"site":"x"}{}`,
	`{"site":"x","timeout_ms":"fast"}`,
	`{"site":"x","timeout_ms":1.5}`,
	`{"site":"x","timeout_ms":9999999999999999999999}`,
	`{"site":"x","timeout_ms":-0.0}`,
	`{"site":"x","pages":{"html":"h"}}`,
	`{"site":"x","pages":[`,
	`{"site":"x","pages":[{"html":"h"}`,
	`{"site":"x","pages":[{"html":"h"},]}`,
	`{"site":"x","page":["h"]}`,
	`{"site":"x","page":{"html":"unterminated}`,
	`{"site":"bad\escape"}`,
	`{"site":"trunc-esc\u00`,
	`{"site":"lone surrogate \ud800"}`,
	`{"site":"😀","page":{"html":"\ud83d"}}`,
	"{\"site\":\"x\",\"page\":{\"html\":\"\x00\"}}",
	"{\"site\":\"raw-nul\x00\"}",
	"{\"site\":\"raw-ctrl\x01\x1f\"}",
	"{\"site\":\"bad-utf8 \xff\xfe\xc3\"}",
	`{"SITE":"case","PAGES":[{"HTML":"<i>y</i>"}]}`,
	`{"site":"dupes","site":42}`,
	`{"site":"x","unknown":{"deep":[1,2,{"x":null}],"s":"v"},"page":{"html":"h","junk":true}}`,
	`{"site":"x","pages":[[[[[[[[[[]]]]]]]]]]}`,
	`{"site":"x","pages":[{"id":{}}]}`,
}

// Seeds returns the fixed pathological corpus, one copy per call — safe
// to hand to fuzz targets that scribble on their inputs.
func Seeds() [][]byte {
	out := make([][]byte, len(seeds))
	for i, s := range seeds {
		out[i] = []byte(s)
	}
	return out
}

// hostile is the insertion alphabet for mutations: structural JSON bytes,
// escapes, NULs and invalid UTF-8.
var hostile = []byte(`{}[]":, ` + "\x00\xff\xc3\x7f")

// Malformed returns the next body in the stream.
func (b *Bodies) Malformed() []byte {
	b.n++
	// Every third body is a fixed seed; the rest are fresh mutations.
	if b.n%3 == 0 {
		return []byte(seeds[b.rng.Intn(len(seeds))])
	}
	body := []byte(validBase)
	switch b.rng.Intn(4) {
	case 0: // truncate mid-structure
		if len(body) > 1 {
			body = body[:1+b.rng.Intn(len(body)-1)]
		}
	case 1: // flip 1-3 bytes
		for k := 1 + b.rng.Intn(3); k > 0; k-- {
			i := b.rng.Intn(len(body))
			body[i] ^= byte(1 << b.rng.Intn(8))
		}
	case 2: // insert hostile bytes
		i := b.rng.Intn(len(body))
		ins := hostile[b.rng.Intn(len(hostile)):]
		if len(ins) > 4 {
			ins = ins[:4]
		}
		body = append(body[:i:i], append(append([]byte{}, ins...), body[i:]...)...)
	default: // append trailing garbage
		body = append(body, []byte{'}', ',', ' ', 'x'}[b.rng.Intn(4)])
	}
	return body
}
