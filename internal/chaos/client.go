package chaos

import (
	"fmt"
	"net"
	"time"
)

// SlowClient opens a raw TCP connection to addr, sends the headers of a
// POST /v1/extract announcing a full body, dribbles out only half of it,
// holds the connection open for holdFor, then drops it mid-body. The
// server sees a request body that stalls and dies — it must time the read
// out or surface a clean decode error, never hang a handler goroutine or
// panic. Errors from the connection itself are returned only for dial
// failures; resets during the write are the expected outcome.
func SlowClient(addr string, body []byte, holdFor time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("chaos: slow client dial %s: %w", addr, err)
	}
	defer conn.Close()
	header := fmt.Sprintf("POST /v1/extract HTTP/1.1\r\nHost: soak\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(body))
	if _, err := conn.Write([]byte(header)); err != nil {
		return nil // reset while writing is the server's prerogative
	}
	half := body[:len(body)/2]
	if _, err := conn.Write(half); err != nil {
		return nil
	}
	time.Sleep(holdFor)
	// Abort without the rest of the promised body.
	return nil
}

// Disconnector sends a complete request and closes the connection without
// reading the response. The body should be one that fails request
// validation before admission (e.g. `{"site":"x"}`, which has no pages) so
// the server's gate ledger stays reconcilable: the request must cost the
// server nothing but a 400 written to a dead socket.
func Disconnector(addr string, body []byte) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("chaos: disconnector dial %s: %w", addr, err)
	}
	header := fmt.Sprintf("POST /v1/extract HTTP/1.1\r\nHost: soak\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(body))
	conn.Write(append([]byte(header), body...))
	return conn.Close()
}
