// Package htmlparse is a tolerant HTML parser: the reproduction's substitute
// for the jtidy utility the paper uses to "clean up and parse HTML pages"
// (Sec. 7). It accepts the messy markup that script-generated sites emit —
// unclosed tags, stray close tags, unquoted attributes, raw script/style —
// and always produces a well-formed dom.Node tree.
package htmlparse

import "strings"

type tokenType uint8

const (
	tokText tokenType = iota
	tokStartTag
	tokEndTag
	tokSelfClosing
	tokComment
	tokDoctype
)

type token struct {
	typ  tokenType
	data string // tag name (lowercased) or text content
	// attrs aliases the tokenizer's scratch buffer: it is valid only until
	// the next call to next(). The parser copies it into the node
	// immediately.
	attrs []attr
}

type attr struct{ key, val string }

// tokenizer scans HTML source into a token stream. It never fails: malformed
// constructs degrade to text.
type tokenizer struct {
	src string
	pos int
	// rawTag, when set, makes the tokenizer consume everything up to the
	// matching close tag as a single text token (script/style contents).
	rawTag string
	// attrs is the reusable attribute scratch handed out via token.attrs.
	attrs []attr
}

// next returns the next token, or false at end of input.
func (t *tokenizer) next() (token, bool) {
	if t.pos >= len(t.src) {
		return token{}, false
	}
	if t.rawTag != "" {
		return t.rawText(), true
	}
	if t.src[t.pos] == '<' {
		if tok, ok := t.tag(); ok {
			return tok, true
		}
		// A lone '<' that does not open a valid construct is literal text.
		start := t.pos
		t.pos++
		for t.pos < len(t.src) && t.src[t.pos] != '<' {
			t.pos++
		}
		return token{typ: tokText, data: decodeEntities(t.src[start:t.pos])}, true
	}
	start := t.pos
	for t.pos < len(t.src) && t.src[t.pos] != '<' {
		t.pos++
	}
	return token{typ: tokText, data: decodeEntities(t.src[start:t.pos])}, true
}

// rawText consumes the raw content of a script/style element up to its
// closing tag (case-insensitive), leaving the close tag for the next call.
func (t *tokenizer) rawText() token {
	close := "</script"
	if t.rawTag == "style" {
		close = "</style"
	}
	idx := foldIndex(t.src[t.pos:], close)
	var content string
	if idx < 0 {
		content = t.src[t.pos:]
		t.pos = len(t.src)
	} else {
		content = t.src[t.pos : t.pos+idx]
		t.pos += idx
	}
	t.rawTag = ""
	return token{typ: tokText, data: content}
}

// foldIndex is an ASCII-case-insensitive strings.Index: the offset of the
// first match of sub (which must be lowercase ASCII) in s, or -1. Unlike
// strings.Index(strings.ToLower(s), sub) it allocates nothing and reports
// byte offsets into s itself even when s contains multi-byte runes whose
// lowercase form has a different width.
func foldIndex(s, sub string) int {
	if len(sub) == 0 {
		return 0
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		j := 0
		for ; j < len(sub); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != sub[j] {
				break
			}
		}
		if j == len(sub) {
			return i
		}
	}
	return -1
}

// tag parses a construct starting at '<'. Returns ok=false when the bytes do
// not form a tag, comment or doctype.
func (t *tokenizer) tag() (token, bool) {
	src, p := t.src, t.pos
	if p+1 >= len(src) {
		return token{}, false
	}
	switch {
	case strings.HasPrefix(src[p:], "<!--"):
		end := strings.Index(src[p+4:], "-->")
		if end < 0 {
			t.pos = len(src)
			return token{typ: tokComment, data: src[p+4:]}, true
		}
		t.pos = p + 4 + end + 3
		return token{typ: tokComment, data: src[p+4 : p+4+end]}, true
	case src[p+1] == '!' || src[p+1] == '?':
		end := strings.IndexByte(src[p:], '>')
		if end < 0 {
			t.pos = len(src)
			return token{typ: tokDoctype, data: src[p:]}, true
		}
		t.pos = p + end + 1
		return token{typ: tokDoctype, data: src[p : p+end+1]}, true
	case src[p+1] == '/':
		q := p + 2
		name := scanName(src, &q)
		if name == "" {
			return token{}, false
		}
		// Skip to '>'.
		for q < len(src) && src[q] != '>' {
			q++
		}
		if q < len(src) {
			q++
		}
		t.pos = q
		return token{typ: tokEndTag, data: strings.ToLower(name)}, true
	default:
		q := p + 1
		name := scanName(src, &q)
		if name == "" {
			return token{}, false
		}
		tok := token{typ: tokStartTag, data: strings.ToLower(name)}
		t.attrs = t.attrs[:0]
		for {
			skipSpace(src, &q)
			if q >= len(src) {
				break
			}
			if src[q] == '>' {
				q++
				break
			}
			if src[q] == '/' && q+1 < len(src) && src[q+1] == '>' {
				tok.typ = tokSelfClosing
				q += 2
				break
			}
			key := scanName(src, &q)
			if key == "" {
				q++ // skip junk byte
				continue
			}
			a := attr{key: strings.ToLower(key)}
			skipSpace(src, &q)
			if q < len(src) && src[q] == '=' {
				q++
				skipSpace(src, &q)
				a.val = scanAttrValue(src, &q)
			}
			t.attrs = append(t.attrs, a)
		}
		tok.attrs = t.attrs
		t.pos = q
		if tok.data == "script" || tok.data == "style" {
			if tok.typ == tokStartTag {
				t.rawTag = tok.data
			}
		}
		return tok, true
	}
}

func scanName(src string, q *int) string {
	start := *q
	for *q < len(src) {
		c := src[*q]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == ':' || c == '.' {
			*q++
			continue
		}
		break
	}
	return src[start:*q]
}

func skipSpace(src string, q *int) {
	for *q < len(src) {
		switch src[*q] {
		case ' ', '\t', '\n', '\r', '\f':
			*q++
		default:
			return
		}
	}
}

func scanAttrValue(src string, q *int) string {
	if *q >= len(src) {
		return ""
	}
	switch src[*q] {
	case '"', '\'':
		quote := src[*q]
		*q++
		start := *q
		for *q < len(src) && src[*q] != quote {
			*q++
		}
		v := src[start:*q]
		if *q < len(src) {
			*q++
		}
		return decodeEntities(v)
	default:
		start := *q
		for *q < len(src) {
			c := src[*q]
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' {
				break
			}
			if c == '/' && *q+1 < len(src) && src[*q+1] == '>' {
				break
			}
			*q++
		}
		return decodeEntities(src[start:*q])
	}
}

// namedEntities is the small set of named character references that actually
// occur in script-generated listing pages.
var namedEntities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": '\u0020', "copy": '©', "reg": '®', "trade": '™',
	"mdash": '—', "ndash": '–', "hellip": '…', "bull": '•',
	"laquo": '«', "raquo": '»', "deg": '°', "middot": '·',
}

// decodeEntities resolves named and numeric character references. Unknown
// references are left verbatim (tolerant behaviour).
func decodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i+1:], ';')
		if semi < 0 || semi > 10 {
			sb.WriteByte(c)
			i++
			continue
		}
		ref := s[i+1 : i+1+semi]
		if r, ok := decodeRef(ref); ok {
			sb.WriteRune(r)
			i += semi + 2
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String()
}

func decodeRef(ref string) (rune, bool) {
	if ref == "" {
		return 0, false
	}
	if ref[0] == '#' {
		num := ref[1:]
		base := 10
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		v := 0
		if num == "" {
			return 0, false
		}
		for i := 0; i < len(num); i++ {
			d := digitVal(num[i])
			if d < 0 || d >= base {
				return 0, false
			}
			v = v*base + d
			if v > 0x10FFFF {
				return 0, false
			}
		}
		if v == 0 {
			return 0, false
		}
		return rune(v), true
	}
	r, ok := namedEntities[ref]
	return r, ok
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
