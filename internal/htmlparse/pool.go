package htmlparse

import (
	"sync"

	"autowrap/internal/dom"
)

// Tree is a reusable parse workspace: a node arena plus tokenizer and text
// scratch that survive across parses. In steady state a recycled Tree parses
// a page with no node allocations at all — nodes, their Children and Attrs
// slices, the open-element stack and the whitespace-collapse scratch are all
// reused at their converged capacities.
//
// The tree returned by Parse is owned by the workspace: it is valid until
// the next Parse on the same workspace or until Release. Callers that need
// the tree (or any *dom.Node inside it) to outlive the workspace must use
// the package-level Parse instead. Text-node Data strings are safe to
// retain: they either alias the source string or are freshly allocated,
// never the workspace's scratch.
//
// A Tree is not safe for concurrent use; the pool hands each goroutine its
// own.
type Tree struct {
	arena []*dom.Node
	used  int
	stack []*dom.Node
	// textBuf coalesces text runs split by dropped constructs; scratch
	// holds the whitespace-collapsed form of the run being flushed.
	textBuf []byte
	scratch []byte
	tz      tokenizer
}

// newNode hands out the next arena node, recycled and reset, growing the
// arena one node at a time (each node is its own heap object, so growing
// the index slice never invalidates pointers already woven into the tree).
func (t *Tree) newNode() *dom.Node {
	if t.used < len(t.arena) {
		n := t.arena[t.used]
		t.used++
		n.Type = 0
		n.Tag = ""
		n.Data = ""
		n.Raw = false
		n.Parent = nil
		n.Attrs = n.Attrs[:0]
		n.Children = n.Children[:0]
		return n
	}
	n := &dom.Node{}
	t.arena = append(t.arena, n)
	t.used++
	return n
}

// maxPooledNodes bounds how large a workspace the pool will retain: a
// pathological page must not pin megabytes of arena forever. Oversized
// workspaces are dropped on Release and the pool refills with fresh ones.
const maxPooledNodes = 1 << 14

var treePool = sync.Pool{New: func() any { return new(Tree) }}

// AcquireTree takes a parse workspace from the pool. Pair with Release.
func AcquireTree() *Tree { return treePool.Get().(*Tree) }

// Parse parses src into the workspace, recycling node and scratch storage
// from previous parses. The returned tree is invalidated by the next Parse
// or Release on this workspace; see the Tree doc for the ownership rules.
func (t *Tree) Parse(src string) *dom.Node { return t.parse(src) }

// Release returns the workspace to the pool. The last parsed tree must no
// longer be referenced. Oversized workspaces are dropped instead of pooled.
func (t *Tree) Release() {
	if len(t.arena) > maxPooledNodes {
		return
	}
	t.used = 0
	t.stack = t.stack[:0]
	t.textBuf = t.textBuf[:0]
	treePool.Put(t)
}
