package htmlparse

import (
	"strings"
	"testing"

	"autowrap/internal/dom"
)

// poolCases exercises the constructs where the pooled parser's recycled
// state could plausibly leak between parses: attributes (tokenizer scratch),
// split text runs (textBuf), deep nesting (stack), raw script/style, and
// entities.
var poolCases = []string{
	"",
	"plain text only",
	"<html><body><p>hello</p></body></html>",
	"<div class='a' id=\"b\" checked><span>x</span></div>",
	"<table><tr><td>a<td>b<tr><td>c</table>",
	"<p>one<!-- split -->two</p>",
	"<p>a &amp; b &lt;c&gt; &#65;</p>",
	"<script>if (a < b) { x() }</SCRIPT><p>after</p>",
	"<style>td { color: red }</style>",
	"<ul><li>1<li>2<li>3</ul>",
	"<div>\n\t  spaced   out\n</div>",
	"<a href='/x'>link</a> loose > bracket < not a tag",
	strings.Repeat("<div>", 40) + "deep" + strings.Repeat("</div>", 40),
}

// TestTreeParseMatchesParse pins the pooled parser to the package-level one:
// the same workspace reused across very different pages must serialize
// identically to a fresh parse every time.
func TestTreeParseMatchesParse(t *testing.T) {
	tr := AcquireTree()
	defer tr.Release()
	// Two passes over the corpus so every case also runs against a
	// workspace dirtied by every other case.
	for pass := 0; pass < 2; pass++ {
		for _, src := range poolCases {
			want := dom.Serialize(Parse(src))
			got := dom.Serialize(tr.Parse(src))
			if got != want {
				t.Fatalf("pass %d: pooled parse of %q:\n got %q\nwant %q", pass, src, got, want)
			}
		}
	}
}

// TestTreeParseRecyclesNodes proves the arena actually recycles: after a
// first parse warms the workspace, reparsing a page of the same shape must
// not grow the arena.
func TestTreeParseRecyclesNodes(t *testing.T) {
	tr := AcquireTree()
	defer tr.Release()
	src := "<html><body><div class='x'><p>a</p><p>b</p></div></body></html>"
	tr.Parse(src)
	warm := len(tr.arena)
	for i := 0; i < 10; i++ {
		tr.Parse(src)
	}
	if len(tr.arena) != warm {
		t.Fatalf("arena grew from %d to %d nodes on identical reparses", warm, len(tr.arena))
	}
}

// TestTreeParseAllocs pins the steady-state allocation count of the pooled
// fast path on a page whose text is already whitespace-collapsed: the only
// remaining allocations should be incidental (and zero is the goal).
func TestTreeParseAllocs(t *testing.T) {
	tr := AcquireTree()
	defer tr.Release()
	src := "<html><body><table><tr><td>alpha</td><td>beta</td></tr></table></body></html>"
	tr.Parse(src) // warm the arena
	avg := testing.AllocsPerRun(100, func() { tr.Parse(src) })
	if avg > 0 {
		t.Fatalf("pooled reparse allocates %.1f times per run, want 0", avg)
	}
}

// TestTreeReleaseDropsOversized: a pathological parse must not pin its arena
// in the pool forever.
func TestTreeReleaseDropsOversized(t *testing.T) {
	tr := &Tree{}
	var sb strings.Builder
	for i := 0; i < maxPooledNodes+2; i++ {
		sb.WriteString("<br>")
	}
	tr.Parse(sb.String())
	if len(tr.arena) <= maxPooledNodes {
		t.Skipf("arena only reached %d nodes", len(tr.arena))
	}
	tr.Release() // must not panic; the workspace is simply dropped
}

// TestTextDataDoesNotAliasScratch: text collapsed from indented source must
// be a stable copy, not a view of the workspace scratch that the next parse
// overwrites.
func TestTextDataDoesNotAliasScratch(t *testing.T) {
	tr := AcquireTree()
	defer tr.Release()
	root := tr.Parse("<p>\n   first   text\n</p>")
	var got string
	root.Walk(func(n *dom.Node) bool {
		if n.Type == dom.TextNode {
			got = n.Data
		}
		return true
	})
	if got != "first text" {
		t.Fatalf("collapsed text = %q", got)
	}
	tr.Parse("<p>\n   SECOND   run\n</p>") // overwrite the scratch
	if got != "first text" {
		t.Fatalf("text data mutated by the next parse: %q", got)
	}
}
