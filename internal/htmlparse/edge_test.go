package htmlparse

import (
	"strings"
	"testing"

	"autowrap/internal/dom"
)

func TestParseStyleRawText(t *testing.T) {
	doc := Parse(`<style>.x > li { color: red; }</style><p>after</p>`)
	style := findFirst(doc, "style")
	if style == nil || !style.Raw {
		t.Fatal("style not parsed as raw")
	}
	if findFirst(doc, "li") != nil {
		t.Fatal("selector inside style leaked into the tree")
	}
	if got := strings.Join(findTexts(findFirst(doc, "p")), ""); got != "after" {
		t.Fatalf("content after style = %q", got)
	}
}

func TestParseScriptCaseInsensitiveClose(t *testing.T) {
	doc := Parse(`<script>var a=1;</SCRIPT><p>x</p>`)
	if findFirst(doc, "p") == nil {
		t.Fatal("uppercase close tag not honored for raw text")
	}
}

func TestParseUnquotedAttrStopsAtSlashGt(t *testing.T) {
	doc := Parse(`<img src=pic.png/><span>t</span>`)
	img := findFirst(doc, "img")
	if v, _ := img.Attr("src"); v != "pic.png" {
		t.Fatalf("src = %q (self-closing slash must not join the value)", v)
	}
}

func TestParseValuelessAttribute(t *testing.T) {
	doc := Parse(`<input disabled type=checkbox>`)
	in := findFirst(doc, "input")
	if _, ok := in.Attr("disabled"); !ok {
		t.Fatal("boolean attribute dropped")
	}
	if v, _ := in.Attr("type"); v != "checkbox" {
		t.Fatalf("type = %q", v)
	}
}

func TestParseNumericEntityEdge(t *testing.T) {
	doc := Parse(`<p>&#x48;&#105; &#x110000; &#0;</p>`)
	texts := findTexts(doc)
	if len(texts) != 1 || !strings.HasPrefix(texts[0], "Hi") {
		t.Fatalf("texts = %q", texts)
	}
	// Out-of-range and zero references stay verbatim.
	if !strings.Contains(texts[0], "&#x110000;") || !strings.Contains(texts[0], "&#0;") {
		t.Fatalf("invalid refs should remain literal: %q", texts[0])
	}
}

func TestParseDoctypeVariants(t *testing.T) {
	for _, src := range []string{
		`<!DOCTYPE html><p>x</p>`,
		`<?xml version="1.0"?><p>x</p>`,
		`<!doctype html PUBLIC "-//W3C//DTD XHTML 1.0"><p>x</p>`,
	} {
		doc := Parse(src)
		if got := strings.Join(findTexts(doc), ""); got != "x" {
			t.Fatalf("%q: texts = %q", src, got)
		}
	}
}

func TestSortAttrs(t *testing.T) {
	n := dom.NewElement("div", "z", "1", "a", "2", "m", "3")
	n.SortAttrs()
	if n.Attrs[0].Key != "a" || n.Attrs[1].Key != "m" || n.Attrs[2].Key != "z" {
		t.Fatalf("attrs not sorted: %v", n.Attrs)
	}
}

func TestParseDeepNestingNoStackIssues(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString("<div>")
	}
	sb.WriteString("deep")
	doc := Parse(sb.String())
	if got := strings.Join(findTexts(doc), ""); got != "deep" {
		t.Fatalf("texts = %q", got)
	}
}
