package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"autowrap/internal/dom"
)

func parseBody(t *testing.T, src string) *dom.Node {
	t.Helper()
	return Parse(src)
}

func findTexts(doc *dom.Node) []string {
	var out []string
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.TextNode {
			out = append(out, n.Data)
		}
		return true
	})
	return out
}

func findFirst(doc *dom.Node, tag string) *dom.Node {
	var found *dom.Node
	doc.Walk(func(n *dom.Node) bool {
		if found == nil && n.IsElement(tag) {
			found = n
		}
		return found == nil
	})
	return found
}

func TestParseSimple(t *testing.T) {
	doc := parseBody(t, `<div class="a"><b>hello</b> world</div>`)
	div := findFirst(doc, "div")
	if div == nil {
		t.Fatal("no div")
	}
	if v, _ := div.Attr("class"); v != "a" {
		t.Fatalf("class = %q", v)
	}
	texts := findTexts(doc)
	if len(texts) != 2 || texts[0] != "hello" || texts[1] != "world" {
		t.Fatalf("texts = %q", texts)
	}
}

func TestParseUnquotedAndSingleQuotedAttrs(t *testing.T) {
	doc := parseBody(t, `<div class=dealer id='x7'>v</div>`)
	div := findFirst(doc, "div")
	if v, _ := div.Attr("class"); v != "dealer" {
		t.Fatalf("class = %q", v)
	}
	if v, _ := div.Attr("id"); v != "x7" {
		t.Fatalf("id = %q", v)
	}
}

func TestParseAttrCaseNormalized(t *testing.T) {
	doc := parseBody(t, `<DIV CLASS="A">v</DIV>`)
	div := findFirst(doc, "div")
	if div == nil {
		t.Fatal("tag name not lowercased")
	}
	if v, ok := div.Attr("class"); !ok || v != "A" {
		t.Fatalf("attr key not lowercased or value changed: %q %v", v, ok)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := parseBody(t, `<div>a<br>b<img src=x.png>c</div>`)
	texts := findTexts(doc)
	if len(texts) != 3 {
		t.Fatalf("texts = %q", texts)
	}
	// br and img must not swallow following content as children.
	br := findFirst(doc, "br")
	if len(br.Children) != 0 {
		t.Fatal("br has children")
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := parseBody(t, `<div><span/>tail</div>`)
	span := findFirst(doc, "span")
	if span == nil || len(span.Children) != 0 {
		t.Fatal("self-closing span mishandled")
	}
	if got := strings.Join(findTexts(doc), "|"); got != "tail" {
		t.Fatalf("texts = %q", got)
	}
}

func TestParseAutoCloseListItems(t *testing.T) {
	doc := parseBody(t, `<ul><li>one<li>two<li>three</ul>`)
	ul := findFirst(doc, "ul")
	lis := 0
	for _, c := range ul.Children {
		if c.IsElement("li") {
			lis++
			if len(c.Children) != 1 {
				t.Fatalf("li has %d children", len(c.Children))
			}
		}
	}
	if lis != 3 {
		t.Fatalf("expected 3 sibling li, got %d", lis)
	}
}

func TestParseAutoCloseTableCells(t *testing.T) {
	doc := parseBody(t, `<table><tr><td>a<td>b<tr><td>c</table>`)
	table := findFirst(doc, "table")
	var trs []*dom.Node
	for _, c := range table.Children {
		if c.IsElement("tr") {
			trs = append(trs, c)
		}
	}
	if len(trs) != 2 {
		t.Fatalf("expected 2 tr, got %d", len(trs))
	}
	if n := countTag(trs[0], "td"); n != 2 {
		t.Fatalf("row 1 has %d td", n)
	}
	if n := countTag(trs[1], "td"); n != 1 {
		t.Fatalf("row 2 has %d td", n)
	}
}

func countTag(n *dom.Node, tag string) int {
	c := 0
	n.Walk(func(d *dom.Node) bool {
		if d.IsElement(tag) {
			c++
		}
		return true
	})
	return c
}

func TestParseStrayCloseTagDropped(t *testing.T) {
	// The stray </span> is dropped without splitting the text run: a
	// reparse of the serialization ("ab") could never see the split, and
	// the tree must be a fixed point of serialize -> reparse.
	doc := parseBody(t, `<div>a</span>b</div>`)
	texts := findTexts(doc)
	if strings.Join(texts, "|") != "ab" {
		t.Fatalf("texts = %q", texts)
	}
	div := findFirst(doc, "div")
	if len(div.Children) != 1 {
		t.Fatalf("div children = %d", len(div.Children))
	}
}

func TestParseMismatchedCloseForcesClosure(t *testing.T) {
	doc := parseBody(t, `<div><b>x</div>tail`)
	// </div> must close the open <b> too; "tail" is a sibling of div.
	div := findFirst(doc, "div")
	if div.Parent.Type != dom.DocumentNode {
		t.Fatal("div not at top level")
	}
	last := div.Parent.Children[len(div.Parent.Children)-1]
	if last.Type != dom.TextNode || last.Data != "tail" {
		t.Fatalf("tail not recovered at top level: %+v", last)
	}
}

func TestParseUnclosedAtEOF(t *testing.T) {
	doc := parseBody(t, `<div><ul><li>one`)
	if got := strings.Join(findTexts(doc), "|"); got != "one" {
		t.Fatalf("texts = %q", got)
	}
}

func TestParseCommentsAndDoctypeDropped(t *testing.T) {
	doc := parseBody(t, `<!DOCTYPE html><!-- hidden <b>markup</b> --><p>shown</p>`)
	if got := strings.Join(findTexts(doc), "|"); got != "shown" {
		t.Fatalf("texts = %q", got)
	}
	if findFirst(doc, "b") != nil {
		t.Fatal("comment content was parsed as markup")
	}
}

func TestParseScriptRawText(t *testing.T) {
	doc := parseBody(t, `<script>if (a<b) { x = "<td>"; }</script><p>after</p>`)
	script := findFirst(doc, "script")
	if script == nil || !script.Raw {
		t.Fatal("script not parsed as raw")
	}
	if len(script.Children) != 1 || !strings.Contains(script.Children[0].Data, `x = "<td>"`) {
		t.Fatalf("script content mangled: %+v", script.Children)
	}
	if findFirst(doc, "td") != nil {
		t.Fatal("markup inside script leaked into the tree")
	}
	if got := strings.Join(findTexts(findFirst(doc, "p")), "|"); got != "after" {
		t.Fatalf("content after script = %q", got)
	}
}

func TestParseEntities(t *testing.T) {
	doc := parseBody(t, `<p>Tom &amp; Jerry &lt;3 &#65;&#x42; &unknown; &nbsp;x</p>`)
	texts := findTexts(doc)
	if len(texts) != 1 {
		t.Fatalf("texts = %q", texts)
	}
	want := "Tom & Jerry <3 AB &unknown; x"
	if texts[0] != want {
		t.Fatalf("entity decoding = %q, want %q", texts[0], want)
	}
}

func TestParseWhitespaceCollapsed(t *testing.T) {
	doc := parseBody(t, "<p>  a \n\t b  </p>\n\n<p>   </p>")
	texts := findTexts(doc)
	if len(texts) != 1 || texts[0] != "a b" {
		t.Fatalf("texts = %q", texts)
	}
}

func TestParseLoneAngleBracket(t *testing.T) {
	doc := parseBody(t, `<p>5 < 6 and 7 > 2</p>`)
	texts := findTexts(doc)
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "5") || !strings.Contains(joined, "2") {
		t.Fatalf("lost content around lone '<': %q", texts)
	}
}

func TestParseDeeplyBrokenInputNeverPanics(t *testing.T) {
	inputs := []string{
		"", "<", ">", "<>", "</>", "<<<<", "<a", "<a b", `<a b="`, "<a/",
		"&", "&;", "&#;", "&#x;", "<!----", "<!", "<div", "</div>",
		"<script>", "<script>unclosed", strings.Repeat("<div>", 500),
	}
	for _, in := range inputs {
		_ = Parse(in) // must not panic
	}
}

// TestReparseStability: serialize(parse(html)) must be a fixed point —
// parsing the serialization again yields an identical serialization. The
// corpus layer depends on this to give the LR inductor a canonical string.
func TestReparseStability(t *testing.T) {
	samples := []string{
		`<html><body><div class='dealer links'><tr><td><u>PORTER FURNITURE</u><br>201 HWY.30 West<br>NEW ALBANY, MS 38652</td></tr></div></body></html>`,
		`<ul><li>one<li>two<li>three</ul>`,
		`<table><tr><td>a<td>b</table>`,
		`<div>a<br>b &amp; c</div>`,
	}
	for _, src := range samples {
		first := dom.Serialize(Parse(src))
		second := dom.Serialize(Parse(first))
		if first != second {
			t.Fatalf("not a fixed point:\n src: %s\n 1st: %s\n 2nd: %s", src, first, second)
		}
	}
}

// TestReparseStabilityProperty extends the fixed-point check to generated
// markup soup.
func TestReparseStabilityProperty(t *testing.T) {
	f := func(parts []uint8) bool {
		var sb strings.Builder
		tags := []string{"div", "td", "tr", "li", "b", "u", "span", "br"}
		for _, p := range parts {
			switch p % 5 {
			case 0:
				sb.WriteString("<" + tags[int(p/5)%len(tags)] + ">")
			case 1:
				sb.WriteString("</" + tags[int(p/5)%len(tags)] + ">")
			case 2:
				sb.WriteString("text")
			case 3:
				sb.WriteString(" & < ")
			case 4:
				sb.WriteString(`<a href="x">link</a>`)
			}
		}
		first := dom.Serialize(Parse(sb.String()))
		second := dom.Serialize(Parse(first))
		return first == second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseFigure1Snippet(t *testing.T) {
	// The paper's Figure 1 HTML snippet.
	src := `<div class='dealer links'>
	<tr><td>
		<u>PORTER FURNITURE</u><br>
		201 HWY.30 West<br>
		NEW ALBANY, MS 38652
	</td></tr>
	<tr><td>
		<u>WOODLAND FURNITURE</u><br>
		123 Main St.<br>
		WOODLAND, MS 3977
	</td></tr>
</div>`
	doc := Parse(src)
	texts := findTexts(doc)
	want := []string{
		"PORTER FURNITURE", "201 HWY.30 West", "NEW ALBANY, MS 38652",
		"WOODLAND FURNITURE", "123 Main St.", "WOODLAND, MS 3977",
	}
	if len(texts) != len(want) {
		t.Fatalf("texts = %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("texts[%d] = %q, want %q", i, texts[i], want[i])
		}
	}
	div := findFirst(doc, "div")
	if v, _ := div.Attr("class"); v != "dealer links" {
		t.Fatalf("div class = %q", v)
	}
}
