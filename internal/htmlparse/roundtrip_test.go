package htmlparse_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"autowrap/internal/dataset"
	"autowrap/internal/dom"
	"autowrap/internal/htmlparse"
)

// The round-trip property: every parsed tree is a fixed point of
// serialize -> reparse. Extraction on stored pages depends on it — a
// compiled wrapper is applied to a reparse of the serialized page, and if
// that tree differed from the original (split text runs, shifted
// attributes), text-node identity and ordinals would silently drift.
//
// For arbitrary input src the first Parse may normalize (drop comments,
// collapse whitespace, merge text runs), so the property is stated on the
// parse's output: t1 := Parse(src); Parse(Serialize(t1)) ≡ t1, and the
// serializations are byte-identical.

// treeEqual compares two DOM trees structurally and returns the path of
// the first difference.
func treeEqual(a, b *dom.Node, path string) (bool, string) {
	if a.Type != b.Type || a.Tag != b.Tag || a.Data != b.Data || a.Raw != b.Raw {
		return false, fmt.Sprintf("%s: node %v/%q/%q vs %v/%q/%q",
			path, a.Type, a.Tag, a.Data, b.Type, b.Tag, b.Data)
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false, fmt.Sprintf("%s: %d vs %d attrs", path, len(a.Attrs), len(b.Attrs))
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false, fmt.Sprintf("%s: attr %d %v vs %v", path, i, a.Attrs[i], b.Attrs[i])
		}
	}
	if len(a.Children) != len(b.Children) {
		return false, fmt.Sprintf("%s: %d vs %d children", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		if ok, diff := treeEqual(a.Children[i], b.Children[i],
			fmt.Sprintf("%s/%s[%d]", path, a.Children[i].Tag, i)); !ok {
			return false, diff
		}
	}
	return true, ""
}

func assertRoundTrip(t *testing.T, name, src string) {
	t.Helper()
	t1 := htmlparse.Parse(src)
	h1 := dom.Serialize(t1)
	t2 := htmlparse.Parse(h1)
	h2 := dom.Serialize(t2)
	if h1 != h2 {
		t.Fatalf("%s: serialization not stable:\n  first:  %q\n  second: %q", name, h1, h2)
	}
	if ok, diff := treeEqual(t1, t2, ""); !ok {
		t.Fatalf("%s: reparse changed the tree at %s\n  serialized: %q", name, diff, h1)
	}
}

// TestRoundTripAdversarialHTML covers the messy constructs the tolerant
// parser accepts.
func TestRoundTripAdversarialHTML(t *testing.T) {
	cases := map[string]string{
		"plain":            `<html><body><p>hello</p></body></html>`,
		"lone lt in text":  `<p>5<6 and 7>2</p>`,
		"comment in text":  `<p>a<!-- split -->b</p>`,
		"doctype and text": `<!DOCTYPE html><p>a</p>text`,
		"stray close":      `<div>a</span>b</div>`,
		"unclosed tags":    `<div><b>x<i>y`,
		"auto close":       `<table><tr><td>a<td>b<tr><td>c</table>`,
		"void elements":    `<p>a<br>b<img src="x.png">c<hr></p>`,
		"self closing":     `<div/><span/>text`,
		"entities":         `<p>&amp;&lt;&gt;&quot;&copy;&deg;&#65;&#x42;&unknown;</p>`,
		"nbsp runs":        `<p>a&nbsp;&nbsp;b</p>`,
		"attr quoting":     `<a href='x.html' title="a&quot;b" data-x=bare empty>t</a>`,
		"attr entity":      `<a title="5&lt;6&amp;7">x</a>`,
		"attr lt":          `<a title="a<b">x</a>`,
		"script raw":       `<script>if (a<b && c>d) { x = "</div>"; }</script><p>after</p>`,
		"style raw":        `<style>td > .x { color: red }</style><td class="x">y</td>`,
		"whitespace noise": "<div>\n\t  <span> padded   text </span>\n  </div>",
		"mixed case tags":  `<DIV CLASS="Big"><SpAn>x</sPaN></DIV>`,
		"deep nesting":     strings.Repeat("<div>", 60) + "core" + strings.Repeat("</div>", 60),
		"table numbers":    `<table><tr><td>1</td><td>2</td></tr><tr><td>3</td><td>4</td></tr></table>`,
		"text after html":  `<html><body>x</body></html>trailing`,
		"only text":        `no markup at all`,
		"lt at end":        `text ends <`,
		"empty":            ``,
		"unterminated tag": `<div class="x`,
		"bad comment":      `<p>a<!-- never closed`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { assertRoundTrip(t, name, src) })
	}
}

// TestRoundTripGeneratedSites runs the property over every page of the
// three synthetic evaluation datasets — the pages extraction actually
// stores and re-parses.
func TestRoundTripGeneratedSites(t *testing.T) {
	dealers, err := dataset.Dealers(dataset.DealersOptions{NumSites: 6, NumPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	disc, err := dataset.Disc(dataset.DiscOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prods, err := dataset.Products(dataset.ProductsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, ds := range []*dataset.Dataset{dealers, disc, prods} {
		for _, site := range ds.Sites {
			for i, page := range site.Corpus.Pages {
				name := fmt.Sprintf("%s/%s/p%d", ds.Name, site.Name, i)
				// The corpus's canonical HTML is itself a serialization, so
				// the property must hold starting from it.
				t1 := htmlparse.Parse(page.HTML)
				if ok, diff := treeEqual(page.Root, t1, ""); !ok {
					t.Fatalf("%s: reparse of canonical HTML changed the tree at %s", name, diff)
				}
				if h := dom.Serialize(t1); h != page.HTML {
					t.Fatalf("%s: serialization not stable", name)
				}
				checked++
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d pages checked; dataset options too small", checked)
	}
}

// TestRoundTripRandomMarkup throws seeded pseudo-random tag soup at the
// parser: whatever tree comes out must be a serialize/reparse fixed point.
func TestRoundTripRandomMarkup(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tags := []string{"div", "span", "td", "tr", "table", "b", "p", "li", "br", "script"}
	frags := []string{
		"text", " ", "a&amp;b", "<", ">", "&", "&#65;", "&bogus;", "x<y",
		"<!--c-->", "</", "<!", "  spaced  ", "\n\t", "'quote'", `"dq"`, "&nbsp;",
	}
	for i := 0; i < 300; i++ {
		var sb strings.Builder
		n := 1 + rng.Intn(40)
		for j := 0; j < n; j++ {
			switch rng.Intn(4) {
			case 0:
				tag := tags[rng.Intn(len(tags))]
				sb.WriteString("<" + tag)
				if rng.Intn(2) == 0 {
					fmt.Fprintf(&sb, ` class="c%d"`, rng.Intn(3))
				}
				if rng.Intn(5) == 0 {
					fmt.Fprintf(&sb, ` data-x=%d`, rng.Intn(10))
				}
				sb.WriteString(">")
			case 1:
				sb.WriteString("</" + tags[rng.Intn(len(tags))] + ">")
			default:
				sb.WriteString(frags[rng.Intn(len(frags))])
			}
		}
		src := sb.String()
		t.Run(fmt.Sprintf("soup%03d", i), func(t *testing.T) {
			assertRoundTrip(t, src, src)
		})
	}
}
