package htmlparse

import (
	"strings"

	"autowrap/internal/dom"
)

// autoClose maps a tag to the set of open tags it implicitly closes when it
// starts. This captures the common sloppy patterns of script-generated HTML
// (e.g. a new <tr> closes an open <td> and <tr>).
var autoClose = map[string][]string{
	"li":     {"li"},
	"tr":     {"td", "th", "tr"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"p":      {"p"},
	"option": {"option"},
	"dt":     {"dd", "dt"},
	"dd":     {"dd", "dt"},
	"thead":  {"td", "th", "tr", "tbody"},
	"tbody":  {"td", "th", "tr", "thead"},
}

// Parse builds a document tree from HTML source. It never returns an error:
// any input yields a tree (tolerant, tidy-like behaviour). Whitespace-only
// text between elements is dropped; other text keeps its original spacing.
func Parse(src string) *dom.Node {
	doc := dom.NewDocument()
	stack := []*dom.Node{doc}
	top := func() *dom.Node { return stack[len(stack)-1] }

	tz := newTokenizer(src)
	for {
		tok, ok := tz.next()
		if !ok {
			break
		}
		switch tok.typ {
		case tokComment, tokDoctype:
			// dropped: the extraction model does not use them
		case tokText:
			if top().Raw {
				if strings.TrimSpace(tok.data) != "" {
					top().Append(dom.NewText(tok.data))
				}
				continue
			}
			if strings.TrimSpace(tok.data) == "" {
				continue
			}
			top().Append(dom.NewText(collapseSpace(tok.data)))
		case tokStartTag, tokSelfClosing:
			for _, victim := range autoClose[tok.data] {
				if top().IsElement(victim) {
					stack = stack[:len(stack)-1]
				}
			}
			el := &dom.Node{Type: dom.ElementNode, Tag: tok.data}
			for _, a := range tok.attrs {
				el.Attrs = append(el.Attrs, dom.Attr{Key: a.key, Val: a.val})
			}
			if tok.data == "script" || tok.data == "style" {
				el.Raw = true
			}
			top().Append(el)
			if tok.typ == tokStartTag && !dom.VoidElements[tok.data] {
				stack = append(stack, el)
			}
		case tokEndTag:
			// Find the nearest matching open element; if none, drop the
			// stray close tag. Everything above the match is force-closed.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].IsElement(tok.data) {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}

// collapseSpace normalizes runs of whitespace to single spaces, trimming the
// ends. Script-generated pages are full of indentation noise; collapsing
// makes text-node identity stable across serialize/reparse cycles.
func collapseSpace(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' {
			space = true
			continue
		}
		if space && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		space = false
		sb.WriteByte(c)
	}
	return sb.String()
}
