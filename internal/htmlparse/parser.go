package htmlparse

import (
	"autowrap/internal/dom"
)

// autoClose maps a tag to the set of open tags it implicitly closes when it
// starts. This captures the common sloppy patterns of script-generated HTML
// (e.g. a new <tr> closes an open <td> and <tr>).
var autoClose = map[string][]string{
	"li":     {"li"},
	"tr":     {"td", "th", "tr"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"p":      {"p"},
	"option": {"option"},
	"dt":     {"dd", "dt"},
	"dd":     {"dd", "dt"},
	"thead":  {"td", "th", "tr", "tbody"},
	"tbody":  {"td", "th", "tr", "thead"},
}

// Parse builds a document tree from HTML source. It never returns an error:
// any input yields a tree (tolerant, tidy-like behaviour). Whitespace-only
// text between elements is dropped; other text keeps its original spacing.
//
// Consecutive text runs — split by the tokenizer at a literal '<', or by a
// dropped comment/doctype — coalesce into a single text node. This keeps
// the tree a fixed point of serialize→reparse (escaping erases the split
// points), which stored-page extraction relies on: text-node identity must
// not shift between the original parse and a reparse of the serialization.
//
// Parse allocates a fresh tree the caller owns forever. Hot paths that
// discard the tree after use should go through AcquireTree/Tree.Parse/
// Release instead, which recycles node and scratch storage.
func Parse(src string) *dom.Node {
	var t Tree
	return t.parse(src)
}

// parse is the one parser implementation, shared by the package-level Parse
// (throwaway workspace) and the pooled Tree path. All nodes come from the
// tree's arena; any tree returned by a previous parse on the same workspace
// is invalidated.
func (t *Tree) parse(src string) *dom.Node {
	t.used = 0
	t.tz = tokenizer{src: src, attrs: t.tz.attrs[:0]}
	doc := t.newNode()
	doc.Type = dom.DocumentNode
	t.stack = append(t.stack[:0], doc)
	top := func() *dom.Node { return t.stack[len(t.stack)-1] }

	// Text accumulates as a single pending run in the common case; runs
	// split by a dropped comment/doctype or a literal '<' coalesce through
	// textBuf. flushText collapses whitespace into scratch and only
	// allocates a fresh string when collapsing actually changed the bytes.
	var pending string
	flushText := func() {
		data := pending
		pending = ""
		if len(t.textBuf) > 0 {
			data = string(t.textBuf)
			t.textBuf = t.textBuf[:0]
		}
		if data == "" {
			return
		}
		t.scratch = collapseAppend(t.scratch[:0], data)
		if len(t.scratch) == 0 {
			return // whitespace-only run
		}
		text := t.newNode()
		text.Type = dom.TextNode
		if string(t.scratch) == data {
			text.Data = data // already collapsed: no copy
		} else {
			text.Data = string(t.scratch)
		}
		top().Append(text)
	}

	for {
		tok, ok := t.tz.next()
		if !ok {
			break
		}
		switch tok.typ {
		case tokComment, tokDoctype:
			// dropped: the extraction model does not use them. They do not
			// flush the text buffer — once dropped, the text on either side
			// is adjacent, exactly as a reparse of the serialization sees it.
		case tokText:
			if top().Raw {
				if !isSpace(tok.data) {
					raw := t.newNode()
					raw.Type = dom.TextNode
					raw.Data = tok.data
					top().Append(raw)
				}
				continue
			}
			if pending == "" && len(t.textBuf) == 0 {
				pending = tok.data
			} else {
				if len(t.textBuf) == 0 {
					t.textBuf = append(t.textBuf, pending...)
					pending = ""
				}
				t.textBuf = append(t.textBuf, tok.data...)
			}
		case tokStartTag, tokSelfClosing:
			flushText()
			for _, victim := range autoClose[tok.data] {
				if top().IsElement(victim) {
					t.stack = t.stack[:len(t.stack)-1]
				}
			}
			el := t.newNode()
			el.Type = dom.ElementNode
			el.Tag = tok.data
			for _, a := range tok.attrs {
				el.Attrs = append(el.Attrs, dom.Attr{Key: a.key, Val: a.val})
			}
			if tok.data == "script" || tok.data == "style" {
				el.Raw = true
			}
			top().Append(el)
			if tok.typ == tokStartTag && !dom.VoidElements[tok.data] {
				t.stack = append(t.stack, el)
			}
		case tokEndTag:
			// Find the nearest matching open element; if none, drop the
			// stray close tag (without splitting the surrounding text run).
			// Everything above the match is force-closed.
			for i := len(t.stack) - 1; i >= 1; i-- {
				if t.stack[i].IsElement(tok.data) {
					flushText()
					t.stack = t.stack[:i]
					break
				}
			}
		}
	}
	flushText()
	return doc
}

// collapseAppend appends s to dst with runs of whitespace normalized to
// single spaces and the ends trimmed. Script-generated pages are full of
// indentation noise; collapsing makes text-node identity stable across
// serialize/reparse cycles.
func collapseAppend(dst []byte, s string) []byte {
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' {
			space = true
			continue
		}
		if space && len(dst) > 0 {
			dst = append(dst, ' ')
		}
		space = false
		dst = append(dst, c)
	}
	return dst
}

// isSpace reports whether s is entirely HTML whitespace.
func isSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r', '\f':
		default:
			return false
		}
	}
	return true
}
