package htmlparse

import (
	"strings"

	"autowrap/internal/dom"
)

// autoClose maps a tag to the set of open tags it implicitly closes when it
// starts. This captures the common sloppy patterns of script-generated HTML
// (e.g. a new <tr> closes an open <td> and <tr>).
var autoClose = map[string][]string{
	"li":     {"li"},
	"tr":     {"td", "th", "tr"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"p":      {"p"},
	"option": {"option"},
	"dt":     {"dd", "dt"},
	"dd":     {"dd", "dt"},
	"thead":  {"td", "th", "tr", "tbody"},
	"tbody":  {"td", "th", "tr", "thead"},
}

// Parse builds a document tree from HTML source. It never returns an error:
// any input yields a tree (tolerant, tidy-like behaviour). Whitespace-only
// text between elements is dropped; other text keeps its original spacing.
//
// Consecutive text runs — split by the tokenizer at a literal '<', or by a
// dropped comment/doctype — coalesce into a single text node. This keeps
// the tree a fixed point of serialize→reparse (escaping erases the split
// points), which stored-page extraction relies on: text-node identity must
// not shift between the original parse and a reparse of the serialization.
func Parse(src string) *dom.Node {
	doc := dom.NewDocument()
	stack := []*dom.Node{doc}
	top := func() *dom.Node { return stack[len(stack)-1] }

	var textBuf strings.Builder
	flushText := func() {
		if textBuf.Len() == 0 {
			return
		}
		data := textBuf.String()
		textBuf.Reset()
		if strings.TrimSpace(data) == "" {
			return
		}
		top().Append(dom.NewText(collapseSpace(data)))
	}

	tz := newTokenizer(src)
	for {
		tok, ok := tz.next()
		if !ok {
			break
		}
		switch tok.typ {
		case tokComment, tokDoctype:
			// dropped: the extraction model does not use them. They do not
			// flush the text buffer — once dropped, the text on either side
			// is adjacent, exactly as a reparse of the serialization sees it.
		case tokText:
			if top().Raw {
				if strings.TrimSpace(tok.data) != "" {
					top().Append(dom.NewText(tok.data))
				}
				continue
			}
			textBuf.WriteString(tok.data)
		case tokStartTag, tokSelfClosing:
			flushText()
			for _, victim := range autoClose[tok.data] {
				if top().IsElement(victim) {
					stack = stack[:len(stack)-1]
				}
			}
			el := &dom.Node{Type: dom.ElementNode, Tag: tok.data}
			for _, a := range tok.attrs {
				el.Attrs = append(el.Attrs, dom.Attr{Key: a.key, Val: a.val})
			}
			if tok.data == "script" || tok.data == "style" {
				el.Raw = true
			}
			top().Append(el)
			if tok.typ == tokStartTag && !dom.VoidElements[tok.data] {
				stack = append(stack, el)
			}
		case tokEndTag:
			// Find the nearest matching open element; if none, drop the
			// stray close tag (without splitting the surrounding text run).
			// Everything above the match is force-closed.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].IsElement(tok.data) {
					flushText()
					stack = stack[:i]
					break
				}
			}
		}
	}
	flushText()
	return doc
}

// collapseSpace normalizes runs of whitespace to single spaces, trimming the
// ends. Script-generated pages are full of indentation noise; collapsing
// makes text-node identity stable across serialize/reparse cycles.
func collapseSpace(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' {
			space = true
			continue
		}
		if space && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		space = false
		sb.WriteByte(c)
	}
	return sb.String()
}
