package xpath

import (
	"strings"
	"testing"

	"autowrap/internal/dom"
	"autowrap/internal/htmlparse"
)

func doc(t *testing.T, src string) *dom.Node {
	t.Helper()
	return htmlparse.Parse(src)
}

const page = `
<html><body>
<div class="content">
  <table>
    <tr><td>a1</td><td>b1</td></tr>
    <tr><td>a2</td><td>b2</td></tr>
  </table>
  <table>
    <tr><td>x1</td><td>y1</td></tr>
  </table>
</div>
<div class="nav">
  <ul><li>home</li><li>about</li></ul>
</div>
</body></html>`

func evalTexts(t *testing.T, root *dom.Node, expr string) []string {
	t.Helper()
	e, err := Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	var out []string
	for _, n := range e.Eval(root) {
		out = append(out, strings.TrimSpace(n.Data))
	}
	return out
}

func TestParseRoundTrip(t *testing.T) {
	exprs := []string{
		"//div[@class='dealerlinks']/tr/td/u/text()",
		"//div[@class='content']/table[1]/tr/td[2]/text()",
		"/html/body/div/text()",
		"//*/text()",
		"//td",
		"//div[@id='a'][@class='b']/span[3]/text()",
	}
	for _, s := range exprs {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if e.String() != s {
			t.Fatalf("round trip %q -> %q", s, e.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "div", "//", "//div[", "//div[@]", "//div[@class]",
		"//div[@class=]", "//div[@class='x]", "//div[0]", "//div]",
		"//text()/div", "//div[@class=x]",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Fatalf("expected parse error for %q", s)
		}
	}
}

func TestEvalPaperEquation3(t *testing.T) {
	root := doc(t, page)
	// Equation (3): second column of each row of the first table in the
	// content div.
	got := evalTexts(t, root, "//div[@class='content']/table[1]/tr/td[2]/text()")
	want := []string{"b1", "b2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEvalDescendantVsChild(t *testing.T) {
	root := doc(t, page)
	all := evalTexts(t, root, "//td/text()")
	if len(all) != 6 {
		t.Fatalf("//td/text() = %v", all)
	}
	// Child edge from body only matches direct div children.
	divs, err := Parse("/html/body/div")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(divs.Eval(root)); n != 2 {
		t.Fatalf("child div count = %d", n)
	}
}

func TestEvalAttributePredicate(t *testing.T) {
	root := doc(t, page)
	got := evalTexts(t, root, "//div[@class='nav']/ul/li/text()")
	if strings.Join(got, ",") != "home,about" {
		t.Fatalf("got %v", got)
	}
	if res := evalTexts(t, root, "//div[@class='missing']/ul/li/text()"); len(res) != 0 {
		t.Fatalf("expected empty, got %v", res)
	}
}

func TestEvalChildIndexIsSameTagNumber(t *testing.T) {
	root := doc(t, `<div><span>s1</span><b>b1</b><span>s2</span></div>`)
	got := evalTexts(t, root, "//div/span[2]/text()")
	if strings.Join(got, ",") != "s2" {
		t.Fatalf("span[2] = %v", got)
	}
	// b is the first (and only) b child even though it is the second child
	// overall: the index counts same-tag siblings (paper's td[2] usage).
	got = evalTexts(t, root, "//div/b[1]/text()")
	if strings.Join(got, ",") != "b1" {
		t.Fatalf("b[1] = %v", got)
	}
}

func TestEvalWildcard(t *testing.T) {
	root := doc(t, page)
	got := evalTexts(t, root, "//table/tr/*/text()")
	if len(got) != 6 {
		t.Fatalf("wildcard got %v", got)
	}
}

func TestEvalAllTextNodes(t *testing.T) {
	root := doc(t, page)
	got := evalTexts(t, root, "//*/text()")
	if len(got) != 8 {
		t.Fatalf("//*/text() = %v", got)
	}
}

func TestEvalDocumentOrderNoDuplicates(t *testing.T) {
	root := doc(t, page)
	got := evalTexts(t, root, "//div//td/text()")
	want := []string{"a1", "b1", "a2", "b2", "x1", "y1"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("order/dup issue: %v", got)
	}
}

func TestEvalEmptyOnNoMatch(t *testing.T) {
	root := doc(t, page)
	if got := evalTexts(t, root, "//article/text()"); len(got) != 0 {
		t.Fatalf("expected empty, got %v", got)
	}
}

func TestEvalNestedSameTag(t *testing.T) {
	root := doc(t, `<div><div><div>deep</div></div></div>`)
	got := evalTexts(t, root, "//div/div/div/text()")
	if strings.Join(got, ",") != "deep" {
		t.Fatalf("nested = %v", got)
	}
	// Descendant axis must find the deep div from any level.
	got = evalTexts(t, root, "//div//div/text()")
	if len(got) != 1 {
		t.Fatalf("descendant nested = %v", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not an xpath")
}
