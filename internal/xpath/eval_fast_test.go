package xpath

import (
	"testing"

	"autowrap/internal/dom"
	"autowrap/internal/htmlparse"
)

// evalCases pairs documents with expressions chosen to hit every branch of
// the slice-based fast path: pure child chains, descendant steps from one
// and many origins, nested matches (forcing the evalSlow fallback), empty
// results, predicates, and text() collection.
var evalCases = []struct {
	name string
	html string
	expr string
}{
	{"child chain", "<html><body><table><tr><td>a</td><td>b</td></tr></table></body></html>",
		"/html/body/table/tr/td/text()"},
	{"descendant then child", "<div><table><tr><td>x</td></tr></table><table><tr><td>y</td></tr></table></div>",
		"//table/tr/td/text()"},
	{"predicate attr", "<div class='a'><p>one</p></div><div class='b'><p>two</p></div>",
		"//div[@class='b']/p/text()"},
	{"child index", "<table><tr><td>a</td><td>b</td><td>c</td></tr></table>",
		"//tr/td[2]/text()"},
	{"nested matches", "<div class='x'><p>outer</p><div class='x'><p>inner</p></div></div>",
		"//div[@class='x']/p/text()"},
	{"nested then descendant", "<div><span>a</span><div><span>b</span></div></div>",
		"//div//span/text()"},
	{"elements not text", "<ul><li>1</li><li>2</li></ul>", "//li"},
	{"nested elements", "<div><div><div>deep</div></div></div>", "//div"},
	{"no match", "<p>plain</p>", "//table/tr/td/text()"},
	{"all text", "<p>a<b>b</b>c</p>", "//text()"},
	{"star tag", "<div><p>x</p><span>y</span></div>", "/div/*/text()"},
}

// TestEvalMatchesEvalSlow pins the fast path to the map-based reference
// implementation on every case: same nodes, same (document) order.
func TestEvalMatchesEvalSlow(t *testing.T) {
	for _, tc := range evalCases {
		t.Run(tc.name, func(t *testing.T) {
			root := htmlparse.Parse(tc.html)
			e := MustParse(tc.expr)
			got := e.Eval(root)
			want := e.evalSlow(root)
			if len(got) != len(want) {
				t.Fatalf("Eval returned %d nodes, evalSlow %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("node %d differs: %q vs %q", i, got[i].Data, want[i].Data)
				}
			}
		})
	}
}

// TestEvalReuseIsStable: results from consecutive evaluations must not
// share backing storage with the pooled scratch (the second Eval would
// otherwise overwrite the first result).
func TestEvalReuseIsStable(t *testing.T) {
	root := htmlparse.Parse("<table><tr><td>a</td><td>b</td></tr></table>")
	e := MustParse("//td/text()")
	first := e.Eval(root)
	want := make([]*dom.Node, len(first))
	copy(want, first)
	for i := 0; i < 5; i++ {
		e.Eval(htmlparse.Parse("<div><span>other</span><span>doc</span></div>"))
	}
	for i := range first {
		if first[i] != want[i] {
			t.Fatalf("result %d mutated by later evaluations", i)
		}
	}
}
