package xpath

import (
	"strings"
	"testing"
)

// TestParseAdversarialInputs feeds Parse a table of malformed rule strings:
// every one must return an error — never panic, never silently succeed.
// Wrapper rules are loaded from a persisted store, so the parser is an
// input-validation boundary, not just a convenience for literals.
func TestParseAdversarialInputs(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"/",
		"//",
		"///",
		"/ /a",
		"a",
		"td/text()",
		"*",
		"[1]",
		"]",
		"/]",
		"/a[",
		"/a[]",
		"/a[1",
		"/a[0]",
		"/a[-1]",
		"/a[1.5]",
		"/a[99999999999999999999999999]",
		"/a[4294967297]", // wraps to 1 if the guard multiplies before checking (32-bit int)
		"/a[1073741825]", // one past the cap
		"/a[@]",
		"/a[@=]",
		"/a[@='v']",
		"/a[@b]",
		"/a[@b=]",
		"/a[@b=v]",
		"/a[@b='v]",
		"/a[@b=\"v]",
		"/a[@b='v'",
		"/a[@b='v\"]",
		"/a[@b='']extra",
		"/a]b",
		"/a/b]",
		"/a//",
		"/a/",
		"//a//",
		"/a/text()/b",
		"/text()/a",
		"//text()[1]",
		"/a/text()()",
		"/a/text()[1]",
		"/日本語",
		"/a[@日='x']",
		"/\x00",
		"/a\x00b",
		"/a[@b='\x00']extra",
		"/<b>",
		"//*[",
		"//*]",
		strings.Repeat("/a[", 10000),
		"/" + strings.Repeat("a/", 50000),
		"/a[@b='" + strings.Repeat("x", 1<<16), // unterminated huge value
	}
	for _, src := range bad {
		name := src
		if len(name) > 40 {
			name = name[:40] + "..."
		}
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			e, err := Parse(src)
			if err == nil {
				t.Fatalf("Parse(%q) = %v, want error", src, e)
			}
			if !strings.Contains(err.Error(), "xpath:") {
				t.Fatalf("Parse(%q) error lacks package prefix: %v", src, err)
			}
		})
	}
}

// TestParseAdversarialButValid pins inputs that look hostile yet are part
// of the accepted grammar, so hardening does not silently shrink it.
func TestParseAdversarialButValid(t *testing.T) {
	good := []string{
		"//text()",
		"/a//text()",
		"//*/text()",
		"/a",
		"//a",
		"/a/b/c",
		"/a[1]",
		"/a[1][2]",
		"/a[@b='v']",
		"/a[@b=\"v\"]",
		"/a[@b='']",
		"/a[@b=' spaced value ']",
		"/a[@b='\"']",
		"/a[@b='<junk>&amp;']",
		"/a[@b='v'][3][@c='w']",
		"/a[1073741824]", // exactly the cap
		"  //a/text()  ", // surrounding space is trimmed
		"/a-b_c:d[@data-x='1']",
	}
	for _, src := range good {
		t.Run(src, func(t *testing.T) {
			e, err := Parse(src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", src, err)
			}
			// Reparsing the rendered form must succeed and round-trip: the
			// store persists rules as strings.
			e2, err := Parse(e.String())
			if err != nil {
				t.Fatalf("reparse of %q (from %q): %v", e.String(), src, err)
			}
			if e2.String() != e.String() {
				t.Fatalf("render not stable: %q -> %q", e.String(), e2.String())
			}
		})
	}
}

// FuzzParse hammers the parser: any input may be rejected but must never
// panic, and accepted inputs must render to a string that reparses to the
// same rendering.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"//div[@class='dealerlinks']/table[1]/tr/td[2]/text()",
		"/a[@b='v']", "//text()", "/a[12]", "///", "/a[@b='v", "", "/*",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		rendered := e.String()
		e2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendered form %q does not reparse: %v", src, rendered, err)
		}
		if e2.String() != rendered {
			t.Fatalf("render unstable: %q -> %q -> %q", src, rendered, e2.String())
		}
	})
}
