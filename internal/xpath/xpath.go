// Package xpath implements the xpath fragment used by the XPATH wrapper
// language of Dalvi et al. [6] as summarized in the paper (Sec. 5):
// child edges (/), descendant edges (//), attribute filters
// ([@class='dealerlinks']) and child-number filters (td[2]), with an
// optional trailing text() selector.
package xpath

import (
	"fmt"
	"strings"
	"sync"

	"autowrap/internal/dom"
)

// Axis is the relationship between consecutive steps.
type Axis uint8

const (
	// Child is the '/' edge.
	Child Axis = iota
	// Descendant is the '//' edge.
	Descendant
)

// Pred is one step predicate: either an attribute equality or a child index.
type Pred struct {
	// Attr/Value form [@attr='value'] when Attr != "".
	Attr  string
	Value string
	// Index forms [k] when Index > 0 (1-based same-tag child number).
	Index int
}

// Step selects elements by tag ("*" matches any) refined by predicates.
type Step struct {
	Axis  Axis
	Tag   string
	Preds []Pred
}

// Expr is a parsed xpath expression.
type Expr struct {
	Steps []Step
	// Text selects the text-node children of the final element set, as in
	// a trailing "/text()".
	Text bool
}

// Parse parses an expression such as
// //div[@class='dealerlinks']/table[1]/tr/td[2]/text() .
func Parse(s string) (*Expr, error) {
	p := &parser{src: strings.TrimSpace(s)}
	e, err := p.expr()
	if err != nil {
		return nil, fmt.Errorf("xpath: %w (at offset %d of %q)", err, p.pos, p.src)
	}
	return e, nil
}

// MustParse panics on parse errors; for literals in tests and examples.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) expr() (*Expr, error) {
	e := &Expr{}
	if len(p.src) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	for p.pos < len(p.src) {
		axis := Child
		if !p.eat("/") {
			return nil, fmt.Errorf("expected '/'")
		}
		if p.eat("/") {
			axis = Descendant
		}
		if p.eatWord("text()") {
			e.Text = true
			if p.pos != len(p.src) {
				return nil, fmt.Errorf("text() must be the final step")
			}
			if axis == Descendant && len(e.Steps) == 0 {
				// "//text()" alone: all text nodes. Represent as a single
				// descendant * step with Text.
				e.Steps = append(e.Steps, Step{Axis: Descendant, Tag: "*"})
				e.Text = true
				return e, nil
			}
			if axis == Descendant {
				// ".../..//text()" - text under any descendant.
				e.Steps = append(e.Steps, Step{Axis: Descendant, Tag: "*"})
			}
			return e, nil
		}
		st := Step{Axis: axis}
		tag := p.name()
		if tag == "" {
			if p.eat("*") {
				tag = "*"
			} else {
				return nil, fmt.Errorf("expected tag name or '*'")
			}
		}
		st.Tag = strings.ToLower(tag)
		for p.eat("[") {
			pred, err := p.pred()
			if err != nil {
				return nil, err
			}
			if !p.eat("]") {
				return nil, fmt.Errorf("expected ']'")
			}
			st.Preds = append(st.Preds, pred)
		}
		e.Steps = append(e.Steps, st)
	}
	if len(e.Steps) == 0 {
		return nil, fmt.Errorf("no steps")
	}
	return e, nil
}

func (p *parser) pred() (Pred, error) {
	if p.eat("@") {
		attr := p.name()
		if attr == "" {
			return Pred{}, fmt.Errorf("expected attribute name after '@'")
		}
		if !p.eat("=") {
			return Pred{}, fmt.Errorf("expected '=' in attribute predicate")
		}
		quote := byte(0)
		if p.pos < len(p.src) && (p.src[p.pos] == '\'' || p.src[p.pos] == '"') {
			quote = p.src[p.pos]
			p.pos++
		} else {
			return Pred{}, fmt.Errorf("expected quoted attribute value")
		}
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return Pred{}, fmt.Errorf("unterminated attribute value")
		}
		val := p.src[start:p.pos]
		p.pos++
		return Pred{Attr: strings.ToLower(attr), Value: val}, nil
	}
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return Pred{}, fmt.Errorf("expected '@attr=...' or child index")
	}
	// maxChildIndex bounds [k] filters; beyond it the digits would overflow
	// int on 32-bit hosts (and no real page has a billion same-tag
	// siblings). Rules can arrive from a persisted store, so reject rather
	// than silently wrap — checking before the multiply, which could
	// itself overflow on 32-bit ints.
	const maxChildIndex = 1 << 30
	idx := 0
	for _, c := range p.src[start:p.pos] {
		if idx > maxChildIndex/10 {
			return Pred{}, fmt.Errorf("child index %q too large", p.src[start:p.pos])
		}
		idx = idx*10 + int(c-'0')
		if idx > maxChildIndex {
			return Pred{}, fmt.Errorf("child index %q too large", p.src[start:p.pos])
		}
	}
	if idx == 0 {
		return Pred{}, fmt.Errorf("child index must be >= 1")
	}
	return Pred{Index: idx}, nil
}

func (p *parser) eat(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) eatWord(s string) bool { return p.eat(s) }

func (p *parser) name() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == ':' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

// String renders the expression back to xpath syntax.
func (e *Expr) String() string {
	var sb strings.Builder
	for _, st := range e.Steps {
		if st.Axis == Descendant {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		sb.WriteString(st.Tag)
		for _, pr := range st.Preds {
			if pr.Attr != "" {
				fmt.Fprintf(&sb, "[@%s='%s']", pr.Attr, pr.Value)
			} else {
				fmt.Fprintf(&sb, "[%d]", pr.Index)
			}
		}
	}
	if e.Text {
		sb.WriteString("/text()")
	}
	return sb.String()
}

// evalScratch holds the reusable node sets of the slice-based Eval fast
// path. Pooled because a Compiled expression is evaluated concurrently from
// many serving goroutines.
type evalScratch struct{ cur, next []*dom.Node }

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

// Eval returns the nodes selected by e from the given document root, in
// document (preorder) order without duplicates. When e.Text is set the
// result contains text nodes, otherwise elements.
//
// The implementation walks slices instead of per-step maps: as long as the
// working set stays free of ancestor/descendant pairs, child and descendant
// expansion of a document-ordered set yields a document-ordered, duplicate-
// free set, so no dedup map or final reordering walk is needed. The moment
// a descendant step produces nested matches (one selected node inside
// another) the remaining steps fall back to evalSlow, the original
// map-based implementation, which handles arbitrary overlap.
func (e *Expr) Eval(root *dom.Node) []*dom.Node {
	s := evalPool.Get().(*evalScratch)
	cur := append(s.cur[:0], root)
	next := s.next[:0]
	nested := false
	fallback := false
	for si := range e.Steps {
		if nested {
			// A nested working set breaks the order/uniqueness invariants
			// of slice expansion; redo the whole walk the slow way.
			fallback = true
			break
		}
		st := e.Steps[si]
		next = next[:0]
		switch st.Axis {
		case Child:
			for _, n := range cur {
				for _, ch := range n.Children {
					if matchStep(ch, st) {
						next = append(next, ch)
					}
				}
			}
		case Descendant:
			for _, n := range cur {
				n.Walk(func(d *dom.Node) bool {
					if d != n && matchStep(d, st) {
						next = append(next, d)
					}
					return true
				})
			}
			// Nesting can only appear on a descendant step. Detect it
			// conservatively (only when a later step or text() will consume
			// the set): a match with a strict ancestor that also matches
			// the step may contain another selected node.
			if si+1 < len(e.Steps) || e.Text {
			detect:
				for _, m := range next {
					for p := m.Parent; p != nil; p = p.Parent {
						if matchStep(p, st) {
							nested = true
							break detect
						}
					}
				}
			}
		}
		cur, next = next, cur
		if len(cur) == 0 {
			break
		}
	}
	var out []*dom.Node
	switch {
	case fallback || (nested && e.Text):
		out = e.evalSlow(root)
	case e.Text:
		count := 0
		for _, n := range cur {
			for _, ch := range n.Children {
				if ch.Type == dom.TextNode {
					count++
				}
			}
		}
		if count > 0 {
			out = make([]*dom.Node, 0, count)
			for _, n := range cur {
				for _, ch := range n.Children {
					if ch.Type == dom.TextNode {
						out = append(out, ch)
					}
				}
			}
		}
	case len(cur) > 0:
		out = make([]*dom.Node, len(cur))
		copy(out, cur)
	}
	s.cur, s.next = cur[:0], next[:0]
	evalPool.Put(s)
	return out
}

// evalSlow is the original map-based evaluation: correct for any step
// sequence, including working sets where selected nodes nest inside each
// other, at the cost of per-step map allocation and a final ordering walk.
func (e *Expr) evalSlow(root *dom.Node) []*dom.Node {
	cur := map[*dom.Node]bool{root: true}
	for _, st := range e.Steps {
		next := make(map[*dom.Node]bool)
		for n := range cur {
			switch st.Axis {
			case Child:
				for _, ch := range n.Children {
					if matchStep(ch, st) {
						next[ch] = true
					}
				}
			case Descendant:
				n.Walk(func(d *dom.Node) bool {
					if d != n && matchStep(d, st) {
						next[d] = true
					}
					return true
				})
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	var out []*dom.Node
	if e.Text {
		seen := make(map[*dom.Node]bool)
		for n := range cur {
			for _, ch := range n.Children {
				if ch.Type == dom.TextNode && !seen[ch] {
					seen[ch] = true
				}
			}
		}
		root.Walk(func(d *dom.Node) bool {
			if seen[d] {
				out = append(out, d)
			}
			return true
		})
		return out
	}
	root.Walk(func(d *dom.Node) bool {
		if cur[d] {
			out = append(out, d)
		}
		return true
	})
	return out
}

func matchStep(n *dom.Node, st Step) bool {
	if n.Type != dom.ElementNode {
		return false
	}
	if st.Tag != "*" && n.Tag != st.Tag {
		return false
	}
	for _, pr := range st.Preds {
		if pr.Attr != "" {
			v, ok := n.Attr(pr.Attr)
			if !ok || v != pr.Value {
				return false
			}
		} else if n.ChildNumber() != pr.Index {
			return false
		}
	}
	return true
}
