// Package rank implements the paper's ranking model (Sec. 6): a wrapper w
// with output X scores P(L | X) · P(X), where P(L | X) models the noisy
// annotation process (Eq. 4) and P(X) models the goodness of X as a list
// under the web publication model (schema-size and alignment features with
// KDE-learned distributions).
package rank

import (
	"fmt"
	"math"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
)

// paramEps clamps the annotator parameters away from {0, 1} so the log
// odds stay finite.
const paramEps = 1e-4

// AnnotationModel holds the annotator parameters of Sec. 6: each node of
// the correct list X is labeled with probability r; each other node is
// labeled with probability 1−p.
type AnnotationModel struct {
	P float64
	R float64
}

// NewAnnotationModel clamps the parameters to (0, 1).
func NewAnnotationModel(p, r float64) AnnotationModel {
	return AnnotationModel{P: clamp(p), R: clamp(r)}
}

func clamp(v float64) float64 {
	if v < paramEps {
		return paramEps
	}
	if v > 1-paramEps {
		return 1 - paramEps
	}
	return v
}

// LogLikelihood computes ln P(L | X) up to the wrapper-independent constant,
// exactly Eq. (4):
//
//	P(L|X) ∝ (r/(1−p))^|L∩X| · ((1−r)/p)^|X\L|
func (m AnnotationModel) LogLikelihood(labels, x *bitset.Set) float64 {
	inBoth := bitset.AndCount(labels, x)
	onlyX := x.Count() - inBoth
	return float64(inBoth)*math.Log(m.R/(1-m.P)) +
		float64(onlyX)*math.Log((1-m.R)/m.P)
}

// FullLogLikelihood computes the unnormalized complete form
// r^|X1|·(1−r)^|X2|·(1−p)^|A1|·p^|A2| (used by tests to verify that
// Eq. (4)'s proportional form preserves score differences).
func (m AnnotationModel) FullLogLikelihood(c *corpus.Corpus, labels, x *bitset.Set) float64 {
	x1 := bitset.AndCount(labels, x)    // X ∩ L
	x2 := x.Count() - x1                // X \ L
	a1 := labels.Count() - x1           // A ∩ L
	a2 := c.NumTexts() - x.Count() - a1 // A \ L
	return float64(x1)*math.Log(m.R) + float64(x2)*math.Log(1-m.R) +
		float64(a1)*math.Log(1-m.P) + float64(a2)*math.Log(m.P)
}

// NoListLogPrior is the ln P(X) assigned to candidates that do not form a
// list at all (fewer than two record segments): roughly the mass of an
// unseen feature value under both KDEs.
var NoListLogPrior = 2 * math.Log(stats.DefaultFloor)

// PublicationModel scores ln P(X) via the two list features of Sec. 6.1.
type PublicationModel struct {
	Schema *stats.KDE
	Align  *stats.KDE
	Seg    segment.Options
}

// LogPrior computes ln P(X) = ln P(schema(X)) + ln P(align(X)).
func (m *PublicationModel) LogPrior(c *corpus.Corpus, x *bitset.Set) float64 {
	feats, ok := segment.Compute(c, x, m.Seg)
	if !ok {
		return NoListLogPrior
	}
	return m.Schema.LogProb(feats.SchemaSize) + m.Align.LogProb(feats.Alignment)
}

// SiteSample pairs a site's corpus with its gold list; the publication
// model's feature distributions are learned from such samples (paper: "we
// take a small sample of websites, look at the list of segments on each
// website and learn the distribution").
type SiteSample struct {
	Corpus *corpus.Corpus
	Gold   *bitset.Set
}

// LearnPublicationModel fits the schema-size and alignment KDEs from gold
// lists on sample sites.
func LearnPublicationModel(samples []SiteSample, seg segment.Options, kde stats.KDEOptions) (*PublicationModel, error) {
	var schemaVals, alignVals []int
	for _, s := range samples {
		feats, ok := segment.Compute(s.Corpus, s.Gold, seg)
		if !ok {
			continue
		}
		schemaVals = append(schemaVals, feats.SchemaSize)
		alignVals = append(alignVals, feats.Alignment)
	}
	if len(schemaVals) == 0 {
		return nil, fmt.Errorf("rank: no sample site produced a gold list with ≥2 segments")
	}
	schema, err := stats.NewKDE(schemaVals, kde)
	if err != nil {
		return nil, fmt.Errorf("rank: schema KDE: %w", err)
	}
	align, err := stats.NewKDE(alignVals, kde)
	if err != nil {
		return nil, fmt.Errorf("rank: alignment KDE: %w", err)
	}
	return &PublicationModel{Schema: schema, Align: align, Seg: seg}, nil
}

// Variant selects which score components participate (the Sec. 7.3
// ranking-component ablation).
type Variant int

const (
	// NTW uses the full score P(L|X)·P(X).
	NTW Variant = iota
	// NTWL uses only the annotation term P(L|X).
	NTWL
	// NTWX uses only the publication term P(X).
	NTWX
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	switch v {
	case NTWL:
		return "NTW-L"
	case NTWX:
		return "NTW-X"
	default:
		return "NTW"
	}
}

// Scorer combines the two models.
type Scorer struct {
	Ann AnnotationModel
	Pub *PublicationModel
}

// Score breaks down a candidate's score. Ranking compares Total.
type Score struct {
	LogL  float64 // ln P(L|X) (up to constant)
	LogX  float64 // ln P(X)
	Total float64
}

// Score evaluates a candidate output x under the given variant.
func (s *Scorer) Score(c *corpus.Corpus, labels, x *bitset.Set, v Variant) Score {
	var sc Score
	if x.Empty() {
		// An empty extraction explains no labels and is never a list.
		sc.LogL = math.Inf(-1)
		sc.LogX = NoListLogPrior
	} else {
		sc.LogL = s.Ann.LogLikelihood(labels, x)
		sc.LogX = s.Pub.LogPrior(c, x)
	}
	switch v {
	case NTWL:
		sc.Total = sc.LogL
	case NTWX:
		sc.Total = sc.LogX
	default:
		sc.Total = sc.LogL + sc.LogX
	}
	return sc
}
