package rank

import (
	"math"
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
)

func recordSite(pages, recs int) *corpus.Corpus {
	var htmls []string
	for p := 0; p < pages; p++ {
		var sb strings.Builder
		sb.WriteString("<html><body><h1>header</h1><div class='list'>")
		for i := 0; i < recs; i++ {
			sb.WriteString("<div class='r'><b>name</b><span>addr</span><span>city</span><span>zip</span></div>")
		}
		sb.WriteString("</div><p>footer</p></body></html>")
		htmls = append(htmls, sb.String())
	}
	return corpus.ParseHTML(htmls)
}

func setOf(c *corpus.Corpus, content string) *bitset.Set {
	return c.MatchingText(func(s string) bool { return s == content })
}

func TestClampParams(t *testing.T) {
	m := NewAnnotationModel(0, 1)
	if m.P <= 0 || m.R >= 1 {
		t.Fatalf("params not clamped: %+v", m)
	}
	if v := m.LogLikelihood(bitset.New(4), bitset.FromIndices(4, []int{0})); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("likelihood not finite: %v", v)
	}
}

// TestEquation4MatchesFullForm: Eq. (4)'s proportional form must preserve
// score differences of the complete likelihood (the dropped factor is
// wrapper-independent).
func TestEquation4MatchesFullForm(t *testing.T) {
	c := recordSite(2, 3)
	m := NewAnnotationModel(0.9, 0.3)
	labels := setOf(c, "name")
	candidates := []*bitset.Set{
		setOf(c, "name"),
		setOf(c, "addr"),
		bitset.Or(setOf(c, "name"), setOf(c, "addr")),
		c.FullSet(),
		c.SetOf(0),
	}
	base := m.LogLikelihood(labels, candidates[0]) - m.FullLogLikelihood(c, labels, candidates[0])
	for _, x := range candidates[1:] {
		diff := m.LogLikelihood(labels, x) - m.FullLogLikelihood(c, labels, x)
		if math.Abs(diff-base) > 1e-9 {
			t.Fatalf("proportionality constant varies: %v vs %v", diff, base)
		}
	}
}

// TestLikelihoodOrdering: with a high-precision low-recall annotator, a
// wrapper covering the labels with moderate extra output must beat both the
// overfit tiny wrapper and the over-general full wrapper.
func TestLikelihoodOrdering(t *testing.T) {
	c := recordSite(4, 5) // 20 records
	m := NewAnnotationModel(0.95, 0.25)
	// Simulate labels: 5 of the 20 names.
	names := setOf(c, "name")
	labels := bitset.New(c.NumTexts())
	count := 0
	names.ForEach(func(ord int) {
		if count < 5 {
			labels.Add(ord)
			count++
		}
	})
	full := m.LogLikelihood(labels, c.FullSet())
	correct := m.LogLikelihood(labels, names)
	tiny := m.LogLikelihood(labels, labels.Clone()) // exactly the labels
	if correct <= full {
		t.Fatalf("correct list (%v) must beat the full universe (%v)", correct, full)
	}
	// The tiny wrapper explains the labels perfectly; Eq. (4) favors it on
	// the label term alone (that is exactly why P(X) exists).
	if tiny < correct {
		t.Fatalf("expected the overfit wrapper to win the label term: tiny=%v correct=%v", tiny, correct)
	}
}

func learnPub(t *testing.T, c *corpus.Corpus, gold *bitset.Set) *PublicationModel {
	t.Helper()
	pub, err := LearnPublicationModel(
		[]SiteSample{{Corpus: c, Gold: gold}}, segment.Options{}, stats.KDEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

// TestPublicationPriorFavorsGoldList: P(X) must prefer the real record list
// over the all-text list and over a one-node-per-page list.
func TestPublicationPriorFavorsGoldList(t *testing.T) {
	c := recordSite(3, 6)
	gold := setOf(c, "name")
	pub := learnPub(t, c, gold)

	goldScore := pub.LogPrior(c, gold)
	allScore := pub.LogPrior(c, c.FullSet())
	headers := setOf(c, "header") // 1 per page -> no list
	headerScore := pub.LogPrior(c, headers)

	if goldScore <= allScore {
		t.Fatalf("gold list (%v) must beat all-text (%v)", goldScore, allScore)
	}
	if goldScore <= headerScore {
		t.Fatalf("gold list (%v) must beat the no-list penalty (%v)", goldScore, headerScore)
	}
	if headerScore != NoListLogPrior {
		t.Fatalf("single-node-per-page list should get the no-list prior, got %v", headerScore)
	}
}

func TestLearnPublicationModelNoSamples(t *testing.T) {
	if _, err := LearnPublicationModel(nil, segment.Options{}, stats.KDEOptions{}); err == nil {
		t.Fatal("expected error with no samples")
	}
	// Samples whose gold does not form a list are skipped; all-skipped is
	// an error.
	c := recordSite(1, 1)
	_, err := LearnPublicationModel(
		[]SiteSample{{Corpus: c, Gold: setOf(c, "name")}}, segment.Options{}, stats.KDEOptions{})
	if err == nil {
		t.Fatal("expected error when no sample segments")
	}
}

func TestScorerVariants(t *testing.T) {
	c := recordSite(3, 5)
	gold := setOf(c, "name")
	scorer := &Scorer{Ann: NewAnnotationModel(0.95, 0.3), Pub: learnPub(t, c, gold)}
	labels := c.SetOf(gold.Indices()[0], gold.Indices()[3])

	full := scorer.Score(c, labels, gold, NTW)
	lOnly := scorer.Score(c, labels, gold, NTWL)
	xOnly := scorer.Score(c, labels, gold, NTWX)
	if math.Abs(full.Total-(full.LogL+full.LogX)) > 1e-12 {
		t.Fatal("NTW total must be the sum of components")
	}
	if lOnly.Total != full.LogL || xOnly.Total != full.LogX {
		t.Fatal("variant totals must equal their single components")
	}
}

func TestScoreEmptyExtraction(t *testing.T) {
	c := recordSite(2, 3)
	gold := setOf(c, "name")
	scorer := &Scorer{Ann: NewAnnotationModel(0.95, 0.3), Pub: learnPub(t, c, gold)}
	sc := scorer.Score(c, gold, c.EmptySet(), NTW)
	if !math.IsInf(sc.Total, -1) {
		t.Fatalf("empty extraction should score -Inf, got %v", sc.Total)
	}
}

func TestVariantString(t *testing.T) {
	if NTW.String() != "NTW" || NTWL.String() != "NTW-L" || NTWX.String() != "NTW-X" {
		t.Fatal("variant names")
	}
}

// TestEndToEndRankingPicksGold ties both terms together: among candidate
// outputs, the full score must rank the gold list first even though the
// label term alone prefers the overfit candidate.
func TestEndToEndRankingPicksGold(t *testing.T) {
	c := recordSite(4, 5)
	gold := setOf(c, "name")
	scorer := &Scorer{Ann: NewAnnotationModel(0.95, 0.25), Pub: learnPub(t, c, gold)}

	labels := bitset.New(c.NumTexts())
	n := 0
	gold.ForEach(func(ord int) {
		if n%4 == 0 { // 25% recall
			labels.Add(ord)
		}
		n++
	})
	candidates := map[string]*bitset.Set{
		"gold":    gold,
		"overfit": labels.Clone(),
		"all":     c.FullSet(),
		"addrs":   setOf(c, "addr"),
	}
	best, bestScore := "", math.Inf(-1)
	for name, x := range candidates {
		if s := scorer.Score(c, labels, x, NTW).Total; s > bestScore {
			best, bestScore = name, s
		}
	}
	if best != "gold" {
		t.Fatalf("full score picked %q, want gold", best)
	}
}
