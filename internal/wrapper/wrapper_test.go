package wrapper

import (
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
)

// buildSpace populates a small feature space over a 6-node corpus:
// nodes get color/shape features like a toy classification table.
func buildSpace(t *testing.T) (*corpus.Corpus, *FeatureSpace) {
	t.Helper()
	c := corpus.ParseHTML([]string{
		`<div><i>a</i><i>b</i><i>c</i><i>d</i><i>e</i><i>f</i></div>`,
	})
	if c.NumTexts() != 6 {
		t.Fatalf("universe = %d", c.NumTexts())
	}
	fs := NewFeatureSpace("toy", c, nil)
	colors := []string{"red", "red", "red", "blue", "blue", "green"}
	shapes := []string{"sq", "ci", "sq", "ci", "sq", "sq"}
	for ord := 0; ord < 6; ord++ {
		fs.AddFeature(ord, Attr{Kind: "color"}, colors[ord])
		if ord != 5 { // node f lacks the shape attribute entirely
			fs.AddFeature(ord, Attr{Kind: "shape"}, shapes[ord])
		}
	}
	fs.Seal()
	return c, fs
}

func TestInduceIntersectsFeatures(t *testing.T) {
	c, fs := buildSpace(t)
	w, err := fs.Induce(c.SetOf(0, 2)) // red+sq, red+sq
	if err != nil {
		t.Fatal(err)
	}
	got := w.Extract().Indices()
	// red∧sq: nodes 0, 2 only.
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("extract = %v", got)
	}
}

func TestInducePartialIntersection(t *testing.T) {
	c, fs := buildSpace(t)
	w, err := fs.Induce(c.SetOf(0, 1)) // red+sq, red+ci -> {color=red}
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Extract().Indices(); len(got) != 3 {
		t.Fatalf("red nodes = %v", got)
	}
}

func TestInduceEmptyIntersectionMeansEverything(t *testing.T) {
	c, fs := buildSpace(t)
	w, err := fs.Induce(c.SetOf(0, 3)) // red+sq vs blue+ci -> no shared features
	if err != nil {
		t.Fatal(err)
	}
	if w.Extract().Count() != 6 {
		t.Fatalf("expected the full universe, got %d", w.Extract().Count())
	}
	if len(w.(*FeatureWrapper).Features()) != 0 {
		t.Fatal("feature set should be empty")
	}
}

func TestInduceEmptyLabelsError(t *testing.T) {
	c, fs := buildSpace(t)
	if _, err := fs.Induce(c.EmptySet()); err == nil {
		t.Fatal("expected error")
	}
}

func TestAttrsListsLabelAttributes(t *testing.T) {
	c, fs := buildSpace(t)
	attrs := fs.Attrs(c.SetOf(5)) // node f has only color
	if len(attrs) != 1 || attrs[0].Kind != "color" {
		t.Fatalf("attrs = %v", attrs)
	}
	attrs = fs.Attrs(c.SetOf(0, 5))
	if len(attrs) != 2 {
		t.Fatalf("attrs = %v", attrs)
	}
}

func TestSubdivideGroupsByValue(t *testing.T) {
	c, fs := buildSpace(t)
	all := c.FullSet()
	groups := fs.Subdivide(all, Attr{Kind: "color"})
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[g.Count()]++
	}
	// red: 3, blue: 2, green: 1.
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("group sizes = %v", sizes)
	}
}

func TestSubdivideOmitsNodesWithoutAttr(t *testing.T) {
	c, fs := buildSpace(t)
	groups := fs.Subdivide(c.FullSet(), Attr{Kind: "shape"})
	total := 0
	for _, g := range groups {
		total += g.Count()
		if g.Has(5) {
			t.Fatal("node without the attribute must be omitted")
		}
	}
	if total != 5 {
		t.Fatalf("covered %d nodes, want 5", total)
	}
}

func TestSubdivideUnknownAttr(t *testing.T) {
	c, fs := buildSpace(t)
	if groups := fs.Subdivide(c.FullSet(), Attr{Kind: "nope"}); groups != nil {
		t.Fatal("unknown attribute should subdivide to nothing")
	}
}

func TestAttrValue(t *testing.T) {
	c, fs := buildSpace(t)
	_ = c
	if v, ok := fs.AttrValue(0, Attr{Kind: "color"}); !ok || v != "red" {
		t.Fatalf("AttrValue = %q, %v", v, ok)
	}
	if _, ok := fs.AttrValue(5, Attr{Kind: "shape"}); ok {
		t.Fatal("node 5 has no shape")
	}
}

func TestDefaultRuleRendering(t *testing.T) {
	c, fs := buildSpace(t)
	w, _ := fs.Induce(c.SetOf(0, 2))
	rule := w.Rule()
	if !strings.Contains(rule, "color") || !strings.Contains(rule, "red") {
		t.Fatalf("rule = %q", rule)
	}
}

func TestInduceCallCounter(t *testing.T) {
	c, fs := buildSpace(t)
	for i := 0; i < 3; i++ {
		if _, err := fs.Induce(c.SetOf(0)); err != nil {
			t.Fatal(err)
		}
	}
	if fs.InduceCalls() != 3 {
		t.Fatalf("calls = %d", fs.InduceCalls())
	}
	fs.ResetInduceCalls()
	if fs.InduceCalls() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClosureHelper(t *testing.T) {
	c, fs := buildSpace(t)
	labels := c.SetOf(0, 1, 2, 3)
	closed, err := Closure(fs, c.SetOf(0, 1), labels)
	if err != nil {
		t.Fatal(err)
	}
	// φ({0,1}) = red nodes {0,1,2}; ∩ labels = {0,1,2}.
	want := c.SetOf(0, 1, 2)
	if !closed.Equal(want) {
		t.Fatalf("closure = %v, want %v", closed.Indices(), want.Indices())
	}
}

func TestFeatureSpaceWellBehaved(t *testing.T) {
	c, fs := buildSpace(t)
	if err := CheckWellBehaved(fs, c.FullSet()); err != nil {
		t.Fatal(err)
	}
}

// brokenInductor violates monotonicity: more labels shrink the output.
type brokenInductor struct {
	c *corpus.Corpus
}

func (b *brokenInductor) Name() string           { return "broken" }
func (b *brokenInductor) Corpus() *corpus.Corpus { return b.c }
func (b *brokenInductor) Induce(labels *bitset.Set) (Wrapper, error) {
	out := b.c.FullSet()
	if labels.Count() > 1 {
		out = labels.Clone() // shrinking output on label growth
	}
	return &staticWrapper{out: out}, nil
}

type staticWrapper struct{ out *bitset.Set }

func (w *staticWrapper) Extract() *bitset.Set { return w.out }
func (w *staticWrapper) Rule() string         { return "static" }

func TestCheckWellBehavedDetectsViolation(t *testing.T) {
	c, _ := buildSpace(t)
	b := &brokenInductor{c: c}
	if err := CheckWellBehaved(b, c.SetOf(0, 1, 2)); err == nil {
		t.Fatal("expected a well-behavedness violation")
	}
}

func TestAttrString(t *testing.T) {
	if (Attr{Kind: "tag", Pos: 2}).String() != "2:tag" {
		t.Fatal("positioned attr")
	}
	if (Attr{Kind: "row"}).String() != "row" {
		t.Fatal("bare attr")
	}
}
