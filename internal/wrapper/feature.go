package wrapper

import (
	"fmt"
	"sort"
	"strings"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
)

// FeatureSpace is the shared implementation of feature-based inductors
// (paper Sec. 4.2): every text node carries a set of (attribute, value)
// features; induction intersects the label features and extraction takes
// the conjunction of the per-feature bitsets. TABLE, LR and XPATH are all
// thin constructors over this type.
type FeatureSpace struct {
	name string
	c    *corpus.Corpus

	nodeFeats [][]int32 // ordinal -> sorted feature ids
	featBits  []*bitset.Set
	featAttr  []int32 // feature id -> attr id
	featVal   []string
	attrs     []Attr
	attrIDs   map[Attr]int32
	byKey     map[string]int32

	// renderRule converts an intersected feature set into the wrapper
	// language's native syntax.
	renderRule func(fs *FeatureSpace, featIDs []int32) string

	induceCalls int64
}

// NewFeatureSpace creates an empty feature space over the corpus's text
// universe. Constructors populate it via AddFeature and then call Seal.
func NewFeatureSpace(name string, c *corpus.Corpus,
	render func(fs *FeatureSpace, featIDs []int32) string) *FeatureSpace {
	fs := &FeatureSpace{
		name:       name,
		c:          c,
		nodeFeats:  make([][]int32, c.NumTexts()),
		attrIDs:    make(map[Attr]int32),
		byKey:      make(map[string]int32),
		renderRule: render,
	}
	return fs
}

// AddFeature attaches feature (a, value) to the text node with the given
// ordinal. Adding the same feature twice to a node is a no-op.
func (fs *FeatureSpace) AddFeature(ord int, a Attr, value string) {
	aid, ok := fs.attrIDs[a]
	if !ok {
		aid = int32(len(fs.attrs))
		fs.attrIDs[a] = aid
		fs.attrs = append(fs.attrs, a)
	}
	key := string([]byte{byte(aid), byte(aid >> 8), byte(aid >> 16), byte(aid >> 24)}) + value
	fid, ok := fs.byKey[key]
	if !ok {
		fid = int32(len(fs.featBits))
		fs.byKey[key] = fid
		fs.featBits = append(fs.featBits, bitset.New(fs.c.NumTexts()))
		fs.featAttr = append(fs.featAttr, aid)
		fs.featVal = append(fs.featVal, value)
	}
	if fs.featBits[fid].Has(ord) {
		return
	}
	fs.featBits[fid].Add(ord)
	fs.nodeFeats[ord] = append(fs.nodeFeats[ord], fid)
}

// Seal sorts per-node feature lists; must be called once after population.
func (fs *FeatureSpace) Seal() {
	for _, f := range fs.nodeFeats {
		sort.Slice(f, func(i, j int) bool { return f[i] < f[j] })
	}
}

// Name implements Inductor.
func (fs *FeatureSpace) Name() string { return fs.name }

// Corpus implements Inductor.
func (fs *FeatureSpace) Corpus() *corpus.Corpus { return fs.c }

// InduceCalls returns the number of Induce invocations so far; the
// enumeration experiments (Figs. 2a–2c) report this counter.
func (fs *FeatureSpace) InduceCalls() int64 { return fs.induceCalls }

// ResetInduceCalls zeroes the call counter.
func (fs *FeatureSpace) ResetInduceCalls() { fs.induceCalls = 0 }

// FeatureWrapper is the wrapper produced by a FeatureSpace.
type FeatureWrapper struct {
	fs      *FeatureSpace
	featIDs []int32
	out     *bitset.Set
}

// Extract implements Wrapper.
func (w *FeatureWrapper) Extract() *bitset.Set { return w.out }

// Rule implements Wrapper.
func (w *FeatureWrapper) Rule() string {
	if w.fs.renderRule != nil {
		return w.fs.renderRule(w.fs, w.featIDs)
	}
	var parts []string
	for _, fid := range w.featIDs {
		a := w.fs.attrs[w.fs.featAttr[fid]]
		parts = append(parts, fmt.Sprintf("%s=%q", a, w.fs.featVal[fid]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Features exposes the intersected feature ids (tests and rule rendering).
func (w *FeatureWrapper) Features() []int32 { return w.featIDs }

// Space returns the FeatureSpace the wrapper was induced in; compilation to
// a Portable dispatches on its Name.
func (w *FeatureWrapper) Space() *FeatureSpace { return w.fs }

// Induce implements Inductor: φ(L) = {n | F(n) ⊇ ∩ F(ℓ)}.
func (fs *FeatureSpace) Induce(labels *bitset.Set) (Wrapper, error) {
	fs.induceCalls++
	ords := labels.Indices()
	if len(ords) == 0 {
		return nil, fmt.Errorf("%s: cannot induce from an empty label set", fs.name)
	}
	inter := append([]int32(nil), fs.nodeFeats[ords[0]]...)
	for _, ord := range ords[1:] {
		inter = intersectSorted(inter, fs.nodeFeats[ord])
		if len(inter) == 0 {
			break
		}
	}
	var out *bitset.Set
	if len(inter) == 0 {
		// No shared features: the wrapper generalizes to everything.
		out = fs.c.FullSet()
	} else {
		out = fs.featBits[inter[0]].Clone()
		for _, fid := range inter[1:] {
			out.AndWith(fs.featBits[fid])
		}
	}
	return &FeatureWrapper{fs: fs, featIDs: inter, out: out}, nil
}

// Attrs implements FeatureInductor.
func (fs *FeatureSpace) Attrs(labels *bitset.Set) []Attr {
	seen := make(map[int32]bool)
	var out []Attr
	labels.ForEach(func(ord int) {
		for _, fid := range fs.nodeFeats[ord] {
			aid := fs.featAttr[fid]
			if !seen[aid] {
				seen[aid] = true
				out = append(out, fs.attrs[aid])
			}
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// Subdivide implements FeatureInductor: partition s by the value of a.
// Nodes lacking attribute a are omitted (the subdivision need not cover s).
func (fs *FeatureSpace) Subdivide(s *bitset.Set, a Attr) []*bitset.Set {
	aid, ok := fs.attrIDs[a]
	if !ok {
		return nil
	}
	groups := make(map[int32]*bitset.Set)
	var order []int32
	s.ForEach(func(ord int) {
		for _, fid := range fs.nodeFeats[ord] {
			if fs.featAttr[fid] == aid {
				g, ok := groups[fid]
				if !ok {
					g = bitset.New(fs.c.NumTexts())
					groups[fid] = g
					order = append(order, fid)
				}
				g.Add(ord)
				break
			}
		}
	})
	out := make([]*bitset.Set, 0, len(order))
	for _, fid := range order {
		out = append(out, groups[fid])
	}
	return out
}

// AttrValue returns node ord's value for attribute a, if any. Used by rule
// rendering and tests.
func (fs *FeatureSpace) AttrValue(ord int, a Attr) (string, bool) {
	aid, ok := fs.attrIDs[a]
	if !ok {
		return "", false
	}
	for _, fid := range fs.nodeFeats[ord] {
		if fs.featAttr[fid] == aid {
			return fs.featVal[fid], true
		}
	}
	return "", false
}

// FeatureAttr resolves the attribute of a feature id.
func (fs *FeatureSpace) FeatureAttr(fid int32) Attr { return fs.attrs[fs.featAttr[fid]] }

// FeatureValue resolves the value of a feature id.
func (fs *FeatureSpace) FeatureValue(fid int32) string { return fs.featVal[fid] }

func intersectSorted(a, b []int32) []int32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

var (
	_ Inductor        = (*FeatureSpace)(nil)
	_ FeatureInductor = (*FeatureSpace)(nil)
	_ Wrapper         = (*FeatureWrapper)(nil)
)
