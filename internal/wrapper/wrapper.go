// Package wrapper defines the inductor abstractions of the paper's
// framework: the blackbox Inductor interface with the well-behavedness
// properties of Definition 1 (fidelity, closure, monotonicity) and the
// feature-based inductor refinement of Sec. 4.2 that enables the TopDown
// enumeration algorithm.
package wrapper

import (
	"fmt"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
)

// Wrapper is a learned extraction rule. The paper (Sec. 6) scores wrappers
// purely by their output, so the core requirement is Extract; Rule gives the
// human-readable form for documentation and debugging.
type Wrapper interface {
	// Extract returns the set of text-node ordinals matched on the corpus
	// the wrapper was induced from. Implementations may memoize.
	Extract() *bitset.Set
	// Rule renders the wrapper in its native language (an xpath, an (l,r)
	// delimiter pair, ...).
	Rule() string
}

// Inductor is a blackbox wrapper induction system φ: given noise-free
// labeled examples it generalizes them to a wrapper (paper Sec. 3).
type Inductor interface {
	// Name identifies the wrapper language (e.g. "xpath", "lr", "table").
	Name() string
	// Corpus returns the corpus this inductor was built over.
	Corpus() *corpus.Corpus
	// Induce learns a wrapper from a non-empty label set. Implementations
	// of well-behaved inductors must satisfy Definition 1.
	Induce(labels *bitset.Set) (Wrapper, error)
}

// Attr identifies one attribute of a feature-based inductor (paper
// Sec. 4.2): features are (attribute, value) pairs and
// φ(L) = {n | F(n) ⊇ ∩_{ℓ∈L} F(ℓ)}.
type Attr struct {
	// Kind is inductor-specific (e.g. "tag", "cn", "@class" at an ancestor
	// position for XPATH; "L" or "R" with a context length for LR).
	Kind string
	// Pos is the ancestor position or context length the attribute refers
	// to; 0 when unused.
	Pos int
}

func (a Attr) String() string {
	if a.Pos != 0 {
		return fmt.Sprintf("%d:%s", a.Pos, a.Kind)
	}
	return a.Kind
}

// FeatureInductor is an inductor expressible in the feature-based form, the
// class for which TopDown enumerates the wrapper space with exactly k calls
// (Theorem 3).
type FeatureInductor interface {
	Inductor
	// Attrs returns every attribute that appears among the features of the
	// given labels (attrs(L) in the paper).
	Attrs(labels *bitset.Set) []Attr
	// Subdivide partitions s by the value of attribute a
	// (subdivision(s, a) in the paper). Labels lacking the attribute are
	// omitted — a subdivision need not cover s.
	Subdivide(s *bitset.Set, a Attr) []*bitset.Set
}

// Closure computes φ̆(s) = φ(s) ∩ L for the BottomUp algorithm (Sec. 4.1).
func Closure(ind Inductor, s, labels *bitset.Set) (*bitset.Set, error) {
	w, err := ind.Induce(s)
	if err != nil {
		return nil, err
	}
	return bitset.And(w.Extract(), labels), nil
}

// CheckWellBehaved verifies Definition 1 on a specific (inductor, labels)
// instance by sampling subset pairs; it is used by the property-based tests
// of every shipped inductor. It returns a descriptive error naming the
// violated property.
func CheckWellBehaved(ind Inductor, labels *bitset.Set) error {
	ords := labels.Indices()
	n := len(ords)
	if n == 0 {
		return nil
	}
	if n > 8 {
		ords = ords[:8]
		n = 8
	}
	// Enumerate all subsets when small; this is a test helper, not a
	// production path.
	universe := ind.Corpus().NumTexts()
	subsets := make([]*bitset.Set, 0, 1<<uint(n))
	for mask := 1; mask < 1<<uint(n); mask++ {
		s := bitset.New(universe)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(ords[i])
			}
		}
		subsets = append(subsets, s)
	}
	outputs := make([]*bitset.Set, len(subsets))
	for i, s := range subsets {
		w, err := ind.Induce(s)
		if err != nil {
			return fmt.Errorf("induce failed on subset %v: %w", s.Indices(), err)
		}
		outputs[i] = w.Extract()
		// FIDELITY: L ⊆ φ(L).
		if !s.SubsetOf(outputs[i]) {
			return fmt.Errorf("fidelity violated: labels %v not within output %v",
				s.Indices(), outputs[i].Indices())
		}
		// CLOSURE: for each ℓ ∈ φ(L), φ(L ∪ {ℓ}) == φ(L). Verify on a
		// bounded sample of ℓ to keep the check tractable.
		checked := 0
		for _, ell := range outputs[i].Indices() {
			if s.Has(ell) {
				continue
			}
			if checked >= 4 {
				break
			}
			checked++
			ext := s.Clone()
			ext.Add(ell)
			w2, err := ind.Induce(ext)
			if err != nil {
				return fmt.Errorf("induce failed on closure extension: %w", err)
			}
			if !w2.Extract().Equal(outputs[i]) {
				return fmt.Errorf("closure violated: adding extracted node %d to %v changed output",
					ell, s.Indices())
			}
		}
	}
	// MONOTONICITY: L1 ⊆ L2 ⇒ φ(L1) ⊆ φ(L2). Check subset pairs.
	for i, si := range subsets {
		for j, sj := range subsets {
			if i == j || !si.SubsetOf(sj) {
				continue
			}
			if !outputs[i].SubsetOf(outputs[j]) {
				return fmt.Errorf("monotonicity violated: φ(%v) ⊄ φ(%v)",
					si.Indices(), sj.Indices())
			}
		}
	}
	return nil
}
