package wrapper

import "autowrap/internal/dom"

// Portable is the compiled, corpus-independent form of a learned wrapper:
// the artifact the learn/serve split revolves around. A Wrapper is bound to
// the corpus it was induced from (Extract returns ordinals of that corpus);
// a Portable carries only the rule itself, so it can be serialized, stored,
// shipped to another process, and applied to pages that did not exist at
// learning time — the paper's "learn once per site, extract from millions
// of pages" economics.
//
// Implementations exist per wrapper language (xpinduct.Compiled evaluates a
// parsed xpath expression, lr.Compiled a delimiter matcher over the page's
// serialized character stream); internal/store owns the stable wire form
// and the Wrapper -> Portable compilation dispatch.
type Portable interface {
	// Lang names the wrapper language the rule is written in ("xpath",
	// "lr"); codecs key the wire format on it.
	Lang() string
	// Rule renders the compiled rule in its native syntax, matching
	// Wrapper.Rule of the wrapper it was compiled from.
	Rule() string
	// ApplyPage evaluates the rule against an arbitrary parsed page and
	// returns the matching extractable text nodes (corpus.IsExtractableText)
	// in document order. It must be safe for concurrent use: the extraction
	// runtime shares one Portable across its worker pool.
	ApplyPage(root *dom.Node) []*dom.Node
}
