package experiments

import (
	"fmt"
	"strings"

	"autowrap/internal/annotate"
	"autowrap/internal/dataset"
	"autowrap/internal/gen"
	"autowrap/internal/par"
	"autowrap/internal/single"
)

// SingleEntityResult reproduces Appendix B.2: album-title extraction from
// DISC pages. The paper reports that the noise-tolerant wrapper learned the
// correct wrapper on all websites, with some sites returning multiple
// top-ranked wrappers, all correct (title tag, heading, breadcrumb, ...).
type SingleEntityResult struct {
	Sites         int
	Correct       int
	WithTies      int
	TotalWinners  int
	SkippedNoAnno int
}

// SingleEntityConfig bounds the experiment.
type SingleEntityConfig struct {
	Workers int
	// CorrectPageFrac is the fraction of pages on which a winner must
	// extract a node containing the page's album title to count as a
	// correct wrapper. Default 0.9.
	CorrectPageFrac float64
}

// SingleEntityExperiment runs B.2 over all DISC sites: the annotator is a
// dictionary of the seed album titles, noisy because album names appear in
// several page locations (title tracks, sidebars, the title tag).
func SingleEntityExperiment(ds *dataset.Dataset, seedTitles []string, cfg SingleEntityConfig) (*SingleEntityResult, error) {
	if cfg.CorrectPageFrac == 0 {
		cfg.CorrectPageFrac = 0.9
	}
	annot := annotate.NewDictionary("seed-album-titles", seedTitles)
	res := &SingleEntityResult{}
	type out struct {
		correct bool
		ties    int
		skipped bool
		err     error
	}
	outs := make([]out, len(ds.Sites))
	par.For(len(ds.Sites), cfg.Workers, func(i int) {
		outs[i] = runSingleEntitySite(ds.Sites[i], annot, cfg)
	})
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.skipped {
			res.SkippedNoAnno++
			continue
		}
		res.Sites++
		if o.correct {
			res.Correct++
		}
		if o.ties > 1 {
			res.WithTies++
		}
		res.TotalWinners += o.ties
	}
	return res, nil
}

func runSingleEntitySite(site *gen.Site, annot annotate.Annotator, cfg SingleEntityConfig) (o struct {
	correct bool
	ties    int
	skipped bool
	err     error
}) {
	c := site.Corpus
	labels := annot.Annotate(c)
	if labels.Count() < 2 {
		o.skipped = true
		return
	}
	ind, err := NewInductor(KindXPath, c)
	if err != nil {
		o.err = err
		return
	}
	res, err := single.Learn(ind, labels, single.Config{})
	if err != nil {
		o.err = fmt.Errorf("site %s: %w", site.Name, err)
		return
	}
	if len(res.Winners) == 0 {
		return // counted as incorrect
	}
	o.ties = len(res.Winners)
	// Every winner must be a correct wrapper: on at least CorrectPageFrac
	// of the pages it extracts exactly one node whose text contains the
	// page's album title.
	titles := site.PageValues["album"]
	allCorrect := true
	for _, w := range res.Winners {
		good := 0
		perPage := make(map[int][]int)
		w.Wrapper.Extract().ForEach(func(ord int) {
			p := c.PageOf(ord)
			perPage[p] = append(perPage[p], ord)
		})
		for pi, title := range titles {
			ords := perPage[pi]
			if len(ords) != 1 {
				continue
			}
			if strings.Contains(c.TextContent(ords[0]), title) {
				good++
			}
		}
		if float64(good) < cfg.CorrectPageFrac*float64(len(titles)) {
			allCorrect = false
			break
		}
	}
	o.correct = allCorrect
	return
}
