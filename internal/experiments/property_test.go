package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/dataset"
	"autowrap/internal/enum"
	"autowrap/internal/wrapper"
)

// TestEnumerationEquivalenceOnGeneratedSites is the heavyweight property
// test tying Sec. 4's theory to realistic inputs: on generated dealer
// sites with random small label subsets, Naive, BottomUp and TopDown agree
// exactly for both shipped inductors, TopDown makes exactly k calls and
// BottomUp at most k·|L|.
func TestEnumerationEquivalenceOnGeneratedSites(t *testing.T) {
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 6, NumPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for _, site := range ds.Sites {
		c := site.Corpus
		for _, kind := range []string{KindXPath, KindLR} {
			ind, err := NewInductor(kind, c)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 3; trial++ {
				labels := bitset.New(c.NumTexts())
				n := 2 + rng.Intn(7)
				for labels.Count() < n {
					labels.Add(rng.Intn(c.NumTexts()))
				}
				naive, err := enum.Naive(ind, labels)
				if err != nil {
					t.Fatal(err)
				}
				bu, err := enum.BottomUp(ind, labels, enum.Options{})
				if err != nil {
					t.Fatal(err)
				}
				td, err := enum.TopDown(ind.(wrapper.FeatureInductor), labels, enum.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(naive.Signatures()) != fmt.Sprint(bu.Signatures()) {
					t.Fatalf("%s/%s: BottomUp space (%d) != Naive (%d) for labels %v",
						site.Name, kind, len(bu.Items), len(naive.Items), labels.Indices())
				}
				if fmt.Sprint(naive.Signatures()) != fmt.Sprint(td.Signatures()) {
					t.Fatalf("%s/%s: TopDown space (%d) != Naive (%d) for labels %v",
						site.Name, kind, len(td.Items), len(naive.Items), labels.Indices())
				}
				if td.Calls != int64(len(naive.Items)) {
					t.Fatalf("%s/%s: Theorem 3 violated: %d calls for k=%d",
						site.Name, kind, td.Calls, len(naive.Items))
				}
				if bu.Calls > int64(len(naive.Items)*labels.Count()) {
					t.Fatalf("%s/%s: Theorem 2 violated: %d calls > k·|L| = %d",
						site.Name, kind, bu.Calls, len(naive.Items)*labels.Count())
				}
			}
		}
	}
}

// TestWellBehavedOnGeneratedSites verifies Definition 1 for both inductors
// on realistic generated markup (Theorems 4 and 5).
func TestWellBehavedOnGeneratedSites(t *testing.T) {
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 4, NumPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for _, site := range ds.Sites[:2] {
		c := site.Corpus
		labels := bitset.New(c.NumTexts())
		for labels.Count() < 6 {
			labels.Add(rng.Intn(c.NumTexts()))
		}
		for _, kind := range []string{KindXPath, KindLR} {
			ind, err := NewInductor(kind, c)
			if err != nil {
				t.Fatal(err)
			}
			if err := wrapper.CheckWellBehaved(ind, labels); err != nil {
				t.Fatalf("%s on %s: %v", kind, site.Name, err)
			}
		}
	}
}

// TestNoLabelOverlapAcrossInductors: the two inductors learn from the same
// labels and must both recover the gold list on an easy site — a guard
// against representation-specific drift.
func TestInductorsAgreeOnCleanLabels(t *testing.T) {
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 8, NumPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range ds.Sites {
		if site.LRHostile {
			continue // by design LR cannot match XPATH there
		}
		c := site.Corpus
		gold := site.Gold["name"]
		// Clean labels: every third gold name.
		labels := bitset.New(c.NumTexts())
		i := 0
		gold.ForEach(func(ord int) {
			if i%3 == 0 {
				labels.Add(ord)
			}
			i++
		})
		if labels.Count() < 2 {
			continue
		}
		for _, kind := range []string{KindXPath, KindLR} {
			ind, err := NewInductor(kind, c)
			if err != nil {
				t.Fatal(err)
			}
			w, err := ind.Induce(labels)
			if err != nil {
				t.Fatal(err)
			}
			if !w.Extract().Equal(gold) {
				t.Fatalf("%s on %s (%s layout): clean labels did not recover gold: got %d nodes, want %d",
					kind, site.Name, site.Layout, w.Extract().Count(), gold.Count())
			}
		}
	}
}
