package experiments

import (
	"testing"

	"autowrap/internal/dataset"
)

// smallDealers builds a reduced DEALERS dataset; experiments behave the
// same as at paper scale, just with wider confidence intervals.
func smallDealers(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: n})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestFig2dShapeXPathDealers: NAIVE has recall ≈ 1 but low precision
// (over-generalization); NTW reaches near-perfect accuracy.
func TestFig2dShapeXPathDealers(t *testing.T) {
	ds := smallDealers(t, 40)
	res, err := AccuracyExperiment(ds, KindXPath, AccuracyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig2d (XPATH/DEALERS): NAIVE %v | NTW %v (sites=%d skipped=%d annot p=%.2f r=%.2f)",
		res.Naive, res.NTW, res.Sites, res.Skipped, res.AnnotPrecision, res.AnnotRecall)
	if res.Naive.Recall < 0.95 {
		t.Errorf("NAIVE recall %.3f should be ≈1", res.Naive.Recall)
	}
	if res.Naive.Precision > 0.85 {
		t.Errorf("NAIVE precision %.3f should be visibly low", res.Naive.Precision)
	}
	if res.NTW.F1 < 0.93 {
		t.Errorf("NTW F1 %.3f should be near-perfect", res.NTW.F1)
	}
	if res.NTW.F1 <= res.Naive.F1 {
		t.Errorf("NTW (%.3f) must beat NAIVE (%.3f)", res.NTW.F1, res.Naive.F1)
	}
}

// TestFig2eShapeLRDealers: same trend for LR, but NTW is capped below
// XPATH's accuracy because some sites admit no perfect LR wrapper.
func TestFig2eShapeLRDealers(t *testing.T) {
	ds := smallDealers(t, 40)
	lrRes, err := AccuracyExperiment(ds, KindLR, AccuracyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	xpRes, err := AccuracyExperiment(ds, KindXPath, AccuracyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig2e (LR/DEALERS): NAIVE %v | NTW %v", lrRes.Naive, lrRes.NTW)
	if lrRes.Naive.Precision > lrRes.NTW.Precision {
		t.Errorf("NTW precision (%.3f) must beat NAIVE (%.3f)",
			lrRes.NTW.Precision, lrRes.Naive.Precision)
	}
	if lrRes.NTW.F1 < 0.75 {
		t.Errorf("LR NTW F1 %.3f too low", lrRes.NTW.F1)
	}
	if lrRes.NTW.F1 >= xpRes.NTW.F1 {
		t.Errorf("LR NTW F1 (%.3f) should trail XPATH (%.3f) on DEALERS",
			lrRes.NTW.F1, xpRes.NTW.F1)
	}
}

// TestFig2fgShapeDisc: near-perfect accuracy for both inductors on DISC.
func TestFig2fgShapeDisc(t *testing.T) {
	ds, err := dataset.Disc(dataset.DiscOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{KindXPath, KindLR} {
		res, err := AccuracyExperiment(ds, kind, AccuracyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("Fig2f/2g (%s/DISC): NAIVE %v | NTW %v", kind, res.Naive, res.NTW)
		if res.NTW.F1 < 0.9 {
			t.Errorf("%s NTW F1 %.3f should be near-perfect on DISC", kind, res.NTW.F1)
		}
	}
}
