package experiments

import (
	"testing"

	"autowrap/internal/dataset"
)

// TestFig2hiVariants: the full ranking model dominates both single-component
// ablations; for XPATH the label term alone is nearly sufficient while for
// LR it is not (Sec. 7.3).
func TestFig2hiVariants(t *testing.T) {
	ds := smallDealers(t, 40)
	xp, err := VariantsExperiment(ds, KindXPath, AccuracyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig2h (XPATH): NTW=%.3f NTW-L=%.3f NTW-X=%.3f", xp.NTW.F1, xp.NTWL.F1, xp.NTWX.F1)
	lrv, err := VariantsExperiment(ds, KindLR, AccuracyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig2i (LR):    NTW=%.3f NTW-L=%.3f NTW-X=%.3f", lrv.NTW.F1, lrv.NTWL.F1, lrv.NTWX.F1)
	if xp.NTW.F1 < xp.NTWL.F1-0.02 || xp.NTW.F1 < xp.NTWX.F1-0.02 {
		t.Errorf("XPATH: full NTW must not trail its components")
	}
	if lrv.NTW.F1 < lrv.NTWL.F1-0.02 || lrv.NTW.F1 < lrv.NTWX.F1-0.02 {
		t.Errorf("LR: full NTW must not trail its components")
	}
	// Neither single component should reach the full model everywhere.
	if xp.NTWX.F1 >= xp.NTW.F1 && lrv.NTWX.F1 >= lrv.NTW.F1 {
		t.Errorf("NTW-X alone should not match NTW on both inductors")
	}
}

// TestFig2abcEnumeration: TopDown ≪ BottomUp ≪ Naive call counts, and the
// algorithms agree where naive is feasible.
func TestFig2abcEnumeration(t *testing.T) {
	ds := smallDealers(t, 16)
	for _, kind := range []string{KindLR, KindXPath} {
		res, err := EnumExperiment(ds, kind, EnumConfig{RunNaiveMax: 10})
		if err != nil {
			t.Fatal(err)
		}
		s := res.Summarize()
		t.Logf("Fig2a/2b (%s): sites=%d medians TopDown=%d BottomUp=%d Naive=%.0f ratio=%.1f; times TD=%.2fms BU=%.2fms",
			kind, s.Sites, s.MedianTopDownCalls, s.MedianBottomUpCalls, s.MedianNaiveCalls,
			s.BottomUpToTopDownRatio, s.MedianTopDownMs, s.MedianBottomUpMs)
		if s.Sites == 0 {
			t.Fatalf("%s: no sites measured", kind)
		}
		if s.MedianTopDownCalls >= s.MedianBottomUpCalls {
			t.Errorf("%s: TopDown (%d) should make fewer calls than BottomUp (%d)",
				kind, s.MedianTopDownCalls, s.MedianBottomUpCalls)
		}
		if float64(s.MedianBottomUpCalls) >= s.MedianNaiveCalls {
			t.Errorf("%s: BottomUp (%d) should be far below naive (%.0f)",
				kind, s.MedianBottomUpCalls, s.MedianNaiveCalls)
		}
	}
}

// TestTable1Smoke: a 2×2 corner of Table 1 on a few sites — accuracy must
// rise from the worst corner (p=0.1, r=0.05) to the best (p=0.9, r=0.3).
func TestTable1Smoke(t *testing.T) {
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 12, NumPages: 25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Table1Experiment(ds, Table1Config{
		PGrid:    []float64{0.1, 0.9},
		RGrid:    []float64{0.05, 0.3},
		MaxSites: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Table1 corners: low(p=.1,r=.05)=%.3f high(p=.9,r=.3)=%.3f  off-diag %.3f / %.3f",
		res.F1[0][0], res.F1[1][1], res.F1[0][1], res.F1[1][0])
	if res.F1[1][1] <= res.F1[0][0] {
		t.Errorf("best corner (%.3f) must beat worst corner (%.3f)", res.F1[1][1], res.F1[0][0])
	}
	if res.F1[1][1] < 0.85 {
		t.Errorf("best corner %.3f should be high", res.F1[1][1])
	}
}

// TestFig3aMultiType: NAIVE fails to assemble records (recall ≈ 0) while
// NTW recovers them.
func TestFig3aMultiType(t *testing.T) {
	ds := smallDealers(t, 24)
	res, err := MultiTypeExperiment(ds, MultiTypeConfig{MaxSites: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig3a: NAIVE records %v | NTW records %v (sites=%d skipped=%d)",
		res.NaiveRecords, res.NTWRecords, res.Sites, res.Skipped)
	t.Logf("Fig3b: name multi %.3f vs single %.3f | zip multi %.3f vs single %.3f",
		res.NameMulti.F1, res.NameSingle.F1, res.ZipMulti.F1, res.ZipSingle.F1)
	if res.Sites == 0 {
		t.Skip("no multi-type sites evaluated")
	}
	if res.NTWRecords.F1 < 0.85 {
		t.Errorf("NTW record F1 %.3f should be near-perfect", res.NTWRecords.F1)
	}
	if res.NaiveRecords.Recall > res.NTWRecords.Recall-0.3 {
		t.Errorf("NAIVE record recall (%.3f) should collapse vs NTW (%.3f)",
			res.NaiveRecords.Recall, res.NTWRecords.Recall)
	}
}

// TestB2SingleEntity: album-title extraction succeeds on all DISC sites.
func TestB2SingleEntity(t *testing.T) {
	ds, err := dataset.Disc(dataset.DiscOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seeds := dataset.DiscSeedTitles(dataset.DiscOptions{})
	res, err := SingleEntityExperiment(ds, seeds, SingleEntityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("B.2: %d/%d sites correct, %d with ties, %d winners total, %d skipped",
		res.Correct, res.Sites, res.WithTies, res.TotalWinners, res.SkippedNoAnno)
	if res.Sites == 0 {
		t.Fatal("no sites evaluated")
	}
	if res.Correct < res.Sites {
		t.Errorf("only %d/%d sites correct; paper reports all correct", res.Correct, res.Sites)
	}
	if res.WithTies == 0 {
		t.Errorf("expected some sites with multiple correct top wrappers")
	}
}
