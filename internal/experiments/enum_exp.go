package experiments

import (
	"fmt"
	"sort"
	"time"

	"autowrap/internal/dataset"
	"autowrap/internal/enum"
	"autowrap/internal/par"
	"autowrap/internal/wrapper"
)

// EnumRow is one website's enumeration measurements (Figs. 2a–2c).
type EnumRow struct {
	Site         string
	Labels       int
	WrapperSpace int
	// Call counts per algorithm. NaiveCalls is 2^|L|−1, the number of
	// inductor calls exhaustive search needs; NaiveRan reports whether the
	// naive run was actually executed (skipped when |L| exceeds
	// RunNaiveMax, as in the paper's "not plotted when it gets too
	// large").
	TopDownCalls  int64
	BottomUpCalls int64
	NaiveCalls    float64
	NaiveRan      bool
	// Wall-clock times (Fig. 2c).
	TopDownTime  time.Duration
	BottomUpTime time.Duration
}

// EnumResult aggregates the per-site rows, sorted by TopDown cost as in the
// paper's figures ("websites are arranged along the x-axis in increasing
// order of the TopDown time").
type EnumResult struct {
	Dataset  string
	Inductor string
	Rows     []EnumRow
	// Skipped counts sites without annotations (nothing to enumerate).
	Skipped int
}

// EnumConfig bounds the enumeration experiment.
type EnumConfig struct {
	// RunNaiveMax actually executes the naive enumeration when |L| is at
	// most this (default 12); beyond that only the 2^|L|−1 count is
	// reported.
	RunNaiveMax int
	// Workers bounds parallelism across sites.
	Workers int
}

// EnumExperiment reproduces Figs. 2(a)/2(b) (call counts) and 2(c)
// (running time) for the given inductor kind.
func EnumExperiment(ds *dataset.Dataset, kind string, cfg EnumConfig) (*EnumResult, error) {
	if cfg.RunNaiveMax == 0 {
		cfg.RunNaiveMax = 12
	}
	res := &EnumResult{Dataset: ds.Name, Inductor: kind}
	rows := make([]*EnumRow, len(ds.Sites))
	errs := make([]error, len(ds.Sites))
	par.For(len(ds.Sites), cfg.Workers, func(i int) {
		site := ds.Sites[i]
		labels := ds.Annotator.Annotate(site.Corpus)
		if labels.Count() < 2 {
			return // skipped
		}
		ind, err := NewInductor(kind, site.Corpus)
		if err != nil {
			errs[i] = err
			return
		}
		row := &EnumRow{Site: site.Name, Labels: labels.Count()}
		find, ok := ind.(wrapper.FeatureInductor)
		if !ok {
			errs[i] = fmt.Errorf("inductor %s is not feature-based", kind)
			return
		}

		start := time.Now()
		td, err := enum.TopDown(find, labels, enum.Options{})
		if err != nil {
			errs[i] = fmt.Errorf("site %s TopDown: %w", site.Name, err)
			return
		}
		row.TopDownTime = time.Since(start)
		row.TopDownCalls = td.Calls
		row.WrapperSpace = len(td.Items)

		start = time.Now()
		bu, err := enum.BottomUp(ind, labels, enum.Options{})
		if err != nil {
			errs[i] = fmt.Errorf("site %s BottomUp: %w", site.Name, err)
			return
		}
		row.BottomUpTime = time.Since(start)
		row.BottomUpCalls = bu.Calls

		row.NaiveCalls = enum.NaiveCalls(labels.Count())
		if labels.Count() <= cfg.RunNaiveMax {
			nv, err := enum.Naive(ind, labels)
			if err != nil {
				errs[i] = fmt.Errorf("site %s Naive: %w", site.Name, err)
				return
			}
			row.NaiveRan = true
			// Consistency check while we are here: all three algorithms
			// must agree on the wrapper space.
			if len(nv.Items) != len(td.Items) || len(nv.Items) != len(bu.Items) {
				errs[i] = fmt.Errorf("site %s: wrapper spaces disagree (naive %d, topdown %d, bottomup %d)",
					site.Name, len(nv.Items), len(td.Items), len(bu.Items))
				return
			}
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, r := range rows {
		if r == nil {
			res.Skipped++
			continue
		}
		res.Rows = append(res.Rows, *r)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return res.Rows[i].TopDownTime < res.Rows[j].TopDownTime
	})
	return res, nil
}

// Summary aggregates an EnumResult for compact reporting.
type EnumSummary struct {
	Sites                  int
	MedianTopDownCalls     int64
	MedianBottomUpCalls    int64
	MaxTopDownCalls        int64
	MaxBottomUpCalls       int64
	MedianNaiveCalls       float64
	MedianTopDownMs        float64
	MedianBottomUpMs       float64
	BottomUpToTopDownRatio float64
}

// Summarize computes the headline numbers of Figs. 2(a)–2(c): TopDown and
// BottomUp are orders of magnitude below naive, with BottomUp roughly an
// order of magnitude above TopDown.
func (r *EnumResult) Summarize() EnumSummary {
	s := EnumSummary{Sites: len(r.Rows)}
	if len(r.Rows) == 0 {
		return s
	}
	var td, bu []int64
	var nv []float64
	var tdMs, buMs []float64
	var ratioSum float64
	for _, row := range r.Rows {
		td = append(td, row.TopDownCalls)
		bu = append(bu, row.BottomUpCalls)
		nv = append(nv, row.NaiveCalls)
		tdMs = append(tdMs, float64(row.TopDownTime.Microseconds())/1000)
		buMs = append(buMs, float64(row.BottomUpTime.Microseconds())/1000)
		if row.TopDownCalls > 0 {
			ratioSum += float64(row.BottomUpCalls) / float64(row.TopDownCalls)
		}
		if row.TopDownCalls > s.MaxTopDownCalls {
			s.MaxTopDownCalls = row.TopDownCalls
		}
		if row.BottomUpCalls > s.MaxBottomUpCalls {
			s.MaxBottomUpCalls = row.BottomUpCalls
		}
	}
	sort.Slice(td, func(i, j int) bool { return td[i] < td[j] })
	sort.Slice(bu, func(i, j int) bool { return bu[i] < bu[j] })
	sort.Float64s(nv)
	sort.Float64s(tdMs)
	sort.Float64s(buMs)
	mid := len(td) / 2
	s.MedianTopDownCalls = td[mid]
	s.MedianBottomUpCalls = bu[mid]
	s.MedianNaiveCalls = nv[mid]
	s.MedianTopDownMs = tdMs[mid]
	s.MedianBottomUpMs = buMs[mid]
	s.BottomUpToTopDownRatio = ratioSum / float64(len(r.Rows))
	return s
}
