package experiments

import (
	"fmt"
	"io"
	"strings"
)

// ReportEnum renders an EnumResult in the style of Figs. 2(a)–2(c): one row
// per website in increasing TopDown order plus a summary block.
func ReportEnum(w io.Writer, r *EnumResult, maxRows int) {
	fmt.Fprintf(w, "== Enumeration (%s, %s): %d sites (%d skipped) ==\n",
		r.Dataset, r.Inductor, len(r.Rows), r.Skipped)
	fmt.Fprintf(w, "%-16s %6s %6s %9s %9s %12s %10s %10s\n",
		"site", "|L|", "k", "topdown", "bottomup", "naive", "td-time", "bu-time")
	rows := r.Rows
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	for _, row := range rows {
		naive := fmt.Sprintf("%.3g", row.NaiveCalls)
		if !row.NaiveRan {
			naive += "*"
		}
		fmt.Fprintf(w, "%-16s %6d %6d %9d %9d %12s %10s %10s\n",
			row.Site, row.Labels, row.WrapperSpace,
			row.TopDownCalls, row.BottomUpCalls, naive,
			row.TopDownTime.Round(10_000), row.BottomUpTime.Round(10_000))
	}
	if maxRows > 0 && len(r.Rows) > maxRows {
		fmt.Fprintf(w, "... (%d more sites)\n", len(r.Rows)-maxRows)
	}
	s := r.Summarize()
	fmt.Fprintf(w, "summary: median calls topdown=%d bottomup=%d naive=%.3g; "+
		"bottomup/topdown ratio=%.1fx; median time topdown=%.2fms bottomup=%.2fms\n",
		s.MedianTopDownCalls, s.MedianBottomUpCalls, s.MedianNaiveCalls,
		s.BottomUpToTopDownRatio, s.MedianTopDownMs, s.MedianBottomUpMs)
	fmt.Fprintln(w, "(* = naive run skipped, count shown is 2^|L|-1)")
}

// ReportAccuracy renders an AccuracyResult in the style of Figs. 2(d)–2(g)
// and 3(c).
func ReportAccuracy(w io.Writer, r *AccuracyResult) {
	fmt.Fprintf(w, "== Accuracy (%s, %s): %d sites (%d skipped), annotator p=%.2f r=%.2f ==\n",
		r.Dataset, r.Inductor, r.Sites, r.Skipped, r.AnnotPrecision, r.AnnotRecall)
	fmt.Fprintf(w, "%-6s %10s %10s %10s\n", "", "Precision", "Recall", "F1")
	fmt.Fprintf(w, "%-6s %10.3f %10.3f %10.3f\n", "NAIVE", r.Naive.Precision, r.Naive.Recall, r.Naive.F1)
	fmt.Fprintf(w, "%-6s %10.3f %10.3f %10.3f\n", "NTW", r.NTW.Precision, r.NTW.Recall, r.NTW.F1)
}

// ReportVariants renders a VariantsResult in the style of Figs. 2(h)/2(i).
func ReportVariants(w io.Writer, r *VariantsResult) {
	fmt.Fprintf(w, "== Ranking components (%s, %s): %d sites ==\n", r.Dataset, r.Inductor, r.Sites)
	fmt.Fprintf(w, "%-7s %10s\n", "", "Accuracy")
	fmt.Fprintf(w, "%-7s %10.3f\n", "NTW", r.NTW.F1)
	fmt.Fprintf(w, "%-7s %10.3f\n", "NTW-L", r.NTWL.F1)
	fmt.Fprintf(w, "%-7s %10.3f\n", "NTW-X", r.NTWX.F1)
}

// ReportTable1 renders a Table1Result next to the paper's published grid.
func ReportTable1(w io.Writer, r *Table1Result) {
	fmt.Fprintf(w, "== Table 1: NTW accuracy vs annotator precision (rows) / recall (cols), %d sites ==\n", r.Sites)
	fmt.Fprintf(w, "%6s", "p\\r")
	for _, rr := range r.RGrid {
		fmt.Fprintf(w, " %11.2f", rr)
	}
	fmt.Fprintln(w)
	for pi, p := range r.PGrid {
		fmt.Fprintf(w, "%6.1f", p)
		for ri := range r.RGrid {
			cell := fmt.Sprintf("%.2f", r.F1[pi][ri])
			if paper, ok := PaperTable1[[2]float64{p, r.RGrid[ri]}]; ok {
				cell += fmt.Sprintf("/%.2f", paper)
			}
			fmt.Fprintf(w, " %11s", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(cells are measured/paper where the paper reports the point)")
}

// ReportMultiType renders a MultiTypeResult in the style of Figs. 3(a)/3(b).
func ReportMultiType(w io.Writer, r *MultiTypeResult) {
	fmt.Fprintf(w, "== Multi-type extraction (name+zipcode), %d sites (%d skipped) ==\n", r.Sites, r.Skipped)
	fmt.Fprintf(w, "Fig 3(a) records: %-6s %s\n", "NAIVE", r.NaiveRecords)
	fmt.Fprintf(w, "                  %-6s %s\n", "NTW", r.NTWRecords)
	fmt.Fprintf(w, "Fig 3(b) name:    multi F1=%.3f  single F1=%.3f\n", r.NameMulti.F1, r.NameSingle.F1)
	fmt.Fprintf(w, "         zipcode: multi F1=%.3f  single F1=%.3f\n", r.ZipMulti.F1, r.ZipSingle.F1)
}

// ReportSingleEntity renders the Appendix B.2 outcome.
func ReportSingleEntity(w io.Writer, r *SingleEntityResult) {
	fmt.Fprintf(w, "== Single-entity extraction (album titles, DISC) ==\n")
	fmt.Fprintf(w, "sites correct: %d/%d; sites with multiple top wrappers: %d; winners total: %d; skipped: %d\n",
		r.Correct, r.Sites, r.WithTies, r.TotalWinners, r.SkippedNoAnno)
}

// ReportBatch renders the engine throughput demo: the aggregate pool stats
// plus accuracy, and every failed site with its error.
func ReportBatch(w io.Writer, r *BatchOutcome) {
	st := r.Batch.Stats
	fmt.Fprintf(w, "== Engine batch (%s, %s) ==\n", r.Dataset, r.Inductor)
	fmt.Fprintf(w, "%s\n", st)
	fmt.Fprintf(w, "max site latency: %v; enum calls: %d\n", st.MaxSite, st.EnumCalls)
	fmt.Fprintf(w, "NTW accuracy over %d held-out sites: %s\n", r.EvalSites, r.NTW)
	for _, f := range r.Batch.Failed() {
		fmt.Fprintf(w, "FAILED %s: %v\n", f.Name, f.Err)
	}
}

// Separator prints a section break.
func Separator(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}
