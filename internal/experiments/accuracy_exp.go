package experiments

import (
	"fmt"

	"autowrap/internal/core"
	"autowrap/internal/dataset"
	"autowrap/internal/eval"
	"autowrap/internal/gen"
	"autowrap/internal/rank"
)

// AccuracyResult reproduces one of Figs. 2(d)–2(g) / 3(c): macro-averaged
// precision/recall/F1 of NAIVE vs the noise-tolerant framework.
type AccuracyResult struct {
	Dataset  string
	Inductor string
	Naive    eval.PRF
	NTW      eval.PRF
	// Sites is the number of evaluated (held-out) sites; Skipped counts
	// sites whose annotator produced no labels.
	Sites   int
	Skipped int
	// Annotator quality as measured on the training half.
	AnnotPrecision, AnnotRecall float64
}

// AccuracyConfig bounds the experiment.
type AccuracyConfig struct {
	Workers int
	// Variant applies to the NTW side (used by the Fig. 2h/2i ablations).
	Variant rank.Variant
}

// AccuracyExperiment runs NAIVE and NTW over the evaluation half of the
// dataset with models learned on the training half.
func AccuracyExperiment(ds *dataset.Dataset, kind string, cfg AccuracyConfig) (*AccuracyResult, error) {
	models, err := defaultModels(ds)
	if err != nil {
		return nil, err
	}
	evalSites := ds.Eval()
	type siteOut struct {
		naive, ntw eval.PRF
		skipped    bool
		err        error
	}
	outs := make([]siteOut, len(evalSites))
	parallelFor(len(evalSites), cfg.Workers, func(i int) {
		outs[i] = runAccuracySite(ds, evalSites[i], kind, models, cfg.Variant)
	})
	res := &AccuracyResult{
		Dataset: ds.Name, Inductor: kind,
		AnnotPrecision: models.AnnotPrecision, AnnotRecall: models.AnnotRecall,
	}
	var naives, ntws []eval.PRF
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.skipped {
			res.Skipped++
			continue
		}
		naives = append(naives, o.naive)
		ntws = append(ntws, o.ntw)
	}
	res.Sites = len(naives)
	res.Naive = eval.Macro(naives)
	res.NTW = eval.Macro(ntws)
	return res, nil
}

func runAccuracySite(ds *dataset.Dataset, site *gen.Site, kind string, models *dataset.Models, variant rank.Variant) (out struct {
	naive, ntw eval.PRF
	skipped    bool
	err        error
}) {
	gold := site.Gold[ds.TypeName]
	labels := ds.Annotator.Annotate(site.Corpus)
	if labels.Count() < 2 {
		out.skipped = true
		return
	}
	ind, err := NewInductor(kind, site.Corpus)
	if err != nil {
		out.err = err
		return
	}
	nw, err := core.Naive(ind, labels)
	if err != nil {
		out.err = fmt.Errorf("site %s naive: %w", site.Name, err)
		return
	}
	out.naive = eval.Score(nw.Extract(), gold)

	res, err := core.Learn(ind, labels, core.Config{
		Scorer:  models.Scorer,
		Variant: variant,
	})
	if err != nil {
		out.err = fmt.Errorf("site %s ntw: %w", site.Name, err)
		return
	}
	out.ntw = eval.Score(res.Extraction(site.Corpus), gold)
	return
}

// VariantsResult reproduces Figs. 2(h)/2(i): the accuracy (F1) of the full
// ranking model against its two single-component ablations.
type VariantsResult struct {
	Dataset  string
	Inductor string
	NTW      eval.PRF
	NTWL     eval.PRF
	NTWX     eval.PRF
	Sites    int
}

// VariantsExperiment evaluates NTW, NTW-L and NTW-X on the same sites.
func VariantsExperiment(ds *dataset.Dataset, kind string, cfg AccuracyConfig) (*VariantsResult, error) {
	models, err := defaultModels(ds)
	if err != nil {
		return nil, err
	}
	evalSites := ds.Eval()
	type siteOut struct {
		prf     [3]eval.PRF
		skipped bool
		err     error
	}
	outs := make([]siteOut, len(evalSites))
	variants := []rank.Variant{rank.NTW, rank.NTWL, rank.NTWX}
	parallelFor(len(evalSites), cfg.Workers, func(i int) {
		site := evalSites[i]
		gold := site.Gold[ds.TypeName]
		labels := ds.Annotator.Annotate(site.Corpus)
		if labels.Count() < 2 {
			outs[i].skipped = true
			return
		}
		ind, err := NewInductor(kind, site.Corpus)
		if err != nil {
			outs[i].err = err
			return
		}
		for vi, v := range variants {
			res, err := core.Learn(ind, labels, core.Config{Scorer: models.Scorer, Variant: v})
			if err != nil {
				outs[i].err = fmt.Errorf("site %s variant %s: %w", site.Name, v, err)
				return
			}
			outs[i].prf[vi] = eval.Score(res.Extraction(site.Corpus), gold)
		}
	})
	var per [3][]eval.PRF
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.skipped {
			continue
		}
		for vi := range variants {
			per[vi] = append(per[vi], o.prf[vi])
		}
	}
	return &VariantsResult{
		Dataset:  ds.Name,
		Inductor: kind,
		NTW:      eval.Macro(per[0]),
		NTWL:     eval.Macro(per[1]),
		NTWX:     eval.Macro(per[2]),
		Sites:    len(per[0]),
	}, nil
}
