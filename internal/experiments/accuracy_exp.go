package experiments

import (
	"context"
	"fmt"

	"autowrap/internal/bitset"
	"autowrap/internal/core"
	"autowrap/internal/corpus"
	"autowrap/internal/dataset"
	"autowrap/internal/engine"
	"autowrap/internal/eval"
	"autowrap/internal/gen"
	"autowrap/internal/par"
	"autowrap/internal/rank"
	"autowrap/internal/wrapper"
)

// AccuracyResult reproduces one of Figs. 2(d)–2(g) / 3(c): macro-averaged
// precision/recall/F1 of NAIVE vs the noise-tolerant framework.
type AccuracyResult struct {
	Dataset  string
	Inductor string
	Naive    eval.PRF
	NTW      eval.PRF
	// Sites is the number of evaluated (held-out) sites; Skipped counts
	// sites whose annotator produced no labels.
	Sites   int
	Skipped int
	// Annotator quality as measured on the training half.
	AnnotPrecision, AnnotRecall float64
	// Batch carries the engine's throughput/latency stats for the NTW runs.
	Batch engine.Stats
}

// AccuracyConfig bounds the experiment.
type AccuracyConfig struct {
	Workers int
	// Variant applies to the NTW side (used by the Fig. 2h/2i ablations).
	Variant rank.Variant
}

// sitePrep is the per-site stage shared by the accuracy experiments:
// annotation, inductor construction, and the NAIVE baseline.
type sitePrep struct {
	labels  *bitset.Set
	ind     wrapper.Inductor
	naive   eval.PRF
	skipped bool
	err     error
}

// prepareSites annotates and builds an inductor per evaluation site, and
// runs the NAIVE baseline on it. Sites with fewer than two labels are
// skipped (a single label carries no list signal).
func prepareSites(ds *dataset.Dataset, evalSites []*gen.Site, kind string, workers int) []sitePrep {
	preps := make([]sitePrep, len(evalSites))
	par.For(len(evalSites), workers, func(i int) {
		site := evalSites[i]
		p := &preps[i]
		p.labels = ds.Annotator.Annotate(site.Corpus)
		if p.labels.Count() < 2 {
			p.skipped = true
			return
		}
		p.ind, p.err = NewInductor(kind, site.Corpus)
		if p.err != nil {
			return
		}
		nw, err := core.Naive(p.ind, p.labels)
		if err != nil {
			p.err = fmt.Errorf("site %s naive: %w", site.Name, err)
			return
		}
		p.naive = eval.Score(nw.Extract(), site.Gold[ds.TypeName])
	})
	return preps
}

// ntwSpecs turns the prepared sites into engine SiteSpecs (one per variant
// requested), reusing the stage-1 labels. The stage-1 inductor is reused by
// the first variant's spec only; further variants build a fresh inductor
// inside their worker — inductors carry per-instance induction caches, so
// sharing one across concurrently-running specs would race. specSite and
// specVariant map each spec back to its site and variant index.
func ntwSpecs(evalSites []*gen.Site, preps []sitePrep, kind string, scorer *rank.Scorer,
	variants []rank.Variant) (specs []engine.SiteSpec, specSite []int, specVariant []int) {
	for i, p := range preps {
		if p.skipped || p.err != nil {
			continue
		}
		for vi, v := range variants {
			ind, first := p.ind, vi == 0
			specs = append(specs, engine.SiteSpec{
				Name:   evalSites[i].Name,
				Corpus: evalSites[i].Corpus,
				Labels: p.labels,
				NewInductor: func(c *corpus.Corpus) (wrapper.Inductor, error) {
					if first {
						return ind, nil
					}
					return NewInductor(kind, c)
				},
				Config: core.Config{Scorer: scorer, Variant: v},
			})
			specSite = append(specSite, i)
			specVariant = append(specVariant, vi)
		}
	}
	return specs, specSite, specVariant
}

// AccuracyExperiment runs NAIVE and NTW over the evaluation half of the
// dataset with models learned on the training half. The NAIVE baselines run
// in a data-parallel prepass; the NTW learning — the expensive half — runs
// as one batch on the multi-site engine.
func AccuracyExperiment(ds *dataset.Dataset, kind string, cfg AccuracyConfig) (*AccuracyResult, error) {
	models, err := defaultModels(ds)
	if err != nil {
		return nil, err
	}
	evalSites := ds.Eval()
	preps := prepareSites(ds, evalSites, kind, cfg.Workers)
	specs, specSite, _ := ntwSpecs(evalSites, preps, kind, models.Scorer,
		[]rank.Variant{cfg.Variant})
	batch, err := engine.LearnBatch(context.Background(), specs,
		engine.Options{Workers: cfg.Workers, MinLabels: 2})
	if err != nil {
		return nil, err
	}

	res := &AccuracyResult{
		Dataset: ds.Name, Inductor: kind,
		AnnotPrecision: models.AnnotPrecision, AnnotRecall: models.AnnotRecall,
		Batch: batch.Stats,
	}
	var naives, ntws []eval.PRF
	for _, p := range preps {
		if p.err != nil {
			return nil, p.err
		}
		if p.skipped {
			res.Skipped++
			continue
		}
		naives = append(naives, p.naive)
	}
	for si, r := range batch.Sites {
		if r.Err != nil {
			return nil, fmt.Errorf("site %s ntw: %w", r.Name, r.Err)
		}
		site := evalSites[specSite[si]]
		ntws = append(ntws, eval.Score(r.Result.Extraction(site.Corpus),
			site.Gold[ds.TypeName]))
	}
	res.Sites = len(naives)
	res.Naive = eval.Macro(naives)
	res.NTW = eval.Macro(ntws)
	return res, nil
}

// VariantsResult reproduces Figs. 2(h)/2(i): the accuracy (F1) of the full
// ranking model against its two single-component ablations.
type VariantsResult struct {
	Dataset  string
	Inductor string
	NTW      eval.PRF
	NTWL     eval.PRF
	NTWX     eval.PRF
	Sites    int
}

// VariantsExperiment evaluates NTW, NTW-L and NTW-X on the same sites: all
// (site, variant) pairs are dispatched as one engine batch, so the three
// ablations interleave across the worker pool instead of running as three
// serial sweeps.
func VariantsExperiment(ds *dataset.Dataset, kind string, cfg AccuracyConfig) (*VariantsResult, error) {
	models, err := defaultModels(ds)
	if err != nil {
		return nil, err
	}
	evalSites := ds.Eval()
	preps := prepareSites(ds, evalSites, kind, cfg.Workers)
	for _, p := range preps {
		if p.err != nil {
			return nil, p.err
		}
	}
	variants := []rank.Variant{rank.NTW, rank.NTWL, rank.NTWX}
	specs, specSite, specVariant := ntwSpecs(evalSites, preps, kind, models.Scorer, variants)
	batch, err := engine.LearnBatch(context.Background(), specs,
		engine.Options{Workers: cfg.Workers, MinLabels: 2})
	if err != nil {
		return nil, err
	}
	var per [3][]eval.PRF
	for si, r := range batch.Sites {
		if r.Err != nil {
			return nil, fmt.Errorf("site %s variant %s: %w",
				r.Name, variants[specVariant[si]], r.Err)
		}
		site := evalSites[specSite[si]]
		prf := eval.Score(r.Result.Extraction(site.Corpus), site.Gold[ds.TypeName])
		per[specVariant[si]] = append(per[specVariant[si]], prf)
	}
	return &VariantsResult{
		Dataset:  ds.Name,
		Inductor: kind,
		NTW:      eval.Macro(per[0]),
		NTWL:     eval.Macro(per[1]),
		NTWX:     eval.Macro(per[2]),
		Sites:    len(per[0]),
	}, nil
}
