package experiments

import (
	"context"

	"autowrap/internal/core"
	"autowrap/internal/corpus"
	"autowrap/internal/dataset"
	"autowrap/internal/engine"
	"autowrap/internal/eval"
	"autowrap/internal/gen"
	"autowrap/internal/rank"
	"autowrap/internal/wrapper"
)

// BatchConfig sizes the multi-site engine run.
type BatchConfig struct {
	Workers int
	Variant rank.Variant
	// ScoreWorkers additionally fans out the per-site ranking loop; the
	// default (serial) keeps all parallelism at the site level, which is
	// where the throughput is for large batches.
	ScoreWorkers int
}

// BatchOutcome is the engine throughput demo's result: the raw batch plus
// extraction accuracy so the speedup is provably not coming from wrong
// answers.
type BatchOutcome struct {
	Dataset  string
	Inductor string
	Batch    *engine.BatchResult
	// NTW is the macro accuracy over the learned sites of the dataset's
	// evaluation half — the training half's sites are learned too (they
	// count for throughput) but are excluded here because the scorer's
	// models were fitted on them.
	NTW eval.PRF
	// EvalSites is the number of sites NTW averages over.
	EvalSites int
}

// BatchExperiment learns every site of the dataset in one engine batch with
// models from the training half — the deployment shape of the paper
// (hundreds of sites, annotate → enumerate → rank per site, all
// embarrassingly parallel).
func BatchExperiment(ds *dataset.Dataset, kind string, cfg BatchConfig) (*BatchOutcome, error) {
	models, err := defaultModels(ds)
	if err != nil {
		return nil, err
	}
	specs := BatchSpecs(ds, kind, models.Scorer, cfg)
	batch, err := engine.LearnBatch(context.Background(), specs,
		engine.Options{Workers: cfg.Workers, MinLabels: 2})
	if err != nil {
		return nil, err
	}
	heldOut := make(map[*gen.Site]bool)
	for _, s := range ds.Eval() {
		heldOut[s] = true
	}
	var prfs []eval.PRF
	for i, r := range batch.Sites {
		if r.Err != nil || r.Skipped || !heldOut[ds.Sites[i]] {
			continue
		}
		site := ds.Sites[i]
		prfs = append(prfs, eval.Score(r.Result.Extraction(site.Corpus),
			site.Gold[ds.TypeName]))
	}
	return &BatchOutcome{
		Dataset:   ds.Name,
		Inductor:  kind,
		Batch:     batch,
		NTW:       eval.Macro(prfs),
		EvalSites: len(prfs),
	}, nil
}

// BatchSpecs builds one engine SiteSpec per dataset site; bench_test.go
// uses it directly to time the engine with and without workers.
func BatchSpecs(ds *dataset.Dataset, kind string, scorer *rank.Scorer, cfg BatchConfig) []engine.SiteSpec {
	specs := make([]engine.SiteSpec, len(ds.Sites))
	for i, site := range ds.Sites {
		specs[i] = engine.SiteSpec{
			Name:      site.Name,
			Corpus:    site.Corpus,
			Annotator: ds.Annotator,
			NewInductor: func(c *corpus.Corpus) (wrapper.Inductor, error) {
				return NewInductor(kind, c)
			},
			Config: core.Config{
				Scorer:       scorer,
				Variant:      cfg.Variant,
				ScoreWorkers: cfg.ScoreWorkers,
			},
		}
	}
	return specs
}
