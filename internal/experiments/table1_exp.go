package experiments

import (
	"fmt"

	"autowrap/internal/annotate"
	"autowrap/internal/core"
	"autowrap/internal/dataset"
	"autowrap/internal/eval"
	"autowrap/internal/par"
	"autowrap/internal/rank"
)

// Table1Result reproduces Table 1: NTW accuracy (F1) as a function of the
// controlled annotator's precision (rows) and recall (columns), using the
// XPATH inductor on DEALERS with 25 annotated webpages per site.
type Table1Result struct {
	PGrid []float64 // precision rows
	RGrid []float64 // recall columns
	// F1[i][j] is the macro F1 at precision PGrid[i], recall RGrid[j].
	F1    [][]float64
	Sites int
}

// PaperTable1 holds the published Table 1 values for paper-vs-measured
// reporting in EXPERIMENTS.md.
var PaperTable1 = map[[2]float64]float64{
	{0.1, 0.05}: 0.41, {0.1, 0.1}: 0.67, {0.1, 0.15}: 0.72, {0.1, 0.2}: 0.75, {0.1, 0.25}: 0.73, {0.1, 0.3}: 0.73,
	{0.3, 0.05}: 0.56, {0.3, 0.1}: 0.82, {0.3, 0.15}: 0.88, {0.3, 0.2}: 0.89, {0.3, 0.25}: 0.93, {0.3, 0.3}: 0.93,
	{0.5, 0.05}: 0.67, {0.5, 0.1}: 0.82, {0.5, 0.15}: 0.88, {0.5, 0.2}: 0.92, {0.5, 0.25}: 0.93, {0.5, 0.3}: 0.95,
	{0.7, 0.05}: 0.69, {0.7, 0.1}: 0.85, {0.7, 0.15}: 0.92, {0.7, 0.2}: 0.93, {0.7, 0.25}: 0.95, {0.7, 0.3}: 0.95,
	{0.9, 0.05}: 0.73, {0.9, 0.1}: 0.88, {0.9, 0.15}: 0.93, {0.9, 0.2}: 0.94, {0.9, 0.25}: 0.96, {0.9, 0.3}: 0.97,
}

// DefaultPGrid and DefaultRGrid are Table 1's axes.
var (
	DefaultPGrid = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	DefaultRGrid = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
)

// Table1Config bounds the sweep.
type Table1Config struct {
	PGrid, RGrid []float64
	// MaxSites caps how many evaluation sites enter the sweep (the full
	// grid is |PGrid|·|RGrid| NTW runs per site). 0 means all.
	MaxSites int
	Workers  int
	// Seed drives the controlled annotator's coin flips.
	Seed int64
}

// Table1Experiment sweeps the controlled annotator of Sec. 7.4. The
// annotation model parameters for each cell are derived from the designed
// annotator itself (p1 = r; p2 from the target precision), not re-estimated,
// matching the controlled setup.
func Table1Experiment(ds *dataset.Dataset, cfg Table1Config) (*Table1Result, error) {
	if len(cfg.PGrid) == 0 {
		cfg.PGrid = DefaultPGrid
	}
	if len(cfg.RGrid) == 0 {
		cfg.RGrid = DefaultRGrid
	}
	if cfg.Seed == 0 {
		cfg.Seed = 777
	}
	models, err := defaultModels(ds)
	if err != nil {
		return nil, err
	}
	sites := ds.Eval()
	if cfg.MaxSites > 0 && len(sites) > cfg.MaxSites {
		sites = sites[:cfg.MaxSites]
	}

	type cellKey struct{ pi, ri int }
	type job struct {
		pi, ri, si int
	}
	var jobs []job
	for pi := range cfg.PGrid {
		for ri := range cfg.RGrid {
			for si := range sites {
				jobs = append(jobs, job{pi, ri, si})
			}
		}
	}
	f1s := make(map[cellKey][]float64)
	results := make([]struct {
		key cellKey
		f1  float64
		ok  bool
		err error
	}, len(jobs))

	par.For(len(jobs), cfg.Workers, func(ji int) {
		j := jobs[ji]
		site := sites[j.si]
		gold := site.Gold[ds.TypeName]
		prec, rec := cfg.PGrid[j.pi], cfg.RGrid[j.ri]
		annot, err := annotate.ControlledFor(site.Corpus, gold, rec, prec,
			cfg.Seed+int64(ji))
		if err != nil {
			results[ji].err = err
			return
		}
		labels := annot.Annotate(site.Corpus)
		if labels.Count() < 2 {
			return // cell sample skipped for this site
		}
		ind, err := NewInductor(KindXPath, site.Corpus)
		if err != nil {
			results[ji].err = err
			return
		}
		scorer := &rank.Scorer{
			Ann: rank.NewAnnotationModel(annotModelP(annot), rec),
			Pub: models.Scorer.Pub,
		}
		res, err := core.Learn(ind, labels, core.Config{Scorer: scorer})
		if err != nil {
			results[ji].err = fmt.Errorf("table1 site %s: %w", site.Name, err)
			return
		}
		results[ji].key = cellKey{j.pi, j.ri}
		results[ji].f1 = eval.Score(res.Extraction(site.Corpus), gold).F1
		results[ji].ok = true
	})
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.ok {
			f1s[r.key] = append(f1s[r.key], r.f1)
		}
	}

	out := &Table1Result{PGrid: cfg.PGrid, RGrid: cfg.RGrid, Sites: len(sites)}
	for pi := range cfg.PGrid {
		row := make([]float64, len(cfg.RGrid))
		for ri := range cfg.RGrid {
			vals := f1s[cellKey{pi, ri}]
			sum := 0.0
			for _, v := range vals {
				sum += v
			}
			if len(vals) > 0 {
				row[ri] = sum / float64(len(vals))
			}
		}
		out.F1 = append(out.F1, row)
	}
	return out, nil
}

// annotModelP converts a controlled annotator's per-incorrect-node labeling
// rate p2 into the annotation model's p parameter (p = 1 − p2, by the
// model's definition in Sec. 6).
func annotModelP(a *annotate.Controlled) float64 { return 1 - a.P2 }
