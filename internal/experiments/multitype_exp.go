package experiments

import (
	"fmt"

	"autowrap/internal/annotate"
	"autowrap/internal/core"
	"autowrap/internal/dataset"
	"autowrap/internal/eval"
	"autowrap/internal/gen"
	"autowrap/internal/multitype"
	"autowrap/internal/par"
	"autowrap/internal/rank"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// MultiTypeResult reproduces Figs. 3(a)/3(b): record-level accuracy of the
// joint name+zipcode extractor (NAIVE vs NTW), and the per-type accuracy of
// joint extraction compared against single-type extraction.
type MultiTypeResult struct {
	// Record-level accuracy (Fig. 3a).
	NaiveRecords eval.PRF
	NTWRecords   eval.PRF
	// Per-type node accuracy, joint vs single (Fig. 3b).
	NameMulti  eval.PRF
	NameSingle eval.PRF
	ZipMulti   eval.PRF
	ZipSingle  eval.PRF
	Sites      int
	Skipped    int
}

// MultiTypeConfig bounds the experiment.
type MultiTypeConfig struct {
	Workers int
	// MaxSites caps the evaluation subset (joint ranking is the costliest
	// experiment). 0 means all evaluation sites.
	MaxSites int
}

// MultiTypeExperiment runs Appendix A's evaluation on the DEALERS dataset:
// types name (dictionary annotator) and zipcode (regexp annotator).
func MultiTypeExperiment(ds *dataset.Dataset, cfg MultiTypeConfig) (*MultiTypeResult, error) {
	if ds.TypeName != "name" {
		return nil, fmt.Errorf("experiments: multi-type needs the DEALERS dataset, got %s", ds.Name)
	}
	zipAnnot := annotate.MustRegexp("zipcode", annotate.ZipcodePattern)

	// Learn models on the training half: the shared publication prior from
	// name gold, and per-type annotation parameters.
	models, err := defaultModels(ds)
	if err != nil {
		return nil, err
	}
	var zipStats annotate.Stats
	for _, s := range ds.Train() {
		zipStats = zipStats.Add(annotate.Measure(s.Corpus, zipAnnot.Annotate(s.Corpus), s.Gold["zip"]))
	}
	zipP, zipR := zipStats.ModelParams()
	zipModel := rank.NewAnnotationModel(zipP, zipR)
	nameModel := models.Scorer.Ann

	sites := ds.Eval()
	if cfg.MaxSites > 0 && len(sites) > cfg.MaxSites {
		sites = sites[:cfg.MaxSites]
	}

	type siteOut struct {
		naiveRec, ntwRec                           eval.PRF
		nameMulti, nameSingle, zipMulti, zipSingle eval.PRF
		skipped                                    bool
		err                                        error
	}
	outs := make([]siteOut, len(sites))
	par.For(len(sites), cfg.Workers, func(i int) {
		outs[i] = runMultiTypeSite(ds, sites[i], zipAnnot, nameModel, zipModel, models)
	})

	res := &MultiTypeResult{}
	var nr, tr, nm, ns, zm, zs []eval.PRF
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.skipped {
			res.Skipped++
			continue
		}
		nr = append(nr, o.naiveRec)
		tr = append(tr, o.ntwRec)
		nm = append(nm, o.nameMulti)
		ns = append(ns, o.nameSingle)
		zm = append(zm, o.zipMulti)
		zs = append(zs, o.zipSingle)
	}
	res.Sites = len(nr)
	res.NaiveRecords = eval.Macro(nr)
	res.NTWRecords = eval.Macro(tr)
	res.NameMulti = eval.Macro(nm)
	res.NameSingle = eval.Macro(ns)
	res.ZipMulti = eval.Macro(zm)
	res.ZipSingle = eval.Macro(zs)
	return res, nil
}

// recordPairs converts two-type records into ordinal pairs for scoring.
func recordPairs(recs []multitype.Record) [][2]int {
	out := make([][2]int, 0, len(recs))
	for _, r := range recs {
		if len(r) >= 2 {
			out = append(out, [2]int{r[0], r[1]})
		}
	}
	return out
}

func runMultiTypeSite(ds *dataset.Dataset, site *gen.Site, zipAnnot annotate.Annotator,
	nameModel, zipModel rank.AnnotationModel, models *dataset.Models) (out struct {
	naiveRec, ntwRec                           eval.PRF
	nameMulti, nameSingle, zipMulti, zipSingle eval.PRF
	skipped                                    bool
	err                                        error
}) {
	c := site.Corpus
	nameLabels := ds.Annotator.Annotate(c)
	zipLabels := zipAnnot.Annotate(c)
	if nameLabels.Count() < 2 || zipLabels.Count() < 2 {
		out.skipped = true
		return
	}
	mkInd := func() *wrapper.FeatureSpace { return xpinduct.New(c, xpinduct.Options{}) }

	types := []multitype.Type{
		{Name: "name", Inductor: mkInd(), Labels: nameLabels, Ann: nameModel},
		{Name: "zip", Inductor: mkInd(), Labels: zipLabels, Ann: zipModel},
	}

	// NAIVE joint baseline: run the inductor directly per type, assemble.
	nameNaive, err := types[0].Inductor.Induce(nameLabels)
	if err != nil {
		out.err = err
		return
	}
	zipNaive, err := types[1].Inductor.Induce(zipLabels)
	if err != nil {
		out.err = err
		return
	}
	naivePick := []wrapper.Wrapper{nameNaive, zipNaive}
	naiveRecords, _ := multitype.Assemble(c, types, naivePick)
	out.naiveRec = eval.RecordPRF(recordPairs(naiveRecords), site.GoldRecords)

	// NTW joint.
	res, err := multitype.Learn(c, types, multitype.Config{Pub: models.Scorer.Pub})
	if err != nil {
		out.err = fmt.Errorf("site %s multi-type: %w", site.Name, err)
		return
	}
	if res.Best == nil {
		out.skipped = true
		return
	}
	out.ntwRec = eval.RecordPRF(recordPairs(res.Best.Records), site.GoldRecords)
	out.nameMulti = eval.Score(res.Best.Wrappers[0].Extract(), site.Gold["name"])
	out.zipMulti = eval.Score(res.Best.Wrappers[1].Extract(), site.Gold["zip"])

	// Single-type runs for Fig. 3(b).
	nameRes, err := core.Learn(mkInd(), nameLabels, core.Config{
		Scorer: &rank.Scorer{Ann: nameModel, Pub: models.Scorer.Pub},
	})
	if err != nil {
		out.err = err
		return
	}
	out.nameSingle = eval.Score(nameRes.Extraction(c), site.Gold["name"])
	zipRes, err := core.Learn(mkInd(), zipLabels, core.Config{
		Scorer: &rank.Scorer{Ann: zipModel, Pub: models.Scorer.Pub},
	})
	if err != nil {
		out.err = err
		return
	}
	out.zipSingle = eval.Score(zipRes.Extraction(c), site.Gold["zip"])
	return
}
