// Package experiments contains one runner per table and figure of the
// paper's evaluation (Sec. 7 and Appendices A/B). Each runner returns a
// structured result that cmd/benchrun renders in the paper's format and
// that bench_test.go reports as benchmark metrics. DESIGN.md carries the
// experiment index mapping each figure to its runner.
package experiments

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"autowrap/internal/corpus"
	"autowrap/internal/dataset"
	"autowrap/internal/lr"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// ReadDictFile reads the CLIs' shared dictionary-file format: one entry
// per line, blank lines and '#' comments skipped. wrapinduce, wrapserve
// and wrapserved all accept it.
func ReadDictFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

// Inductor kinds used across experiments.
const (
	KindXPath = "xpath"
	KindLR    = "lr"
)

// NewInductor builds the named inductor over a site corpus.
func NewInductor(kind string, c *corpus.Corpus) (wrapper.Inductor, error) {
	switch kind {
	case KindXPath:
		return xpinduct.New(c, xpinduct.Options{}), nil
	case KindLR:
		return lr.New(c, 0), nil
	default:
		return nil, fmt.Errorf("experiments: unknown inductor kind %q", kind)
	}
}

// defaultModels learns the scorer from a dataset's training half with
// default segmentation and KDE settings.
func defaultModels(ds *dataset.Dataset) (*dataset.Models, error) {
	return dataset.LearnModels(ds.Train(), ds.TypeName, ds.Annotator,
		segment.Options{}, stats.KDEOptions{})
}
