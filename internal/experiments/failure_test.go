package experiments

import (
	"testing"

	"autowrap/internal/annotate"
	"autowrap/internal/dataset"
	"autowrap/internal/gen"
)

// TestAccuracySkipsUnannotatedSites: a dictionary with zero overlap must
// not crash the experiment — every site is counted as skipped.
func TestAccuracySkipsUnannotatedSites(t *testing.T) {
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 4, NumPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Swap in an annotator that never matches, but keep the real one for
	// model learning (LearnModels needs some labels only for (p, r); zero
	// labels there still fits the publication model).
	useless := annotate.NewDictionary("empty", []string{"zz qq xx"})
	broken := &dataset.Dataset{
		Name: ds.Name, TypeName: ds.TypeName, Sites: ds.Sites,
		Dict: ds.Dict, Annotator: useless,
	}
	res, err := AccuracyExperiment(broken, KindXPath, AccuracyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites != 0 || res.Skipped == 0 {
		t.Fatalf("sites=%d skipped=%d; want all skipped", res.Sites, res.Skipped)
	}
}

// TestEnumSkipsUnannotatedSites mirrors the same guarantee for the
// enumeration experiments.
func TestEnumSkipsUnannotatedSites(t *testing.T) {
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 3, NumPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	ds.Annotator = annotate.NewDictionary("empty", []string{"zz qq xx"})
	res, err := EnumExperiment(ds, KindXPath, EnumConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || res.Skipped != 3 {
		t.Fatalf("rows=%d skipped=%d", len(res.Rows), res.Skipped)
	}
}

// TestMultiTypeRequiresDealers guards the experiment precondition.
func TestMultiTypeRequiresDealers(t *testing.T) {
	ds, err := dataset.Disc(dataset.DiscOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MultiTypeExperiment(ds, MultiTypeConfig{}); err == nil {
		t.Fatal("expected error for a dataset without name/zip gold")
	}
}

// TestSingleEntitySkipsSitesWithoutLabels: an empty seed-title dictionary
// yields all-skipped, not a crash.
func TestSingleEntitySkipsSitesWithoutLabels(t *testing.T) {
	ds, err := dataset.Disc(dataset.DiscOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SingleEntityExperiment(ds, []string{"No Such Album Anywhere"}, SingleEntityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedNoAnno != len(ds.Sites) {
		t.Fatalf("skipped=%d, want %d", res.SkippedNoAnno, len(ds.Sites))
	}
}

// TestTable1RejectsDegenerateGrid: a site whose gold is empty cannot build
// the controlled annotator; the sweep must surface the error rather than
// hang or panic.
func TestControlledAnnotatorOnEmptyGold(t *testing.T) {
	pool := gen.BusinessPool(1, 100, 0)
	site, err := gen.DealerSite(gen.DealerConfig{Seed: 2, Pool: pool, NumPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := annotate.ControlledFor(site.Corpus, site.Corpus.EmptySet(), 0.3, 0.9, 1); err == nil {
		t.Fatal("expected degenerate-gold error")
	}
}
