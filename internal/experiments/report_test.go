package experiments

import (
	"strings"
	"testing"
	"time"

	"autowrap/internal/dataset"
	"autowrap/internal/eval"
	"autowrap/internal/par"
)

func TestReportEnum(t *testing.T) {
	res := &EnumResult{
		Dataset:  "DEALERS",
		Inductor: "xpath",
		Rows: []EnumRow{
			{Site: "s1", Labels: 8, WrapperSpace: 5, TopDownCalls: 5,
				BottomUpCalls: 30, NaiveCalls: 255, NaiveRan: true,
				TopDownTime: 100 * time.Microsecond, BottomUpTime: time.Millisecond},
			{Site: "s2", Labels: 20, WrapperSpace: 9, TopDownCalls: 9,
				BottomUpCalls: 120, NaiveCalls: 1 << 20,
				TopDownTime: 200 * time.Microsecond, BottomUpTime: 2 * time.Millisecond},
		},
		Skipped: 1,
	}
	var sb strings.Builder
	ReportEnum(&sb, res, 10)
	out := sb.String()
	for _, want := range []string{"DEALERS", "xpath", "s1", "s2", "255", "1.05e+06*", "median"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Truncation note appears when maxRows < len(rows).
	sb.Reset()
	ReportEnum(&sb, res, 1)
	if !strings.Contains(sb.String(), "more sites") {
		t.Fatal("missing truncation note")
	}
}

func TestReportAccuracyAndVariants(t *testing.T) {
	var sb strings.Builder
	ReportAccuracy(&sb, &AccuracyResult{
		Dataset: "DISC", Inductor: "lr", Sites: 7,
		Naive: eval.PRF{Precision: 0.3, Recall: 1, F1: 0.46},
		NTW:   eval.PRF{Precision: 1, Recall: 0.99, F1: 0.995},
	})
	out := sb.String()
	for _, want := range []string{"NAIVE", "NTW", "0.300", "0.995"} {
		if !strings.Contains(out, want) {
			t.Fatalf("accuracy report missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	ReportVariants(&sb, &VariantsResult{
		Dataset: "DEALERS", Inductor: "lr", Sites: 10,
		NTW: eval.PRF{F1: 0.9}, NTWL: eval.PRF{F1: 0.8}, NTWX: eval.PRF{F1: 0.7},
	})
	out = sb.String()
	for _, want := range []string{"NTW-L", "NTW-X", "0.900", "0.700"} {
		if !strings.Contains(out, want) {
			t.Fatalf("variants report missing %q:\n%s", want, out)
		}
	}
}

func TestReportTable1IncludesPaperValues(t *testing.T) {
	res := &Table1Result{
		PGrid: []float64{0.1, 0.9},
		RGrid: []float64{0.05, 0.3},
		F1:    [][]float64{{0.5, 0.9}, {0.7, 1.0}},
		Sites: 4,
	}
	var sb strings.Builder
	ReportTable1(&sb, res)
	out := sb.String()
	// The paper's corner values 0.41 and 0.97 must appear alongside ours.
	if !strings.Contains(out, "0.50/0.41") || !strings.Contains(out, "1.00/0.97") {
		t.Fatalf("table1 report lacks measured/paper cells:\n%s", out)
	}
}

func TestReportMultiTypeAndSingleEntity(t *testing.T) {
	var sb strings.Builder
	ReportMultiType(&sb, &MultiTypeResult{
		NaiveRecords: eval.PRF{Precision: 1, Recall: 0, F1: 0},
		NTWRecords:   eval.PRF{Precision: 1, Recall: 1, F1: 1},
		NameMulti:    eval.PRF{F1: 1}, NameSingle: eval.PRF{F1: 0.99},
		ZipMulti: eval.PRF{F1: 1}, ZipSingle: eval.PRF{F1: 1},
		Sites: 20,
	})
	if !strings.Contains(sb.String(), "Fig 3(a)") || !strings.Contains(sb.String(), "zipcode") {
		t.Fatalf("multitype report:\n%s", sb.String())
	}
	sb.Reset()
	ReportSingleEntity(&sb, &SingleEntityResult{Sites: 15, Correct: 15, WithTies: 15, TotalWinners: 41})
	if !strings.Contains(sb.String(), "15/15") {
		t.Fatalf("single-entity report:\n%s", sb.String())
	}
}

func TestNewInductorKinds(t *testing.T) {
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := ds.Sites[0].Corpus
	for _, kind := range []string{KindXPath, KindLR} {
		ind, err := NewInductor(kind, c)
		if err != nil {
			t.Fatal(err)
		}
		if ind.Corpus() != c {
			t.Fatal("inductor corpus mismatch")
		}
	}
	if _, err := NewInductor("bogus", c); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 100
		hits := make([]int32, n)
		par.For(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	par.For(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}
