// Package tablew implements TABLE, the hypothetical wrapper inductor the
// paper uses as its running example (Examples 1–3). TABLE works on a table
// of cells: a single label generalizes to itself, labels within one row (or
// column) generalize to that row (column), and labels spanning at least two
// rows and columns generalize to the whole table.
//
// As Example 3 shows, TABLE is the feature-based inductor whose features are
// (row, i) and (col, j); this package builds exactly that feature space, so
// it inherits well-behavedness and works with both enumeration algorithms.
package tablew

import (
	"fmt"
	"strings"

	"autowrap/internal/corpus"
	"autowrap/internal/dom"
	"autowrap/internal/wrapper"
)

// AttrRow and AttrCol are TABLE's two attributes.
var (
	AttrRow = wrapper.Attr{Kind: "row"}
	AttrCol = wrapper.Attr{Kind: "col"}
)

// New builds the TABLE inductor over a corpus whose pages contain <table>
// markup: every text node inside a <td> (or <th>) receives (row, i) and
// (col, j) features; text outside tables carries no features.
func New(c *corpus.Corpus) *wrapper.FeatureSpace {
	fs := wrapper.NewFeatureSpace("table", c, renderRule)
	for ord := 0; ord < c.NumTexts(); ord++ {
		n := c.Text(ord)
		cell := enclosingCell(n)
		if cell == nil {
			continue
		}
		row := cell.Parent // the <tr>
		if row == nil || !row.IsElement("tr") {
			continue
		}
		fs.AddFeature(ord, AttrRow, itoa(row.ChildNumber()))
		fs.AddFeature(ord, AttrCol, itoa(cell.ChildNumber()))
	}
	fs.Seal()
	return fs
}

// BuildGrid constructs a one-page corpus holding an rows×cols table whose
// cell contents come from cellText. It is the scaffolding for the paper's
// Example 1/2 tests and for property tests of enumeration algorithms.
func BuildGrid(rows, cols int, cellText func(r, c int) string) *corpus.Corpus {
	doc := dom.NewDocument()
	html := doc.Append(dom.NewElement("html"))
	body := html.Append(dom.NewElement("body"))
	table := body.Append(dom.NewElement("table"))
	for r := 1; r <= rows; r++ {
		tr := table.Append(dom.NewElement("tr"))
		for cc := 1; cc <= cols; cc++ {
			td := tr.Append(dom.NewElement("td"))
			td.Append(dom.NewText(cellText(r, cc)))
		}
	}
	return corpus.New([]*dom.Node{doc})
}

func enclosingCell(n *dom.Node) *dom.Node {
	for p := n.Parent; p != nil; p = p.Parent {
		if p.IsElement("td") || p.IsElement("th") {
			return p
		}
	}
	return nil
}

func renderRule(fs *wrapper.FeatureSpace, featIDs []int32) string {
	if len(featIDs) == 0 {
		return "TABLE(*)"
	}
	var parts []string
	for _, fid := range featIDs {
		parts = append(parts, fmt.Sprintf("%s=%s", fs.FeatureAttr(fid).Kind, fs.FeatureValue(fid)))
	}
	return "TABLE(" + strings.Join(parts, ",") + ")"
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
