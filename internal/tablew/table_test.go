package tablew

import (
	"fmt"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/wrapper"
)

// paperTable builds the 5×4 table of the paper's Example 1: row i holds the
// business listing (n_i, a_i, z_i, p_i) and column 1 holds the names.
func paperTable() *corpus.Corpus {
	return BuildGrid(5, 4, func(r, c int) string {
		return fmt.Sprintf("%c%d", "nazp"[c-1], r)
	})
}

// ordOf finds the ordinal of the cell with the given content.
func ordOf(t *testing.T, c *corpus.Corpus, content string) int {
	t.Helper()
	for ord := 0; ord < c.NumTexts(); ord++ {
		if c.TextContent(ord) == content {
			return ord
		}
	}
	t.Fatalf("cell %q not found", content)
	return -1
}

func labelSet(t *testing.T, c *corpus.Corpus, cells ...string) *bitset.Set {
	s := c.EmptySet()
	for _, cell := range cells {
		s.Add(ordOf(t, c, cell))
	}
	return s
}

func extractContents(c *corpus.Corpus, s *bitset.Set) map[string]bool {
	out := map[string]bool{}
	for _, v := range c.Contents(s) {
		out[v] = true
	}
	return out
}

func TestSingleLabelLearnsItself(t *testing.T) {
	c := paperTable()
	ind := New(c)
	w, err := ind.Induce(labelSet(t, c, "n1"))
	if err != nil {
		t.Fatal(err)
	}
	got := extractContents(c, w.Extract())
	if len(got) != 1 || !got["n1"] {
		t.Fatalf("φ({n1}) = %v, want {n1}", got)
	}
}

func TestSameColumnGeneralizesToColumn(t *testing.T) {
	c := paperTable()
	ind := New(c)
	w, err := ind.Induce(labelSet(t, c, "n1", "n2"))
	if err != nil {
		t.Fatal(err)
	}
	got := extractContents(c, w.Extract())
	want := []string{"n1", "n2", "n3", "n4", "n5"}
	if len(got) != len(want) {
		t.Fatalf("φ({n1,n2}) = %v", got)
	}
	for _, v := range want {
		if !got[v] {
			t.Fatalf("column wrapper missing %s: %v", v, got)
		}
	}
}

func TestSameRowGeneralizesToRow(t *testing.T) {
	c := paperTable()
	ind := New(c)
	w, err := ind.Induce(labelSet(t, c, "n4", "a4"))
	if err != nil {
		t.Fatal(err)
	}
	got := extractContents(c, w.Extract())
	want := []string{"n4", "a4", "z4", "p4"}
	if len(got) != len(want) {
		t.Fatalf("φ({n4,a4}) = %v", got)
	}
	for _, v := range want {
		if !got[v] {
			t.Fatalf("row wrapper missing %s", v)
		}
	}
}

func TestSpanningLabelsGeneralizeToTable(t *testing.T) {
	c := paperTable()
	ind := New(c)
	// {a4, z5} spans two rows and two columns (paper Example 1).
	w, err := ind.Induce(labelSet(t, c, "a4", "z5"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Extract().Count() != 20 {
		t.Fatalf("φ({a4,z5}) has %d cells, want the whole table (20)", w.Extract().Count())
	}
}

func TestClosureProperty(t *testing.T) {
	c := paperTable()
	ind := New(c)
	// Paper: {n1,n2} generalizes to the first column, which includes n4;
	// starting from {n1,n2,n4} still gives the first column.
	w1, _ := ind.Induce(labelSet(t, c, "n1", "n2"))
	w2, _ := ind.Induce(labelSet(t, c, "n1", "n2", "n4"))
	if !w1.Extract().Equal(w2.Extract()) {
		t.Fatal("closure violated on the paper's example")
	}
}

func TestWellBehaved(t *testing.T) {
	c := paperTable()
	ind := New(c)
	labels := labelSet(t, c, "n1", "n2", "n4", "a4", "z5")
	if err := wrapper.CheckWellBehaved(ind, labels); err != nil {
		t.Fatal(err)
	}
}

func TestRuleRendering(t *testing.T) {
	c := paperTable()
	ind := New(c)
	w, _ := ind.Induce(labelSet(t, c, "n1", "n2"))
	if w.Rule() != "TABLE(col=1)" {
		t.Fatalf("rule = %q", w.Rule())
	}
	w, _ = ind.Induce(labelSet(t, c, "a4", "z5"))
	if w.Rule() != "TABLE(*)" {
		t.Fatalf("whole-table rule = %q", w.Rule())
	}
}

func TestTextOutsideTableHasNoFeatures(t *testing.T) {
	// A page with a header outside the table: single-label induction on a
	// featureless node generalizes to everything (no shared features).
	c := corpus.ParseHTML([]string{
		`<html><body><h1>Dealers</h1><table><tr><td>x</td></tr></table></body></html>`,
	})
	ind := New(c)
	w, err := ind.Induce(c.SetOf(ordOf(t, c, "Dealers")))
	if err != nil {
		t.Fatal(err)
	}
	if w.Extract().Count() != c.NumTexts() {
		t.Fatalf("featureless label should generalize to all text, got %d", w.Extract().Count())
	}
}

func TestEmptyLabelsRejected(t *testing.T) {
	c := paperTable()
	ind := New(c)
	if _, err := ind.Induce(c.EmptySet()); err == nil {
		t.Fatal("expected error on empty labels")
	}
}
