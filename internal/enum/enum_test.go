package enum

import (
	"fmt"
	"math/rand"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/tablew"
	"autowrap/internal/wrapper"
)

func paperTable() (*corpus.Corpus, *wrapper.FeatureSpace) {
	c := tablew.BuildGrid(5, 4, func(r, col int) string {
		return fmt.Sprintf("%c%d", "nazp"[col-1], r)
	})
	return c, tablew.New(c)
}

func ordOf(t *testing.T, c *corpus.Corpus, content string) int {
	t.Helper()
	for ord := 0; ord < c.NumTexts(); ord++ {
		if c.TextContent(ord) == content {
			return ord
		}
	}
	t.Fatalf("cell %q not found", content)
	return -1
}

func paperLabels(t *testing.T, c *corpus.Corpus) *bitset.Set {
	s := c.EmptySet()
	for _, cell := range []string{"n1", "n2", "n4", "a4", "z5"} {
		s.Add(ordOf(t, c, cell))
	}
	return s
}

func sigsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExample1NaiveFindsEightWrappers reproduces the paper's Example 1: the
// 32 subsets of the 5 labels produce exactly 8 unique wrappers — the five
// singletons, the first column, the fourth row and the whole table.
func TestExample1NaiveFindsEightWrappers(t *testing.T) {
	c, ind := paperTable()
	res, err := Naive(ind, paperLabels(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 8 {
		t.Fatalf("wrapper space size = %d, want 8", len(res.Items))
	}
	if res.Calls != 31 {
		t.Fatalf("naive calls = %d, want 31", res.Calls)
	}
	sizes := map[int]int{}
	for _, it := range res.Items {
		sizes[it.Wrapper.Extract().Count()]++
	}
	// 5 singletons, one column of 5, one row of 4, the table of 20.
	if sizes[1] != 5 || sizes[5] != 1 || sizes[4] != 1 || sizes[20] != 1 {
		t.Fatalf("wrapper output sizes = %v", sizes)
	}
}

// TestExample2BottomUp reproduces Example 2: BottomUp yields the same 8
// wrappers.
func TestExample2BottomUp(t *testing.T) {
	c, ind := paperTable()
	labels := paperLabels(t, c)
	naive, err := Naive(ind, labels)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := BottomUp(ind, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sigsEqual(naive.Signatures(), bu.Signatures()) {
		t.Fatalf("BottomUp wrapper space differs from naive: %d vs %d wrappers",
			len(bu.Items), len(naive.Items))
	}
}

// TestExample2TopDown: the TopDown trace of Sec. 4.2 produces the same
// 8 subsets/wrappers.
func TestExample2TopDown(t *testing.T) {
	c, ind := paperTable()
	labels := paperLabels(t, c)
	naive, _ := Naive(ind, labels)
	td, err := TopDown(ind, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sigsEqual(naive.Signatures(), td.Signatures()) {
		t.Fatalf("TopDown wrapper space differs from naive: %d vs %d wrappers",
			len(td.Items), len(naive.Items))
	}
	// Theorem 3: exactly k calls.
	if td.Calls != int64(len(naive.Items)) {
		t.Fatalf("TopDown made %d calls, want k = %d", td.Calls, len(naive.Items))
	}
}

// TestTheorem2CallBound: BottomUp makes at most k·|L| inductor calls.
func TestTheorem2CallBound(t *testing.T) {
	c, ind := paperTable()
	labels := paperLabels(t, c)
	res, err := BottomUp(ind, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := int64(len(res.Items))
	bound := k * int64(labels.Count())
	if res.Calls > bound {
		t.Fatalf("BottomUp calls %d exceed k·|L| = %d", res.Calls, bound)
	}
}

// TestFullGridWrapperSpace: the paper states that all n² labels on an n×n
// table yield n² + 2n + 1 unique wrappers.
func TestFullGridWrapperSpace(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		c := tablew.BuildGrid(n, n, func(r, col int) string {
			return fmt.Sprintf("c%d_%d", r, col)
		})
		ind := tablew.New(c)
		labels := c.FullSet()
		td, err := TopDown(ind, labels, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := n*n + 2*n + 1
		if len(td.Items) != want {
			t.Fatalf("n=%d: wrapper space = %d, want n²+2n+1 = %d", n, len(td.Items), want)
		}
		bu, err := BottomUp(ind, labels, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(bu.Items) != want {
			t.Fatalf("n=%d: BottomUp wrapper space = %d, want %d", n, len(bu.Items), want)
		}
	}
}

// TestRandomLabelEquivalence is the property test: on random label subsets
// of random grids, Naive, BottomUp and TopDown agree exactly.
func TestRandomLabelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 40; iter++ {
		rows := 2 + rng.Intn(4)
		cols := 2 + rng.Intn(4)
		c := tablew.BuildGrid(rows, cols, func(r, col int) string {
			return fmt.Sprintf("c%d_%d", r, col)
		})
		ind := tablew.New(c)
		labels := c.EmptySet()
		nLabels := 1 + rng.Intn(min(10, rows*cols))
		for labels.Count() < nLabels {
			labels.Add(rng.Intn(c.NumTexts()))
		}
		naive, err := Naive(ind, labels)
		if err != nil {
			t.Fatal(err)
		}
		bu, err := BottomUp(ind, labels, Options{})
		if err != nil {
			t.Fatal(err)
		}
		td, err := TopDown(ind, labels, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sigsEqual(naive.Signatures(), bu.Signatures()) {
			t.Fatalf("iter %d: BottomUp != Naive (%d vs %d)", iter, len(bu.Items), len(naive.Items))
		}
		if !sigsEqual(naive.Signatures(), td.Signatures()) {
			t.Fatalf("iter %d: TopDown != Naive (%d vs %d)", iter, len(td.Items), len(naive.Items))
		}
		if td.Calls != int64(len(naive.Items)) {
			t.Fatalf("iter %d: TopDown calls %d != k %d", iter, td.Calls, len(naive.Items))
		}
		if bu.Calls > int64(len(naive.Items))*int64(labels.Count()) {
			t.Fatalf("iter %d: BottomUp exceeded Theorem 2 bound", iter)
		}
	}
}

func TestNaiveRejectsTooManyLabels(t *testing.T) {
	c := tablew.BuildGrid(6, 6, func(r, col int) string {
		return fmt.Sprintf("c%d_%d", r, col)
	})
	ind := tablew.New(c)
	labels := c.FullSet() // 36 labels
	if _, err := Naive(ind, labels); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestNaiveCallsFormula(t *testing.T) {
	if NaiveCalls(5) != 31 {
		t.Fatalf("NaiveCalls(5) = %v", NaiveCalls(5))
	}
	if NaiveCalls(20) != (1<<20)-1 {
		t.Fatalf("NaiveCalls(20) = %v", NaiveCalls(20))
	}
}

func TestEmptyLabelSets(t *testing.T) {
	c, ind := paperTable()
	empty := c.EmptySet()
	for _, algo := range []string{AlgoNaive, AlgoBottomUp, AlgoTopDown} {
		res, err := Run(algo, ind, empty, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Items) != 0 {
			t.Fatalf("%s on empty labels produced wrappers", algo)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	c, ind := paperTable()
	labels := paperLabels(t, c)
	for _, algo := range []string{AlgoNaive, AlgoBottomUp, AlgoTopDown} {
		res, err := Run(algo, ind, labels, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Items) != 8 {
			t.Fatalf("%s found %d wrappers", algo, len(res.Items))
		}
	}
	if _, err := Run("bogus", ind, labels, Options{}); err == nil {
		t.Fatal("expected unknown-algorithm error")
	}
}

func TestMaxCallsGuard(t *testing.T) {
	c, ind := paperTable()
	labels := paperLabels(t, c)
	if _, err := BottomUp(ind, labels, Options{MaxCalls: 2}); err == nil {
		t.Fatal("expected call-budget error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
