// Package enum implements the wrapper-space enumeration algorithms of the
// paper's Sec. 4: given a set of noisy labels L and a wrapper inductor φ,
// compute W(L) = {φ(L1) | ∅ ≠ L1 ⊆ L} — the set of distinct wrappers any
// subset of the labels can produce — without invoking φ on all 2^|L|
// subsets.
//
//   - Naive exhaustively enumerates subsets (the baseline of Figs. 2a/2b).
//   - BottomUp (Algorithm 1) works for any well-behaved blackbox inductor
//     and makes at most k·|L| inductor calls (Theorems 1–2).
//   - TopDown (Algorithm 2) works for feature-based inductors and makes
//     exactly k calls (Theorem 3).
//
// Following the paper's Example 1 (32 subsets → 8 wrappers), the empty
// subset is excluded from the wrapper space.
package enum

import (
	"fmt"
	"math"
	"sort"

	"autowrap/internal/bitset"
	"autowrap/internal/wrapper"
)

// Item is one enumerated wrapper together with the (closed) label subset
// that produced it.
type Item struct {
	Wrapper wrapper.Wrapper
	Labels  *bitset.Set
}

// Result is the output of an enumeration run.
type Result struct {
	Items []Item
	// Calls is the number of inductor invocations the algorithm made.
	Calls int64
}

// Wrappers returns just the wrappers.
func (r *Result) Wrappers() []wrapper.Wrapper {
	out := make([]wrapper.Wrapper, len(r.Items))
	for i, it := range r.Items {
		out[i] = it.Wrapper
	}
	return out
}

// Signatures returns the sorted output signatures; tests compare
// enumerations through this canonical form.
func (r *Result) Signatures() []uint64 {
	out := make([]uint64, len(r.Items))
	for i, it := range r.Items {
		out[i] = it.Wrapper.Extract().Signature()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dedup tracks unique wrappers by extraction output.
type dedup struct {
	bySig map[uint64][]int
	items []Item
}

func newDedup() *dedup { return &dedup{bySig: make(map[uint64][]int)} }

// add registers the wrapper unless an output-equal one is present; returns
// whether it was new.
func (d *dedup) add(w wrapper.Wrapper, labels *bitset.Set) bool {
	out := w.Extract()
	sig := out.Signature()
	for _, i := range d.bySig[sig] {
		if d.items[i].Wrapper.Extract().Equal(out) {
			return false
		}
	}
	d.bySig[sig] = append(d.bySig[sig], len(d.items))
	d.items = append(d.items, Item{Wrapper: w, Labels: labels})
	return true
}

// MaxNaiveLabels bounds the exhaustive enumeration; 2^20 calls is already
// prohibitively slow, mirroring the paper's "naive method is not plotted
// when it gets too large".
const MaxNaiveLabels = 20

// NaiveCalls returns the number of inductor calls exhaustive enumeration
// would make for n labels (2^n − 1); Figs. 2(a)/2(b) plot this value even
// where the naive run itself is skipped.
func NaiveCalls(n int) float64 {
	return math.Exp2(float64(n)) - 1
}

// Naive enumerates the wrapper space by invoking φ on every non-empty
// subset of L. Fails when |L| > MaxNaiveLabels.
func Naive(ind wrapper.Inductor, labels *bitset.Set) (*Result, error) {
	ords := labels.Indices()
	n := len(ords)
	if n == 0 {
		return &Result{}, nil
	}
	if n > MaxNaiveLabels {
		return nil, fmt.Errorf("enum: naive enumeration infeasible for %d labels (max %d)",
			n, MaxNaiveLabels)
	}
	d := newDedup()
	var calls int64
	universe := ind.Corpus().NumTexts()
	for mask := 1; mask < 1<<uint(n); mask++ {
		s := bitset.New(universe)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(ords[i])
			}
		}
		w, err := ind.Induce(s)
		if err != nil {
			return nil, err
		}
		calls++
		d.add(w, s)
	}
	return &Result{Items: d.items, Calls: calls}, nil
}

// Options bounds enumeration effort; zero values select the defaults.
type Options struct {
	// MaxCalls aborts the run when the inductor has been invoked this many
	// times (guard against non-well-behaved inductors). Default 5,000,000.
	MaxCalls int64
}

func (o Options) maxCalls() int64 {
	if o.MaxCalls <= 0 {
		return 5_000_000
	}
	return o.MaxCalls
}

// BottomUp implements Algorithm 1. It maintains a worklist Z of closed
// label subsets, always expands a smallest one by a single label, and
// records the closure φ̆(s∪ℓ) = φ(s∪ℓ) ∩ L of each expansion. For a
// well-behaved inductor it is sound and complete (Theorem 1) and makes at
// most k·|L| inductor calls (Theorem 2).
func BottomUp(ind wrapper.Inductor, labels *bitset.Set, opt Options) (*Result, error) {
	d := newDedup()
	var calls int64
	universe := ind.Corpus().NumTexts()
	labelOrds := labels.Indices()
	if len(labelOrds) == 0 {
		return &Result{}, nil
	}

	type entry struct {
		set  *bitset.Set
		size int
	}
	inZ := make(map[uint64][]*bitset.Set)      // membership for dedup
	expanded := make(map[uint64][]*bitset.Set) // already-processed sets
	contains := func(m map[uint64][]*bitset.Set, s *bitset.Set) bool {
		for _, t := range m[s.Signature()] {
			if t.Equal(s) {
				return true
			}
		}
		return false
	}
	insert := func(m map[uint64][]*bitset.Set, s *bitset.Set) {
		m[s.Signature()] = append(m[s.Signature()], s)
	}

	var z []entry
	empty := bitset.New(universe)
	z = append(z, entry{set: empty, size: 0})
	insert(inZ, empty)

	for len(z) > 0 {
		// Pick a smallest set (step 4). A linear scan keeps the code close
		// to the pseudocode; |Z| stays small in practice.
		best := 0
		for i := 1; i < len(z); i++ {
			if z[i].size < z[best].size {
				best = i
			}
		}
		s := z[best].set
		z[best] = z[len(z)-1]
		z = z[:len(z)-1]
		if contains(expanded, s) {
			continue
		}
		insert(expanded, s)

		for _, ell := range labelOrds {
			if s.Has(ell) {
				continue
			}
			if calls >= opt.maxCalls() {
				return nil, fmt.Errorf("enum: BottomUp exceeded %d inductor calls; inductor may not be well-behaved", opt.maxCalls())
			}
			ext := s.Clone()
			ext.Add(ell)
			w, err := ind.Induce(ext) // step 7
			if err != nil {
				return nil, err
			}
			calls++
			snew := bitset.And(w.Extract(), labels) // step 8: φ̆(s∪ℓ)
			d.add(w, snew)                          // step 9
			if !snew.Equal(labels) && !contains(inZ, snew) && !contains(expanded, snew) {
				insert(inZ, snew)
				z = append(z, entry{set: snew, size: snew.Count()}) // step 11
			}
		}
	}
	return &Result{Items: d.items, Calls: calls}, nil
}

// TopDown implements Algorithm 2 for feature-based inductors: starting from
// Z = {L}, each attribute pass subdivides every set in Z by that
// attribute's values; finally φ is called once per distinct set. For a
// feature-based inductor the produced sets are exactly the closed subsets
// of L, so the inductor is called exactly k times (Theorem 3).
func TopDown(ind wrapper.FeatureInductor, labels *bitset.Set, opt Options) (*Result, error) {
	if labels.Empty() {
		return &Result{}, nil
	}
	seen := make(map[uint64][]*bitset.Set)
	contains := func(s *bitset.Set) bool {
		for _, t := range seen[s.Signature()] {
			if t.Equal(s) {
				return true
			}
		}
		return false
	}
	var zs []*bitset.Set
	add := func(s *bitset.Set) {
		if s.Empty() || contains(s) {
			return
		}
		seen[s.Signature()] = append(seen[s.Signature()], s)
		zs = append(zs, s)
	}
	add(labels.Clone())

	for _, a := range ind.Attrs(labels) {
		snapshot := zs // sets added in this pass share a's value: no-op to resplit
		for _, s := range snapshot {
			for _, sub := range ind.Subdivide(s, a) {
				add(sub)
			}
		}
	}

	d := newDedup()
	var calls int64
	for _, s := range zs {
		if calls >= opt.maxCalls() {
			return nil, fmt.Errorf("enum: TopDown exceeded %d inductor calls", opt.maxCalls())
		}
		w, err := ind.Induce(s)
		if err != nil {
			return nil, err
		}
		calls++
		d.add(w, s)
	}
	return &Result{Items: d.items, Calls: calls}, nil
}

// Algorithm names for experiment reporting.
const (
	AlgoNaive    = "naive"
	AlgoBottomUp = "bottomup"
	AlgoTopDown  = "topdown"
)

// Run dispatches by algorithm name; the experiment harness uses it.
func Run(algo string, ind wrapper.Inductor, labels *bitset.Set, opt Options) (*Result, error) {
	switch algo {
	case AlgoNaive:
		return Naive(ind, labels)
	case AlgoBottomUp:
		return BottomUp(ind, labels, opt)
	case AlgoTopDown:
		find, ok := ind.(wrapper.FeatureInductor)
		if !ok {
			return nil, fmt.Errorf("enum: %s is not a feature-based inductor", ind.Name())
		}
		return TopDown(find, labels, opt)
	default:
		return nil, fmt.Errorf("enum: unknown algorithm %q", algo)
	}
}
