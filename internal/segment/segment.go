// Package segment implements the record segmentation of the paper's Sec. 6
// (illustrated in Fig. 7): the nodes of a candidate list X are used as
// record boundaries, and each segment is the preorder token sequence from
// one element of X up to (but excluding) the next. Segments may be
// cyclically shifted relative to true records — e.g. boundaries at names in
// "a1 n1 z1 p1 a2 n2 z2 p2" yield (n1 z1 p1 a2), (n2 z2 p2 ...) — but their
// structural similarity is preserved, which is all the ranking model needs.
package segment

import (
	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/textutil"
)

// Options bounds the feature computation.
type Options struct {
	// MaxSegmentTokens truncates very long segments (degenerate wrappers
	// can span whole pages). Default 300.
	MaxSegmentTokens int
	// MaxPairs bounds how many segment pairs contribute to the features.
	// Default 25.
	MaxPairs int
	// EditCap caps the edit-distance computation. Default 200.
	EditCap int
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentTokens <= 0 {
		o.MaxSegmentTokens = 300
	}
	if o.MaxPairs <= 0 {
		o.MaxPairs = 25
	}
	if o.EditCap <= 0 {
		o.EditCap = 200
	}
	return o
}

// Segments computes the record segments induced by boundary set x. Segments
// never cross page boundaries; a page containing fewer than two boundary
// nodes contributes none.
func Segments(c *corpus.Corpus, x *bitset.Set, opt Options) [][]int32 {
	opt = opt.withDefaults()
	var segs [][]int32
	perPage := make([][]int, len(c.Pages))
	x.ForEach(func(ord int) {
		p := c.PageOf(ord)
		perPage[p] = append(perPage[p], c.IndexInPage(ord))
	})
	for pi, idxs := range perPage {
		page := c.Pages[pi]
		for i := 0; i+1 < len(idxs); i++ {
			start := page.TextPos[idxs[i]]
			end := page.TextPos[idxs[i+1]]
			if end <= start {
				continue
			}
			seg := page.Tokens[start:end]
			if len(seg) > opt.MaxSegmentTokens {
				seg = seg[:opt.MaxSegmentTokens]
			}
			segs = append(segs, seg)
		}
	}
	return segs
}

// Features are the two list-goodness measures of Sec. 6.1.
type Features struct {
	// SchemaSize approximates the number of text attributes per record:
	// the number of #text tokens in the longest common substring between
	// pairs of segments (aggregated as the median over sampled pairs).
	SchemaSize int
	// Alignment measures how well records align: the maximum pairwise edit
	// distance between sampled segments (0 for a perfect list).
	Alignment int
	// NumSegments is the total number of record segments.
	NumSegments int
}

// Compute derives the features of the list x. ok is false when x induces
// fewer than two segments, in which case the features are undefined and the
// publication model must fall back to a penalty.
func Compute(c *corpus.Corpus, x *bitset.Set, opt Options) (Features, bool) {
	opt = opt.withDefaults()
	segs := Segments(c, x, opt)
	if len(segs) < 2 {
		return Features{NumSegments: len(segs)}, false
	}
	pairs := samplePairs(len(segs), opt.MaxPairs)
	var schemaSizes []int
	maxDist := 0
	for _, pr := range pairs {
		a, b := segs[pr[0]], segs[pr[1]]
		lcs := textutil.LongestCommonSubstring(a, b)
		schemaSizes = append(schemaSizes, countTextTokens(lcs))
		if d := textutil.EditDistanceCapped(a, b, opt.EditCap); d > maxDist {
			maxDist = d
		}
	}
	return Features{
		SchemaSize:  median(schemaSizes),
		Alignment:   maxDist,
		NumSegments: len(segs),
	}, true
}

// samplePairs deterministically picks up to max index pairs: all adjacent
// pairs first (they capture record-to-record drift), then wider strides for
// cross-page comparisons.
func samplePairs(n, max int) [][2]int {
	var out [][2]int
	for i := 0; i+1 < n && len(out) < max; i++ {
		out = append(out, [2]int{i, i + 1})
	}
	for stride := 2; stride < n && len(out) < max; stride *= 2 {
		for i := 0; i+stride < n && len(out) < max; i += stride {
			out = append(out, [2]int{i, i + stride})
		}
	}
	return out
}

func countTextTokens(seg []int32) int {
	c := 0
	for _, t := range seg {
		if t == corpus.TextTokenID {
			c++
		}
	}
	return c
}

func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	return s[len(s)/2]
}
