package segment

import (
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
)

// recordPage builds a page of repeated records: <div><b>NAME</b><span>ADDR
// </span><span>CITY</span></div>.
func recordPage(n int) string {
	var sb strings.Builder
	sb.WriteString("<html><body><div class='list'>")
	for i := 0; i < n; i++ {
		sb.WriteString("<div class='r'><b>name</b><span>addr</span><span>city</span></div>")
	}
	sb.WriteString("</div></body></html>")
	return sb.String()
}

func names(c *corpus.Corpus) *bitset.Set {
	return c.MatchingText(func(s string) bool { return s == "name" })
}

func TestSegmentsCountAndShape(t *testing.T) {
	c := corpus.ParseHTML([]string{recordPage(4)})
	segs := Segments(c, names(c), Options{})
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3 (k-1 for k=4 boundaries)", len(segs))
	}
	// All three segments are structurally identical.
	for i := 1; i < len(segs); i++ {
		if len(segs[i]) != len(segs[0]) {
			t.Fatalf("segment %d length %d != %d", i, len(segs[i]), len(segs[0]))
		}
		for j := range segs[i] {
			if segs[i][j] != segs[0][j] {
				t.Fatalf("segment %d differs at token %d", i, j)
			}
		}
	}
}

func TestSegmentsDoNotCrossPages(t *testing.T) {
	c := corpus.ParseHTML([]string{recordPage(2), recordPage(2)})
	segs := Segments(c, names(c), Options{})
	// 2 boundaries per page -> 1 segment per page.
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
}

func TestSegmentsFewBoundaries(t *testing.T) {
	c := corpus.ParseHTML([]string{recordPage(1)})
	if segs := Segments(c, names(c), Options{}); len(segs) != 0 {
		t.Fatalf("one boundary per page should yield no segments, got %d", len(segs))
	}
	if _, ok := Compute(c, names(c), Options{}); ok {
		t.Fatal("Compute should report not-ok for <2 segments")
	}
}

func TestCyclicShiftPreservesSimilarity(t *testing.T) {
	// Boundaries in the middle of records (the paper's shifted-record
	// observation): use the addr nodes instead of names.
	c := corpus.ParseHTML([]string{recordPage(5)})
	addrs := c.MatchingText(func(s string) bool { return s == "addr" })
	f1, ok1 := Compute(c, names(c), Options{})
	f2, ok2 := Compute(c, addrs, Options{})
	if !ok1 || !ok2 {
		t.Fatal("both boundary choices must segment")
	}
	if f1.Alignment != f2.Alignment {
		t.Fatalf("shifted records should align equally: %d vs %d", f1.Alignment, f2.Alignment)
	}
	if f1.SchemaSize != f2.SchemaSize {
		t.Fatalf("shifted records should share schema size: %d vs %d", f1.SchemaSize, f2.SchemaSize)
	}
}

func TestFeaturesOnRegularList(t *testing.T) {
	c := corpus.ParseHTML([]string{recordPage(6)})
	f, ok := Compute(c, names(c), Options{})
	if !ok {
		t.Fatal("expected features")
	}
	if f.Alignment != 0 {
		t.Fatalf("perfect list should have alignment 0, got %d", f.Alignment)
	}
	// Each record has 3 text nodes (name, addr, city).
	if f.SchemaSize != 3 {
		t.Fatalf("schema size = %d, want 3", f.SchemaSize)
	}
	if f.NumSegments != 5 {
		t.Fatalf("segments = %d", f.NumSegments)
	}
}

func TestFeaturesDegradeOnBadList(t *testing.T) {
	// A "list" mixing the real records with junk boundaries: header nav
	// items plus record names.
	var sb strings.Builder
	sb.WriteString("<html><body><ul><li>nav1</li><li>nav2</li></ul><div>")
	for i := 0; i < 4; i++ {
		sb.WriteString("<div class='r'><b>name</b><span>addr</span><span>city</span></div>")
	}
	sb.WriteString("</div></body></html>")
	c := corpus.ParseHTML([]string{sb.String()})

	good, _ := Compute(c, names(c), Options{})
	mixed := c.MatchingText(func(s string) bool {
		return s == "name" || strings.HasPrefix(s, "nav")
	})
	bad, _ := Compute(c, mixed, Options{})
	if bad.Alignment <= good.Alignment {
		t.Fatalf("mixed list should align worse: %d vs %d", bad.Alignment, good.Alignment)
	}
}

func TestSchemaSizeCountsTextTokens(t *testing.T) {
	// Records with 5 text fields.
	var sb strings.Builder
	sb.WriteString("<html><body>")
	for i := 0; i < 3; i++ {
		sb.WriteString("<div><b>name</b><i>a</i><i>b</i><i>c</i><i>d</i></div>")
	}
	sb.WriteString("</body></html>")
	c := corpus.ParseHTML([]string{sb.String()})
	f, ok := Compute(c, names(c), Options{})
	if !ok {
		t.Fatal("no features")
	}
	if f.SchemaSize != 5 {
		t.Fatalf("schema size = %d, want 5", f.SchemaSize)
	}
}

func TestMaxSegmentTokensTruncates(t *testing.T) {
	c := corpus.ParseHTML([]string{recordPage(3)})
	segs := Segments(c, names(c), Options{MaxSegmentTokens: 2})
	for _, s := range segs {
		if len(s) > 2 {
			t.Fatalf("segment longer than cap: %d", len(s))
		}
	}
}

func TestSamplePairsBounded(t *testing.T) {
	for _, n := range []int{2, 5, 30, 200} {
		pairs := samplePairs(n, 25)
		if len(pairs) > 25 {
			t.Fatalf("n=%d: %d pairs exceed cap", n, len(pairs))
		}
		for _, p := range pairs {
			if p[0] < 0 || p[1] >= n || p[0] >= p[1] {
				t.Fatalf("bad pair %v for n=%d", p, n)
			}
		}
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
	if median([]int{5}) != 5 {
		t.Fatal("singleton median")
	}
	if median([]int{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if m := median([]int{4, 1, 3, 2}); m != 3 {
		t.Fatalf("even median = %d (upper-mid convention)", m)
	}
}
