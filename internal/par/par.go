// Package par is the shared bounded-parallelism primitive under the batch
// engine, the core ranking loop and the experiment runners. It is a plain
// work-stealing index loop: callers get data-parallel fan-out with a hard
// worker bound and (optionally) context cancellation, and keep full control
// over where results land — fn writes into caller-owned, index-addressed
// storage, which is what makes parallel runs byte-identical to serial ones.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select GOMAXPROCS,
// and the count is capped at n (never spawn idle goroutines).
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines and
// waits for all of them. workers <= 0 selects GOMAXPROCS; workers == 1 (or
// n <= 1) degrades to a plain serial loop on the calling goroutine.
func For(n, workers int, fn func(i int)) {
	ForContext(context.Background(), n, workers, fn)
}

// WorkerPanic wraps a panic that happened inside fn on a pool goroutine so
// it can be rethrown on the calling goroutine — where the caller's recover
// (e.g. the engine's per-site isolation) can actually catch it. It keeps
// the worker's stack, which the rethrow would otherwise lose.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (w WorkerPanic) String() string {
	return fmt.Sprintf("%v\n\nworker goroutine stack:\n%s", w.Value, w.Stack)
}

// ForContext is For with cancellation: once ctx is done, workers stop
// claiming new indices (an fn already running is not interrupted). It
// returns ctx.Err() when the loop was cut short and nil when every index
// ran — even if ctx was cancelled while the last fn was executing.
//
// Indices are claimed with an atomic counter, so cancellation skips exactly
// a suffix of the claim order, never the middle of it — but because workers
// race for the counter, which indices ran is only deterministic in the
// serial (workers == 1) case.
//
// A panic inside fn does not kill the process from a pool goroutine: the
// first one is captured (the panicking worker stops, the others finish
// their remaining indices) and rethrown on the calling goroutine as a
// WorkerPanic, matching the serial path where fn's panic unwinds the
// caller directly.
func ForContext(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	var done atomic.Int64
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			fn(i)
			done.Add(1)
		}
	} else {
		var panicked atomic.Pointer[WorkerPanic]
		call := func(i int) (ok bool) {
			defer func() {
				if p := recover(); p != nil {
					panicked.CompareAndSwap(nil, &WorkerPanic{Value: p, Stack: debug.Stack()})
				}
			}()
			fn(i)
			return true
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if !call(i) {
						return
					}
					done.Add(1)
				}
			}()
		}
		wg.Wait()
		if p := panicked.Load(); p != nil {
			panic(*p)
		}
	}
	if int(done.Load()) == n {
		return nil
	}
	return ctx.Err()
}
