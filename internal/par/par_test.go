package par

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 53
		hits := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	For(0, 4, func(i int) { t.Fatal("fn called for n=0") })
	For(-3, 4, func(i int) { t.Fatal("fn called for n<0") })
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3 (capped at n)", got)
	}
	if got := Workers(-2, 0); got != 1 {
		t.Fatalf("Workers(-2, 0) = %d, want 1", got)
	}
}

func TestForContextCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForContext(ctx, 100, 4, func(i int) { ran.Add(1) })
	if err == nil {
		t.Fatal("want ctx error from pre-cancelled context")
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d indices ran under a pre-cancelled context, want 0", got)
	}
}

func TestForContextCancelMidLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	var ran atomic.Int32
	err := ForContext(ctx, n, 4, func(i int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("want ctx error after mid-loop cancel")
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d indices ran despite cancellation", n)
	}
}

// TestForContextCancelDuringLastIndexIsNil: a cancellation that lands while
// the final index is executing did not cut the loop short — every index
// ran, so ForContext reports success.
func TestForContextCancelDuringLastIndexIsNil(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 10
	var ran atomic.Int32
	err := ForContext(ctx, n, 1, func(i int) {
		ran.Add(1)
		if i == n-1 {
			cancel()
		}
	})
	if err != nil {
		t.Fatalf("err = %v, want nil when every index ran", err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d of %d", ran.Load(), n)
	}
}

func TestForContextZeroNIsNil(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForContext(ctx, 0, 4, func(i int) {}); err != nil {
		t.Fatalf("err = %v, want nil for n=0", err)
	}
}

func TestForContextSerialCancelIsPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen []int
	err := ForContext(ctx, 100, 1, func(i int) {
		seen = append(seen, i)
		if i == 4 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("want ctx error")
	}
	if len(seen) != 5 {
		t.Fatalf("serial cancel ran %v, want exactly [0..4]", seen)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial order broken: %v", seen)
		}
	}
}

func TestForContextPanicPropagatesToCaller(t *testing.T) {
	// A panic inside fn on a pool goroutine must be rethrown on the
	// calling goroutine (as a WorkerPanic carrying the worker stack), so
	// callers' recover-based isolation — the engine's per-site recovery
	// wrapping a nested scoring pool — keeps working. The other indices
	// still complete.
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if workers > 1 {
					wp, ok := p.(WorkerPanic)
					if !ok {
						t.Fatalf("workers=%d: recovered %T, want WorkerPanic", workers, p)
					}
					if wp.Value != "boom-7" || len(wp.Stack) == 0 {
						t.Fatalf("workers=%d: WorkerPanic = %+v", workers, wp)
					}
					if !strings.Contains(wp.String(), "boom-7") {
						t.Fatalf("workers=%d: String() lacks the value: %s", workers, wp)
					}
				}
			}()
			For(32, workers, func(i int) {
				if i == 7 {
					panic("boom-7")
				}
				ran.Add(1)
			})
		}()
		if workers > 1 && ran.Load() != 31 {
			t.Fatalf("workers=%d: %d healthy indices ran, want 31", workers, ran.Load())
		}
	}
}
