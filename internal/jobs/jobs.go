// Package jobs is the serving daemon's asynchronous maintenance plane: a
// bounded queue of typed background jobs (wrapper learning, drift repair)
// executed on a worker pool that is fully isolated from the extraction hot
// path. Learning a site takes orders of magnitude longer than extracting a
// page; holding an HTTP request open through a re-learn couples the two
// and lets either starve the other. Instead, submission is an O(1) enqueue
// that fails fast when the queue is full, execution happens on the
// manager's own goroutines (its own pool sizing, nothing shared with the
// extract worker pools or the admission gate), and callers observe
// progress through snapshots: queued → running → done | failed | canceled.
//
// The manager keeps every live job plus a bounded history of finished
// ones, so GET /v1/jobs stays an O(jobs) introspection endpoint rather
// than an unbounded memory leak. Drain closes the plane down the way a
// serving process wants: new submissions rejected, queued jobs canceled
// (they never started; rerunning them later is safe), running jobs waited
// for up to the caller's deadline and then canceled through their context.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Kind types a job. The two maintenance verbs mirror the wrapper
// lifecycle: learn a new site, repair a drifted one.
type Kind string

const (
	// KindLearn is a first-time (or from-scratch) site learn.
	KindLearn Kind = "learn"
	// KindRepair is a drift re-learn of an already-served site.
	KindRepair Kind = "repair"
)

// State is a job's lifecycle position. Transitions are strictly
// queued → running → (done | failed | canceled), with one shortcut:
// a queued job canceled before a worker picks it up goes straight to
// canceled without ever running.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Runner is one job's work. It runs on a manager worker goroutine with the
// job's context (canceled by Cancel and by a drain deadline); progress
// publishes a human-readable phase string into the job's snapshot. The
// returned result lands in Snapshot.Result on success and must be
// JSON-marshalable.
type Runner func(ctx context.Context, progress func(string)) (result any, err error)

// Errors returned by Submit and Cancel.
var (
	// ErrQueueFull reports a submission bounced off the bounded queue —
	// the maintenance plane's own backpressure signal (HTTP maps it
	// to 429).
	ErrQueueFull = errors.New("jobs: queue full, retry later")
	// ErrDraining reports a submission during shutdown.
	ErrDraining = errors.New("jobs: manager is draining")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished reports a cancel of an already-terminal job.
	ErrFinished = errors.New("jobs: job already finished")
)

// Options sizes a Manager.
type Options struct {
	// Workers bounds concurrently running jobs (default 1). This pool is
	// the learn plane's — it shares nothing with the extraction pools, so
	// an extract burst cannot starve a learn and a learn cannot occupy an
	// extract slot.
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 16). Beyond
	// it, Submit fails fast with ErrQueueFull.
	QueueDepth int
	// History bounds retained finished jobs (default 256); the oldest
	// finished jobs are evicted first. Live (queued/running) jobs are
	// never evicted.
	History int
	// IDPrefix prefixes generated job IDs ("job-000001" becomes
	// "s2-job-000001" with prefix "s2-"). Job sequence numbers are
	// per-manager, so a sharded fleet gives each shard's manager a
	// distinct prefix to keep IDs unique fleet-wide — the front-end can
	// then resolve GET /v1/jobs/{id} by asking every shard.
	IDPrefix string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.History <= 0 {
		o.History = 256
	}
	return o
}

// job is the manager-owned mutable record; all fields are guarded by the
// manager's mutex except ctx/cancel (immutable after creation).
type job struct {
	id   string
	kind Kind
	site string
	run  Runner

	ctx    context.Context
	cancel context.CancelFunc

	// progress is written by the runner goroutine and read by snapshot
	// paths holding the manager lock; atomic keeps the two independent.
	progress atomic.Pointer[string]

	state     State
	errMsg    string
	result    any
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Snapshot is a point-in-time public view of one job.
type Snapshot struct {
	ID    string `json:"id"`
	Kind  Kind   `json:"kind"`
	Site  string `json:"site"`
	State State  `json:"state"`
	// Progress is the runner's latest phase string (running jobs only).
	Progress string `json:"progress,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Result is the runner's return value (done jobs only).
	Result      any       `json:"result,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	// QueuedMS is time spent waiting for a worker; RunMS the execution
	// time so far (or total, once terminal).
	QueuedMS int64 `json:"queued_ms"`
	RunMS    int64 `json:"run_ms"`
}

func (j *job) snapshotLocked(now time.Time) Snapshot {
	s := Snapshot{
		ID:          j.id,
		Kind:        j.kind,
		Site:        j.site,
		State:       j.state,
		Error:       j.errMsg,
		Result:      j.result,
		SubmittedAt: j.submitted,
	}
	if p := j.progress.Load(); p != nil {
		s.Progress = *p
	}
	switch {
	case j.state == StateQueued:
		s.QueuedMS = now.Sub(j.submitted).Milliseconds()
	case j.started.IsZero(): // canceled straight out of the queue
		s.QueuedMS = j.finished.Sub(j.submitted).Milliseconds()
	default:
		s.QueuedMS = j.started.Sub(j.submitted).Milliseconds()
		end := now
		if !j.finished.IsZero() {
			end = j.finished
		}
		s.RunMS = end.Sub(j.started).Milliseconds()
	}
	return s
}

// KindMetrics aggregates one kind's lifetime counters for /metrics.
type KindMetrics struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// TotalRunMS sums the run time of jobs that executed to a verdict
	// (done or failed); MeanRunMS is that sum over the same population.
	TotalRunMS int64   `json:"total_run_ms"`
	MeanRunMS  float64 `json:"mean_run_ms"`
}

// Metrics is the manager's point-in-time ledger.
type Metrics struct {
	Queued     int                    `json:"queued"`
	Running    int                    `json:"running"`
	Workers    int                    `json:"workers"`
	QueueDepth int                    `json:"queue_depth"`
	Kinds      map[string]KindMetrics `json:"kinds,omitempty"`
}

// Manager runs the maintenance plane: a bounded job queue drained by a
// fixed worker pool. Build one with New; it is safe for concurrent use.
type Manager struct {
	opt Options
	wg  sync.WaitGroup // worker goroutines

	mu       sync.Mutex
	cond     *sync.Cond // signaled on enqueue, broadcast on drain
	pending  []*job     // FIFO wait queue, length bounded by QueueDepth
	jobs     map[string]*job
	order    []*job // submission order; evicted finished jobs drop out
	seq      int64
	running  int
	finished int // terminal jobs currently retained in order
	draining bool
	idle     chan struct{} // closed+replaced whenever running hits 0
	kinds    map[Kind]*KindMetrics
}

// New starts a manager and its worker pool; zero options select defaults
// (1 worker, queue depth 16).
func New(opt Options) *Manager {
	opt = opt.withDefaults()
	m := &Manager{
		opt:   opt,
		jobs:  make(map[string]*job),
		idle:  make(chan struct{}),
		kinds: make(map[Kind]*KindMetrics),
	}
	m.cond = sync.NewCond(&m.mu)
	close(m.idle) // nothing running yet
	m.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues one job and returns its snapshot immediately — the
// caller polls Get for completion. It fails fast with ErrQueueFull when
// the bounded queue is full and ErrDraining during shutdown. The wait
// queue is a plain list, so a canceled queued job frees its slot at the
// moment of cancellation, not when a worker eventually reaches it.
func (m *Manager) Submit(kind Kind, site string, run Runner) (Snapshot, error) {
	if run == nil {
		return Snapshot{}, fmt.Errorf("jobs: submit %s/%s: nil runner", kind, site)
	}
	now := time.Now()
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Snapshot{}, ErrDraining
	}
	if len(m.pending) >= m.opt.QueueDepth {
		m.mu.Unlock()
		return Snapshot{}, ErrQueueFull
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.seq++
	j := &job{
		id:        fmt.Sprintf("%sjob-%06d", m.opt.IDPrefix, m.seq),
		kind:      kind,
		site:      site,
		run:       run,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: now,
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.kindLocked(kind).Submitted++
	snap := j.snapshotLocked(now)
	m.cond.Signal()
	m.mu.Unlock()
	return snap, nil
}

// kindLocked returns the kind's metrics cell, creating it on first use.
func (m *Manager) kindLocked(k Kind) *KindMetrics {
	km, ok := m.kinds[k]
	if !ok {
		km = &KindMetrics{}
		m.kinds[k] = km
	}
	return km
}

// finishLocked records a job's transition to a terminal state and evicts
// the oldest finished jobs beyond the history bound. The finished counter
// keeps the common path O(1); the compaction scan only runs when the
// bound is actually exceeded. Dropping the Runner closure here matters:
// it captures the job's page corpus (up to MaxPages of HTML), and the
// finished history must retain reports, not corpora.
func (m *Manager) finishLocked(j *job) {
	j.run = nil
	m.finished++
	if m.finished <= m.opt.History {
		return
	}
	keep := m.order[:0]
	for _, j := range m.order {
		if m.finished > m.opt.History && j.state.Terminal() {
			delete(m.jobs, j.id)
			m.finished--
			continue
		}
		keep = append(keep, j)
	}
	m.order = keep
}

// Get returns one job's snapshot.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j.snapshotLocked(time.Now()), nil
}

// List returns every retained job in submission order (live jobs plus
// the bounded finished history; order is append-only and compaction
// preserves it, so no re-sort — which would go wrong anyway once ids
// outgrow their zero padding).
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	out := make([]Snapshot, 0, len(m.order))
	for _, j := range m.order {
		out = append(out, j.snapshotLocked(now))
	}
	return out
}

// Cancel stops a job: a queued job flips straight to canceled (its runner
// never starts), a running job gets its context canceled and reaches the
// canceled state when its runner returns. Canceling a finished job returns
// ErrFinished.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.state {
	case StateQueued:
		// Remove from the wait queue right away: the slot frees for new
		// submissions immediately, not when a worker reaches the tombstone.
		for i, p := range m.pending {
			if p == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		j.state = StateCanceled
		j.finished = time.Now()
		m.kindLocked(j.kind).Canceled++
		m.finishLocked(j)
		snap := j.snapshotLocked(j.finished)
		m.mu.Unlock()
		j.cancel()
		return snap, nil
	case StateRunning:
		snap := j.snapshotLocked(time.Now())
		m.mu.Unlock()
		j.cancel() // worker finalizes the state when the runner returns
		return snap, nil
	default:
		snap := j.snapshotLocked(time.Now())
		m.mu.Unlock()
		return snap, ErrFinished
	}
}

// Metrics reads the ledger.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		Queued:     len(m.pending),
		Running:    m.running,
		Workers:    m.opt.Workers,
		QueueDepth: m.opt.QueueDepth,
		Kinds:      make(map[string]KindMetrics, len(m.kinds)),
	}
	for k, km := range m.kinds {
		c := *km
		if ran := c.Done + c.Failed; ran > 0 {
			c.MeanRunMS = float64(c.TotalRunMS) / float64(ran)
		}
		out.Kinds[string(k)] = c
	}
	return out
}

// worker claims and runs queued jobs until Drain empties the queue and
// flips draining.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.claim()
		if j == nil {
			return
		}
		res, err := runIsolated(j)

		m.mu.Lock()
		j.finished = time.Now()
		j.progress.Store(nil)
		km := m.kindLocked(j.kind)
		switch {
		case err == nil:
			j.state = StateDone
			j.result = res
			km.Done++
			km.TotalRunMS += j.finished.Sub(j.started).Milliseconds()
		case j.ctx.Err() != nil && errors.Is(err, context.Canceled):
			j.state = StateCanceled
			j.errMsg = err.Error()
			km.Canceled++
		default:
			j.state = StateFailed
			j.errMsg = err.Error()
			km.Failed++
			km.TotalRunMS += j.finished.Sub(j.started).Milliseconds()
		}
		m.running--
		if m.running == 0 {
			close(m.idle)
		}
		m.finishLocked(j)
		m.mu.Unlock()
		j.cancel() // release the context's resources
	}
}

// claim blocks for the next queued job, marking it running; nil means the
// manager drained and the worker should exit.
func (m *Manager) claim() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) == 0 && !m.draining {
		m.cond.Wait()
	}
	if len(m.pending) == 0 {
		return nil // draining, nothing left to run
	}
	j := m.pending[0]
	m.pending = m.pending[1:]
	j.state = StateRunning
	j.started = time.Now()
	m.running++
	if m.running == 1 {
		m.idle = make(chan struct{})
	}
	return j
}

// runIsolated executes the runner with panic isolation: a panicking learn
// must fail its own job, never kill the serving daemon.
func runIsolated(j *job) (res any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("jobs: %s %s panicked: %v\n%s", j.kind, j.site, p, debug.Stack())
		}
	}()
	return j.run(j.ctx, func(msg string) { j.progress.Store(&msg) })
}

// Drain shuts the plane down: new submissions are rejected, every queued
// job is canceled (it never started), and running jobs are waited for
// until ctx expires — then they are canceled through their contexts and
// waited for again so no runner outlives the call. The worker pool exits;
// the manager stays readable (Get/List/Metrics) but accepts no more work.
// Quiesce is the gentler shutdown that runs queued jobs to completion
// instead of canceling them.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return fmt.Errorf("jobs: already drained")
	}
	m.draining = true
	now := time.Now()
	canceled := m.pending
	m.pending = nil
	for _, j := range canceled {
		j.state = StateCanceled
		j.finished = now
		j.run = nil
		m.kindLocked(j.kind).Canceled++
		m.finished++ // eviction can wait; the plane is shutting down
	}
	m.cond.Broadcast() // wake idle workers so they observe draining + exit
	m.mu.Unlock()
	for _, j := range canceled {
		j.cancel()
	}

	// Wait for running jobs, then force-cancel on deadline.
	var err error
	select {
	case <-m.idleNow():
	case <-ctx.Done():
		err = ctx.Err()
		m.mu.Lock()
		var running []*job
		for _, j := range m.order {
			if j.state == StateRunning {
				running = append(running, j)
			}
		}
		m.mu.Unlock()
		for _, j := range running {
			j.cancel()
		}
	}
	m.wg.Wait()
	return err
}

// idleNow returns the current idle channel (closed when nothing runs).
func (m *Manager) idleNow() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idle
}

// Quiesce is the graceful sibling of Drain: new submissions are rejected
// immediately, but jobs already accepted — queued as well as running —
// execute to completion before the worker pool exits. This is the fleet
// shutdown contract ("no accepted job is dropped"): a learn that was
// 202-acknowledged finishes and persists even if SIGTERM lands while it
// is still waiting for a worker. Only when ctx expires first does
// Quiesce fall back to Drain semantics, canceling whatever is left. Like
// Drain, the manager stays readable afterwards but accepts no more work.
func (m *Manager) Quiesce(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return fmt.Errorf("jobs: already drained")
	}
	// Flipping draining with the queue intact is the whole mechanism:
	// claim keeps handing out pending jobs while draining and only tells
	// workers to exit once the queue is empty, so the pool runs it dry.
	m.draining = true
	m.cond.Broadcast() // wake idle workers so they can exit once dry
	m.mu.Unlock()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	// Deadline hit: cancel the remainder, Drain-style.
	m.mu.Lock()
	now := time.Now()
	canceled := m.pending
	m.pending = nil
	for _, j := range canceled {
		j.state = StateCanceled
		j.finished = now
		j.run = nil
		m.kindLocked(j.kind).Canceled++
		m.finished++ // eviction can wait; the plane is shutting down
	}
	var running []*job
	for _, j := range m.order {
		if j.state == StateRunning {
			running = append(running, j)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, j := range canceled {
		j.cancel()
	}
	for _, j := range running {
		j.cancel()
	}
	m.wg.Wait()
	return ctx.Err()
}
