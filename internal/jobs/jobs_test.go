package jobs_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autowrap/internal/jobs"
	"autowrap/internal/testutil/leakcheck"
)

// newManager builds a Manager with a goroutine leak check registered:
// once the test's own drain/quiesce finishes, every worker the manager
// started must be gone.
func newManager(t *testing.T, opt jobs.Options) *jobs.Manager {
	t.Helper()
	leakcheck.Check(t)
	return jobs.New(opt)
}

// waitState polls until the job reaches a terminal state (or the wanted
// one) and returns its snapshot.
func waitState(t *testing.T, m *jobs.Manager, id string, want jobs.State) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.State == want {
			return s
		}
		if s.State == jobs.StateDone || s.State == jobs.StateFailed || s.State == jobs.StateCanceled {
			t.Fatalf("job %s reached terminal state %s, want %s (err=%q)", id, s.State, want, s.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, s.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobLifecycleDone(t *testing.T) {
	m := newManager(t, jobs.Options{Workers: 1})
	defer m.Drain(context.Background())
	snap, err := m.Submit(jobs.KindLearn, "site-a", func(ctx context.Context, progress func(string)) (any, error) {
		progress("learning")
		return map[string]int{"records": 42}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != jobs.StateQueued || snap.Kind != jobs.KindLearn || snap.Site != "site-a" {
		t.Fatalf("submit snapshot = %+v", snap)
	}
	done := waitState(t, m, snap.ID, jobs.StateDone)
	if done.Result == nil || done.Error != "" {
		t.Fatalf("done snapshot = %+v", done)
	}
	met := m.Metrics()
	if met.Kinds["learn"].Done != 1 || met.Kinds["learn"].Submitted != 1 {
		t.Fatalf("metrics = %+v", met)
	}
}

func TestJobFailureAndPanicIsolation(t *testing.T) {
	m := newManager(t, jobs.Options{Workers: 1})
	defer m.Drain(context.Background())
	boom, err := m.Submit(jobs.KindRepair, "s", func(ctx context.Context, _ func(string)) (any, error) {
		return nil, errors.New("relearn produced no wrapper")
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitState(t, m, boom.ID, jobs.StateFailed); !strings.Contains(s.Error, "no wrapper") {
		t.Fatalf("failed snapshot = %+v", s)
	}

	// A panicking runner fails its job; the manager keeps working.
	pan, err := m.Submit(jobs.KindRepair, "s", func(ctx context.Context, _ func(string)) (any, error) {
		panic("induction exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitState(t, m, pan.ID, jobs.StateFailed); !strings.Contains(s.Error, "induction exploded") {
		t.Fatalf("panic snapshot = %+v", s)
	}
	ok, err := m.Submit(jobs.KindLearn, "s", func(ctx context.Context, _ func(string)) (any, error) {
		return "fine", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, ok.ID, jobs.StateDone)
}

func TestJobQueueFullBackpressure(t *testing.T) {
	block := make(chan struct{})
	m := newManager(t, jobs.Options{Workers: 1, QueueDepth: 2})
	defer func() { close(block); m.Drain(context.Background()) }()
	blocker := func(ctx context.Context, _ func(string)) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	// One running + two queued fills the plane.
	first, err := m.Submit(jobs.KindLearn, "s0", blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, jobs.StateRunning)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(jobs.KindLearn, fmt.Sprintf("s%d", i+1), blocker); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit(jobs.KindLearn, "s3", blocker); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("submit into full queue = %v, want ErrQueueFull", err)
	}
	met := m.Metrics()
	if met.Queued != 2 || met.Running != 1 {
		t.Fatalf("metrics = %+v", met)
	}

	// Canceling a queued job frees its slot immediately — the next
	// submission must be accepted even though the worker is still stuck
	// on the running job (a canceled tombstone must not hold the queue).
	list := m.List()
	var queuedID string
	for _, s := range list {
		if s.State == jobs.StateQueued {
			queuedID = s.ID
			break
		}
	}
	if _, err := m.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	if met := m.Metrics(); met.Queued != 1 {
		t.Fatalf("queued after cancel = %d, want 1", met.Queued)
	}
	if _, err := m.Submit(jobs.KindLearn, "s4", blocker); err != nil {
		t.Fatalf("submit after canceling a queued job = %v, want accepted", err)
	}
}

func TestJobCancelQueuedAndRunning(t *testing.T) {
	started := make(chan struct{})
	m := newManager(t, jobs.Options{Workers: 1})
	defer m.Drain(context.Background())
	running, err := m.Submit(jobs.KindRepair, "busy", func(ctx context.Context, _ func(string)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(jobs.KindRepair, "waiting", func(ctx context.Context, _ func(string)) (any, error) {
		return nil, errors.New("must never run")
	})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job first: it flips immediately and never runs.
	if s, err := m.Cancel(queued.ID); err != nil || s.State != jobs.StateCanceled {
		t.Fatalf("cancel queued = %+v, %v", s, err)
	}
	// Cancel the running one: its context fires, the worker finalizes.
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	s := waitState(t, m, running.ID, jobs.StateCanceled)
	if s.State != jobs.StateCanceled {
		t.Fatalf("running job after cancel = %+v", s)
	}
	// Canceling a finished job reports ErrFinished.
	if _, err := m.Cancel(running.ID); !errors.Is(err, jobs.ErrFinished) {
		t.Fatalf("cancel finished = %v, want ErrFinished", err)
	}
	if _, err := m.Cancel("job-999999"); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}
}

// TestJobDrainWithRunningJob pins the shutdown contract: queued jobs are
// canceled without running, the running job is waited for, and new
// submissions are rejected.
func TestJobDrainWithRunningJob(t *testing.T) {
	release := make(chan struct{})
	m := newManager(t, jobs.Options{Workers: 1})
	running, err := m.Submit(jobs.KindLearn, "slow", func(ctx context.Context, _ func(string)) (any, error) {
		<-release
		return "finished", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, jobs.StateRunning)
	queued, err := m.Submit(jobs.KindLearn, "never", func(ctx context.Context, _ func(string)) (any, error) {
		return nil, errors.New("must never run")
	})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()
	// Drain must reject new work immediately and cancel the queued job.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := m.Submit(jobs.KindLearn, "late", func(ctx context.Context, _ func(string)) (any, error) {
			return nil, nil
		}); errors.Is(err, jobs.ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions not rejected while draining")
		}
		time.Sleep(time.Millisecond)
	}
	if s, _ := m.Get(queued.ID); s.State != jobs.StateCanceled {
		t.Fatalf("queued job during drain = %s, want canceled", s.State)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v before the running job finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain = %v", err)
	}
	if s, _ := m.Get(running.ID); s.State != jobs.StateDone || s.Result != "finished" {
		t.Fatalf("running job after drain = %+v", s)
	}
}

// TestJobDrainDeadlineCancelsRunning: a runner that never returns on its
// own is force-canceled when the drain deadline expires.
func TestJobDrainDeadlineCancelsRunning(t *testing.T) {
	m := newManager(t, jobs.Options{Workers: 1})
	stuck, err := m.Submit(jobs.KindRepair, "stuck", func(ctx context.Context, _ func(string)) (any, error) {
		<-ctx.Done() // only a cancel gets this job off the worker
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, stuck.ID, jobs.StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want DeadlineExceeded", err)
	}
	if s, _ := m.Get(stuck.ID); s.State != jobs.StateCanceled {
		t.Fatalf("stuck job after forced drain = %+v", s)
	}
}

func TestJobHistoryEviction(t *testing.T) {
	m := newManager(t, jobs.Options{Workers: 2, History: 4, QueueDepth: 64})
	defer m.Drain(context.Background())
	var last jobs.Snapshot
	for i := 0; i < 12; i++ {
		s, err := m.Submit(jobs.KindLearn, fmt.Sprintf("s%d", i), func(ctx context.Context, _ func(string)) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = s
	}
	waitState(t, m, last.ID, jobs.StateDone)
	// Let stragglers finish, then check the retained window.
	deadline := time.Now().Add(2 * time.Second)
	for {
		list := m.List()
		terminal := 0
		for _, s := range list {
			if s.State == jobs.StateDone {
				terminal++
			}
		}
		if terminal == len(list) && len(list) <= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history not bounded: %d jobs retained", len(list))
		}
		time.Sleep(time.Millisecond)
	}
	// The newest job must have survived eviction.
	if _, err := m.Get(last.ID); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

// TestJobConcurrentSubmitCancelList is the lifecycle race test: many
// goroutines submit, cancel and list concurrently while workers run. Run
// with -race in CI; invariants: no panic, every submitted job reaches a
// terminal state, counters add up.
func TestJobConcurrentSubmitCancelList(t *testing.T) {
	m := newManager(t, jobs.Options{Workers: 4, QueueDepth: 1024, History: 2048})
	const submitters, perSubmitter = 8, 40
	var wg sync.WaitGroup
	ids := make(chan string, submitters*perSubmitter)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				kind := jobs.KindLearn
				if i%2 == 0 {
					kind = jobs.KindRepair
				}
				s, err := m.Submit(kind, fmt.Sprintf("site-%d-%d", g, i), func(ctx context.Context, progress func(string)) (any, error) {
					progress("working")
					select {
					case <-ctx.Done():
						return nil, ctx.Err()
					case <-time.After(time.Duration(i%3) * time.Millisecond):
					}
					if i%7 == 0 {
						return nil, errors.New("synthetic failure")
					}
					return i, nil
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- s.ID
				if i%5 == 0 {
					m.Cancel(s.ID) // racing the worker on purpose
				}
				if i%9 == 0 {
					m.List()
					m.Metrics()
				}
			}
		}(g)
	}
	wg.Wait()
	close(ids)

	deadline := time.Now().Add(10 * time.Second)
	for id := range ids {
		for {
			s, err := m.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if s.State == jobs.StateDone || s.State == jobs.StateFailed || s.State == jobs.StateCanceled {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished (state %s)", id, s.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
	met := m.Metrics()
	var done, failed, canceled, submitted int64
	for _, km := range met.Kinds {
		done += km.Done
		failed += km.Failed
		canceled += km.Canceled
		submitted += km.Submitted
	}
	if submitted != submitters*perSubmitter {
		t.Fatalf("submitted = %d, want %d", submitted, submitters*perSubmitter)
	}
	if done+failed+canceled != submitted {
		t.Fatalf("done %d + failed %d + canceled %d != submitted %d",
			done, failed, canceled, submitted)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain after storm: %v", err)
	}
}

// TestJobIDPrefix pins the fleet-uniqueness contract: managers with
// distinct prefixes can never hand out colliding job IDs.
func TestJobIDPrefix(t *testing.T) {
	m := newManager(t, jobs.Options{Workers: 1, IDPrefix: "s2-"})
	defer m.Drain(context.Background())
	snap, err := m.Submit(jobs.KindLearn, "site-a", func(ctx context.Context, progress func(string)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "s2-job-000001" {
		t.Fatalf("job ID = %q, want %q", snap.ID, "s2-job-000001")
	}
	if _, err := m.Get(snap.ID); err != nil {
		t.Fatalf("Get by prefixed ID: %v", err)
	}
}

// TestJobQuiesceRunsQueueDry pins the graceful-shutdown contract the
// fleet drain depends on: with one worker busy and more jobs queued
// behind it, Quiesce rejects new submissions immediately but every
// already-accepted job still runs to done — nothing queued is dropped.
func TestJobQuiesceRunsQueueDry(t *testing.T) {
	m := newManager(t, jobs.Options{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	var ran sync.WaitGroup
	ran.Add(3)
	slow := func(ctx context.Context, progress func(string)) (any, error) {
		<-release // first job holds the single worker until Quiesce starts
		ran.Done()
		return "ok", nil
	}
	fast := func(ctx context.Context, progress func(string)) (any, error) {
		ran.Done()
		return "ok", nil
	}
	first, err := m.Submit(jobs.KindRepair, "site-a", slow)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, jobs.StateRunning)
	second, err := m.Submit(jobs.KindRepair, "site-b", fast)
	if err != nil {
		t.Fatal(err)
	}
	third, err := m.Submit(jobs.KindLearn, "site-c", fast)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	ran.Wait()

	// New work is rejected...
	if _, err := m.Submit(jobs.KindLearn, "site-d", fast); !errors.Is(err, jobs.ErrDraining) {
		t.Fatalf("Submit after Quiesce: err = %v, want ErrDraining", err)
	}
	// ...but everything accepted before reached done, including the two
	// jobs that were still queued when Quiesce was called.
	for _, id := range []string{first.ID, second.ID, third.ID} {
		s, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.State != jobs.StateDone {
			t.Fatalf("job %s state = %s after Quiesce, want done", id, s.State)
		}
	}
}

// TestJobQuiesceDeadlineCancelsRemainder: when the context expires before
// the queue runs dry, Quiesce falls back to Drain semantics.
func TestJobQuiesceDeadlineCancelsRemainder(t *testing.T) {
	m := newManager(t, jobs.Options{Workers: 1, QueueDepth: 8})
	blocked := func(ctx context.Context, progress func(string)) (any, error) {
		<-ctx.Done() // only a cancel releases this job
		return nil, ctx.Err()
	}
	first, err := m.Submit(jobs.KindRepair, "site-a", blocked)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, jobs.StateRunning)
	second, err := m.Submit(jobs.KindRepair, "site-b", blocked)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Quiesce(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce err = %v, want DeadlineExceeded", err)
	}
	s1, _ := m.Get(first.ID)
	s2, _ := m.Get(second.ID)
	if s1.State != jobs.StateCanceled || s2.State != jobs.StateCanceled {
		t.Fatalf("states after deadline = %s/%s, want canceled/canceled", s1.State, s2.State)
	}
}
