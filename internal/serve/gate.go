package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports an admission rejection: the gate's executing slots
// and its wait queue are both full. The HTTP layer maps it to 429 with a
// Retry-After header — load is shed at the door with a cheap, explicit
// signal instead of letting unbounded requests pile onto the extraction
// pool until latency (and memory) collapse.
var ErrOverloaded = errors.New("serve: overloaded, retry later")

// GateOptions sizes the admission gate.
type GateOptions struct {
	// MaxInFlight bounds concurrently executing requests (default 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot beyond
	// MaxInFlight (default 4 x MaxInFlight; 0 selects the default, negative
	// disables queueing — reject as soon as the slots are full).
	MaxQueue int
	// RetryAfter is the client back-off hint attached to rejections
	// (default 1s).
	RetryAfter time.Duration
}

func (o GateOptions) withDefaults() GateOptions {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 4 * o.MaxInFlight
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Gate is the serving hot path's admission controller: a counting
// semaphore over execution slots plus a bounded wait queue. Requests beyond
// slots+queue are rejected immediately with ErrOverloaded; queued requests
// still honor their context deadline, so a caller never waits longer for
// admission than it would for the work itself.
type Gate struct {
	opt   GateOptions
	slots chan struct{} // execution permits, capacity MaxInFlight
	queue chan struct{} // wait permits, capacity MaxQueue

	inflight atomic.Int64
	waiting  atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	timedOut atomic.Int64
}

// NewGate builds an admission gate; zero options select defaults.
func NewGate(opt GateOptions) *Gate {
	opt = opt.withDefaults()
	return &Gate{
		opt:   opt,
		slots: make(chan struct{}, opt.MaxInFlight),
		queue: make(chan struct{}, opt.MaxQueue),
	}
}

// RetryAfter is the configured client back-off hint.
func (g *Gate) RetryAfter() time.Duration { return g.opt.RetryAfter }

// Acquire admits one request: it returns a release function to defer, or
// ErrOverloaded when slots and queue are both full, or the context's error
// when the deadline expires while queued. The fast path (free slot) is one
// channel send.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case g.slots <- struct{}{}:
		return g.admit(), nil
	default:
	}
	// Slots full: try to take a queue permit; reject when the queue is full
	// too — that, not slow service, is the overload signal.
	select {
	case g.queue <- struct{}{}:
	default:
		g.rejected.Add(1)
		return nil, ErrOverloaded
	}
	g.waiting.Add(1)
	defer func() {
		g.waiting.Add(-1)
		<-g.queue
	}()
	select {
	case g.slots <- struct{}{}:
		return g.admit(), nil
	case <-ctx.Done():
		// The caller's own deadline expired while queued. That is a
		// client timeout, not overload shedding — counting it as rejected
		// would make alerting on the rejected counter fire for slow
		// clients instead of a full queue.
		g.timedOut.Add(1)
		return nil, context.Cause(ctx)
	}
}

func (g *Gate) admit() func() {
	g.inflight.Add(1)
	g.admitted.Add(1)
	return func() {
		g.inflight.Add(-1)
		<-g.slots
	}
}

// GateSnapshot is a point-in-time view of the gate for /metrics.
// Rejected counts only queue-full overload shedding; TimedOut counts
// queued requests whose own context deadline expired first — the two
// signals mean different things to an operator (add capacity vs. slow
// clients) and are never conflated.
type GateSnapshot struct {
	InFlight    int64 `json:"in_flight"`
	Waiting     int64 `json:"waiting"`
	Admitted    int64 `json:"admitted"`
	Rejected    int64 `json:"rejected"`
	TimedOut    int64 `json:"timed_out"`
	MaxInFlight int   `json:"max_in_flight"`
	MaxQueue    int   `json:"max_queue"`
}

// Snapshot reads the gate's counters.
func (g *Gate) Snapshot() GateSnapshot {
	return GateSnapshot{
		InFlight:    g.inflight.Load(),
		Waiting:     g.waiting.Load(),
		Admitted:    g.admitted.Load(),
		Rejected:    g.rejected.Load(),
		TimedOut:    g.timedOut.Load(),
		MaxInFlight: g.opt.MaxInFlight,
		MaxQueue:    g.opt.MaxQueue,
	}
}
