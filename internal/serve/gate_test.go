package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"autowrap/internal/serve"
)

func TestGateFastPath(t *testing.T) {
	g := serve.NewGate(serve.GateOptions{MaxInFlight: 2})
	rel1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	if snap.InFlight != 2 || snap.Admitted != 2 || snap.Rejected != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	rel1()
	rel2()
	if got := g.Snapshot().InFlight; got != 0 {
		t.Fatalf("in-flight after release = %d", got)
	}
}

func TestGateRejectsWhenSlotsAndQueueFull(t *testing.T) {
	g := serve.NewGate(serve.GateOptions{MaxInFlight: 1, MaxQueue: -1}) // no queue
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("second acquire = %v, want ErrOverloaded", err)
	}
	if got := g.Snapshot().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

func TestGateQueueAdmitsWhenSlotFrees(t *testing.T) {
	g := serve.NewGate(serve.GateOptions{MaxInFlight: 1, MaxQueue: 1})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan struct{})
	go func() {
		rel2, err := g.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(admitted)
			return
		}
		close(admitted)
		rel2()
	}()
	// Wait until the second request is queued, then free the slot.
	deadline := time.Now().Add(2 * time.Second)
	for g.Snapshot().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("queued request was not admitted after release")
	}
}

func TestGateQueuedRequestHonorsDeadline(t *testing.T) {
	g := serve.NewGate(serve.GateOptions{MaxInFlight: 1, MaxQueue: 4})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire = %v, want DeadlineExceeded", err)
	}
	if got := g.Snapshot().Waiting; got != 0 {
		t.Fatalf("waiting after deadline = %d, want 0 (queue slot returned)", got)
	}
}

// TestGateTimedOutNotCountedAsRejected pins the satellite bugfix: a queued
// request whose own deadline expires is a client timeout, not overload
// shedding — it must land in TimedOut, never in Rejected, so alerting on
// the rejected counter keeps meaning "queue full".
func TestGateTimedOutNotCountedAsRejected(t *testing.T) {
	g := serve.NewGate(serve.GateOptions{MaxInFlight: 1, MaxQueue: 1})
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// A queued request timing out on its own deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	if _, err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire = %v, want DeadlineExceeded", err)
	}
	cancel()
	snap := g.Snapshot()
	if snap.TimedOut != 1 || snap.Rejected != 0 {
		t.Fatalf("after queued timeout: TimedOut=%d Rejected=%d, want 1/0", snap.TimedOut, snap.Rejected)
	}

	// A genuine queue-full rejection still counts as rejected: occupy the
	// single queue slot with a waiter, then overflow it.
	waiterIn := make(chan struct{})
	waiterCtx, waiterCancel := context.WithCancel(context.Background())
	go func() {
		close(waiterIn)
		g.Acquire(waiterCtx) //nolint:errcheck — canceled below
	}()
	<-waiterIn
	deadline := time.Now().Add(2 * time.Second)
	for g.Snapshot().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("overflow acquire = %v, want ErrOverloaded", err)
	}
	waiterCancel()
	snap = g.Snapshot()
	if snap.Rejected != 1 {
		t.Fatalf("after queue-full: Rejected=%d, want 1", snap.Rejected)
	}
}

// TestGateBoundedUnderStorm hammers the gate and checks the hard invariant:
// admitted concurrency never exceeds MaxInFlight, and every request either
// got admitted or rejected (no lost requests, no deadlock).
func TestGateBoundedUnderStorm(t *testing.T) {
	const inflight, queue, callers = 4, 8, 64
	g := serve.NewGate(serve.GateOptions{MaxInFlight: inflight, MaxQueue: queue})
	var wg sync.WaitGroup
	var mu sync.Mutex
	cur, peak, admitted, rejected := 0, 0, 0, 0
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(context.Background())
			if err != nil {
				mu.Lock()
				rejected++
				mu.Unlock()
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			admitted++
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			rel()
		}()
	}
	wg.Wait()
	if peak > inflight {
		t.Fatalf("peak concurrency %d exceeded MaxInFlight %d", peak, inflight)
	}
	if admitted+rejected != callers {
		t.Fatalf("admitted %d + rejected %d != %d callers", admitted, rejected, callers)
	}
	if admitted < inflight+queue {
		t.Fatalf("only %d admitted; slots+queue = %d should all have served",
			admitted, inflight+queue)
	}
	snap := g.Snapshot()
	if snap.Admitted != int64(admitted) || snap.Rejected != int64(rejected) {
		t.Fatalf("gate counters %+v disagree with observed %d/%d", snap, admitted, rejected)
	}
}
