// Package serve turns the learn/store/extract/drift pieces into one
// deployable serving system: a store-backed multi-site Dispatcher that
// keeps one hot-swappable extraction runtime per site, an admission Gate
// that bounds the request hot path with backpressure instead of collapse,
// per-site serving metrics (QPS, latency quantiles, runtime health), and an
// HTTP layer (Server) exposing extraction plus the wrapper-lifecycle admin
// operations — promote, rollback, drift repair — over the wire.
//
// The hot-swap design is the heart of the package. Each served site holds
// its current runtime behind an atomic pointer; a request loads the pointer
// once and extracts through that runtime to completion, so a concurrent
// store.Promote or Rollback never tears a wrapper out from under an
// in-flight request — the swap only changes what the *next* request loads.
// Staleness is detected through the store's per-site epoch counter (see
// store.Epoch): the pointer is re-validated against the epoch on every
// request, which costs one RLock'd map read, and rebuilt lazily when the
// registry moved. No file watching, no polling loop, no request ever served
// by a wrapper the store no longer considers active (beyond the one it
// already started with).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autowrap/internal/drift"
	"autowrap/internal/extract"
	"autowrap/internal/store"
)

// ErrUnknownSite reports a request for a site the store has no versions
// for. The HTTP layer maps it to 404.
var ErrUnknownSite = errors.New("serve: unknown site")

// ErrNoActiveVersion reports a site that exists in the store but has only
// unpromoted candidate versions — nothing is cleared to serve. The HTTP
// layer maps it to 409.
var ErrNoActiveVersion = errors.New("serve: site has no promoted version")

// Options configures a Dispatcher.
type Options struct {
	// Workers bounds each extraction run's worker pool (<= 0 selects
	// GOMAXPROCS). Single-page requests bypass the pool entirely.
	Workers int
	// Monitor, when set, gets every served site registered (with its stored
	// learn-time profile) and every completed page observed — the drift
	// detection half of the maintenance loop. On a version swap the site's
	// window is reset against the new profile.
	Monitor *drift.Monitor
	// RecentPages, when positive, keeps the last N raw page HTMLs served
	// per site (a bounded ring; string headers only, the request already
	// owns the bytes). This is the fuel for autonomous repair: a drifted
	// site's freshest pages are by definition the ones that just failed to
	// extract, and the maintenance scanner re-learns from exactly those —
	// no operator round-trip to collect a new corpus. 0 disables the cache
	// (and with it, auto-repair).
	RecentPages int
}

// Dispatcher routes extraction requests to per-site hot-swappable
// runtimes, all backed by one wrapper store. It is safe for concurrent
// use; build one per serving process.
type Dispatcher struct {
	store *store.Store
	opt   Options
	sites sync.Map // site name -> *siteState
}

// NewDispatcher builds a dispatcher over the store. Runtimes are built
// lazily on first request per site and rebuilt when the site's store epoch
// moves (Put/Promote/Rollback); call Refresh to swap eagerly.
func NewDispatcher(st *store.Store, opt Options) *Dispatcher {
	return &Dispatcher{store: st, opt: opt}
}

// Store returns the backing wrapper store.
func (d *Dispatcher) Store() *store.Store { return d.store }

// Monitor returns the drift monitor wired into served runtimes (nil when
// monitoring is disabled).
func (d *Dispatcher) Monitor() *drift.Monitor { return d.opt.Monitor }

// served is one immutable (runtime, version, epoch) binding. Requests load
// it atomically and keep using it to completion; swaps publish a new one.
type served struct {
	entry store.Entry
	epoch uint64
	rt    *extract.Runtime
}

// siteState is the per-site slot: the atomic current binding, the rebuild
// lock serializing slow-path swaps, the site's serving metrics, and the
// bounded recent-page ring auto-repair re-learns from.
type siteState struct {
	name    string
	cur     atomic.Pointer[served]
	mu      sync.Mutex // serializes refresh; never held on the hot path
	metrics SiteMetrics

	pageMu   sync.Mutex
	pages    []string // ring of the last Options.RecentPages served HTMLs
	pageNext int
	pageN    int
}

// rememberPages records served page HTMLs into the site's bounded ring.
func (st *siteState) rememberPages(cap int, pages []extract.Page) {
	st.pageMu.Lock()
	defer st.pageMu.Unlock()
	if st.pages == nil {
		st.pages = make([]string, cap)
	}
	for i := range pages {
		if pages[i].HTML == "" {
			continue // pre-parsed pages carry no raw HTML to re-learn from
		}
		st.pages[st.pageNext] = pages[i].HTML
		st.pageNext = (st.pageNext + 1) % len(st.pages)
		if st.pageN < len(st.pages) {
			st.pageN++
		}
	}
}

// recentPages snapshots the ring, oldest first.
func (st *siteState) recentPages() []string {
	st.pageMu.Lock()
	defer st.pageMu.Unlock()
	if st.pageN == 0 {
		return nil
	}
	out := make([]string, 0, st.pageN)
	start := st.pageNext - st.pageN
	if start < 0 {
		start += len(st.pages)
	}
	for i := 0; i < st.pageN; i++ {
		out = append(out, st.pages[(start+i)%len(st.pages)])
	}
	return out
}

// runtime returns the site's current binding, rebuilding it when the store
// epoch moved. The fast path is one atomic load plus one store.Epoch read.
// A serving slot is only ever created for sites the store knows, so a
// stream of junk site names cannot grow the slot map without bound.
func (d *Dispatcher) runtime(site string) (*served, *siteState, error) {
	v, ok := d.sites.Load(site)
	if !ok {
		if _, known := d.store.Latest(site); !known {
			return nil, nil, fmt.Errorf("%w: %q", ErrUnknownSite, site)
		}
		v, _ = d.sites.LoadOrStore(site, &siteState{name: site})
	}
	st := v.(*siteState)
	cur := st.cur.Load()
	if cur != nil && cur.epoch == d.store.Epoch(site) {
		return cur, st, nil
	}
	sv, err := d.refresh(st)
	return sv, st, err
}

// refresh rebuilds the site's binding from the store under the site's
// rebuild lock. The epoch is read *before* the active entry, so a mutation
// landing between the two reads leaves the published binding stale in a
// detectable way — the next request sees the moved epoch and refreshes
// again. In-flight requests keep the binding they loaded; the swap is an
// atomic pointer publish, never an in-place mutation.
func (d *Dispatcher) refresh(st *siteState) (*served, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	epoch := d.store.Epoch(st.name)
	cur := st.cur.Load()
	if cur != nil && cur.epoch == epoch {
		return cur, nil // another request already refreshed
	}
	entry, ok := d.store.Active(st.name)
	if !ok {
		if _, staged := d.store.Latest(st.name); staged {
			return nil, fmt.Errorf("%w: %q has only unpromoted candidates", ErrNoActiveVersion, st.name)
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownSite, st.name)
	}
	if cur != nil && cur.entry.Version == entry.Version {
		// The epoch moved but the serving version did not (a staged
		// candidate, a re-promote of the active version): republish with the
		// fresh epoch, keeping the runtime and its lifetime health counters.
		next := &served{entry: entry, epoch: epoch, rt: cur.rt}
		st.cur.Store(next)
		return next, nil
	}
	p, err := entry.Compile()
	if err != nil {
		return nil, fmt.Errorf("serve: site %q v%d: %w", st.name, entry.Version, err)
	}
	eopt := extract.Options{Workers: d.opt.Workers}
	if d.opt.Monitor != nil {
		h := d.opt.Monitor.Register(st.name, entry.Profile)
		if cur != nil {
			// Version swap: re-arm the window against the new wrapper's
			// profile so the old wrapper's failures don't trip the new one.
			h.Reset(entry.Profile)
		}
		eopt.OnResult = h.Observe
	}
	next := &served{entry: entry, epoch: epoch, rt: extract.New(p, eopt)}
	st.cur.Store(next)
	return next, nil
}

// Refresh eagerly re-validates the site's binding against the store,
// swapping the runtime if the active version changed. Admin operations call
// it so a promote/rollback takes effect before the response is written; it
// returns the entry now serving.
func (d *Dispatcher) Refresh(site string) (store.Entry, error) {
	sv, _, err := d.runtime(site)
	if err != nil {
		return store.Entry{}, err
	}
	return sv.entry, nil
}

// Extraction is one request's outcome: which wrapper version served it and
// the per-page results.
type Extraction struct {
	Site    string
	Version int
	// Results is index-aligned with the request's pages.
	Results []extract.Result
	// Elapsed is the request's extraction wall time.
	Elapsed time.Duration
}

// Extract applies the site's active wrapper to the pages. Per-page failures
// land in the corresponding Result.Err; the error return is reserved for
// site-level problems (unknown site, no promoted version, compile failure)
// and context cancellation. The runtime binding is loaded once — a
// concurrent promote or rollback does not affect pages already in flight.
//
// Deadlines act at page boundaries, matching extract.Runtime.Run: a page
// already extracting always runs to completion (wrapper evaluation is
// CPU-bound and not interruptible), cancellation stops further pages from
// starting. A single-page request therefore either fails before starting
// (expired context) or returns its full result.
func (d *Dispatcher) Extract(ctx context.Context, site string, pages []extract.Page) (*Extraction, error) {
	sv, st, err := d.runtime(site)
	if err != nil {
		if st != nil {
			st.metrics.errors.Add(1)
		}
		return nil, err
	}
	if d.opt.RecentPages > 0 {
		st.rememberPages(d.opt.RecentPages, pages)
	}
	start := time.Now()
	ext := &Extraction{Site: site, Version: sv.entry.Version}
	if len(pages) == 1 && ctx.Err() == nil {
		// Single-page fast path: no pool, no batch allocation.
		ext.Results = []extract.Result{sv.rt.ExtractOne(pages[0])}
		ext.Elapsed = time.Since(start)
		st.metrics.observe(ext)
		return ext, nil
	}
	batch, runErr := sv.rt.Run(ctx, pages)
	ext.Results = batch.Results
	ext.Elapsed = time.Since(start)
	st.metrics.observe(ext)
	if runErr != nil {
		return ext, fmt.Errorf("serve: site %q: %w", site, runErr)
	}
	return ext, nil
}

// Records returns the extracted record texts of successful pages, flattened
// in page order.
func (e *Extraction) Records() []string {
	var out []string
	for i := range e.Results {
		if e.Results[i].Err == nil {
			out = append(out, e.Results[i].Texts...)
		}
	}
	return out
}

// RecentPages returns the site's cached recent page HTMLs, oldest first
// (nil when Options.RecentPages is 0 or nothing was served yet). The
// maintenance scanner feeds these to the repairer as the fresh corpus.
func (d *Dispatcher) RecentPages(site string) []string {
	v, ok := d.sites.Load(site)
	if !ok {
		return nil
	}
	return v.(*siteState).recentPages()
}

// Promote makes an existing stored version the site's serving version and
// hot-swaps the runtime before returning. In-flight requests finish on the
// version they started with.
func (d *Dispatcher) Promote(site string, version int) (store.Entry, error) {
	if _, err := d.store.Promote(site, version); err != nil {
		return store.Entry{}, err
	}
	return d.Refresh(site)
}

// Rollback reverts the site to its previously promoted version and
// hot-swaps the runtime before returning.
func (d *Dispatcher) Rollback(site string) (store.Entry, error) {
	if _, err := d.store.Rollback(site); err != nil {
		return store.Entry{}, err
	}
	return d.Refresh(site)
}

// SiteStatus describes one site's serving state for /v1/sites and
// /metrics.
type SiteStatus struct {
	Site string `json:"site"`
	// Shard is the owning shard in a sharded fleet (always 0 on a
	// single-dispatcher server). The fleet router stamps it; clients like
	// loadgen use it to attribute per-shard load.
	Shard int `json:"shard"`
	// Versions counts stored versions; ActiveVersion is the promoted one (0
	// when only candidates exist).
	Versions      int `json:"versions"`
	ActiveVersion int `json:"active_version"`
	// ServingVersion is the version the dispatcher currently holds a
	// runtime for (0 before the first request builds one). It can trail
	// ActiveVersion until the next request or Refresh swaps.
	ServingVersion int    `json:"serving_version"`
	Lang           string `json:"lang,omitempty"`
	Epoch          uint64 `json:"epoch"`
	// Health is the current runtime's lifetime page ledger.
	Health *extract.HealthCounts `json:"health,omitempty"`
	// Drift is the site's monitor window, when monitoring is on.
	Drift *drift.Stats `json:"drift,omitempty"`
	// Metrics is the site's serving-side request ledger.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// Status reports the serving state of every site in the store, sorted by
// name.
func (d *Dispatcher) Status() []SiteStatus {
	sites := d.store.Sites()
	out := make([]SiteStatus, 0, len(sites))
	for _, name := range sites {
		s := SiteStatus{
			Site:     name,
			Versions: len(d.store.History(name)),
			Epoch:    d.store.Epoch(name),
		}
		if e, ok := d.store.Active(name); ok {
			s.ActiveVersion, s.Lang = e.Version, e.Lang
		}
		if v, ok := d.sites.Load(name); ok {
			st := v.(*siteState)
			if sv := st.cur.Load(); sv != nil {
				s.ServingVersion = sv.entry.Version
				h := sv.rt.Health()
				s.Health = &h
			}
			m := st.metrics.Snapshot()
			s.Metrics = &m
		}
		if d.opt.Monitor != nil {
			if h, ok := d.opt.Monitor.Site(name); ok {
				ds := h.Stats()
				s.Drift = &ds
			}
		}
		out = append(out, s)
	}
	return out
}

// metricsAccumNow folds every served site's live ledger into one
// accumulator — the building block for a dispatcher-wide (and, merged
// across shards, fleet-wide) metrics aggregate. Sites that never served
// a request have no ledger yet and contribute nothing.
func (d *Dispatcher) metricsAccumNow(now time.Time) metricsAccum {
	var acc metricsAccum
	d.sites.Range(func(_, v any) bool {
		acc.addSite(&v.(*siteState).metrics, now)
		return true
	})
	return acc
}

// AggregateMetrics merges every served site's request ledger into one
// snapshot: summed counters and rates, and latency quantiles of the
// merged histogram population (not averages of per-site quantiles).
func (d *Dispatcher) AggregateMetrics() MetricsSnapshot {
	acc := d.metricsAccumNow(time.Now())
	return acc.snapshot()
}
