package serve

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"autowrap/internal/audit"
	"autowrap/internal/drift"
	"autowrap/internal/jobs"
)

// MaintainerOptions configures the autonomous repair loop.
type MaintainerOptions struct {
	// Interval is the scan period for latched trips that could not be
	// enqueued at trip time — rate-limited, queue full, too few cached
	// pages (default 2s). The trip hook itself reacts immediately.
	Interval time.Duration
	// MinGap rate-limits repair submissions per site (default 1m): a site
	// whose repair keeps losing validation must not monopolize the learn
	// pool, and a flapping site must not pile up duplicate jobs.
	MinGap time.Duration
	// MinPages is the fewest cached recent pages worth re-learning from
	// (default 4; the repairer's hard floor is 2).
	MinPages int
	// Log receives scanner decisions (default: log.Default()).
	Log *log.Logger
}

func (o MaintainerOptions) withDefaults() MaintainerOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.MinGap <= 0 {
		o.MinGap = time.Minute
	}
	if o.MinPages < 2 {
		o.MinPages = 4
	}
	if o.Log == nil {
		o.Log = log.Default()
	}
	return o
}

// Maintainer is the paper's autonomous maintenance loop closed inside the
// serving process: it watches the drift monitor's trips and enqueues
// repair jobs that re-learn a drifted site from the dispatcher's cached
// recent pages — the pages that just failed to extract are exactly the
// fresh corpus a repair needs — so a drifted site heals with no operator
// call. Two triggers feed it: the monitor's OnTrip hook (immediate, on
// the serving worker that observed the tripping page — the enqueue is an
// O(1) channel send) and a periodic scan that retries latched trips the
// hook couldn't act on (rate-limited, queue full, not enough pages yet).
//
// Per-site discipline: at most one auto-repair job in flight, and at most
// one submission per MinGap. A repair that wins validation resets the
// site's trip (the repairer does that); one that loses leaves the trip
// latched, and the scanner retries after the gap — bounded, not frantic.
type Maintainer struct {
	server *Server
	opt    MaintainerOptions

	mu      sync.Mutex
	last    map[string]time.Time // site -> last submission
	pending map[string]string    // site -> active auto job id
	stop    chan struct{}        // recreated on every Start
	done    chan struct{}
	started bool
}

// NewMaintainer builds the auto-repair loop over a server. The server
// must have a Repairer and a job manager, its dispatcher a Monitor and a
// RecentPages cache — without any one of them there is nothing to watch,
// nothing to enqueue, or nothing to re-learn from.
func NewMaintainer(s *Server, opt MaintainerOptions) (*Maintainer, error) {
	switch {
	case s == nil:
		return nil, fmt.Errorf("serve: maintainer needs a server")
	case s.cfg.Repairer == nil:
		return nil, fmt.Errorf("serve: maintainer needs a repairer (no annotator configured)")
	case s.cfg.Jobs == nil:
		return nil, fmt.Errorf("serve: maintainer needs a job manager")
	case s.cfg.Dispatcher.Monitor() == nil:
		return nil, fmt.Errorf("serve: maintainer needs drift monitoring enabled")
	case s.cfg.Dispatcher.opt.RecentPages <= 0:
		return nil, fmt.Errorf("serve: maintainer needs the dispatcher's recent-page cache (Options.RecentPages > 0)")
	}
	return &Maintainer{
		server:  s,
		opt:     opt.withDefaults(),
		last:    make(map[string]time.Time),
		pending: make(map[string]string),
	}, nil
}

// Start installs the trip hook and launches the scan loop. Start is
// idempotent while running, and a stopped maintainer can be started
// again (the control channels are per-Start).
func (m *Maintainer) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()
	m.server.cfg.Dispatcher.Monitor().SetOnTrip(func(site string, s drift.Stats) {
		m.opt.Log.Printf("serve: DRIFT TRIPPED: %s", s)
		m.server.audit(audit.EventDriftTrip, site, 0, s.String())
		m.Kick(site)
	})
	go m.loop(stop, done)
}

// Stop detaches the trip hook and stops the scan loop. Jobs already
// enqueued keep running; the process owner drains the job manager.
func (m *Maintainer) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	m.started = false
	stop, done := m.stop, m.done
	m.mu.Unlock()
	m.server.cfg.Dispatcher.Monitor().SetOnTrip(nil)
	close(stop)
	<-done
}

func (m *Maintainer) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(m.opt.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			for _, site := range m.server.cfg.Dispatcher.Monitor().Tripped() {
				m.Kick(site)
			}
		}
	}
}

// pendingSubmitting marks a site whose submission is in flight but whose
// job id is not known yet.
const pendingSubmitting = "(submitting)"

// Kick considers one tripped site for auto-repair and reports whether a
// job was enqueued. It is cheap enough for the trip hook's serving-worker
// context: a few map lookups and, at most, one job submission.
func (m *Maintainer) Kick(site string) bool {
	now := time.Now()
	m.mu.Lock()
	if id, busy := m.pending[site]; busy {
		if id == pendingSubmitting {
			m.mu.Unlock()
			return false
		}
		// A job canceled while still queued never runs its cleanup;
		// resolve the slot against the manager's view instead of trusting
		// the runner to have cleared it.
		if s, err := m.server.cfg.Jobs.Get(id); err == nil && !s.State.Terminal() {
			m.mu.Unlock()
			return false
		}
		delete(m.pending, site)
	}
	if t, ok := m.last[site]; ok && now.Sub(t) < m.opt.MinGap {
		m.mu.Unlock()
		return false
	}
	// Reserve the slot before submitting so a concurrent Kick (trip hook
	// racing the scanner) cannot double-enqueue.
	m.pending[site] = pendingSubmitting
	m.mu.Unlock()

	enqueued := m.submit(site, now)
	if !enqueued {
		m.mu.Lock()
		delete(m.pending, site)
		m.mu.Unlock()
	}
	return enqueued
}

func (m *Maintainer) submit(site string, now time.Time) bool {
	pages := m.server.cfg.Dispatcher.RecentPages(site)
	if len(pages) < m.opt.MinPages {
		return false // not enough fresh evidence yet; the scanner retries
	}
	snap, err := m.server.cfg.Jobs.Submit(jobs.KindRepair, site,
		func(ctx context.Context, progress func(string)) (any, error) {
			ctx, cancel := context.WithTimeout(ctx, m.server.cfg.JobTimeout)
			defer cancel()
			defer m.clearPending(site)
			res, err := m.server.RunMaintenance(ctx, site, pages, progress)
			if err != nil {
				m.opt.Log.Printf("serve: auto-repair %s failed: %v", site, err)
				return nil, err
			}
			m.opt.Log.Printf("serve: auto-repair %s: %s (candidate v%d, serving v%d)",
				site, res.ValidationVerdict, res.CandidateVersion, res.ServingVersion)
			return res, nil
		})
	if err != nil {
		m.opt.Log.Printf("serve: auto-repair %s not enqueued: %v", site, err)
		return false
	}
	m.server.audit(audit.EventAutoRepair, site, 0,
		fmt.Sprintf("job %s: re-learning from %d recent pages", snap.ID, len(pages)))
	m.mu.Lock()
	// The runner may already have finished and cleared the slot; only an
	// occupied slot gets the real job id.
	if _, ok := m.pending[site]; ok {
		m.pending[site] = snap.ID
	}
	m.last[site] = now
	m.mu.Unlock()
	return true
}

// clearPending releases the site's one-auto-job-at-a-time slot. Runs on
// the job worker whether the job succeeded, failed, or was canceled
// mid-run (a job canceled while queued is resolved by Kick instead).
func (m *Maintainer) clearPending(site string) {
	m.mu.Lock()
	delete(m.pending, site)
	m.mu.Unlock()
}
