package serve

import (
	"net/http"
	"strings"
)

// Handler returns the server's route table: a precompiled static dispatch
// over the fixed route set instead of an http.ServeMux. Every request is
// routed with one switch on the path (plus a prefix check for the two
// parameterized jobs routes) — no per-request pattern matching, no
// intermediate allocations. Semantics match the previous mux wiring:
// unknown paths 404, a known path with the wrong method 405 with an Allow
// header, and the non-method-specific routes leave method checks to their
// handlers.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.route) }

// jobsPrefix is the path prefix of the two parameterized routes,
// GET /v1/jobs/{id} and POST /v1/jobs/{id}/cancel.
const jobsPrefix = "/v1/jobs/"

func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	// Shard role: ring agreement is checked once, ahead of every route —
	// a request pinned to a different ring must not reach any handler.
	if !s.checkRingHash(w, r) {
		return
	}
	switch r.URL.Path {
	case "/v1/extract":
		s.handleExtract(w, r)
	case "/healthz":
		s.handleHealthz(w, r)
	case "/metrics":
		s.handleMetrics(w, r)
	case "/v1/sites":
		s.handleSites(w, r)
	case "/v1/promote":
		s.handlePromote(w, r)
	case "/v1/rollback":
		s.handleRollback(w, r)
	case "/v1/repair":
		s.handleRepair(w, r)
	case "/v1/learn":
		s.handleLearn(w, r)
	case "/v1/audit":
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		s.handleAudit(w, r)
	case "/v1/jobs":
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		s.handleJobs(w, r)
	case "/v1/drain":
		s.handleDrain(w, r)
	default:
		s.routeJob(w, r)
	}
}

// routeJob dispatches the parameterized jobs routes: the {id} segment must
// be non-empty and slash-free, exactly as the previous mux patterns
// demanded.
func (s *Server) routeJob(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if !strings.HasPrefix(path, jobsPrefix) {
		http.NotFound(w, r)
		return
	}
	rest := path[len(jobsPrefix):]
	if id, ok := strings.CutSuffix(rest, "/cancel"); ok && id != "" && !strings.Contains(id, "/") {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		s.handleJobCancel(w, r, id)
		return
	}
	if rest == "" || strings.Contains(rest, "/") {
		http.NotFound(w, r)
		return
	}
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.handleJobGet(w, r, rest)
}

// requireMethod enforces a method-specific route, answering 405 with an
// Allow header otherwise (the same contract mux method patterns gave).
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, "use %s", method)
		return false
	}
	return true
}
