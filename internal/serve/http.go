package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"autowrap/internal/drift"
	"autowrap/internal/extract"
	"autowrap/internal/store"
)

// ServerConfig wires a Server. Dispatcher is required; everything else has
// a usable default or degrades gracefully when absent.
type ServerConfig struct {
	Dispatcher *Dispatcher
	// Gate admission-controls POST /v1/extract; nil builds one with default
	// GateOptions. Admin and health routes are never gated.
	Gate *Gate
	// RequestTimeout is the per-request extraction deadline (default 30s).
	// A request's timeout_ms field may shorten it, never extend it.
	RequestTimeout time.Duration
	// MaxPages caps pages per extract request (default 256); MaxBodyBytes
	// caps the request body (default 32 MiB).
	MaxPages     int
	MaxBodyBytes int64
	// Repairer enables POST /v1/repair; nil returns 501 there (the daemon
	// needs an annotator to re-learn, which not every deployment has).
	Repairer *drift.Repairer
	// StorePath, when set, persists the registry after every successful
	// admin mutation (promote, rollback, repair).
	StorePath string
	// Log receives request-path warnings (default: log.Default()).
	Log *log.Logger
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Gate == nil {
		c.Gate = NewGate(GateOptions{})
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxPages <= 0 {
		c.MaxPages = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Server is the HTTP extraction service: the dispatcher's hot path behind
// admission control, plus health, metrics and the wrapper-lifecycle admin
// routes. Build one with NewServer, mount Handler on an http.Server, and
// call SetDraining(true) before shutdown so load balancers stop sending.
//
//	POST /v1/extract   extract records from one page or a batch
//	GET  /healthz      liveness + readiness (503 while draining)
//	GET  /metrics      per-site QPS/latency/health + gate counters (JSON)
//	GET  /v1/sites     serving state of every site
//	POST /v1/promote   make a stored version the serving one (hot-swap)
//	POST /v1/rollback  revert to the previously promoted version
//	POST /v1/repair    drift-repair: re-learn from posted pages, validate,
//	                   promote on a strict held-out win
type Server struct {
	cfg      ServerConfig
	started  time.Time
	draining atomic.Bool
}

// NewServer builds the HTTP layer over a dispatcher.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Dispatcher == nil {
		return nil, fmt.Errorf("serve: ServerConfig.Dispatcher is required")
	}
	return &Server{cfg: cfg.withDefaults(), started: time.Now()}, nil
}

// Gate returns the server's admission gate.
func (s *Server) Gate() *Gate { return s.cfg.Gate }

// SetDraining flips readiness: while draining, /healthz answers 503 (so
// traffic steers away) but in-flight and newly arriving extractions still
// complete — the process owner decides when to stop accepting connections.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/extract", s.handleExtract)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/sites", s.handleSites)
	mux.HandleFunc("/v1/promote", s.handlePromote)
	mux.HandleFunc("/v1/rollback", s.handleRollback)
	mux.HandleFunc("/v1/repair", s.handleRepair)
	return mux
}

// --- wire types ---

// PageInput is one page of an extract request.
type PageInput struct {
	ID   string `json:"id,omitempty"`
	HTML string `json:"html"`
}

// ExtractRequest is the POST /v1/extract body. Exactly one of Page and
// Pages must be set; Page is the single-page fast path.
type ExtractRequest struct {
	Site  string      `json:"site"`
	Page  *PageInput  `json:"page,omitempty"`
	Pages []PageInput `json:"pages,omitempty"`
	// TimeoutMS shortens the server's per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// PageOutput is one page's extraction outcome on the wire.
type PageOutput struct {
	ID      string   `json:"id,omitempty"`
	Records []string `json:"records"`
	Error   string   `json:"error,omitempty"`
	// ElapsedUS is the page's extraction latency in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
}

// ExtractResponse is the POST /v1/extract reply.
type ExtractResponse struct {
	Site    string       `json:"site"`
	Version int          `json:"version"`
	Results []PageOutput `json:"results"`
	// Error carries a request-level failure (e.g. deadline mid-batch) when
	// partial results are still returned.
	Error string `json:"error,omitempty"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a bounded JSON body, rejecting trailing garbage.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	return true
}

// siteStatusCode maps dispatcher site-level errors to HTTP statuses.
func siteStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSite):
		return http.StatusNotFound
	case errors.Is(err, ErrNoActiveVersion):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// --- hot path ---

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req ExtractRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Site == "" {
		writeError(w, http.StatusBadRequest, "site is required")
		return
	}
	pages := req.Pages
	if req.Page != nil {
		if len(pages) > 0 {
			writeError(w, http.StatusBadRequest, "set page or pages, not both")
			return
		}
		pages = []PageInput{*req.Page}
	}
	if len(pages) == 0 {
		writeError(w, http.StatusBadRequest, "no pages")
		return
	}
	if len(pages) > s.cfg.MaxPages {
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d pages exceeds the per-request cap of %d", len(pages), s.cfg.MaxPages)
		return
	}

	// The per-request deadline starts before admission: a request queued
	// behind busy slots never waits longer for admission than it would for
	// the work itself.
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission: reject with backpressure before any extraction work.
	release, err := s.cfg.Gate.Acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After",
				strconv.Itoa(int(s.cfg.Gate.RetryAfter()/time.Second)))
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, siteStatusCode(err), "while queued: %v", err)
		return
	}
	defer release()

	in := make([]extract.Page, len(pages))
	for i, p := range pages {
		id := p.ID
		if id == "" {
			id = fmt.Sprintf("page-%d", i)
		}
		in[i] = extract.Page{ID: id, HTML: p.HTML}
	}
	ext, err := s.cfg.Dispatcher.Extract(ctx, req.Site, in)
	if ext == nil {
		writeError(w, siteStatusCode(err), "%v", err)
		return
	}
	resp := ExtractResponse{Site: ext.Site, Version: ext.Version,
		Results: make([]PageOutput, len(ext.Results))}
	for i := range ext.Results {
		res := &ext.Results[i]
		out := PageOutput{ID: res.ID, Records: res.Texts,
			ElapsedUS: res.Elapsed.Microseconds()}
		if out.Records == nil {
			out.Records = []string{}
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
		}
		resp.Results[i] = out
	}
	code := http.StatusOK
	if err != nil {
		// Partial batch (deadline/cancel mid-run): return what completed,
		// flagged at both levels.
		resp.Error = err.Error()
		code = siteStatusCode(err)
	}
	writeJSON(w, code, resp)
}

// --- health + metrics ---

// HealthzResponse is the GET /healthz body.
type HealthzResponse struct {
	Status string `json:"status"` // "ok" | "draining"
	Sites  int    `json:"sites"`
	// UptimeSec is the server's age.
	UptimeSec int64 `json:"uptime_sec"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{
		Status:    "ok",
		Sites:     s.cfg.Dispatcher.Store().Len(),
		UptimeSec: int64(time.Since(s.started).Seconds()),
	}
	code := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// MetricsResponse is the GET /metrics body.
type MetricsResponse struct {
	UptimeSec int64        `json:"uptime_sec"`
	Gate      GateSnapshot `json:"gate"`
	Sites     []SiteStatus `json:"sites"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeSec: int64(time.Since(s.started).Seconds()),
		Gate:      s.cfg.Gate.Snapshot(),
		Sites:     s.cfg.Dispatcher.Status(),
	})
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Dispatcher.Status())
}

// --- admin ---

// AdminRequest is the promote/rollback body.
type AdminRequest struct {
	Site    string `json:"site"`
	Version int    `json:"version,omitempty"` // promote only
}

// AdminResponse reports the entry now serving after an admin mutation.
type AdminResponse struct {
	Site           string `json:"site"`
	ServingVersion int    `json:"serving_version"`
	Lang           string `json:"lang"`
	Rule           string `json:"rule"`
}

func (s *Server) persist() error {
	if s.cfg.StorePath == "" {
		return nil
	}
	return s.cfg.Dispatcher.Store().Save(s.cfg.StorePath)
}

func (s *Server) finishAdmin(w http.ResponseWriter, entry store.Entry, err error) {
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, ErrUnknownSite) {
			code = http.StatusNotFound
		}
		writeError(w, code, "%v", err)
		return
	}
	if err := s.persist(); err != nil {
		s.cfg.Log.Printf("serve: persisting store after admin mutation: %v", err)
		writeError(w, http.StatusInternalServerError, "mutation applied but not persisted: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, AdminResponse{
		Site: entry.Site, ServingVersion: entry.Version,
		Lang: entry.Lang, Rule: entry.Rule,
	})
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req AdminRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Site == "" || req.Version < 1 {
		writeError(w, http.StatusBadRequest, "site and version >= 1 are required")
		return
	}
	entry, err := s.cfg.Dispatcher.Promote(req.Site, req.Version)
	s.finishAdmin(w, entry, err)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req AdminRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Site == "" {
		writeError(w, http.StatusBadRequest, "site is required")
		return
	}
	entry, err := s.cfg.Dispatcher.Rollback(req.Site)
	s.finishAdmin(w, entry, err)
}

// RepairRequest is the POST /v1/repair body: the freshest pages of the
// drifted site, raw HTML.
type RepairRequest struct {
	Site  string   `json:"site"`
	Pages []string `json:"pages"`
	// TimeoutMS shortens the server's repair deadline (10x the extract
	// request timeout — learning is orders of magnitude heavier). Like the
	// extract path it may shorten the deadline, never extend it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// RepairResponse reports a repair attempt.
type RepairResponse struct {
	Site string `json:"site"`
	// Promoted says whether serving flipped to the re-learned candidate.
	Promoted         bool `json:"promoted"`
	CandidateVersion int  `json:"candidate_version"`
	ServingVersion   int  `json:"serving_version"`
	// Candidate/Incumbent summarize the held-out validation.
	CandidatePages     int    `json:"candidate_nonempty_pages"`
	IncumbentPages     int    `json:"incumbent_nonempty_pages"`
	CandidateRecords   int    `json:"candidate_records"`
	IncumbentRecords   int    `json:"incumbent_records"`
	LearnElapsedMS     int64  `json:"learn_elapsed_ms"`
	ValidationVerdict  string `json:"verdict"`
	TrainPagesUsed     int    `json:"train_pages"`
	HoldoutPagesUsed   int    `json:"holdout_pages"`
	MonitorReset       bool   `json:"monitor_reset"`
	PreviousServingVer int    `json:"previous_serving_version,omitempty"`
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if s.cfg.Repairer == nil {
		writeError(w, http.StatusNotImplemented,
			"repair is not configured on this server (no annotator)")
		return
	}
	var req RepairRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Site == "" || len(req.Pages) < 2 {
		writeError(w, http.StatusBadRequest, "site and at least 2 pages are required")
		return
	}
	timeout := 10 * s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	prev := 0
	if e, ok := s.cfg.Dispatcher.Store().Active(req.Site); ok {
		prev = e.Version
	}
	report, err := s.cfg.Repairer.Repair(ctx, req.Site, req.Pages)
	if err != nil {
		// Deadline/cancellation is the caller's retry-with-more-time signal
		// (504/499); everything else means these pages can't repair the site
		// (422) — don't tell automation to stop retrying a timeout.
		code := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = siteStatusCode(err)
		}
		writeError(w, code, "%v", err)
		return
	}
	// Hot-swap so the promoted wrapper serves the very next request.
	serving, err := s.cfg.Dispatcher.Refresh(req.Site)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "repair stored but refresh failed: %v", err)
		return
	}
	if err := s.persist(); err != nil {
		s.cfg.Log.Printf("serve: persisting store after repair: %v", err)
		writeError(w, http.StatusInternalServerError, "repair applied but not persisted: %v", err)
		return
	}
	verdict := "rejected: incumbent keeps serving"
	if report.Promoted {
		verdict = "promoted"
	}
	writeJSON(w, http.StatusOK, RepairResponse{
		Site:               req.Site,
		Promoted:           report.Promoted,
		CandidateVersion:   report.Candidate.Version,
		ServingVersion:     serving.Version,
		CandidatePages:     report.CandidateEval.NonEmpty,
		IncumbentPages:     report.IncumbentEval.NonEmpty,
		CandidateRecords:   report.CandidateEval.Records,
		IncumbentRecords:   report.IncumbentEval.Records,
		LearnElapsedMS:     report.LearnElapsed.Milliseconds(),
		ValidationVerdict:  verdict,
		TrainPagesUsed:     report.TrainPages,
		HoldoutPagesUsed:   report.HoldoutPages,
		MonitorReset:       report.Promoted && s.cfg.Dispatcher.Monitor() != nil,
		PreviousServingVer: prev,
	})
}
