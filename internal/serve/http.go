package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autowrap/internal/audit"
	"autowrap/internal/drift"
	"autowrap/internal/extract"
	"autowrap/internal/jobs"
	"autowrap/internal/shard"
	"autowrap/internal/store"
	"autowrap/internal/store/filestore"
)

// ServerConfig wires a Server. Dispatcher is required; everything else has
// a usable default or degrades gracefully when absent.
type ServerConfig struct {
	Dispatcher *Dispatcher
	// Gate admission-controls POST /v1/extract; nil builds one with default
	// GateOptions. Admin and health routes are never gated.
	Gate *Gate
	// RequestTimeout is the per-request extraction deadline (default 30s).
	// A request's timeout_ms field may shorten it, never extend it.
	RequestTimeout time.Duration
	// MaxPages caps pages per extract request (default 256); MaxBodyBytes
	// caps the request body (default 32 MiB).
	MaxPages     int
	MaxBodyBytes int64
	// Repairer enables the maintenance plane — POST /v1/learn and
	// POST /v1/repair; nil returns 501 there (the daemon needs an
	// annotator to re-learn, which not every deployment has).
	Repairer *drift.Repairer
	// Jobs executes learn and repair asynchronously; nil builds a default
	// manager (1 worker, queue 16) when Repairer is set. The job pool is
	// isolated from the extract hot path: learning never occupies a Gate
	// slot, extraction never occupies a job worker.
	Jobs *jobs.Manager
	// JobTimeout is the per-job learn/repair deadline (default 10x
	// RequestTimeout — learning is orders of magnitude heavier than
	// extraction). A job's timeout_ms may shorten it, never extend it.
	JobTimeout time.Duration
	// LearnCorpusRoot, when set, enables LearnRequest.CorpusDir and
	// confines it: a learn job only reads *.html from directories under
	// this root. Empty (the default) rejects corpus_dir submissions —
	// an HTTP endpoint must not get to point the daemon at arbitrary
	// server-side paths.
	LearnCorpusRoot string
	// StorePath, when set (and Backend is not), persists the registry
	// after every successful admin mutation by wrapping the path in a
	// filestore backend — the pre-backend behaviour, same bytes on disk.
	StorePath string
	// Backend, when set, receives every lifecycle event (new version,
	// promote, rollback) after it succeeds in memory. NewServer attaches
	// the dispatcher's store to it under Shard, so a fleet's shards share
	// one backend and each reports only its own partition's events —
	// an event on shard k never rewrites shard j's data.
	Backend store.Backend
	// Shard is this server's shard id in a fleet (0 standalone); it tags
	// backend appends and audit records.
	Shard int
	// Ring, when set, puts the server in shard role: it is one
	// independently booted partition (index Shard) of a fleet routed by
	// this ring. A shard-role server (a) refuses requests whose
	// RingHashHeader disagrees with the ring's fingerprint (503,
	// ErrRingMismatch), (b) refuses lifecycle and extract requests for
	// sites the ring assigns elsewhere (421, ErrNotOwner), (c) reports
	// its RingInfo on /healthz and its bucket-level accumulator on
	// /metrics for the front end's merges, and (d) serves POST /v1/drain.
	// Nil (the default) is the standalone server, wire-identical to
	// before the fleet transport existed.
	Ring *shard.Ring
	// Audit, when set, records every lifecycle event (learn, candidate,
	// promote, rollback, drift trip, auto-repair) in the hash-chained
	// ledger. Nil disables auditing; a fleet's shards share one ledger.
	Audit *audit.Ledger
	// Log receives request-path warnings (default: log.Default()).
	Log *log.Logger
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Gate == nil {
		c.Gate = NewGate(GateOptions{})
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxPages <= 0 {
		c.MaxPages = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * c.RequestTimeout
	}
	if c.Jobs == nil && c.Repairer != nil {
		c.Jobs = jobs.New(jobs.Options{})
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Server is the HTTP extraction service: the dispatcher's hot path behind
// admission control, plus health, metrics and the wrapper-lifecycle admin
// routes. Build one with NewServer, mount Handler on an http.Server, and
// call SetDraining(true) before shutdown so load balancers stop sending.
//
//	POST /v1/extract   extract records from one page or a batch
//	GET  /healthz      liveness + readiness (503 while draining)
//	GET  /metrics      per-site QPS/latency/health + gate + job counters
//	GET  /v1/sites     serving state of every site
//	POST /v1/promote   make a stored version the serving one (hot-swap)
//	POST /v1/rollback  revert to the previously promoted version
//	POST /v1/learn     enqueue a learn job (202 + job id): learn a site
//	                   from posted pages or a server-side corpus dir,
//	                   validate, promote, hot-swap
//	POST /v1/repair    enqueue a drift-repair job (202 + job id):
//	                   re-learn from posted pages, validate, promote on
//	                   a strict held-out win
//	GET  /v1/jobs      every retained job, submission order
//	GET  /v1/jobs/{id} one job's state/progress/result
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
type Server struct {
	cfg      ServerConfig
	started  time.Time
	draining atomic.Bool
	ownJobs  bool // the manager was created by withDefaults, not the caller
	closed   atomic.Bool
	// drainedJobs makes the job plane's quiesce one-shot: /v1/drain and
	// the process's own shutdown may both ask, the first one does the work.
	drainedJobs atomic.Bool
	// lifecycleMu serializes {in-memory mutation, backend append} pairs
	// so the event order a log backend replays matches the order the
	// registry actually mutated. Lifecycle events are rare (admin calls,
	// repair completions); this never touches the extract hot path.
	lifecycleMu sync.Mutex
}

// NewServer builds the HTTP layer over a dispatcher.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Dispatcher == nil {
		return nil, fmt.Errorf("serve: ServerConfig.Dispatcher is required")
	}
	if cfg.Backend == nil && cfg.StorePath != "" {
		be, err := filestore.Open(cfg.StorePath)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		cfg.Backend = be
	}
	if cfg.Backend != nil {
		cfg.Backend.Attach(cfg.Shard, cfg.Dispatcher.Store())
	}
	ownJobs := cfg.Jobs == nil && cfg.Repairer != nil
	return &Server{cfg: cfg.withDefaults(), started: time.Now(), ownJobs: ownJobs}, nil
}

// Close releases what the server created itself — today that is the job
// manager withDefaults builds when a Repairer is configured without an
// explicit Jobs field (its worker goroutine would otherwise outlive the
// server). A caller-supplied manager is the caller's to drain; Close
// leaves it running. Idempotent.
func (s *Server) Close() error {
	if !s.ownJobs || s.cfg.Jobs == nil || !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.cfg.Jobs.Drain(ctx)
}

// Gate returns the server's admission gate.
func (s *Server) Gate() *Gate { return s.cfg.Gate }

// Dispatcher returns the server's dispatcher.
func (s *Server) Dispatcher() *Dispatcher { return s.cfg.Dispatcher }

// Jobs returns the server's job manager (nil when the maintenance plane
// is disabled). The process owner drains it on shutdown.
func (s *Server) Jobs() *jobs.Manager { return s.cfg.Jobs }

// SetDraining flips readiness: while draining, /healthz answers 503 (so
// traffic steers away) but in-flight and newly arriving extractions still
// complete — the process owner decides when to stop accepting connections.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// QuiesceJobs runs the job plane dry exactly once: new submissions are
// already rejected (the caller flipped draining), queued jobs execute to
// completion bounded by ctx, then the workers exit. Both POST /v1/drain
// and the process's own shutdown path may call it; only the first does
// the work, so an HTTP-initiated fleet drain followed by SIGTERM cannot
// double-drain the manager. Nil manager or a repeat call is a no-op.
func (s *Server) QuiesceJobs(ctx context.Context) error {
	m := s.cfg.Jobs
	if m == nil || !s.drainedJobs.CompareAndSwap(false, true) {
		return nil
	}
	return m.Quiesce(ctx)
}

// handleDrain serves POST /v1/drain on shard-role servers: the front
// end's half of the ordered fleet drain (front stops admitting first,
// then asks each shard to run its job plane dry). The shard flips its
// readiness and quiesces jobs but keeps its listener up — in-flight and
// stray direct requests still complete; stopping the process belongs to
// whoever started it. Standalone servers don't expose the route (404).
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Ring == nil {
		http.NotFound(w, r)
		return
	}
	if !requirePost(w, r) {
		return
	}
	var req DrainRequest
	if r.ContentLength != 0 && !s.readJSON(w, r, &req) {
		return
	}
	s.SetDraining(true)
	ctx, cancel := context.WithTimeout(r.Context(), clampTimeout(s.cfg.JobTimeout, req.TimeoutMS))
	defer cancel()
	resp := DrainResponse{Status: "draining", JobsQuiesced: true}
	if err := s.QuiesceJobs(ctx); err != nil {
		resp.JobsQuiesced = false
		resp.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- wire types ---

// PageInput is one page of an extract request.
type PageInput struct {
	ID   string `json:"id,omitempty"`
	HTML string `json:"html"`
}

// ExtractRequest is the POST /v1/extract body. Exactly one of Page and
// Pages must be set; Page is the single-page fast path.
type ExtractRequest struct {
	Site  string      `json:"site"`
	Page  *PageInput  `json:"page,omitempty"`
	Pages []PageInput `json:"pages,omitempty"`
	// TimeoutMS shortens the server's per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// PageOutput is one page's extraction outcome on the wire.
type PageOutput struct {
	ID      string   `json:"id,omitempty"`
	Records []string `json:"records"`
	Error   string   `json:"error,omitempty"`
	// ElapsedUS is the page's extraction latency in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
}

// ExtractResponse is the POST /v1/extract reply.
type ExtractResponse struct {
	Site    string       `json:"site"`
	Version int          `json:"version"`
	Results []PageOutput `json:"results"`
	// Error carries a request-level failure (e.g. deadline mid-batch) when
	// partial results are still returned.
	Error string `json:"error,omitempty"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a bounded JSON body, rejecting trailing garbage.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return readJSONLimited(w, r, v, s.cfg.MaxBodyBytes)
}

// readJSONLimited is readJSON with an explicit byte cap — the fleet
// router decodes at the front door with its own limit, servers with
// theirs, through the same code.
func readJSONLimited(w http.ResponseWriter, r *http.Request, v any, max int64) bool {
	body := http.MaxBytesReader(w, r.Body, max)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	return true
}

// refuseNotOwned is the shard-role ownership check: a shard booted for
// partition k must never serve — let alone mutate — a site the ring
// assigns elsewhere, whether it got here through a misconfigured front
// or a direct hit. 421 Misdirected Request with the named error; the
// response is already written when it returns true. Standalone servers
// (no Ring) own everything.
func (s *Server) refuseNotOwned(w http.ResponseWriter, site string) bool {
	if s.cfg.Ring == nil || site == "" {
		return false
	}
	if k := s.cfg.Ring.Owner(site); k != s.cfg.Shard {
		writeError(w, http.StatusMisdirectedRequest,
			"%v: site %q belongs to shard %d, this is shard %d", ErrNotOwner, site, k, s.cfg.Shard)
		return true
	}
	return false
}

// checkRingHash enforces per-request ring agreement on a shard-role
// server: a request pinned (via RingHashHeader) to a different ring
// fingerprint is refused with 503 and the named mismatch error before it
// can touch the wrong partition. Requests without the header — direct
// operator calls — pass; ownership is still checked per site.
func (s *Server) checkRingHash(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Ring == nil {
		return true
	}
	h := r.Header.Get(RingHashHeader)
	if h == "" || h == s.cfg.Ring.Fingerprint() {
		return true
	}
	writeError(w, http.StatusServiceUnavailable,
		"%v: request pinned to ring %s, shard %d built ring %s", ErrRingMismatch, h, s.cfg.Shard, s.cfg.Ring.Fingerprint())
	return false
}

// siteStatusCode maps dispatcher site-level errors to HTTP statuses.
func siteStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSite):
		return http.StatusNotFound
	case errors.Is(err, ErrNoActiveVersion):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// --- hot path ---

// handleExtract is the allocation-disciplined serving path: body bytes land
// in a pooled buffer, the request decodes in place (see wire.go), page HTML
// flows straight into the parser via the dispatcher, and the response is
// appended into a pooled buffer and written with an explicit
// Content-Length. The wire shapes are unchanged from the encoding/json
// implementation; only the steady-state allocation profile is different.
//
// The handler is split at the decoded-request boundary: decodeExtract
// fills the scratch, finishExtract serves from it. The fleet's
// ShardRouter decodes once at the front door, reads sc.site to pick the
// owning shard, and calls that shard's finishExtract — same pooled
// buffers, no second parse.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	sc := acquireScratch()
	defer releaseScratch(sc)
	if !s.decodeExtract(w, r, sc) {
		return
	}
	s.finishExtract(w, r, sc)
}

// decodeExtract reads and parses the request body into the scratch,
// answering the error response itself when it returns false.
func (s *Server) decodeExtract(w http.ResponseWriter, r *http.Request, sc *extractScratch) bool {
	if !s.readBody(w, r, sc) {
		return false
	}
	if err := decodeExtractRequest(sc); err != nil {
		if err == errTrailing {
			writeError(w, http.StatusBadRequest, "%v", err)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

// finishExtract validates the decoded request and serves it: admission
// through this server's gate, extraction through this server's
// dispatcher. sc must have been filled by decodeExtract (any server's —
// the limits are fleet-uniform).
func (s *Server) finishExtract(w http.ResponseWriter, r *http.Request, sc *extractScratch) {
	if sc.site == "" {
		writeError(w, http.StatusBadRequest, "site is required")
		return
	}
	if s.refuseNotOwned(w, sc.site) {
		return
	}
	pages := sc.pages
	if sc.hasSingle {
		if len(pages) > 0 {
			writeError(w, http.StatusBadRequest, "set page or pages, not both")
			return
		}
		pages = append(sc.pages[:0], sc.single)
	}
	if len(pages) == 0 {
		writeError(w, http.StatusBadRequest, "no pages")
		return
	}
	if len(pages) > s.cfg.MaxPages {
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d pages exceeds the per-request cap of %d", len(pages), s.cfg.MaxPages)
		return
	}

	// The per-request deadline starts before admission: a request queued
	// behind busy slots never waits longer for admission than it would for
	// the work itself.
	ctx, cancel := context.WithTimeout(r.Context(),
		clampTimeout(s.cfg.RequestTimeout, sc.timeoutMS))
	defer cancel()

	// Admission: reject with backpressure before any extraction work.
	release, err := s.cfg.Gate.Acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After",
				strconv.Itoa(int(s.cfg.Gate.RetryAfter()/time.Second)))
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, siteStatusCode(err), "while queued: %v", err)
		return
	}
	defer release()

	if cap(sc.in) < len(pages) {
		sc.in = make([]extract.Page, len(pages))
	} else {
		sc.in = sc.in[:len(pages)]
	}
	for i := range pages {
		id := pages[i].id
		if id == "" {
			id = defaultPageID(i)
		}
		sc.in[i] = extract.Page{ID: id, HTML: pages[i].html}
	}
	ext, err := s.cfg.Dispatcher.Extract(ctx, sc.site, sc.in)
	if ext == nil {
		writeError(w, siteStatusCode(err), "%v", err)
		return
	}
	code := http.StatusOK
	if err != nil {
		// Partial batch (deadline/cancel mid-run): return what completed,
		// flagged at both levels (the response body carries err too).
		code = siteStatusCode(err)
	}
	sc.out = appendExtractResponse(sc.out[:0], ext, err)
	writeRawJSON(w, code, sc.out)
}

// --- health + metrics ---

// HealthzResponse is the GET /healthz body.
type HealthzResponse struct {
	Status string `json:"status"` // "ok" | "draining"
	Sites  int    `json:"sites"`
	// UptimeSec is the server's age.
	UptimeSec int64 `json:"uptime_sec"`
	// Ring is the shard-role server's half of the ring-agreement
	// handshake (absent on standalone servers).
	Ring *RingInfo `json:"ring,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{
		Status:    "ok",
		Sites:     s.cfg.Dispatcher.Store().Len(),
		UptimeSec: int64(time.Since(s.started).Seconds()),
	}
	if ring := s.cfg.Ring; ring != nil {
		resp.Ring = &RingInfo{
			Hash:   ring.Fingerprint(),
			Shards: ring.Shards(),
			VNodes: ring.VNodes(),
			Shard:  s.cfg.Shard,
		}
	}
	code := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// MetricsResponse is the GET /metrics body.
type MetricsResponse struct {
	UptimeSec int64        `json:"uptime_sec"`
	Gate      GateSnapshot `json:"gate"`
	// Jobs is the maintenance plane's ledger (absent when disabled).
	Jobs *jobs.Metrics `json:"jobs,omitempty"`
	// Audit is the lifecycle ledger's counters (absent when disabled).
	Audit *audit.Stats `json:"audit,omitempty"`
	// Accum is the shard-role server's bucket-level accumulator — what a
	// forwarding front end merges so fleet latency quantiles come from
	// the combined histogram population (absent on standalone servers).
	Accum *WireAccum   `json:"accum,omitempty"`
	Sites []SiteStatus `json:"sites"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{
		UptimeSec: int64(time.Since(s.started).Seconds()),
		Gate:      s.cfg.Gate.Snapshot(),
		Sites:     s.cfg.Dispatcher.Status(),
	}
	if s.cfg.Jobs != nil {
		m := s.cfg.Jobs.Metrics()
		resp.Jobs = &m
	}
	if s.cfg.Ring != nil {
		acc := s.cfg.Dispatcher.metricsAccumNow(time.Now())
		resp.Accum = wireAccumFrom(&acc)
	}
	if s.cfg.Audit != nil {
		a := s.cfg.Audit.Stats()
		resp.Audit = &a
	}
	writeJSON(w, http.StatusOK, resp)
}

// AuditResponse is the GET /v1/audit body: the ledger's counters plus
// its newest records, oldest first. ?n= caps the record count (default
// 100).
type AuditResponse struct {
	Enabled bool           `json:"enabled"`
	Path    string         `json:"path,omitempty"`
	Stats   audit.Stats    `json:"stats"`
	Records []audit.Record `json:"records"`
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	writeJSON(w, http.StatusOK, s.auditResponse(n))
}

// auditResponse builds the ledger view handleAudit serves — shared with
// the fleet transport so a local shard and a forwarded shard report the
// same shape.
func (s *Server) auditResponse(n int) AuditResponse {
	resp := AuditResponse{Records: []audit.Record{}}
	if s.cfg.Audit != nil {
		resp.Enabled = true
		resp.Path = s.cfg.Audit.Path()
		resp.Stats = s.cfg.Audit.Stats()
		if recs := s.cfg.Audit.Recent(n); recs != nil {
			resp.Records = recs
		}
	}
	return resp
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Dispatcher.Status())
}

// --- admin ---

// AdminRequest is the promote/rollback body.
type AdminRequest struct {
	Site    string `json:"site"`
	Version int    `json:"version,omitempty"` // promote only
}

// AdminResponse reports the entry now serving after an admin mutation.
type AdminResponse struct {
	Site           string `json:"site"`
	ServingVersion int    `json:"serving_version"`
	Lang           string `json:"lang"`
	Rule           string `json:"rule"`
}

// persistEntry reports a new stored version to the backend (no-op when
// none is configured).
func (s *Server) persistEntry(e store.Entry, promote bool) error {
	if s.cfg.Backend == nil {
		return nil
	}
	return s.cfg.Backend.AppendEntry(s.cfg.Shard, e, promote)
}

// persistPromotion reports a serving-decision event to the backend.
func (s *Server) persistPromotion(site string, op store.Op, version int) error {
	if s.cfg.Backend == nil {
		return nil
	}
	return s.cfg.Backend.AppendPromotion(s.cfg.Shard, site, op, version)
}

// audit records a lifecycle event in the ledger. Ledger trouble is
// logged, never bounced to the client — the mutation itself is already
// durable through the backend, and the ledger's own chain makes a gap
// visible to Verify-driven monitoring.
func (s *Server) audit(event, site string, version int, detail string) {
	if err := s.cfg.Audit.Append(s.cfg.Shard, event, site, version, detail); err != nil {
		s.cfg.Log.Printf("serve: audit %s %s: %v", event, site, err)
	}
}

// Audit returns the server's audit ledger (nil when auditing is off).
func (s *Server) Audit() *audit.Ledger { return s.cfg.Audit }

func (s *Server) finishAdmin(w http.ResponseWriter, entry store.Entry, err, persistErr error) {
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, ErrUnknownSite) {
			code = http.StatusNotFound
		}
		writeError(w, code, "%v", err)
		return
	}
	if persistErr != nil {
		s.cfg.Log.Printf("serve: persisting store after admin mutation: %v", persistErr)
		writeError(w, http.StatusInternalServerError, "mutation applied but not persisted: %v", persistErr)
		return
	}
	writeJSON(w, http.StatusOK, AdminResponse{
		Site: entry.Site, ServingVersion: entry.Version,
		Lang: entry.Lang, Rule: entry.Rule,
	})
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req AdminRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.finishPromote(w, req)
}

// finishPromote applies a decoded promote against this server's
// dispatcher — the fleet router decodes once and calls the owning
// shard's finishPromote, so the hot-swap (and its epoch bump) happens
// only in the shard that serves the site.
func (s *Server) finishPromote(w http.ResponseWriter, req AdminRequest) {
	if req.Site == "" || req.Version < 1 {
		writeError(w, http.StatusBadRequest, "site and version >= 1 are required")
		return
	}
	if s.refuseNotOwned(w, req.Site) {
		return
	}
	s.lifecycleMu.Lock()
	entry, err := s.cfg.Dispatcher.Promote(req.Site, req.Version)
	var perr error
	if err == nil {
		perr = s.persistPromotion(req.Site, store.OpPromote, entry.Version)
	}
	s.lifecycleMu.Unlock()
	if err == nil && perr == nil {
		s.audit(audit.EventPromote, req.Site, entry.Version, "admin promote")
	}
	s.finishAdmin(w, entry, err, perr)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req AdminRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.finishRollback(w, req)
}

// finishRollback is finishPromote's rollback twin.
func (s *Server) finishRollback(w http.ResponseWriter, req AdminRequest) {
	if req.Site == "" {
		writeError(w, http.StatusBadRequest, "site is required")
		return
	}
	if s.refuseNotOwned(w, req.Site) {
		return
	}
	s.lifecycleMu.Lock()
	entry, err := s.cfg.Dispatcher.Rollback(req.Site)
	var perr error
	if err == nil {
		perr = s.persistPromotion(req.Site, store.OpRollback, entry.Version)
	}
	s.lifecycleMu.Unlock()
	if err == nil && perr == nil {
		s.audit(audit.EventRollback, req.Site, entry.Version, "admin rollback")
	}
	s.finishAdmin(w, entry, err, perr)
}

// --- maintenance plane: async learn + repair jobs ---

// RepairRequest is the POST /v1/repair body: the freshest pages of the
// drifted site, raw HTML.
type RepairRequest struct {
	Site  string   `json:"site"`
	Pages []string `json:"pages"`
	// TimeoutMS shortens the job's learn deadline (default 10x the
	// extract request timeout — learning is orders of magnitude heavier).
	// It may shorten the deadline, never extend it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// LearnRequest is the POST /v1/learn body: a new site's corpus, either
// inline pages or a server-side directory of *.html files (exactly one).
type LearnRequest struct {
	Site  string   `json:"site"`
	Pages []string `json:"pages,omitempty"`
	// CorpusDir names a directory under the server's configured
	// LearnCorpusRoot whose *.html files (flat, not recursive) form the
	// corpus; it is read when the job runs, not at submit. Rejected when
	// the server has no corpus root configured.
	CorpusDir string `json:"corpus_dir,omitempty"`
	// TimeoutMS shortens the job's learn deadline, like RepairRequest's.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// RepairResponse is a finished learn/repair job's result payload
// (Snapshot.Result on GET /v1/jobs/{id}).
type RepairResponse struct {
	Site string `json:"site"`
	// Promoted says whether serving flipped to the re-learned candidate.
	Promoted         bool `json:"promoted"`
	CandidateVersion int  `json:"candidate_version"`
	ServingVersion   int  `json:"serving_version"`
	// Candidate/Incumbent summarize the held-out validation.
	CandidatePages     int    `json:"candidate_nonempty_pages"`
	IncumbentPages     int    `json:"incumbent_nonempty_pages"`
	CandidateRecords   int    `json:"candidate_records"`
	IncumbentRecords   int    `json:"incumbent_records"`
	LearnElapsedMS     int64  `json:"learn_elapsed_ms"`
	ValidationVerdict  string `json:"verdict"`
	TrainPagesUsed     int    `json:"train_pages"`
	HoldoutPagesUsed   int    `json:"holdout_pages"`
	MonitorReset       bool   `json:"monitor_reset"`
	PreviousServingVer int    `json:"previous_serving_version,omitempty"`
}

// JobSnapshot aliases the job manager's wire snapshot — the GET /v1/jobs
// and GET /v1/jobs/{id} body — so serve's HTTP clients need only this
// package.
type JobSnapshot = jobs.Snapshot

// JobAccepted is the 202 body of POST /v1/learn and /v1/repair: poll
// GET /v1/jobs/{id} for completion.
type JobAccepted struct {
	JobID string     `json:"job_id"`
	Kind  jobs.Kind  `json:"kind"`
	Site  string     `json:"site"`
	State jobs.State `json:"state"`
}

// clampTimeout applies a request's timeout_ms to a server-side base
// deadline: it may shorten the deadline, never extend it.
func clampTimeout(base time.Duration, ms int) time.Duration {
	if ms > 0 {
		if t := time.Duration(ms) * time.Millisecond; t < base {
			return t
		}
	}
	return base
}

// RunMaintenance is the learn/repair work both HTTP jobs and the
// auto-repair scanner execute: re-learn the site from fresh pages through
// the repairer (stage → held-out validation → promote only on a strict
// win, or unconditionally for a brand-new site), hot-swap the dispatcher
// binding, and persist the store. It runs on a job worker, never on the
// extract hot path.
func (s *Server) RunMaintenance(ctx context.Context, site string, pages []string, progress func(string)) (*RepairResponse, error) {
	if progress == nil {
		progress = func(string) {}
	}
	prev := 0
	if e, ok := s.cfg.Dispatcher.Store().Active(site); ok {
		prev = e.Version
	}
	progress(fmt.Sprintf("learning from %d pages", len(pages)))
	report, err := s.cfg.Repairer.Repair(ctx, site, pages)
	if err != nil {
		return nil, err
	}
	// Hot-swap so the promoted wrapper serves the very next request.
	progress("validated; refreshing serving binding")
	serving, err := s.cfg.Dispatcher.Refresh(site)
	if err != nil {
		return nil, fmt.Errorf("stored but refresh failed: %w", err)
	}
	// The repairer staged report.Candidate (and possibly promoted it)
	// in the in-memory registry; report the same events to the backend.
	s.lifecycleMu.Lock()
	perr := s.persistEntry(report.Candidate, false)
	if perr == nil && report.Promoted {
		perr = s.persistPromotion(site, store.OpPromote, report.Candidate.Version)
	}
	s.lifecycleMu.Unlock()
	if perr != nil {
		s.cfg.Log.Printf("serve: persisting store after %s job: %v", site, perr)
		return nil, fmt.Errorf("applied but not persisted: %w", perr)
	}
	verdict := "rejected: incumbent keeps serving"
	if report.Promoted {
		verdict = "promoted"
	}
	event, detail := audit.EventCandidate, "repair staged v"+strconv.Itoa(report.Candidate.Version)
	if prev == 0 {
		event, detail = audit.EventLearn, "learned new site"
	}
	s.audit(event, site, report.Candidate.Version, detail)
	if report.Promoted {
		s.audit(audit.EventPromote, site, report.Candidate.Version, "validated: "+verdict)
	}
	return &RepairResponse{
		Site:               site,
		Promoted:           report.Promoted,
		CandidateVersion:   report.Candidate.Version,
		ServingVersion:     serving.Version,
		CandidatePages:     report.CandidateEval.NonEmpty,
		IncumbentPages:     report.IncumbentEval.NonEmpty,
		CandidateRecords:   report.CandidateEval.Records,
		IncumbentRecords:   report.IncumbentEval.Records,
		LearnElapsedMS:     report.LearnElapsed.Milliseconds(),
		ValidationVerdict:  verdict,
		TrainPagesUsed:     report.TrainPages,
		HoldoutPagesUsed:   report.HoldoutPages,
		MonitorReset:       report.Promoted && s.cfg.Dispatcher.Monitor() != nil,
		PreviousServingVer: prev,
	}, nil
}

// submitMaintenance enqueues one learn/repair job and answers 202 + job
// id (or 429/503 when the queue is full / the server is draining).
// loadPages materializes the fresh corpus on the job worker — inline
// pages are captured, corpus directories are read at run time.
func (s *Server) submitMaintenance(w http.ResponseWriter, kind jobs.Kind, site string,
	timeout time.Duration, loadPages func() ([]string, error)) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	snap, err := s.cfg.Jobs.Submit(kind, site, func(ctx context.Context, progress func(string)) (any, error) {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		pages, err := loadPages()
		if err != nil {
			return nil, err
		}
		return s.RunMaintenance(ctx, site, pages, progress)
	})
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After",
				strconv.Itoa(int(s.cfg.Gate.RetryAfter()/time.Second)))
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, jobs.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, JobAccepted{
		JobID: snap.ID, Kind: snap.Kind, Site: snap.Site, State: snap.State,
	})
}

// handleRepair enqueues a drift-repair job and returns 202 immediately:
// repair is maintenance-plane work, and holding an HTTP request open
// through a full re-learn would serialize operators (and automation)
// behind the learn pool. Poll GET /v1/jobs/{id} for the outcome.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req RepairRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.finishRepair(w, req)
}

// finishRepair validates a decoded repair request and enqueues it on
// this server's job plane. The fleet router routes by req.Site, so the
// re-learn runs on — and hot-swaps — only the owning shard.
func (s *Server) finishRepair(w http.ResponseWriter, req RepairRequest) {
	if s.cfg.Repairer == nil {
		writeError(w, http.StatusNotImplemented,
			"repair is not configured on this server (no annotator)")
		return
	}
	if req.Site == "" || len(req.Pages) < 2 {
		writeError(w, http.StatusBadRequest, "site and at least 2 pages are required")
		return
	}
	if s.refuseNotOwned(w, req.Site) {
		return
	}
	if len(req.Pages) > s.cfg.MaxPages {
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d pages exceeds the per-request cap of %d", len(req.Pages), s.cfg.MaxPages)
		return
	}
	pages := req.Pages
	s.submitMaintenance(w, jobs.KindRepair, req.Site, clampTimeout(s.cfg.JobTimeout, req.TimeoutMS),
		func() ([]string, error) { return pages, nil })
}

// handleLearn enqueues a new-site learn job: corpus in (inline or by
// server-side path), validated + promoted wrapper out, hot-swapped into
// the dispatcher — the over-the-wire half of the engine's batch learning.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req LearnRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.finishLearn(w, req)
}

// finishLearn validates a decoded learn request and enqueues it. A
// brand-new site routed here by the fleet router lands on the shard the
// ring assigns it, so once learned it serves from the right place.
func (s *Server) finishLearn(w http.ResponseWriter, req LearnRequest) {
	if s.cfg.Repairer == nil {
		writeError(w, http.StatusNotImplemented,
			"learn is not configured on this server (no annotator)")
		return
	}
	if s.refuseNotOwned(w, req.Site) {
		return
	}
	switch {
	case req.Site == "":
		writeError(w, http.StatusBadRequest, "site is required")
		return
	case len(req.Pages) > 0 && req.CorpusDir != "":
		writeError(w, http.StatusBadRequest, "set pages or corpus_dir, not both")
		return
	case len(req.Pages) == 0 && req.CorpusDir == "":
		writeError(w, http.StatusBadRequest, "pages or corpus_dir is required")
		return
	case req.CorpusDir == "" && len(req.Pages) < 2:
		writeError(w, http.StatusBadRequest, "at least 2 pages are required")
		return
	case len(req.Pages) > s.cfg.MaxPages:
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d pages exceeds the per-request cap of %d", len(req.Pages), s.cfg.MaxPages)
		return
	}
	loadPages := func() ([]string, error) { return req.Pages, nil }
	if req.CorpusDir != "" {
		dir, err := s.confineCorpusDir(req.CorpusDir)
		if err != nil {
			writeError(w, http.StatusForbidden, "%v", err)
			return
		}
		loadPages = func() ([]string, error) { return readCorpusDir(dir, s.cfg.MaxPages) }
	}
	s.submitMaintenance(w, jobs.KindLearn, req.Site, clampTimeout(s.cfg.JobTimeout, req.TimeoutMS), loadPages)
}

// confineCorpusDir resolves a learn request's corpus_dir against the
// configured root and rejects anything outside it (or everything, when no
// root is configured) — the HTTP surface must not become an arbitrary
// filesystem read. Both sides are resolved through symlinks before the
// containment check, so a link planted under the root cannot smuggle the
// walk out of it.
func (s *Server) confineCorpusDir(dir string) (string, error) {
	if s.cfg.LearnCorpusRoot == "" {
		return "", fmt.Errorf("corpus_dir is disabled on this server (no corpus root configured); post inline pages instead")
	}
	root, err := filepath.Abs(s.cfg.LearnCorpusRoot)
	if err != nil {
		return "", fmt.Errorf("corpus root: %v", err)
	}
	if root, err = filepath.EvalSymlinks(root); err != nil {
		return "", fmt.Errorf("corpus root: %v", err)
	}
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(root, dir)
	}
	resolved, err := filepath.EvalSymlinks(filepath.Clean(dir))
	if err != nil {
		return "", fmt.Errorf("corpus_dir %s: %v", dir, err)
	}
	if resolved != root && !strings.HasPrefix(resolved, root+string(filepath.Separator)) {
		return "", fmt.Errorf("corpus_dir %s is outside the configured corpus root", dir)
	}
	return resolved, nil
}

// readCorpusDir loads a learn job's corpus from a (confined) server-side
// directory: its *.html files — flat, not recursive — sorted by name,
// capped at maxPages.
func readCorpusDir(dir string, maxPages int) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".html") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) < 2 {
		return nil, fmt.Errorf("corpus dir %s: need at least 2 *.html files, found %d", dir, len(names))
	}
	if len(names) > maxPages {
		names = names[:maxPages]
	}
	pages := make([]string, len(names))
	for i, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("corpus dir: %w", err)
		}
		pages[i] = string(b)
	}
	return pages, nil
}

// handleJobs lists every retained job.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Jobs == nil {
		writeJSON(w, http.StatusOK, []jobs.Snapshot{})
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Jobs.List())
}

// handleJobGet serves GET /v1/jobs/{id}; the router extracted id.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request, id string) {
	if s.cfg.Jobs == nil {
		writeError(w, http.StatusNotFound, "no job manager on this server")
		return
	}
	snap, err := s.cfg.Jobs.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleJobCancel serves POST /v1/jobs/{id}/cancel; the router extracted id.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request, id string) {
	if s.cfg.Jobs == nil {
		writeError(w, http.StatusNotFound, "no job manager on this server")
		return
	}
	snap, err := s.cfg.Jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, jobs.ErrFinished):
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, snap)
	}
}
