package serve

import (
	"testing"

	"autowrap/internal/chaos"
)

// FuzzDecodeExtractRequest throws the chaos corpus — and everything the
// fuzzer grows from it — at the pooled wire decoder and holds it to three
// promises: it errors exactly when encoding/json errors, it never
// panics, and nothing it returns aliases the pooled body buffer. The
// fixed seeds are the shapes that historically break hand-rolled
// decoders (truncation at structural boundaries, type confusion, raw
// NULs, invalid UTF-8, scanner state abuse); chaos.NewBodies extends
// them with seeded mutations of a valid request.
func FuzzDecodeExtractRequest(f *testing.F) {
	f.Add([]byte(`{"site":"shop","page":{"id":"p1","html":"<html><body>x</body></html>"}}`))
	f.Add([]byte(`{"site":"shop","pages":[{"id":"a","html":"<p>1</p>"},{"html":"<p>2</p>"}]}`))
	f.Add([]byte(`{"site":"s","timeout_ms":250}`))
	f.Add([]byte(`{"site":"esc","page":{"html":"Aé☃ 😀 q\\\"r"}}`))
	for _, seed := range chaos.Seeds() {
		f.Add(seed)
	}
	bodies := chaos.NewBodies(1)
	for i := 0; i < 64; i++ {
		f.Add(bodies.Malformed())
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		ref, refErr := decodeRef(body)

		// Decode through the real pool so reuse bugs (a scratch not fully
		// reset between requests) are reachable, not just fresh-struct ones.
		sc := acquireScratch()
		defer releaseScratch(sc)
		sc.body = append(sc.body[:0], body...)
		fastErr := decodeExtractRequest(sc)

		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("%q: error mismatch: encoding/json=%v fast=%v", body, refErr, fastErr)
		}
		if refErr != nil {
			return
		}

		// Capture every retained string, then scribble over the body buffer
		// the way the pool's next user would: the strings must not move.
		site, timeoutMS := sc.site, sc.timeoutMS
		hasSingle, single := sc.hasSingle, sc.single
		pages := append([]pageIn(nil), sc.pages...)
		for i := range sc.body {
			sc.body[i] = 'Z'
		}

		if site != ref.Site {
			t.Fatalf("%q: site = %q, want %q", body, site, ref.Site)
		}
		if timeoutMS != ref.TimeoutMS {
			t.Fatalf("%q: timeout_ms = %d, want %d", body, timeoutMS, ref.TimeoutMS)
		}
		if hasSingle != (ref.Page != nil) {
			t.Fatalf("%q: hasSingle = %v, want %v", body, hasSingle, ref.Page != nil)
		}
		if ref.Page != nil && (single.id != ref.Page.ID || single.html != ref.Page.HTML) {
			t.Fatalf("%q: page = %+v, want %+v", body, single, *ref.Page)
		}
		if len(pages) != len(ref.Pages) {
			t.Fatalf("%q: %d pages, want %d", body, len(pages), len(ref.Pages))
		}
		for i := range pages {
			if pages[i].id != ref.Pages[i].ID || pages[i].html != ref.Pages[i].HTML {
				t.Fatalf("%q: pages[%d] = %+v, want %+v", body, i, pages[i], ref.Pages[i])
			}
		}
	})
}
