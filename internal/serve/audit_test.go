package serve_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"autowrap/internal/audit"
	"autowrap/internal/serve"
	"autowrap/internal/shard"
	"autowrap/internal/store"
	"autowrap/internal/store/logstore"
	"autowrap/internal/testutil/leakcheck"
)

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return decode[T](t, resp)
}

// auditServer builds a single server over the two-version store with a
// log backend and a live ledger, both rooted in a temp dir.
func auditServer(t *testing.T) (*httptest.Server, *store.Store, string, string) {
	t.Helper()
	leakcheck.Check(t)
	dir := t.TempDir()
	st := twoVersionStore(t)
	logDir := filepath.Join(dir, "wrappers.log")
	lb, err := logstore.Open(logDir, logstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.SeedFrom(st); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lb.Close() })
	auditPath := filepath.Join(dir, "audit.jsonl")
	led, err := audit.Open(auditPath, audit.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	srv, err := serve.NewServer(serve.ServerConfig{
		Dispatcher: serve.NewDispatcher(st, serve.Options{}),
		Backend:    lb,
		Shard:      0,
		Audit:      led,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, st, logDir, auditPath
}

// TestHTTPAuditLifecycleEvents pins the end-to-end audit trail: promote
// and rollback over HTTP land in the ledger as chained records, surface
// under GET /v1/audit and /metrics, and the file verifies from genesis.
func TestHTTPAuditLifecycleEvents(t *testing.T) {
	hs, _, logDir, auditPath := auditServer(t)

	resp := postJSON(t, hs.URL+"/v1/promote", serve.AdminRequest{Site: "shop", Version: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	resp = postJSON(t, hs.URL+"/v1/rollback", serve.AdminRequest{Site: "shop"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d", resp.StatusCode)
	}

	out := getJSON[serve.AuditResponse](t, hs.URL+"/v1/audit")
	if !out.Enabled || out.Path == "" {
		t.Fatalf("audit endpoint reports disabled: %+v", out)
	}
	if out.Stats.Events < 2 {
		t.Fatalf("expected at least promote+rollback events, got %+v", out.Stats)
	}
	var sawPromote, sawRollback bool
	for _, rec := range out.Records {
		switch {
		case rec.Event == audit.EventPromote && rec.Site == "shop" && rec.Version == 2:
			sawPromote = true
		case rec.Event == audit.EventRollback && rec.Site == "shop":
			sawRollback = true
		}
	}
	if !sawPromote || !sawRollback {
		t.Fatalf("ledger missing lifecycle events (promote=%v rollback=%v): %+v",
			sawPromote, sawRollback, out.Records)
	}

	m := getJSON[serve.MetricsResponse](t, hs.URL+"/metrics")
	if m.Audit == nil || m.Audit.Events != out.Stats.Events {
		t.Fatalf("metrics audit counters diverge from the ledger: %+v vs %+v", m.Audit, out.Stats)
	}

	if _, err := audit.VerifyFile(auditPath); err != nil {
		t.Fatalf("ledger does not verify after lifecycle traffic: %v", err)
	}

	// The same mutations reached the durable log: a cold reopen replays
	// promote-then-rollback back to v1 active with both versions kept.
	lb2, err := logstore.Open(logDir, logstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lb2.Close()
	cold, err := lb2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if act, ok := cold.Active("shop"); !ok || act.Version != 1 {
		t.Fatalf("cold replay of the log: active %+v ok=%v, want v1", act, ok)
	}
	if n := len(cold.History("shop")); n != 2 {
		t.Fatalf("cold replay kept %d versions, want 2", n)
	}
}

// TestHTTPAuditDisabled pins that a server without a ledger still serves
// GET /v1/audit (enabled=false, empty records) and omits audit counters
// from /metrics.
func TestHTTPAuditDisabled(t *testing.T) {
	_, hs := newTestServer(t, twoVersionStore(t), nil)
	out := getJSON[serve.AuditResponse](t, hs.URL+"/v1/audit")
	if out.Enabled || len(out.Records) != 0 || out.Records == nil {
		t.Fatalf("audit-off endpoint = %+v", out)
	}
	m := getJSON[serve.MetricsResponse](t, hs.URL+"/metrics")
	if m.Audit != nil {
		t.Fatalf("audit-off metrics still carry audit stats: %+v", m.Audit)
	}
}

// auditFleet builds a sharded fleet whose shards share one log backend
// and one ledger — the production wiring of cmd/wrapserved's fleet mode.
func auditFleet(t *testing.T, shards, nSites int) (*fleetFixture, *logstore.Backend, *audit.Ledger, string) {
	t.Helper()
	leakcheck.Check(t)
	dir := t.TempDir()
	full := store.New()
	sites := make([]string, nSites)
	for i := range sites {
		sites[i] = fmt.Sprintf("site-%03d.example.com", i)
		if _, err := full.Put(sites[i], wrapperFor("a"), store.Meta{
			Profile: &store.Profile{Pages: 4, MeanRecords: 3},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := full.PutCandidate(sites[i], wrapperFor("b"), store.Meta{
			Profile: &store.Profile{Pages: 4, MeanRecords: 3},
		}); err != nil {
			t.Fatal(err)
		}
	}
	logDir := filepath.Join(dir, "wrappers.log")
	lb, err := logstore.Open(logDir, logstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.SeedFrom(full); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lb.Close() })
	led, err := audit.Open(filepath.Join(dir, "audit.jsonl"), audit.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	ring := shard.NewRing(shards, 64)
	router, err := serve.NewShardRouter(ring, func(k int) (*serve.Server, error) {
		part, err := lb.LoadPartition(ring, k)
		if err != nil {
			return nil, err
		}
		return serve.NewServer(serve.ServerConfig{
			Dispatcher: serve.NewDispatcher(part, serve.Options{}),
			Backend:    lb,
			Shard:      k,
			Audit:      led,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(router.Handler())
	t.Cleanup(hs.Close)
	return &fleetFixture{router: router, hs: hs, ring: ring, sites: sites}, lb, led, logDir
}

// TestFleetAuditSharedLedger pins fleet auditing: lifecycle events from
// different shards land on ONE chain, tagged with their shard, and the
// fleet's /v1/audit and /metrics expose it.
func TestFleetAuditSharedLedger(t *testing.T) {
	f, _, _, _ := auditFleet(t, 3, 9)

	// Promote every site: events necessarily span multiple shards.
	for _, site := range f.sites {
		resp := postJSON(t, f.hs.URL+"/v1/promote", serve.AdminRequest{Site: site, Version: 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("promote %s: status %d", site, resp.StatusCode)
		}
	}
	out := getJSON[serve.AuditResponse](t, f.hs.URL+"/v1/audit")
	if !out.Enabled {
		t.Fatal("fleet audit endpoint reports disabled")
	}
	if out.Stats.Events != uint64(len(f.sites)) {
		t.Fatalf("fleet ledger has %d events, want %d", out.Stats.Events, len(f.sites))
	}
	shardsSeen := map[int]bool{}
	for _, rec := range out.Records {
		if rec.Event == audit.EventPromote {
			shardsSeen[rec.Shard] = true
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("one chain should collect events across shards, saw only %v", shardsSeen)
	}
	m := getJSON[serve.FleetMetricsResponse](t, f.hs.URL+"/metrics")
	if m.Audit == nil || m.Audit.Events != out.Stats.Events {
		t.Fatalf("fleet metrics audit counters diverge: %+v vs %+v", m.Audit, out.Stats)
	}
}

// segmentBytes sums the size of every log segment in dir.
func segmentBytes(t *testing.T, dir string) int64 {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestFleetLogBackendAppendsAreShardLocal is the regression pin for the
// fleet-persistence hot spot: under the log backend a lifecycle event on
// one shard appends O(event) bytes — NOT a merged O(registry) save — and
// leaves every other shard's partition byte-identical across a cold
// reopen.
func TestFleetLogBackendAppendsAreShardLocal(t *testing.T) {
	f, lb, _, logDir := auditFleet(t, 3, 24)

	// Freeze every partition's pre-promote image.
	before := map[int][]byte{}
	for k := 0; k < 3; k++ {
		part, err := lb.LoadPartition(f.ring, k)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := part.Encode()
		if err != nil {
			t.Fatal(err)
		}
		before[k] = enc
	}
	seedSize := segmentBytes(t, logDir)

	site := f.sites[0]
	owner := f.ring.Owner(site)
	resp := postJSON(t, f.hs.URL+"/v1/promote", serve.AdminRequest{Site: site, Version: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}

	// O(event): one promotion must append one small record. The seed
	// snapshot of 24 two-version sites is orders of magnitude bigger; the
	// old merged-save hot spot would rewrite all of it.
	grown := segmentBytes(t, logDir) - seedSize
	if grown <= 0 {
		t.Fatal("promotion appended nothing to the log")
	}
	if grown*10 > seedSize {
		t.Fatalf("promotion grew the log by %d bytes against a %d-byte registry snapshot — O(registry), not O(event)", grown, seedSize)
	}

	// Cold reopen: only the owning shard's partition changed.
	lb2, err := logstore.Open(logDir, logstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lb2.Close()
	for k := 0; k < 3; k++ {
		part, err := lb2.LoadPartition(f.ring, k)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := part.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if k == owner {
			if string(enc) == string(before[k]) {
				t.Fatalf("owning shard %d unchanged after promote", k)
			}
			if act, ok := part.Active(site); !ok || act.Version != 2 {
				t.Fatalf("owning shard lost the promotion: %+v ok=%v", act, ok)
			}
		} else if string(enc) != string(before[k]) {
			t.Fatalf("shard %d mutated by shard %d's promotion", k, owner)
		}
	}
}
