package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"autowrap/internal/jobs"
	"autowrap/internal/store"
)

// httpShard is the forwarding ShardClient: the shard is an independently
// booted wrapserved process, reached over a per-shard pool of persistent
// connections. Every request carries the front end's ring fingerprint
// (RingHashHeader) so the peer can refuse a topology mismatch, and the
// front's request deadline propagates as the forwarded request's context
// (plus the body's own timeout_ms, which the shard clamps again).
// Write-path calls are passthrough — the shard's status, backpressure
// headers (Retry-After, Location) and error bodies reach the client
// unchanged; 429 and 503 in particular are the shard's own words.
// Read-path calls retry once on transport errors; write paths never
// retry (an extract, promote or learn may have been applied even when
// the response was lost).
type httpShard struct {
	shard    int
	addr     string // host:port
	base     string // http://host:port
	ringHash string
	client   *http.Client
	// timeout bounds any single forwarded call when the incoming request
	// carries no tighter deadline.
	timeout time.Duration
	log     *log.Logger
}

// newHTTPShard builds the client for one peer with its own persistent
// connection pool (connections to a dead peer must not poison another
// peer's pool).
func newHTTPShard(shardID int, addr, ringHash string, timeout time.Duration, lg *log.Logger) *httpShard {
	tr := &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   2 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        32,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
	}
	return &httpShard{
		shard:    shardID,
		addr:     addr,
		base:     "http://" + addr,
		ringHash: ringHash,
		client:   &http.Client{Transport: tr},
		timeout:  timeout,
		log:      lg,
	}
}

// unavailable answers for a peer the front could not reach: 503 with the
// named per-shard error, so a dead process degrades the fleet to partial
// availability instead of a global failure.
func (c *httpShard) unavailable(w http.ResponseWriter, what string, err error) {
	writeError(w, http.StatusServiceUnavailable,
		"%v: shard %d (%s): %s: %v", ErrShardUnavailable, c.shard, c.addr, what, err)
}

// relay copies a peer's response to the client: status, content headers,
// the backpressure and job-location headers, then the body.
func relay(w http.ResponseWriter, resp *http.Response) {
	h := w.Header()
	for _, k := range [...]string{"Content-Type", "Content-Length", "Retry-After", "Allow", "Location"} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// do sends one forwarded request. Idempotent GETs retry once on a
// transport error — the only failure mode where retrying cannot double-
// apply anything; everything else fails to the caller immediately.
func (c *httpShard) do(req *http.Request, idempotent bool) (*http.Response, error) {
	resp, err := c.client.Do(req)
	if err != nil && idempotent && req.Context().Err() == nil {
		resp, err = c.client.Do(req)
	}
	return resp, err
}

// get builds an idempotent read against the peer, bounded by the
// client's call budget when ctx has no tighter deadline.
func (c *httpShard) get(ctx context.Context, path string) (*http.Response, context.CancelFunc, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	req.Header.Set(RingHashHeader, c.ringHash)
	resp, err := c.do(req, true)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

// getJSON performs an idempotent read and decodes the 200 body into v.
func (c *httpShard) getJSON(ctx context.Context, path string, v any) error {
	resp, cancel, err := c.get(ctx, path)
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("shard %d (%s): GET %s: %s: %s",
			c.shard, c.addr, path, resp.Status, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// forwardJSON re-encodes a decoded admin/maintenance request and relays
// the peer's answer. These paths are rare (operator calls, repair
// completions); encoding/json is fine here.
func (c *httpShard) forwardJSON(w http.ResponseWriter, ctx context.Context, path string, body any, timeoutMS int) {
	buf, err := json.Marshal(body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding forwarded request: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(ctx, clampTimeout(c.timeout, timeoutMS))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		c.unavailable(w, path, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RingHashHeader, c.ringHash)
	resp, err := c.do(req, false)
	if err != nil {
		c.unavailable(w, path, err)
		return
	}
	defer resp.Body.Close()
	relay(w, resp)
}

// Extract forwards the still-encoded request body (sc.raw — the decode
// unescapes sc.body in place, so the raw copy is the forwardable one).
// The shard re-decodes with the same codec; deadline propagation is the
// context here plus the timeout_ms already inside the body.
func (c *httpShard) Extract(w http.ResponseWriter, r *http.Request, sc *extractScratch) {
	ctx, cancel := context.WithTimeout(r.Context(), clampTimeout(c.timeout, sc.timeoutMS))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/extract", bytes.NewReader(sc.raw))
	if err != nil {
		c.unavailable(w, "extract", err)
		return
	}
	req.ContentLength = int64(len(sc.raw))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RingHashHeader, c.ringHash)
	resp, err := c.do(req, false)
	if err != nil {
		c.unavailable(w, "extract", err)
		return
	}
	defer resp.Body.Close()
	relay(w, resp)
}

func (c *httpShard) Lifecycle(w http.ResponseWriter, op store.Op, req AdminRequest) {
	path := "/v1/promote"
	if op == store.OpRollback {
		path = "/v1/rollback"
	}
	c.forwardJSON(w, context.Background(), path, req, 0)
}

func (c *httpShard) Learn(w http.ResponseWriter, req LearnRequest) {
	c.forwardJSON(w, context.Background(), "/v1/learn", req, req.TimeoutMS)
}

func (c *httpShard) Repair(w http.ResponseWriter, req RepairRequest) {
	c.forwardJSON(w, context.Background(), "/v1/repair", req, req.TimeoutMS)
}

func (c *httpShard) Jobs(ctx context.Context) ([]jobs.Snapshot, error) {
	var out []jobs.Snapshot
	if err := c.getJSON(ctx, "/v1/jobs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// jobPassthrough relays GET /v1/jobs/{id} or POST .../cancel. A peer 404
// reports false so the router can keep looking; a transport failure is
// answered here (the job, if it exists, lives on an unreachable shard).
func (c *httpShard) jobPassthrough(w http.ResponseWriter, r *http.Request, path string, post bool) bool {
	ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
	defer cancel()
	method := http.MethodGet
	if post {
		method = http.MethodPost
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, nil)
	if err != nil {
		c.unavailable(w, path, err)
		return true
	}
	req.Header.Set(RingHashHeader, c.ringHash)
	resp, err := c.do(req, !post)
	if err != nil {
		c.unavailable(w, path, err)
		return true
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return false
	}
	relay(w, resp)
	return true
}

func (c *httpShard) JobGet(w http.ResponseWriter, r *http.Request, id string) bool {
	return c.jobPassthrough(w, r, jobsPrefix+id, false)
}

func (c *httpShard) JobCancel(w http.ResponseWriter, r *http.Request, id string) bool {
	return c.jobPassthrough(w, r, jobsPrefix+id+"/cancel", true)
}

func (c *httpShard) Metrics(ctx context.Context, now time.Time) (ShardReport, error) {
	var m MetricsResponse
	if err := c.getJSON(ctx, "/metrics", &m); err != nil {
		return ShardReport{}, err
	}
	rep := ShardReport{
		Gate:       m.Gate,
		Jobs:       m.Jobs,
		Sites:      m.Sites,
		AuditStats: m.Audit,
	}
	if m.Accum != nil {
		rep.accum = m.Accum.toAccum()
	}
	return rep, nil
}

func (c *httpShard) Healthz(ctx context.Context) (HealthzResponse, error) {
	resp, cancel, err := c.get(ctx, "/healthz")
	if err != nil {
		return HealthzResponse{}, err
	}
	defer cancel()
	defer resp.Body.Close()
	// A draining shard answers 503 with the same body shape; both are a
	// reachable peer's truthful view.
	var h HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return HealthzResponse{}, fmt.Errorf("shard %d (%s): healthz: %v", c.shard, c.addr, err)
	}
	return h, nil
}

func (c *httpShard) AuditView(ctx context.Context, n int) (AuditResponse, error) {
	var a AuditResponse
	if err := c.getJSON(ctx, fmt.Sprintf("/v1/audit?n=%d", n), &a); err != nil {
		return AuditResponse{}, err
	}
	return a, nil
}

// SetDraining is a no-op over HTTP: a remote shard's readiness belongs
// to its own process; the front steers traffic away by flipping itself.
func (c *httpShard) SetDraining(bool) {}

// Drain asks the peer to run its job plane dry (POST /v1/drain). The
// front calls this after its own listener stopped accepting — the
// ordered fleet drain: front first, then shards.
func (c *httpShard) Drain(ctx context.Context) error {
	ms := 0
	if dl, ok := ctx.Deadline(); ok {
		ms = int(time.Until(dl) / time.Millisecond)
	}
	buf, _ := json.Marshal(DrainRequest{TimeoutMS: ms})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/drain", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RingHashHeader, c.ringHash)
	resp, err := c.do(req, false)
	if err != nil {
		return fmt.Errorf("%w: shard %d (%s): drain: %v", ErrShardUnavailable, c.shard, c.addr, err)
	}
	defer resp.Body.Close()
	var dr DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return fmt.Errorf("shard %d (%s): drain: %v", c.shard, c.addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %d (%s): drain: %s: %s", c.shard, c.addr, resp.Status, dr.Error)
	}
	if dr.Error != "" {
		return fmt.Errorf("shard %d (%s): drain: %s", c.shard, c.addr, dr.Error)
	}
	return nil
}
