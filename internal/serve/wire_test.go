package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"autowrap/internal/extract"
)

// decodeRef is the reference decode: encoding/json into the wire struct,
// with the same strictness the old readJSON had (DisallowUnknownFields was
// never set; trailing data was rejected). The trailing check is
// byte-accurate rather than dec.More() — More() never flags a stray '}'
// or ']' after the value, and "anything but whitespace is trailing data"
// is the contract the wire decoder actually enforces.
func decodeRef(body []byte) (ExtractRequest, error) {
	var req ExtractRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(&req); err != nil {
		return req, err
	}
	rest := body[dec.InputOffset():]
	for _, c := range rest {
		if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			return req, errors.New("trailing data after JSON body")
		}
	}
	return req, nil
}

func decodeFast(t *testing.T, body []byte) (*extractScratch, error) {
	t.Helper()
	sc := &extractScratch{body: append([]byte(nil), body...)}
	err := decodeExtractRequest(sc)
	return sc, err
}

// TestDecodeExtractRequestMatchesEncodingJSON pins the hand-rolled decoder
// to encoding/json semantics over the request shapes the service accepts:
// same decoded fields on valid bodies, an error wherever the reference
// errors.
func TestDecodeExtractRequestMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		`{"site":"shop","page":{"id":"p1","html":"<html><body>x</body></html>"}}`,
		`{"site":"shop","pages":[{"id":"a","html":"<p>1</p>"},{"html":"<p>2</p>"}]}`,
		`{"site":"shop","pages":[]}`,
		`{"site":"shop","pages":null}`,
		`{"site":"shop","page":null}`,
		`{}`,
		`{"site":""}`,
		`{"site":"s","timeout_ms":250}`,
		`{"site":"s","timeout_ms":-3}`,
		`{"SITE":"upper","Pages":[{"ID":"x","HTML":"<i>y</i>"}]}`,
		`{"site":"esc","page":{"id":"a\tb","html":"<p>\u0041\u00e9\u2603 \ud83d\ude00 q\\\"r</p>"}}`,
		`{"site":"lone","page":{"html":"\ud800 tail"}}`,
		`{"site":"ctrl","page":{"html":"line1\nline2\r\t\u0001"}}`,
		"  {\n\t\"site\" : \"ws\" , \"pages\" : [ {\"html\":\"<p>a</p>\"} ] }  \n",
		`{"site":"extra","unknown":{"deep":[1,2,{"x":null}],"s":"v"},"page":{"html":"h","junk":true}}`,
		`{"site":"dupes","site":"last-wins"}`,
		`{"site":"solidus","page":{"html":"a\/b"}}`,
		`{"site":"nulls","page":null,"pages":null,"timeout_ms":null}`,
		`null`,
		`{"site":null}`,
		`{"num":1.25e+3,"site":"n"}`,
		`{"num":-0,"site":"n"}`,
		// invalid bodies: both decoders must reject
		``,
		`{"site":"x"`,
		`{"site":"x"} trailing`,
		`{"site":"x"}{}`,
		`["not an object"]`,
		`{"site":42}`,
		`{"site":"x","timeout_ms":"fast"}`,
		`{"site":"x","timeout_ms":1.5}`,
		`{"site":"x","pages":{"html":"h"}}`,
		`{"site":"x","page":["h"]}`,
		`{"site":"x","page":{"html":"unterminated}`,
		`{"site":"bad\escape"}`,
		`{"site":"x",}`,
		`{"site" "x"}`,
		`{"":00}`,
		`{"num":01,"site":"x"}`,
		`{"num":1.,"site":"x"}`,
		`{"num":1e,"site":"x"}`,
		`{"num":1e+,"site":"x"}`,
		`{"site":"x","timeout_ms":00}`,
		`{"site":"x"}}`,
	}
	for _, body := range cases {
		ref, refErr := decodeRef([]byte(body))
		sc, fastErr := decodeFast(t, []byte(body))
		if (refErr == nil) != (fastErr == nil) {
			t.Errorf("%q: error mismatch: encoding/json=%v fast=%v", body, refErr, fastErr)
			continue
		}
		if refErr != nil {
			continue
		}
		if sc.site != ref.Site {
			t.Errorf("%q: site = %q, want %q", body, sc.site, ref.Site)
		}
		if sc.timeoutMS != ref.TimeoutMS {
			t.Errorf("%q: timeout_ms = %d, want %d", body, sc.timeoutMS, ref.TimeoutMS)
		}
		if sc.hasSingle != (ref.Page != nil) {
			t.Errorf("%q: hasSingle = %v, want %v", body, sc.hasSingle, ref.Page != nil)
		}
		if ref.Page != nil && (sc.single.id != ref.Page.ID || sc.single.html != ref.Page.HTML) {
			t.Errorf("%q: page = %+v, want %+v", body, sc.single, *ref.Page)
		}
		if len(sc.pages) != len(ref.Pages) {
			t.Errorf("%q: %d pages, want %d", body, len(sc.pages), len(ref.Pages))
			continue
		}
		for i := range sc.pages {
			if sc.pages[i].id != ref.Pages[i].ID || sc.pages[i].html != ref.Pages[i].HTML {
				t.Errorf("%q: pages[%d] = %+v, want %+v", body, i, sc.pages[i], ref.Pages[i])
			}
		}
	}
}

// TestDecodeInvalidUTF8MatchesEncodingJSON pins the U+FFFD coercion: raw
// invalid UTF-8 bytes inside string values decode to the same replacement
// characters encoding/json produces.
func TestDecodeInvalidUTF8MatchesEncodingJSON(t *testing.T) {
	body := []byte(`{"site":"a` + string([]byte{0xff, 0xfe}) + `b","page":{"html":"x` + string([]byte{0xC3}) + `"}}`)
	ref, refErr := decodeRef(body)
	sc, fastErr := decodeFast(t, body)
	if refErr != nil || fastErr != nil {
		t.Fatalf("decode errors: encoding/json=%v fast=%v", refErr, fastErr)
	}
	if sc.site != ref.Site {
		t.Errorf("site = %q, want %q", sc.site, ref.Site)
	}
	if ref.Page == nil || sc.single.html != ref.Page.HTML {
		t.Errorf("html = %q, want %+v", sc.single.html, ref.Page)
	}
}

// TestDecodedStringsDoNotAliasBody pins the ownership contract: every
// string handed past the handler (site, ids, HTML) must survive the body
// buffer being recycled and scribbled over.
func TestDecodedStringsDoNotAliasBody(t *testing.T) {
	body := []byte(`{"site":"shop","pages":[{"id":"p-1","html":"<p>keep \u0041 this</p>"}]}`)
	sc, err := decodeFast(t, body)
	if err != nil {
		t.Fatal(err)
	}
	site, id, html := sc.site, sc.pages[0].id, sc.pages[0].html
	for i := range sc.body {
		sc.body[i] = 'Z'
	}
	if site != "shop" || id != "p-1" || html != "<p>keep A this</p>" {
		t.Fatalf("decoded strings changed after buffer reuse: %q %q %q", site, id, html)
	}
}

// encodeRef is the reference encoding: what writeJSON put on the wire for
// the response the old handler built from the same Extraction.
func encodeRef(t *testing.T, ext *Extraction, reqErr error) []byte {
	t.Helper()
	resp := ExtractResponse{Site: ext.Site, Version: ext.Version,
		Results: make([]PageOutput, len(ext.Results))}
	for i := range ext.Results {
		res := &ext.Results[i]
		out := PageOutput{ID: res.ID, Records: res.Texts,
			ElapsedUS: res.Elapsed.Microseconds()}
		if out.Records == nil {
			out.Records = []string{}
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
		}
		resp.Results[i] = out
	}
	if reqErr != nil {
		resp.Error = reqErr.Error()
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAppendExtractResponseByteIdentical locks the hand-rolled encoder to
// encoding/json's exact bytes — field order, omitempty behavior, HTML-safe
// escaping, invalid-UTF-8 replacement and the trailing newline — across
// record contents chosen to hit every escaping branch.
func TestAppendExtractResponseByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		ext  Extraction
		err  error
	}{
		{name: "empty", ext: Extraction{Site: "s", Version: 1}},
		{name: "plain", ext: Extraction{Site: "shop", Version: 3, Results: []extract.Result{
			{ID: "p1", Texts: []string{"alpha", "beta"}, Elapsed: 1500 * time.Microsecond},
			{Texts: []string{}, Elapsed: time.Millisecond},
			{ID: "p3"},
		}}},
		{name: "escapes", ext: Extraction{Site: `si"te\`, Version: 12, Results: []extract.Result{
			{ID: "tab\tnl\n", Texts: []string{
				"<b>html & such</b>",
				"quote\" back\\ slash/ solidus",
				"ctrl\x01\x1f\r\t",
				"unicode é ☃ 😀",
				"ls\u2028ps\u2029end",
				"bad utf8 \xff\xc3 tail",
			}, Elapsed: 42 * time.Microsecond},
		}}},
		{name: "page error", ext: Extraction{Site: "s", Version: 2, Results: []extract.Result{
			{ID: "a", Err: errors.New(`page failed: <nil> & "why"`)},
		}}},
		{name: "request error", ext: Extraction{Site: "s", Version: 2, Results: []extract.Result{
			{ID: "a", Texts: []string{"x"}},
		}}, err: errors.New("context deadline exceeded")},
	}
	for _, tc := range cases {
		want := encodeRef(t, &tc.ext, tc.err)
		got := appendExtractResponse(nil, &tc.ext, tc.err)
		if !bytes.Equal(got, want) {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, got, want)
		}
	}
}

// decodeAllocBudget is the per-request decode ceiling for a warm scratch on
// a single-page request: one allocation per retained string (site, id,
// html). See docs/PERFORMANCE.md before raising it.
const decodeAllocBudget = 4

// TestDecodeExtractRequestAllocBudget gates the decoder's steady-state
// allocations: with a warm scratch, decoding allocates only the strings
// that outlive the request.
func TestDecodeExtractRequestAllocBudget(t *testing.T) {
	body := `{"site":"shop","page":{"id":"p1","html":"<html><body>` +
		strings.Repeat("<p>row</p>", 32) + `</body></html>"}}`
	sc := acquireScratch()
	defer releaseScratch(sc)
	sc.body = append(sc.body[:0], body...)
	avg := testing.AllocsPerRun(200, func() {
		sc.site, sc.hasSingle, sc.single = "", false, pageIn{}
		if err := decodeExtractRequest(sc); err != nil {
			t.Fatal(err)
		}
		if !sc.hasSingle || sc.single.id != "p1" {
			t.Fatal("decode changed under measurement")
		}
	})
	if avg > decodeAllocBudget {
		t.Fatalf("decode allocates %.1f times per call, budget is %d", avg, decodeAllocBudget)
	}
}
