package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"autowrap/internal/extract"
)

// This file is the hot-path wire codec for POST /v1/extract: a pooled
// request scratch, a specialized JSON decoder that unescapes string values
// in place inside the body buffer, and a response encoder that appends
// directly into a reused buffer. The wire format is exactly the
// ExtractRequest/ExtractResponse JSON that encoding/json produced before —
// the encoder reproduces encoding/json's escaping (including its HTML-safe
// </>/& and the Encoder's trailing newline) byte for byte —
// but the steady-state request path allocates only the strings that outlive
// the request: the site name, page IDs and page HTML.

// pageIn is one decoded page before it becomes an extract.Page.
type pageIn struct{ id, html string }

// extractScratch is the per-request workspace of handleExtract, recycled
// through a sync.Pool. Every request gets exclusive ownership from
// acquireScratch to releaseScratch; nothing handed to the dispatcher or the
// response writer may alias the scratch after release (strings decoded from
// the body are fresh copies precisely so extraction results and the
// recent-page ring never point into pooled memory).
type extractScratch struct {
	body []byte // raw request body; string values are unescaped in place
	out  []byte // response buffer
	// raw is a copy of the body taken before the in-place decode —
	// decoding destroys the encoded form, and a forwarding front end needs
	// the original bytes to relay to the owning shard. Only fleets with
	// remote peers pay for the copy (and the buffer is pooled, so steady
	// state is still allocation-free); local fleets leave it empty.
	raw []byte

	site      string
	timeoutMS int
	single    pageIn
	hasSingle bool
	pages     []pageIn
	in        []extract.Page // dispatcher input, reusing the slice only
}

// maxPooledBuf bounds the buffer capacity a pooled scratch may retain: a
// single 32 MiB batch request must not pin its buffer in the pool forever.
const maxPooledBuf = 1 << 20

var scratchPool = sync.Pool{New: func() any { return new(extractScratch) }}

func acquireScratch() *extractScratch { return scratchPool.Get().(*extractScratch) }

// releaseScratch resets the workspace and returns it to the pool, dropping
// oversized buffers and every string reference (so pooled scratches never
// pin request HTML in memory).
func releaseScratch(sc *extractScratch) {
	if cap(sc.body) > maxPooledBuf {
		sc.body = nil
	}
	if cap(sc.out) > maxPooledBuf {
		sc.out = nil
	}
	if cap(sc.raw) > maxPooledBuf {
		sc.raw = nil
	}
	sc.body, sc.out, sc.raw = sc.body[:0], sc.out[:0], sc.raw[:0]
	sc.site, sc.timeoutMS = "", 0
	sc.single, sc.hasSingle = pageIn{}, false
	for i := range sc.pages {
		sc.pages[i] = pageIn{}
	}
	sc.pages = sc.pages[:0]
	for i := range sc.in {
		sc.in[i] = extract.Page{}
	}
	sc.in = sc.in[:0]
	scratchPool.Put(sc)
}

// readBody reads the request body into the scratch buffer, enforcing the
// byte cap. The error is already on the wire when ok is false.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, sc *extractScratch) bool {
	return readBodyInto(w, r, sc, s.cfg.MaxBodyBytes)
}

// readBodyInto is readBody with an explicit cap, shared with the fleet
// router's front-door decode.
func readBodyInto(w http.ResponseWriter, r *http.Request, sc *extractScratch, max int64) bool {
	if r.ContentLength > max {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", max)
		return false
	}
	if cl := r.ContentLength; cl >= 0 {
		if int64(cap(sc.body)) < cl {
			sc.body = make([]byte, cl)
		} else {
			sc.body = sc.body[:cl]
		}
		if _, err := io.ReadFull(r.Body, sc.body); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return false
		}
		return true
	}
	// Unknown length (chunked): grow the buffer until EOF or the cap.
	sc.body = sc.body[:0]
	for {
		if len(sc.body) == cap(sc.body) {
			sc.body = append(sc.body, 0)[:len(sc.body)]
		}
		n, err := r.Body.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if int64(len(sc.body)) > max {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", max)
			return false
		}
		if err == io.EOF {
			return true
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return false
		}
	}
}

// --- request decoder ---

var errTrailing = errors.New("trailing data after JSON body")

// decodeExtractRequest parses an ExtractRequest from the scratch's body
// buffer into the scratch fields. String values are unescaped in place (a
// JSON escape sequence never expands), then copied out as real strings —
// the only per-page allocations of the decode. Unknown fields are skipped
// and keys match case-insensitively, like encoding/json.
func decodeExtractRequest(sc *extractScratch) error {
	d := jsonCursor{b: sc.body}
	d.ws()
	// encoding/json treats a top-level null as a no-op decode into the
	// struct; match it so the two decoders error on exactly the same bodies.
	if d.tryNull() {
		return d.end()
	}
	if err := d.expect('{'); err != nil {
		return err
	}
	d.ws()
	if d.tryByte('}') {
		return d.end()
	}
	for {
		key, err := d.str()
		if err != nil {
			return err
		}
		d.ws()
		if err := d.expect(':'); err != nil {
			return err
		}
		d.ws()
		switch {
		case keyIs(key, "site"):
			if d.tryNull() { // encoding/json: null leaves the field untouched
				break
			}
			v, err := d.str()
			if err != nil {
				return err
			}
			sc.site = toWireString(v)
		case keyIs(key, "timeout_ms"):
			if d.tryNull() {
				break
			}
			n, err := d.integer()
			if err != nil {
				return err
			}
			sc.timeoutMS = n
		case keyIs(key, "page"):
			if d.tryNull() {
				sc.hasSingle = false
				break
			}
			pg, err := d.page()
			if err != nil {
				return err
			}
			sc.single, sc.hasSingle = pg, true
		case keyIs(key, "pages"):
			sc.pages = sc.pages[:0]
			if d.tryNull() {
				break
			}
			if err := d.expect('['); err != nil {
				return err
			}
			d.ws()
			if d.tryByte(']') {
				break
			}
			for {
				if d.tryNull() {
					sc.pages = append(sc.pages, pageIn{})
				} else {
					pg, err := d.page()
					if err != nil {
						return err
					}
					sc.pages = append(sc.pages, pg)
				}
				d.ws()
				if d.tryByte(']') {
					break
				}
				if err := d.expect(','); err != nil {
					return err
				}
				d.ws()
			}
		default:
			if err := d.skip(); err != nil {
				return err
			}
		}
		d.ws()
		if d.tryByte('}') {
			return d.end()
		}
		if err := d.expect(','); err != nil {
			return err
		}
		d.ws()
	}
}

// jsonCursor is a minimal JSON scanner over the pooled body buffer.
type jsonCursor struct {
	b []byte
	i int
}

func (d *jsonCursor) ws() {
	for d.i < len(d.b) {
		switch d.b[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

func (d *jsonCursor) expect(c byte) error {
	if d.i >= len(d.b) {
		return fmt.Errorf("unexpected end of body, want %q", c)
	}
	if d.b[d.i] != c {
		return fmt.Errorf("unexpected character %q at offset %d, want %q", d.b[d.i], d.i, c)
	}
	d.i++
	return nil
}

func (d *jsonCursor) tryByte(c byte) bool {
	if d.i < len(d.b) && d.b[d.i] == c {
		d.i++
		return true
	}
	return false
}

func (d *jsonCursor) tryNull() bool {
	if d.i+4 <= len(d.b) && string(d.b[d.i:d.i+4]) == "null" {
		d.i += 4
		return true
	}
	return false
}

// end verifies nothing but whitespace follows the decoded value.
func (d *jsonCursor) end() error {
	d.ws()
	if d.i != len(d.b) {
		return errTrailing
	}
	return nil
}

// page parses one {"id": ..., "html": ...} object.
func (d *jsonCursor) page() (pageIn, error) {
	var pg pageIn
	if err := d.expect('{'); err != nil {
		return pg, err
	}
	d.ws()
	if d.tryByte('}') {
		return pg, nil
	}
	for {
		key, err := d.str()
		if err != nil {
			return pg, err
		}
		d.ws()
		if err := d.expect(':'); err != nil {
			return pg, err
		}
		d.ws()
		switch {
		case keyIs(key, "id"):
			if d.tryNull() { // encoding/json: null leaves the field untouched
				break
			}
			v, err := d.str()
			if err != nil {
				return pg, err
			}
			pg.id = toWireString(v)
		case keyIs(key, "html"):
			if d.tryNull() {
				break
			}
			v, err := d.str()
			if err != nil {
				return pg, err
			}
			pg.html = toWireString(v)
		default:
			if err := d.skip(); err != nil {
				return pg, err
			}
		}
		d.ws()
		if d.tryByte('}') {
			return pg, nil
		}
		if err := d.expect(','); err != nil {
			return pg, err
		}
		d.ws()
	}
}

// str scans a JSON string and returns its decoded bytes — a view into the
// body buffer, valid until the buffer is recycled. Escape-free strings are
// returned as-is; strings with escapes are unescaped in place (the decoded
// form is never longer than the encoded one).
func (d *jsonCursor) str() ([]byte, error) {
	if err := d.expect('"'); err != nil {
		return nil, err
	}
	start := d.i
	for d.i < len(d.b) {
		c := d.b[d.i]
		if c == '"' {
			v := d.b[start:d.i]
			d.i++
			return v, nil
		}
		if c == '\\' {
			return d.strSlow(start)
		}
		if c < 0x20 {
			return nil, fmt.Errorf("invalid control character %q in string at offset %d", c, d.i)
		}
		d.i++
	}
	return nil, errors.New("unterminated string")
}

// strSlow finishes scanning a string that contains escapes, rewriting the
// decoded bytes over the encoded ones from the first backslash on.
func (d *jsonCursor) strSlow(start int) ([]byte, error) {
	w := d.i // write cursor; d.i is at the first backslash
	for d.i < len(d.b) {
		c := d.b[d.i]
		switch {
		case c == '"':
			v := d.b[start:w]
			d.i++
			return v, nil
		case c < 0x20:
			return nil, fmt.Errorf("invalid control character %q in string at offset %d", c, d.i)
		case c != '\\':
			d.b[w] = c
			w++
			d.i++
		default:
			d.i++
			if d.i >= len(d.b) {
				return nil, errors.New("unterminated escape")
			}
			e := d.b[d.i]
			d.i++
			switch e {
			case '"', '\\', '/':
				d.b[w] = e
				w++
			case 'b':
				d.b[w] = '\b'
				w++
			case 'f':
				d.b[w] = '\f'
				w++
			case 'n':
				d.b[w] = '\n'
				w++
			case 'r':
				d.b[w] = '\r'
				w++
			case 't':
				d.b[w] = '\t'
				w++
			case 'u':
				r, err := d.u4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					r2 := rune(utf8.RuneError)
					if d.i+1 < len(d.b) && d.b[d.i] == '\\' && d.b[d.i+1] == 'u' {
						save := d.i
						d.i += 2
						lo, err := d.u4()
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(r, lo); dec != utf8.RuneError {
							r2 = dec
						} else {
							d.i = save // lone surrogate: re-scan the second escape
						}
					}
					r = r2
				}
				w += utf8.EncodeRune(d.b[w:w+utf8.UTFMax], r)
			default:
				return nil, fmt.Errorf("invalid escape character %q in string", e)
			}
		}
	}
	return nil, errors.New("unterminated string")
}

// u4 decodes the four hex digits of a \uXXXX escape (cursor past the 'u').
func (d *jsonCursor) u4() (rune, error) {
	if d.i+4 > len(d.b) {
		return 0, errors.New("truncated \\u escape")
	}
	var r rune
	for k := 0; k < 4; k++ {
		c := d.b[d.i+k]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, fmt.Errorf("invalid \\u escape digit %q", c)
		}
	}
	d.i += 4
	return r, nil
}

// integer scans a plain integer (what a timeout_ms field may hold).
func (d *jsonCursor) integer() (int, error) {
	start := d.i
	d.tryByte('-')
	for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
		d.i++
	}
	if d.i == start || (d.b[start] == '-' && d.i == start+1) {
		return 0, fmt.Errorf("invalid number at offset %d", start)
	}
	// encoding/json's scanner rejects leading zeros ("00", "-012").
	digits := start
	if d.b[start] == '-' {
		digits++
	}
	if d.b[digits] == '0' && d.i > digits+1 {
		return 0, fmt.Errorf("invalid number at offset %d", start)
	}
	if d.i < len(d.b) && (d.b[d.i] == '.' || d.b[d.i] == 'e' || d.b[d.i] == 'E') {
		return 0, fmt.Errorf("cannot decode fractional number into an integer field")
	}
	n, err := strconv.Atoi(string(d.b[start:d.i]))
	if err != nil {
		return 0, err
	}
	return n, nil
}

// skip consumes one arbitrary JSON value (unknown fields).
func (d *jsonCursor) skip() error {
	d.ws()
	if d.i >= len(d.b) {
		return errors.New("unexpected end of body")
	}
	switch c := d.b[d.i]; {
	case c == '"':
		_, err := d.str()
		return err
	case c == '{':
		d.i++
		d.ws()
		if d.tryByte('}') {
			return nil
		}
		for {
			if _, err := d.str(); err != nil {
				return err
			}
			d.ws()
			if err := d.expect(':'); err != nil {
				return err
			}
			if err := d.skip(); err != nil {
				return err
			}
			d.ws()
			if d.tryByte('}') {
				return nil
			}
			if err := d.expect(','); err != nil {
				return err
			}
			d.ws()
		}
	case c == '[':
		d.i++
		d.ws()
		if d.tryByte(']') {
			return nil
		}
		for {
			if err := d.skip(); err != nil {
				return err
			}
			d.ws()
			if d.tryByte(']') {
				return nil
			}
			if err := d.expect(','); err != nil {
				return err
			}
			d.ws()
		}
	case c == 't':
		return d.lit("true")
	case c == 'f':
		return d.lit("false")
	case c == 'n':
		return d.lit("null")
	case c == '-' || (c >= '0' && c <= '9'):
		return d.number()
	default:
		return fmt.Errorf("unexpected character %q at offset %d", c, d.i)
	}
}

// number consumes one JSON number, enforcing the full RFC 8259 grammar
// the way encoding/json's scanner does: no leading zeros, no bare '.',
// no dangling exponent sign.
func (d *jsonCursor) number() error {
	start := d.i
	d.tryByte('-')
	switch {
	case d.i < len(d.b) && d.b[d.i] == '0':
		d.i++
	case d.i < len(d.b) && d.b[d.i] >= '1' && d.b[d.i] <= '9':
		for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
			d.i++
		}
	default:
		return fmt.Errorf("invalid number at offset %d", start)
	}
	if d.i < len(d.b) && d.b[d.i] == '.' {
		d.i++
		if d.i >= len(d.b) || d.b[d.i] < '0' || d.b[d.i] > '9' {
			return fmt.Errorf("invalid number at offset %d", start)
		}
		for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
			d.i++
		}
	}
	if d.i < len(d.b) && (d.b[d.i] == 'e' || d.b[d.i] == 'E') {
		d.i++
		if d.i < len(d.b) && (d.b[d.i] == '+' || d.b[d.i] == '-') {
			d.i++
		}
		if d.i >= len(d.b) || d.b[d.i] < '0' || d.b[d.i] > '9' {
			return fmt.Errorf("invalid number at offset %d", start)
		}
		for d.i < len(d.b) && d.b[d.i] >= '0' && d.b[d.i] <= '9' {
			d.i++
		}
	}
	return nil
}

func (d *jsonCursor) lit(s string) error {
	if d.i+len(s) > len(d.b) || string(d.b[d.i:d.i+len(s)]) != s {
		return fmt.Errorf("invalid literal at offset %d", d.i)
	}
	d.i += len(s)
	return nil
}

// keyIs matches an object key case-insensitively (ASCII), the same
// tolerance encoding/json field matching has.
func keyIs(key []byte, name string) bool {
	if len(key) != len(name) {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return false
		}
	}
	return true
}

// toWireString copies a decoded value out of the body buffer into a real
// string — the allocation that lets extraction results, the recent-page
// ring and job payloads safely outlive the pooled buffer. Invalid UTF-8 is
// coerced to U+FFFD exactly as encoding/json's decoder did, so downstream
// output stays byte-identical.
func toWireString(v []byte) string {
	if utf8.Valid(v) {
		return string(v)
	}
	out := make([]byte, 0, len(v)+8)
	for len(v) > 0 {
		r, size := utf8.DecodeRune(v)
		if r == utf8.RuneError && size == 1 {
			out = append(out, "�"...)
		} else {
			out = append(out, v[:size]...)
		}
		v = v[size:]
	}
	return string(out)
}

// --- response encoder ---

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, reproducing encoding/json's
// escaping byte for byte: the HTML-unsafe <, > and & go out as <-style
// escapes, control characters as their short or \u00xx forms, invalid UTF-8
// as the escaped form of U+FFFD, and U+2028/U+2029 escaped for JS embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// <, > and & for HTML safety, plus remaining control chars.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			// encoding/json writes invalid bytes as the escaped form of U+FFFD.
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe marks the ASCII bytes that need no escaping in a JSON string
// under encoding/json's HTML-escaping rules.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		t[b] = true
	}
	t['"'], t['\\'], t['<'], t['>'], t['&'] = false, false, false, false, false
	return
}()

// appendExtractResponse renders an ExtractResponse into dst, byte-identical
// to writeJSON's encoding/json output for the same value (field order,
// omitempty fields, records never null, trailing newline).
func appendExtractResponse(dst []byte, ext *Extraction, reqErr error) []byte {
	dst = append(dst, `{"site":`...)
	dst = appendJSONString(dst, ext.Site)
	dst = append(dst, `,"version":`...)
	dst = strconv.AppendInt(dst, int64(ext.Version), 10)
	dst = append(dst, `,"results":[`...)
	for i := range ext.Results {
		if i > 0 {
			dst = append(dst, ',')
		}
		res := &ext.Results[i]
		dst = append(dst, '{')
		if res.ID != "" {
			dst = append(dst, `"id":`...)
			dst = appendJSONString(dst, res.ID)
			dst = append(dst, ',')
		}
		dst = append(dst, `"records":[`...)
		for j, t := range res.Texts {
			if j > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, t)
		}
		dst = append(dst, ']')
		if res.Err != nil {
			dst = append(dst, `,"error":`...)
			dst = appendJSONString(dst, res.Err.Error())
		}
		dst = append(dst, `,"elapsed_us":`...)
		dst = strconv.AppendInt(dst, res.Elapsed.Microseconds(), 10)
		dst = append(dst, '}')
	}
	dst = append(dst, ']')
	if reqErr != nil {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, reqErr.Error())
	}
	return append(dst, '}', '\n')
}

// writeRawJSON writes a pre-encoded JSON body with an explicit
// Content-Length, so hot-path responses go out in one write without
// chunked framing.
func writeRawJSON(w http.ResponseWriter, code int, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// smallPageIDs are the interned default IDs for unnamed pages — the
// single-page fast path never allocates its "page-0".
var smallPageIDs = [...]string{
	"page-0", "page-1", "page-2", "page-3", "page-4", "page-5", "page-6", "page-7",
}

func defaultPageID(i int) string {
	if i < len(smallPageIDs) {
		return smallPageIDs[i]
	}
	return "page-" + strconv.Itoa(i)
}
