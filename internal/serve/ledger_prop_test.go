package serve

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateLedgerProperty hammers one Gate from many goroutines with a mix
// of plain, deadline-bearing, and pre-canceled acquires, while every
// worker tallies its own view of each outcome. The property under test is
// the one the soak harness's gate-ledger invariant leans on: the gate's
// counters are an exact ledger of client-observable outcomes — not
// sampled, not approximate — and its gauges never escape their
// configured bounds, even mid-storm.
func TestGateLedgerProperty(t *testing.T) {
	const (
		workers     = 8
		iters       = 2000
		maxInFlight = 4
		maxQueue    = 8
	)
	g := NewGate(GateOptions{MaxInFlight: maxInFlight, MaxQueue: maxQueue,
		RetryAfter: time.Millisecond})
	hist := &latencyHist{}

	var admitted, rejected, timedOut atomic.Int64

	// Snapshot checker: runs concurrently with the storm, asserting the
	// mid-run properties that must hold at every instant — gauge bounds,
	// counter monotonicity, and bounded skew between the server ledger and
	// what clients have already recorded (at most one in-progress acquire
	// per worker can be counted server-side but not yet client-side).
	stop := make(chan struct{})
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		var prev GateSnapshot
		for {
			s := g.Snapshot()
			if s.InFlight < 0 || s.InFlight > maxInFlight {
				t.Errorf("in_flight gauge escaped [0,%d]: %d", maxInFlight, s.InFlight)
			}
			if s.Waiting < 0 || s.Waiting > maxQueue {
				t.Errorf("waiting gauge escaped [0,%d]: %d", maxQueue, s.Waiting)
			}
			if s.Admitted < prev.Admitted || s.Rejected < prev.Rejected ||
				s.TimedOut < prev.TimedOut {
				t.Errorf("counters went backwards: %+v after %+v", s, prev)
			}
			for _, skew := range []struct {
				name         string
				server, mine int64
			}{
				{"admitted", s.Admitted, admitted.Load()},
				{"rejected", s.Rejected, rejected.Load()},
				{"timed_out", s.TimedOut, timedOut.Load()},
			} {
				// Server counts before the client classifies, so server >=
				// client - (snapshot raced ahead) and the gap is bounded by
				// the number of acquires in flight.
				if skew.server < skew.mine-workers || skew.server > skew.mine+workers {
					t.Errorf("%s ledger skew beyond in-flight bound: server=%d clients=%d",
						skew.name, skew.server, skew.mine)
				}
			}
			prev = s
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch roll := rng.Float64(); {
				case roll < 0.25:
					// Deadline that often expires while queued.
					ctx, cancel = context.WithTimeout(ctx,
						time.Duration(rng.Intn(200))*time.Microsecond)
				case roll < 0.35:
					// Already-dead context: may still win a free slot.
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				}
				release, err := g.Acquire(ctx)
				switch {
				case err == nil:
					start := time.Now()
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(120)) * time.Microsecond)
					}
					hist.Record(time.Since(start))
					release()
					admitted.Add(1)
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
				default:
					timedOut.Add(1)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	checker.Wait()

	// Final ledger: exact identity, no residue in the gauges.
	s := g.Snapshot()
	if s.InFlight != 0 || s.Waiting != 0 {
		t.Errorf("gauges not drained: in_flight=%d waiting=%d", s.InFlight, s.Waiting)
	}
	if got, want := admitted.Load()+rejected.Load()+timedOut.Load(), int64(workers*iters); got != want {
		t.Fatalf("clients classified %d outcomes, want %d", got, want)
	}
	if s.Admitted != admitted.Load() {
		t.Errorf("admitted: server=%d clients=%d", s.Admitted, admitted.Load())
	}
	if s.Rejected != rejected.Load() {
		t.Errorf("rejected: server=%d clients=%d", s.Rejected, rejected.Load())
	}
	if s.TimedOut != timedOut.Load() {
		t.Errorf("timed_out: server=%d clients=%d", s.TimedOut, timedOut.Load())
	}
	if s.MaxInFlight != maxInFlight || s.MaxQueue != maxQueue {
		t.Errorf("config echo wrong: %+v", s)
	}

	// Histogram ledger: every recorded latency landed in exactly one
	// bucket, and the quantile estimator stays inside the observed range
	// and monotone in q.
	var bucketSum int64
	for i := range hist.buckets {
		bucketSum += hist.buckets[i].Load()
	}
	if bucketSum != hist.count.Load() {
		t.Errorf("bucket sum %d != count %d", bucketSum, hist.count.Load())
	}
	if hist.count.Load() != admitted.Load() {
		t.Errorf("hist count %d != admitted %d", hist.count.Load(), admitted.Load())
	}
	p50, p99, p100 := hist.Quantile(0.50), hist.Quantile(0.99), hist.Quantile(1)
	if p50 < 0 || p50 > p99 || p99 > p100*1.5+1 {
		t.Errorf("quantiles not monotone/sane: p50=%g p99=%g p100=%g", p50, p99, p100)
	}
	if maxUS := float64(hist.max.Load()); p100 > maxUS*1.5+1 {
		t.Errorf("p100 %g beyond max*1.5 %g", p100, maxUS*1.5)
	}
}
