// The fleet's shard transport seam. A ShardRouter never talks to a shard
// directly: every path — the extract hot path, lifecycle mutations, the
// observation fan-outs and the drain — goes through a ShardClient, and
// the two implementations decide what a "shard" is. localShard wraps an
// in-process *Server with the same direct calls the router always made
// (byte-identical wire behavior, zero extra allocations); httpShard
// forwards to an independently booted shard process over persistent
// connections. The router's logic — ring lookup, decode-once,
// bucket-level metric merging, ordered drain — is written once against
// the seam and cannot diverge between the two deployments.

package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"autowrap/internal/audit"
	"autowrap/internal/jobs"
	"autowrap/internal/store"
)

// RingHashHeader carries the front end's ring fingerprint on every
// forwarded request. A shard-role server compares it against its own
// ring and refuses mismatches with ErrRingMismatch, so a front and a
// peer that disagree on the assignment function can never silently serve
// the wrong partition.
const RingHashHeader = "X-Ring-Hash"

var (
	// ErrRingMismatch is a shard refusing a request pinned to a different
	// ring fingerprint (503): the front and the shard were booted with
	// different shard counts, vnode counts, or ring versions.
	ErrRingMismatch = errors.New("ring agreement mismatch")
	// ErrNotOwner is a shard refusing a site the ring assigns to a
	// different shard (421): the request was routed — or aimed directly —
	// at the wrong partition.
	ErrNotOwner = errors.New("shard does not own site")
	// ErrShardUnavailable is the front end failing to reach a shard's
	// process (503): the fleet degrades to partial availability, and the
	// error names the shard and peer so the outage is attributable.
	ErrShardUnavailable = errors.New("shard unavailable")
)

// ShardReport is one shard's contribution to the fleet /metrics merge:
// the site-ledger accumulator (bucket-level, so fleet quantiles come
// from the merged population, never from averaging per-shard quantiles),
// the gate and job counters, and the shard's site rows.
type ShardReport struct {
	Gate GateSnapshot
	Jobs *jobs.Metrics
	// Sites is the shard's partition, one row per site.
	Sites []SiteStatus
	// AuditStats is the shard's ledger counters. A forwarding front sums
	// them (each shard process owns its own ledger file); an in-process
	// fleet ignores them and reads the shared ledger once.
	AuditStats *audit.Stats
	accum      metricsAccum
}

// ShardClient is the transport seam between the fleet router and one
// shard. Write-path methods (Extract, Lifecycle, Learn, Repair, JobGet,
// JobCancel) answer on the ResponseWriter themselves — passthrough
// semantics, so a shard's 429/503 backpressure and error bodies reach
// the client unchanged. Read-path methods return data for the router to
// merge. Implementations: localShard (in-process) and httpShard
// (forwarding front end).
type ShardClient interface {
	// Extract serves a decoded extract request. sc was filled by the
	// router's front-door decode; sc.raw holds the still-encoded body when
	// the fleet has remote peers.
	Extract(w http.ResponseWriter, r *http.Request, sc *extractScratch)
	// Lifecycle applies a promote (store.OpPromote) or rollback
	// (store.OpRollback).
	Lifecycle(w http.ResponseWriter, op store.Op, req AdminRequest)
	// Learn and Repair enqueue maintenance jobs on the shard's job plane.
	Learn(w http.ResponseWriter, req LearnRequest)
	Repair(w http.ResponseWriter, req RepairRequest)
	// Jobs lists the shard's retained jobs. JobGet and JobCancel resolve
	// one job by ID, reporting false when the shard does not know it (the
	// router then tries elsewhere or answers 404).
	Jobs(ctx context.Context) ([]jobs.Snapshot, error)
	JobGet(w http.ResponseWriter, r *http.Request, id string) bool
	JobCancel(w http.ResponseWriter, r *http.Request, id string) bool
	// Metrics returns the shard's merged ledgers for the fleet /metrics
	// aggregation; Healthz its liveness view; AuditView its slice of the
	// lifecycle ledger (n caps records).
	Metrics(ctx context.Context, now time.Time) (ShardReport, error)
	Healthz(ctx context.Context) (HealthzResponse, error)
	AuditView(ctx context.Context, n int) (AuditResponse, error)
	// SetDraining flips the shard's readiness when the shard shares the
	// router's process; a remote shard's readiness is its own process's.
	SetDraining(v bool)
	// Drain quiesces the shard's job plane: queued jobs run to
	// completion, bounded by ctx.
	Drain(ctx context.Context) error
}

// WireAccum is a shard's site-ledger accumulator on the wire — the
// bucket-level histogram a front end needs to merge fleet quantiles
// correctly. A shard-role server attaches it to /metrics (the "accum"
// field); it is absent everywhere else.
type WireAccum struct {
	Requests  int64 `json:"requests"`
	Pages     int64 `json:"pages"`
	PageFails int64 `json:"page_failures"`
	Records   int64 `json:"records"`
	Errors    int64 `json:"request_errors"`
	// Buckets is the power-of-two latency histogram (histBuckets entries).
	Buckets []int64 `json:"latency_buckets"`
	Count   int64   `json:"latency_count"`
	SumUS   int64   `json:"latency_sum_us"`
	MaxUS   int64   `json:"latency_max_us"`
	QPS     float64 `json:"qps"`
}

// wireAccumFrom exports an accumulator for a shard's /metrics.
func wireAccumFrom(a *metricsAccum) *WireAccum {
	w := &WireAccum{
		Requests:  a.requests,
		Pages:     a.pages,
		PageFails: a.pageFails,
		Records:   a.records,
		Errors:    a.errors,
		Buckets:   make([]int64, histBuckets),
		Count:     a.count,
		SumUS:     a.sum,
		MaxUS:     a.max,
		QPS:       a.qps,
	}
	copy(w.Buckets, a.buckets[:])
	return w
}

// toAccum is the inverse, rebuilding the mergeable form on the front end.
// A short or overlong bucket slice (a peer from a different build) keeps
// whatever overlaps; counters still merge.
func (w *WireAccum) toAccum() metricsAccum {
	a := metricsAccum{
		requests:  w.Requests,
		pages:     w.Pages,
		pageFails: w.PageFails,
		records:   w.Records,
		errors:    w.Errors,
		count:     w.Count,
		sum:       w.SumUS,
		max:       w.MaxUS,
		qps:       w.QPS,
	}
	copy(a.buckets[:], w.Buckets)
	return a
}

// RingInfo is a shard-role server's half of the ring-agreement handshake,
// reported on /healthz: the ring fingerprint plus the parameters behind
// it and the partition this process serves. A front end checks it on
// connect; per-request agreement rides on RingHashHeader.
type RingInfo struct {
	Hash   string `json:"hash"`
	Shards int    `json:"shards"`
	VNodes int    `json:"vnodes"`
	Shard  int    `json:"shard"`
}

// DrainRequest is the POST /v1/drain body (shard role only). TimeoutMS
// bounds how long the shard waits for queued jobs to run dry before
// canceling the remainder; it may shorten the server-side default, never
// extend it.
type DrainRequest struct {
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// DrainResponse reports a shard's drain outcome: the job plane's queued
// work ran to completion (jobs_quiesced) or was cut off by the deadline
// (error carries why). The shard keeps serving in-flight work either
// way; stopping the process is its owner's call.
type DrainResponse struct {
	Status       string `json:"status"` // always "draining"
	JobsQuiesced bool   `json:"jobs_quiesced"`
	Error        string `json:"error,omitempty"`
}
