// The sharded serving plane's front end. A ShardRouter owns N shard
// clients — each the transport handle of one shard with its own
// partition of the store, dispatcher, admission gate, drift monitor and
// job plane — and routes every request to the shard the consistent-hash
// ring assigns the request's site. The router never touches a shard
// directly: everything goes through the ShardClient seam, so the same
// routing logic fronts an in-process fleet (localShard, the `-shards N`
// daemon) and a multi-process one (httpShard, `-role front -peers ...`
// forwarding to independently booted shard processes). Nothing on the
// extract hot path is shared between shards: the router's only
// cross-shard state is the ring (immutable) and the pooled wire codec
// (per-request scratch). Lifecycle events (promote, rollback, repair,
// learn) route the same way, so a hot-swap bumps epochs only in the
// owning shard; /metrics and /v1/sites are the aggregation points that
// make the fleet look like one server to clients.

package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autowrap/internal/audit"
	"autowrap/internal/jobs"
	"autowrap/internal/shard"
	"autowrap/internal/store"
)

// ShardRouter fronts a fleet behind the single-server HTTP surface:
// same routes, same wire shapes (plus fleet-level fields on /healthz and
// /metrics). Build one with NewShardRouter (in-process shards) or
// NewForwardRouter (remote shard processes) and mount Handler, exactly
// like a Server.
type ShardRouter struct {
	ring    *shard.Ring
	clients []ShardClient
	// shards holds the in-process Servers behind localShard clients; a
	// forwarding router has none (Shard returns nil).
	shards []*Server
	// peers are the remote shard addresses, index-aligned with clients
	// (empty for an in-process fleet); hasRemote gates the raw-body copy
	// on the extract hot path.
	peers     []string
	hasRemote bool
	// Front-door decode limits; an in-process fleet borrows shard 0's
	// (they are fleet-uniform), a forwarding front brings its own.
	maxBodyBytes   int64
	requestTimeout time.Duration
	started        time.Time
	draining       atomic.Bool
	log            *log.Logger
}

// NewShardRouter builds an in-process fleet. build is called once per
// shard ID, in order, and returns that shard's fully-wired Server.
// Persistence is the store backend's job: wire one shared store.Backend
// into every shard's ServerConfig (with ServerConfig.Shard set to the
// shard's id) and each lifecycle event is reported by — and costs —
// only the mutating shard.
func NewShardRouter(ring *shard.Ring, build func(shardID int) (*Server, error)) (*ShardRouter, error) {
	if ring == nil {
		return nil, fmt.Errorf("serve: NewShardRouter: nil ring")
	}
	if build == nil {
		return nil, fmt.Errorf("serve: NewShardRouter: nil build")
	}
	f := &ShardRouter{
		ring:    ring,
		clients: make([]ShardClient, ring.Shards()),
		shards:  make([]*Server, ring.Shards()),
		started: time.Now(),
		log:     log.Default(),
	}
	for k := range f.shards {
		s, err := build(k)
		if err != nil {
			return nil, fmt.Errorf("serve: building shard %d: %w", k, err)
		}
		if s == nil {
			return nil, fmt.Errorf("serve: building shard %d: build returned nil", k)
		}
		f.shards[k] = s
		f.clients[k] = localShard{s}
	}
	f.maxBodyBytes = f.shards[0].cfg.MaxBodyBytes
	f.requestTimeout = f.shards[0].cfg.RequestTimeout
	return f, nil
}

// ForwardOptions tune a forwarding front end (NewForwardRouter); the
// zero value selects the single-server defaults.
type ForwardOptions struct {
	// RequestTimeout bounds each forwarded call (default 30s); a
	// request's timeout_ms may shorten it, never extend it.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies at the front door (default 32
	// MiB), before any bytes are forwarded.
	MaxBodyBytes int64
	// SkipHandshake disables the boot-time ring-agreement check against
	// reachable peers. Per-request agreement (RingHashHeader) is always
	// enforced by the shards themselves.
	SkipHandshake bool
	// Log receives forwarding warnings (default log.Default()).
	Log *log.Logger
}

// NewForwardRouter builds the multi-process fleet front: shard k of ring
// is the wrapserved process at peers[k] (host:port), reached over
// httpShard clients. On boot the router performs the ring-agreement
// handshake with every reachable peer — fingerprint, shard count and
// partition index must all match, or construction fails naming the peer;
// an unreachable peer is only logged (it may still be booting, and the
// fleet's contract under a missing shard is partial availability, not
// refusal to start). Every forwarded request is then pinned to the ring
// via RingHashHeader, which the shards enforce.
func NewForwardRouter(ring *shard.Ring, peers []string, opt ForwardOptions) (*ShardRouter, error) {
	if ring == nil {
		return nil, fmt.Errorf("serve: NewForwardRouter: nil ring")
	}
	if len(peers) != ring.Shards() {
		return nil, fmt.Errorf("serve: NewForwardRouter: ring has %d shards but %d peers given",
			ring.Shards(), len(peers))
	}
	if opt.RequestTimeout <= 0 {
		opt.RequestTimeout = 30 * time.Second
	}
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 32 << 20
	}
	if opt.Log == nil {
		opt.Log = log.Default()
	}
	f := &ShardRouter{
		ring:           ring,
		clients:        make([]ShardClient, len(peers)),
		shards:         make([]*Server, len(peers)),
		peers:          append([]string(nil), peers...),
		hasRemote:      true,
		maxBodyBytes:   opt.MaxBodyBytes,
		requestTimeout: opt.RequestTimeout,
		started:        time.Now(),
		log:            opt.Log,
	}
	for k, addr := range peers {
		f.clients[k] = newHTTPShard(k, addr, ring.Fingerprint(), opt.RequestTimeout, opt.Log)
	}
	if !opt.SkipHandshake {
		if err := f.handshake(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// handshake verifies ring agreement with every reachable peer: the
// peer's /healthz must report a RingInfo whose hash matches this ring
// and whose partition index matches the peer's slot. A reachable peer
// that disagrees — wrong shard count, wrong vnodes, booted for the wrong
// partition, or not in shard role at all — fails the front's boot; an
// unreachable peer is logged and tolerated (partial availability).
func (f *ShardRouter) handshake() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for k, c := range f.clients {
		h, err := c.Healthz(ctx)
		if err != nil {
			f.log.Printf("serve: fleet handshake: shard %d (%s) unreachable, continuing degraded: %v",
				k, f.peers[k], err)
			continue
		}
		if h.Ring == nil {
			return fmt.Errorf("serve: fleet handshake: %w: peer %d (%s) is not a shard-role server (no ring info)",
				ErrRingMismatch, k, f.peers[k])
		}
		if h.Ring.Hash != f.ring.Fingerprint() {
			return fmt.Errorf("serve: fleet handshake: %w: peer %d (%s) built ring %s (%d shards, %d vnodes), front built %s (%d shards, %d vnodes)",
				ErrRingMismatch, k, f.peers[k], h.Ring.Hash, h.Ring.Shards, h.Ring.VNodes,
				f.ring.Fingerprint(), f.ring.Shards(), f.ring.VNodes())
		}
		if h.Ring.Shard != k {
			return fmt.Errorf("serve: fleet handshake: %w: peer at %s serves partition %d but is wired as shard %d",
				ErrRingMismatch, f.peers[k], h.Ring.Shard, k)
		}
	}
	return nil
}

// Ring returns the fleet's routing ring.
func (f *ShardRouter) Ring() *shard.Ring { return f.ring }

// Shard returns one in-process shard's Server (nil on a forwarding
// router; panics on an out-of-range ID, like any slice index).
func (f *ShardRouter) Shard(k int) *Server { return f.shards[k] }

// Peers returns the remote shard addresses (nil for an in-process fleet).
func (f *ShardRouter) Peers() []string { return f.peers }

// SetDraining flips readiness on the router and every in-process shard
// at once: /healthz answers 503 fleet-wide while every shard keeps
// admitting — the first step of the drain ordering (steer traffic away,
// drop nothing). Remote shards' readiness belongs to their own
// processes; the front steers traffic away by flipping itself.
func (f *ShardRouter) SetDraining(v bool) {
	f.draining.Store(v)
	for _, c := range f.clients {
		c.SetDraining(v)
	}
}

// Drain finishes the fleet's shutdown after the HTTP listener has
// stopped accepting: every shard's job plane is quiesced concurrently —
// queued jobs run to completion, nothing accepted is dropped — falling
// back to cancellation only when ctx expires. Over the forwarding
// transport this is POST /v1/drain to every peer, which also flips the
// peer's readiness. The ordering contract is SetDraining(true) →
// http.Server.Shutdown → Drain: readiness flips first, in-flight
// requests finish second, job planes close last, shards after the front.
func (f *ShardRouter) Drain(ctx context.Context) error {
	errs := make([]error, len(f.clients))
	var wg sync.WaitGroup
	for k, c := range f.clients {
		wg.Add(1)
		go func(k int, c ShardClient) {
			defer wg.Done()
			errs[k] = c.Drain(ctx)
		}(k, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Handler returns the fleet's route table — the same routes as a
// single Server's Handler, served fleet-wide.
func (f *ShardRouter) Handler() http.Handler { return http.HandlerFunc(f.route) }

func (f *ShardRouter) route(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/extract":
		f.handleExtract(w, r)
	case "/healthz":
		f.handleHealthz(w, r)
	case "/metrics":
		f.handleMetrics(w, r)
	case "/v1/sites":
		f.handleSites(w, r)
	case "/v1/promote":
		f.handleLifecycle(w, r, store.OpPromote)
	case "/v1/rollback":
		f.handleLifecycle(w, r, store.OpRollback)
	case "/v1/repair":
		f.handleRepair(w, r)
	case "/v1/learn":
		f.handleLearn(w, r)
	case "/v1/audit":
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		f.handleAudit(w, r)
	case "/v1/jobs":
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		f.handleJobs(w, r)
	default:
		f.routeJob(w, r)
	}
}

// --- hot path ---

// handleExtract decodes once at the front door — same pooled scratch,
// same in-place parse as a single server — reads the site out of the
// decoded request, and hands the scratch to the owning shard's client.
// One parse, one ring lookup; the in-process transport adds zero
// allocations on top of the single-server path, the forwarding one adds
// a single pooled copy of the raw body (the in-place decode destroys
// the encoded form the peer needs).
func (f *ShardRouter) handleExtract(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	sc := acquireScratch()
	defer releaseScratch(sc)
	if !readBodyInto(w, r, sc, f.maxBodyBytes) {
		return
	}
	if f.hasRemote {
		sc.raw = append(sc.raw[:0], sc.body...)
	}
	if err := decodeExtractRequest(sc); err != nil {
		if err == errTrailing {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// An empty site falls through to finishExtract's own 400 (the local
	// transport) or the peer's (the forwarding one routes it to shard
	// Owner("") and the peer answers the same 400).
	f.clients[f.ring.Owner(sc.site)].Extract(w, r, sc)
}

// --- health + metrics ---

// PeerStatus is one shard process's row in the fleet /healthz peers
// list (forwarding fronts only): reachable peers report their site
// count, a dead peer carries the named per-shard error — the fleet
// degrades to partial availability, never to a global failure.
type PeerStatus struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	Sites int    `json:"sites,omitempty"`
	Error string `json:"error,omitempty"`
}

// FleetHealthzResponse is GET /healthz on a fleet.
type FleetHealthzResponse struct {
	Status string `json:"status"` // "ok" | "draining"
	Shards int    `json:"shards"`
	// Sites sums registered sites across all reachable shard partitions.
	Sites     int   `json:"sites"`
	UptimeSec int64 `json:"uptime_sec"`
	// Ring is the fleet's topology fingerprint — what every forwarded
	// request is pinned to (forwarding fronts only).
	Ring *RingInfo `json:"ring,omitempty"`
	// Peers is the per-process availability breakdown (forwarding fronts
	// only).
	Peers []PeerStatus `json:"peers,omitempty"`
}

func (f *ShardRouter) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := FleetHealthzResponse{
		Status:    "ok",
		Shards:    len(f.clients),
		UptimeSec: int64(time.Since(f.started).Seconds()),
	}
	type peerView struct {
		h   HealthzResponse
		err error
	}
	views := make([]peerView, len(f.clients))
	f.fanOut(r.Context(), func(ctx context.Context, k int, c ShardClient) {
		views[k].h, views[k].err = c.Healthz(ctx)
	})
	for k := range views {
		resp.Sites += views[k].h.Sites
	}
	if f.hasRemote {
		resp.Ring = &RingInfo{
			Hash:   f.ring.Fingerprint(),
			Shards: f.ring.Shards(),
			VNodes: f.ring.VNodes(),
			Shard:  -1, // the front owns the ring, no partition
		}
		resp.Peers = make([]PeerStatus, len(f.clients))
		for k := range views {
			p := PeerStatus{Shard: k, Addr: f.peers[k], OK: views[k].err == nil, Sites: views[k].h.Sites}
			if views[k].err != nil {
				p.Error = fmt.Sprintf("%v: shard %d (%s): %v", ErrShardUnavailable, k, f.peers[k], views[k].err)
			}
			resp.Peers[k] = p
		}
	}
	code := http.StatusOK
	if f.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// ShardStatus is one shard's row in the fleet /metrics breakdown.
type ShardStatus struct {
	Shard int `json:"shard"`
	// Addr is the shard process's address (forwarding fronts only).
	Addr string `json:"addr,omitempty"`
	// Sites counts the shard's partition.
	Sites int `json:"sites"`
	// Metrics merges the shard's per-site ledgers (bucket-summed latency,
	// summed rates).
	Metrics MetricsSnapshot `json:"metrics"`
	Gate    GateSnapshot    `json:"gate"`
	Jobs    *jobs.Metrics   `json:"jobs,omitempty"`
	// Error names an unreachable shard process; its counters above are
	// zero, not missing data from a reachable peer.
	Error string `json:"error,omitempty"`
}

// FleetMetricsResponse is GET /metrics on a fleet: the fleet-wide merge
// up front, the per-shard breakdown (where hot-shard skew shows), and
// the familiar per-site list with shard ownership stamped on.
type FleetMetricsResponse struct {
	UptimeSec int64 `json:"uptime_sec"`
	Shards    int   `json:"shards"`
	VNodes    int   `json:"vnodes"`
	// Fleet merges every site ledger across every shard. Latency
	// quantiles come from the merged histogram population — never from
	// averaging per-shard quantiles, which would answer a different
	// question.
	Fleet MetricsSnapshot `json:"fleet"`
	// Gate sums the shard gates' counters and capacities.
	Gate GateSnapshot `json:"gate"`
	// Audit is the lifecycle ledger's counters: the shared ledger's for
	// an in-process fleet, the per-shard ledgers' sum for a multi-process
	// one (absent when auditing is off everywhere).
	Audit    *audit.Stats  `json:"audit,omitempty"`
	PerShard []ShardStatus `json:"per_shard"`
	Sites    []SiteStatus  `json:"sites"`
}

func (f *ShardRouter) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	resp := FleetMetricsResponse{
		UptimeSec: int64(time.Since(f.started).Seconds()),
		Shards:    len(f.clients),
		VNodes:    f.ring.VNodes(),
		PerShard:  make([]ShardStatus, len(f.clients)),
	}
	type shardView struct {
		rep ShardReport
		err error
	}
	views := make([]shardView, len(f.clients))
	f.fanOut(r.Context(), func(ctx context.Context, k int, c ShardClient) {
		views[k].rep, views[k].err = c.Metrics(ctx, now)
	})
	var fleet metricsAccum
	var sites []SiteStatus
	var auditSum audit.Stats
	haveAudit := false
	for k := range views {
		rep := &views[k].rep
		row := ShardStatus{
			Shard:   k,
			Sites:   len(rep.Sites),
			Metrics: rep.accum.snapshot(),
			Gate:    rep.Gate,
			Jobs:    rep.Jobs,
		}
		if f.hasRemote {
			row.Addr = f.peers[k]
		}
		if err := views[k].err; err != nil {
			row.Error = fmt.Sprintf("%v: shard %d (%s): %v", ErrShardUnavailable, k, f.peers[k], err)
			resp.PerShard[k] = row
			continue
		}
		fleet.add(&rep.accum)
		for i := range rep.Sites {
			rep.Sites[i].Shard = k
		}
		sites = append(sites, rep.Sites...)
		if rep.AuditStats != nil {
			haveAudit = true
			auditSum.Records += rep.AuditStats.Records
			auditSum.Events += rep.AuditStats.Events
			auditSum.Checkpoints += rep.AuditStats.Checkpoints
			if rep.AuditStats.LastSeq > auditSum.LastSeq {
				auditSum.LastSeq = rep.AuditStats.LastSeq
			}
		}
		resp.Gate.InFlight += row.Gate.InFlight
		resp.Gate.Waiting += row.Gate.Waiting
		resp.Gate.Admitted += row.Gate.Admitted
		resp.Gate.Rejected += row.Gate.Rejected
		resp.Gate.TimedOut += row.Gate.TimedOut
		resp.Gate.MaxInFlight += row.Gate.MaxInFlight
		resp.Gate.MaxQueue += row.Gate.MaxQueue
		resp.PerShard[k] = row
	}
	resp.Fleet = fleet.snapshot()
	sort.Slice(sites, func(i, j int) bool { return sites[i].Site < sites[j].Site })
	resp.Sites = sites
	if !f.hasRemote {
		// In-process shards share one ledger; read it once, not N times.
		if led := f.auditLedger(); led != nil {
			a := led.Stats()
			resp.Audit = &a
		}
	} else if haveAudit {
		resp.Audit = &auditSum
	}
	writeJSON(w, http.StatusOK, resp)
}

// fanOut runs one observation call per shard concurrently — in-process
// calls are cheap, forwarded ones overlap their network latency — and
// waits for all of them.
func (f *ShardRouter) fanOut(ctx context.Context, call func(ctx context.Context, k int, c ShardClient)) {
	var wg sync.WaitGroup
	for k, c := range f.clients {
		wg.Add(1)
		go func(k int, c ShardClient) {
			defer wg.Done()
			call(ctx, k, c)
		}(k, c)
	}
	wg.Wait()
}

// auditLedger returns an in-process fleet's shared ledger: the shards
// are built over one Ledger instance, so the first shard that has one
// speaks for the fleet.
func (f *ShardRouter) auditLedger() *audit.Ledger {
	for _, s := range f.shards {
		if s == nil {
			continue
		}
		if led := s.Audit(); led != nil {
			return led
		}
	}
	return nil
}

// handleAudit serves the fleet's lifecycle ledger. An in-process fleet
// has one shared chain, answered from any shard's view. A multi-process
// fleet has one chain per shard process; the front merges their recent
// records by time (the merged list is an observability view — each
// shard's chain stays independently verifiable with
// `wrapserved -audit-verify`, a merged list of two chains is not one
// chain) and sums the counters.
func (f *ShardRouter) handleAudit(w http.ResponseWriter, r *http.Request) {
	if !f.hasRemote {
		for _, s := range f.shards {
			if s.Audit() != nil {
				s.handleAudit(w, r)
				return
			}
		}
		f.shards[0].handleAudit(w, r)
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	merged := AuditResponse{Records: []audit.Record{}}
	views := make([]AuditResponse, len(f.clients))
	errs := make([]error, len(f.clients))
	f.fanOut(r.Context(), func(ctx context.Context, k int, c ShardClient) {
		views[k], errs[k] = c.AuditView(ctx, n)
	})
	for k := range views {
		if errs[k] != nil {
			f.log.Printf("serve: fleet audit: shard %d (%s): %v", k, f.peers[k], errs[k])
			continue
		}
		if !views[k].Enabled {
			continue
		}
		merged.Enabled = true
		merged.Records = append(merged.Records, views[k].Records...)
		merged.Stats.Records += views[k].Stats.Records
		merged.Stats.Events += views[k].Stats.Events
		merged.Stats.Checkpoints += views[k].Stats.Checkpoints
		if views[k].Stats.LastSeq > merged.Stats.LastSeq {
			merged.Stats.LastSeq = views[k].Stats.LastSeq
		}
	}
	sort.SliceStable(merged.Records, func(i, j int) bool {
		if merged.Records[i].TimeMS != merged.Records[j].TimeMS {
			return merged.Records[i].TimeMS < merged.Records[j].TimeMS
		}
		if merged.Records[i].Shard != merged.Records[j].Shard {
			return merged.Records[i].Shard < merged.Records[j].Shard
		}
		return merged.Records[i].Seq < merged.Records[j].Seq
	})
	writeJSON(w, http.StatusOK, merged)
}

// siteStatuses concatenates every shard's site list, stamps shard
// ownership, and re-sorts by site name so the fleet view reads like one
// registry. Unreachable shards contribute nothing (partial view, logged).
func (f *ShardRouter) siteStatuses(ctx context.Context, now time.Time) []SiteStatus {
	views := make([]ShardReport, len(f.clients))
	errs := make([]error, len(f.clients))
	f.fanOut(ctx, func(ctx context.Context, k int, c ShardClient) {
		views[k], errs[k] = c.Metrics(ctx, now)
	})
	var out []SiteStatus
	for k := range views {
		if errs[k] != nil {
			f.log.Printf("serve: fleet sites: shard %d (%s): %v", k, f.peers[k], errs[k])
			continue
		}
		statuses := views[k].Sites
		for i := range statuses {
			statuses[i].Shard = k
		}
		out = append(out, statuses...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

func (f *ShardRouter) handleSites(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.siteStatuses(r.Context(), time.Now()))
}

// --- lifecycle routing ---

// handleLifecycle decodes a promote/rollback at the front door and
// applies it on the owning shard: the hot-swap (store mutation, epoch
// bump, runtime rebuild) happens only where the site lives.
func (f *ShardRouter) handleLifecycle(w http.ResponseWriter, r *http.Request, op store.Op) {
	if !requirePost(w, r) {
		return
	}
	var req AdminRequest
	if !readJSONLimited(w, r, &req, f.maxBodyBytes) {
		return
	}
	f.owner(req.Site).Lifecycle(w, op, req)
}

// handleRepair routes a drift repair to the owning shard's job plane:
// the re-learn occupies that shard's workers and hot-swaps that shard's
// binding, leaving every other shard untouched.
func (f *ShardRouter) handleRepair(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req RepairRequest
	if !readJSONLimited(w, r, &req, f.maxBodyBytes) {
		return
	}
	f.owner(req.Site).Repair(w, req)
}

// handleLearn routes a learn to the shard the ring assigns the new site
// — which is exactly where extract requests for it will land once it
// serves.
func (f *ShardRouter) handleLearn(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req LearnRequest
	if !readJSONLimited(w, r, &req, f.maxBodyBytes) {
		return
	}
	f.owner(req.Site).Learn(w, req)
}

// owner resolves a site to its shard client. The empty site maps to some
// shard, whose finish handler answers the uniform "site is required" 400.
func (f *ShardRouter) owner(site string) ShardClient {
	return f.clients[f.ring.Owner(site)]
}

// --- jobs ---

// handleJobs merges every shard's retained jobs into one list, ordered
// by submission time (IDs tie-break: they are unique fleet-wide thanks
// to per-shard prefixes). Unreachable shards contribute nothing.
func (f *ShardRouter) handleJobs(w http.ResponseWriter, r *http.Request) {
	out := []jobs.Snapshot{}
	views := make([][]jobs.Snapshot, len(f.clients))
	errs := make([]error, len(f.clients))
	f.fanOut(r.Context(), func(ctx context.Context, k int, c ShardClient) {
		views[k], errs[k] = c.Jobs(ctx)
	})
	for k := range views {
		if errs[k] != nil {
			f.log.Printf("serve: fleet jobs: shard %d (%s): %v", k, f.peers[k], errs[k])
			continue
		}
		out = append(out, views[k]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		return out[i].ID < out[j].ID
	})
	writeJSON(w, http.StatusOK, out)
}

// routeJob resolves the parameterized jobs routes fleet-wide. Fleet job
// IDs carry their shard's prefix ("s3-job-000042"), so the owner is
// parsed straight out of the ID; IDs without a parseable prefix fall
// back to asking every shard, and the one that knows it answers.
func (f *ShardRouter) routeJob(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if !strings.HasPrefix(path, jobsPrefix) {
		http.NotFound(w, r)
		return
	}
	rest := path[len(jobsPrefix):]
	if id, ok := strings.CutSuffix(rest, "/cancel"); ok && id != "" && !strings.Contains(id, "/") {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		if f.dispatchJob(w, r, id, func(c ShardClient) bool { return c.JobCancel(w, r, id) }) {
			return
		}
		writeError(w, http.StatusNotFound, "%v: %q", jobs.ErrNotFound, id)
		return
	}
	if rest == "" || strings.Contains(rest, "/") {
		http.NotFound(w, r)
		return
	}
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if f.dispatchJob(w, r, rest, func(c ShardClient) bool { return c.JobGet(w, r, rest) }) {
		return
	}
	writeError(w, http.StatusNotFound, "%v: %q", jobs.ErrNotFound, rest)
}

// dispatchJob routes a job-by-ID call: straight to the shard named by
// the ID's "s<k>-" prefix when it parses, otherwise a scan over every
// shard. Reports whether some shard handled it.
func (f *ShardRouter) dispatchJob(w http.ResponseWriter, r *http.Request, id string, call func(ShardClient) bool) bool {
	if k, ok := shardOfJobID(id); ok && k < len(f.clients) {
		return call(f.clients[k])
	}
	for _, c := range f.clients {
		if call(c) {
			return true
		}
	}
	return false
}

// shardOfJobID parses the fleet job-ID prefix "s<k>-..." (the IDPrefix
// wrapserved gives each shard's manager).
func shardOfJobID(id string) (int, bool) {
	if len(id) < 3 || id[0] != 's' {
		return 0, false
	}
	i := strings.IndexByte(id, '-')
	if i < 2 {
		return 0, false
	}
	k, err := strconv.Atoi(id[1:i])
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}
