// The sharded serving plane's front end. A ShardRouter owns N per-shard
// Servers — each with its own partition of the store, its own dispatcher,
// admission gate, drift monitor and job plane — and routes every request
// to the shard the consistent-hash ring assigns the request's site.
// Nothing on the extract hot path is shared between shards: the router's
// only cross-shard state is the ring (immutable) and the pooled wire
// codec (per-request scratch). Lifecycle events (promote, rollback,
// repair, learn) route the same way, so a hot-swap bumps epochs only in
// the owning shard; /metrics and /v1/sites are the aggregation points
// that make the fleet look like one server to clients.

package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autowrap/internal/audit"
	"autowrap/internal/jobs"
	"autowrap/internal/shard"
)

// ShardRouter fronts a fleet of shard Servers behind the single-server
// HTTP surface: same routes, same wire shapes (plus fleet-level fields
// on /healthz and /metrics). Build one with NewShardRouter and mount
// Handler, exactly like a Server.
type ShardRouter struct {
	ring     *shard.Ring
	shards   []*Server
	started  time.Time
	draining atomic.Bool
	log      *log.Logger
}

// NewShardRouter builds the fleet. build is called once per shard ID, in
// order, and returns that shard's fully-wired Server. Persistence is the
// store backend's job now: wire one shared store.Backend into every
// shard's ServerConfig (with ServerConfig.Shard set to the shard's id)
// and each lifecycle event is reported by — and costs — only the
// mutating shard. The old merged-registry persist hook, which held one
// router-wide mutex across a Merge of every shard's partition plus a
// full Save per event, is gone with it.
func NewShardRouter(ring *shard.Ring, build func(shardID int) (*Server, error)) (*ShardRouter, error) {
	if ring == nil {
		return nil, fmt.Errorf("serve: NewShardRouter: nil ring")
	}
	if build == nil {
		return nil, fmt.Errorf("serve: NewShardRouter: nil build")
	}
	f := &ShardRouter{
		ring:    ring,
		shards:  make([]*Server, ring.Shards()),
		started: time.Now(),
		log:     log.Default(),
	}
	for k := range f.shards {
		s, err := build(k)
		if err != nil {
			return nil, fmt.Errorf("serve: building shard %d: %w", k, err)
		}
		if s == nil {
			return nil, fmt.Errorf("serve: building shard %d: build returned nil", k)
		}
		f.shards[k] = s
	}
	return f, nil
}

// Ring returns the fleet's routing ring.
func (f *ShardRouter) Ring() *shard.Ring { return f.ring }

// Shard returns one shard's Server (panics on an out-of-range ID, like
// any slice index).
func (f *ShardRouter) Shard(k int) *Server { return f.shards[k] }

// SetDraining flips readiness on the router and every shard at once:
// /healthz answers 503 fleet-wide while every shard keeps admitting —
// the first step of the drain ordering (steer traffic away, drop
// nothing).
func (f *ShardRouter) SetDraining(v bool) {
	f.draining.Store(v)
	for _, s := range f.shards {
		s.SetDraining(v)
	}
}

// Drain finishes the fleet's shutdown after the HTTP listener has
// stopped accepting: every shard's job plane is quiesced concurrently —
// queued jobs run to completion (jobs.Quiesce), nothing accepted is
// dropped — falling back to cancellation only when ctx expires. The
// ordering contract is SetDraining(true) → http.Server.Shutdown →
// Drain: readiness flips first, in-flight extracts finish second, job
// planes close last.
func (f *ShardRouter) Drain(ctx context.Context) error {
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for k, s := range f.shards {
		m := s.Jobs()
		if m == nil {
			continue
		}
		wg.Add(1)
		go func(k int, m *jobs.Manager) {
			defer wg.Done()
			errs[k] = m.Quiesce(ctx)
		}(k, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Handler returns the fleet's route table — the same routes as a
// single Server's Handler, served fleet-wide.
func (f *ShardRouter) Handler() http.Handler { return http.HandlerFunc(f.route) }

func (f *ShardRouter) route(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/extract":
		f.handleExtract(w, r)
	case "/healthz":
		f.handleHealthz(w, r)
	case "/metrics":
		f.handleMetrics(w, r)
	case "/v1/sites":
		f.handleSites(w, r)
	case "/v1/promote":
		f.handlePromote(w, r)
	case "/v1/rollback":
		f.handleRollback(w, r)
	case "/v1/repair":
		f.handleRepair(w, r)
	case "/v1/learn":
		f.handleLearn(w, r)
	case "/v1/audit":
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		f.handleAudit(w, r)
	case "/v1/jobs":
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		f.handleJobs(w, r)
	default:
		f.routeJob(w, r)
	}
}

// --- hot path ---

// handleExtract decodes once at the front door — same pooled scratch,
// same in-place parse as a single server — reads the site out of the
// decoded request, and hands the scratch to the owning shard's
// finishExtract. One parse, one ring lookup, zero extra allocations on
// top of the single-server path.
func (f *ShardRouter) handleExtract(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	sc := acquireScratch()
	defer releaseScratch(sc)
	if !f.shards[0].decodeExtract(w, r, sc) {
		return
	}
	// An empty site falls through to finishExtract's own 400.
	f.shards[f.ring.Owner(sc.site)].finishExtract(w, r, sc)
}

// --- health + metrics ---

// FleetHealthzResponse is GET /healthz on a fleet.
type FleetHealthzResponse struct {
	Status string `json:"status"` // "ok" | "draining"
	Shards int    `json:"shards"`
	// Sites sums registered sites across all shard partitions.
	Sites     int   `json:"sites"`
	UptimeSec int64 `json:"uptime_sec"`
}

func (f *ShardRouter) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := FleetHealthzResponse{
		Status:    "ok",
		Shards:    len(f.shards),
		UptimeSec: int64(time.Since(f.started).Seconds()),
	}
	for _, s := range f.shards {
		resp.Sites += s.Dispatcher().Store().Len()
	}
	code := http.StatusOK
	if f.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// ShardStatus is one shard's row in the fleet /metrics breakdown.
type ShardStatus struct {
	Shard int `json:"shard"`
	// Sites counts the shard's partition.
	Sites int `json:"sites"`
	// Metrics merges the shard's per-site ledgers (bucket-summed latency,
	// summed rates).
	Metrics MetricsSnapshot `json:"metrics"`
	Gate    GateSnapshot    `json:"gate"`
	Jobs    *jobs.Metrics   `json:"jobs,omitempty"`
}

// FleetMetricsResponse is GET /metrics on a fleet: the fleet-wide merge
// up front, the per-shard breakdown (where hot-shard skew shows), and
// the familiar per-site list with shard ownership stamped on.
type FleetMetricsResponse struct {
	UptimeSec int64 `json:"uptime_sec"`
	Shards    int   `json:"shards"`
	VNodes    int   `json:"vnodes"`
	// Fleet merges every site ledger across every shard. Latency
	// quantiles come from the merged histogram population — never from
	// averaging per-shard quantiles, which would answer a different
	// question.
	Fleet MetricsSnapshot `json:"fleet"`
	// Gate sums the shard gates' counters and capacities.
	Gate GateSnapshot `json:"gate"`
	// Audit is the shared lifecycle ledger's counters (absent when
	// auditing is off).
	Audit    *audit.Stats  `json:"audit,omitempty"`
	PerShard []ShardStatus `json:"per_shard"`
	Sites    []SiteStatus  `json:"sites"`
}

func (f *ShardRouter) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	resp := FleetMetricsResponse{
		UptimeSec: int64(time.Since(f.started).Seconds()),
		Shards:    len(f.shards),
		VNodes:    f.ring.VNodes(),
		PerShard:  make([]ShardStatus, len(f.shards)),
	}
	var fleet metricsAccum
	for k, s := range f.shards {
		acc := s.Dispatcher().metricsAccumNow(now)
		fleet.add(&acc)
		row := ShardStatus{
			Shard:   k,
			Sites:   s.Dispatcher().Store().Len(),
			Metrics: acc.snapshot(),
			Gate:    s.Gate().Snapshot(),
		}
		if m := s.Jobs(); m != nil {
			jm := m.Metrics()
			row.Jobs = &jm
		}
		resp.Gate.InFlight += row.Gate.InFlight
		resp.Gate.Waiting += row.Gate.Waiting
		resp.Gate.Admitted += row.Gate.Admitted
		resp.Gate.Rejected += row.Gate.Rejected
		resp.Gate.TimedOut += row.Gate.TimedOut
		resp.Gate.MaxInFlight += row.Gate.MaxInFlight
		resp.Gate.MaxQueue += row.Gate.MaxQueue
		resp.PerShard[k] = row
	}
	resp.Fleet = fleet.snapshot()
	resp.Sites = f.siteStatuses()
	if led := f.auditLedger(); led != nil {
		a := led.Stats()
		resp.Audit = &a
	}
	writeJSON(w, http.StatusOK, resp)
}

// auditLedger returns the fleet's shared ledger: the shards are built
// over one Ledger instance, so the first shard that has one speaks for
// the fleet.
func (f *ShardRouter) auditLedger() *audit.Ledger {
	for _, s := range f.shards {
		if led := s.Audit(); led != nil {
			return led
		}
	}
	return nil
}

// handleAudit serves the fleet's shared audit ledger — one chain for
// every shard's lifecycle events, answered from any shard's view.
func (f *ShardRouter) handleAudit(w http.ResponseWriter, r *http.Request) {
	for _, s := range f.shards {
		if s.Audit() != nil {
			s.handleAudit(w, r)
			return
		}
	}
	f.shards[0].handleAudit(w, r)
}

// siteStatuses concatenates every shard's site list, stamps shard
// ownership, and re-sorts by site name so the fleet view reads like one
// registry.
func (f *ShardRouter) siteStatuses() []SiteStatus {
	var out []SiteStatus
	for k, s := range f.shards {
		statuses := s.Dispatcher().Status()
		for i := range statuses {
			statuses[i].Shard = k
		}
		out = append(out, statuses...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

func (f *ShardRouter) handleSites(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.siteStatuses())
}

// --- lifecycle routing ---

// handlePromote decodes at the front door and applies on the owning
// shard: the hot-swap (store mutation, epoch bump, runtime rebuild)
// happens only where the site lives.
func (f *ShardRouter) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req AdminRequest
	if !f.shards[0].readJSON(w, r, &req) {
		return
	}
	f.owner(req.Site).finishPromote(w, req)
}

func (f *ShardRouter) handleRollback(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req AdminRequest
	if !f.shards[0].readJSON(w, r, &req) {
		return
	}
	f.owner(req.Site).finishRollback(w, req)
}

// handleRepair routes a drift repair to the owning shard's job plane:
// the re-learn occupies that shard's workers and hot-swaps that shard's
// binding, leaving every other shard untouched.
func (f *ShardRouter) handleRepair(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req RepairRequest
	if !f.shards[0].readJSON(w, r, &req) {
		return
	}
	f.owner(req.Site).finishRepair(w, req)
}

// handleLearn routes a learn to the shard the ring assigns the new site
// — which is exactly where extract requests for it will land once it
// serves.
func (f *ShardRouter) handleLearn(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req LearnRequest
	if !f.shards[0].readJSON(w, r, &req) {
		return
	}
	f.owner(req.Site).finishLearn(w, req)
}

// owner resolves a site to its shard server. The empty site maps to some
// shard, whose finish handler answers the uniform "site is required" 400.
func (f *ShardRouter) owner(site string) *Server {
	return f.shards[f.ring.Owner(site)]
}

// --- jobs ---

// handleJobs merges every shard's retained jobs into one list, ordered
// by submission time (IDs tie-break: they are unique fleet-wide thanks
// to per-shard prefixes).
func (f *ShardRouter) handleJobs(w http.ResponseWriter, r *http.Request) {
	out := []jobs.Snapshot{}
	for _, s := range f.shards {
		if m := s.Jobs(); m != nil {
			out = append(out, m.List()...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		return out[i].ID < out[j].ID
	})
	writeJSON(w, http.StatusOK, out)
}

// routeJob resolves the parameterized jobs routes fleet-wide: job IDs
// are unique across shards, so the id is looked up in every shard's
// manager and the one that knows it answers.
func (f *ShardRouter) routeJob(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if !strings.HasPrefix(path, jobsPrefix) {
		http.NotFound(w, r)
		return
	}
	rest := path[len(jobsPrefix):]
	if id, ok := strings.CutSuffix(rest, "/cancel"); ok && id != "" && !strings.Contains(id, "/") {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		if s := f.shardOfJob(id); s != nil {
			s.handleJobCancel(w, r, id)
			return
		}
		writeError(w, http.StatusNotFound, "%v: %q", jobs.ErrNotFound, id)
		return
	}
	if rest == "" || strings.Contains(rest, "/") {
		http.NotFound(w, r)
		return
	}
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if s := f.shardOfJob(rest); s != nil {
		s.handleJobGet(w, r, rest)
		return
	}
	writeError(w, http.StatusNotFound, "%v: %q", jobs.ErrNotFound, rest)
}

// shardOfJob finds the shard whose job manager retains the ID, nil when
// none does.
func (f *ShardRouter) shardOfJob(id string) *Server {
	for _, s := range f.shards {
		m := s.Jobs()
		if m == nil {
			continue
		}
		if _, err := m.Get(id); err == nil {
			return s
		}
	}
	return nil
}
