package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"autowrap/internal/drift"
	"autowrap/internal/jobs"
	"autowrap/internal/serve"
	"autowrap/internal/shard"
	"autowrap/internal/store"
	"autowrap/internal/store/filestore"
	"autowrap/internal/testutil/leakcheck"
)

// fleetFixture builds an N-shard fleet over nSites sites, each carrying
// v1 (alpha family, active) and v2 (beta family, staged candidate) — so
// a promote flips the extracted family detectably, exactly like the
// single-dispatcher tests. Every shard gets its own partition,
// dispatcher, gate and (optionally) job plane; withJobs also wires a
// placeholder Repairer so the learn/repair routes accept submissions.
type fleetFixture struct {
	router *serve.ShardRouter
	hs     *httptest.Server
	ring   *shard.Ring
	sites  []string
}

func newFleet(t *testing.T, shards, nSites int, storePath string, withJobs bool) *fleetFixture {
	t.Helper()
	leakcheck.Check(t)
	full := store.New()
	sites := make([]string, nSites)
	for i := range sites {
		sites[i] = fmt.Sprintf("site-%03d.example.com", i)
		if _, err := full.Put(sites[i], wrapperFor("a"), store.Meta{
			Profile: &store.Profile{Pages: 4, MeanRecords: 3},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := full.PutCandidate(sites[i], wrapperFor("b"), store.Meta{
			Profile: &store.Profile{Pages: 4, MeanRecords: 3},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ring := shard.NewRing(shards, 64)
	var be store.Backend
	if storePath != "" {
		fb, err := filestore.Open(storePath)
		if err != nil {
			t.Fatal(err)
		}
		be = fb
	}
	router, err := serve.NewShardRouter(ring, func(k int) (*serve.Server, error) {
		cfg := serve.ServerConfig{
			Dispatcher: serve.NewDispatcher(full.Partition(ring, k), serve.Options{}),
			Backend:    be,
			Shard:      k,
		}
		if withJobs {
			cfg.Jobs = jobs.New(jobs.Options{Workers: 1, QueueDepth: 8, IDPrefix: fmt.Sprintf("s%d-", k)})
			cfg.Repairer = &drift.Repairer{} // submittable; jobs fail fast without Store/Spec
		}
		return serve.NewServer(cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Quiesce every shard's job plane on the way out (after hs.Close, whose
	// cleanup registers later and so runs first) — worker goroutines only
	// exit on drain, and the leak check registered above runs last of all.
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Tests that exercise shutdown ordering drain the router
		// themselves; a second pass over an already-drained fleet is fine.
		if err := router.Drain(ctx); err != nil && !strings.Contains(err.Error(), "already drained") {
			t.Errorf("drain fleet: %v", err)
		}
	})
	hs := httptest.NewServer(router.Handler())
	t.Cleanup(hs.Close)
	return &fleetFixture{router: router, hs: hs, ring: ring, sites: sites}
}

// extractOne posts a single-page extract for the site and returns the
// decoded response and status code.
func (f *fleetFixture) extractOne(t *testing.T, site string) (serve.ExtractResponse, int) {
	t.Helper()
	resp := postJSON(t, f.hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: site,
		Page: &serve.PageInput{ID: "p0", HTML: testPage(0)},
	})
	if resp.StatusCode != http.StatusOK {
		return serve.ExtractResponse{}, resp.StatusCode
	}
	return decode[serve.ExtractResponse](t, resp), resp.StatusCode
}

// family classifies the records of a one-page extract response.
func family(t *testing.T, out serve.ExtractResponse) string {
	t.Helper()
	if len(out.Results) != 1 || len(out.Results[0].Records) == 0 {
		t.Fatalf("degenerate extract response: %+v", out)
	}
	if strings.HasPrefix(out.Results[0].Records[0], "beta-") {
		return "beta"
	}
	return "alpha"
}

func TestFleetExtractRoutesToOwningShard(t *testing.T) {
	f := newFleet(t, 4, 12, "", false)
	owned := make([]int, 4)
	for _, site := range f.sites {
		out, code := f.extractOne(t, site)
		if code != http.StatusOK {
			t.Fatalf("extract %s: status %d", site, code)
		}
		if out.Version != 1 || family(t, out) != "alpha" {
			t.Fatalf("extract %s: version %d family %s, want v1 alpha", site, out.Version, family(t, out))
		}
		owned[f.ring.Owner(site)]++
	}
	// Each shard observed exactly the requests for its own sites: traffic
	// for other shards' sites never touches it.
	for k := 0; k < 4; k++ {
		agg := f.router.Shard(k).Dispatcher().AggregateMetrics()
		if agg.Requests != int64(owned[k]) {
			t.Errorf("shard %d observed %d requests, want %d", k, agg.Requests, owned[k])
		}
	}
	// Unknown sites 404 through the fleet like through a single server.
	resp := postJSON(t, f.hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: "never-learned.example.com",
		Page: &serve.PageInput{HTML: testPage(0)},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown site: status %d, want 404", resp.StatusCode)
	}
}

// TestFleetLifecycleIsolation is the acceptance pin for partitioned
// hot-swap: promote/rollback on site X mutates — and hot-swaps — only
// shard(X). Every other shard's store generation and every other site's
// epoch stay exactly where they were, so no other shard rebuilds a
// runtime or even notices.
func TestFleetLifecycleIsolation(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "wrappers.json")
	f := newFleet(t, 4, 12, storePath, false)
	siteX := f.sites[5]
	ownerK := f.ring.Owner(siteX)

	// Warm every site's runtime so a spurious cross-shard rebuild would
	// be observable.
	for _, site := range f.sites {
		if _, code := f.extractOne(t, site); code != http.StatusOK {
			t.Fatalf("warm extract %s: %d", site, code)
		}
	}
	genBefore := make([]uint64, 4)
	for k := range genBefore {
		genBefore[k] = f.router.Shard(k).Dispatcher().Store().Generation()
	}
	epochBefore := make(map[string]uint64, len(f.sites))
	for _, site := range f.sites {
		epochBefore[site] = f.router.Shard(f.ring.Owner(site)).Dispatcher().Store().Epoch(site)
	}

	// Promote v2 via the fleet front door; the very next extract serves it.
	resp := postJSON(t, f.hs.URL+"/v1/promote", serve.AdminRequest{Site: siteX, Version: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if admin := decode[serve.AdminResponse](t, resp); admin.ServingVersion != 2 {
		t.Fatalf("promote answered serving v%d, want 2", admin.ServingVersion)
	}
	out, _ := f.extractOne(t, siteX)
	if out.Version != 2 || family(t, out) != "beta" {
		t.Fatalf("after promote: extract served v%d/%s, want v2/beta", out.Version, family(t, out))
	}

	checkIsolation := func(op string, mutations uint64) {
		t.Helper()
		for k := 0; k < 4; k++ {
			gen := f.router.Shard(k).Dispatcher().Store().Generation()
			want := genBefore[k]
			if k == ownerK {
				want += mutations
			}
			if gen != want {
				t.Errorf("after %s: shard %d generation = %d, want %d (owner is shard %d)", op, k, gen, want, ownerK)
			}
		}
		for _, site := range f.sites {
			if site == siteX {
				continue
			}
			epoch := f.router.Shard(f.ring.Owner(site)).Dispatcher().Store().Epoch(site)
			if epoch != epochBefore[site] {
				t.Errorf("after %s: uninvolved site %s epoch moved %d -> %d", op, site, epochBefore[site], epoch)
			}
		}
	}
	checkIsolation("promote", 1)

	// Rollback reverts serving and is just as isolated.
	resp = postJSON(t, f.hs.URL+"/v1/rollback", serve.AdminRequest{Site: siteX})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d", resp.StatusCode)
	}
	out, _ = f.extractOne(t, siteX)
	if out.Version != 1 || family(t, out) != "alpha" {
		t.Fatalf("after rollback: extract served v%d/%s, want v1/alpha", out.Version, family(t, out))
	}
	checkIsolation("promote+rollback", 2)

	// The merged registry — not just the owner's partition — landed on
	// disk after each mutation.
	onDisk, err := store.Load(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.Len() != len(f.sites) {
		t.Fatalf("persisted store has %d sites, want %d (a shard clobbered the merged file?)", onDisk.Len(), len(f.sites))
	}
	if act, ok := onDisk.Active(siteX); !ok || act.Version != 1 {
		t.Fatalf("persisted active for %s = v%d/%v, want v1", siteX, act.Version, ok)
	}
}

func TestFleetMetricsAggregation(t *testing.T) {
	f := newFleet(t, 2, 8, "", false)
	total := 0
	for i, site := range f.sites {
		for n := 0; n <= i%3; n++ {
			if _, code := f.extractOne(t, site); code != http.StatusOK {
				t.Fatalf("extract %s: %d", site, code)
			}
			total++
		}
	}
	resp, err := http.Get(f.hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m := decode[serve.FleetMetricsResponse](t, resp)
	if m.Shards != 2 || m.VNodes != 64 {
		t.Fatalf("metrics shape: shards=%d vnodes=%d", m.Shards, m.VNodes)
	}
	if m.Fleet.Requests != int64(total) {
		t.Fatalf("fleet requests = %d, want %d", m.Fleet.Requests, total)
	}
	var perShard int64
	for _, row := range m.PerShard {
		perShard += row.Metrics.Requests
	}
	if perShard != int64(total) {
		t.Fatalf("per-shard requests sum to %d, want %d", perShard, total)
	}
	if m.Gate.Admitted != int64(total) {
		t.Fatalf("merged gate admitted = %d, want %d", m.Gate.Admitted, total)
	}
	if m.Fleet.LatencyP50Ms <= 0 || m.Fleet.LatencyMaxMs < m.Fleet.LatencyP50Ms {
		t.Fatalf("merged latency quantiles look wrong: p50=%f max=%f", m.Fleet.LatencyP50Ms, m.Fleet.LatencyMaxMs)
	}
	if len(m.Sites) != len(f.sites) {
		t.Fatalf("metrics lists %d sites, want %d", len(m.Sites), len(f.sites))
	}
	for _, s := range m.Sites {
		if s.Shard != f.ring.Owner(s.Site) {
			t.Errorf("site %s stamped shard %d, ring says %d", s.Site, s.Shard, f.ring.Owner(s.Site))
		}
	}
	// /v1/sites carries the same shard stamps, sorted by site.
	resp2, err := http.Get(f.hs.URL + "/v1/sites")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sites := decode[[]serve.SiteStatus](t, resp2)
	for i := 1; i < len(sites); i++ {
		if sites[i-1].Site >= sites[i].Site {
			t.Fatalf("/v1/sites not sorted: %s before %s", sites[i-1].Site, sites[i].Site)
		}
	}
}

// TestFleetLearnLandsOnOwningShard pins lifecycle routing for the job
// plane: the 202's job ID carries the owning shard's prefix, proving the
// learn was enqueued on shard(site)'s manager, not round-robined.
func TestFleetLearnLandsOnOwningShard(t *testing.T) {
	f := newFleet(t, 4, 4, "", true)
	newSite := "brand-new.example.com"
	ownerK := f.ring.Owner(newSite)
	resp := postJSON(t, f.hs.URL+"/v1/learn", serve.LearnRequest{
		Site:  newSite,
		Pages: []string{testPage(0), testPage(1)},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("learn: status %d, want 202", resp.StatusCode)
	}
	acc := decode[serve.JobAccepted](t, resp)
	wantPrefix := fmt.Sprintf("s%d-", ownerK)
	if !strings.HasPrefix(acc.JobID, wantPrefix) {
		t.Fatalf("learn job ID %q does not carry owner prefix %q", acc.JobID, wantPrefix)
	}
	// The fleet resolves the ID without the client knowing about shards.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(f.hs.URL + "/v1/jobs/" + acc.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get: status %d", resp.StatusCode)
		}
		snap := decode[serve.JobSnapshot](t, resp)
		resp.Body.Close()
		if snap.State.Terminal() {
			break // the placeholder repairer fails the job; routing is what's under test
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp3 := postJSON(t, f.hs.URL+"/v1/jobs/no-such-job/cancel", struct{}{})
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: status %d, want 404", resp3.StatusCode)
	}
}

// TestFleetDrainOrdering pins the shutdown contract: SetDraining flips
// /healthz to 503 while every shard keeps admitting extracts, and Drain
// runs every already-queued job to completion — nothing accepted is
// dropped, even jobs that were still waiting for a worker when the
// drain began.
func TestFleetDrainOrdering(t *testing.T) {
	f := newFleet(t, 2, 4, "", true)

	// Occupy shard 0's single job worker, then queue two more behind it.
	m0 := f.router.Shard(0).Jobs()
	release := make(chan struct{})
	first, err := m0.Submit(jobs.KindRepair, "held", func(ctx context.Context, progress func(string)) (any, error) {
		<-release
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var queued []string
	for i := 0; i < 2; i++ {
		snap, err := m0.Submit(jobs.KindRepair, fmt.Sprintf("queued-%d", i), func(ctx context.Context, progress func(string)) (any, error) {
			return "ok", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, snap.ID)
	}

	// Step 1: readiness flips fleet-wide...
	f.router.SetDraining(true)
	resp, err := http.Get(f.hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[serve.FleetHealthzResponse](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz while draining: %d/%s, want 503/draining", resp.StatusCode, h.Status)
	}
	// ...but every shard still admits extract traffic: the LB steers away
	// on 503 while requests already routed here complete normally.
	for _, site := range f.sites {
		if _, code := f.extractOne(t, site); code != http.StatusOK {
			t.Fatalf("extract %s while draining: status %d, want 200", site, code)
		}
	}

	// Step 2+3: an extract in flight during Drain still answers 200, and
	// Drain waits for the queued jobs rather than canceling them.
	var wg sync.WaitGroup
	wg.Add(1)
	extractDone := make(chan int, 1)
	go func() {
		defer wg.Done()
		_, code := f.extractOne(t, f.sites[0])
		extractDone <- code
	}()
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.router.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if code := <-extractDone; code != http.StatusOK {
		t.Fatalf("extract concurrent with Drain: status %d, want 200", code)
	}
	for _, id := range append([]string{first.ID}, queued...) {
		snap, err := m0.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != jobs.StateDone {
			t.Fatalf("job %s state = %s after Drain, want done (queued jobs must not be dropped)", id, snap.State)
		}
	}
}
