package serve_test

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"autowrap/internal/serve"
	"autowrap/internal/store"
)

// raceSites are the two sites hammered concurrently; distinct record
// prefixes make any cross-site bleed self-identifying.
var raceSites = [...]string{"shop", "news"}

// racePage renders a page whose records embed the site, the worker, the
// iteration and the page index — so a response carrying bytes from any
// other request (a pooled-buffer or pooled-tree bleed) fails the substring
// checks below, not just a count.
func racePage(site string, worker, iter, page int) string {
	tok := fmt.Sprintf("%s-w%d-i%d-p%d", site, worker, iter, page)
	var sb strings.Builder
	sb.WriteString("<html><body>")
	for r := 0; r < 3; r++ {
		fmt.Fprintf(&sb, `<div class="a">%s-a-%d</div>`, tok, r)
		fmt.Fprintf(&sb, `<div class="b">%s-b-%d</div>`, tok, r)
	}
	sb.WriteString("</body></html>")
	return sb.String()
}

// TestHotSwapNoRecordBleed hammers POST /v1/extract on two sites while an
// admin goroutine promotes and rolls back their wrappers, asserting (a)
// every response's records come from exactly the pages of that request and
// a single wrapper family — pooled scratch, trees and response buffers must
// never leak bytes across requests or sites — and (b) the /metrics ledger
// and latency histogram stay consistent with the client-observed totals.
// Run it under -race (CI does) to catch unsynchronized pool reuse too.
func TestHotSwapNoRecordBleed(t *testing.T) {
	st := store.New()
	for _, site := range raceSites {
		if _, err := st.Put(site, wrapperFor("a"), store.Meta{
			Profile: &store.Profile{Pages: 4, MeanRecords: 3},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.PutCandidate(site, wrapperFor("b"), store.Meta{
			Profile: &store.Profile{Pages: 4, MeanRecords: 3},
		}); err != nil {
			t.Fatal(err)
		}
	}
	_, hs := newTestServer(t, st, nil)
	client := hs.Client()

	const (
		workersPerSite = 4
		itersPerWorker = 120
	)
	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		requests [len(raceSites)]atomic.Int64
		pages    [len(raceSites)]atomic.Int64
		records  [len(raceSites)]atomic.Int64
	)

	// Admin churn: keep promoting the candidate and rolling back while the
	// extraction load runs.
	adminDone := make(chan struct{})
	go func() {
		defer close(adminDone)
		for !done.Load() {
			for _, site := range raceSites {
				resp := postJSON(t, hs.URL+"/v1/promote", serve.AdminRequest{Site: site, Version: 2})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("promote %s v2: status %d", site, resp.StatusCode)
					return
				}
				resp.Body.Close()
			}
			for _, site := range raceSites {
				resp := postJSON(t, hs.URL+"/v1/rollback", serve.AdminRequest{Site: site})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("rollback %s: status %d", site, resp.StatusCode)
					return
				}
				resp.Body.Close()
			}
		}
	}()

	for si, site := range raceSites {
		for w := 0; w < workersPerSite; w++ {
			wg.Add(1)
			go func(si int, site string, w int) {
				defer wg.Done()
				for iter := 0; iter < itersPerWorker; iter++ {
					// Alternate single-page and batch shapes: both share the
					// pooled request path.
					var req serve.ExtractRequest
					req.Site = site
					n := 1
					if iter%2 == 1 {
						n = 3
						for p := 0; p < n; p++ {
							req.Pages = append(req.Pages, serve.PageInput{
								ID: fmt.Sprintf("p%d", p), HTML: racePage(site, w, iter, p),
							})
						}
					} else {
						req.Page = &serve.PageInput{ID: "p0", HTML: racePage(site, w, iter, 0)}
					}
					resp := postJSON(t, hs.URL+"/v1/extract", req)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("extract %s: status %d", site, resp.StatusCode)
						return
					}
					out := decode[serve.ExtractResponse](t, resp)
					resp.Body.Close()
					requests[si].Add(1)
					pages[si].Add(int64(n))
					if out.Site != site || len(out.Results) != n {
						t.Errorf("response for %s/%d pages came back as %s/%d",
							site, n, out.Site, len(out.Results))
						return
					}
					family := ""
					for p, res := range out.Results {
						tok := fmt.Sprintf("%s-w%d-i%d-p%d", site, w, iter, p)
						if len(res.Records) != 3 {
							t.Errorf("%s: %d records for %s", site, len(res.Records), tok)
							return
						}
						records[si].Add(int64(len(res.Records)))
						for _, rec := range res.Records {
							if !strings.HasPrefix(rec, tok+"-") {
								t.Errorf("record bleed: %s got record %q", tok, rec)
								return
							}
							fam := strings.TrimPrefix(rec, tok+"-")[:1]
							if family == "" {
								family = fam
							} else if fam != family {
								t.Errorf("torn response for %s: families %q and %q", tok, family, fam)
								return
							}
						}
					}
				}
			}(si, site, w)
		}
	}

	// Stop the admin churn once every worker drained.
	wg.Wait()
	done.Store(true)
	<-adminDone

	if t.Failed() {
		return
	}

	// The /metrics ledger must agree with what the clients observed.
	resp, err := client.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[serve.MetricsResponse](t, resp)
	resp.Body.Close()
	for si, site := range raceSites {
		var ss *serve.SiteStatus
		for i := range m.Sites {
			if m.Sites[i].Site == site {
				ss = &m.Sites[i]
			}
		}
		if ss == nil || ss.Metrics == nil {
			t.Fatalf("/metrics has no ledger for %s", site)
		}
		sm := ss.Metrics
		if sm.Requests != requests[si].Load() || sm.Pages != pages[si].Load() ||
			sm.Records != records[si].Load() {
			t.Errorf("%s ledger = %d req / %d pages / %d records, clients saw %d / %d / %d",
				site, sm.Requests, sm.Pages, sm.Records,
				requests[si].Load(), pages[si].Load(), records[si].Load())
		}
		if sm.Errors != 0 || sm.PageFails != 0 {
			t.Errorf("%s ledger counted %d request errors, %d page failures",
				site, sm.Errors, sm.PageFails)
		}
		// Histogram consistency: quantiles monotone, and the p99 bucket
		// midpoint can exceed the exact max by at most half a bucket.
		if sm.LatencyP50Ms > sm.LatencyP90Ms || sm.LatencyP90Ms > sm.LatencyP99Ms {
			t.Errorf("%s latency quantiles not monotone: p50=%g p90=%g p99=%g",
				site, sm.LatencyP50Ms, sm.LatencyP90Ms, sm.LatencyP99Ms)
		}
		if sm.LatencyP99Ms > 1.5*sm.LatencyMaxMs+0.001 {
			t.Errorf("%s p99 %gms exceeds its histogram bound (max %gms)",
				site, sm.LatencyP99Ms, sm.LatencyMaxMs)
		}
		if sm.LatencyMeanMs > sm.LatencyMaxMs {
			t.Errorf("%s mean latency %gms exceeds max %gms",
				site, sm.LatencyMeanMs, sm.LatencyMaxMs)
		}
	}
}
