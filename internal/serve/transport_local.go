package serve

import (
	"context"
	"net/http"
	"time"

	"autowrap/internal/jobs"
	"autowrap/internal/store"
)

// localShard is the in-process ShardClient: the same direct calls into a
// shard's *Server the pre-seam router made, with identical wire behavior
// and zero allocations beyond the server's own. A fleet of localShards
// is exactly the single-process `-shards N` deployment.
type localShard struct {
	s *Server
}

func (c localShard) Extract(w http.ResponseWriter, r *http.Request, sc *extractScratch) {
	c.s.finishExtract(w, r, sc)
}

func (c localShard) Lifecycle(w http.ResponseWriter, op store.Op, req AdminRequest) {
	if op == store.OpRollback {
		c.s.finishRollback(w, req)
		return
	}
	c.s.finishPromote(w, req)
}

func (c localShard) Learn(w http.ResponseWriter, req LearnRequest)   { c.s.finishLearn(w, req) }
func (c localShard) Repair(w http.ResponseWriter, req RepairRequest) { c.s.finishRepair(w, req) }

func (c localShard) Jobs(ctx context.Context) ([]jobs.Snapshot, error) {
	m := c.s.Jobs()
	if m == nil {
		return nil, nil
	}
	return m.List(), nil
}

func (c localShard) JobGet(w http.ResponseWriter, r *http.Request, id string) bool {
	m := c.s.Jobs()
	if m == nil {
		return false
	}
	if _, err := m.Get(id); err != nil {
		return false
	}
	c.s.handleJobGet(w, r, id)
	return true
}

func (c localShard) JobCancel(w http.ResponseWriter, r *http.Request, id string) bool {
	m := c.s.Jobs()
	if m == nil {
		return false
	}
	if _, err := m.Get(id); err != nil {
		return false
	}
	c.s.handleJobCancel(w, r, id)
	return true
}

func (c localShard) Metrics(ctx context.Context, now time.Time) (ShardReport, error) {
	rep := ShardReport{
		Gate:  c.s.Gate().Snapshot(),
		Sites: c.s.Dispatcher().Status(),
		accum: c.s.Dispatcher().metricsAccumNow(now),
	}
	if m := c.s.Jobs(); m != nil {
		jm := m.Metrics()
		rep.Jobs = &jm
	}
	if led := c.s.Audit(); led != nil {
		st := led.Stats()
		rep.AuditStats = &st
	}
	return rep, nil
}

func (c localShard) Healthz(ctx context.Context) (HealthzResponse, error) {
	resp := HealthzResponse{
		Status:    "ok",
		Sites:     c.s.Dispatcher().Store().Len(),
		UptimeSec: int64(time.Since(c.s.started).Seconds()),
	}
	if c.s.draining.Load() {
		resp.Status = "draining"
	}
	return resp, nil
}

func (c localShard) AuditView(ctx context.Context, n int) (AuditResponse, error) {
	return c.s.auditResponse(n), nil
}

func (c localShard) SetDraining(v bool) { c.s.SetDraining(v) }

func (c localShard) Drain(ctx context.Context) error { return c.s.QuiesceJobs(ctx) }
