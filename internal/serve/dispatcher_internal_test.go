package serve

import (
	"context"
	"fmt"
	"testing"

	"autowrap/internal/extract"
	"autowrap/internal/lr"
	"autowrap/internal/store"
)

// TestUnknownSitesDoNotLeakSlots pins the admission-side memory bound: a
// stream of requests for junk site names must not grow the per-site slot
// map — only sites the store knows get serving state.
func TestUnknownSitesDoNotLeakSlots(t *testing.T) {
	st := store.New()
	if _, err := st.Put("real", &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(st, Options{})
	ctx := context.Background()
	pages := []extract.Page{{ID: "p", HTML: "<html><b>x</b></html>"}}
	if _, err := d.Extract(ctx, "real", pages); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := d.Extract(ctx, fmt.Sprintf("junk-%d", i), pages); err == nil {
			t.Fatalf("junk site %d served", i)
		}
	}
	slots := 0
	d.sites.Range(func(_, _ any) bool { slots++; return true })
	if slots != 1 {
		t.Fatalf("slot map holds %d entries after junk traffic, want 1", slots)
	}
}
