package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autowrap/internal/drift"
	"autowrap/internal/jobs"
	"autowrap/internal/serve"
	"autowrap/internal/store"
	"autowrap/internal/testutil/leakcheck"
)

func newTestServer(t *testing.T, st *store.Store, gate *serve.Gate) (*serve.Server, *httptest.Server) {
	t.Helper()
	leakcheck.Check(t)
	d := serve.NewDispatcher(st, serve.Options{})
	srv, err := serve.NewServer(serve.ServerConfig{Dispatcher: d, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPExtractSingleAndBatch(t *testing.T) {
	_, hs := newTestServer(t, twoVersionStore(t), nil)

	// Single-page shape.
	resp := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: "shop", Page: &serve.PageInput{ID: "one", HTML: testPage(0)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single page: status %d", resp.StatusCode)
	}
	out := decode[serve.ExtractResponse](t, resp)
	if out.Version != 1 || len(out.Results) != 1 || len(out.Results[0].Records) != 3 {
		t.Fatalf("single page response = %+v", out)
	}
	if !strings.HasPrefix(out.Results[0].Records[0], "alpha-") {
		t.Fatalf("v1 served %q, want alpha family", out.Results[0].Records[0])
	}

	// Batch shape.
	var pages []serve.PageInput
	for i := 0; i < 5; i++ {
		pages = append(pages, serve.PageInput{ID: fmt.Sprintf("p%d", i), HTML: testPage(i)})
	}
	resp = postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{Site: "shop", Pages: pages})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	out = decode[serve.ExtractResponse](t, resp)
	if len(out.Results) != 5 {
		t.Fatalf("batch returned %d results", len(out.Results))
	}
	for i, r := range out.Results {
		if r.ID != fmt.Sprintf("p%d", i) {
			t.Fatalf("result %d has ID %q: results must stay index-aligned", i, r.ID)
		}
		if len(r.Records) != 3 || r.Error != "" {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

func TestHTTPExtractErrors(t *testing.T) {
	_, hs := newTestServer(t, twoVersionStore(t), nil)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown site", serve.ExtractRequest{Site: "nosuch", Page: &serve.PageInput{HTML: "<p>x</p>"}}, http.StatusNotFound},
		{"missing site", serve.ExtractRequest{Page: &serve.PageInput{HTML: "<p>x</p>"}}, http.StatusBadRequest},
		{"no pages", serve.ExtractRequest{Site: "shop"}, http.StatusBadRequest},
		{"both shapes", serve.ExtractRequest{Site: "shop",
			Page:  &serve.PageInput{HTML: "x"},
			Pages: []serve.PageInput{{HTML: "y"}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, hs.URL+"/v1/extract", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		body := decode[map[string]any](t, resp)
		if body["error"] == "" {
			t.Errorf("%s: no error message in body", tc.name)
		}
	}

	// Bad JSON and wrong method.
	resp, err := http.Post(hs.URL+"/v1/extract", "application/json",
		strings.NewReader(`{"site":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
	getResp, err := http.Get(hs.URL + "/v1/extract")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET extract: status %d", getResp.StatusCode)
	}

	// Candidate-only site → 409.
	st := store.New()
	if _, err := st.PutCandidate("staged", wrapperFor("a"), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	_, hs2 := newTestServer(t, st, nil)
	resp = postJSON(t, hs2.URL+"/v1/extract", serve.ExtractRequest{
		Site: "staged", Page: &serve.PageInput{HTML: testPage(0)}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("candidate-only site: status %d, want 409", resp.StatusCode)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	gate := serve.NewGate(serve.GateOptions{MaxInFlight: 1, MaxQueue: -1})
	_, hs := newTestServer(t, twoVersionStore(t), gate)

	// Occupy the only slot directly, then hit the endpoint: the request
	// must be rejected at the door with 429 + Retry-After, not queued.
	release, err := gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: "shop", Page: &serve.PageInput{HTML: testPage(0)}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	release()

	// Slot free again: the same request now succeeds.
	resp = postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: "shop", Page: &serve.PageInput{HTML: testPage(0)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
	if snap := gate.Snapshot(); snap.Rejected != 1 {
		t.Fatalf("gate rejected = %d, want 1", snap.Rejected)
	}
}

// TestHTTPQueuedRequestHonorsDeadline pins the admission-wait contract at
// the HTTP layer: the per-request deadline (timeout_ms) starts before
// Gate.Acquire, so a request queued behind busy slots gives up at its
// deadline instead of waiting indefinitely for a slot.
func TestHTTPQueuedRequestHonorsDeadline(t *testing.T) {
	gate := serve.NewGate(serve.GateOptions{MaxInFlight: 1, MaxQueue: 4})
	_, hs := newTestServer(t, twoVersionStore(t), gate)

	release, err := gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	resp := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: "shop", Page: &serve.PageInput{HTML: testPage(0)}, TimeoutMS: 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued past deadline: status %d, want 504", resp.StatusCode)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("request waited %v in the queue despite a 50ms deadline", waited)
	}
}

func TestHTTPHealthzAndDraining(t *testing.T) {
	srv, hs := newTestServer(t, twoVersionStore(t), nil)
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	hz := decode[serve.HealthzResponse](t, resp)
	if hz.Status != "ok" || hz.Sites != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	srv.SetDraining(true)
	resp2, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", resp2.StatusCode)
	}

	// Draining steers traffic away but in-flight/new work still completes.
	resp3 := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: "shop", Page: &serve.PageInput{HTML: testPage(0)}})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("extract while draining: status %d, want 200", resp3.StatusCode)
	}
}

func TestHTTPMetricsAndSites(t *testing.T) {
	_, hs := newTestServer(t, twoVersionStore(t), nil)
	for i := 0; i < 3; i++ {
		postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
			Site: "shop", Page: &serve.PageInput{HTML: testPage(i)}})
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m := decode[serve.MetricsResponse](t, resp)
	if m.Gate.Admitted != 3 {
		t.Fatalf("gate admitted = %d, want 3", m.Gate.Admitted)
	}
	if len(m.Sites) != 1 {
		t.Fatalf("metrics sites = %d", len(m.Sites))
	}
	s := m.Sites[0]
	if s.Site != "shop" || s.ActiveVersion != 1 || s.ServingVersion != 1 {
		t.Fatalf("site status = %+v", s)
	}
	if s.Metrics == nil || s.Metrics.Requests != 3 || s.Metrics.Records != 9 {
		t.Fatalf("site metrics = %+v", s.Metrics)
	}
	if s.Health == nil || s.Health.Pages != 3 {
		t.Fatalf("site health = %+v", s.Health)
	}
	if s.Metrics.LatencyP50Ms <= 0 {
		t.Fatalf("latency p50 = %v, want > 0", s.Metrics.LatencyP50Ms)
	}

	sresp, err := http.Get(hs.URL + "/v1/sites")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sites := decode[[]serve.SiteStatus](t, sresp)
	if len(sites) != 1 || sites[0].Versions != 2 {
		t.Fatalf("/v1/sites = %+v", sites)
	}
}

func TestHTTPPromoteRollback(t *testing.T) {
	_, hs := newTestServer(t, twoVersionStore(t), nil)

	extract := func() serve.ExtractResponse {
		resp := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
			Site: "shop", Page: &serve.PageInput{HTML: testPage(0)}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extract: status %d", resp.StatusCode)
		}
		return decode[serve.ExtractResponse](t, resp)
	}
	if got := extract(); got.Version != 1 {
		t.Fatalf("before promote: v%d", got.Version)
	}

	resp := postJSON(t, hs.URL+"/v1/promote", serve.AdminRequest{Site: "shop", Version: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	admin := decode[serve.AdminResponse](t, resp)
	if admin.ServingVersion != 2 {
		t.Fatalf("promote response = %+v", admin)
	}
	if got := extract(); got.Version != 2 ||
		!strings.HasPrefix(got.Results[0].Records[0], "beta-") {
		t.Fatalf("after promote over HTTP: %+v", got)
	}

	resp = postJSON(t, hs.URL+"/v1/rollback", serve.AdminRequest{Site: "shop"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d", resp.StatusCode)
	}
	if got := extract(); got.Version != 1 {
		t.Fatalf("after rollback over HTTP: v%d", got.Version)
	}

	// Error paths.
	if resp := postJSON(t, hs.URL+"/v1/promote",
		serve.AdminRequest{Site: "shop", Version: 99}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote missing version: status %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, hs.URL+"/v1/rollback",
		serve.AdminRequest{Site: "shop"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("rollback past history: status %d, want 409", resp.StatusCode)
	}
}

func TestHTTPRepairUnconfigured(t *testing.T) {
	_, hs := newTestServer(t, twoVersionStore(t), nil)
	resp := postJSON(t, hs.URL+"/v1/repair", serve.RepairRequest{
		Site: "shop", Pages: []string{"<p>a</p>", "<p>b</p>"}})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("repair without repairer: status %d, want 501", resp.StatusCode)
	}
	resp = postJSON(t, hs.URL+"/v1/learn", serve.LearnRequest{
		Site: "new", Pages: []string{"<p>a</p>", "<p>b</p>"}})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("learn without repairer: status %d, want 501", resp.StatusCode)
	}
}

// TestHTTPLearnCorpusDirConfined: corpus_dir is rejected without a
// configured root, and rejected outside it — the learn endpoint must not
// become an arbitrary server-side file read. The repairer here is a stub
// (never reached: both requests die before submission).
func TestHTTPLearnCorpusDirConfined(t *testing.T) {
	root := t.TempDir()
	d := serve.NewDispatcher(twoVersionStore(t), serve.Options{})
	jm := jobs.New(jobs.Options{})
	t.Cleanup(func() { jm.Drain(context.Background()) })
	srv, err := serve.NewServer(serve.ServerConfig{
		Dispatcher: d,
		Repairer:   &drift.Repairer{},
		Jobs:       jm,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	// No root configured → corpus_dir disabled entirely.
	resp := postJSON(t, hs.URL+"/v1/learn", serve.LearnRequest{Site: "s", CorpusDir: root})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("corpus_dir without root: status %d, want 403", resp.StatusCode)
	}

	jm2 := jobs.New(jobs.Options{})
	t.Cleanup(func() { jm2.Drain(context.Background()) })
	srv2, err := serve.NewServer(serve.ServerConfig{
		Dispatcher:      d,
		Repairer:        &drift.Repairer{},
		Jobs:            jm2,
		LearnCorpusRoot: root,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(hs2.Close)
	for _, dir := range []string{"/etc", "../..", root + "/../outside"} {
		resp := postJSON(t, hs2.URL+"/v1/learn", serve.LearnRequest{Site: "s", CorpusDir: dir})
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("corpus_dir %q: status %d, want 403", dir, resp.StatusCode)
		}
	}
	// A symlink under the root pointing outside it must not escape.
	outside := t.TempDir()
	if err := os.Symlink(outside, filepath.Join(root, "sneaky")); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, hs2.URL+"/v1/learn", serve.LearnRequest{Site: "s", CorpusDir: "sneaky"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("symlinked corpus_dir: status %d, want 403", resp.StatusCode)
	}

	// An existing directory inside the root is accepted (202; the job
	// itself will fail on the empty dir + stub repairer, which is fine —
	// submission is the test).
	if err := os.Mkdir(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, hs2.URL+"/v1/learn", serve.LearnRequest{Site: "s", CorpusDir: "sub"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("corpus_dir under root: status %d, want 202", resp.StatusCode)
	}
}

// TestHTTPJobsEndpointsWithoutManager: a server with no maintenance plane
// still answers the jobs routes sanely.
func TestHTTPJobsEndpointsWithoutManager(t *testing.T) {
	_, hs := newTestServer(t, twoVersionStore(t), nil)
	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs list: status %d", resp.StatusCode)
	}
	if list := decode[[]serve.JobSnapshot](t, resp); len(list) != 0 {
		t.Fatalf("jobs list = %+v, want empty", list)
	}
	getResp, err := http.Get(hs.URL + "/v1/jobs/job-000001")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", getResp.StatusCode)
	}
	cresp := postJSON(t, hs.URL+"/v1/jobs/job-000001/cancel", struct{}{})
	if cresp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: status %d, want 404", cresp.StatusCode)
	}
}

func TestHTTPPageCap(t *testing.T) {
	d := serve.NewDispatcher(twoVersionStore(t), serve.Options{})
	srv, err := serve.NewServer(serve.ServerConfig{Dispatcher: d, MaxPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	pages := []serve.PageInput{{HTML: "a"}, {HTML: "b"}, {HTML: "c"}}
	resp := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{Site: "shop", Pages: pages})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over page cap: status %d, want 413", resp.StatusCode)
	}
}
