package serve_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"autowrap/internal/drift"
	"autowrap/internal/extract"
	"autowrap/internal/lr"
	"autowrap/internal/serve"
	"autowrap/internal/store"
	"autowrap/internal/wrapper"
)

// testPage renders a page carrying two disjoint record lists, so two
// different wrappers over the same page extract two disjoint text families
// — which makes a torn read (version says v1, records say v2) detectable.
func testPage(i int) string {
	var sb strings.Builder
	sb.WriteString("<html><body>")
	for r := 0; r < 3; r++ {
		fmt.Fprintf(&sb, `<div class="a">alpha-%d-%d</div>`, i, r)
	}
	for r := 0; r < 3; r++ {
		fmt.Fprintf(&sb, `<div class="b">beta-%d-%d</div>`, i, r)
	}
	sb.WriteString("</body></html>")
	return sb.String()
}

func wrapperFor(class string) wrapper.Portable {
	return &lr.Compiled{Left: `<div class="` + class + `">`, Right: `</div>`}
}

// twoVersionStore holds site "shop" with v1 extracting the alpha family
// (active) and v2 extracting the beta family (stored, not yet promoted).
func twoVersionStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	if _, err := st.Put("shop", wrapperFor("a"), store.Meta{
		Profile: &store.Profile{Pages: 4, MeanRecords: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PutCandidate("shop", wrapperFor("b"), store.Meta{
		Profile: &store.Profile{Pages: 4, MeanRecords: 3},
	}); err != nil {
		t.Fatal(err)
	}
	return st
}

func pagesN(n int) []extract.Page {
	out := make([]extract.Page, n)
	for i := range out {
		out[i] = extract.Page{ID: fmt.Sprintf("p%d", i), HTML: testPage(i)}
	}
	return out
}

// familyOf classifies an extraction's records; a response mixing families
// (or mismatching its reported version) is a torn wrapper.
func familyOf(t *testing.T, ext *serve.Extraction) string {
	t.Helper()
	recs := ext.Records()
	if len(recs) == 0 {
		t.Fatalf("no records extracted (version %d)", ext.Version)
	}
	family := "alpha"
	if strings.HasPrefix(recs[0], "beta-") {
		family = "beta"
	}
	for _, r := range recs {
		if !strings.HasPrefix(r, family+"-") {
			t.Fatalf("torn extraction: records mix families: %v", recs)
		}
	}
	return family
}

func TestDispatcherServesActiveVersion(t *testing.T) {
	st := twoVersionStore(t)
	d := serve.NewDispatcher(st, serve.Options{})
	ext, err := d.Extract(context.Background(), "shop", pagesN(2))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Version != 1 {
		t.Fatalf("serving version = %d, want 1 (the promoted one)", ext.Version)
	}
	if got := familyOf(t, ext); got != "alpha" {
		t.Fatalf("v1 extracted family %q, want alpha", got)
	}
	if n := len(ext.Records()); n != 6 {
		t.Fatalf("extracted %d records, want 6", n)
	}
}

func TestDispatcherHotSwapOnPromoteAndRollback(t *testing.T) {
	st := twoVersionStore(t)
	d := serve.NewDispatcher(st, serve.Options{})
	ctx := context.Background()

	ext, err := d.Extract(ctx, "shop", pagesN(1))
	if err != nil {
		t.Fatal(err)
	}
	if familyOf(t, ext) != "alpha" {
		t.Fatal("expected v1/alpha before promote")
	}

	// Promote the staged candidate: the very next request must serve v2,
	// with no restart and no explicit cache invalidation by the caller.
	if _, err := d.Promote("shop", 2); err != nil {
		t.Fatal(err)
	}
	ext, err = d.Extract(ctx, "shop", pagesN(1))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Version != 2 || familyOf(t, ext) != "beta" {
		t.Fatalf("after promote: version %d family %q, want 2/beta",
			ext.Version, familyOf(t, ext))
	}

	// Rollback: back to v1.
	if _, err := d.Rollback("shop"); err != nil {
		t.Fatal(err)
	}
	ext, err = d.Extract(ctx, "shop", pagesN(1))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Version != 1 || familyOf(t, ext) != "alpha" {
		t.Fatalf("after rollback: version %d, want 1/alpha", ext.Version)
	}
}

// TestDispatcherSwapHappensWithoutStoreMethods proves the dispatcher reacts
// to raw store mutations too (engine PutBatch, repairer promotes): the
// epoch, not the dispatcher's own admin methods, is the swap trigger.
func TestDispatcherSwapHappensWithoutStoreMethods(t *testing.T) {
	st := twoVersionStore(t)
	d := serve.NewDispatcher(st, serve.Options{})
	ctx := context.Background()
	if ext, _ := d.Extract(ctx, "shop", pagesN(1)); ext.Version != 1 {
		t.Fatalf("precondition: want v1, got v%d", ext.Version)
	}
	if _, err := st.Promote("shop", 2); err != nil { // direct store mutation
		t.Fatal(err)
	}
	ext, err := d.Extract(ctx, "shop", pagesN(1))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Version != 2 || familyOf(t, ext) != "beta" {
		t.Fatalf("dispatcher did not pick up direct store promote: v%d", ext.Version)
	}
}

// TestDispatcherEpochOnlyRefreshKeepsRuntime pins that a mutation that does
// not change the serving version (staging a candidate) re-validates the
// binding without rebuilding the runtime — the lifetime health counters
// survive.
func TestDispatcherEpochOnlyRefreshKeepsRuntime(t *testing.T) {
	st := store.New()
	if _, err := st.Put("shop", wrapperFor("a"), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	d := serve.NewDispatcher(st, serve.Options{})
	ctx := context.Background()
	if _, err := d.Extract(ctx, "shop", pagesN(4)); err != nil {
		t.Fatal(err)
	}
	before := d.Status()[0].Health
	if before == nil || before.Pages != 4 {
		t.Fatalf("health before = %+v, want 4 pages", before)
	}
	// Staging a candidate bumps the epoch but not the active version.
	if _, err := st.PutCandidate("shop", wrapperFor("b"), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Extract(ctx, "shop", pagesN(2)); err != nil {
		t.Fatal(err)
	}
	after := d.Status()[0].Health
	if after == nil || after.Pages != 6 {
		t.Fatalf("health after epoch-only refresh = %+v, want 6 pages (runtime kept)", after)
	}
}

func TestDispatcherSiteErrors(t *testing.T) {
	st := store.New()
	if _, err := st.PutCandidate("staged", wrapperFor("a"), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	d := serve.NewDispatcher(st, serve.Options{})
	ctx := context.Background()

	if _, err := d.Extract(ctx, "nosuch", pagesN(1)); !errors.Is(err, serve.ErrUnknownSite) {
		t.Fatalf("unknown site error = %v, want ErrUnknownSite", err)
	}
	if _, err := d.Extract(ctx, "staged", pagesN(1)); !errors.Is(err, serve.ErrNoActiveVersion) {
		t.Fatalf("candidate-only site error = %v, want ErrNoActiveVersion", err)
	}
}

// TestConcurrentSwapNeverTearsWrapper is the acceptance-criteria stress
// test: many goroutines extract while another flips the serving version
// with Promote/Rollback as fast as it can. Every single response must be
// internally consistent — the reported version's record family, never a
// mix — and the runs after the last flip must serve the final version.
func TestConcurrentSwapNeverTearsWrapper(t *testing.T) {
	st := twoVersionStore(t)
	mon := drift.NewMonitor(drift.Policy{})
	d := serve.NewDispatcher(st, serve.Options{Workers: 2, Monitor: mon})
	ctx := context.Background()

	const (
		extractors = 8
		requests   = 60
		flips      = 120
	)
	var wg sync.WaitGroup
	var torn atomic.Int64
	errs := make(chan error, extractors)
	for g := 0; g < extractors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				np := 1 + (g+i)%3 // exercise both the single-page and pool paths
				ext, err := d.Extract(ctx, "shop", pagesN(np))
				if err != nil {
					errs <- err
					return
				}
				recs := ext.Records()
				if len(recs) != np*3 {
					errs <- fmt.Errorf("got %d records for %d pages", len(recs), np)
					return
				}
				wantPrefix := "alpha-"
				if ext.Version == 2 {
					wantPrefix = "beta-"
				}
				for _, r := range recs {
					if !strings.HasPrefix(r, wantPrefix) {
						torn.Add(1)
						errs <- fmt.Errorf("torn: version %d served record %q", ext.Version, r)
						return
					}
				}
			}
		}(g)
	}
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < flips; i++ {
			if i%2 == 0 {
				if _, err := d.Promote("shop", 2); err != nil {
					errs <- err
					return
				}
			} else {
				if _, err := d.Rollback("shop"); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	<-swapDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn extractions", n)
	}
	// flips is even, so the last operation was a Rollback to v1.
	ext, err := d.Extract(ctx, "shop", pagesN(1))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Version != 1 || familyOf(t, ext) != "alpha" {
		t.Fatalf("after final rollback: v%d, want v1/alpha", ext.Version)
	}
}

// TestDispatcherRecentPagesRing pins the auto-repair fuel cache: served
// page HTMLs land in a bounded per-site ring, oldest first, and the cache
// stays off (nil) when Options.RecentPages is 0.
func TestDispatcherRecentPagesRing(t *testing.T) {
	st := twoVersionStore(t)
	d := serve.NewDispatcher(st, serve.Options{RecentPages: 4})
	ctx := context.Background()
	if got := d.RecentPages("shop"); got != nil {
		t.Fatalf("recent pages before traffic = %v, want nil", got)
	}
	if _, err := d.Extract(ctx, "shop", pagesN(6)); err != nil {
		t.Fatal(err)
	}
	got := d.RecentPages("shop")
	if len(got) != 4 {
		t.Fatalf("ring holds %d pages, want 4 (bounded)", len(got))
	}
	// Oldest-first: pages 2..5 of the 6 survive.
	for i, html := range got {
		if want := testPage(i + 2); html != want {
			t.Fatalf("ring[%d] is not page %d (oldest-first eviction broken)", i, i+2)
		}
	}
	// Disabled cache records nothing.
	d2 := serve.NewDispatcher(twoVersionStore(t), serve.Options{})
	if _, err := d2.Extract(ctx, "shop", pagesN(2)); err != nil {
		t.Fatal(err)
	}
	if got := d2.RecentPages("shop"); got != nil {
		t.Fatalf("recent pages with cache disabled = %v, want nil", got)
	}
}

// TestDispatcherMonitorObservesServedPages pins the drift wiring: pages
// served through the dispatcher land in the monitor's window.
func TestDispatcherMonitorObservesServedPages(t *testing.T) {
	st := twoVersionStore(t)
	mon := drift.NewMonitor(drift.Policy{})
	d := serve.NewDispatcher(st, serve.Options{Monitor: mon})
	if _, err := d.Extract(context.Background(), "shop", pagesN(5)); err != nil {
		t.Fatal(err)
	}
	h, ok := mon.Site("shop")
	if !ok {
		t.Fatal("site not registered with the monitor")
	}
	if got := h.Stats().Pages; got != 5 {
		t.Fatalf("monitor observed %d pages, want 5", got)
	}
}
