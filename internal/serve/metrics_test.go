package serve

import (
	"testing"
	"time"
)

func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	// 90 fast requests (~100µs), 10 slow (~50ms): p50 must land in the fast
	// band, p99 in the slow band, despite the coarse buckets.
	for i := 0; i < 90; i++ {
		h.Record(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(50 * time.Millisecond)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 32 || p50 > 256 { // µs; bucket around 100µs is [64,128)
		t.Fatalf("p50 = %vµs, want ~100µs", p50)
	}
	if p99 < 16_000 || p99 > 131_072 { // bucket around 50ms is [32.8ms, 65.5ms)
		t.Fatalf("p99 = %vµs, want ~50_000µs", p99)
	}
	if max := h.max.Load(); max != 50_000 {
		t.Fatalf("max = %dµs, want 50000", max)
	}
}

func TestLatencyHistEmptyAndExtremes(t *testing.T) {
	var h latencyHist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty hist p50 = %v", got)
	}
	h.Record(0)
	h.Record(-time.Second)   // clamped
	h.Record(10 * time.Hour) // open-ended top bucket
	if h.count.Load() != 3 {
		t.Fatalf("count = %d", h.count.Load())
	}
	if top := h.Quantile(1.0); top <= 0 {
		t.Fatalf("p100 = %v, want positive", top)
	}
}

// TestLatencyHistQuantileCeilingRank pins the rank arithmetic at exact
// bucket boundaries: the rank must be ceil(q*total), not trunc(q*total),
// or tail quantiles at small counts report one bucket low.
func TestLatencyHistQuantileCeilingRank(t *testing.T) {
	fast := 100 * time.Microsecond    // bucket [64,128)µs, midpoint 96
	slow := 50 * time.Millisecond     // bucket [32.8,65.5)ms
	fastMid, slowMid := 96.0, 49152.0 // geometric midpoints reported
	cases := []struct {
		name  string
		nFast int
		nSlow int
		q     float64
		want  float64
	}{
		// 99 fast + 1 slow: ceil(0.99*100)=99 lands on the last fast
		// request; trunc would too — the boundary case is below.
		{"p99 of 99+1", 99, 1, 0.99, fastMid},
		// 98 fast + 2 slow: ceil(0.99*100)=99 is the first slow request.
		// trunc(0.99*100)=98 would still report the fast bucket — the
		// exact bias this test pins.
		{"p99 of 98+2", 98, 2, 0.99, slowMid},
		// 9 fast + 1 slow: ceil(0.99*10)=10 → the slow one. trunc = 9
		// → fast: the small-count case from the bug report.
		{"p99 of 9+1", 9, 1, 0.99, slowMid},
		// p50 of 1 fast + 1 slow: ceil(0.5*2)=1 → fast.
		{"p50 of 1+1", 1, 1, 0.50, fastMid},
		// p100 always reaches the last observation.
		{"p100 of 3+1", 3, 1, 1.0, slowMid},
		// q so small the rank clamps up to 1.
		{"p1 of 4+0", 4, 0, 0.01, fastMid},
	}
	for _, tc := range cases {
		var h latencyHist
		for i := 0; i < tc.nFast; i++ {
			h.Record(fast)
		}
		for i := 0; i < tc.nSlow; i++ {
			h.Record(slow)
		}
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v µs, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

func TestRateRingTrailingWindow(t *testing.T) {
	var r rateRing
	base := time.Unix(1_700_000_100, 0)
	// 20 events/sec over the 10 seconds preceding "now".
	for s := 1; s <= rateWindow; s++ {
		r.Tick(base.Add(-time.Duration(s)*time.Second), 20)
	}
	if got := r.Rate(base); got != 20 {
		t.Fatalf("rate = %v, want 20", got)
	}
	// Events in the current partial second don't count yet.
	r.Tick(base, 1000)
	if got := r.Rate(base); got != 20 {
		t.Fatalf("rate with partial second = %v, want 20", got)
	}
	// Stale slots age out of the window.
	later := base.Add(rateWindow * 2 * time.Second)
	if got := r.Rate(later); got != 0 {
		t.Fatalf("rate after window passed = %v, want 0", got)
	}
}

// TestRateRingEarlyUptimeNotUnderReported pins the satellite bugfix: with
// only k < rateWindow complete seconds of data since the first tick, the
// denominator is k, not the full window — 50 req/s of steady traffic must
// read as 50 from the second second of uptime, not ramp 5, 10, 15...
func TestRateRingEarlyUptimeNotUnderReported(t *testing.T) {
	var r rateRing
	base := time.Unix(1_700_000_100, 0)
	for s := 0; s < 3; s++ {
		r.Tick(base.Add(time.Duration(s)*time.Second), 50)
	}
	// "now" is 3s after the first tick: exactly 3 complete seconds of
	// data exist, each carrying 50 events.
	if got := r.Rate(base.Add(3 * time.Second)); got != 50 {
		t.Fatalf("rate after 3s of uptime = %v, want 50 (not %v)", got, 150.0/rateWindow)
	}
	// One complete second of data.
	var r2 rateRing
	r2.Tick(base, 50)
	if got := r2.Rate(base.Add(time.Second)); got != 50 {
		t.Fatalf("rate after 1s of uptime = %v, want 50", got)
	}
	// No complete seconds at all: nothing to average yet.
	var r3 rateRing
	r3.Tick(base, 50)
	if got := r3.Rate(base); got != 0 {
		t.Fatalf("rate in the first partial second = %v, want 0", got)
	}
}

// TestRateRingIdleGapRecovery: after an idle gap long enough to stale the
// whole window, resumed traffic is averaged over the seconds it actually
// covers, not diluted across the empty window.
func TestRateRingIdleGapRecovery(t *testing.T) {
	var r rateRing
	base := time.Unix(1_700_000_100, 0)
	r.Tick(base, 30) // old burst, will fall out of the window
	resume := base.Add(60 * time.Second)
	r.Tick(resume, 40)
	r.Tick(resume.Add(time.Second), 40)
	if got := r.Rate(resume.Add(2 * time.Second)); got != 40 {
		t.Fatalf("rate 2s after idle gap = %v, want 40", got)
	}
	// A genuine zero-traffic second inside a live window still counts:
	// ticks at t and t+2 (nothing at t+1) average over 3 seconds.
	var r2 rateRing
	r2.Tick(base, 30)
	r2.Tick(base.Add(2*time.Second), 30)
	if got := r2.Rate(base.Add(3 * time.Second)); got != 20 {
		t.Fatalf("rate with an embedded zero second = %v, want 20", got)
	}
}

// TestRateRingLullDoesNotInflate: a lull shorter than the window is not a
// restart — its idle seconds are genuine zeros and must stay in the
// denominator, or a single post-lull request reads as a rate spike.
func TestRateRingLullDoesNotInflate(t *testing.T) {
	var r rateRing
	base := time.Unix(1_700_000_100, 0)
	r.Tick(base.Add(-30*time.Second), 10) // long-lived ring, old traffic
	r.Tick(base, 10)                      // 1 event at T
	// 8 idle seconds, then 1 event at T+9.
	r.Tick(base.Add(9*time.Second), 1)
	// Trailing window at T+11 covers T+1..T+10: one event, ten seconds.
	if got := r.Rate(base.Add(11 * time.Second)); got != 0.1 {
		t.Fatalf("rate after an in-window lull = %v, want 0.1 (zeros must count)", got)
	}
}
