package serve

import (
	"testing"
	"time"
)

func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	// 90 fast requests (~100µs), 10 slow (~50ms): p50 must land in the fast
	// band, p99 in the slow band, despite the coarse buckets.
	for i := 0; i < 90; i++ {
		h.Record(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(50 * time.Millisecond)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 32 || p50 > 256 { // µs; bucket around 100µs is [64,128)
		t.Fatalf("p50 = %vµs, want ~100µs", p50)
	}
	if p99 < 16_000 || p99 > 131_072 { // bucket around 50ms is [32.8ms, 65.5ms)
		t.Fatalf("p99 = %vµs, want ~50_000µs", p99)
	}
	if max := h.max.Load(); max != 50_000 {
		t.Fatalf("max = %dµs, want 50000", max)
	}
}

func TestLatencyHistEmptyAndExtremes(t *testing.T) {
	var h latencyHist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty hist p50 = %v", got)
	}
	h.Record(0)
	h.Record(-time.Second)   // clamped
	h.Record(10 * time.Hour) // open-ended top bucket
	if h.count.Load() != 3 {
		t.Fatalf("count = %d", h.count.Load())
	}
	if top := h.Quantile(1.0); top <= 0 {
		t.Fatalf("p100 = %v, want positive", top)
	}
}

func TestRateRingTrailingWindow(t *testing.T) {
	var r rateRing
	base := time.Unix(1_700_000_100, 0)
	// 20 events/sec over the 10 seconds preceding "now".
	for s := 1; s <= rateWindow; s++ {
		r.Tick(base.Add(-time.Duration(s)*time.Second), 20)
	}
	if got := r.Rate(base); got != 20 {
		t.Fatalf("rate = %v, want 20", got)
	}
	// Events in the current partial second don't count yet.
	r.Tick(base, 1000)
	if got := r.Rate(base); got != 20 {
		t.Fatalf("rate with partial second = %v, want 20", got)
	}
	// Stale slots age out of the window.
	later := base.Add(rateWindow * 2 * time.Second)
	if got := r.Rate(later); got != 0 {
		t.Fatalf("rate after window passed = %v, want 0", got)
	}
}
