package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the latency histogram's bucket count: bucket i holds
// requests with latency in [2^(i-1), 2^i) microseconds, bucket 0 holds
// sub-microsecond requests and the last bucket is open-ended (~2.3 min and
// up is all the same kind of broken).
const histBuckets = 38

// latencyHist is a lock-free power-of-two latency histogram. Recording is
// one atomic add; quantiles are estimated from the bucket boundaries
// (geometric midpoint), which is plenty for a /metrics endpoint — the error
// is bounded by the bucket width, ~±41% of the value, and the shape
// (p50 vs p99 separation) survives exactly.
type latencyHist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
	max     atomic.Int64 // microseconds
}

func bucketOf(d time.Duration) int {
	us := uint64(d.Microseconds())
	b := bits.Len64(us) // 0 for 0µs, 1 for 1µs, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one request latency.
func (h *latencyHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		old := h.max.Load()
		if us <= old || h.max.CompareAndSwap(old, us) {
			return
		}
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) in microseconds. The
// rank is the ceiling of q*total — the smallest k such that at least a q
// fraction of observations is <= the k-th — so p99 of 100 requests is the
// 99th-slowest, not the 98th: truncation would bias tail quantiles one
// bucket low exactly at small counts, where a histogram is already at its
// coarsest.
func (h *latencyHist) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0.5
			}
			lo := float64(int64(1) << (i - 1))
			return lo * 1.5 // midpoint of [2^(i-1), 2^i)
		}
	}
	return float64(h.max.Load())
}

// rateSlots sizes the QPS ring; rateWindow is the trailing averaging
// window. Slots beyond the window absorb clock-skewed stragglers instead
// of corrupting the live window.
const (
	rateSlots  = 16
	rateWindow = 10 // seconds
)

// rateRing measures a trailing requests-per-second rate with one slot per
// wall-clock second. Ticks are two atomic ops; a tick racing a second
// boundary can miscount by a request or two, which monitoring tolerates.
type rateRing struct {
	sec [rateSlots]atomic.Int64
	n   [rateSlots]atomic.Int64
	// start is the first tick's wall-clock second: the ring cannot claim
	// coverage of seconds before it existed, so the denominator below is
	// bounded by the ring's own uptime.
	start atomic.Int64
	// last is the most recent tick's second; resume marks where coverage
	// restarts after the ring went dark for longer than the whole window
	// (at that point no in-window second predates the gap, so averaging
	// across the empty window would just dilute the resumed traffic).
	last   atomic.Int64
	resume atomic.Int64
}

// Tick records n events at time now.
func (r *rateRing) Tick(now time.Time, n int64) {
	sec := now.Unix()
	// Track the earliest tick second (ticks may arrive slightly out of
	// order around second boundaries); the fast path is one load.
	for {
		old := r.start.Load()
		if old != 0 && old <= sec {
			break
		}
		if r.start.CompareAndSwap(old, sec) {
			break
		}
	}
	// Track the latest tick second, and restart coverage when the ring
	// was dark for longer than the window. Races around the boundary can
	// misplace resume by a second; monitoring tolerates that.
	for {
		old := r.last.Load()
		if old >= sec {
			break
		}
		if r.last.CompareAndSwap(old, sec) {
			if old != 0 && sec-old > rateWindow {
				r.resume.Store(sec)
			}
			break
		}
	}
	i := int(sec % rateSlots)
	if old := r.sec[i].Load(); old != sec && r.sec[i].CompareAndSwap(old, sec) {
		r.n[i].Store(0)
	}
	r.n[i].Add(n)
}

// Rate returns the mean events/sec over the trailing window's complete
// seconds (the current, partial second is excluded so the rate doesn't dip
// at every second boundary). The denominator is the number of in-window
// seconds actually covered, capped at rateWindow — never the full window
// blindly: dividing by 10 when only 3 seconds of data exist under-reports
// early-uptime QPS by 70%. Coverage runs from the latest of window start,
// first tick (the ring cannot cover seconds before it existed) and the
// resume watermark (traffic restarting after a dark gap longer than the
// whole window — nothing in the window predates such a gap, so the gap's
// emptiness must not dilute the resumed rate). A lull *shorter* than the
// window, by contrast, leaves earlier in-window traffic standing, and its
// idle seconds count as the genuine zeros they are.
func (r *rateRing) Rate(now time.Time) float64 {
	nowSec := now.Unix()
	start := r.start.Load()
	if start == 0 || nowSec <= start {
		// No ticks yet, or no complete second of data: nothing to average.
		return 0
	}
	var total int64
	for i := 0; i < rateSlots; i++ {
		sec := r.sec[i].Load()
		if sec >= nowSec-rateWindow && sec < nowSec {
			total += r.n[i].Load()
		}
	}
	from := nowSec - rateWindow
	if start > from {
		from = start
	}
	if resume := r.resume.Load(); resume > from {
		from = resume
	}
	covered := nowSec - from
	if covered < 1 {
		covered = 1
	}
	if covered > rateWindow {
		covered = rateWindow
	}
	return float64(total) / float64(covered)
}

// SiteMetrics is one site's serving-side request ledger: request and page
// counts, extraction throughput, admission-independent error count, a
// latency histogram and a trailing QPS ring. All paths are atomic; the
// ledger sits on the request hot path.
type SiteMetrics struct {
	requests  atomic.Int64
	pages     atomic.Int64
	pageFails atomic.Int64
	records   atomic.Int64
	errors    atomic.Int64 // site-level request errors (unknown site, ...)
	latency   latencyHist
	qps       rateRing
}

// observe records one completed extraction request.
func (m *SiteMetrics) observe(e *Extraction) {
	m.requests.Add(1)
	m.qps.Tick(time.Now(), 1)
	m.latency.Record(e.Elapsed)
	m.pages.Add(int64(len(e.Results)))
	for i := range e.Results {
		if e.Results[i].Err != nil {
			m.pageFails.Add(1)
		} else {
			m.records.Add(int64(len(e.Results[i].Texts)))
		}
	}
}

// MetricsSnapshot is a point-in-time view of one site's ledger.
type MetricsSnapshot struct {
	Requests  int64 `json:"requests"`
	Pages     int64 `json:"pages"`
	PageFails int64 `json:"page_failures"`
	Records   int64 `json:"records"`
	Errors    int64 `json:"request_errors"`
	// QPS is the trailing-10s request rate.
	QPS float64 `json:"qps"`
	// Latency quantiles are estimated from a power-of-two histogram, in
	// milliseconds.
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
}

// Snapshot reads the ledger.
func (m *SiteMetrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:     m.requests.Load(),
		Pages:        m.pages.Load(),
		PageFails:    m.pageFails.Load(),
		Records:      m.records.Load(),
		Errors:       m.errors.Load(),
		QPS:          m.qps.Rate(time.Now()),
		LatencyP50Ms: m.latency.Quantile(0.50) / 1000,
		LatencyP90Ms: m.latency.Quantile(0.90) / 1000,
		LatencyP99Ms: m.latency.Quantile(0.99) / 1000,
		LatencyMaxMs: float64(m.latency.max.Load()) / 1000,
	}
	if s.Requests > 0 {
		s.LatencyMeanMs = float64(m.latency.sum.Load()) / float64(s.Requests) / 1000
	}
	return s
}
