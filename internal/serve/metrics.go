package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the latency histogram's bucket count: bucket i holds
// requests with latency in [2^(i-1), 2^i) microseconds, bucket 0 holds
// sub-microsecond requests and the last bucket is open-ended (~2.3 min and
// up is all the same kind of broken).
const histBuckets = 38

// latencyHist is a lock-free power-of-two latency histogram. Recording is
// one atomic add; quantiles are estimated from the bucket boundaries
// (geometric midpoint), which is plenty for a /metrics endpoint — the error
// is bounded by the bucket width, ~±41% of the value, and the shape
// (p50 vs p99 separation) survives exactly.
type latencyHist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
	max     atomic.Int64 // microseconds
}

func bucketOf(d time.Duration) int {
	us := uint64(d.Microseconds())
	b := bits.Len64(us) // 0 for 0µs, 1 for 1µs, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one request latency.
func (h *latencyHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		old := h.max.Load()
		if us <= old || h.max.CompareAndSwap(old, us) {
			return
		}
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) in microseconds. The
// rank is the ceiling of q*total — the smallest k such that at least a q
// fraction of observations is <= the k-th — so p99 of 100 requests is the
// 99th-slowest, not the 98th: truncation would bias tail quantiles one
// bucket low exactly at small counts, where a histogram is already at its
// coarsest.
func (h *latencyHist) Quantile(q float64) float64 {
	var b [histBuckets]int64
	for i := range b {
		b[i] = h.buckets[i].Load()
	}
	return bucketQuantile(&b, h.count.Load(), q, float64(h.max.Load()))
}

// bucketQuantile is the quantile estimate over a plain bucket array —
// shared by the live per-site histogram above and the merged fleet
// accumulator below, so single-site and aggregated quantiles can never
// disagree on rank semantics.
func bucketQuantile(buckets *[histBuckets]int64, total int64, q, maxUS float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += buckets[i]
		if seen >= rank {
			if i == 0 {
				return 0.5
			}
			lo := float64(int64(1) << (i - 1))
			return lo * 1.5 // midpoint of [2^(i-1), 2^i)
		}
	}
	return maxUS
}

// rateSlots sizes the QPS ring; rateWindow is the trailing averaging
// window. Slots beyond the window absorb clock-skewed stragglers instead
// of corrupting the live window.
const (
	rateSlots  = 16
	rateWindow = 10 // seconds
)

// rateRing measures a trailing requests-per-second rate with one slot per
// wall-clock second. Ticks are two atomic ops; a tick racing a second
// boundary can miscount by a request or two, which monitoring tolerates.
type rateRing struct {
	sec [rateSlots]atomic.Int64
	n   [rateSlots]atomic.Int64
	// start is the first tick's wall-clock second: the ring cannot claim
	// coverage of seconds before it existed, so the denominator below is
	// bounded by the ring's own uptime.
	start atomic.Int64
	// last is the most recent tick's second; resume marks where coverage
	// restarts after the ring went dark for longer than the whole window
	// (at that point no in-window second predates the gap, so averaging
	// across the empty window would just dilute the resumed traffic).
	last   atomic.Int64
	resume atomic.Int64
}

// Tick records n events at time now.
func (r *rateRing) Tick(now time.Time, n int64) {
	sec := now.Unix()
	// Track the earliest tick second (ticks may arrive slightly out of
	// order around second boundaries); the fast path is one load.
	for {
		old := r.start.Load()
		if old != 0 && old <= sec {
			break
		}
		if r.start.CompareAndSwap(old, sec) {
			break
		}
	}
	// Track the latest tick second, and restart coverage when the ring
	// was dark for longer than the window. Races around the boundary can
	// misplace resume by a second; monitoring tolerates that.
	for {
		old := r.last.Load()
		if old >= sec {
			break
		}
		if r.last.CompareAndSwap(old, sec) {
			if old != 0 && sec-old > rateWindow {
				r.resume.Store(sec)
			}
			break
		}
	}
	i := int(sec % rateSlots)
	if old := r.sec[i].Load(); old != sec && r.sec[i].CompareAndSwap(old, sec) {
		r.n[i].Store(0)
	}
	r.n[i].Add(n)
}

// Rate returns the mean events/sec over the trailing window's complete
// seconds (the current, partial second is excluded so the rate doesn't dip
// at every second boundary). The denominator is the number of in-window
// seconds actually covered, capped at rateWindow — never the full window
// blindly: dividing by 10 when only 3 seconds of data exist under-reports
// early-uptime QPS by 70%. Coverage runs from the latest of window start,
// first tick (the ring cannot cover seconds before it existed) and the
// resume watermark (traffic restarting after a dark gap longer than the
// whole window — nothing in the window predates such a gap, so the gap's
// emptiness must not dilute the resumed rate). A lull *shorter* than the
// window, by contrast, leaves earlier in-window traffic standing, and its
// idle seconds count as the genuine zeros they are.
func (r *rateRing) Rate(now time.Time) float64 {
	nowSec := now.Unix()
	start := r.start.Load()
	if start == 0 || nowSec <= start {
		// No ticks yet, or no complete second of data: nothing to average.
		return 0
	}
	var total int64
	for i := 0; i < rateSlots; i++ {
		sec := r.sec[i].Load()
		if sec >= nowSec-rateWindow && sec < nowSec {
			total += r.n[i].Load()
		}
	}
	from := nowSec - rateWindow
	if start > from {
		from = start
	}
	if resume := r.resume.Load(); resume > from {
		from = resume
	}
	covered := nowSec - from
	if covered < 1 {
		covered = 1
	}
	if covered > rateWindow {
		covered = rateWindow
	}
	return float64(total) / float64(covered)
}

// SiteMetrics is one site's serving-side request ledger: request and page
// counts, extraction throughput, admission-independent error count, a
// latency histogram and a trailing QPS ring. All paths are atomic; the
// ledger sits on the request hot path.
type SiteMetrics struct {
	requests  atomic.Int64
	pages     atomic.Int64
	pageFails atomic.Int64
	records   atomic.Int64
	errors    atomic.Int64 // site-level request errors (unknown site, ...)
	latency   latencyHist
	qps       rateRing
}

// observe records one completed extraction request.
func (m *SiteMetrics) observe(e *Extraction) {
	m.requests.Add(1)
	m.qps.Tick(time.Now(), 1)
	m.latency.Record(e.Elapsed)
	m.pages.Add(int64(len(e.Results)))
	for i := range e.Results {
		if e.Results[i].Err != nil {
			m.pageFails.Add(1)
		} else {
			m.records.Add(int64(len(e.Results[i].Texts)))
		}
	}
}

// MetricsSnapshot is a point-in-time view of one site's ledger.
type MetricsSnapshot struct {
	Requests  int64 `json:"requests"`
	Pages     int64 `json:"pages"`
	PageFails int64 `json:"page_failures"`
	Records   int64 `json:"records"`
	Errors    int64 `json:"request_errors"`
	// QPS is the trailing-10s request rate.
	QPS float64 `json:"qps"`
	// Latency quantiles are estimated from a power-of-two histogram, in
	// milliseconds.
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
}

// metricsAccum merges per-site ledgers into one aggregate. Latency is
// merged at the bucket level — summing histograms and then taking
// quantiles of the combined population — because quantiles themselves do
// not compose: averaging per-site p99s answers "what is the p99 of an
// average site", not "what is the fleet's p99". QPS rings sum (each
// site's trailing rate is an independent share of the fleet's), counters
// add, max is max.
type metricsAccum struct {
	requests  int64
	pages     int64
	pageFails int64
	records   int64
	errors    int64
	buckets   [histBuckets]int64
	count     int64
	sum       int64 // microseconds
	max       int64 // microseconds
	qps       float64
}

// addSite folds one live site ledger into the accumulator. The reads are
// the same unsynchronized atomic loads Snapshot does; a request landing
// mid-fold skews one counter by one, which /metrics tolerates.
func (a *metricsAccum) addSite(m *SiteMetrics, now time.Time) {
	a.requests += m.requests.Load()
	a.pages += m.pages.Load()
	a.pageFails += m.pageFails.Load()
	a.records += m.records.Load()
	a.errors += m.errors.Load()
	for i := 0; i < histBuckets; i++ {
		a.buckets[i] += m.latency.buckets[i].Load()
	}
	a.count += m.latency.count.Load()
	a.sum += m.latency.sum.Load()
	if mx := m.latency.max.Load(); mx > a.max {
		a.max = mx
	}
	a.qps += m.qps.Rate(now)
}

// add folds another accumulator in — how per-shard aggregates combine
// into the fleet-wide one without touching the site ledgers twice.
func (a *metricsAccum) add(b *metricsAccum) {
	a.requests += b.requests
	a.pages += b.pages
	a.pageFails += b.pageFails
	a.records += b.records
	a.errors += b.errors
	for i := 0; i < histBuckets; i++ {
		a.buckets[i] += b.buckets[i]
	}
	a.count += b.count
	a.sum += b.sum
	if b.max > a.max {
		a.max = b.max
	}
	a.qps += b.qps
}

// snapshot renders the accumulated population in the same wire shape as
// a single site's snapshot.
func (a *metricsAccum) snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:     a.requests,
		Pages:        a.pages,
		PageFails:    a.pageFails,
		Records:      a.records,
		Errors:       a.errors,
		QPS:          a.qps,
		LatencyP50Ms: bucketQuantile(&a.buckets, a.count, 0.50, float64(a.max)) / 1000,
		LatencyP90Ms: bucketQuantile(&a.buckets, a.count, 0.90, float64(a.max)) / 1000,
		LatencyP99Ms: bucketQuantile(&a.buckets, a.count, 0.99, float64(a.max)) / 1000,
		LatencyMaxMs: float64(a.max) / 1000,
	}
	if a.count > 0 {
		s.LatencyMeanMs = float64(a.sum) / float64(a.count) / 1000
	}
	return s
}

// Snapshot reads the ledger.
func (m *SiteMetrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:     m.requests.Load(),
		Pages:        m.pages.Load(),
		PageFails:    m.pageFails.Load(),
		Records:      m.records.Load(),
		Errors:       m.errors.Load(),
		QPS:          m.qps.Rate(time.Now()),
		LatencyP50Ms: m.latency.Quantile(0.50) / 1000,
		LatencyP90Ms: m.latency.Quantile(0.90) / 1000,
		LatencyP99Ms: m.latency.Quantile(0.99) / 1000,
		LatencyMaxMs: float64(m.latency.max.Load()) / 1000,
	}
	if s.Requests > 0 {
		s.LatencyMeanMs = float64(m.latency.sum.Load()) / float64(s.Requests) / 1000
	}
	return s
}
