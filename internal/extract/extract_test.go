package extract_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"autowrap/internal/corpus"
	"autowrap/internal/dom"
	"autowrap/internal/extract"
	"autowrap/internal/lr"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// page renders one synthetic listing page with n records.
func page(id int, n int) string {
	var sb strings.Builder
	sb.WriteString(`<html><body><h1>Site header</h1><div class="list"><table>`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<tr><td class="v">rec-%d-%d</td><td>extra</td></tr>`, id, i)
	}
	sb.WriteString(`</table></div></body></html>`)
	return sb.String()
}

func pages(n int) []extract.Page {
	out := make([]extract.Page, n)
	for i := range out {
		out[i] = extract.Page{ID: fmt.Sprintf("p%03d", i), HTML: page(i, 2+i%4)}
	}
	return out
}

func compiled(t *testing.T) wrapper.Portable {
	t.Helper()
	p, err := xpinduct.CompileRule(`//td[@class='v']/text()`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunExtractsRecords(t *testing.T) {
	rt := extract.New(compiled(t), extract.Options{Workers: 4})
	in := pages(9)
	batch, err := rt.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(in) {
		t.Fatalf("got %d results for %d pages", len(batch.Results), len(in))
	}
	total := 0
	for i, res := range batch.Results {
		if res.Err != nil {
			t.Fatalf("page %d failed: %v", i, res.Err)
		}
		if res.ID != in[i].ID || res.Index != i {
			t.Fatalf("result %d misaligned: %+v", i, res)
		}
		want := 2 + i%4
		if len(res.Texts) != want {
			t.Fatalf("page %d extracted %v, want %d records", i, res.Texts, want)
		}
		for j, txt := range res.Texts {
			if txt != fmt.Sprintf("rec-%d-%d", i, j) {
				t.Fatalf("page %d record %d = %q", i, j, txt)
			}
		}
		total += len(res.Texts)
	}
	s := batch.Stats
	if s.Pages != 9 || s.Extracted != 9 || s.Failed != 0 || s.Unstarted != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Records != total {
		t.Fatalf("stats.Records = %d, want %d", s.Records, total)
	}
	if s.PagesPerSec() <= 0 || s.RecordsPerSec() <= 0 {
		t.Fatalf("throughput not measured: %s", s)
	}
}

// TestRunDeterministicAcrossWorkers is the serving-side determinism
// contract: extraction output is byte-identical whatever the worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	in := pages(25)
	var ref [][]string
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 0} {
		rt := extract.New(compiled(t), extract.Options{Workers: workers})
		batch, err := rt.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		texts := make([][]string, len(batch.Results))
		for i, res := range batch.Results {
			if res.Err != nil {
				t.Fatalf("workers=%d page %d: %v", workers, i, res.Err)
			}
			texts[i] = res.Texts
		}
		if ref == nil {
			ref = texts
			continue
		}
		if !reflect.DeepEqual(ref, texts) {
			t.Fatalf("workers=%d produced different output", workers)
		}
	}
}

func TestRunIsolatesPageErrors(t *testing.T) {
	rt := extract.New(compiled(t), extract.Options{Workers: 3})
	in := pages(5)
	in[2] = extract.Page{ID: "empty"} // neither Root nor HTML
	batch, err := rt.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Results[2].Err == nil {
		t.Fatal("empty page should fail")
	}
	for i, res := range batch.Results {
		if i != 2 && res.Err != nil {
			t.Fatalf("page %d failed: %v", i, res.Err)
		}
	}
	if batch.Stats.Failed != 1 || batch.Stats.Extracted != 4 {
		t.Fatalf("stats = %+v", batch.Stats)
	}
	if got := batch.Failed(); len(got) != 1 || got[0].ID != "empty" {
		t.Fatalf("Failed() = %+v", got)
	}
}

// panicky panics on pages whose serialized form contains a marker.
type panicky struct{}

func (panicky) Lang() string { return "panic" }
func (panicky) Rule() string { return "panic()" }
func (panicky) ApplyPage(root *dom.Node) []*dom.Node {
	if strings.Contains(dom.Serialize(root), "boom") {
		panic("wrapper exploded")
	}
	return corpus.ExtractableTexts(root)
}

func TestRunIsolatesPanics(t *testing.T) {
	rt := extract.New(panicky{}, extract.Options{Workers: 2})
	in := pages(4)
	in[1].HTML = `<html><body><p>boom</p></body></html>`
	batch, err := rt.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Results[1].Err == nil || !strings.Contains(batch.Results[1].Err.Error(), "panicked") {
		t.Fatalf("panic not isolated: %v", batch.Results[1].Err)
	}
	for i, res := range batch.Results {
		if i != 1 && res.Err != nil {
			t.Fatalf("page %d failed: %v", i, res.Err)
		}
	}
}

// slowWrapper delays each page so cancellation can land mid-run.
type slowWrapper struct{ d time.Duration }

func (s slowWrapper) Lang() string { return "slow" }
func (s slowWrapper) Rule() string { return "slow" }
func (s slowWrapper) ApplyPage(root *dom.Node) []*dom.Node {
	time.Sleep(s.d)
	return corpus.ExtractableTexts(root)
}

func TestRunCancellation(t *testing.T) {
	rt := extract.New(slowWrapper{d: 20 * time.Millisecond}, extract.Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	batch, err := rt.Run(ctx, pages(50))
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if batch.Stats.Unstarted == 0 {
		t.Fatalf("expected unstarted pages, stats = %+v", batch.Stats)
	}
	for _, res := range batch.Results {
		if res.Err != nil && !strings.Contains(res.Err.Error(), "not started") {
			t.Fatalf("unexpected page error: %v", res.Err)
		}
	}
}

func TestStreamEmitsInInputOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		rt := extract.New(compiled(t), extract.Options{Workers: workers})
		in := make(chan extract.Page)
		const n = 40
		go func() {
			defer close(in)
			for _, pg := range pages(n) {
				in <- pg
			}
		}()
		st := rt.Stream(context.Background(), in)
		var got []int
		records := 0
		for res := range st.Results() {
			if res.Err != nil {
				t.Fatalf("workers=%d page %s: %v", workers, res.ID, res.Err)
			}
			got = append(got, res.Index)
			records += len(res.Texts)
		}
		if len(got) != n {
			t.Fatalf("workers=%d emitted %d of %d results", workers, len(got), n)
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("workers=%d out of order at %d: %v", workers, i, got[:i+1])
			}
		}
		s := st.Stats()
		if s.Pages != n || s.Records != records || s.Extracted != n {
			t.Fatalf("workers=%d stream stats = %+v (records %d)", workers, s, records)
		}
	}
}

func TestStreamCancellation(t *testing.T) {
	rt := extract.New(slowWrapper{d: 10 * time.Millisecond}, extract.Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan extract.Page)
	go func() {
		defer close(in)
		for _, pg := range pages(200) {
			select {
			case in <- pg:
			case <-ctx.Done():
				return
			}
		}
	}()
	st := rt.Stream(ctx, in)
	seen := 0
	for res := range st.Results() {
		seen++
		if res.Index != seen-1 {
			t.Fatalf("hole in emitted prefix at %d: %+v", seen-1, res)
		}
		if seen == 5 {
			cancel()
		}
	}
	if seen >= 200 {
		t.Fatal("cancellation did not stop the stream")
	}
	// Stats must become available (no deadlock) and cover the emitted prefix.
	s := st.Stats()
	if s.Pages != seen {
		t.Fatalf("stats.Pages = %d, emitted %d", s.Pages, seen)
	}
}

// gatedWrapper blocks on pages containing "gate" until released, and
// counts pages processed — for observing the stream's in-flight window.
type gatedWrapper struct {
	release   chan struct{}
	processed *atomic.Int64
}

func (g gatedWrapper) Lang() string { return "gated" }
func (g gatedWrapper) Rule() string { return "gated" }
func (g gatedWrapper) ApplyPage(root *dom.Node) []*dom.Node {
	if strings.Contains(dom.Serialize(root), "gate") {
		<-g.release
	}
	g.processed.Add(1)
	return corpus.ExtractableTexts(root)
}

// TestStreamWindowIsBounded pins the backpressure contract: with a slow
// head-of-line page, the stream consumes at most Buffer pages from the
// input — later completions must not pile up in the reorder buffer.
func TestStreamWindowIsBounded(t *testing.T) {
	const buffer = 4
	g := gatedWrapper{release: make(chan struct{}), processed: &atomic.Int64{}}
	rt := extract.New(g, extract.Options{Workers: 2, Buffer: buffer})
	const n = 100
	in := make(chan extract.Page)
	fed := make(chan int, 1)
	go func() {
		defer close(in)
		sent := 0
		for i := 0; i < n; i++ {
			html := page(i, 2)
			if i == 0 {
				html = `<html><body><p>gate page</p></body></html>`
			}
			in <- extract.Page{ID: fmt.Sprintf("p%03d", i), HTML: html}
			sent++
		}
		fed <- sent
	}()
	st := rt.Stream(context.Background(), in)

	// With page 0 blocked, the stream may hold at most buffer pages
	// in flight; give it ample time to overrun if it were unbounded.
	time.Sleep(100 * time.Millisecond)
	if got := g.processed.Load(); got > buffer {
		t.Fatalf("stream processed %d pages behind a blocked head-of-line, window is %d", got, buffer)
	}
	select {
	case sent := <-fed:
		t.Fatalf("input fully consumed (%d pages) despite blocked head-of-line", sent)
	default:
	}

	close(g.release)
	var got []int
	for res := range st.Results() {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		got = append(got, res.Index)
	}
	if len(got) != n {
		t.Fatalf("emitted %d of %d results after release", len(got), n)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestStreamPreParsedRoots(t *testing.T) {
	rt := extract.New(compiled(t), extract.Options{Workers: 2})
	c := corpus.ParseHTML([]string{page(0, 3), page(1, 2)})
	in := make(chan extract.Page, 2)
	for i, p := range c.Pages {
		in <- extract.Page{ID: fmt.Sprintf("root%d", i), Root: p.Root}
	}
	close(in)
	st := rt.Stream(context.Background(), in)
	var texts []string
	for res := range st.Results() {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		texts = append(texts, res.Texts...)
	}
	want := []string{"rec-0-0", "rec-0-1", "rec-0-2", "rec-1-0", "rec-1-1"}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts = %v, want %v", texts, want)
	}
}

func TestLRCompiledServesUnseenPages(t *testing.T) {
	// Learn LR delimiters on two pages, then serve a third, unseen page
	// through the runtime — the wrapper travels as delimiters only.
	train := corpus.ParseHTML([]string{page(0, 2), page(1, 3)})
	labels := train.MatchingText(func(s string) bool { return strings.HasPrefix(s, "rec-") })
	w, err := lr.New(train, 0).Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lr.Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	rt := extract.New(p, extract.Options{})
	batch, err := rt.Run(context.Background(), []extract.Page{{ID: "fresh", HTML: page(7, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"rec-7-0", "rec-7-1", "rec-7-2", "rec-7-3"}
	if !reflect.DeepEqual(batch.Results[0].Texts, want) {
		t.Fatalf("LR served %v, want %v", batch.Results[0].Texts, want)
	}
}

// TestHealthCountersAndOnResult checks the serving-side health tap: the
// lifetime counters classify pages into extracted/empty/failed, and the
// OnResult hook sees every completed page exactly once.
func TestHealthCountersAndOnResult(t *testing.T) {
	rt := extract.New(compiled(t), extract.Options{Workers: 4})
	var hooked atomic.Int64
	rtHooked := extract.New(compiled(t), extract.Options{
		Workers:  4,
		OnResult: func(res *extract.Result) { hooked.Add(1) },
	})
	in := pages(8)
	in = append(in,
		extract.Page{ID: "empty", HTML: "<html><body><p>no records here</p></body></html>"},
		extract.Page{ID: "bad"}, // neither Root nor HTML: per-page error
	)
	for _, r := range []*extract.Runtime{rt, rtHooked} {
		if _, err := r.Run(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	if got := hooked.Load(); got != int64(len(in)) {
		t.Fatalf("OnResult fired %d times for %d pages", got, len(in))
	}
	h := rt.Health()
	if h.Pages != int64(len(in)) || h.Failed != 1 || h.Empty != 1 {
		t.Fatalf("health = %+v", h)
	}
	wantRecords := int64(0)
	for i := 0; i < 8; i++ {
		wantRecords += int64(2 + i%4)
	}
	if h.Records != wantRecords {
		t.Fatalf("health records = %d, want %d", h.Records, wantRecords)
	}
	if h.EmptyFrac() <= 0 || h.FailFrac() <= 0 || h.MeanRecords() <= 0 {
		t.Fatalf("health ratios = %.3f/%.3f/%.3f", h.EmptyFrac(), h.FailFrac(), h.MeanRecords())
	}

	// The hook also fires on the streaming path.
	hooked.Store(0)
	ch := make(chan extract.Page, len(in))
	for _, pg := range in {
		ch <- pg
	}
	close(ch)
	st := rtHooked.Stream(context.Background(), ch)
	for range st.Results() {
	}
	if got := hooked.Load(); got != int64(len(in)) {
		t.Fatalf("stream OnResult fired %d times for %d pages", got, len(in))
	}
}

// TestExtractOneMatchesRun pins the single-page serving path: ExtractOne
// returns the same records Run finds for the page, with the same health
// accounting and OnResult tap, minus the batch machinery.
func TestExtractOneMatchesRun(t *testing.T) {
	var taps atomic.Int64
	rt := extract.New(compiled(t), extract.Options{
		OnResult: func(*extract.Result) { taps.Add(1) },
	})
	pg := extract.Page{ID: "one", HTML: page(7, 3)}

	res := rt.ExtractOne(pg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	batch, err := rt.Run(context.Background(), []extract.Page{pg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Texts, batch.Results[0].Texts) {
		t.Fatalf("ExtractOne %v != Run %v", res.Texts, batch.Results[0].Texts)
	}
	if res.ID != "one" || res.Index != 0 || res.Elapsed <= 0 {
		t.Fatalf("result metadata = %+v", res)
	}
	if got := rt.Health(); got.Pages != 2 || got.Records != 6 {
		t.Fatalf("health after ExtractOne + Run = %+v, want 2 pages / 6 records", got)
	}
	if taps.Load() != 2 {
		t.Fatalf("OnResult fired %d times, want 2", taps.Load())
	}

	// Failures are isolated the same way as in Run.
	bad := rt.ExtractOne(extract.Page{ID: "empty"})
	if bad.Err == nil {
		t.Fatal("page with neither Root nor HTML succeeded")
	}
	if got := rt.Health(); got.Failed != 1 {
		t.Fatalf("health after failed page = %+v", got)
	}
}
