// Package extract is the serving half of the learn/serve split: a
// high-throughput extraction runtime that applies one compiled wrapper
// (wrapper.Portable) to a stream of pages. It mirrors the engine's
// deployment contract on the other side of the store: bounded workers on
// the internal/par pool, per-page error and panic isolation, context
// cancellation, throughput stats (pages/sec, records/sec), and output that
// is byte-identical whatever the worker count — Run writes index-aligned
// results, Stream reorders completions back into input order.
//
// Every completed page additionally feeds the runtime's lifetime Health
// counters and the optional Options.OnResult tap; both are allocation-light
// so they can stay on the serving fast path. internal/drift builds its
// sliding-window template-drift detection on top of these signals.
package extract

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autowrap/internal/dom"
	"autowrap/internal/htmlparse"
	"autowrap/internal/par"
	"autowrap/internal/wrapper"
)

// Page is one unit of serving work. Root takes precedence when set;
// otherwise HTML is parsed on a worker (the tolerant parser, so parsing
// itself never fails — only an empty page is an error).
type Page struct {
	// ID identifies the page in results (a URL, a file path).
	ID string
	// HTML is the raw page source.
	HTML string
	// Root is the pre-parsed page, for callers that already hold a tree.
	Root *dom.Node
}

// Result is one page's extraction outcome.
type Result struct {
	// ID and Index echo the input page and its position in the stream.
	ID    string
	Index int
	// Texts are the extracted records' trimmed contents in document order.
	Texts []string
	// Nodes are the matched text nodes (nil when the page failed). On the
	// ExtractOne fast path they are also nil whenever the runtime parsed
	// HTML itself: that parse tree comes from an internal pool and is
	// recycled before ExtractOne returns, so only Texts — which never
	// alias the pooled tree — survive. Callers that need the matched nodes
	// must pass a pre-parsed Page.Root (or use Run/Stream, which always
	// build caller-owned trees).
	Nodes []*dom.Node
	// Err is the page's failure, including recovered panics and — for
	// pages never started — the run's cancellation cause.
	Err error
	// Elapsed is the page's wall-clock extraction latency.
	Elapsed time.Duration
}

// Stats aggregates a run.
type Stats struct {
	// Pages = Extracted + Failed + Unstarted.
	Pages, Extracted, Failed, Unstarted int
	// Records is the total number of extracted records.
	Records int
	// Workers is the effective pool size used.
	Workers int
	// Wall is the run's wall-clock time; Work the sum of per-page
	// latencies (serial-equivalent time). Work/Wall is the pool speedup.
	Wall, Work time.Duration
	// MaxPage is the slowest single page's latency.
	MaxPage time.Duration
}

// PagesPerSec is the throughput over started pages.
func (s Stats) PagesPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Pages-s.Unstarted) / s.Wall.Seconds()
}

// RecordsPerSec is the record throughput.
func (s Stats) RecordsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Records) / s.Wall.Seconds()
}

// Speedup is the measured pool speedup: serial-equivalent work over wall.
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Work) / float64(s.Wall)
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"pages=%d extracted=%d failed=%d unstarted=%d records=%d workers=%d wall=%v pages/sec=%.1f records/sec=%.1f speedup=%.2fx",
		s.Pages, s.Extracted, s.Failed, s.Unstarted, s.Records, s.Workers,
		s.Wall.Round(time.Millisecond), s.PagesPerSec(), s.RecordsPerSec(), s.Speedup())
}

// Batch is the outcome of one Run: one Result per input page,
// index-aligned, plus aggregate stats.
type Batch struct {
	Results []Result
	Stats   Stats
}

// Failed returns the results with a non-nil Err.
func (b *Batch) Failed() []Result {
	var out []Result
	for _, r := range b.Results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Options configures a Runtime.
type Options struct {
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Buffer bounds Stream's in-flight window — pages that have been
	// consumed from the input but not yet emitted as results, whether
	// queued, being extracted, or completed and waiting for an earlier
	// page (in-order delivery can hold at most Buffer completed results
	// behind a slow head-of-line page). <= 0 selects 2 x workers; values
	// below Workers throttle the pool to Buffer concurrent pages.
	Buffer int
	// OnResult, when set, is called once per completed page — successes
	// and failures alike — on the worker goroutine that extracted it,
	// before the result is delivered. It is the serving-side health tap:
	// a drift monitor hooks here to observe empty extractions, failures
	// and record counts without touching the result path. The callback
	// runs concurrently from every worker and sits on the serving fast
	// path, so it must be safe for concurrent use and allocation-light.
	OnResult func(*Result)
}

// Runtime applies one compiled wrapper to pages. It is safe for concurrent
// use; build one per served (site, wrapper version) pair. Apart from its
// lifetime Health counters it is stateless.
type Runtime struct {
	p      wrapper.Portable
	opt    Options
	health Health
}

// New builds an extraction runtime serving the given compiled wrapper.
func New(p wrapper.Portable, opt Options) *Runtime {
	return &Runtime{p: p, opt: opt}
}

// Wrapper returns the compiled wrapper being served.
func (r *Runtime) Wrapper() wrapper.Portable { return r.p }

// Health is the runtime's lifetime health ledger: monotonic counters over
// every page the runtime has served, across Run and Stream calls alike.
// Updates are a handful of atomic adds on the worker that extracted the
// page, so reading them never perturbs the serving fast path. Fields are
// read with HealthCounts; the struct itself is internal to Runtime.
type Health struct {
	pages   atomic.Int64
	failed  atomic.Int64
	empty   atomic.Int64
	records atomic.Int64
}

// HealthCounts is a point-in-time snapshot of a runtime's lifetime health.
// Counters are read individually (not under a lock), so a snapshot taken
// while pages are in flight may be off by the pages completing during the
// read — fine for monitoring, which only looks at ratios and trends.
type HealthCounts struct {
	// Pages counts every completed page; Failed the pages whose extraction
	// errored (parse-less input, panics); Empty the pages that succeeded
	// but yielded zero records — the classic silent-drift signal.
	Pages  int64 `json:"pages"`
	Failed int64 `json:"failed"`
	Empty  int64 `json:"empty"`
	// Records totals the extracted records over all successful pages.
	Records int64 `json:"records"`
}

// EmptyFrac is the fraction of completed pages that succeeded with zero
// records (0 when nothing was served yet).
func (h HealthCounts) EmptyFrac() float64 {
	if h.Pages == 0 {
		return 0
	}
	return float64(h.Empty) / float64(h.Pages)
}

// FailFrac is the fraction of completed pages that errored.
func (h HealthCounts) FailFrac() float64 {
	if h.Pages == 0 {
		return 0
	}
	return float64(h.Failed) / float64(h.Pages)
}

// MeanRecords is the mean record count over non-failed pages.
func (h HealthCounts) MeanRecords() float64 {
	ok := h.Pages - h.Failed
	if ok <= 0 {
		return 0
	}
	return float64(h.Records) / float64(ok)
}

// Health snapshots the runtime's lifetime health counters.
func (r *Runtime) Health() HealthCounts {
	return HealthCounts{
		Pages:   r.health.pages.Load(),
		Failed:  r.health.failed.Load(),
		Empty:   r.health.empty.Load(),
		Records: r.health.records.Load(),
	}
}

// observe updates the health ledger and fires the OnResult tap for one
// completed page. Called on the worker goroutine, for Run and Stream both.
func (r *Runtime) observe(res *Result) {
	r.health.pages.Add(1)
	switch {
	case res.Err != nil:
		r.health.failed.Add(1)
	case len(res.Texts) == 0:
		r.health.empty.Add(1)
	default:
		r.health.records.Add(int64(len(res.Texts)))
	}
	if r.opt.OnResult != nil {
		r.opt.OnResult(res)
	}
}

// ExtractOne applies the wrapper to a single page synchronously on the
// calling goroutine — the low-latency serving path for single-page
// requests. It keeps Run's per-page contract (panic isolation, health
// accounting, the OnResult tap) but skips pool dispatch and batch
// allocation entirely, so an HTTP handler can call it per request without
// paying the batch machinery for one page.
//
// When the page arrives as raw HTML (Page.Root == nil), the parse tree is
// taken from a pool and recycled before returning: the steady-state fast
// path allocates only the Texts it hands back (see Result.Nodes for the
// aliasing contract). TestExtractOneAllocBudget pins that budget.
func (r *Runtime) ExtractOne(pg Page) Result {
	res := r.one(pg, 0, true)
	r.observe(&res)
	return res
}

// Run extracts every page of a batch on the worker pool. The returned
// Batch always has one entry per page (index-aligned, so output is
// independent of the worker count); per-page failures land in that page's
// Result.Err and never abort the run. The error return is reserved for
// cancellation: when ctx is done before every page was processed, Run
// stops claiming new pages, marks the unstarted ones with ctx's error, and
// returns that error alongside the partial results.
func (r *Runtime) Run(ctx context.Context, pages []Page) (*Batch, error) {
	batch := &Batch{Results: make([]Result, len(pages))}
	batch.Stats.Pages = len(pages)
	batch.Stats.Workers = par.Workers(r.opt.Workers, len(pages))

	started := make([]bool, len(pages))
	start := time.Now()
	ctxErr := par.ForContext(ctx, len(pages), r.opt.Workers, func(i int) {
		started[i] = true
		batch.Results[i] = r.one(pages[i], i, false)
		r.observe(&batch.Results[i])
	})
	batch.Stats.Wall = time.Since(start)

	for i := range batch.Results {
		res := &batch.Results[i]
		if !started[i] {
			res.ID, res.Index = pages[i].ID, i
			res.Err = fmt.Errorf("extract: page %q not started: %w", pages[i].ID, ctxErr)
			batch.Stats.Unstarted++
			continue
		}
		batch.Stats.tally(res)
	}
	return batch, ctxErr
}

func (s *Stats) tally(res *Result) {
	s.Work += res.Elapsed
	if res.Elapsed > s.MaxPage {
		s.MaxPage = res.Elapsed
	}
	if res.Err != nil {
		s.Failed++
		return
	}
	s.Extracted++
	s.Records += len(res.Texts)
}

// one extracts a single page with panic isolation. With pooled set, a page
// arriving as raw HTML is parsed into a recycled workspace tree that is
// released before returning — Result.Nodes stays nil on that path, since
// the nodes would dangle into the pool (Texts are always safe: text Data
// never aliases pooled storage).
func (r *Runtime) one(pg Page, idx int, pooled bool) (out Result) {
	out.ID, out.Index = pg.ID, idx
	start := time.Now()
	defer func() {
		out.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			out.Texts, out.Nodes = nil, nil
			out.Err = fmt.Errorf("extract: page %q panicked: %v\n%s", pg.ID, p, debug.Stack())
		}
	}()
	root := pg.Root
	fromPool := false
	if root == nil {
		if pg.HTML == "" {
			out.Err = fmt.Errorf("extract: page %q: neither Root nor HTML set", pg.ID)
			return
		}
		if pooled {
			t := htmlparse.AcquireTree()
			defer t.Release()
			root = t.Parse(pg.HTML)
			fromPool = true
		} else {
			root = htmlparse.Parse(pg.HTML)
		}
	}
	nodes := r.p.ApplyPage(root)
	if !fromPool {
		out.Nodes = nodes
	}
	out.Texts = make([]string, len(nodes))
	for i, n := range nodes {
		out.Texts[i] = strings.TrimSpace(n.Data)
	}
	return
}

// Stream is a running streaming extraction: results arrive on Results in
// input order. Read Stats only after Results is closed.
type Stream struct {
	results chan Result
	done    chan struct{}
	stats   Stats
}

// Results delivers one Result per consumed page, in input order, and
// closes when the input channel closes (or the context is cancelled; the
// emitted results are then a prefix of the input order). The consumer must
// drain Results or cancel the context — the window is bounded, so an
// abandoned stream otherwise blocks its workers.
func (st *Stream) Results() <-chan Result { return st.results }

// Stats blocks until the stream has finished, then reports aggregates.
func (st *Stream) Stats() Stats {
	<-st.done
	return st.stats
}

// Stream extracts pages as they arrive on in, with bounded workers and a
// bounded in-flight window, emitting results in input order regardless of
// which worker finishes first — the streaming path keeps the same
// determinism contract as Run. Cancelling ctx stops the stream at the next
// page boundary; the results already emitted form a prefix of the input.
func (r *Runtime) Stream(ctx context.Context, in <-chan Page) *Stream {
	workers := r.opt.Workers
	if workers <= 0 {
		workers = par.Workers(0, 1<<30)
	}
	buffer := r.opt.Buffer
	if buffer <= 0 {
		buffer = 2 * workers
	}

	type job struct {
		idx  int
		page Page
	}
	st := &Stream{results: make(chan Result), done: make(chan struct{})}
	st.stats.Workers = workers
	jobs := make(chan job, buffer)
	outs := make(chan Result, buffer)

	// credits caps the in-flight window: the dispatcher takes one per page
	// consumed, the collector returns one per result emitted. This is what
	// keeps the reorder buffer bounded — a slow head-of-line page stalls
	// dispatch after Buffer pages instead of letting every later completion
	// pile up in memory. It also guarantees at most Buffer results are ever
	// outstanding, so worker sends into outs (capacity Buffer) never block.
	credits := make(chan struct{}, buffer)
	for i := 0; i < buffer; i++ {
		credits <- struct{}{}
	}

	// Dispatcher: sequence the input.
	go func() {
		defer close(jobs)
		idx := 0
		for {
			select {
			case <-ctx.Done():
				return
			case pg, ok := <-in:
				if !ok {
					return
				}
				select {
				case <-credits:
				case <-ctx.Done():
					return
				}
				select {
				case jobs <- job{idx: idx, page: pg}:
					idx++
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// Workers: extract, push completions.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res := r.one(j.page, j.idx, false)
				r.observe(&res)
				select {
				case outs <- res:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outs)
	}()

	// Collector: reorder completions into input order and emit.
	go func() {
		defer close(st.done)
		defer close(st.results)
		start := time.Now()
		defer func() { st.stats.Wall = time.Since(start) }()
		pending := make(map[int]Result)
		next := 0
		for res := range outs {
			pending[res.Index] = res
			for {
				head, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case st.results <- head:
				case <-ctx.Done():
					// Consumer is gone; drain workers and stop.
					for range outs {
					}
					return
				}
				st.stats.Pages++
				st.stats.tally(&head)
				next++
				credits <- struct{}{} // never blocks: ≤ Buffer outstanding
			}
		}
	}()
	return st
}
