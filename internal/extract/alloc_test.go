package extract_test

import (
	"strings"
	"testing"

	"autowrap/internal/dom"
	"autowrap/internal/extract"
	"autowrap/internal/htmlparse"
	"autowrap/internal/xpinduct"
)

func parsePage(t *testing.T, html string) *dom.Node {
	t.Helper()
	return htmlparse.Parse(html)
}

// extractOneAllocBudget is the steady-state allocation ceiling of the
// single-page fast path on allocBudgetPage. The necessary allocations are
// the ones that leave the call — the Texts slice and its strings where
// collapsing changed bytes — plus the xpath result slices; everything else
// (parse tree, tokenizer scratch, eval working sets) is pooled. Raising
// this number is a regression: docs/PERFORMANCE.md explains the budget's
// composition before touching it.
const extractOneAllocBudget = 8

// allocBudgetPage is a fixed single-line page (pre-collapsed text, so text
// data aliases the source instead of being re-allocated): the budget is
// exactly the fast path's own overhead, independent of page formatting.
var allocBudgetPage = "<html><body><table>" +
	strings.Repeat("<tr><td class='k'>label</td><td class='v'>value text</td></tr>", 8) +
	"</table></body></html>"

// TestExtractOneAllocBudget is the CI allocation gate for the serving fast
// path: ExtractOne on raw HTML must stay within its per-call budget after
// the pools are warm. It fails on any steady-state heap growth regression
// in the parse/eval/extract pipeline.
func TestExtractOneAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector bypasses sync.Pool; budgets describe production builds")
	}
	p, err := xpinduct.CompileRule(`//td[@class='v']/text()`)
	if err != nil {
		t.Fatal(err)
	}
	rt := extract.New(p, extract.Options{})
	pg := extract.Page{ID: "budget", HTML: allocBudgetPage}

	// Warm the pools and sanity-check the extraction itself.
	res := rt.ExtractOne(pg)
	if res.Err != nil || len(res.Texts) != 8 || res.Texts[0] != "value text" {
		t.Fatalf("fixture extraction = %+v", res)
	}
	if res.Nodes != nil {
		t.Fatalf("pooled fast path leaked %d tree nodes", len(res.Nodes))
	}

	avg := testing.AllocsPerRun(200, func() {
		out := rt.ExtractOne(pg)
		if len(out.Texts) != 8 {
			t.Fatalf("extraction changed under measurement: %d texts", len(out.Texts))
		}
	})
	if avg > extractOneAllocBudget {
		t.Fatalf("ExtractOne allocates %.1f times per call, budget is %d", avg, extractOneAllocBudget)
	}
}

// TestExtractOnePreParsedKeepsNodes pins the other half of the Nodes
// contract: a caller-supplied tree is never pooled, so the matched nodes
// stay available.
func TestExtractOnePreParsedKeepsNodes(t *testing.T) {
	p, err := xpinduct.CompileRule(`//td[@class='v']/text()`)
	if err != nil {
		t.Fatal(err)
	}
	rt := extract.New(p, extract.Options{})
	res := rt.ExtractOne(extract.Page{ID: "tree", Root: parsePage(t, allocBudgetPage)})
	if res.Err != nil || len(res.Nodes) != 8 {
		t.Fatalf("pre-parsed extraction = %+v", res)
	}
}
