//go:build !race

package extract_test

// raceEnabled gates allocation-budget assertions off under the race
// detector; see race_on_test.go.
const raceEnabled = false
