//go:build race

package extract_test

// raceEnabled gates allocation-budget assertions off under the race
// detector, which deliberately bypasses sync.Pool caches and instruments
// allocations — the budgets only describe production builds.
const raceEnabled = true
