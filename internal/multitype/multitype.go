// Package multitype implements the multi-type extraction of the paper's
// Appendix A: jointly learning wrappers for several types (e.g. business
// name and zipcode) and assembling records from the interleaved extractions.
//
// Enumeration reuses the single-type machinery per type. Ranking extends
// Sec. 6: P(L|X) multiplies the per-type annotation likelihoods, and P(X)
// segments the pages using one type as the record boundary while replacing
// each typed node with a type-tagged token, which enforces the appendix's
// constraint that "nodes corresponding to each type align with each other".
// A candidate whose extractions cannot be assembled into records (a name
// with zero or several zipcodes before the next name) produces empty
// results on that page, mirroring the appendix's inductor.
package multitype

import (
	"fmt"
	"math"
	"sort"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/enum"
	"autowrap/internal/rank"
	"autowrap/internal/stats"
	"autowrap/internal/textutil"
	"autowrap/internal/wrapper"
)

// Type is one extraction target.
type Type struct {
	Name string
	// Inductor learns wrappers for this type (typically xpinduct over the
	// shared corpus).
	Inductor wrapper.Inductor
	// Labels are this type's noisy annotations.
	Labels *bitset.Set
	// Ann is this type's annotation model.
	Ann rank.AnnotationModel
}

// Record is one assembled tuple: the text-node ordinal per type, indexed
// like the Types slice. -1 marks a missing field (never produced by the
// strict assembler, reserved for extensions).
type Record []int

// Config controls joint learning.
type Config struct {
	Enumerator  string
	EnumOptions enum.Options
	// TopPerType bounds the per-type candidates entering the joint
	// ranking, keeping the cross product tractable. Candidates are
	// pre-ranked by their single-type NTW score. Default 8.
	TopPerType int
	// Pub is the learned publication model (shared across types).
	Pub *rank.PublicationModel
	// AssemblyFailurePenalty is added per page whose extraction cannot be
	// assembled. Default 2·ln(KDE floor) per failed page.
	AssemblyFailurePenalty float64
}

// Candidate is one joint wrapper assignment.
type Candidate struct {
	Wrappers []wrapper.Wrapper // parallel to Types
	Records  []Record
	// PagesFailed counts pages where assembly failed (they contribute no
	// records).
	PagesFailed int
	Score       float64
}

// Result of a joint run.
type Result struct {
	Best       *Candidate
	Candidates []Candidate
	EnumCalls  int64
}

// Learn runs the joint noise-tolerant induction.
func Learn(c *corpus.Corpus, types []Type, cfg Config) (*Result, error) {
	if len(types) < 2 {
		return nil, fmt.Errorf("multitype: need at least two types, got %d", len(types))
	}
	if cfg.Pub == nil {
		return nil, fmt.Errorf("multitype: Config.Pub is required")
	}
	if cfg.TopPerType <= 0 {
		cfg.TopPerType = 8
	}
	if cfg.AssemblyFailurePenalty == 0 {
		cfg.AssemblyFailurePenalty = 2 * math.Log(stats.DefaultFloor)
	}
	algo := cfg.Enumerator
	if algo == "" {
		algo = enum.AlgoTopDown
	}

	res := &Result{}
	perType := make([][]wrapper.Wrapper, len(types))
	for ti, tp := range types {
		if tp.Labels.Empty() {
			return res, nil // cannot learn this type at all
		}
		enumRes, err := enum.Run(algo, tp.Inductor, tp.Labels, cfg.EnumOptions)
		if err != nil {
			return nil, fmt.Errorf("multitype: enumerating %s: %w", tp.Name, err)
		}
		res.EnumCalls += enumRes.Calls
		// Pre-rank this type's wrapper space by its own annotation score
		// plus the (untyped) publication prior, then keep the top slice.
		scorer := rank.Scorer{Ann: tp.Ann, Pub: cfg.Pub}
		type scored struct {
			w wrapper.Wrapper
			s float64
		}
		var ranked []scored
		for _, it := range enumRes.Items {
			sc := scorer.Score(c, tp.Labels, it.Wrapper.Extract(), rank.NTW)
			ranked = append(ranked, scored{it.Wrapper, sc.Total})
		}
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })
		n := cfg.TopPerType
		if n > len(ranked) {
			n = len(ranked)
		}
		for _, r := range ranked[:n] {
			perType[ti] = append(perType[ti], r.w)
		}
	}

	// Joint ranking over the cross product of the per-type shortlists.
	var walk func(ti int, pick []wrapper.Wrapper)
	walk = func(ti int, pick []wrapper.Wrapper) {
		if ti == len(types) {
			cand := evaluate(c, types, pick, cfg)
			res.Candidates = append(res.Candidates, cand)
			return
		}
		for _, w := range perType[ti] {
			walk(ti+1, append(pick, w))
		}
	}
	walk(0, make([]wrapper.Wrapper, 0, len(types)))

	sort.SliceStable(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].Score > res.Candidates[j].Score
	})
	if len(res.Candidates) > 0 {
		res.Best = &res.Candidates[0]
	}
	return res, nil
}

// evaluate scores one joint assignment and assembles its records.
func evaluate(c *corpus.Corpus, types []Type, pick []wrapper.Wrapper, cfg Config) Candidate {
	cand := Candidate{Wrappers: append([]wrapper.Wrapper(nil), pick...)}
	score := 0.0
	for ti, tp := range types {
		score += tp.Ann.LogLikelihood(tp.Labels, pick[ti].Extract())
	}
	// Typed publication prior: segment by the first type's boundaries over
	// token sequences where each extracted node is replaced by a
	// type-tagged token.
	segs := typedSegments(c, types, pick, cfg.Pub.Seg.MaxSegmentTokens)
	if len(segs) < 2 {
		score += rank.NoListLogPrior
	} else {
		feats := typedFeatures(segs, cfg.Pub.Seg.MaxPairs, cfg.Pub.Seg.EditCap)
		score += cfg.Pub.Schema.LogProb(feats.schema) + cfg.Pub.Align.LogProb(feats.align)
	}
	cand.Records, cand.PagesFailed = Assemble(c, types, pick)
	score += float64(cand.PagesFailed) * cfg.AssemblyFailurePenalty
	cand.Score = score
	return cand
}

// typedToken returns the token id standing for a node of type ti; negative
// ids cannot collide with interned tag ids.
func typedToken(ti int) int32 { return int32(-(ti + 1)) }

// typedSegments builds record segments bounded by the first type's nodes,
// with type members replaced by typed tokens.
func typedSegments(c *corpus.Corpus, types []Type, pick []wrapper.Wrapper, maxTokens int) [][]int32 {
	if maxTokens <= 0 {
		maxTokens = 300
	}
	// typeOf maps ordinal -> type index (first match wins).
	typeOf := make(map[int]int)
	for ti := len(types) - 1; ti >= 0; ti-- {
		pick[ti].Extract().ForEach(func(ord int) { typeOf[ord] = ti })
	}
	var segs [][]int32
	for pi, page := range c.Pages {
		// Boundary positions: first type's members on this page.
		var bounds []int
		pick[0].Extract().ForEach(func(ord int) {
			if c.PageOf(ord) == pi {
				bounds = append(bounds, c.IndexInPage(ord))
			}
		})
		if len(bounds) < 2 {
			continue
		}
		// Typed copy of this page's token stream.
		toks := append([]int32(nil), page.Tokens...)
		for i, pos := range page.TextPos {
			ord := c.OrdinalOf(page.Texts[i])
			if ti, ok := typeOf[ord]; ok {
				toks[pos] = typedToken(ti)
			}
		}
		for i := 0; i+1 < len(bounds); i++ {
			start := page.TextPos[bounds[i]]
			end := page.TextPos[bounds[i+1]]
			if end <= start {
				continue
			}
			seg := toks[start:end]
			if len(seg) > maxTokens {
				seg = seg[:maxTokens]
			}
			segs = append(segs, seg)
		}
	}
	return segs
}

type featPair struct{ schema, align int }

func typedFeatures(segs [][]int32, maxPairs, editCap int) featPair {
	if maxPairs <= 0 {
		maxPairs = 25
	}
	if editCap <= 0 {
		editCap = 200
	}
	var schemaVals []int
	maxDist := 0
	count := 0
	for i := 0; i+1 < len(segs) && count < maxPairs; i++ {
		a, b := segs[i], segs[i+1]
		lcs := textutil.LongestCommonSubstring(a, b)
		texts := 0
		for _, t := range lcs {
			if t <= corpus.TextTokenID { // #text or any typed token
				texts++
			}
		}
		schemaVals = append(schemaVals, texts)
		if d := textutil.EditDistanceCapped(a, b, editCap); d > maxDist {
			maxDist = d
		}
		count++
	}
	sort.Ints(schemaVals)
	return featPair{schema: schemaVals[len(schemaVals)/2], align: maxDist}
}

// Assemble builds records page by page: each node of type 0 opens a record;
// between it and the next type-0 node there must be exactly one node of
// every other type. A page violating this produces no records and counts as
// failed (the appendix: "the wrapper produces empty results on a page if it
// cannot assemble records successfully").
func Assemble(c *corpus.Corpus, types []Type, pick []wrapper.Wrapper) ([]Record, int) {
	var records []Record
	failed := 0
	for pi := range c.Pages {
		pageRecords, ok := assemblePage(c, types, pick, pi)
		if !ok {
			failed++
			continue
		}
		records = append(records, pageRecords...)
	}
	return records, failed
}

func assemblePage(c *corpus.Corpus, types []Type, pick []wrapper.Wrapper, pi int) ([]Record, bool) {
	type occ struct {
		pos int
		ti  int
		ord int
	}
	var seq []occ
	for ti := range types {
		pick[ti].Extract().ForEach(func(ord int) {
			if c.PageOf(ord) != pi {
				return
			}
			seq = append(seq, occ{pos: c.IndexInPage(ord), ti: ti, ord: ord})
		})
	}
	if len(seq) == 0 {
		return nil, true // an empty page is vacuously fine
	}
	sort.Slice(seq, func(i, j int) bool { return seq[i].pos < seq[j].pos })

	var records []Record
	var cur Record
	filled := 0
	flush := func() bool {
		if cur == nil {
			return true
		}
		if filled != len(types) {
			return false // missing fields
		}
		records = append(records, cur)
		return true
	}
	for _, o := range seq {
		if o.ti == 0 {
			if !flush() {
				return nil, false
			}
			cur = make(Record, len(types))
			for i := range cur {
				cur[i] = -1
			}
			cur[0] = o.ord
			filled = 1
			continue
		}
		if cur == nil {
			return nil, false // field before any record opener
		}
		if cur[o.ti] != -1 {
			return nil, false // duplicate field in one record
		}
		cur[o.ti] = o.ord
		filled++
	}
	if !flush() {
		return nil, false
	}
	return records, true
}
