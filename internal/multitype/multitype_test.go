package multitype

import (
	"fmt"
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/rank"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// dealerSite: records carry a name (<u>) and zipcode (<b>); the footer has
// a 5-digit reference, the classic zip-annotator noise.
func dealerSite(pages, recs int) *corpus.Corpus {
	var htmls []string
	k := 0
	for p := 0; p < pages; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><div class="list">`)
		for i := 0; i < recs; i++ {
			k++
			fmt.Fprintf(&sb,
				`<div class="r"><u>STORE %03d</u><span>%d Main St</span><b>%05d</b></div>`,
				k, k*3+1, 10000+k)
		}
		fmt.Fprintf(&sb, `</div><div class="footer">Ref %05d</div></body></html>`, 90000+p)
		htmls = append(htmls, sb.String())
	}
	return corpus.ParseHTML(htmls)
}

func match(c *corpus.Corpus, pred func(string) bool) *bitset.Set {
	return c.MatchingText(pred)
}

func pubModel(t *testing.T, c *corpus.Corpus, gold *bitset.Set) *rank.PublicationModel {
	t.Helper()
	pub, err := rank.LearnPublicationModel(
		[]rank.SiteSample{{Corpus: c, Gold: gold}}, segment.Options{}, stats.KDEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

func mkTypes(c *corpus.Corpus, nameLabels, zipLabels *bitset.Set) []Type {
	return []Type{
		{Name: "name", Inductor: xpinduct.New(c, xpinduct.Options{}),
			Labels: nameLabels, Ann: rank.NewAnnotationModel(0.95, 0.4)},
		{Name: "zip", Inductor: xpinduct.New(c, xpinduct.Options{}),
			Labels: zipLabels, Ann: rank.NewAnnotationModel(0.95, 0.9)},
	}
}

func TestLearnAssemblesRecords(t *testing.T) {
	c := dealerSite(4, 3)
	goldNames := match(c, func(s string) bool { return strings.HasPrefix(s, "STORE") })
	goldZips := match(c, func(s string) bool { return len(s) == 5 && s[0] == '1' })

	// Noisy labels: some names, all 5-digit texts (zips + footer refs).
	nameLabels := c.SetOf(goldNames.Indices()[0], goldNames.Indices()[5])
	zipLabels := match(c, func(s string) bool {
		return len(s) >= 5 && strings.ContainsAny(s, "0123456789") &&
			(strings.HasPrefix(s, "1") || strings.HasPrefix(s, "Ref"))
	})

	res, err := Learn(c, mkTypes(c, nameLabels, zipLabels), Config{Pub: pubModel(t, c, goldNames)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no joint candidate")
	}
	if res.Best.PagesFailed != 0 {
		t.Fatalf("%d pages failed assembly", res.Best.PagesFailed)
	}
	if len(res.Best.Records) != 12 {
		t.Fatalf("assembled %d records, want 12", len(res.Best.Records))
	}
	// Records must pair each store with its own zip.
	for _, rec := range res.Best.Records {
		name := c.TextContent(rec[0])
		zip := c.TextContent(rec[1])
		var id int
		if _, err := fmt.Sscanf(name, "STORE %d", &id); err != nil {
			t.Fatalf("bad name %q", name)
		}
		if want := fmt.Sprintf("%05d", 10000+id); zip != want {
			t.Fatalf("record %q paired with zip %q, want %q", name, zip, want)
		}
	}
	if !res.Best.Wrappers[1].Extract().Equal(goldZips) {
		t.Fatalf("zip wrapper extracted %v", c.Contents(res.Best.Wrappers[1].Extract()))
	}
}

func TestAssembleRejectsImbalancedPages(t *testing.T) {
	c := dealerSite(2, 3)
	names := match(c, func(s string) bool { return strings.HasPrefix(s, "STORE") })
	// Zip wrapper that also grabs the footer refs: between the last name
	// and the page end there are now two "zips", which is fine (both after
	// the last name? no - one belongs to the record, the footer adds a
	// second), so assembly must fail.
	zipsAndRefs := match(c, func(s string) bool {
		return len(s) == 5 || strings.HasPrefix(s, "Ref")
	})
	types := mkTypes(c, names, zipsAndRefs)
	nameW, err := types[0].Inductor.Induce(names)
	if err != nil {
		t.Fatal(err)
	}
	zipW, err := types[1].Inductor.Induce(zipsAndRefs)
	if err != nil {
		t.Fatal(err)
	}
	records, failed := Assemble(c, types, []wrapper.Wrapper{nameW, zipW})
	if failed != len(c.Pages) {
		t.Fatalf("failed pages = %d, want all %d", failed, len(c.Pages))
	}
	if len(records) != 0 {
		t.Fatalf("records = %d, want 0", len(records))
	}
}

func TestAssembleEmptyPagesAreFine(t *testing.T) {
	c := dealerSite(2, 2)
	names := match(c, func(s string) bool { return strings.HasPrefix(s, "STORE") })
	zips := match(c, func(s string) bool { return len(s) == 5 && s[0] == '1' })
	types := mkTypes(c, names, zips)
	nameW, _ := types[0].Inductor.Induce(names)
	zipW, _ := types[1].Inductor.Induce(zips)
	records, failed := Assemble(c, types, []wrapper.Wrapper{nameW, zipW})
	if failed != 0 || len(records) != 4 {
		t.Fatalf("records=%d failed=%d", len(records), failed)
	}
}

func TestLearnValidation(t *testing.T) {
	c := dealerSite(1, 2)
	names := match(c, func(s string) bool { return strings.HasPrefix(s, "STORE") })
	if _, err := Learn(c, []Type{{Name: "one"}}, Config{}); err == nil {
		t.Fatal("one type must be rejected")
	}
	types := mkTypes(c, names, names)
	if _, err := Learn(c, types, Config{}); err == nil {
		t.Fatal("missing publication model must be rejected")
	}
}

func TestLearnEmptyTypeLabels(t *testing.T) {
	c := dealerSite(2, 2)
	names := match(c, func(s string) bool { return strings.HasPrefix(s, "STORE") })
	types := mkTypes(c, names, c.EmptySet())
	res, err := Learn(c, types, Config{Pub: pubModel(t, c, names)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Fatal("unlearnable type should yield an empty result")
	}
}

func TestJointBeatsAssemblyFailure(t *testing.T) {
	// The joint ranking must prefer a (name, zip) pair that assembles over
	// a higher-label-coverage pair that fails assembly.
	c := dealerSite(4, 3)
	goldNames := match(c, func(s string) bool { return strings.HasPrefix(s, "STORE") })
	// Zip labels include footer refs: the zip wrapper space contains both
	// the clean zip rule and the one covering refs.
	zipLabels := match(c, func(s string) bool {
		return (len(s) == 5 && s[0] == '1') || strings.HasPrefix(s, "Ref")
	})
	// Labels must span row positions or the inductor correctly pins the
	// rule to one row.
	nameLabels := c.SetOf(goldNames.Indices()[0], goldNames.Indices()[4])
	res, err := Learn(c, mkTypes(c, nameLabels, zipLabels), Config{Pub: pubModel(t, c, goldNames)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.PagesFailed != 0 {
		t.Fatalf("joint ranking should find an assembling pair (failed=%v)", res.Best)
	}
	if len(res.Best.Records) != 12 {
		t.Fatalf("records = %d", len(res.Best.Records))
	}
}
