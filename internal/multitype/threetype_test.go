package multitype

import (
	"strings"
	"testing"

	"autowrap/internal/annotate"
	"autowrap/internal/gen"
	"autowrap/internal/rank"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
	"autowrap/internal/xpinduct"
)

// TestThreeTypeRecords extends Appendix A beyond two types: jointly extract
// (name, zipcode, phone) records from generated dealer sites. The framework
// is type-count agnostic; this exercises the generic record assembly.
//
// The site must render the phone inside its own element (the "divs"
// layout): the paper's xpath fragment has no text() index, so bare text
// siblings sharing one parent (street/city/phone in the table and heading
// layouts) are inherently indistinguishable to the XPATH inductor — a real
// expressiveness limit of the wrapper language, not of the framework.
func TestThreeTypeRecords(t *testing.T) {
	pool := gen.BusinessPool(21, 600, 0)
	var site *gen.Site
	for seed := int64(30); ; seed++ {
		s, err := gen.DealerSite(gen.DealerConfig{Seed: seed, Pool: pool, NumPages: 6})
		if err != nil {
			t.Fatal(err)
		}
		if s.Layout == "divs" {
			site = s
			break
		}
		if seed > 100 {
			t.Fatal("no divs-layout seed found")
		}
	}
	c := site.Corpus
	goldNames := site.Gold["name"]
	goldZips := site.Gold["zip"]
	goldPhones := site.Gold["phone"]
	if goldPhones.Empty() {
		t.Fatal("generator produced no phone gold")
	}

	pub, err := rank.LearnPublicationModel(
		[]rank.SiteSample{{Corpus: c, Gold: goldNames}},
		segment.Options{}, stats.KDEOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Noisy annotators: a thin name dictionary, the zipcode regexp (street
	// number noise), and a phone-shaped regexp.
	nameLabels := c.EmptySet()
	i := 0
	goldNames.ForEach(func(ord int) {
		if i%4 == 0 {
			nameLabels.Add(ord)
		}
		i++
	})
	zipLabels := annotate.MustRegexp("zip", annotate.ZipcodePattern).Annotate(c)
	phoneLabels := annotate.MustRegexp("phone", `[0-9]{3}-[0-9]{3}-[0-9]{4}`).Annotate(c)
	if phoneLabels.Empty() {
		t.Fatal("phone annotator found nothing")
	}

	types := []Type{
		{Name: "name", Inductor: xpinduct.New(c, xpinduct.Options{}),
			Labels: nameLabels, Ann: rank.NewAnnotationModel(0.95, 0.25)},
		{Name: "zip", Inductor: xpinduct.New(c, xpinduct.Options{}),
			Labels: zipLabels, Ann: rank.NewAnnotationModel(0.95, 0.9)},
		{Name: "phone", Inductor: xpinduct.New(c, xpinduct.Options{}),
			Labels: phoneLabels, Ann: rank.NewAnnotationModel(0.95, 0.9)},
	}
	res, err := Learn(c, types, Config{Pub: pub})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no joint candidate")
	}
	if res.Best.PagesFailed != 0 {
		t.Fatalf("%d pages failed assembly", res.Best.PagesFailed)
	}
	if len(res.Best.Records) != goldNames.Count() {
		t.Fatalf("assembled %d records, want %d", len(res.Best.Records), goldNames.Count())
	}
	// Every record: a gold name, its page's gold zip, and a phone-bearing
	// node.
	for _, rec := range res.Best.Records {
		if !goldNames.Has(rec[0]) {
			t.Fatalf("record name ordinal %d is not gold (%q)", rec[0], c.TextContent(rec[0]))
		}
		if !goldZips.Has(rec[1]) {
			t.Fatalf("record zip ordinal %d is not gold (%q)", rec[1], c.TextContent(rec[1]))
		}
		if !goldPhones.Has(rec[2]) {
			t.Fatalf("record phone ordinal %d is not gold (%q)", rec[2], c.TextContent(rec[2]))
		}
		if !strings.ContainsAny(c.TextContent(rec[2]), "0123456789") {
			t.Fatalf("phone field %q has no digits", c.TextContent(rec[2]))
		}
	}
}
