// Package corpus represents a website as the set of structurally similar
// pages a rendering script generated (paper Sec. 2.1). It assigns every
// extractable text node a global ordinal so inductors, enumerators and the
// ranking model can treat label sets and wrapper outputs as bitsets.
package corpus

import (
	"fmt"
	"strings"

	"autowrap/internal/bitset"
	"autowrap/internal/dom"
	"autowrap/internal/htmlparse"
)

// Page is one parsed webpage of a site.
type Page struct {
	Index int       // position within the corpus
	Root  *dom.Node // document root

	// HTML is the canonical serialization of Root; Spans locates each text
	// node's content inside it. The LR inductor works on this string.
	HTML  string
	Spans map[*dom.Node][2]int

	// Texts are the extractable (non-whitespace) text nodes in preorder.
	Texts []*dom.Node

	// Tokens is the page's preorder tag-token sequence (text nodes appear
	// as the interned "#text" token); TextPos[i] is the position of
	// Texts[i] inside Tokens. The record segmentation of Fig. 7 slices
	// this sequence.
	Tokens  []int32
	TextPos []int
}

// Corpus is a set of pages from one website plus the global text-node index.
type Corpus struct {
	Pages []*Page

	texts   []*dom.Node // ordinal -> node
	pageOf  []int       // ordinal -> page index
	inPage  []int       // ordinal -> index within page.Texts
	ordinal map[*dom.Node]int

	tokenIDs map[string]int32
	tokens   []string
}

// TextTokenID is the interned id of the "#text" pseudo tag; it is always 0.
const TextTokenID int32 = 0

// New builds a corpus from parsed documents. Documents are serialized once
// to produce the canonical HTML and text spans used by string-based
// inductors.
func New(docs []*dom.Node) *Corpus {
	c := &Corpus{
		ordinal:  make(map[*dom.Node]int),
		tokenIDs: map[string]int32{dom.TextTag: TextTokenID},
		tokens:   []string{dom.TextTag},
	}
	for i, doc := range docs {
		html, spans := dom.SerializeWithSpans(doc)
		p := &Page{Index: i, Root: doc, HTML: html, Spans: spans}
		doc.Walk(func(n *dom.Node) bool {
			switch n.Type {
			case dom.TextNode:
				p.Tokens = append(p.Tokens, TextTokenID)
				if IsExtractableText(n) {
					ord := len(c.texts)
					c.texts = append(c.texts, n)
					c.pageOf = append(c.pageOf, i)
					c.inPage = append(c.inPage, len(p.Texts))
					c.ordinal[n] = ord
					p.TextPos = append(p.TextPos, len(p.Tokens)-1)
					p.Texts = append(p.Texts, n)
				}
			case dom.ElementNode:
				p.Tokens = append(p.Tokens, c.internToken(n.Tag))
			}
			return true
		})
		c.Pages = append(c.Pages, p)
	}
	return c
}

// ParseHTML builds a corpus by parsing raw HTML pages.
func ParseHTML(pages []string) *Corpus {
	docs := make([]*dom.Node, len(pages))
	for i, src := range pages {
		docs[i] = htmlparse.Parse(src)
	}
	return New(docs)
}

func isRawText(n *dom.Node) bool {
	return n.Parent != nil && n.Parent.Raw
}

// IsExtractableText reports whether n belongs to the extractable text-node
// universe a corpus indexes: a text node with non-whitespace content outside
// raw-text (script/style) elements. Compiled wrappers apply the same
// predicate at serve time so that extraction on unseen pages selects from
// exactly the universe induction saw.
func IsExtractableText(n *dom.Node) bool {
	return n.Type == dom.TextNode && strings.TrimSpace(n.Data) != "" && !isRawText(n)
}

// ExtractableTexts returns a page's extractable text nodes in preorder —
// the universe New would index for that page.
func ExtractableTexts(root *dom.Node) []*dom.Node {
	var out []*dom.Node
	root.Walk(func(n *dom.Node) bool {
		if IsExtractableText(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

func (c *Corpus) internToken(tag string) int32 {
	if id, ok := c.tokenIDs[tag]; ok {
		return id
	}
	id := int32(len(c.tokens))
	c.tokenIDs[tag] = id
	c.tokens = append(c.tokens, tag)
	return id
}

// TokenName resolves an interned token id back to the tag name.
func (c *Corpus) TokenName(id int32) string {
	if int(id) < len(c.tokens) {
		return c.tokens[int(id)]
	}
	return "?"
}

// NumTexts returns the size of the text-node universe.
func (c *Corpus) NumTexts() int { return len(c.texts) }

// Text returns the text node with the given ordinal.
func (c *Corpus) Text(ord int) *dom.Node { return c.texts[ord] }

// PageOf returns the page index owning the given ordinal.
func (c *Corpus) PageOf(ord int) int { return c.pageOf[ord] }

// IndexInPage returns the position of ordinal within its page's Texts slice.
func (c *Corpus) IndexInPage(ord int) int { return c.inPage[ord] }

// OrdinalOf returns the global ordinal of a text node, or -1 when the node
// is not part of the extractable universe.
func (c *Corpus) OrdinalOf(n *dom.Node) int {
	if ord, ok := c.ordinal[n]; ok {
		return ord
	}
	return -1
}

// EmptySet returns an empty node set over this corpus's universe.
func (c *Corpus) EmptySet() *bitset.Set { return bitset.New(len(c.texts)) }

// FullSet returns the set of all extractable text nodes.
func (c *Corpus) FullSet() *bitset.Set { return bitset.Full(len(c.texts)) }

// SetOf builds a node set from ordinals.
func (c *Corpus) SetOf(ords ...int) *bitset.Set {
	return bitset.FromIndices(len(c.texts), ords)
}

// SetOfNodes builds a node set from dom nodes; unknown nodes are an error.
func (c *Corpus) SetOfNodes(nodes []*dom.Node) (*bitset.Set, error) {
	s := c.EmptySet()
	for _, n := range nodes {
		ord := c.OrdinalOf(n)
		if ord < 0 {
			return nil, fmt.Errorf("corpus: node %q is not an extractable text node", n.PathString())
		}
		s.Add(ord)
	}
	return s, nil
}

// MatchingText returns the set of text nodes whose trimmed content
// satisfies pred. Annotators and gold-label construction use this.
func (c *Corpus) MatchingText(pred func(string) bool) *bitset.Set {
	s := c.EmptySet()
	for ord, n := range c.texts {
		if pred(strings.TrimSpace(n.Data)) {
			s.Add(ord)
		}
	}
	return s
}

// TextContent returns the trimmed content of the given ordinal.
func (c *Corpus) TextContent(ord int) string {
	return strings.TrimSpace(c.texts[ord].Data)
}

// Contents materializes the trimmed contents of a node set in ordinal order.
func (c *Corpus) Contents(s *bitset.Set) []string {
	var out []string
	s.ForEach(func(ord int) {
		out = append(out, c.TextContent(ord))
	})
	return out
}

// PerPageCounts returns, for each page, how many members of s it contains.
func (c *Corpus) PerPageCounts(s *bitset.Set) []int {
	counts := make([]int, len(c.Pages))
	s.ForEach(func(ord int) {
		counts[c.pageOf[ord]]++
	})
	return counts
}
