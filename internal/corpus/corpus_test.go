package corpus

import (
	"strings"
	"testing"

	"autowrap/internal/dom"
)

func twoPages() *Corpus {
	return ParseHTML([]string{
		`<html><body><ul><li>alpha</li><li>beta</li></ul></body></html>`,
		`<html><body><ul><li>gamma</li></ul><p>delta</p></body></html>`,
	})
}

func TestOrdinalsAreGlobalAndOrdered(t *testing.T) {
	c := twoPages()
	if c.NumTexts() != 4 {
		t.Fatalf("NumTexts = %d", c.NumTexts())
	}
	want := []string{"alpha", "beta", "gamma", "delta"}
	for ord, w := range want {
		if got := c.TextContent(ord); got != w {
			t.Fatalf("ordinal %d = %q, want %q", ord, got, w)
		}
	}
	if c.PageOf(0) != 0 || c.PageOf(1) != 0 || c.PageOf(2) != 1 || c.PageOf(3) != 1 {
		t.Fatal("PageOf wrong")
	}
	if c.IndexInPage(2) != 0 || c.IndexInPage(3) != 1 {
		t.Fatal("IndexInPage wrong")
	}
}

func TestOrdinalOfRoundTrip(t *testing.T) {
	c := twoPages()
	for ord := 0; ord < c.NumTexts(); ord++ {
		if c.OrdinalOf(c.Text(ord)) != ord {
			t.Fatalf("round trip failed at %d", ord)
		}
	}
	if c.OrdinalOf(dom.NewText("unattached")) != -1 {
		t.Fatal("foreign node should map to -1")
	}
}

func TestWhitespaceTextExcluded(t *testing.T) {
	c := ParseHTML([]string{`<div>  <span>x</span>  </div>`})
	if c.NumTexts() != 1 {
		t.Fatalf("NumTexts = %d, want 1", c.NumTexts())
	}
}

func TestScriptTextExcluded(t *testing.T) {
	c := ParseHTML([]string{`<script>var x = 1;</script><p>real</p>`})
	if c.NumTexts() != 1 || c.TextContent(0) != "real" {
		t.Fatalf("script text leaked into universe: %d texts", c.NumTexts())
	}
}

func TestSpansLocateEscapedText(t *testing.T) {
	c := ParseHTML([]string{`<p>Tom &amp; Jerry</p>`})
	p := c.Pages[0]
	n := p.Texts[0]
	span := p.Spans[n]
	if got := p.HTML[span[0]:span[1]]; got != "Tom &amp; Jerry" {
		t.Fatalf("span content = %q", got)
	}
}

func TestTokensPreorderWithTextToken(t *testing.T) {
	c := ParseHTML([]string{`<div><b>x</b><i>y</i></div>`})
	p := c.Pages[0]
	var names []string
	for _, id := range p.Tokens {
		names = append(names, c.TokenName(id))
	}
	// The parser does not synthesize html/body wrappers for fragments.
	want := "div b #text i #text"
	if strings.Join(names, " ") != want {
		t.Fatalf("tokens = %v, want %v", names, want)
	}
	// TextPos points at the #text tokens.
	for i, pos := range p.TextPos {
		if p.Tokens[pos] != TextTokenID {
			t.Fatalf("TextPos[%d] = %d does not reference a #text token", i, pos)
		}
	}
}

func TestSetHelpers(t *testing.T) {
	c := twoPages()
	s := c.SetOf(1, 3)
	if got := c.Contents(s); strings.Join(got, ",") != "beta,delta" {
		t.Fatalf("Contents = %v", got)
	}
	counts := c.PerPageCounts(s)
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("PerPageCounts = %v", counts)
	}
	if c.FullSet().Count() != 4 || !c.EmptySet().Empty() {
		t.Fatal("FullSet/EmptySet wrong")
	}
}

func TestSetOfNodes(t *testing.T) {
	c := twoPages()
	s, err := c.SetOfNodes([]*dom.Node{c.Text(0), c.Text(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(0) || !s.Has(2) || s.Count() != 2 {
		t.Fatalf("SetOfNodes = %v", s.Indices())
	}
	if _, err := c.SetOfNodes([]*dom.Node{dom.NewText("zzz")}); err == nil {
		t.Fatal("expected error for foreign node")
	}
}

func TestMatchingText(t *testing.T) {
	c := twoPages()
	s := c.MatchingText(func(v string) bool { return strings.HasSuffix(v, "a") })
	// alpha, beta, gamma, delta all end in 'a'.
	if s.Count() != 4 {
		t.Fatalf("MatchingText count = %d", s.Count())
	}
	s = c.MatchingText(func(v string) bool { return v == "beta" })
	if s.Count() != 1 || !s.Has(1) {
		t.Fatalf("MatchingText(beta) = %v", s.Indices())
	}
}

func TestCanonicalHTMLIsReparseStable(t *testing.T) {
	c := twoPages()
	for _, p := range c.Pages {
		again := ParseHTML([]string{p.HTML})
		if again.Pages[0].HTML != p.HTML {
			t.Fatal("canonical HTML is not a parse fixed point")
		}
	}
}
