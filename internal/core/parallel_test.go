package core

import (
	"testing"

	"autowrap/internal/rank"
	"autowrap/internal/xpinduct"
)

// TestParallelScoringMatchesSerial is the determinism guarantee of the
// fanned-out ranking loop: for any ScoreWorkers value, Learn returns the
// same candidates in the same order with the same scores as the serial
// path — not just the same Best.
func TestParallelScoringMatchesSerial(t *testing.T) {
	c := dealerCorpus(5, 4)
	gold := goldNames(c)
	labels := noisyLabels(c, gold)
	scorer := scorerFor(t, c, gold)

	serial, err := Learn(xpinduct.New(c, xpinduct.Options{}), labels,
		Config{Scorer: scorer, ScoreWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Candidates) < 2 {
		t.Fatalf("only %d candidates; the determinism check needs a real space",
			len(serial.Candidates))
	}

	for _, workers := range []int{0, 2, 3, 8, 32} {
		par, err := Learn(xpinduct.New(c, xpinduct.Options{}), labels,
			Config{Scorer: scorer, ScoreWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Candidates) != len(serial.Candidates) {
			t.Fatalf("workers=%d: %d candidates, serial has %d",
				workers, len(par.Candidates), len(serial.Candidates))
		}
		for i := range serial.Candidates {
			a, b := serial.Candidates[i], par.Candidates[i]
			if a.Score != b.Score {
				t.Fatalf("workers=%d: candidate %d score %+v != serial %+v",
					workers, i, b.Score, a.Score)
			}
			if a.Wrapper.Rule() != b.Wrapper.Rule() {
				t.Fatalf("workers=%d: candidate %d rule %q != serial %q",
					workers, i, b.Wrapper.Rule(), a.Wrapper.Rule())
			}
			if !a.Wrapper.Extract().Equal(b.Wrapper.Extract()) {
				t.Fatalf("workers=%d: candidate %d extraction differs", workers, i)
			}
			if !a.TrainedOn.Equal(b.TrainedOn) {
				t.Fatalf("workers=%d: candidate %d trained-on subset differs", workers, i)
			}
		}
		if par.Best.Wrapper.Rule() != serial.Best.Wrapper.Rule() {
			t.Fatalf("workers=%d: Best differs from serial", workers)
		}
	}
}

// TestParallelScoringVariants exercises the fan-out under every ranking
// variant (each reads a different slice of the scorer).
func TestParallelScoringVariants(t *testing.T) {
	c := dealerCorpus(4, 3)
	gold := goldNames(c)
	labels := noisyLabels(c, gold)
	scorer := scorerFor(t, c, gold)
	for _, v := range []rank.Variant{rank.NTW, rank.NTWL, rank.NTWX} {
		serial, err := Learn(xpinduct.New(c, xpinduct.Options{}), labels,
			Config{Scorer: scorer, Variant: v, ScoreWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Learn(xpinduct.New(c, xpinduct.Options{}), labels,
			Config{Scorer: scorer, Variant: v, ScoreWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Best.Wrapper.Rule() != par.Best.Wrapper.Rule() {
			t.Fatalf("variant %v: parallel Best differs from serial", v)
		}
	}
}
