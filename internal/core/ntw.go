// Package core is the paper's primary contribution: the noise-tolerant
// wrapper (NTW) framework of Sec. 3. Given any well-behaved wrapper
// inductor φ and a set of noisy labels L, it (1) enumerates the wrapper
// space W(L) — every distinct wrapper some subset of L can produce — using
// the algorithms of Sec. 4, and (2) ranks the candidates by
// P(L | X)·P(X) (Sec. 6), returning the best one. The NAIVE baseline that
// runs φ directly on all of L is also provided, as are the NTW-L/NTW-X
// ranking ablations of Sec. 7.3.
package core

import (
	"fmt"
	"sort"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/enum"
	"autowrap/internal/par"
	"autowrap/internal/rank"
	"autowrap/internal/wrapper"
)

// Config controls one NTW learning run.
type Config struct {
	// Enumerator is enum.AlgoTopDown (default; requires a feature-based
	// inductor), enum.AlgoBottomUp, or enum.AlgoNaive.
	Enumerator string
	// EnumOptions bounds the enumeration.
	EnumOptions enum.Options
	// Scorer holds the learned annotation and publication models.
	Scorer *rank.Scorer
	// Variant selects NTW, NTW-L, or NTW-X.
	Variant rank.Variant
	// ScoreWorkers fans candidate scoring out over a bounded goroutine
	// pool: each enumerated wrapper is scored independently, results land
	// in the candidate's own slot, and the final ranking sort is the same
	// stable sort as the serial path — so the Result is byte-identical
	// whatever the worker count. Parallel scoring is opt-in: <= 1 keeps
	// the serial loop, so zero-value configs nested under a site-level
	// pool (the engine, the experiment runners) don't oversubscribe the
	// host with workers × workers goroutines. Pass
	// runtime.GOMAXPROCS(0) to saturate a machine from a single site.
	ScoreWorkers int
}

func (cfg Config) scoreWorkers() int {
	if cfg.ScoreWorkers < 1 {
		return 1
	}
	return cfg.ScoreWorkers
}

func (cfg Config) enumerator() string {
	if cfg.Enumerator == "" {
		return enum.AlgoTopDown
	}
	return cfg.Enumerator
}

// Candidate is one ranked wrapper.
type Candidate struct {
	Wrapper wrapper.Wrapper
	// TrainedOn is the (closed) label subset that produced the wrapper.
	TrainedOn *bitset.Set
	Score     rank.Score
}

// Result of an NTW run.
type Result struct {
	// Best is the top-ranked candidate (nil only when L is empty).
	Best *Candidate
	// Candidates is the full ranked wrapper space, best first.
	Candidates []Candidate
	// EnumCalls is the number of inductor calls the enumeration made.
	EnumCalls int64
}

// Learn runs the generate-and-test framework: enumerate, score, rank.
func Learn(ind wrapper.Inductor, labels *bitset.Set, cfg Config) (*Result, error) {
	if cfg.Scorer == nil {
		return nil, fmt.Errorf("core: Config.Scorer is required")
	}
	if labels.Empty() {
		return &Result{}, nil
	}
	c := ind.Corpus()
	enumRes, err := enum.Run(cfg.enumerator(), ind, labels, cfg.EnumOptions)
	if err != nil {
		return nil, fmt.Errorf("core: enumeration failed: %w", err)
	}
	res := &Result{EnumCalls: enumRes.Calls}
	// Scoring is the hot loop: every enumerated wrapper is scored against
	// the labels and the publication model (segmentation + KDE lookups),
	// and the candidates are independent — fan them out. Each goroutine
	// writes only its own index, so the merge is a no-op and the ordering
	// below sees exactly the slice the serial loop would build.
	items := enumRes.Items
	res.Candidates = make([]Candidate, len(items))
	par.For(len(items), cfg.scoreWorkers(), func(i int) {
		res.Candidates[i] = Candidate{
			Wrapper:   items[i].Wrapper,
			TrainedOn: items[i].Labels,
			Score:     cfg.Scorer.Score(c, labels, items[i].Wrapper.Extract(), cfg.Variant),
		}
	})
	sortCandidates(res.Candidates, labels)
	if len(res.Candidates) > 0 {
		res.Best = &res.Candidates[0]
	}
	return res, nil
}

// sortCandidates orders by total score, breaking ties deterministically:
// more covered labels, then smaller output, then output signature.
func sortCandidates(cands []Candidate, labels *bitset.Set) {
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Score.Total != b.Score.Total {
			return a.Score.Total > b.Score.Total
		}
		ca := bitset.AndCount(labels, a.Wrapper.Extract())
		cb := bitset.AndCount(labels, b.Wrapper.Extract())
		if ca != cb {
			return ca > cb
		}
		na, nb := a.Wrapper.Extract().Count(), b.Wrapper.Extract().Count()
		if na != nb {
			return na < nb
		}
		return a.Wrapper.Extract().Signature() < b.Wrapper.Extract().Signature()
	})
}

// Naive is the baseline of Sec. 7.2: run the inductor directly on the full
// (noisy) label set.
func Naive(ind wrapper.Inductor, labels *bitset.Set) (wrapper.Wrapper, error) {
	if labels.Empty() {
		return nil, fmt.Errorf("core: no labels to train on")
	}
	return ind.Induce(labels)
}

// Extraction is a convenience: the node set the learned wrapper extracts,
// or an empty set when learning produced nothing.
func (r *Result) Extraction(c *corpus.Corpus) *bitset.Set {
	if r.Best == nil {
		return c.EmptySet()
	}
	return r.Best.Wrapper.Extract()
}
