// Package core is the paper's primary contribution: the noise-tolerant
// wrapper (NTW) framework of Sec. 3. Given any well-behaved wrapper
// inductor φ and a set of noisy labels L, it (1) enumerates the wrapper
// space W(L) — every distinct wrapper some subset of L can produce — using
// the algorithms of Sec. 4, and (2) ranks the candidates by
// P(L | X)·P(X) (Sec. 6), returning the best one. The NAIVE baseline that
// runs φ directly on all of L is also provided, as are the NTW-L/NTW-X
// ranking ablations of Sec. 7.3.
package core

import (
	"fmt"
	"sort"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/enum"
	"autowrap/internal/rank"
	"autowrap/internal/wrapper"
)

// Config controls one NTW learning run.
type Config struct {
	// Enumerator is enum.AlgoTopDown (default; requires a feature-based
	// inductor), enum.AlgoBottomUp, or enum.AlgoNaive.
	Enumerator string
	// EnumOptions bounds the enumeration.
	EnumOptions enum.Options
	// Scorer holds the learned annotation and publication models.
	Scorer *rank.Scorer
	// Variant selects NTW, NTW-L, or NTW-X.
	Variant rank.Variant
}

func (cfg Config) enumerator() string {
	if cfg.Enumerator == "" {
		return enum.AlgoTopDown
	}
	return cfg.Enumerator
}

// Candidate is one ranked wrapper.
type Candidate struct {
	Wrapper wrapper.Wrapper
	// TrainedOn is the (closed) label subset that produced the wrapper.
	TrainedOn *bitset.Set
	Score     rank.Score
}

// Result of an NTW run.
type Result struct {
	// Best is the top-ranked candidate (nil only when L is empty).
	Best *Candidate
	// Candidates is the full ranked wrapper space, best first.
	Candidates []Candidate
	// EnumCalls is the number of inductor calls the enumeration made.
	EnumCalls int64
}

// Learn runs the generate-and-test framework: enumerate, score, rank.
func Learn(ind wrapper.Inductor, labels *bitset.Set, cfg Config) (*Result, error) {
	if cfg.Scorer == nil {
		return nil, fmt.Errorf("core: Config.Scorer is required")
	}
	if labels.Empty() {
		return &Result{}, nil
	}
	c := ind.Corpus()
	enumRes, err := enum.Run(cfg.enumerator(), ind, labels, cfg.EnumOptions)
	if err != nil {
		return nil, fmt.Errorf("core: enumeration failed: %w", err)
	}
	res := &Result{EnumCalls: enumRes.Calls}
	for _, it := range enumRes.Items {
		res.Candidates = append(res.Candidates, Candidate{
			Wrapper:   it.Wrapper,
			TrainedOn: it.Labels,
			Score:     cfg.Scorer.Score(c, labels, it.Wrapper.Extract(), cfg.Variant),
		})
	}
	sortCandidates(res.Candidates, labels)
	if len(res.Candidates) > 0 {
		res.Best = &res.Candidates[0]
	}
	return res, nil
}

// sortCandidates orders by total score, breaking ties deterministically:
// more covered labels, then smaller output, then output signature.
func sortCandidates(cands []Candidate, labels *bitset.Set) {
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Score.Total != b.Score.Total {
			return a.Score.Total > b.Score.Total
		}
		ca := bitset.AndCount(labels, a.Wrapper.Extract())
		cb := bitset.AndCount(labels, b.Wrapper.Extract())
		if ca != cb {
			return ca > cb
		}
		na, nb := a.Wrapper.Extract().Count(), b.Wrapper.Extract().Count()
		if na != nb {
			return na < nb
		}
		return a.Wrapper.Extract().Signature() < b.Wrapper.Extract().Signature()
	})
}

// Naive is the baseline of Sec. 7.2: run the inductor directly on the full
// (noisy) label set.
func Naive(ind wrapper.Inductor, labels *bitset.Set) (wrapper.Wrapper, error) {
	if labels.Empty() {
		return nil, fmt.Errorf("core: no labels to train on")
	}
	return ind.Induce(labels)
}

// Extraction is a convenience: the node set the learned wrapper extracts,
// or an empty set when learning produced nothing.
func (r *Result) Extraction(c *corpus.Corpus) *bitset.Set {
	if r.Best == nil {
		return c.EmptySet()
	}
	return r.Best.Wrapper.Extract()
}
