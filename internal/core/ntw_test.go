package core

import (
	"fmt"
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/enum"
	"autowrap/internal/rank"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
	"autowrap/internal/xpinduct"
)

// dealerCorpus renders a small scripted site: names in <u>, addresses bare.
func dealerCorpus(pages, recs int) *corpus.Corpus {
	var htmls []string
	k := 0
	for p := 0; p < pages; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><h1>Locator</h1><div class="list"><table>`)
		for i := 0; i < recs; i++ {
			k++
			fmt.Fprintf(&sb, `<tr><td><u>STORE %03d</u><br>%d Main St<br>CITY%d, MS</td></tr>`, k, k*7, k)
		}
		sb.WriteString(`</table></div><p class="note">Also try STORE 001 nearby.</p></body></html>`)
		htmls = append(htmls, sb.String())
	}
	return corpus.ParseHTML(htmls)
}

func goldNames(c *corpus.Corpus) *bitset.Set {
	return c.MatchingText(func(s string) bool {
		return strings.HasPrefix(s, "STORE ") && len(s) == len("STORE 000")
	})
}

func scorerFor(t *testing.T, c *corpus.Corpus, gold *bitset.Set) *rank.Scorer {
	t.Helper()
	pub, err := rank.LearnPublicationModel(
		[]rank.SiteSample{{Corpus: c, Gold: gold}}, segment.Options{}, stats.KDEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &rank.Scorer{Ann: rank.NewAnnotationModel(0.95, 0.3), Pub: pub}
}

// noisyLabels picks every third gold name plus the noisy note nodes.
func noisyLabels(c *corpus.Corpus, gold *bitset.Set) *bitset.Set {
	labels := bitset.New(c.NumTexts())
	i := 0
	gold.ForEach(func(ord int) {
		if i%3 == 0 {
			labels.Add(ord)
		}
		i++
	})
	notes := c.MatchingText(func(s string) bool { return strings.HasPrefix(s, "Also try") })
	labels.OrWith(notes)
	return labels
}

func TestLearnRecoversGoldFromNoisyLabels(t *testing.T) {
	c := dealerCorpus(5, 4)
	gold := goldNames(c)
	labels := noisyLabels(c, gold)
	ind := xpinduct.New(c, xpinduct.Options{})
	res, err := Learn(ind, labels, Config{Scorer: scorerFor(t, c, gold)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no wrapper learned")
	}
	if !res.Best.Wrapper.Extract().Equal(gold) {
		t.Fatalf("learned %v, want the %d gold names",
			c.Contents(res.Best.Wrapper.Extract()), gold.Count())
	}
}

func TestNaiveOverGeneralizes(t *testing.T) {
	c := dealerCorpus(5, 4)
	gold := goldNames(c)
	labels := noisyLabels(c, gold)
	ind := xpinduct.New(c, xpinduct.Options{})
	w, err := Naive(ind, labels)
	if err != nil {
		t.Fatal(err)
	}
	if w.Extract().Count() <= gold.Count() {
		t.Fatalf("naive output %d nodes; expected gross over-generalization beyond %d gold",
			w.Extract().Count(), gold.Count())
	}
}

func TestCandidatesSortedByScore(t *testing.T) {
	c := dealerCorpus(4, 3)
	gold := goldNames(c)
	labels := noisyLabels(c, gold)
	ind := xpinduct.New(c, xpinduct.Options{})
	res, err := Learn(ind, labels, Config{Scorer: scorerFor(t, c, gold)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i-1].Score.Total < res.Candidates[i].Score.Total {
			t.Fatalf("candidates out of order at %d", i)
		}
	}
	if res.Best != &res.Candidates[0] {
		t.Fatal("Best must alias the first candidate")
	}
}

func TestLearnEnumeratorChoice(t *testing.T) {
	c := dealerCorpus(3, 3)
	gold := goldNames(c)
	labels := noisyLabels(c, gold)
	scorer := scorerFor(t, c, gold)
	var outs []*bitset.Set
	for _, algo := range []string{enum.AlgoTopDown, enum.AlgoBottomUp} {
		ind := xpinduct.New(c, xpinduct.Options{})
		res, err := Learn(ind, labels, Config{Enumerator: algo, Scorer: scorer})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		outs = append(outs, res.Best.Wrapper.Extract())
	}
	if !outs[0].Equal(outs[1]) {
		t.Fatal("TopDown and BottomUp must learn the same wrapper")
	}
}

func TestLearnEmptyLabels(t *testing.T) {
	c := dealerCorpus(2, 2)
	ind := xpinduct.New(c, xpinduct.Options{})
	res, err := Learn(ind, c.EmptySet(), Config{Scorer: scorerFor(t, c, goldNames(c))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil || len(res.Candidates) != 0 {
		t.Fatal("empty labels should produce an empty result")
	}
	if !res.Extraction(c).Empty() {
		t.Fatal("Extraction of empty result should be empty")
	}
}

func TestLearnRequiresScorer(t *testing.T) {
	c := dealerCorpus(2, 2)
	ind := xpinduct.New(c, xpinduct.Options{})
	if _, err := Learn(ind, goldNames(c), Config{}); err == nil {
		t.Fatal("expected error without scorer")
	}
}

func TestNaiveEmptyLabels(t *testing.T) {
	c := dealerCorpus(2, 2)
	ind := xpinduct.New(c, xpinduct.Options{})
	if _, err := Naive(ind, c.EmptySet()); err == nil {
		t.Fatal("expected error")
	}
}

// TestVariantDiffersFromFull: on a corpus engineered so that the label term
// alone prefers an overfit wrapper, NTW-L and NTW disagree — demonstrating
// that the ranking variant wiring reaches the scorer.
func TestVariantMatters(t *testing.T) {
	c := dealerCorpus(5, 4)
	gold := goldNames(c)
	labels := noisyLabels(c, gold)
	scorer := scorerFor(t, c, gold)
	ind := xpinduct.New(c, xpinduct.Options{})
	full, err := Learn(ind, labels, Config{Scorer: scorer, Variant: rank.NTW})
	if err != nil {
		t.Fatal(err)
	}
	xOnly, err := Learn(ind, labels, Config{Scorer: scorer, Variant: rank.NTWX})
	if err != nil {
		t.Fatal(err)
	}
	// Both runs rank the same candidate set; totals must differ in how
	// they weigh the components.
	if full.Best.Score.Total == xOnly.Best.Score.Total &&
		full.Best.Score.LogL != 0 {
		t.Fatal("variants did not change the ranking objective")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	c := dealerCorpus(3, 3)
	gold := goldNames(c)
	labels := noisyLabels(c, gold)
	scorer := scorerFor(t, c, gold)
	var rules []string
	for i := 0; i < 3; i++ {
		ind := xpinduct.New(c, xpinduct.Options{})
		res, err := Learn(ind, labels, Config{Scorer: scorer})
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, res.Best.Wrapper.Rule())
	}
	if rules[0] != rules[1] || rules[1] != rules[2] {
		t.Fatalf("non-deterministic learning: %v", rules)
	}
}
