package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"autowrap/internal/annotate"
	"autowrap/internal/bitset"
	"autowrap/internal/core"
	"autowrap/internal/corpus"
	"autowrap/internal/rank"
	"autowrap/internal/stats"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// testSite builds a small dealer-style site whose store names are offset by
// base, so every site in a batch has distinct content.
func testSite(base int) *corpus.Corpus {
	var pages []string
	k := base
	for p := 0; p < 3; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><h1>Locator</h1><table>`)
		for i := 0; i < 3; i++ {
			k++
			fmt.Fprintf(&sb, `<tr><td><u>STORE %04d</u><br>%d Main St</td></tr>`, k, k*7)
		}
		sb.WriteString(`</table></body></html>`)
		pages = append(pages, sb.String())
	}
	return corpus.ParseHTML(pages)
}

func testScorer() *rank.Scorer {
	schema := stats.MustKDE([]int{2, 3, 3, 4}, stats.KDEOptions{Support: 64})
	align := stats.MustKDE([]int{0, 0, 1, 2}, stats.KDEOptions{Support: 256})
	return &rank.Scorer{
		Ann: rank.NewAnnotationModel(0.95, 0.30),
		Pub: &rank.PublicationModel{Schema: schema, Align: align},
	}
}

func xpathFactory(c *corpus.Corpus) (wrapper.Inductor, error) {
	return xpinduct.New(c, xpinduct.Options{}), nil
}

// testSpecs builds n healthy site specs.
func testSpecs(n int) []SiteSpec {
	scorer := testScorer()
	specs := make([]SiteSpec, n)
	for i := range specs {
		base := i * 100
		specs[i] = SiteSpec{
			Name:   fmt.Sprintf("site-%02d", i),
			Corpus: testSite(base),
			Annotator: annotate.NewDictionary("d", []string{
				fmt.Sprintf("STORE %04d", base+2),
				fmt.Sprintf("STORE %04d", base+7),
			}),
			NewInductor: xpathFactory,
			Config:      core.Config{Scorer: scorer},
		}
	}
	return specs
}

func TestLearnBatchLearnsEverySite(t *testing.T) {
	specs := testSpecs(6)
	batch, err := LearnBatch(context.Background(), specs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := batch.Stats
	if st.Sites != 6 || st.Learned != 6 || st.Failed != 0 || st.Skipped != 0 || st.Unstarted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.EnumCalls == 0 {
		t.Fatal("no enumeration calls counted")
	}
	if st.Wall <= 0 || st.Work <= 0 || st.MaxSite <= 0 {
		t.Fatalf("timing stats not populated: %+v", st)
	}
	for i, r := range batch.Sites {
		if r.Index != i || r.Name != specs[i].Name {
			t.Fatalf("result %d misaligned: %+v", i, r)
		}
		if r.Err != nil || r.Result == nil || r.Result.Best == nil {
			t.Fatalf("site %s: err=%v result=%v", r.Name, r.Err, r.Result)
		}
		// Each site's learned wrapper extracts exactly its 9 store names.
		if got := r.Result.Best.Wrapper.Extract().Count(); got != 9 {
			t.Fatalf("site %s extracted %d nodes, want 9", r.Name, got)
		}
	}
}

// TestLearnBatchDeterministicAcrossWorkers is the engine-level determinism
// guarantee: the same specs yield byte-identical per-site wrappers no
// matter the worker count.
func TestLearnBatchDeterministicAcrossWorkers(t *testing.T) {
	serial, err := LearnBatch(context.Background(), testSpecs(5), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := LearnBatch(context.Background(), testSpecs(5), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Sites {
			a, b := serial.Sites[i], par.Sites[i]
			if a.Result.Best.Wrapper.Rule() != b.Result.Best.Wrapper.Rule() {
				t.Fatalf("workers=%d site %d: rule %q != serial %q",
					workers, i, b.Result.Best.Wrapper.Rule(), a.Result.Best.Wrapper.Rule())
			}
			if !a.Result.Best.Wrapper.Extract().Equal(b.Result.Best.Wrapper.Extract()) {
				t.Fatalf("workers=%d site %d: extraction differs from serial", workers, i)
			}
			if len(a.Result.Candidates) != len(b.Result.Candidates) {
				t.Fatalf("workers=%d site %d: candidate count differs", workers, i)
			}
		}
	}
}

// TestLearnBatchIsolation checks that broken sites of every flavor — bad
// spec, failing factory, panicking factory, panicking inductor — fail in
// their own slot while the rest of the batch learns normally.
func TestLearnBatchIsolation(t *testing.T) {
	specs := testSpecs(6)
	specs[1].Corpus = nil // validation failure
	specs[2].NewInductor = func(c *corpus.Corpus) (wrapper.Inductor, error) {
		return nil, errors.New("boom: factory failed")
	}
	specs[3].NewInductor = func(c *corpus.Corpus) (wrapper.Inductor, error) {
		panic("factory panic")
	}
	specs[4].NewInductor = func(c *corpus.Corpus) (wrapper.Inductor, error) {
		return panicInductor{c: c}, nil
	}

	batch, err := LearnBatch(context.Background(), specs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := batch.Stats
	if st.Learned != 2 || st.Failed != 4 {
		t.Fatalf("stats = %+v, want 2 learned / 4 failed", st)
	}
	for _, i := range []int{0, 5} {
		if batch.Sites[i].Err != nil || batch.Sites[i].Result == nil {
			t.Fatalf("healthy site %d was disturbed: %+v", i, batch.Sites[i])
		}
	}
	for _, i := range []int{1, 2, 3, 4} {
		if batch.Sites[i].Err == nil {
			t.Fatalf("broken site %d has no error", i)
		}
	}
	if !strings.Contains(batch.Sites[3].Err.Error(), "panicked") {
		t.Fatalf("site 3 error should mention the panic: %v", batch.Sites[3].Err)
	}
	if got := len(batch.Failed()); got != 4 {
		t.Fatalf("Failed() = %d results, want 4", got)
	}
}

type panicInductor struct{ c *corpus.Corpus }

func (p panicInductor) Name() string           { return "panic" }
func (p panicInductor) Corpus() *corpus.Corpus { return p.c }
func (p panicInductor) Induce(labels *bitset.Set) (wrapper.Wrapper, error) {
	panic("induce panic")
}

func TestLearnBatchSkipsUnannotatedSites(t *testing.T) {
	specs := testSpecs(3)
	specs[1].Annotator = annotate.NewDictionary("empty", nil)
	batch, err := LearnBatch(context.Background(), specs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Stats.Skipped != 1 || batch.Stats.Learned != 2 {
		t.Fatalf("stats = %+v", batch.Stats)
	}
	if !batch.Sites[1].Skipped || batch.Sites[1].Err != nil {
		t.Fatalf("site 1 = %+v, want skipped", batch.Sites[1])
	}
}

func TestLearnBatchMinLabels(t *testing.T) {
	specs := testSpecs(1)
	nLabels := specs[0].Annotator.Annotate(specs[0].Corpus).Count()
	ok, err := LearnBatch(context.Background(), specs, Options{MinLabels: nLabels})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Stats.Learned != 1 || ok.Stats.Skipped != 0 {
		t.Fatalf("MinLabels=%d: stats = %+v, want learned", nLabels, ok.Stats)
	}
	strict, err := LearnBatch(context.Background(), specs, Options{MinLabels: nLabels + 1})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Stats.Skipped != 1 {
		t.Fatalf("MinLabels=%d: stats = %+v, want 1 skipped", nLabels+1, strict.Stats)
	}
}

func TestLearnBatchPrecomputedLabels(t *testing.T) {
	specs := testSpecs(1)
	labels := specs[0].Annotator.Annotate(specs[0].Corpus)
	specs[0].Annotator = nil
	specs[0].Labels = labels
	batch, err := LearnBatch(context.Background(), specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Stats.Learned != 1 {
		t.Fatalf("stats = %+v", batch.Stats)
	}
	if batch.Sites[0].Labels != labels {
		t.Fatal("precomputed labels were not used")
	}
}

// TestLearnBatchCancellation cancels mid-batch from a progress callback:
// the batch must stop claiming sites, mark unstarted ones with the ctx
// error, and surface the cancellation as the batch error.
func TestLearnBatchCancellation(t *testing.T) {
	const n = 24
	specs := testSpecs(n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := New(Options{
		Workers: 2,
		Progress: func(done, total int, r SiteResult) {
			if done == 2 {
				cancel()
			}
		},
	})
	batch, err := eng.LearnBatch(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := batch.Stats
	if st.Unstarted == 0 {
		t.Fatal("cancellation left no site unstarted")
	}
	if st.Learned+st.Failed+st.Skipped+st.Unstarted != n {
		t.Fatalf("stats do not add up: %+v", st)
	}
	for _, r := range batch.Sites {
		if r.Result == nil && r.Err == nil && !r.Skipped {
			t.Fatalf("site %d has neither result nor error: %+v", r.Index, r)
		}
		if r.Err != nil && r.Result == nil && r.Elapsed == 0 {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("unstarted site %d error = %v, want context.Canceled", r.Index, r.Err)
			}
		}
	}
}

func TestLearnBatchProgressOrdering(t *testing.T) {
	specs := testSpecs(8)
	var calls atomic.Int32
	last := 0
	eng := New(Options{
		Workers: 4,
		Progress: func(done, total int, r SiteResult) {
			calls.Add(1)
			if done != last+1 || total != 8 {
				t.Errorf("progress (%d,%d) after %d", done, total, last)
			}
			last = done
		},
	})
	if _, err := eng.LearnBatch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 8 {
		t.Fatalf("progress called %d times, want 8", calls.Load())
	}
}

func TestLearnBatchEmpty(t *testing.T) {
	batch, err := LearnBatch(context.Background(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Sites) != 0 || batch.Stats.Sites != 0 {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	st := Stats{Sites: 10, Wall: 2e9, Work: 8e9}
	if got := st.Speedup(); got < 3.99 || got > 4.01 {
		t.Fatalf("Speedup() = %v, want 4", got)
	}
	if got := st.SitesPerSec(); got < 4.99 || got > 5.01 {
		t.Fatalf("SitesPerSec() = %v, want 5", got)
	}
	if s := st.String(); !strings.Contains(s, "speedup=4.00x") {
		t.Fatalf("String() = %q", s)
	}
	var zero Stats
	if zero.Speedup() != 0 || zero.SitesPerSec() != 0 {
		t.Fatal("zero stats should yield zero rates")
	}
}

func TestLearnBatchIsolatesNestedScoringPanic(t *testing.T) {
	// A panic during parallel candidate scoring happens on a goroutine of
	// the site's nested scoring pool, not the engine worker that holds the
	// recover — par must rethrow it on the caller for the site's isolation
	// to hold. A Scorer with a nil publication model panics inside Score.
	specs := testSpecs(4)
	specs[2].Config = core.Config{
		Scorer:       &rank.Scorer{Ann: rank.NewAnnotationModel(0.95, 0.30)},
		ScoreWorkers: 4,
	}
	batch, err := LearnBatch(context.Background(), specs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Sites[2].Err == nil || !strings.Contains(batch.Sites[2].Err.Error(), "panicked") {
		t.Fatalf("site 2 should fail with a recovered panic, got: %v", batch.Sites[2].Err)
	}
	for _, i := range []int{0, 1, 3} {
		if batch.Sites[i].Err != nil {
			t.Fatalf("healthy site %d was disturbed: %v", i, batch.Sites[i].Err)
		}
	}
	if batch.Stats.Learned != 3 || batch.Stats.Failed != 1 {
		t.Fatalf("stats = %+v", batch.Stats)
	}
}
