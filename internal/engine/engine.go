// Package engine is the concurrent multi-site learning engine: the paper's
// noise-tolerant induction pipeline (annotate → enumerate → rank) applied
// the way Dalvi et al. actually deploy it — as a large batch over hundreds
// of independent websites. Each site is an isolated unit of work: the batch
// runs on a bounded worker pool, a failing (or even panicking) site yields
// an error in its own slot without disturbing the rest, cancellation stops
// the batch at the next site boundary, and the engine aggregates throughput
// and latency statistics so speedups are measurable rather than anecdotal.
package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"autowrap/internal/annotate"
	"autowrap/internal/bitset"
	"autowrap/internal/core"
	"autowrap/internal/corpus"
	"autowrap/internal/par"
	"autowrap/internal/wrapper"
)

// SiteSpec describes one site of a batch. Corpus plus an inductor factory
// are required; labels come from Labels when set, otherwise from running
// Annotator over the corpus.
type SiteSpec struct {
	// Name identifies the site in results and error messages.
	Name string
	// Corpus is the site's parsed page set.
	Corpus *corpus.Corpus
	// Annotator produces the site's noisy labels. Ignored when Labels is
	// non-nil.
	Annotator annotate.Annotator
	// Labels are precomputed noisy labels (optional).
	Labels *bitset.Set
	// NewInductor builds the site's wrapper inductor; inductors are bound
	// to a corpus, so each site needs its own.
	NewInductor func(c *corpus.Corpus) (wrapper.Inductor, error)
	// Config is the per-site learning configuration (scorer, ranking
	// variant, enumeration algorithm and bounds).
	Config core.Config
}

// validate reports a structural problem with the spec, if any.
func (s *SiteSpec) validate() error {
	switch {
	case s.Corpus == nil:
		return fmt.Errorf("engine: site %q: Corpus is nil", s.Name)
	case s.NewInductor == nil:
		return fmt.Errorf("engine: site %q: NewInductor is nil", s.Name)
	case s.Labels == nil && s.Annotator == nil:
		return fmt.Errorf("engine: site %q: need Labels or Annotator", s.Name)
	case s.Config.Scorer == nil:
		return fmt.Errorf("engine: site %q: Config.Scorer is nil", s.Name)
	}
	return nil
}

// SiteResult is one site's outcome. Exactly one of Result/Err/Skipped
// describes the outcome; Labels is set whenever annotation ran.
type SiteResult struct {
	// Name and Index echo the spec.
	Name  string
	Index int
	// Corpus echoes the spec's corpus, so downstream consumers (the
	// wrapper store computing a learn-time health profile, accuracy
	// evaluation) can interpret the winner's ordinal extraction without
	// re-threading the specs.
	Corpus *corpus.Corpus
	// Labels are the noisy labels the site was learned from.
	Labels *bitset.Set
	// Result is the ranked wrapper space (nil on error or skip).
	Result *core.Result
	// Err is the site's failure, including recovered panics and — for
	// sites never started — the batch's cancellation cause.
	Err error
	// Skipped marks sites whose label count fell below Options.MinLabels.
	Skipped bool
	// Elapsed is the site's wall-clock learning latency.
	Elapsed time.Duration
}

// Stats aggregates a batch run.
type Stats struct {
	// Sites = Learned + Failed + Skipped + Unstarted.
	Sites, Learned, Failed, Skipped, Unstarted int
	// Workers is the effective pool size used.
	Workers int
	// Wall is the batch's wall-clock time; Work is the sum of per-site
	// latencies (the serial-equivalent time). Work/Wall is the measured
	// pool speedup.
	Wall, Work time.Duration
	// MaxSite is the slowest single site's latency — the lower bound any
	// worker count can reach.
	MaxSite time.Duration
	// EnumCalls totals the inductor calls across learned sites.
	EnumCalls int64
}

// SitesPerSec is the batch throughput over started sites.
func (s Stats) SitesPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Sites-s.Unstarted) / s.Wall.Seconds()
}

// Speedup is the measured parallel speedup: serial-equivalent work time
// over wall time.
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Work) / float64(s.Wall)
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"sites=%d learned=%d failed=%d skipped=%d unstarted=%d workers=%d wall=%v work=%v speedup=%.2fx sites/sec=%.2f",
		s.Sites, s.Learned, s.Failed, s.Skipped, s.Unstarted, s.Workers,
		s.Wall.Round(time.Millisecond), s.Work.Round(time.Millisecond),
		s.Speedup(), s.SitesPerSec())
}

// BatchResult is the outcome of one LearnBatch run: one SiteResult per
// input spec, index-aligned, plus aggregate stats.
type BatchResult struct {
	Sites []SiteResult
	Stats Stats
}

// Failed returns the results with a non-nil Err.
func (b *BatchResult) Failed() []SiteResult {
	var out []SiteResult
	for _, r := range b.Sites {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Options configures an Engine.
type Options struct {
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int
	// MinLabels skips sites whose annotator yields fewer labels (default
	// 1: learn whenever there is any label at all). The paper's accuracy
	// experiments use 2 — a single label carries no list signal.
	MinLabels int
	// Progress, when set, is called after each site completes (in
	// completion order, serialized by the engine). done counts completed
	// sites so far.
	Progress func(done, total int, r SiteResult)
}

// Engine is a reusable multi-site batch learner. The zero value is valid
// and uses GOMAXPROCS workers.
type Engine struct {
	opt Options
}

// New builds an engine with the given options.
func New(opt Options) *Engine {
	if opt.MinLabels <= 0 {
		opt.MinLabels = 1
	}
	return &Engine{opt: opt}
}

// LearnBatch learns every site concurrently on the engine's worker pool.
// The returned BatchResult always has one entry per spec (index-aligned);
// per-site failures — bad specs, annotators with too few labels, inductor
// or learning errors, panics — land in that site's SiteResult.Err/Skipped
// and never abort the batch. The error return is reserved for batch-level
// cancellation: when ctx is done before every site finished, LearnBatch
// stops claiming new sites, marks the unstarted ones with ctx's error, and
// returns that error alongside the partial results.
func (e *Engine) LearnBatch(ctx context.Context, specs []SiteSpec) (*BatchResult, error) {
	opt := e.opt
	if opt.MinLabels <= 0 {
		opt.MinLabels = 1
	}
	batch := &BatchResult{Sites: make([]SiteResult, len(specs))}
	batch.Stats.Sites = len(specs)
	batch.Stats.Workers = par.Workers(opt.Workers, len(specs))

	started := make([]bool, len(specs))
	var mu sync.Mutex // guards progress ordering and the done counter
	done := 0

	start := time.Now()
	ctxErr := par.ForContext(ctx, len(specs), opt.Workers, func(i int) {
		started[i] = true
		batch.Sites[i] = learnSite(i, &specs[i], opt.MinLabels)
		if opt.Progress != nil {
			mu.Lock()
			done++
			opt.Progress(done, len(specs), batch.Sites[i])
			mu.Unlock()
		}
	})
	batch.Stats.Wall = time.Since(start)

	for i := range batch.Sites {
		r := &batch.Sites[i]
		if !started[i] {
			r.Name, r.Index = specs[i].Name, i
			r.Err = fmt.Errorf("engine: site %q not started: %w", specs[i].Name, ctxErr)
			batch.Stats.Unstarted++
			continue
		}
		batch.Stats.Work += r.Elapsed
		if r.Elapsed > batch.Stats.MaxSite {
			batch.Stats.MaxSite = r.Elapsed
		}
		switch {
		case r.Skipped:
			batch.Stats.Skipped++
		case r.Err != nil:
			batch.Stats.Failed++
		default:
			batch.Stats.Learned++
			batch.Stats.EnumCalls += r.Result.EnumCalls
		}
	}
	return batch, ctxErr
}

// learnSite runs the full per-site pipeline with panic isolation.
func learnSite(index int, spec *SiteSpec, minLabels int) (out SiteResult) {
	out.Name, out.Index = spec.Name, index
	start := time.Now()
	defer func() {
		out.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			out.Result, out.Skipped = nil, false
			out.Err = fmt.Errorf("engine: site %q panicked: %v\n%s",
				spec.Name, p, debug.Stack())
		}
	}()
	if err := spec.validate(); err != nil {
		out.Err = err
		return
	}
	out.Corpus = spec.Corpus
	labels := spec.Labels
	if labels == nil {
		labels = spec.Annotator.Annotate(spec.Corpus)
	}
	out.Labels = labels
	if labels.Count() < minLabels {
		out.Skipped = true
		return
	}
	ind, err := spec.NewInductor(spec.Corpus)
	if err != nil {
		out.Err = fmt.Errorf("engine: site %q: inductor: %w", spec.Name, err)
		return
	}
	res, err := core.Learn(ind, labels, spec.Config)
	if err != nil {
		out.Err = fmt.Errorf("engine: site %q: learn: %w", spec.Name, err)
		return
	}
	out.Result = res
	return
}

// LearnBatch is the package-level convenience: one batch on a fresh engine.
func LearnBatch(ctx context.Context, specs []SiteSpec, opt Options) (*BatchResult, error) {
	return New(opt).LearnBatch(ctx, specs)
}
