// Package drift closes the wrapper lifecycle loop: learn → store → serve →
// monitor → relearn → promote/rollback. A wrapper learned today silently
// decays as its site changes templates (Ferrara & Baumgartner's
// self-repairing wrappers problem); this package detects the decay from
// serving-side health signals and dispatches validated re-learning.
//
// The two halves:
//
//   - Monitor aggregates the per-page health signals the extraction runtime
//     emits (internal/extract's Options.OnResult tap) into per-site sliding
//     windows and trips a site when the window violates the Policy: too many
//     empty extractions, too many failures, or a record-count collapse
//     relative to the wrapper's learn-time Profile (stored with the wrapper
//     in internal/store). The observation path sits on the serving fast
//     path, so it is allocation-free: a preallocated ring buffer plus O(1)
//     running sums under a per-site mutex.
//
//   - Repairer answers a trip: it re-learns the site through
//     internal/engine on the freshest pages, stages the winner as a new
//     unpromoted version in the store (store.PutCandidate), validates it
//     against the incumbent on a held-out sample of those same pages, and
//     only promotes when the candidate beats the incumbent — serving never
//     flips to an unvalidated wrapper, and the incumbent stays one
//     store.Rollback away.
//
// A trip latches: once a site trips it stays tripped until a repair (or an
// explicit Reset) re-arms it, so a flapping site cannot dispatch concurrent
// re-learns.
package drift

import (
	"fmt"
	"sort"
	"sync"

	"autowrap/internal/extract"
	"autowrap/internal/store"
)

// Policy configures when a site's sliding window trips. The zero value
// selects usable defaults (window 32, trip after 8 pages at >50% empties,
// >50% failures, or mean records below 50% of the learn-time profile).
type Policy struct {
	// Window is the sliding-window size in pages (default 32).
	Window int
	// MinPages is the minimum number of observed pages before the window
	// may trip (default 8): a single bad page proves nothing.
	MinPages int
	// MaxEmptyFrac trips the site when the fraction of successful-but-empty
	// pages in the window exceeds it (default 0.5).
	MaxEmptyFrac float64
	// MaxFailFrac trips the site when the fraction of failed pages in the
	// window exceeds it (default 0.5).
	MaxFailFrac float64
	// CollapseFrac trips the site when the window's mean record count drops
	// below CollapseFrac times the learn-time profile mean (default 0.5).
	// Ignored for sites registered without a profile.
	CollapseFrac float64
	// Cooldown is the number of observations after a Reset (i.e. after a
	// repair) during which trip checks stay disarmed, letting the window
	// refill with post-repair pages (default: Window).
	Cooldown int
	// OnTrip, when set, is called once per trip — the moment a site's
	// window first violates the policy — with the site name and the stats
	// that tripped it. It runs on the serving worker that observed the
	// tripping page, outside the site's lock; keep it cheap (log, enqueue a
	// repair) and concurrency-safe.
	OnTrip func(site string, s Stats)
}

func (p Policy) withDefaults() Policy {
	if p.Window <= 0 {
		p.Window = 32
	}
	if p.MinPages <= 0 {
		p.MinPages = 8
	}
	if p.MinPages > p.Window {
		p.MinPages = p.Window
	}
	if p.MaxEmptyFrac <= 0 {
		p.MaxEmptyFrac = 0.5
	}
	if p.MaxFailFrac <= 0 {
		p.MaxFailFrac = 0.5
	}
	if p.CollapseFrac <= 0 {
		p.CollapseFrac = 0.5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = p.Window
	}
	return p
}

// Stats is a point-in-time snapshot of one site's health window.
type Stats struct {
	// Site names the monitored site.
	Site string `json:"site"`
	// Pages counts every observation since registration; WindowPages the
	// observations currently in the sliding window.
	Pages       int64 `json:"pages"`
	WindowPages int64 `json:"window_pages"`
	// EmptyFrac, FailFrac and MeanRecords describe the current window.
	EmptyFrac   float64 `json:"empty_frac"`
	FailFrac    float64 `json:"fail_frac"`
	MeanRecords float64 `json:"mean_records"`
	// ProfileMean is the learn-time mean record count (0 when the site was
	// registered without a profile).
	ProfileMean float64 `json:"profile_mean"`
	// Tripped reports the latched trip state; Trips counts lifetime trips.
	Tripped bool  `json:"tripped"`
	Trips   int64 `json:"trips"`
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	state := "healthy"
	if s.Tripped {
		state = "TRIPPED"
	}
	return fmt.Sprintf(
		"site=%s %s pages=%d window=%d empty=%.2f fail=%.2f mean-records=%.2f profile-mean=%.2f trips=%d",
		s.Site, state, s.Pages, s.WindowPages, s.EmptyFrac, s.FailFrac,
		s.MeanRecords, s.ProfileMean, s.Trips)
}

// pageKind classifies one observed page in the ring buffer.
type pageKind uint8

const (
	kindOK pageKind = iota
	kindEmpty
	kindFailed
)

// SiteHealth is one site's sliding-window health state. Build it through
// Monitor.Register; Observe is safe for concurrent use and allocation-free
// (hook it into extract.Options.OnResult on the serving fast path).
type SiteHealth struct {
	site   string
	policy Policy
	onTrip func(site string, s Stats)

	mu          sync.Mutex
	profileMean float64 // 0 = no profile
	records     []int32 // ring, len == policy.Window
	kinds       []pageKind
	n           int // filled entries, <= Window
	next        int // ring write cursor
	sumRecords  int64
	empties     int
	fails       int
	cooldown    int
	tripped     bool
	trips       int64
	total       int64
}

// Observe feeds one completed page's extraction outcome into the window.
// Its signature matches extract.Options.OnResult, so a runtime can be wired
// directly: opt.OnResult = health.Observe.
func (h *SiteHealth) Observe(res *extract.Result) {
	h.Record(len(res.Texts), res.Err != nil)
}

// Record is the signal core: records extracted on one page, or failure.
// O(1), allocation-free, one mutex acquisition.
func (h *SiteHealth) Record(records int, failed bool) {
	var fire func(string, Stats)
	var snap Stats
	h.mu.Lock()
	h.total++
	// Evict the slot being overwritten once the ring is full.
	if h.n == len(h.records) {
		old := h.records[h.next]
		h.sumRecords -= int64(old)
		switch h.kinds[h.next] {
		case kindEmpty:
			h.empties--
		case kindFailed:
			h.fails--
		}
	} else {
		h.n++
	}
	kind := kindOK
	switch {
	case failed:
		kind = kindFailed
		records = 0
	case records == 0:
		kind = kindEmpty
	}
	h.records[h.next] = int32(records)
	h.kinds[h.next] = kind
	h.sumRecords += int64(records)
	switch kind {
	case kindEmpty:
		h.empties++
	case kindFailed:
		h.fails++
	}
	h.next++
	if h.next == len(h.records) {
		h.next = 0
	}
	if h.cooldown > 0 {
		h.cooldown--
	} else if !h.tripped && h.n >= h.policy.MinPages && h.violated() {
		h.tripped = true
		h.trips++
		if h.onTrip != nil {
			fire, snap = h.onTrip, h.statsLocked()
		}
	}
	h.mu.Unlock()
	if fire != nil {
		fire(snap.Site, snap)
	}
}

// violated reports whether the current window breaks the policy. Called
// with the lock held.
func (h *SiteHealth) violated() bool {
	n := float64(h.n)
	if float64(h.empties)/n > h.policy.MaxEmptyFrac {
		return true
	}
	if float64(h.fails)/n > h.policy.MaxFailFrac {
		return true
	}
	if h.profileMean > 0 {
		if float64(h.sumRecords)/n < h.policy.CollapseFrac*h.profileMean {
			return true
		}
	}
	return false
}

// Tripped reports the latched trip state.
func (h *SiteHealth) Tripped() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tripped
}

// Stats snapshots the window.
func (h *SiteHealth) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.statsLocked()
}

func (h *SiteHealth) statsLocked() Stats {
	s := Stats{
		Site:        h.site,
		Pages:       h.total,
		WindowPages: int64(h.n),
		ProfileMean: h.profileMean,
		Tripped:     h.tripped,
		Trips:       h.trips,
	}
	if h.n > 0 {
		n := float64(h.n)
		s.EmptyFrac = float64(h.empties) / n
		s.FailFrac = float64(h.fails) / n
		s.MeanRecords = float64(h.sumRecords) / n
	}
	return s
}

// Reset clears the window and the latched trip, installs the new
// learn-time profile (nil keeps the previous one), and arms the cooldown so
// the freshly promoted wrapper gets a full window of post-repair pages
// before trip checks resume. The repairer calls this after a promotion.
func (h *SiteHealth) Reset(profile *store.Profile) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n, h.next = 0, 0
	h.sumRecords, h.empties, h.fails = 0, 0, 0
	h.tripped = false
	h.cooldown = h.policy.Cooldown
	if profile != nil {
		h.profileMean = profile.MeanRecords
	}
}

// Monitor is the per-site health registry: one SiteHealth per served site,
// all under one Policy. It is safe for concurrent use; the per-site
// observation paths never contend with each other.
type Monitor struct {
	policy Policy

	mu    sync.RWMutex
	sites map[string]*SiteHealth
}

// NewMonitor builds a monitor; zero Policy fields select defaults.
func NewMonitor(policy Policy) *Monitor {
	return &Monitor{
		policy: policy.withDefaults(),
		sites:  make(map[string]*SiteHealth),
	}
}

// Register adds a site under the monitor's policy, calibrated against the
// wrapper's learn-time profile (nil disables the collapse check, leaving
// empties and failures). Registering an existing site returns the existing
// health untouched — wire the same SiteHealth into every runtime serving
// the site.
func (m *Monitor) Register(site string, profile *store.Profile) *SiteHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.sites[site]; ok {
		return h
	}
	h := &SiteHealth{
		site:    site,
		policy:  m.policy,
		onTrip:  m.policy.OnTrip,
		records: make([]int32, m.policy.Window),
		kinds:   make([]pageKind, m.policy.Window),
	}
	if profile != nil {
		h.profileMean = profile.MeanRecords
	}
	m.sites[site] = h
	return h
}

// SetOnTrip installs (or replaces) the trip hook on the monitor's policy
// and on every already-registered site. The hook fires once per trip with
// the site name and the tripping stats, on the serving worker that
// observed the tripping page — keep it cheap and concurrency-safe (log,
// enqueue a repair job). A maintenance plane built after the monitor (the
// usual construction order in a serving daemon: store → monitor →
// dispatcher → repairer → job queue) attaches itself here.
func (m *Monitor) SetOnTrip(fn func(site string, s Stats)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy.OnTrip = fn
	for _, h := range m.sites {
		h.mu.Lock()
		h.onTrip = fn
		h.mu.Unlock()
	}
}

// Site returns the registered health for the site, if any.
func (m *Monitor) Site(site string) (*SiteHealth, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.sites[site]
	return h, ok
}

// Tripped lists the currently tripped sites, sorted — the repair loop's
// work queue.
func (m *Monitor) Tripped() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for name, h := range m.sites {
		if h.Tripped() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every registered site's stats, keyed by site.
func (m *Monitor) Snapshot() map[string]Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]Stats, len(m.sites))
	for name, h := range m.sites {
		out[name] = h.Stats()
	}
	return out
}
