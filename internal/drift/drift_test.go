package drift_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"autowrap/internal/drift"
	"autowrap/internal/extract"
	"autowrap/internal/store"
	"autowrap/internal/xpinduct"
)

func profile(mean float64) *store.Profile {
	return &store.Profile{Pages: 8, MeanRecords: mean}
}

// feed pushes n healthy pages with the given record count.
func feed(h *drift.SiteHealth, n, records int) {
	for i := 0; i < n; i++ {
		h.Record(records, false)
	}
}

func TestTripOnEmptyCollapse(t *testing.T) {
	m := drift.NewMonitor(drift.Policy{Window: 16, MinPages: 8})
	h := m.Register("shop", profile(5))
	feed(h, 20, 5)
	if h.Tripped() {
		t.Fatalf("healthy traffic tripped: %s", h.Stats())
	}
	// The site's template changes: every page now extracts nothing. The
	// window must trip once empties dominate, and the trip must latch.
	feed(h, 16, 0)
	if !h.Tripped() {
		t.Fatalf("empty collapse did not trip: %s", h.Stats())
	}
	s := h.Stats()
	if s.Trips != 1 || !s.Tripped {
		t.Fatalf("stats = %s", s)
	}
	feed(h, 50, 0)
	if got := h.Stats().Trips; got != 1 {
		t.Fatalf("trip did not latch: %d trips", got)
	}
	if got := m.Tripped(); len(got) != 1 || got[0] != "shop" {
		t.Fatalf("monitor tripped list = %v", got)
	}
}

func TestTripOnRecordCountCollapse(t *testing.T) {
	m := drift.NewMonitor(drift.Policy{Window: 16, MinPages: 8, CollapseFrac: 0.5})
	h := m.Register("shop", profile(6))
	// Pages still extract, but only a sliver of what the wrapper used to
	// find — the partial-breakage signal empties alone would miss.
	feed(h, 16, 2)
	if !h.Tripped() {
		t.Fatalf("record collapse (2 vs profile 6) did not trip: %s", h.Stats())
	}
	// Without a profile the collapse check is disarmed.
	h2 := m.Register("no-profile", nil)
	feed(h2, 32, 1)
	if h2.Tripped() {
		t.Fatalf("profile-less site tripped on low counts: %s", h2.Stats())
	}
}

func TestTripOnFailures(t *testing.T) {
	m := drift.NewMonitor(drift.Policy{Window: 8, MinPages: 4})
	h := m.Register("shop", profile(4))
	for i := 0; i < 8; i++ {
		h.Record(0, true)
	}
	if !h.Tripped() {
		t.Fatalf("failure storm did not trip: %s", h.Stats())
	}
}

func TestMinPagesAndCooldown(t *testing.T) {
	m := drift.NewMonitor(drift.Policy{Window: 16, MinPages: 8, Cooldown: 10})
	h := m.Register("shop", profile(5))
	// Below MinPages nothing trips, however bad the pages.
	feed(h, 7, 0)
	if h.Tripped() {
		t.Fatal("tripped below MinPages")
	}
	feed(h, 2, 0)
	if !h.Tripped() {
		t.Fatal("did not trip at MinPages")
	}
	// Reset re-arms with a cooldown: the next Cooldown observations are
	// grace, then checks resume against the new profile.
	h.Reset(profile(5))
	if h.Tripped() {
		t.Fatal("reset did not clear the trip")
	}
	feed(h, 10, 0) // eaten by cooldown
	if h.Tripped() {
		t.Fatal("tripped during cooldown")
	}
	feed(h, 16, 0)
	if !h.Tripped() {
		t.Fatalf("did not re-trip after cooldown: %s", h.Stats())
	}
}

func TestOnTripFiresOnce(t *testing.T) {
	var fired []string
	m := drift.NewMonitor(drift.Policy{Window: 8, MinPages: 4, OnTrip: func(site string, s drift.Stats) {
		fired = append(fired, fmt.Sprintf("%s@%d", site, s.Pages))
	}})
	h := m.Register("shop", profile(5))
	feed(h, 12, 0)
	if len(fired) != 1 || !strings.HasPrefix(fired[0], "shop@") {
		t.Fatalf("OnTrip calls = %v, want exactly one for shop", fired)
	}
}

// TestWindowSlides checks eviction: a bad burst that has rolled out of the
// window no longer counts against the site.
func TestWindowSlides(t *testing.T) {
	m := drift.NewMonitor(drift.Policy{Window: 8, MinPages: 8, MaxEmptyFrac: 0.6})
	h := m.Register("shop", profile(0)) // no collapse check (mean 0)
	feed(h, 4, 0)
	feed(h, 20, 5)
	s := h.Stats()
	if s.EmptyFrac != 0 || s.MeanRecords != 5 {
		t.Fatalf("window did not slide: %s", s)
	}
	if s.Pages != 24 || s.WindowPages != 8 {
		t.Fatalf("counters wrong: %s", s)
	}
	if h.Tripped() {
		t.Fatal("slid-out burst tripped the site")
	}
}

// TestObserveIsAllocationFree pins the hot-path contract: one observation
// performs zero heap allocations.
func TestObserveIsAllocationFree(t *testing.T) {
	m := drift.NewMonitor(drift.Policy{})
	h := m.Register("shop", profile(5))
	res := &extract.Result{Texts: []string{"a", "b", "c"}}
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(res) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f per call", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(0, false) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f per call", allocs)
	}
}

// TestMonitorWiredIntoRuntime runs the real serving path: an extraction
// runtime with the site's health observer as its OnResult tap, fed pages
// the wrapper cannot extract from, must trip the monitor.
func TestMonitorWiredIntoRuntime(t *testing.T) {
	p, err := xpinduct.CompileRule(`//td[@class='v']/text()`)
	if err != nil {
		t.Fatal(err)
	}
	m := drift.NewMonitor(drift.Policy{Window: 8, MinPages: 4})
	h := m.Register("shop", profile(3))
	rt := extract.New(p, extract.Options{Workers: 4, OnResult: h.Observe})

	good := make([]extract.Page, 8)
	for i := range good {
		good[i] = extract.Page{ID: fmt.Sprintf("g%d", i), HTML: `<html><body><table>` +
			`<tr><td class="v">a</td></tr><tr><td class="v">b</td></tr><tr><td class="v">c</td></tr>` +
			`</table></body></html>`}
	}
	if _, err := rt.Run(context.Background(), good); err != nil {
		t.Fatal(err)
	}
	if h.Tripped() {
		t.Fatalf("healthy serving tripped: %s", h.Stats())
	}
	// Template change: the class is gone, every extraction comes up empty.
	bad := make([]extract.Page, 8)
	for i := range bad {
		bad[i] = extract.Page{ID: fmt.Sprintf("b%d", i), HTML: `<html><body><table>` +
			`<tr><td class="w">a</td></tr></table></body></html>`}
	}
	if _, err := rt.Run(context.Background(), bad); err != nil {
		t.Fatal(err)
	}
	if !h.Tripped() {
		t.Fatalf("runtime-fed monitor did not trip: %s", h.Stats())
	}
	if hc := rt.Health(); hc.Empty < 8 {
		t.Fatalf("runtime health missed the empties: %+v", hc)
	}
}

func TestRegisterIsIdempotent(t *testing.T) {
	m := drift.NewMonitor(drift.Policy{})
	a := m.Register("s", profile(5))
	b := m.Register("s", profile(9))
	if a != b {
		t.Fatal("Register returned a second health for the same site")
	}
	if _, ok := m.Site("s"); !ok {
		t.Fatal("Site lookup failed")
	}
	if _, ok := m.Site("missing"); ok {
		t.Fatal("Site invented a registration")
	}
	if snap := m.Snapshot(); len(snap) != 1 || snap["s"].Site != "s" {
		t.Fatalf("snapshot = %+v", snap)
	}
}
