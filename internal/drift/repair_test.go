package drift_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"autowrap/internal/annotate"
	"autowrap/internal/core"
	"autowrap/internal/corpus"
	"autowrap/internal/dataset"
	"autowrap/internal/drift"
	"autowrap/internal/engine"
	"autowrap/internal/extract"
	"autowrap/internal/gen"
	"autowrap/internal/rank"
	"autowrap/internal/stats"
	"autowrap/internal/store"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// genericScorer mirrors autowrap.GenericModels (internal packages cannot
// import the facade).
func genericScorer() *rank.Scorer {
	schema := stats.MustKDE([]int{2, 3, 3, 4, 4, 5, 5, 6}, stats.KDEOptions{Support: 64})
	align := stats.MustKDE([]int{0, 0, 0, 1, 1, 2, 3, 5}, stats.KDEOptions{Support: 256})
	return &rank.Scorer{
		Ann: rank.NewAnnotationModel(0.95, 0.30),
		Pub: &rank.PublicationModel{Schema: schema, Align: align},
	}
}

// dealersPair builds one dealer site twice: pristine, and with its template
// mutated while the record data stays identical.
func dealersPair(t *testing.T, seed int64, numPages, driftSteps int) (clean, mutated *gen.Site, annot annotate.Annotator) {
	t.Helper()
	opts := dataset.DealersOptions{NumSites: 1, NumPages: numPages, Seed: seed}
	ds, err := dataset.Dealers(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Drift = driftSteps
	dsm, err := dataset.Dealers(opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Sites[0], dsm.Sites[0], ds.Annotator
}

// learnSpec is the shared re-learning recipe: dictionary annotator, xpath
// inductor, generic models — the same pipeline the site was first learned
// with.
func learnSpec(annot annotate.Annotator) drift.LearnSpec {
	return func(site string, c *corpus.Corpus) (engine.SiteSpec, error) {
		return engine.SiteSpec{
			Annotator: annot,
			NewInductor: func(c *corpus.Corpus) (wrapper.Inductor, error) {
				return xpinduct.New(c, xpinduct.Options{}), nil
			},
			Config: core.Config{Scorer: genericScorer()},
		}, nil
	}
}

// learnInto learns the site from scratch and stores + promotes the winner,
// returning the active entry.
func learnInto(t *testing.T, s *store.Store, site *gen.Site, annot annotate.Annotator) store.Entry {
	t.Helper()
	spec, _ := learnSpec(annot)(site.Name, site.Corpus)
	spec.Name, spec.Corpus = site.Name, site.Corpus
	batch, err := engine.LearnBatch(context.Background(), []engine.SiteSpec{spec}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Active(site.Name)
	if !ok {
		t.Fatalf("site %s has no active version after learn", site.Name)
	}
	return e
}

// htmlsOf returns the site's raw pages.
func htmlsOf(site *gen.Site) []string {
	out := make([]string, len(site.Corpus.Pages))
	for i, p := range site.Corpus.Pages {
		out[i] = p.HTML
	}
	return out
}

// extractAll applies a compiled wrapper to every page of a site, returning
// the trimmed record texts in document order.
func extractAll(p wrapper.Portable, site *gen.Site) []string {
	var out []string
	for _, page := range site.Corpus.Pages {
		for _, n := range p.ApplyPage(page.Root) {
			out = append(out, strings.TrimSpace(n.Data))
		}
	}
	return out
}

// goldNames returns the site's gold "name" values in ordinal (document)
// order.
func goldNames(site *gen.Site) []string {
	var out []string
	site.Gold["name"].ForEach(func(ord int) {
		out = append(out, strings.TrimSpace(site.Corpus.TextContent(ord)))
	})
	return out
}

// TestLifecycleEndToEnd is the acceptance path: learn on clean pages,
// mutate the template, serve until the monitor trips, auto-relearn, and
// assert the promoted version extracts correctly while the old version
// remains retrievable for rollback.
func TestLifecycleEndToEnd(t *testing.T) {
	clean, mutated, annot := dealersPair(t, 1001, 16, 2)

	// Learn + store + promote v1 from the pristine site.
	s := store.New()
	v1 := learnInto(t, s, clean, annot)
	if v1.Version != 1 || v1.Profile == nil {
		t.Fatalf("v1 = %+v", v1)
	}
	served, err := v1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := extractAll(served, clean), goldNames(clean); !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 on clean pages: got %d records, want %d gold", len(got), len(want))
	}

	// Serve the mutated site through a monitored runtime until it trips.
	monitor := drift.NewMonitor(drift.Policy{Window: 8, MinPages: 4})
	health := monitor.Register(clean.Name, v1.Profile)
	rt := extract.New(served, extract.Options{Workers: 4, OnResult: health.Observe})
	var pages []extract.Page
	for i, html := range htmlsOf(mutated) {
		pages = append(pages, extract.Page{ID: string(rune('a' + i)), HTML: html})
	}
	if _, err := rt.Run(context.Background(), pages); err != nil {
		t.Fatal(err)
	}
	if !health.Tripped() {
		t.Fatalf("serving the mutated template did not trip: %s (runtime %+v)",
			health.Stats(), rt.Health())
	}

	// Auto-relearn on the fresh (mutated) pages.
	rep := &drift.Repairer{
		Store:   s,
		Spec:    learnSpec(annot),
		Monitor: monitor,
	}
	report, err := rep.Repair(context.Background(), clean.Name, htmlsOf(mutated))
	if err != nil {
		t.Fatal(err)
	}
	if !report.Promoted || !report.HadIncumbent {
		t.Fatalf("repair did not promote: %s", report)
	}
	if report.Candidate.Version != 2 || report.Candidate.Profile == nil {
		t.Fatalf("candidate = %+v", report.Candidate)
	}
	if !beats(report.CandidateEval, report.IncumbentEval) {
		t.Fatalf("promoted without beating the incumbent: %s", report)
	}

	// The promoted version extracts the mutated site correctly.
	active, ok := s.Active(clean.Name)
	if !ok || active.Version != 2 {
		t.Fatalf("active after repair = %+v, %v", active, ok)
	}
	repaired, err := active.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := extractAll(repaired, mutated), goldNames(mutated); !reflect.DeepEqual(got, want) {
		t.Fatalf("repaired wrapper on mutated pages: got %v..., want %v... (%d vs %d records)",
			head(got), head(want), len(got), len(want))
	}

	// The monitor was re-armed against the new profile.
	if health.Tripped() {
		t.Fatalf("repair left the site tripped: %s", health.Stats())
	}

	// The old version remains retrievable, and rollback reinstates it.
	old, ok := s.Version(clean.Name, 1)
	if !ok || old.Rule != v1.Rule {
		t.Fatalf("v1 lost after repair: %+v, %v", old, ok)
	}
	back, err := s.Rollback(clean.Name)
	if err != nil || back.Version != 1 {
		t.Fatalf("rollback = %+v, %v", back, err)
	}
	if a, _ := s.Active(clean.Name); a.Version != 1 {
		t.Fatalf("active after rollback = v%d", a.Version)
	}
}

// beats re-states the promotion predicate for assertions.
func beats(e, inc drift.Eval) bool {
	if e.NonEmpty != inc.NonEmpty {
		return e.NonEmpty > inc.NonEmpty
	}
	return e.Records > inc.Records
}

func head(s []string) []string {
	if len(s) > 3 {
		return s[:3]
	}
	return s
}

// TestRepairRejectsWhenIncumbentStillWins pins the validation gate: when
// the site did NOT actually drift, the candidate cannot beat the incumbent
// and serving must not flip.
func TestRepairRejectsWhenIncumbentStillWins(t *testing.T) {
	clean, _, annot := dealersPair(t, 1001, 16, 0)
	s := store.New()
	v1 := learnInto(t, s, clean, annot)
	rep := &drift.Repairer{Store: s, Spec: learnSpec(annot)}
	report, err := rep.Repair(context.Background(), clean.Name, htmlsOf(clean))
	if err != nil {
		t.Fatal(err)
	}
	if report.Promoted {
		t.Fatalf("no-drift repair flipped serving: %s", report)
	}
	if report.Candidate.Version != 2 {
		t.Fatalf("rejected candidate not staged: %+v", report.Candidate)
	}
	if a, _ := s.Active(clean.Name); a.Version != v1.Version {
		t.Fatalf("active moved to v%d without a win", a.Version)
	}
}

// TestRepairedEquivalentToFreshLearn is the property test: for several
// (seed, drift) combinations, the wrapper produced by the trip-then-repair
// path extracts exactly the same records from the mutated corpus as a
// from-scratch learn over that corpus — drift repair is relearn, not a
// patch.
func TestRepairedEquivalentToFreshLearn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed learning loop")
	}
	for _, tc := range []struct {
		seed  int64
		drift int
	}{
		{1001, 1},
		{1001, 2},
		{4242, 2},
		{9090, 3},
	} {
		clean, mutated, annot := dealersPair(t, tc.seed, 16, tc.drift)
		s := store.New()
		learnInto(t, s, clean, annot)

		rep := &drift.Repairer{Store: s, Spec: learnSpec(annot)}
		report, err := rep.Repair(context.Background(), clean.Name, htmlsOf(mutated))
		if err != nil {
			t.Fatalf("seed %d drift %d: %v", tc.seed, tc.drift, err)
		}
		repaired, err := report.Candidate.Compile()
		if err != nil {
			t.Fatal(err)
		}

		// Fresh learn over the full mutated corpus, no history involved.
		fresh := store.New()
		freshEntry := learnInto(t, fresh, mutated, annot)
		freshP, err := freshEntry.Compile()
		if err != nil {
			t.Fatal(err)
		}

		got := extractAll(repaired, mutated)
		want := extractAll(freshP, mutated)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d drift %d: repaired extracts %d records, fresh learn %d\n repaired: %v...\n fresh:    %v...",
				tc.seed, tc.drift, len(got), len(want), head(got), head(want))
		}
		if len(got) == 0 {
			t.Fatalf("seed %d drift %d: degenerate property (no records)", tc.seed, tc.drift)
		}
	}
}
