package drift_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"autowrap/internal/drift"
	"autowrap/internal/extract"
	"autowrap/internal/lr"
	"autowrap/internal/store"
)

// TestConcurrentObserveAndHealthReads is the HTTP-handler-path race test:
// many goroutines extract through one monitored runtime (each page firing
// SiteHealth.Observe on a worker goroutine) while other goroutines
// concurrently read Runtime.Health(), SiteHealth.Stats()/Tripped(), the
// monitor's Snapshot()/Tripped() and register further sites — exactly what
// a serving daemon's /metrics and /v1/sites endpoints do under load. Run
// under -race (CI does); the assertions then pin the totals so no
// observation was lost.
func TestConcurrentObserveAndHealthReads(t *testing.T) {
	const (
		writers        = 8
		readers        = 4
		runsPerWriter  = 20
		pagesPerRun    = 5
		recordsPerPage = 3
	)
	mon := drift.NewMonitor(drift.Policy{Window: 16})
	health := mon.Register("site", &store.Profile{Pages: 8, MeanRecords: recordsPerPage})
	rt := extract.New(
		&lr.Compiled{Left: `<span class="r">`, Right: `</span>`},
		extract.Options{Workers: 2, OnResult: health.Observe},
	)

	var html string
	for i := 0; i < recordsPerPage; i++ {
		html += fmt.Sprintf(`<span class="r">rec-%d</span>`, i)
	}
	pages := make([]extract.Page, pagesPerRun)
	for i := range pages {
		pages[i] = extract.Page{ID: fmt.Sprintf("p%d", i), HTML: "<html><body>" + html + "</body></html>"}
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = rt.Health()
				_ = health.Stats()
				_ = health.Tripped()
				_ = mon.Snapshot()
				_ = mon.Tripped()
				_ = mon.Register(fmt.Sprintf("other-%d-%d", r, i%3), nil)
			}
		}(r)
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < runsPerWriter; i++ {
				if _, err := rt.Run(context.Background(), pages); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	wantPages := int64(writers * runsPerWriter * pagesPerRun)
	if got := rt.Health(); got.Pages != wantPages ||
		got.Records != wantPages*recordsPerPage || got.Failed != 0 || got.Empty != 0 {
		t.Fatalf("runtime health = %+v, want %d clean pages / %d records",
			got, wantPages, wantPages*recordsPerPage)
	}
	st := health.Stats()
	if st.Pages != wantPages {
		t.Fatalf("monitor observed %d pages, want %d", st.Pages, wantPages)
	}
	if st.Tripped {
		t.Fatalf("healthy traffic tripped the monitor: %s", st)
	}
	if st.MeanRecords != recordsPerPage {
		t.Fatalf("window mean records = %v, want %d", st.MeanRecords, recordsPerPage)
	}
}
