package drift

import (
	"context"
	"fmt"
	"time"

	"autowrap/internal/corpus"
	"autowrap/internal/engine"
	"autowrap/internal/htmlparse"
	"autowrap/internal/store"
	"autowrap/internal/wrapper"
)

// LearnSpec builds the re-learning recipe for one site over a fresh
// corpus: which annotator (or precomputed labels), which inductor, which
// ranking models. The repairer owns the corpus split; the spec owns
// everything the engine needs to learn from it. Spec.Corpus is overwritten
// by the repairer with the training corpus it parsed.
type LearnSpec func(site string, c *corpus.Corpus) (engine.SiteSpec, error)

// Eval summarizes one wrapper's behaviour on the held-out sample.
type Eval struct {
	// Pages is the held-out sample size; NonEmpty the pages the wrapper
	// extracted at least one record from.
	Pages, NonEmpty int
	// Records totals the extracted records over the sample.
	Records int
}

// MeanRecords is the mean record count over the sample.
func (e Eval) MeanRecords() float64 {
	if e.Pages == 0 {
		return 0
	}
	return float64(e.Records) / float64(e.Pages)
}

// beats reports whether the candidate's held-out behaviour strictly
// improves on the incumbent's: more non-empty pages, or the same coverage
// with more records. Ties lose — a candidate that merely matches the
// incumbent is not worth a serving flip.
func (e Eval) beats(incumbent Eval) bool {
	if e.NonEmpty != incumbent.NonEmpty {
		return e.NonEmpty > incumbent.NonEmpty
	}
	return e.Records > incumbent.Records
}

// Report is one repair attempt's outcome. The candidate is always stored
// (a rejected attempt stays in history for debugging); Promoted says
// whether serving flipped to it.
type Report struct {
	Site string
	// TrainPages and HoldoutPages describe the fresh-page split.
	TrainPages, HoldoutPages int
	// Candidate is the staged store entry of the re-learned wrapper.
	Candidate store.Entry
	// Promoted reports whether the candidate beat the incumbent on the
	// held-out sample and is now the serving version.
	Promoted bool
	// HadIncumbent is false when the site had no active version (first
	// learn): the candidate is promoted unconditionally.
	HadIncumbent bool
	// CandidateEval and IncumbentEval are the held-out comparisons.
	CandidateEval, IncumbentEval Eval
	// LearnElapsed is the wall-clock re-learning time.
	LearnElapsed time.Duration
}

// String renders the report as a one-line summary.
func (r *Report) String() string {
	verdict := "rejected (incumbent keeps serving)"
	if r.Promoted {
		verdict = "promoted"
	}
	return fmt.Sprintf(
		"site=%s candidate=v%d %s: candidate %d/%d pages %d records vs incumbent %d/%d pages %d records (train=%d holdout=%d learn=%v)",
		r.Site, r.Candidate.Version, verdict,
		r.CandidateEval.NonEmpty, r.CandidateEval.Pages, r.CandidateEval.Records,
		r.IncumbentEval.NonEmpty, r.IncumbentEval.Pages, r.IncumbentEval.Records,
		r.TrainPages, r.HoldoutPages, r.LearnElapsed.Round(time.Millisecond))
}

// Repairer closes the monitor → relearn → promote loop for tripped sites.
// All fields but Store and Spec are optional.
type Repairer struct {
	// Store is the versioned registry repairs are staged into.
	Store *store.Store
	// Spec builds the per-site re-learning recipe.
	Spec LearnSpec
	// HoldoutEvery holds out every k-th fresh page for validation
	// (default 4, i.e. a 25% held-out sample; minimum one page is always
	// held out and one trained on).
	HoldoutEvery int
	// Engine configures the re-learning batch (worker count, label
	// threshold). The zero value works.
	Engine engine.Options
	// Monitor, when set, is re-armed after a promotion: the site's window
	// is reset against the new wrapper's profile.
	Monitor *Monitor
}

// Repair re-learns one site from its freshest pages and promotes the
// result only if it beats the incumbent on a held-out sample of those
// pages. The candidate is staged as a new store version either way; the
// previous serving version remains addressable for store.Rollback.
//
// The flow is the lifecycle's write half: split fresh pages into train and
// held-out, learn on the train split through the engine (per-site panic
// isolation and cancellation included), stage the winner with its new
// learn-time profile, extract the held-out pages with both candidate and
// incumbent, and promote on a strict win.
func (r *Repairer) Repair(ctx context.Context, site string, fresh []string) (*Report, error) {
	if r.Store == nil || r.Spec == nil {
		return nil, fmt.Errorf("drift: repair %s: Repairer needs Store and Spec", site)
	}
	if len(fresh) < 2 {
		return nil, fmt.Errorf("drift: repair %s: need at least 2 fresh pages, got %d",
			site, len(fresh))
	}
	every := r.HoldoutEvery
	if every <= 1 {
		every = 4
	}
	var train, holdout []string
	for i, html := range fresh {
		// Offset by 1 so page 0 (often the most representative) trains.
		if (i+1)%every == 0 {
			holdout = append(holdout, html)
		} else {
			train = append(train, html)
		}
	}
	if len(holdout) == 0 {
		holdout = append(holdout, train[len(train)-1])
		train = train[:len(train)-1]
	}

	// Re-learn on the training split.
	c := corpus.ParseHTML(train)
	spec, err := r.Spec(site, c)
	if err != nil {
		return nil, fmt.Errorf("drift: repair %s: spec: %w", site, err)
	}
	spec.Name, spec.Corpus = site, c
	start := time.Now()
	batch, err := engine.LearnBatch(ctx, []engine.SiteSpec{spec}, r.Engine)
	if err != nil {
		return nil, fmt.Errorf("drift: repair %s: %w", site, err)
	}
	res := &batch.Sites[0]
	switch {
	case res.Err != nil:
		return nil, fmt.Errorf("drift: repair %s: relearn: %w", site, res.Err)
	case res.Skipped:
		return nil, fmt.Errorf("drift: repair %s: relearn skipped: too few labels on fresh pages", site)
	case res.Result == nil || res.Result.Best == nil:
		return nil, fmt.Errorf("drift: repair %s: relearn produced no wrapper", site)
	}
	best := res.Result.Best
	candidate, err := store.Compile(best.Wrapper)
	if err != nil {
		return nil, fmt.Errorf("drift: repair %s: compile: %w", site, err)
	}
	report := &Report{
		Site:         site,
		TrainPages:   len(train),
		HoldoutPages: len(holdout),
		LearnElapsed: time.Since(start),
	}

	// Validate against the incumbent on the held-out split.
	report.CandidateEval = evalOn(candidate, holdout)
	incumbentEntry, hasIncumbent := r.Store.Active(site)
	report.HadIncumbent = hasIncumbent
	if hasIncumbent {
		incumbent, err := incumbentEntry.Compile()
		if err != nil {
			return nil, fmt.Errorf("drift: repair %s: incumbent v%d: %w",
				site, incumbentEntry.Version, err)
		}
		report.IncumbentEval = evalOn(incumbent, holdout)
	}

	// Stage the candidate; promote only on a strict held-out win (or when
	// nothing serves yet).
	meta := store.Meta{
		Score:   best.Score.Total,
		Profile: store.ProfileOf(c.PerPageCounts(best.Wrapper.Extract())),
	}
	if res.Labels != nil {
		meta.Labels = res.Labels.Count()
	}
	entry, err := r.Store.PutCandidate(site, candidate, meta)
	if err != nil {
		return nil, fmt.Errorf("drift: repair %s: stage: %w", site, err)
	}
	report.Candidate = entry
	if !hasIncumbent || report.CandidateEval.beats(report.IncumbentEval) {
		if _, err := r.Store.Promote(site, entry.Version); err != nil {
			return nil, fmt.Errorf("drift: repair %s: promote: %w", site, err)
		}
		report.Promoted = true
		if r.Monitor != nil {
			if h, ok := r.Monitor.Site(site); ok {
				h.Reset(entry.Profile)
			}
		}
	}
	return report, nil
}

// evalOn applies a compiled wrapper to raw held-out pages and tallies its
// extraction footprint.
func evalOn(p wrapper.Portable, htmls []string) Eval {
	e := Eval{Pages: len(htmls)}
	for _, html := range htmls {
		n := len(p.ApplyPage(htmlparse.Parse(html)))
		if n > 0 {
			e.NonEmpty++
			e.Records += n
		}
	}
	return e
}
