package eval

import (
	"math"
	"strings"
	"testing"

	"autowrap/internal/bitset"
)

func TestScoreBasics(t *testing.T) {
	pred := bitset.FromIndices(10, []int{0, 1, 2, 3})
	gold := bitset.FromIndices(10, []int{2, 3, 4, 5})
	m := Score(pred, gold)
	if m.Precision != 0.5 || m.Recall != 0.5 {
		t.Fatalf("got %v", m)
	}
	if math.Abs(m.F1-0.5) > 1e-12 {
		t.Fatalf("F1 = %v", m.F1)
	}
}

func TestScorePerfect(t *testing.T) {
	s := bitset.FromIndices(8, []int{1, 3, 5})
	m := Score(s, s.Clone())
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("got %v", m)
	}
}

func TestScoreConventions(t *testing.T) {
	empty := bitset.New(6)
	gold := bitset.FromIndices(6, []int{0})
	m := Score(empty, gold)
	if m.Precision != 1 {
		t.Fatal("empty prediction should have precision 1")
	}
	if m.Recall != 0 {
		t.Fatal("empty prediction misses all gold")
	}
	m = Score(gold, empty)
	if m.Recall != 1 {
		t.Fatal("empty gold should have recall 1")
	}
	if m.Precision != 0 {
		t.Fatal("all predictions wrong")
	}
	m = Score(empty, empty.Clone())
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("empty-vs-empty = %v", m)
	}
}

func TestFromCounts(t *testing.T) {
	m := FromCounts(6, 2, 4)
	if math.Abs(m.Precision-0.75) > 1e-12 || math.Abs(m.Recall-0.6) > 1e-12 {
		t.Fatalf("got %v", m)
	}
	want := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if math.Abs(m.F1-want) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", m.F1, want)
	}
}

func TestMacro(t *testing.T) {
	if m := Macro(nil); m.Precision != 0 || m.F1 != 0 {
		t.Fatal("empty macro")
	}
	ms := []PRF{
		{Precision: 1, Recall: 1, F1: 1},
		{Precision: 0, Recall: 1, F1: 0},
	}
	m := Macro(ms)
	if m.Precision != 0.5 || m.Recall != 1 || m.F1 != 0.5 {
		t.Fatalf("macro = %v", m)
	}
}

func TestRecordPRF(t *testing.T) {
	gold := [][2]int{{1, 2}, {3, 4}, {5, 6}}
	pred := [][2]int{{1, 2}, {3, 9}}
	m := RecordPRF(pred, gold)
	if m.Precision != 0.5 {
		t.Fatalf("precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-1.0/3) > 1e-12 {
		t.Fatalf("recall = %v", m.Recall)
	}
}

func TestRecordPRFEmpty(t *testing.T) {
	m := RecordPRF(nil, [][2]int{{1, 2}})
	if m.Precision != 1 || m.Recall != 0 {
		t.Fatalf("got %v", m)
	}
	m = RecordPRF(nil, nil)
	if m.Precision != 1 || m.Recall != 1 {
		t.Fatalf("got %v", m)
	}
}

func TestString(t *testing.T) {
	s := PRF{Precision: 0.5, Recall: 0.25, F1: 1.0 / 3}.String()
	if !strings.Contains(s, "P=0.500") || !strings.Contains(s, "R=0.250") {
		t.Fatalf("String = %q", s)
	}
}
