// Package eval provides the precision/recall/F1 accounting used by every
// accuracy experiment (paper Sec. 7.2: "the f1-measure, which is the
// harmonic mean of the precision and recall").
package eval

import (
	"fmt"

	"autowrap/internal/bitset"
)

// PRF is one precision/recall/F1 triple.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// String renders the triple for tables.
func (m PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f", m.Precision, m.Recall, m.F1)
}

// Score compares a predicted node set against gold.
func Score(pred, gold *bitset.Set) PRF {
	tp := bitset.AndCount(pred, gold)
	return FromCounts(tp, pred.Count()-tp, gold.Count()-tp)
}

// FromCounts builds a PRF from true/false positive and false negative
// counts. Conventions: empty predictions have precision 1; empty gold has
// recall 1.
func FromCounts(tp, fp, fn int) PRF {
	m := PRF{Precision: 1, Recall: 1}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Macro averages per-site measures (each site weighs equally, matching the
// paper's per-website accuracy plots).
func Macro(ms []PRF) PRF {
	if len(ms) == 0 {
		return PRF{}
	}
	var out PRF
	for _, m := range ms {
		out.Precision += m.Precision
		out.Recall += m.Recall
		out.F1 += m.F1
	}
	n := float64(len(ms))
	out.Precision /= n
	out.Recall /= n
	out.F1 /= n
	return out
}

// RecordPRF scores predicted record pairs against gold record pairs (the
// multi-type evaluation of Appendix A). Records are compared as exact
// ordinal pairs.
func RecordPRF(pred, gold [][2]int) PRF {
	goldSet := make(map[[2]int]bool, len(gold))
	for _, g := range gold {
		goldSet[g] = true
	}
	tp := 0
	for _, p := range pred {
		if goldSet[p] {
			tp++
		}
	}
	return FromCounts(tp, len(pred)-tp, len(gold)-tp)
}
