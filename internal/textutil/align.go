// Package textutil supplies the sequence-comparison primitives behind the
// web publication model (paper Sec. 6.1): edit distance between record
// segments (the "alignment" feature) and longest common substring (the
// "schema size" feature), both over token sequences.
package textutil

// EditDistance computes the Levenshtein distance between two token
// sequences (unit costs). Tokens are interned ints, typically tag ids.
func EditDistance(a, b []int32) int {
	// Ensure a is the shorter row to bound memory.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return len(b)
	}
	prev := make([]int, len(a)+1)
	cur := make([]int, len(a)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(b); j++ {
		cur[0] = j
		bj := b[j-1]
		for i := 1; i <= len(a); i++ {
			cost := 1
			if a[i-1] == bj {
				cost = 0
			}
			m := prev[i-1] + cost        // substitute / match
			if v := prev[i] + 1; v < m { // delete
				m = v
			}
			if v := cur[i-1] + 1; v < m { // insert
				m = v
			}
			cur[i] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(a)]
}

// EditDistanceCapped is EditDistance with an early-exit upper bound: as soon
// as every cell of a row exceeds cap, it returns cap+1. The ranking model
// only needs distances up to the tail of the learned distribution, so the
// cap keeps degenerate (very long) segments cheap.
func EditDistanceCapped(a, b []int32, cap int) int {
	if cap < 0 {
		cap = 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b)-len(a) > cap {
		return cap + 1
	}
	if len(a) == 0 {
		return len(b)
	}
	prev := make([]int, len(a)+1)
	cur := make([]int, len(a)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(b); j++ {
		cur[0] = j
		bj := b[j-1]
		rowMin := cur[0]
		for i := 1; i <= len(a); i++ {
			cost := 1
			if a[i-1] == bj {
				cost = 0
			}
			m := prev[i-1] + cost
			if v := prev[i] + 1; v < m {
				m = v
			}
			if v := cur[i-1] + 1; v < m {
				m = v
			}
			cur[i] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > cap {
			return cap + 1
		}
		prev, cur = cur, prev
	}
	d := prev[len(a)]
	if d > cap {
		return cap + 1
	}
	return d
}

// LongestCommonSubstring returns (in tokens) the longest contiguous run
// shared by a and b, and the run itself.
func LongestCommonSubstring(a, b []int32) []int32 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best, bestEnd := 0, 0
	for i := 1; i <= len(a); i++ {
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			if ai == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
					bestEnd = i
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	if best == 0 {
		return nil
	}
	return a[bestEnd-best : bestEnd]
}

// CommonPrefixLen returns the length of the longest common prefix of a and b.
func CommonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// CommonSuffixLen returns the length of the longest common suffix of a and b.
func CommonSuffixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[len(a)-1-i] == b[len(b)-1-i] {
		i++
	}
	return i
}
