package textutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seq(vals ...int32) []int32 { return vals }

func TestEditDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{nil, nil, 0},
		{seq(1, 2, 3), nil, 3},
		{nil, seq(9), 1},
		{seq(1, 2, 3), seq(1, 2, 3), 0},
		{seq(1, 2, 3), seq(1, 9, 3), 1},
		{seq(1, 2, 3), seq(1, 3), 1},
		{seq(1, 2, 3), seq(0, 1, 2, 3), 1},
		{seq(1, 2, 3, 4), seq(4, 3, 2, 1), 4}, // reversal: 2 subs + ... = 4? verify below
	}
	for i, c := range cases[:len(cases)-1] {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Fatalf("case %d: EditDistance = %d, want %d", i, got, c.want)
		}
	}
	// Reversal distance computed by brute force below.
	if got, want := EditDistance(seq(1, 2, 3, 4), seq(4, 3, 2, 1)), bruteForce(seq(1, 2, 3, 4), seq(4, 3, 2, 1)); got != want {
		t.Fatalf("reversal: got %d want %d", got, want)
	}
}

// bruteForce is an exponential reference implementation for small inputs.
func bruteForce(a, b []int32) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	best := bruteForce(a[1:], b[1:])
	if a[0] != b[0] {
		best++
	}
	if v := bruteForce(a[1:], b) + 1; v < best {
		best = v
	}
	if v := bruteForce(a, b[1:]) + 1; v < best {
		best = v
	}
	return best
}

func randSeq(rng *rand.Rand, n, alpha int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Intn(alpha))
	}
	return out
}

func TestEditDistanceAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		a := randSeq(rng, rng.Intn(7), 3)
		b := randSeq(rng, rng.Intn(7), 3)
		if got, want := EditDistance(a, b), bruteForce(a, b); got != want {
			t.Fatalf("EditDistance(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}

func TestEditDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 300; iter++ {
		a := randSeq(rng, rng.Intn(12), 4)
		b := randSeq(rng, rng.Intn(12), 4)
		c := randSeq(rng, rng.Intn(12), 4)
		dab := EditDistance(a, b)
		dba := EditDistance(b, a)
		if dab != dba {
			t.Fatalf("not symmetric: %d vs %d", dab, dba)
		}
		if EditDistance(a, a) != 0 {
			t.Fatal("identity violated")
		}
		dac := EditDistance(a, c)
		dbc := EditDistance(b, c)
		if dac > dab+dbc {
			t.Fatalf("triangle inequality violated: %d > %d + %d", dac, dab, dbc)
		}
	}
}

func TestEditDistanceCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		a := randSeq(rng, rng.Intn(15), 3)
		b := randSeq(rng, rng.Intn(15), 3)
		full := EditDistance(a, b)
		for _, cap := range []int{0, 1, 3, 10, 100} {
			got := EditDistanceCapped(a, b, cap)
			if full <= cap && got != full {
				t.Fatalf("cap %d: got %d, want exact %d", cap, got, full)
			}
			if full > cap && got != cap+1 {
				t.Fatalf("cap %d: got %d, want %d (full %d)", cap, got, cap+1, full)
			}
		}
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct {
		a, b []int32
		want []int32
	}{
		{seq(1, 2, 3, 4), seq(9, 2, 3, 8), seq(2, 3)},
		{seq(1, 2, 3), seq(4, 5, 6), nil},
		{seq(1, 2, 3), seq(1, 2, 3), seq(1, 2, 3)},
		{nil, seq(1), nil},
		{seq(5, 1, 2, 3, 6), seq(1, 2, 3), seq(1, 2, 3)},
	}
	for i, c := range cases {
		got := LongestCommonSubstring(c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: LCS = %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: LCS = %v, want %v", i, got, c.want)
			}
		}
	}
}

// lcsBrute is a quadratic-in-substrings reference.
func lcsBrute(a, b []int32) int {
	best := 0
	for i := 0; i < len(a); i++ {
		for j := 0; j < len(b); j++ {
			k := 0
			for i+k < len(a) && j+k < len(b) && a[i+k] == b[j+k] {
				k++
			}
			if k > best {
				best = k
			}
		}
	}
	return best
}

func TestLCSAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 300; iter++ {
		a := randSeq(rng, rng.Intn(12), 3)
		b := randSeq(rng, rng.Intn(12), 3)
		got := len(LongestCommonSubstring(a, b))
		want := lcsBrute(a, b)
		if got != want {
			t.Fatalf("LCS(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}

func TestLCSIsSubstringOfBoth(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := make([]int32, len(ra))
		for i, v := range ra {
			a[i] = int32(v % 4)
		}
		b := make([]int32, len(rb))
		for i, v := range rb {
			b[i] = int32(v % 4)
		}
		lcs := LongestCommonSubstring(a, b)
		return containsSub(a, lcs) && containsSub(b, lcs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func containsSub(hay, needle []int32) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		ok := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestCommonPrefixSuffix(t *testing.T) {
	if CommonPrefixLen("abcde", "abxde") != 2 {
		t.Fatal("prefix")
	}
	if CommonSuffixLen("abcde", "xycde") != 3 {
		t.Fatal("suffix")
	}
	if CommonPrefixLen("", "abc") != 0 || CommonSuffixLen("abc", "") != 0 {
		t.Fatal("empty")
	}
	if CommonPrefixLen("same", "same") != 4 || CommonSuffixLen("same", "same") != 4 {
		t.Fatal("identical")
	}
}

func TestCommonPrefixSuffixProperty(t *testing.T) {
	f := func(a, b string) bool {
		p := CommonPrefixLen(a, b)
		if a[:p] != b[:p] {
			return false
		}
		if p < len(a) && p < len(b) && a[p] == b[p] {
			return false // not maximal
		}
		s := CommonSuffixLen(a, b)
		if a[len(a)-s:] != b[len(b)-s:] {
			return false
		}
		if s < len(a) && s < len(b) && a[len(a)-s-1] == b[len(b)-s-1] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
