package single

import (
	"fmt"
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/xpinduct"
)

// albumSite renders pages that each carry one album title in an <h1>, in
// the page <title>, plus a track list (multiple items per page).
func albumSite(titles []string) *corpus.Corpus {
	var htmls []string
	for i, title := range titles {
		var sb strings.Builder
		fmt.Fprintf(&sb, `<html><head><title>%s | Site</title></head><body>`, title)
		fmt.Fprintf(&sb, `<h1>%s</h1><ol>`, title)
		for j := 0; j < 4; j++ {
			fmt.Fprintf(&sb, `<li><a href="#">Track %d-%d</a></li>`, i, j)
		}
		sb.WriteString(`</ol></body></html>`)
		htmls = append(htmls, sb.String())
	}
	return corpus.ParseHTML(htmls)
}

func labelByContent(c *corpus.Corpus, pred func(string) bool) *bitset.Set {
	return c.MatchingText(pred)
}

func TestLearnFindsSingleEntityWrappers(t *testing.T) {
	titles := []string{"Abbey Road", "Velvet Seasons", "Paper Maps", "Quiet Dreams"}
	c := albumSite(titles)
	// Noisy labels: the h1 titles of two albums, plus one track node
	// (noise).
	labels := labelByContent(c, func(s string) bool {
		return s == "Abbey Road" || s == "Velvet Seasons" || s == "Track 0-1"
	})
	ind := xpinduct.New(c, xpinduct.Options{})
	res, err := Learn(ind, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) == 0 {
		t.Fatal("no winners")
	}
	// Every winner must extract exactly one node per page.
	for _, w := range res.Winners {
		counts := c.PerPageCounts(w.Wrapper.Extract())
		for pi, n := range counts {
			if n > 1 {
				t.Fatalf("winner extracts %d nodes on page %d: %s", n, pi, w.Wrapper.Rule())
			}
		}
	}
	// The h1 wrapper must be among the winners.
	found := false
	for _, w := range res.Winners {
		if strings.Contains(w.Wrapper.Rule(), "h1") {
			found = true
			vals := c.Contents(w.Wrapper.Extract())
			if len(vals) != len(titles) {
				t.Fatalf("h1 winner extracts %v", vals)
			}
		}
	}
	if !found {
		t.Fatalf("h1 wrapper missing from winners: %d winners", len(res.Winners))
	}
}

func TestOverMatchingWrappersDiscarded(t *testing.T) {
	c := albumSite([]string{"A One", "B Two", "C Three"})
	// Label two track nodes: their generalization matches 4 tracks per
	// page and must be discarded, leaving no winners (the noise label on
	// its own page cannot carry a full wrapper).
	labels := labelByContent(c, func(s string) bool {
		return s == "Track 0-0" || s == "Track 1-2"
	})
	ind := xpinduct.New(c, xpinduct.Options{})
	res, err := Learn(ind, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded == 0 {
		t.Fatal("expected the track-list wrapper to be discarded")
	}
	for _, w := range res.Winners {
		for _, n := range c.PerPageCounts(w.Wrapper.Extract()) {
			if n > 1 {
				t.Fatal("a winner extracts multiple items per page")
			}
		}
	}
}

func TestCoverageWins(t *testing.T) {
	titles := []string{"Alpha", "Beta", "Gamma", "Delta"}
	c := albumSite(titles)
	// All four h1s labeled plus a single page-0 track: the h1/title
	// wrappers cover 4 labels, any track-singleton covers 1.
	labels := labelByContent(c, func(s string) bool {
		for _, ti := range titles {
			if s == ti {
				return true
			}
		}
		return s == "Track 0-3"
	})
	ind := xpinduct.New(c, xpinduct.Options{})
	res, err := Learn(ind, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Winners {
		if w.Coverage != 4 {
			t.Fatalf("winner coverage %d, want 4", w.Coverage)
		}
	}
}

func TestMinPageCoverage(t *testing.T) {
	titles := []string{"Alpha", "Beta", "Gamma", "Delta"}
	c := albumSite(titles)
	labels := labelByContent(c, func(s string) bool { return s == "Alpha" })
	ind := xpinduct.New(c, xpinduct.Options{})
	// A single label generalizes to the singleton {Alpha} (1 of 4 pages);
	// with MinPageCoverage=1.0 the only full-coverage candidates are the
	// h1/title wrappers trained on that same label... which extract on all
	// pages. The singleton itself is filtered.
	res, err := Learn(ind, labels, Config{MinPageCoverage: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Winners {
		if w.PagesCovered != len(titles) {
			t.Fatalf("winner covers %d pages, want %d", w.PagesCovered, len(titles))
		}
	}
}

func TestEmptyLabels(t *testing.T) {
	c := albumSite([]string{"A"})
	ind := xpinduct.New(c, xpinduct.Options{})
	res, err := Learn(ind, c.EmptySet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) != 0 {
		t.Fatal("no labels should mean no winners")
	}
}
