// Package single implements the single-entity extraction of the paper's
// Appendix B.2: each page contains exactly one entity of interest (e.g. the
// album title of a discography page). The list-goodness prior P(X) does not
// apply; instead the framework enumerates the wrapper space, discards every
// wrapper that extracts more than one item from some page, and picks the
// wrapper covering the most annotations (equivalently, maximizing P(L|X)).
// Multiple wrappers can tie at the top — pages often carry the entity in
// several consistent places (title tag, heading, breadcrumbs) — so all
// co-winners are returned.
package single

import (
	"fmt"

	"autowrap/internal/bitset"
	"autowrap/internal/enum"
	"autowrap/internal/wrapper"
)

// Config controls single-entity learning.
type Config struct {
	// Enumerator defaults to enum.AlgoTopDown.
	Enumerator  string
	EnumOptions enum.Options
	// MinPageCoverage is the minimum fraction of pages on which an
	// accepted wrapper must extract its (single) item; guards against
	// wrappers latched onto one page's quirk. Default 0.5.
	MinPageCoverage float64
}

// Candidate is a surviving wrapper and its label coverage.
type Candidate struct {
	Wrapper      wrapper.Wrapper
	Coverage     int // |X ∩ L|
	PagesCovered int // pages with exactly one extracted item
}

// Result of a single-entity run.
type Result struct {
	// Winners are the top candidates (all tied on coverage), best first.
	Winners []Candidate
	// Discarded counts wrappers rejected for extracting multiple items
	// from one page.
	Discarded int
	EnumCalls int64
}

// Learn enumerates and filters per Appendix B.2.
func Learn(ind wrapper.Inductor, labels *bitset.Set, cfg Config) (*Result, error) {
	if labels.Empty() {
		return &Result{}, nil
	}
	if cfg.MinPageCoverage == 0 {
		cfg.MinPageCoverage = 0.5
	}
	algo := cfg.Enumerator
	if algo == "" {
		algo = enum.AlgoTopDown
	}
	c := ind.Corpus()
	enumRes, err := enum.Run(algo, ind, labels, cfg.EnumOptions)
	if err != nil {
		return nil, fmt.Errorf("single: enumeration failed: %w", err)
	}
	res := &Result{EnumCalls: enumRes.Calls}
	var cands []Candidate
	for _, it := range enumRes.Items {
		x := it.Wrapper.Extract()
		counts := c.PerPageCounts(x)
		multi := false
		covered := 0
		for _, n := range counts {
			if n > 1 {
				multi = true
				break
			}
			if n == 1 {
				covered++
			}
		}
		if multi {
			// The intuition of B.2: a wrapper trained on noisy labels
			// over-generalizes, matches multiple nodes per page, and is
			// discarded.
			res.Discarded++
			continue
		}
		if float64(covered) < cfg.MinPageCoverage*float64(len(c.Pages)) {
			res.Discarded++
			continue
		}
		cands = append(cands, Candidate{
			Wrapper:      it.Wrapper,
			Coverage:     bitset.AndCount(labels, x),
			PagesCovered: covered,
		})
	}
	best := 0
	for _, cd := range cands {
		if cd.Coverage > best {
			best = cd.Coverage
		}
	}
	for _, cd := range cands {
		if cd.Coverage == best && best > 0 {
			res.Winners = append(res.Winners, cd)
		}
	}
	return res, nil
}
