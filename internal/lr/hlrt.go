package lr

import (
	"fmt"
	"strings"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/textutil"
	"autowrap/internal/wrapper"
)

// HLRT implements the Head-Left-Right-Tail extension of the LR class
// (Kushmerick's WIEN; the paper's Sec. 5: "There are various extensions of
// this basic language, e.g., HLRT wrappers, which, in addition, have
// strings H and T that limit the context under which LR can be applied").
//
// A wrapper is a quadruple (h, t, l, r): on each page, extraction is
// restricted to the region after the first occurrence of h and before the
// last occurrence of t; within the region the usual LR delimiters apply.
// The head/tail strings let the wrapper skip navigation chrome whose local
// markup is indistinguishable from the record list.
//
// Induction learns h as the longest common suffix of the page prefixes
// preceding the first label of each labeled page, and t as the longest
// common prefix of the page suffixes following the last label. This
// simplified induction preserves FIDELITY (verified by property tests)
// but, unlike WIEN's exact candidate search, is neither MONOTONE nor
// CLOSED in general: adding labels can relocate the region anchors. The
// paper's enumeration guarantees therefore do not transfer to this
// variant; use it as a direct (more expressive) learner where head/tail
// junk defeats plain LR delimiters, or plug in a full WIEN-style HLRT
// induction to regain well-behavedness.
type HLRT struct {
	c *corpus.Corpus
	// lr carries the per-node context tables; HLRT shares them.
	lr *Inductor
	// maxRegion caps the learned h and t lengths.
	maxRegion int

	// starts/ends are the byte offsets of every extractable node per page,
	// parallel to Page.Texts.
	starts [][]int
	ends   [][]int

	induceCalls int64
}

// HLRTWrapper is an induced (h, t, l, r) rule.
type HLRTWrapper struct {
	Head  string
	Tail  string
	Left  string
	Right string
	out   *bitset.Set
}

// Extract implements wrapper.Wrapper.
func (w *HLRTWrapper) Extract() *bitset.Set { return w.out }

// Rule implements wrapper.Wrapper.
func (w *HLRTWrapper) Rule() string {
	return fmt.Sprintf("HLRT(%q, %q, %q, %q)", w.Head, w.Tail, w.Left, w.Right)
}

// DefaultMaxRegion caps head/tail delimiter length.
const DefaultMaxRegion = 96

// NewHLRT builds the HLRT inductor. maxContext caps l/r (0 selects
// DefaultMaxContext); maxRegion caps h/t (0 selects DefaultMaxRegion).
func NewHLRT(c *corpus.Corpus, maxContext, maxRegion int) *HLRT {
	if maxRegion <= 0 {
		maxRegion = DefaultMaxRegion
	}
	h := &HLRT{
		c:         c,
		lr:        New(c, maxContext),
		maxRegion: maxRegion,
		starts:    make([][]int, len(c.Pages)),
		ends:      make([][]int, len(c.Pages)),
	}
	for pi, p := range c.Pages {
		h.starts[pi] = make([]int, len(p.Texts))
		h.ends[pi] = make([]int, len(p.Texts))
		for i, n := range p.Texts {
			span := p.Spans[n]
			h.starts[pi][i] = span[0]
			h.ends[pi][i] = span[1]
		}
	}
	return h
}

// Name implements wrapper.Inductor.
func (h *HLRT) Name() string { return "hlrt" }

// Corpus implements wrapper.Inductor.
func (h *HLRT) Corpus() *corpus.Corpus { return h.c }

// InduceCalls returns the number of Induce invocations.
func (h *HLRT) InduceCalls() int64 { return h.induceCalls }

// Induce implements wrapper.Inductor.
func (h *HLRT) Induce(labels *bitset.Set) (wrapper.Wrapper, error) {
	h.induceCalls++
	ords := labels.Indices()
	if len(ords) == 0 {
		return nil, fmt.Errorf("hlrt: cannot induce from an empty label set")
	}
	// l, r exactly as LR.
	left := h.lr.lefts[ords[0]]
	right := h.lr.rights[ords[0]]
	// Per labeled page: offsets of the first and last label.
	firstOn := map[int]int{}
	lastOn := map[int]int{}
	for _, ord := range ords {
		if len(ords) > 1 {
			left = left[len(left)-textutil.CommonSuffixLen(left, h.lr.lefts[ord]):]
			right = right[:textutil.CommonPrefixLen(right, h.lr.rights[ord])]
		}
		pi := h.c.PageOf(ord)
		idx := h.c.IndexInPage(ord)
		start, end := h.starts[pi][idx], h.ends[pi][idx]
		if cur, ok := firstOn[pi]; !ok || start < cur {
			firstOn[pi] = start
		}
		if cur, ok := lastOn[pi]; !ok || end > cur {
			lastOn[pi] = end
		}
	}
	// h: longest common suffix of the page prefixes before the first label.
	// t: longest common prefix of the page suffixes after the last label.
	head, tail := "", ""
	first := true
	for pi, start := range firstOn {
		html := h.c.Pages[pi].HTML
		prefix := html[:start]
		if len(prefix) > h.maxRegion {
			prefix = prefix[len(prefix)-h.maxRegion:]
		}
		suffix := html[lastOn[pi]:]
		if len(suffix) > h.maxRegion {
			suffix = suffix[:h.maxRegion]
		}
		if first {
			head, tail = prefix, suffix
			first = false
			continue
		}
		head = head[len(head)-textutil.CommonSuffixLen(head, prefix):]
		tail = tail[:textutil.CommonPrefixLen(tail, suffix)]
	}
	return &HLRTWrapper{
		Head: head, Tail: tail, Left: left, Right: right,
		out: h.extract(head, tail, left, right),
	}, nil
}

func (h *HLRT) extract(head, tail, left, right string) *bitset.Set {
	out := h.c.EmptySet()
	for pi, p := range h.c.Pages {
		regionStart := 0
		if head != "" {
			i := strings.Index(p.HTML, head)
			if i < 0 {
				continue // page lacks the head marker: nothing extracted
			}
			regionStart = i + len(head)
		}
		regionEnd := len(p.HTML)
		if tail != "" {
			i := strings.LastIndex(p.HTML, tail)
			if i < 0 {
				continue
			}
			regionEnd = i
		}
		if regionEnd <= regionStart {
			continue
		}
		for idx, n := range p.Texts {
			if h.starts[pi][idx] < regionStart || h.ends[pi][idx] > regionEnd {
				continue
			}
			ord := h.c.OrdinalOf(n)
			if strings.HasSuffix(h.lr.lefts[ord], left) &&
				strings.HasPrefix(h.lr.rights[ord], right) {
				out.Add(ord)
			}
		}
	}
	return out
}

var (
	_ wrapper.Inductor = (*HLRT)(nil)
	_ wrapper.Wrapper  = (*HLRTWrapper)(nil)
)
