// Package lr implements the LR wrapper class of the WIEN system
// (Kushmerick et al. [15, 14]): a document is a character sequence and a
// wrapper is a pair of delimiter strings (l, r); induction finds the longest
// common string preceding and following the labeled examples.
//
// Following the paper's Sec. 5 analysis, LR is realized as a feature-based
// inductor: each text node carries attributes Lk (the k bytes immediately
// preceding it in the serialized page) and Rk (the k bytes following), for
// k up to MaxContext. Induction intersects those features — i.e. takes the
// longest common left suffix and right prefix — and extraction matches
// every text node whose context agrees. A classic character-span scanner
// (ExtractSpans) is also provided for the original WIEN semantics.
//
// Theorem 4: LR is well-behaved; the property tests verify this.
package lr

import (
	"fmt"
	"strings"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/textutil"
	"autowrap/internal/wrapper"
)

// DefaultMaxContext caps delimiter length in bytes. WIEN delimiters are
// short in practice; the cap bounds the feature space so that TopDown's
// attribute set stays finite. An ablation bench sweeps this value.
const DefaultMaxContext = 64

// Inductor is the LR wrapper inductor over one corpus.
type Inductor struct {
	c   *corpus.Corpus
	max int

	lefts  []string // ordinal -> up to max bytes preceding the node
	rights []string // ordinal -> up to max bytes following the node

	cache       map[string]*bitset.Set // delimiter pair -> extraction
	induceCalls int64
}

// Wrapper is an induced LR rule: the (left, right) delimiter pair.
type Wrapper struct {
	Left  string
	Right string
	out   *bitset.Set
}

// Extract implements wrapper.Wrapper.
func (w *Wrapper) Extract() *bitset.Set { return w.out }

// Rule implements wrapper.Wrapper.
func (w *Wrapper) Rule() string {
	return fmt.Sprintf("LR(%q, %q)", w.Left, w.Right)
}

// New builds the LR inductor. maxContext <= 0 selects DefaultMaxContext.
func New(c *corpus.Corpus, maxContext int) *Inductor {
	if maxContext <= 0 {
		maxContext = DefaultMaxContext
	}
	ind := &Inductor{
		c:      c,
		max:    maxContext,
		lefts:  make([]string, c.NumTexts()),
		rights: make([]string, c.NumTexts()),
		cache:  make(map[string]*bitset.Set),
	}
	for _, p := range c.Pages {
		for _, n := range p.Texts {
			ord := c.OrdinalOf(n)
			span, ok := p.Spans[n]
			if !ok {
				continue
			}
			lo := span[0] - maxContext
			if lo < 0 {
				lo = 0
			}
			hi := span[1] + maxContext
			if hi > len(p.HTML) {
				hi = len(p.HTML)
			}
			ind.lefts[ord] = p.HTML[lo:span[0]]
			ind.rights[ord] = p.HTML[span[1]:hi]
		}
	}
	return ind
}

// Name implements wrapper.Inductor.
func (ind *Inductor) Name() string { return "lr" }

// Corpus implements wrapper.Inductor.
func (ind *Inductor) Corpus() *corpus.Corpus { return ind.c }

// MaxContext returns the delimiter length cap.
func (ind *Inductor) MaxContext() int { return ind.max }

// InduceCalls returns the number of Induce invocations (enumeration
// experiments report this counter).
func (ind *Inductor) InduceCalls() int64 { return ind.induceCalls }

// ResetInduceCalls zeroes the call counter.
func (ind *Inductor) ResetInduceCalls() { ind.induceCalls = 0 }

// Induce implements wrapper.Inductor: the learned delimiters are the longest
// common suffix of the labels' left contexts and the longest common prefix
// of their right contexts.
func (ind *Inductor) Induce(labels *bitset.Set) (wrapper.Wrapper, error) {
	ind.induceCalls++
	ords := labels.Indices()
	if len(ords) == 0 {
		return nil, fmt.Errorf("lr: cannot induce from an empty label set")
	}
	left := ind.lefts[ords[0]]
	right := ind.rights[ords[0]]
	for _, ord := range ords[1:] {
		if n := textutil.CommonSuffixLen(left, ind.lefts[ord]); n < len(left) {
			left = left[len(left)-n:]
		}
		if n := textutil.CommonPrefixLen(right, ind.rights[ord]); n < len(right) {
			right = right[:n]
		}
	}
	return &Wrapper{Left: left, Right: right, out: ind.extract(left, right)}, nil
}

func (ind *Inductor) extract(left, right string) *bitset.Set {
	key := left + "\x00" + right
	if out, ok := ind.cache[key]; ok {
		return out
	}
	out := ind.c.EmptySet()
	for ord := range ind.lefts {
		if strings.HasSuffix(ind.lefts[ord], left) && strings.HasPrefix(ind.rights[ord], right) {
			out.Add(ord)
		}
	}
	ind.cache[key] = out
	return out
}

// Attrs implements wrapper.FeatureInductor: the attributes are L1..Lb and
// R1..Rb for b = MaxContext, restricted to lengths that actually occur
// among the labels' contexts.
func (ind *Inductor) Attrs(labels *bitset.Set) []wrapper.Attr {
	maxL, maxR := 0, 0
	labels.ForEach(func(ord int) {
		if len(ind.lefts[ord]) > maxL {
			maxL = len(ind.lefts[ord])
		}
		if len(ind.rights[ord]) > maxR {
			maxR = len(ind.rights[ord])
		}
	})
	out := make([]wrapper.Attr, 0, maxL+maxR)
	for k := 1; k <= maxL; k++ {
		out = append(out, wrapper.Attr{Kind: "L", Pos: k})
	}
	for k := 1; k <= maxR; k++ {
		out = append(out, wrapper.Attr{Kind: "R", Pos: k})
	}
	return out
}

// Subdivide implements wrapper.FeatureInductor: group the nodes of s by
// their k-byte left (right) context. Nodes whose context is shorter than k
// lack the attribute and are omitted.
func (ind *Inductor) Subdivide(s *bitset.Set, a wrapper.Attr) []*bitset.Set {
	k := a.Pos
	if k <= 0 || (a.Kind != "L" && a.Kind != "R") {
		return nil
	}
	groups := make(map[string]*bitset.Set)
	var order []string
	s.ForEach(func(ord int) {
		var key string
		switch a.Kind {
		case "L":
			lc := ind.lefts[ord]
			if len(lc) < k {
				return
			}
			key = lc[len(lc)-k:]
		case "R":
			rc := ind.rights[ord]
			if len(rc) < k {
				return
			}
			key = rc[:k]
		}
		g, ok := groups[key]
		if !ok {
			g = ind.c.EmptySet()
			groups[key] = g
			order = append(order, key)
		}
		g.Add(ord)
	})
	out := make([]*bitset.Set, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	return out
}

// Span is a character range extracted by the classic WIEN scanner.
type Span struct {
	Page  int
	Start int // byte offset of the content (after the left delimiter)
	End   int // byte offset just past the content
}

// ExtractSpans runs the original LR semantics over the serialized pages:
// scan for an occurrence of left, extract the minimal string up to the next
// occurrence of right, resume after it (Sec. 5: "all the minimal strings
// that are delimited by these pairs of strings"). Empty delimiters on both
// sides are rejected to avoid degenerate whole-document matches.
func ExtractSpans(c *corpus.Corpus, left, right string) ([]Span, error) {
	if left == "" && right == "" {
		return nil, fmt.Errorf("lr: both delimiters empty")
	}
	var out []Span
	for _, p := range c.Pages {
		pos := 0
		for {
			i := strings.Index(p.HTML[pos:], left)
			if i < 0 {
				break
			}
			start := pos + i + len(left)
			j := strings.Index(p.HTML[start:], right)
			if j < 0 {
				break
			}
			out = append(out, Span{Page: p.Index, Start: start, End: start + j})
			pos = start + j + len(right)
			if right == "" {
				pos = start + 1 // avoid an infinite loop on empty right
			}
		}
	}
	return out, nil
}

// SpanText resolves a span back to its text.
func SpanText(c *corpus.Corpus, s Span) string {
	return c.Pages[s.Page].HTML[s.Start:s.End]
}

var (
	_ wrapper.Inductor        = (*Inductor)(nil)
	_ wrapper.FeatureInductor = (*Inductor)(nil)
	_ wrapper.Wrapper         = (*Wrapper)(nil)
)
