package lr

import (
	"fmt"

	"autowrap/internal/corpus"
	"autowrap/internal/dom"
	"autowrap/internal/wrapper"
)

// Compiled is the portable form of an LR wrapper: the delimiter pair alone,
// evaluated against any page's serialized character stream instead of the
// training corpus's precomputed context arrays. A text node matches when
// the bytes immediately preceding its serialized content end with Left and
// the bytes immediately following begin with Right — exactly the predicate
// Inductor.extract applies to its capped per-ordinal contexts, because an
// induced delimiter is never longer than the context it was cut from.
type Compiled struct {
	Left  string
	Right string
}

// Compile converts an induced LR wrapper into its portable form.
func Compile(w wrapper.Wrapper) (*Compiled, error) {
	lw, ok := w.(*Wrapper)
	if !ok {
		return nil, fmt.Errorf("lr: cannot compile %T into a portable LR wrapper", w)
	}
	return &Compiled{Left: lw.Left, Right: lw.Right}, nil
}

// Lang implements wrapper.Portable.
func (c *Compiled) Lang() string { return "lr" }

// Rule implements wrapper.Portable, matching Wrapper.Rule.
func (c *Compiled) Rule() string { return fmt.Sprintf("LR(%q, %q)", c.Left, c.Right) }

// ApplyPage implements wrapper.Portable: serialize the page the same way
// corpus construction does, then match every extractable text node whose
// left context ends with Left and whose right context begins with Right.
func (c *Compiled) ApplyPage(root *dom.Node) []*dom.Node {
	html, spans := dom.SerializeWithSpans(root)
	var out []*dom.Node
	root.Walk(func(n *dom.Node) bool {
		if !corpus.IsExtractableText(n) {
			return true
		}
		span, ok := spans[n]
		if !ok {
			return true
		}
		if c.matches(html, span) {
			out = append(out, n)
		}
		return true
	})
	return out
}

func (c *Compiled) matches(html string, span [2]int) bool {
	if span[0] < len(c.Left) || span[1]+len(c.Right) > len(html) {
		return false
	}
	return html[span[0]-len(c.Left):span[0]] == c.Left &&
		html[span[1]:span[1]+len(c.Right)] == c.Right
}

var _ wrapper.Portable = (*Compiled)(nil)
