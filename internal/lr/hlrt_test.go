package lr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
)

// hostilePages puts nav links BEFORE the record list with markup identical
// to the records, so plain LR cannot separate them; only the head/tail
// region can.
func hostilePages() *corpus.Corpus {
	mk := func(names ...string) string {
		var sb strings.Builder
		sb.WriteString(`<html><body><ul class="nav">`)
		for _, junk := range []string{"Home pages", "About pages"} {
			fmt.Fprintf(&sb, `<li><a href="#">%s</a> — menu</li>`, junk)
		}
		sb.WriteString(`</ul><div class="results"><ul class="list">`)
		for _, n := range names {
			fmt.Fprintf(&sb, `<li><a href="#">%s</a> — menu</li>`, n)
		}
		sb.WriteString(`</ul></div><div class="footer">© 2010 Corp</div></body></html>`)
		return sb.String()
	}
	return corpus.ParseHTML([]string{
		mk("PORTER FURNITURE", "ACME CHAIRS"),
		mk("SOFA CITY", "BEDS AND MORE", "LAMP WORLD"),
	})
}

func ordsFor(t *testing.T, c *corpus.Corpus, contents ...string) *bitset.Set {
	t.Helper()
	s := c.EmptySet()
	for _, want := range contents {
		found := false
		for ord := 0; ord < c.NumTexts(); ord++ {
			if c.TextContent(ord) == want {
				s.Add(ord)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("content %q not found", want)
		}
	}
	return s
}

func TestHLRTBeatsLROnHeadJunk(t *testing.T) {
	c := hostilePages()
	// First items of both pages anchor the head; the list-final label
	// anchors the tail and keeps the right delimiter free of successor
	// markup (which would otherwise match every <li><a> item — nav
	// included).
	labels := ordsFor(t, c, "PORTER FURNITURE", "SOFA CITY", "LAMP WORLD")

	lrInd := New(c, 0)
	lw, err := lrInd.Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	// Plain LR picks up the nav items too.
	lrGot := c.Contents(lw.Extract())
	if len(lrGot) <= 5 {
		t.Fatalf("expected LR to over-extract nav junk, got %v", lrGot)
	}

	hInd := NewHLRT(c, 0, 0)
	hw, err := hInd.Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	hGot := c.Contents(hw.Extract())
	if len(hGot) != 5 {
		t.Fatalf("HLRT extraction = %v, want the 5 names (LR got %v)", hGot, lrGot)
	}
	for _, v := range hGot {
		if strings.Contains(v, "pages") {
			t.Fatalf("HLRT leaked nav junk: %v", hGot)
		}
	}
	hlrt := hw.(*HLRTWrapper)
	if hlrt.Head == "" || hlrt.Tail == "" {
		t.Fatalf("expected non-trivial head/tail: %s", hw.Rule())
	}
}

func TestHLRTRuleString(t *testing.T) {
	c := hostilePages()
	labels := ordsFor(t, c, "PORTER FURNITURE", "BEDS AND MORE")
	hInd := NewHLRT(c, 0, 0)
	w, err := hInd.Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(w.Rule(), "HLRT(") {
		t.Fatalf("rule = %q", w.Rule())
	}
}

func TestHLRTSingleLabel(t *testing.T) {
	c := hostilePages()
	labels := ordsFor(t, c, "ACME CHAIRS")
	hInd := NewHLRT(c, 0, 0)
	w, err := hInd.Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Extract().Has(labels.Indices()[0]) {
		t.Fatal("fidelity violated on singleton")
	}
}

func TestHLRTEmptyLabelsRejected(t *testing.T) {
	c := hostilePages()
	if _, err := NewHLRT(c, 0, 0).Induce(c.EmptySet()); err == nil {
		t.Fatal("expected error")
	}
}

// TestHLRTFidelity property-checks the one guarantee the simplified HLRT
// induction makes: the training labels are always extracted. (WIEN's exact
// candidate-search induction is well-behaved per the paper; this simplified
// variant gives up monotonicity and closure — adding labels can relocate
// the region anchors — which is why it is offered as a direct learner, not
// as an enumeration-backed one.)
func TestHLRTFidelity(t *testing.T) {
	c := hostilePages()
	hInd := NewHLRT(c, 0, 0)
	rng := rand.New(rand.NewSource(3))
	universe := c.NumTexts()
	for iter := 0; iter < 300; iter++ {
		s := bitset.New(universe)
		n := 1 + rng.Intn(5)
		for s.Count() < n {
			s.Add(rng.Intn(universe))
		}
		w, err := hInd.Induce(s)
		if err != nil {
			t.Fatal(err)
		}
		if !s.SubsetOf(w.Extract()) {
			t.Fatalf("fidelity violated for %v: extracted %v",
				s.Indices(), w.Extract().Indices())
		}
	}
}

func TestHLRTPageWithoutMarkers(t *testing.T) {
	// A page that lacks the head marker contributes nothing.
	c := corpus.ParseHTML([]string{
		`<html><body><div class="top">x</div><div class="list"><b>ALPHA</b><b>BETA</b></div><div class="end">z</div></body></html>`,
		`<html><body><p>totally different page</p></body></html>`,
	})
	labels := ordsFor(t, c, "ALPHA", "BETA")
	w, err := NewHLRT(c, 0, 0).Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	w.Extract().ForEach(func(ord int) {
		if c.PageOf(ord) == 1 {
			t.Fatalf("extracted %q from a page without region markers", c.TextContent(ord))
		}
	})
}

func TestHLRTCallCounter(t *testing.T) {
	c := hostilePages()
	h := NewHLRT(c, 0, 0)
	labels := ordsFor(t, c, "ACME CHAIRS")
	if _, err := h.Induce(labels); err != nil {
		t.Fatal(err)
	}
	if h.InduceCalls() != 1 {
		t.Fatalf("calls = %d", h.InduceCalls())
	}
}
