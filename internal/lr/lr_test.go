package lr

import (
	"fmt"
	"strings"
	"testing"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/enum"
	"autowrap/internal/wrapper"
)

// listingPages builds a small store-locator-style site: names inside
// <td><u>...</u>, addresses as bare text.
func listingPages() *corpus.Corpus {
	mk := func(rows ...[2]string) string {
		var sb strings.Builder
		sb.WriteString(`<html><body><div class="dealers">`)
		for _, r := range rows {
			fmt.Fprintf(&sb, `<tr><td><u>%s</u><br>%s</td></tr>`, r[0], r[1])
		}
		sb.WriteString(`</div></body></html>`)
		return sb.String()
	}
	return corpus.ParseHTML([]string{
		mk([2]string{"PORTER FURNITURE", "201 HWY 30 West"},
			[2]string{"WOODLAND FURNITURE", "123 Main St"}),
		mk([2]string{"ACME CHAIRS", "9 Elm Ave"},
			[2]string{"BEDS AND MORE", "77 Oak Blvd"},
			[2]string{"SOFA CITY", "4 Pine Rd"}),
	})
}

func ordsByContent(t *testing.T, c *corpus.Corpus, contents ...string) *bitset.Set {
	t.Helper()
	s := c.EmptySet()
	for _, want := range contents {
		found := false
		for ord := 0; ord < c.NumTexts(); ord++ {
			if c.TextContent(ord) == want {
				s.Add(ord)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("content %q not found", want)
		}
	}
	return s
}

func TestInduceLearnsDelimiters(t *testing.T) {
	c := listingPages()
	ind := New(c, 0)
	// Labels must span row positions, otherwise the common context keeps
	// the list-opening markup and the rule pins to first rows.
	labels := ordsByContent(t, c, "PORTER FURNITURE", "BEDS AND MORE")
	w, err := ind.Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	lw := w.(*Wrapper)
	if !strings.HasSuffix(lw.Left, "<td><u>") {
		t.Fatalf("left delimiter = %q, want suffix <td><u>", lw.Left)
	}
	if !strings.HasPrefix(lw.Right, "</u><br>") {
		t.Fatalf("right delimiter = %q, want prefix </u><br>", lw.Right)
	}
	// The induced wrapper extracts exactly the five names.
	got := c.Contents(w.Extract())
	if len(got) != 5 {
		t.Fatalf("extracted %v", got)
	}
	for _, v := range got {
		if !strings.Contains("PORTER FURNITURE WOODLAND FURNITURE ACME CHAIRS BEDS AND MORE SOFA CITY", v) {
			t.Fatalf("unexpected extraction %q", v)
		}
	}
}

func TestSingleLabelIsMostSpecific(t *testing.T) {
	c := listingPages()
	ind := New(c, 0)
	labels := ordsByContent(t, c, "PORTER FURNITURE")
	w, err := ind.Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	// With MaxContext bytes of exact context the only plausible match is
	// the label itself.
	if got := c.Contents(w.Extract()); len(got) != 1 || got[0] != "PORTER FURNITURE" {
		t.Fatalf("singleton extraction = %v", got)
	}
}

func TestNoiseOverGeneralizes(t *testing.T) {
	c := listingPages()
	ind := New(c, 0)
	// One address mixed into the name labels: delimiters collapse to the
	// common markup and the wrapper matches every cell text.
	labels := ordsByContent(t, c, "PORTER FURNITURE", "ACME CHAIRS", "9 Elm Ave")
	w, err := ind.Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := ind.Induce(ordsByContent(t, c, "PORTER FURNITURE", "ACME CHAIRS"))
	if w.Extract().Count() <= clean.Extract().Count() {
		t.Fatalf("noisy wrapper should over-generalize: %d vs %d",
			w.Extract().Count(), clean.Extract().Count())
	}
}

func TestWellBehaved(t *testing.T) {
	c := listingPages()
	ind := New(c, 0)
	labels := ordsByContent(t, c,
		"PORTER FURNITURE", "ACME CHAIRS", "SOFA CITY", "9 Elm Ave", "123 Main St")
	if err := wrapper.CheckWellBehaved(ind, labels); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerationAgreement(t *testing.T) {
	c := listingPages()
	ind := New(c, 0)
	labels := ordsByContent(t, c,
		"PORTER FURNITURE", "ACME CHAIRS", "SOFA CITY", "9 Elm Ave", "201 HWY 30 West")
	naive, err := enum.Naive(ind, labels)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := enum.BottomUp(ind, labels, enum.Options{})
	if err != nil {
		t.Fatal(err)
	}
	td, err := enum.TopDown(ind, labels, enum.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ns, bs, ts := naive.Signatures(), bu.Signatures(), td.Signatures()
	if len(ns) == 0 {
		t.Fatal("empty wrapper space")
	}
	if fmt.Sprint(ns) != fmt.Sprint(bs) {
		t.Fatalf("BottomUp != Naive: %d vs %d wrappers", len(bs), len(ns))
	}
	if fmt.Sprint(ns) != fmt.Sprint(ts) {
		t.Fatalf("TopDown != Naive: %d vs %d wrappers", len(ts), len(ns))
	}
	if td.Calls != int64(len(ns)) {
		t.Fatalf("TopDown calls = %d, want k = %d", td.Calls, len(ns))
	}
}

func TestMaxContextCapsDelimiters(t *testing.T) {
	c := listingPages()
	ind := New(c, 4)
	labels := ordsByContent(t, c, "PORTER FURNITURE")
	w, _ := ind.Induce(labels)
	lw := w.(*Wrapper)
	if len(lw.Left) > 4 || len(lw.Right) > 4 {
		t.Fatalf("delimiters exceed cap: %q / %q", lw.Left, lw.Right)
	}
}

func TestPageBoundaryContexts(t *testing.T) {
	// A text node at the very start of a page has a short left context.
	c := corpus.ParseHTML([]string{`leading text<div>x</div>`})
	ind := New(c, 64)
	labels := ordsByContent(t, c, "leading text")
	w, err := ind.Induce(labels)
	if err != nil {
		t.Fatal(err)
	}
	lw := w.(*Wrapper)
	if lw.Left != "" {
		t.Fatalf("page-start label should have empty left delimiter, got %q", lw.Left)
	}
	if !w.Extract().Equal(labels) {
		// '' left delimiter matches any node whose right context agrees;
		// here only the label itself starts a page.
		t.Fatalf("extraction = %v", c.Contents(w.Extract()))
	}
}

func TestExtractSpansClassicSemantics(t *testing.T) {
	c := corpus.ParseHTML([]string{
		`<table><tr><td>alpha</td><td>beta</td></tr><tr><td>gamma</td></tr></table>`,
	})
	spans, err := ExtractSpans(c, "<td>", "</td>")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range spans {
		got = append(got, SpanText(c, s))
	}
	want := "alpha,beta,gamma"
	if strings.Join(got, ",") != want {
		t.Fatalf("spans = %v, want %v", got, want)
	}
}

func TestExtractSpansMinimality(t *testing.T) {
	c := corpus.ParseHTML([]string{`<div><b>one</b> mid <b>two</b></div>`})
	spans, err := ExtractSpans(c, "<b>", "</b>")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("span count = %d", len(spans))
	}
	if SpanText(c, spans[0]) != "one" || SpanText(c, spans[1]) != "two" {
		t.Fatalf("spans = %q, %q", SpanText(c, spans[0]), SpanText(c, spans[1]))
	}
}

func TestExtractSpansEmptyDelimitersRejected(t *testing.T) {
	c := listingPages()
	if _, err := ExtractSpans(c, "", ""); err == nil {
		t.Fatal("expected error")
	}
}

func TestNodeModeAgreesWithSpanMode(t *testing.T) {
	// When the delimiters exactly bracket whole text nodes, the classic
	// span scanner and the node matcher find the same content.
	c := listingPages()
	ind := New(c, 0)
	labels := ordsByContent(t, c, "PORTER FURNITURE", "ACME CHAIRS")
	w, _ := ind.Induce(labels)
	lw := w.(*Wrapper)
	spans, err := ExtractSpans(c, lw.Left, lw.Right)
	if err != nil {
		t.Fatal(err)
	}
	spanTexts := map[string]bool{}
	for _, s := range spans {
		spanTexts[SpanText(c, s)] = true
	}
	for _, v := range c.Contents(w.Extract()) {
		if !spanTexts[v] {
			t.Fatalf("node-mode extraction %q missing from span mode %v", v, spanTexts)
		}
	}
}

func TestInduceCallCounter(t *testing.T) {
	c := listingPages()
	ind := New(c, 0)
	labels := ordsByContent(t, c, "PORTER FURNITURE", "ACME CHAIRS")
	if _, err := ind.Induce(labels); err != nil {
		t.Fatal(err)
	}
	if ind.InduceCalls() != 1 {
		t.Fatalf("calls = %d", ind.InduceCalls())
	}
	ind.ResetInduceCalls()
	if ind.InduceCalls() != 0 {
		t.Fatal("reset failed")
	}
}

func TestEmptyLabelsRejected(t *testing.T) {
	c := listingPages()
	ind := New(c, 0)
	if _, err := ind.Induce(c.EmptySet()); err == nil {
		t.Fatal("expected error")
	}
}
