// Package gen simulates the web publication process of the paper's
// Sec. 2.1: pick a schema, pick a rendering script, render a set of records
// into structurally identical HTML pages. It stands in for the proprietary
// datasets of the paper's evaluation (330 dealer-locator sites, 15
// discography sites, 10 shopping sites) — see DESIGN.md, "Substitutions".
//
// All generation is deterministic in the provided seeds.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Word pools. The pools deliberately overlap: some city words double as
// one-word business names, which is what makes a dictionary annotator
// produce organic false positives ("errors stem from business names
// matching street addresses", Sec. 7).
var (
	cityWords = []string{
		"Albany", "Brookfield", "Camden", "Dayton", "Easton", "Fairview",
		"Georgetown", "Hartford", "Irvine", "Jackson", "Kingston", "Lakeside",
		"Madison", "Norwood", "Oakdale", "Portland", "Quincy", "Riverside",
		"Salem", "Trenton", "Union", "Vernon", "Westfield", "Yorkville",
		"Woodland", "Ashland", "Bristol", "Clinton", "Dover", "Elmwood",
	}
	stateCodes = []string{
		"AL", "CA", "CO", "FL", "GA", "IL", "KY", "MA", "MI", "MS",
		"NC", "NJ", "NY", "OH", "PA", "TN", "TX", "VA", "WA", "WI",
	}
	streetWords = []string{
		"Main", "Oak", "Maple", "Cedar", "Pine", "Elm", "Walnut", "Lake",
		"Hill", "Park", "Washington", "Church", "Spring", "Ridge", "Mill",
		"River", "Sunset", "Highland", "Forest", "Meadow",
	}
	streetSuffixes = []string{"St", "Ave", "Blvd", "Rd", "Dr", "Ln", "Hwy 30", "Pkwy"}

	nameLeads = []string{
		"Porter", "Ashton", "Bellamy", "Carver", "Dalton", "Everett",
		"Foster", "Granger", "Harmon", "Ingram", "Jasper", "Keller",
		"Lawson", "Mercer", "Nolan", "Osborne", "Prescott", "Quimby",
		"Rowan", "Sutton", "Thatcher", "Underhill", "Vance", "Whitman",
		"Yates", "Zimmer", "Colton", "Draper", "Ellison", "Fletcher",
		"Barrett", "Crawford", "Donovan", "Emerson", "Gardner", "Holloway",
		"Kendall", "Lambert", "Monroe", "Sheffield",
	}
	nameTrades = []string{
		"Furniture", "Interiors", "Appliances", "Electronics", "Lighting",
		"Carpets", "Kitchens", "Bedding", "Antiques", "Cabinets",
		"Hardware", "Furnishings",
	}
	// Suffixes are mandatory and pairwise non-nested so no generated name
	// is a word-boundary substring of another: the dictionary annotator's
	// recall then equals the dictionary's sampling fraction.
	nameSuffixes = []string{
		" Co", " Inc", " Outlet", " Gallery", " Warehouse",
		" Depot", " Center", " Shop", " & Sons", " Direct", " Studio", " Mart",
	}

	albumWords = []string{
		"Midnight", "Silver", "Echo", "Crimson", "Velvet", "Electric",
		"Golden", "Paper", "Winter", "Neon", "Hollow", "Scarlet", "Atlas",
		"Ember", "Harbor", "Mirror", "Static", "Wild", "Quiet", "Solar",
	}
	albumNouns = []string{
		"Roads", "Dreams", "Letters", "Gardens", "Signals", "Horizons",
		"Shadows", "Rivers", "Stories", "Windows", "Machines", "Seasons",
		"Fires", "Voices", "Tides", "Maps",
	}
	trackVerbs = []string{
		"Chasing", "Finding", "Leaving", "Burning", "Holding", "Breaking",
		"Calling", "Dreaming", "Falling", "Waiting", "Running", "Singing",
	}
	trackNouns = []string{
		"the Sun", "Your Ghost", "the Tide", "Tomorrow", "the Wire",
		"My Shadow", "the Storm", "Home", "the Lights", "Yesterday",
		"the River", "Gravity", "the Echo", "Stars", "the Silence",
	}
	// Alternate track vocabulary, disjoint from the one above: tracks of
	// site-specific albums (and bonus tracks) draw from it so they never
	// collide with the seed-album dictionary — mirroring how rarely real
	// track titles collide across unrelated albums.
	trackVerbsAlt = []string{
		"Drifting", "Counting", "Painting", "Tracing", "Spinning",
		"Weaving", "Melting", "Rising", "Bending", "Sailing", "Wandering",
		"Gathering",
	}
	trackNounsAlt = []string{
		"the Rain", "Old Roads", "the Canyon", "December", "the Smoke",
		"Her Letters", "the Valley", "Daylight", "the Harbor", "Midnight Air",
		"the Garden", "Thunder", "the Window", "Embers", "the Morning",
	}
	artistNames = []string{
		"The Night Owls", "Clara Voss", "Redwood Parade", "Miles Hartley",
		"The Paper Kites", "Iris & June", "Delta Haze", "Sam Mercer",
		"The Lanterns", "Ada Quinn", "Granite Choir", "Leo Marsh",
	}

	phoneBrands = []string{"Nokira", "Samsong", "Motorix", "Appelo", "Sonetic",
		"Huaron", "Zentel", "Blackbird"}
	// DictBrands are the five "popular brands" whose models form the
	// PRODUCTS dictionary (paper: "five popular brands ... total size 463").
	DictBrands = phoneBrands[:5]
)

// Business is one store-locator record.
type Business struct {
	Name   string
	Street string
	City   string
	State  string
	Zip    string
	Phone  string
}

// BusinessPool deterministically generates n distinct businesses.
// ambiguousFrac of them get one-word names drawn from the city pool — these
// are the names whose dictionary entries fire inside address lines.
//
// Names are enumerated from the word pools and shuffled rather than
// rejection-sampled, so any n is safe: when n exceeds the distinct
// combinations, numbered variants ("X FURNITURE 2") extend the space.
func BusinessPool(seed int64, n int, ambiguousFrac float64) []Business {
	rng := rand.New(rand.NewSource(seed))
	var combos []string
	seenCombo := make(map[string]bool)
	for _, lead := range nameLeads {
		for _, trade := range nameTrades {
			for _, suf := range nameSuffixes {
				name := strings.ToUpper(lead + " " + trade + suf)
				if !seenCombo[name] {
					seenCombo[name] = true
					combos = append(combos, name)
				}
			}
		}
	}
	rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	nAmb := int(ambiguousFrac * float64(n))
	if nAmb > len(cityWords) {
		nAmb = len(cityWords)
	}
	names := make([]string, 0, n)
	for i := 0; i < nAmb; i++ {
		names = append(names, strings.ToUpper(cityWords[i]))
	}
	for i := 0; len(names) < n; i++ {
		name := combos[i%len(combos)]
		if i >= len(combos) {
			name = fmt.Sprintf("%s %d", name, i/len(combos)+2)
		}
		names = append(names, name)
	}
	out := make([]Business, 0, n)
	for _, name := range names {
		// Most street numbers are short, but some are five digits — those
		// are the zipcode annotator's false-positive source (Appendix A:
		// noise from "five-digit street address").
		streetNum := 1 + rng.Intn(9899)
		if rng.Float64() < 0.15 {
			streetNum = 10000 + rng.Intn(9000)
		}
		out = append(out, Business{
			Name:   name,
			Street: fmt.Sprintf("%d %s %s", streetNum, pick(rng, streetWords), pick(rng, streetSuffixes)),
			City:   strings.ToUpper(pick(rng, cityWords)),
			State:  pick(rng, stateCodes),
			Zip:    fmt.Sprintf("%05d", 10000+rng.Intn(89999)),
			Phone:  fmt.Sprintf("%d-%d-%04d", 200+rng.Intn(799), 200+rng.Intn(799), rng.Intn(10000)),
		})
	}
	return out
}

// Album is one discography record.
type Album struct {
	Title  string
	Artist string
	Year   int
	Tracks []string
	// TitleTrack marks albums named after one of their tracks — the DISC
	// annotator's main false-positive source ("track titles matching album
	// titles").
	TitleTrack bool
}

// AlbumPool deterministically generates n distinct albums with 8–14 tracks
// each; titleTrackFrac of them are named after their first track. The seed
// dictionary albums use this pool.
func AlbumPool(seed int64, n int, titleTrackFrac float64) []Album {
	return albumPool(seed, n, titleTrackFrac, trackVerbs, trackNouns)
}

// AlbumPoolAlt generates albums from the alternate (disjoint) track
// vocabulary: site-specific albums whose tracks must not appear in the
// annotation dictionary.
func AlbumPoolAlt(seed int64, n int, titleTrackFrac float64) []Album {
	return albumPool(seed, n, titleTrackFrac, trackVerbsAlt, trackNounsAlt)
}

// AltTrackName draws one track name from the alternate vocabulary (bonus
// tracks).
func AltTrackName(rng *rand.Rand) string {
	return pick(rng, trackVerbsAlt) + " " + pick(rng, trackNounsAlt)
}

func albumPool(seed int64, n int, titleTrackFrac float64, verbs, nouns []string) []Album {
	rng := rand.New(rand.NewSource(seed))
	seenTitle := make(map[string]bool)
	out := make([]Album, 0, n)
	attempts := 0
	for len(out) < n {
		attempts++
		nTracks := 8 + rng.Intn(7)
		tracks := make([]string, 0, nTracks)
		seenTrack := make(map[string]bool)
		for len(tracks) < nTracks {
			tr := pick(rng, verbs) + " " + pick(rng, nouns)
			if seenTrack[tr] {
				continue
			}
			seenTrack[tr] = true
			tracks = append(tracks, tr)
		}
		a := Album{
			Artist: pick(rng, artistNames),
			Year:   1965 + rng.Intn(45),
			Tracks: tracks,
		}
		if rng.Float64() < titleTrackFrac {
			a.Title = tracks[0]
			a.TitleTrack = true
		} else {
			a.Title = pick(rng, albumWords) + " " + pick(rng, albumNouns)
		}
		if attempts > 20*n+1000 {
			// The combinational title space is bounded; extend it with a
			// volume number rather than spinning on rejections.
			a.Title = fmt.Sprintf("%s Vol. %d", a.Title, attempts%97+2)
			a.TitleTrack = false
		}
		if seenTitle[a.Title] {
			continue
		}
		seenTitle[a.Title] = true
		out = append(out, a)
	}
	return out
}

// Product is one shopping record (a cellphone).
type Product struct {
	Name  string // "Brand Model-123"
	Brand string
	Price string
}

// ProductPool deterministically generates n distinct cellphones across all
// brands (dictionary brands and others).
func ProductPool(seed int64, n int) []Product {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	out := make([]Product, 0, n)
	series := []string{"X", "Z", "Neo", "Pro", "Lite", "Max", "Star", "Flip"}
	attempts := 0
	for len(out) < n {
		attempts++
		brand := pick(rng, phoneBrands)
		name := fmt.Sprintf("%s %s%d", brand, pick(rng, series), 100+rng.Intn(900))
		if attempts > 20*n+1000 {
			name = fmt.Sprintf("%s mk%d", name, attempts)
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, Product{
			Name:  name,
			Brand: brand,
			Price: fmt.Sprintf("$%d.99", 49+rng.Intn(900)),
		})
	}
	return out
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }
