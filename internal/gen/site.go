package gen

import (
	"fmt"
	"sort"
	"strings"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
	"autowrap/internal/dom"
)

// Site is one generated website: the parsed corpus plus gold labels per
// type. The corpus is produced by serializing the generated DOM to HTML and
// re-parsing it through the real parser, so extraction code never touches
// generator internals.
type Site struct {
	Name   string
	Corpus *corpus.Corpus
	// Gold maps a type name ("name", "zip", "track", "album", "product")
	// to the set of gold text-node ordinals.
	Gold map[string]*bitset.Set
	// GoldRecords pairs name and zip ordinals per record (multi-type
	// evaluation); empty for datasets without a second type.
	GoldRecords [][2]int
	// PageValues maps a type to the per-page single value (e.g. the album
	// title of each DISC page) for single-entity evaluation.
	PageValues map[string][]string
	// LRHostile marks sites built so that no perfect LR wrapper exists.
	LRHostile bool
	// Layout identifies the rendering script family (diagnostics).
	Layout string
}

// goldSpec records where a gold value was rendered: relocation after
// re-parsing matches on exact trimmed content plus the enclosing tag, which
// disambiguates e.g. a title-track album heading from the track link of the
// same name.
type goldSpec struct {
	value     string
	parentTag string
}

// pageBuild accumulates one page's DOM and gold positions.
type pageBuild struct {
	doc  *dom.Node
	gold map[string][]goldSpec
}

func newPage() *pageBuild {
	return &pageBuild{doc: dom.NewDocument(), gold: make(map[string][]goldSpec)}
}

func (p *pageBuild) markGold(typ, value, parentTag string) {
	p.gold[typ] = append(p.gold[typ], goldSpec{value: strings.TrimSpace(value), parentTag: parentTag})
}

// finishSite serializes, re-parses and relocates gold nodes.
func finishSite(name, layout string, hostile bool, pages []*pageBuild, pageValues map[string][]string) (*Site, error) {
	htmls := make([]string, len(pages))
	for i, p := range pages {
		htmls[i] = dom.Serialize(p.doc)
	}
	c := corpus.ParseHTML(htmls)
	site := &Site{
		Name:       name,
		Corpus:     c,
		Gold:       make(map[string]*bitset.Set),
		PageValues: pageValues,
		LRHostile:  hostile,
		Layout:     layout,
	}
	// Index this corpus's text nodes by page for relocation.
	type key struct {
		page  int
		value string
		tag   string
	}
	byKey := make(map[key][]int)
	for ord := 0; ord < c.NumTexts(); ord++ {
		n := c.Text(ord)
		tag := ""
		if n.Parent != nil {
			tag = n.Parent.Tag
		}
		k := key{page: c.PageOf(ord), value: c.TextContent(ord), tag: tag}
		byKey[k] = append(byKey[k], ord)
	}
	for pi, p := range pages {
		for typ, specs := range p.gold {
			set, ok := site.Gold[typ]
			if !ok {
				set = c.EmptySet()
				site.Gold[typ] = set
			}
			for _, spec := range specs {
				ords := byKey[key{page: pi, value: spec.value, tag: spec.parentTag}]
				if len(ords) == 0 {
					return nil, fmt.Errorf("gen: site %s page %d: gold %s value %q (tag %s) not found after reparse",
						name, pi, typ, spec.value, spec.parentTag)
				}
				for _, ord := range ords {
					set.Add(ord)
				}
			}
		}
	}
	if err := site.pairRecords(); err != nil {
		return nil, err
	}
	return site, nil
}

// pairRecords builds (name, zip) gold records by scanning each page in
// document order: every name opens a record, the next zip completes it.
func (s *Site) pairRecords() error {
	names, okN := s.Gold["name"]
	zips, okZ := s.Gold["zip"]
	if !okN || !okZ {
		return nil
	}
	type occ struct {
		ord   int
		isZip bool
	}
	perPage := make(map[int][]occ)
	names.ForEach(func(ord int) {
		p := s.Corpus.PageOf(ord)
		perPage[p] = append(perPage[p], occ{ord: ord})
	})
	zips.ForEach(func(ord int) {
		p := s.Corpus.PageOf(ord)
		perPage[p] = append(perPage[p], occ{ord: ord, isZip: true})
	})
	var pagesIdx []int
	for p := range perPage {
		pagesIdx = append(pagesIdx, p)
	}
	sort.Ints(pagesIdx)
	for _, p := range pagesIdx {
		seq := perPage[p]
		sort.Slice(seq, func(i, j int) bool { return seq[i].ord < seq[j].ord })
		openName := -1
		for _, o := range seq {
			if !o.isZip {
				if openName != -1 {
					return fmt.Errorf("gen: site %s page %d: name %d has no zip", s.Name, p, openName)
				}
				openName = o.ord
				continue
			}
			if openName == -1 {
				return fmt.Errorf("gen: site %s page %d: zip %d precedes any name", s.Name, p, o.ord)
			}
			s.GoldRecords = append(s.GoldRecords, [2]int{openName, o.ord})
			openName = -1
		}
		if openName != -1 {
			return fmt.Errorf("gen: site %s page %d: trailing unpaired name", s.Name, p)
		}
	}
	return nil
}

// el and text are terse DOM construction helpers for the layout scripts.
func el(tag string, kv ...string) *dom.Node { return dom.NewElement(tag, kv...) }

func text(s string) *dom.Node { return dom.NewText(s) }

func elText(tag, content string, kv ...string) *dom.Node {
	n := dom.NewElement(tag, kv...)
	n.Append(dom.NewText(content))
	return n
}
