package gen

import (
	"fmt"
	"math/rand"

	"autowrap/internal/dom"
)

// DiscConfig parameterizes one discography website: one page per album,
// each listing the album's tracks.
type DiscConfig struct {
	Seed     int64
	SiteName string
	// SeedAlbums are the albums every site carries (the paper's 11 popular
	// albums that form the annotation dictionary).
	SeedAlbums []Album
	// ExtraAlbums is how many site-specific albums to add.
	ExtraAlbums int
	// BonusTrackProb is the per-album probability that the site lists 1–2
	// bonus tracks absent from the dictionary (the annotator's recall
	// loss).
	BonusTrackProb float64
	// CommentProb is the per-seed-album-page probability of a user comment
	// quoting a track title (an annotator false positive inside free
	// text).
	CommentProb float64
}

func (c DiscConfig) withDefaults() DiscConfig {
	if c.SiteName == "" {
		c.SiteName = fmt.Sprintf("disc-site-%d", c.Seed)
	}
	if c.ExtraAlbums == 0 {
		c.ExtraAlbums = 9
	}
	if c.BonusTrackProb == 0 {
		c.BonusTrackProb = 0.5
	}
	if c.CommentProb == 0 {
		c.CommentProb = 0.8
	}
	return c
}

type discStyle struct {
	layout    int // 0 ordered list, 1 table, 2 unordered list with numbers
	trackTag  string
	listClass string
	crumb     bool
}

var discLayoutNames = []string{"ol", "table", "ul"}

// DiscSite generates one discography website with gold "track" and "album"
// labels plus per-page album titles in PageValues["album"].
func DiscSite(cfg DiscConfig) (*Site, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	style := discStyle{
		layout:    rng.Intn(3),
		trackTag:  pick(rng, []string{"a", "b", "span"}),
		listClass: pick(rng, []string{"tracklist", "tracks", "songlist"}),
		crumb:     rng.Float64() < 0.7,
	}

	// Site catalogue: all seed albums plus site-specific ones. Extra albums
	// must not collide with seed titles (pool construction dedupes titles
	// only within one call, so re-draw as needed).
	albums := append([]Album(nil), cfg.SeedAlbums...)
	seen := make(map[string]bool)
	for _, a := range albums {
		seen[a.Title] = true
	}
	extra := AlbumPoolAlt(cfg.Seed*31+7, cfg.ExtraAlbums*3, 0.3)
	for _, a := range extra {
		if len(albums) >= len(cfg.SeedAlbums)+cfg.ExtraAlbums {
			break
		}
		if seen[a.Title] {
			continue
		}
		seen[a.Title] = true
		albums = append(albums, a)
	}

	// Sidebar recommendations come from the site-specific catalogue only:
	// a real site's "more albums" box shows its own inventory, so it must
	// not re-expose the (seed) dictionary titles on every page — that
	// would hand the single-entity learner a better-covered wrong rule.
	extras2 := albums[len(cfg.SeedAlbums):]

	var pages []*pageBuild
	values := map[string][]string{"album": {}}
	for _, album := range albums {
		tracks := append([]string(nil), album.Tracks...)
		if rng.Float64() < cfg.BonusTrackProb {
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				tracks = append(tracks, AltTrackName(rng)+" (Bonus)")
			}
		}
		comment := ""
		if rng.Float64() < cfg.CommentProb && len(album.Tracks) > 0 {
			quoted := album.Tracks[rng.Intn(len(album.Tracks))]
			comment = fmt.Sprintf("Absolutely love %s, best song of %d!", quoted, album.Year)
		}
		pages = append(pages, discPage(cfg, style, album, tracks, comment, extras2, rng))
		values["album"] = append(values["album"], album.Title)
	}
	return finishSite(cfg.SiteName, discLayoutNames[style.layout], false, pages, values)
}

func discPage(cfg DiscConfig, style discStyle, album Album, tracks []string, comment string, catalogue []Album, rng *rand.Rand) *pageBuild {
	p := newPage()
	html := p.doc.Append(el("html"))
	head := html.Append(el("head"))
	head.Append(elText("title", album.Title+" - "+album.Artist+" | "+cfg.SiteName))
	body := html.Append(el("body"))

	header := body.Append(el("div", "class", "header"))
	header.Append(elText("h2", cfg.SiteName))
	nav := header.Append(el("ul", "class", "topnav"))
	for _, item := range []string{"Albums", "Artists", "Charts", "Forum"} {
		li := nav.Append(el("li"))
		li.Append(elText("a", item, "href", "#"))
	}

	main := body.Append(el("div", "class", "main"))
	if style.crumb {
		crumb := main.Append(el("div", "class", "crumb"))
		crumb.Append(elText("a", "Home", "href", "#"))
		crumb.Append(text(" > "))
		crumb.Append(elText("a", "Albums", "href", "#"))
		crumb.Append(text(" > "))
		crumb.Append(elText("span", album.Title))
		p.markGold("album", album.Title, "span")
	}
	main.Append(elText("h1", album.Title))
	p.markGold("album", album.Title, "h1")
	main.Append(elText("div", fmt.Sprintf("%s — %d", album.Artist, album.Year), "class", "meta"))

	renderTrackList(p, main, style, tracks)

	// Related albums sidebar, drawn per page from the site's own
	// catalogue.
	related := body.Append(el("div", "class", "related"))
	related.Append(elText("h4", "More Albums"))
	ul := related.Append(el("ul"))
	count := 0
	for _, oi := range rng.Perm(len(catalogue)) {
		other := catalogue[oi]
		if count >= 3 || other.Title == album.Title {
			continue
		}
		li := ul.Append(el("li"))
		li.Append(elText("a", other.Title, "href", "#"))
		count++
	}

	if comment != "" {
		cdiv := body.Append(el("div", "class", "comments"))
		cdiv.Append(elText("h4", "Comments"))
		cdiv.Append(elText("p", comment))
	}

	footer := body.Append(el("div", "class", "footer"))
	footer.Append(text(fmt.Sprintf("© 2010 %s", cfg.SiteName)))
	return p
}

func renderTrackList(p *pageBuild, main *dom.Node, style discStyle, tracks []string) {
	switch style.layout {
	case 0: // ordered list
		ol := main.Append(el("ol", "class", style.listClass))
		for i, tr := range tracks {
			li := ol.Append(el("li"))
			li.Append(elText(style.trackTag, tr))
			li.Append(elText("span", fmt.Sprintf("%d:%02d", 2+i%4, (i*17)%60)))
			p.markGold("track", tr, style.trackTag)
		}
	case 1: // table
		tbl := main.Append(el("table", "class", style.listClass))
		for i, tr := range tracks {
			row := tbl.Append(el("tr"))
			row.Append(elText("td", fmt.Sprintf("%d.", i+1)))
			cell := row.Append(el("td"))
			cell.Append(elText(style.trackTag, tr))
			row.Append(elText("td", fmt.Sprintf("%d:%02d", 2+i%4, (i*13)%60)))
			p.markGold("track", tr, style.trackTag)
		}
	case 2: // unordered list with explicit numbers
		ul := main.Append(el("ul", "class", style.listClass))
		for i, tr := range tracks {
			li := ul.Append(el("li"))
			li.Append(elText("span", fmt.Sprintf("%02d", i+1), "class", "num"))
			li.Append(elText(style.trackTag, tr))
			p.markGold("track", tr, style.trackTag)
		}
	}
}
