package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"autowrap/internal/dom"
)

// DealerConfig parameterizes one dealer-locator website.
type DealerConfig struct {
	Seed     int64
	SiteName string
	// Pool is the global business pool records are drawn from.
	Pool []Business
	// NumPages is the number of script-generated result pages (one per
	// queried zipcode, as in the paper's form-filling setup).
	NumPages int
	// MinRecords/MaxRecords bound the listings per page.
	MinRecords, MaxRecords int
	// LRHostile forces the link-list layout whose decoy list shares the
	// exact serialized context of the dealer names, so no perfect LR
	// wrapper exists (only ancestor attributes separate them).
	LRHostile bool
	// NoteProb is the per-page probability of a "nearby brand" note that
	// mentions a pool business outside the listings (a dictionary
	// false-positive source).
	NoteProb float64
	// PlazaProb is the per-record probability that the street line embeds
	// a pool business name ("X Plaza"), the paper's "business names
	// matching street addresses" noise.
	PlazaProb float64
	// Drift applies that many deterministic template mutations to the
	// site's rendering script while leaving the record data untouched: the
	// same seed with Drift 0 and Drift n produces pages with identical
	// businesses, zips and phones but a different template (name tag, list
	// class, and from the second step on a different layout). This is the
	// "site changed its template overnight" scenario wrapper-drift
	// detection and repair are exercised against.
	Drift int
}

func (c DealerConfig) withDefaults() DealerConfig {
	if c.SiteName == "" {
		c.SiteName = fmt.Sprintf("dealer-site-%d", c.Seed)
	}
	if c.NumPages == 0 {
		c.NumPages = 12
	}
	if c.MinRecords == 0 {
		c.MinRecords = 3
	}
	if c.MaxRecords == 0 {
		c.MaxRecords = 9
	}
	if c.NoteProb == 0 {
		c.NoteProb = 0.22
	}
	if c.PlazaProb == 0 {
		c.PlazaProb = 0.015
	}
	return c
}

// dealerStyle is the per-site rendering script: fixed once per site so all
// pages share structure (the essence of script-generated HTML).
type dealerStyle struct {
	layout    int // 0 table, 1 divs, 2 link list, 3 definition list, 4 headings
	nameTag   string
	listClass string
	withSide  bool
	footerRef bool // footer carries a 5-digit reference (zipcode noise)
	navItems  []string
}

var dealerLayoutNames = []string{"table", "divs", "linklist", "dl", "headings"}

// drifted applies n deterministic template mutations to the rendering
// style: each step moves the name tag and the list class to the next
// candidate, and from the second step on also rotates the layout family.
// It runs after every style-affecting rng draw, so the page content (the
// record data) of a drifted site is byte-identical to its undrifted twin —
// only the template around it changes, which is exactly how a production
// site breaks a deployed wrapper.
func (s dealerStyle) drifted(n int) dealerStyle {
	if n <= 0 {
		return s
	}
	tags := []string{"u", "b", "a", "strong", "span"}
	classes := []string{"dealerlinks", "results", "storelist", "locator", "listing"}
	out := s
	for step := 1; step <= n; step++ {
		out.nameTag = rotateChoice(tags, out.nameTag)
		out.listClass = rotateChoice(classes, out.listClass)
		if step >= 2 {
			out.layout = (out.layout + 1) % len(dealerLayoutNames)
		}
	}
	return out
}

// rotateChoice returns the entry after cur in the candidate list (wrapping),
// so repeated drift steps cycle through distinct values deterministically.
func rotateChoice(candidates []string, cur string) string {
	for i, c := range candidates {
		if c == cur {
			return candidates[(i+1)%len(candidates)]
		}
	}
	return candidates[0]
}

// DealerSite generates one dealer-locator website with gold name and zip
// labels.
func DealerSite(cfg DealerConfig) (*Site, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	style := dealerStyle{
		layout:    rng.Intn(5),
		nameTag:   pick(rng, []string{"u", "b", "a", "strong", "span"}),
		listClass: pick(rng, []string{"dealerlinks", "results", "storelist", "locator", "listing"}),
		withSide:  rng.Float64() < 0.5,
		footerRef: rng.Float64() < 0.3,
		navItems:  []string{"Home", "Our Products", "Dealer Locator", "Contact Us", "Events"},
	}
	if cfg.LRHostile {
		style.layout = 2
		style.nameTag = "a"
	}
	style = style.drifted(cfg.Drift)

	var pages []*pageBuild
	for pi := 0; pi < cfg.NumPages; pi++ {
		nRec := cfg.MinRecords + rng.Intn(cfg.MaxRecords-cfg.MinRecords+1)
		records, usedNames := sampleBusinesses(rng, cfg.Pool, nRec)
		// Per-page unique zips; street numbers must not collide with them.
		zips := make(map[string]bool)
		for i := range records {
			for zips[records[i].Zip] {
				records[i].Zip = fmt.Sprintf("%05d", 10000+rng.Intn(89999))
			}
			zips[records[i].Zip] = true
		}
		for i := range records {
			if rng.Float64() < cfg.PlazaProb {
				plaza := cfg.Pool[rng.Intn(len(cfg.Pool))].Name
				if !usedNames[plaza] {
					records[i].Street = plaza + " Plaza, " + records[i].Street
				}
			}
		}
		note := ""
		if rng.Float64() < cfg.NoteProb {
			brand := cfg.Pool[rng.Intn(len(cfg.Pool))].Name
			if !usedNames[brand] {
				note = fmt.Sprintf("Also try %s in %s for more stock.",
					brand, strings.ToUpper(pick(rng, cityWords)))
			}
		}
		pages = append(pages, dealerPage(rng, cfg, style, records, note, pi))
	}
	// The link-list layout always carries the decoy list, so any site that
	// drew it is LR-hostile, whether or not the flag forced it.
	hostile := cfg.LRHostile || style.layout == 2
	return finishSite(cfg.SiteName, dealerLayoutNames[style.layout], hostile, pages, nil)
}

func sampleBusinesses(rng *rand.Rand, pool []Business, n int) ([]Business, map[string]bool) {
	used := make(map[string]bool)
	out := make([]Business, 0, n)
	for len(out) < n {
		b := pool[rng.Intn(len(pool))]
		if used[b.Name] {
			continue
		}
		used[b.Name] = true
		out = append(out, b)
	}
	return out, used
}

func dealerPage(rng *rand.Rand, cfg DealerConfig, style dealerStyle, records []Business, note string, pageIdx int) *pageBuild {
	p := newPage()
	html := p.doc.Append(el("html"))
	head := html.Append(el("head"))
	head.Append(elText("title", cfg.SiteName+" Dealer Locator"))
	body := html.Append(el("body"))

	// Header chrome, identical on every page of the site.
	header := body.Append(el("div", "class", "header"))
	header.Append(elText("h1", cfg.SiteName+" Dealer Locator"))
	nav := header.Append(el("ul", "class", "topnav"))
	for _, item := range style.navItems {
		li := nav.Append(el("li"))
		li.Append(elText("a", item, "href", "#"))
	}

	if style.withSide {
		side := body.Append(el("div", "class", "side"))
		side.Append(elText("h4", "Popular Searches"))
		ul := side.Append(el("ul"))
		for i := 0; i < 4; i++ {
			ul.Append(elText("li", pick(rng, cityWords)+" stores"))
		}
	}

	main := body.Append(el("div", "class", "main"))
	city := strings.ToUpper(pick(rng, cityWords))
	main.Append(elText("p", fmt.Sprintf("There are %d shops within 50 miles of %s, %s",
		len(records), city, pick(rng, stateCodes)), "class", "summary"))
	if note != "" {
		main.Append(elText("p", note, "class", "note"))
	}

	renderDealerList(p, main, style, records)

	footer := body.Append(el("div", "class", "footer"))
	ftext := fmt.Sprintf("© 2010 %s. All rights reserved.", cfg.SiteName)
	if style.footerRef {
		ftext += fmt.Sprintf(" Ref %05d.", 20000+((pageIdx*7919)%60000))
	}
	footer.Append(text(ftext))
	return p
}

// renderDealerList renders the record list in the site's layout; every
// layout keeps the business name and the zipcode as standalone text nodes
// (the name inside style.nameTag, the zip inside <b>), which is what the
// gold relocation and the multi-type experiments rely on.
func renderDealerList(p *pageBuild, main *dom.Node, style dealerStyle, records []Business) {
	switch style.layout {
	case 0: // table rows
		div := main.Append(el("div", "class", style.listClass))
		table := div.Append(el("table"))
		for _, r := range records {
			tr := table.Append(el("tr"))
			td := tr.Append(el("td"))
			td.Append(elText(style.nameTag, r.Name))
			td.Append(el("br"))
			td.Append(text(r.Street))
			td.Append(el("br"))
			td.Append(text(r.City + ", " + r.State))
			td.Append(elText("b", r.Zip))
			td2 := tr.Append(el("td"))
			td2.Append(text("Phone: " + r.Phone))
			p.markGold("name", r.Name, style.nameTag)
			p.markGold("zip", r.Zip, "b")
			p.markGold("phone", "Phone: "+r.Phone, "td")
		}
	case 1: // div blocks
		wrap := main.Append(el("div", "class", style.listClass))
		for _, r := range records {
			item := wrap.Append(el("div", "class", "item"))
			item.Append(elText(style.nameTag, r.Name))
			item.Append(elText("div", r.Street, "class", "addr"))
			item.Append(elText("div", r.City+", "+r.State, "class", "city"))
			item.Append(elText("b", r.Zip))
			item.Append(elText("span", "Tel: "+r.Phone))
			p.markGold("name", r.Name, style.nameTag)
			p.markGold("zip", r.Zip, "b")
			p.markGold("phone", "Tel: "+r.Phone, "span")
		}
	case 2: // link list (the LR-hostile layout; see decoy below)
		ul := main.Append(el("ul", "class", style.listClass))
		for _, r := range records {
			li := ul.Append(el("li"))
			li.Append(elText("a", r.Name, "href", "#"))
			li.Append(text(" — " + r.Street + ", " + r.City + " " + r.State + " "))
			li.Append(elText("b", r.Zip))
			li.Append(text(" tel " + r.Phone))
			p.markGold("name", r.Name, "a")
			p.markGold("zip", r.Zip, "b")
			p.markGold("phone", "tel "+r.Phone, "li")
		}
		// Decoy list: identical item markup (<li><a>text</a> — text<b>w</b>
		// tail), different ul class. Only ancestor attributes separate the
		// two lists, so LR (bounded character context) cannot be perfect
		// while XPATH can.
		decoy := main.Append(el("ul", "class", "quicklinks"))
		for i := 0; i < 3; i++ {
			li := decoy.Append(el("li"))
			li.Append(elText("a", pick(rngFor(records, i), cityWords)+" store openings", "href", "#"))
			li.Append(text(" — see weekly flyer for "))
			li.Append(elText("b", pick(rngFor(records, i+3), streetWords)))
			li.Append(text(" deals"))
		}
	case 3: // definition list
		dl := main.Append(el("dl", "class", style.listClass))
		for _, r := range records {
			dt := dl.Append(el("dt"))
			dt.Append(elText(style.nameTag, r.Name))
			dl.Append(elText("dd", r.Street))
			dl.Append(elText("dd", r.City+", "+r.State))
			dd := dl.Append(el("dd"))
			dd.Append(text("ZIP "))
			dd.Append(elText("b", r.Zip))
			dl.Append(elText("dd", "Call "+r.Phone))
			p.markGold("name", r.Name, style.nameTag)
			p.markGold("zip", r.Zip, "b")
			p.markGold("phone", "Call "+r.Phone, "dd")
		}
	case 4: // headings + paragraphs
		sec := main.Append(el("div", "class", style.listClass))
		for _, r := range records {
			h := sec.Append(el("h3"))
			h.Append(elText(style.nameTag, r.Name))
			para := sec.Append(el("p"))
			para.Append(text(r.Street))
			para.Append(el("br"))
			para.Append(text(r.City + ", " + r.State))
			para.Append(elText("b", r.Zip))
			para.Append(el("br"))
			para.Append(text("Phone: " + r.Phone))
			p.markGold("name", r.Name, style.nameTag)
			p.markGold("zip", r.Zip, "b")
			p.markGold("phone", "Phone: "+r.Phone, "p")
		}
	}
}

// rngFor derives a deterministic rand from page content so decoy text varies
// per page without threading another generator through.
func rngFor(records []Business, salt int) *rand.Rand {
	seed := int64(salt + 1)
	for _, r := range records {
		for _, ch := range r.Zip {
			seed = seed*131 + int64(ch)
		}
	}
	return rand.New(rand.NewSource(seed))
}
