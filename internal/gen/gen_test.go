package gen

import (
	"strings"
	"testing"
)

func TestBusinessPoolDistinctAndSized(t *testing.T) {
	pool := BusinessPool(7, 4000, 0)
	if len(pool) != 4000 {
		t.Fatalf("pool size = %d", len(pool))
	}
	seen := make(map[string]bool)
	for _, b := range pool {
		if seen[b.Name] {
			t.Fatalf("duplicate name %q", b.Name)
		}
		seen[b.Name] = true
		if len(b.Zip) != 5 {
			t.Fatalf("bad zip %q", b.Zip)
		}
	}
}

func TestBusinessPoolNoNestedNames(t *testing.T) {
	pool := BusinessPool(7, 2000, 0)
	// No generated name may be a word-prefix of another: the dictionary
	// annotator's recall would otherwise exceed the sampling fraction.
	byLen := make(map[string]bool, len(pool))
	for _, b := range pool {
		byLen[strings.ToLower(b.Name)] = true
	}
	for name := range byLen {
		words := strings.Fields(name)
		for cut := 1; cut < len(words); cut++ {
			if byLen[strings.Join(words[:cut], " ")] {
				t.Fatalf("name %q has a nested shorter name", name)
			}
		}
	}
}

func TestBusinessPoolAmbiguousNames(t *testing.T) {
	pool := BusinessPool(7, 1000, 0.01)
	oneWord := 0
	for _, b := range pool {
		if !strings.Contains(b.Name, " ") {
			oneWord++
		}
	}
	if oneWord == 0 {
		t.Fatal("ambiguousFrac > 0 should produce one-word city names")
	}
}

func TestBusinessPoolOverflowsGracefully(t *testing.T) {
	pool := BusinessPool(7, 7000, 0) // beyond the combination space
	seen := make(map[string]bool)
	for _, b := range pool {
		if seen[b.Name] {
			t.Fatalf("duplicate %q in overflow regime", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestAlbumPoolsDisjointVocab(t *testing.T) {
	seeds := AlbumPool(1, 11, 0.35)
	extras := AlbumPoolAlt(2, 30, 0.3)
	seedTracks := make(map[string]bool)
	for _, a := range seeds {
		for _, tr := range a.Tracks {
			seedTracks[tr] = true
		}
	}
	for _, a := range extras {
		for _, tr := range a.Tracks {
			if seedTracks[tr] {
				t.Fatalf("track %q appears in both vocabularies", tr)
			}
		}
	}
}

func TestAlbumPoolTitleTracks(t *testing.T) {
	albums := AlbumPool(3, 40, 0.5)
	tt := 0
	for _, a := range albums {
		if a.TitleTrack {
			tt++
			if a.Title != a.Tracks[0] {
				t.Fatalf("title-track album %q does not match its first track %q",
					a.Title, a.Tracks[0])
			}
		}
	}
	if tt == 0 || tt == len(albums) {
		t.Fatalf("title-track count %d implausible for frac 0.5", tt)
	}
}

func TestProductPoolBrands(t *testing.T) {
	pool := ProductPool(5, 700)
	if len(pool) != 700 {
		t.Fatalf("pool size %d", len(pool))
	}
	brands := make(map[string]int)
	for _, p := range pool {
		brands[p.Brand]++
		if !strings.HasPrefix(p.Name, p.Brand+" ") {
			t.Fatalf("name %q does not start with brand %q", p.Name, p.Brand)
		}
	}
	for _, b := range DictBrands {
		if brands[b] == 0 {
			t.Fatalf("dictionary brand %q missing from pool", b)
		}
	}
}

func TestDealerSiteGoldRelocation(t *testing.T) {
	pool := BusinessPool(11, 500, 0)
	site, err := DealerSite(DealerConfig{Seed: 42, Pool: pool, NumPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	names := site.Gold["name"]
	zips := site.Gold["zip"]
	if names.Empty() || zips.Empty() {
		t.Fatal("gold sets empty")
	}
	if names.Count() != zips.Count() {
		t.Fatalf("names (%d) and zips (%d) must pair up", names.Count(), zips.Count())
	}
	if len(site.GoldRecords) != names.Count() {
		t.Fatalf("gold records %d != names %d", len(site.GoldRecords), names.Count())
	}
	// Every gold name content must look like a pool business name.
	names.ForEach(func(ord int) {
		v := site.Corpus.TextContent(ord)
		if v != strings.ToUpper(v) || len(v) < 4 {
			t.Fatalf("suspicious gold name %q", v)
		}
	})
	// Per-page zips are unique (multi-type relocation invariant).
	perPage := make(map[int]map[string]bool)
	zips.ForEach(func(ord int) {
		p := site.Corpus.PageOf(ord)
		if perPage[p] == nil {
			perPage[p] = make(map[string]bool)
		}
		v := site.Corpus.TextContent(ord)
		if perPage[p][v] {
			t.Fatalf("duplicate zip %q on page %d", v, p)
		}
		perPage[p][v] = true
	})
}

func TestDealerSiteLayoutsAllRelocate(t *testing.T) {
	pool := BusinessPool(11, 500, 0)
	layouts := make(map[string]bool)
	for seed := int64(0); seed < 24; seed++ {
		site, err := DealerSite(DealerConfig{Seed: seed, Pool: pool, NumPages: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		layouts[site.Layout] = true
	}
	for _, want := range dealerLayoutNames {
		if !layouts[want] {
			t.Errorf("layout %q never generated across 24 seeds", want)
		}
	}
}

func TestDealerSiteHostileUsesLinkList(t *testing.T) {
	pool := BusinessPool(11, 500, 0)
	site, err := DealerSite(DealerConfig{Seed: 9, Pool: pool, NumPages: 2, LRHostile: true})
	if err != nil {
		t.Fatal(err)
	}
	if !site.LRHostile || site.Layout != "linklist" {
		t.Fatalf("hostile site: layout=%s hostile=%v", site.Layout, site.LRHostile)
	}
	// The decoy list must exist with the same item markup.
	html := site.Corpus.Pages[0].HTML
	if !strings.Contains(html, `class="quicklinks"`) {
		t.Fatal("decoy list missing")
	}
}

func TestDiscSiteGold(t *testing.T) {
	seeds := AlbumPool(1, 11, 0.35)
	site, err := DiscSite(DiscConfig{Seed: 77, SeedAlbums: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if len(site.Corpus.Pages) != 20 {
		t.Fatalf("pages = %d, want 11 seeds + 9 extras", len(site.Corpus.Pages))
	}
	if len(site.PageValues["album"]) != len(site.Corpus.Pages) {
		t.Fatal("PageValues must cover every page")
	}
	tracks := site.Gold["track"]
	albums := site.Gold["album"]
	if tracks.Count() < 8*len(site.Corpus.Pages) {
		t.Fatalf("too few gold tracks: %d", tracks.Count())
	}
	// Album gold nodes match the page's album value.
	albums.ForEach(func(ord int) {
		p := site.Corpus.PageOf(ord)
		if site.Corpus.TextContent(ord) != site.PageValues["album"][p] {
			t.Fatalf("album gold mismatch on page %d", p)
		}
	})
}

func TestProductsSiteGold(t *testing.T) {
	pool := ProductPool(5, 300)
	site, err := ProductsSite(ProductsConfig{Seed: 3, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	gold := site.Gold["product"]
	if gold.Empty() {
		t.Fatal("no gold products")
	}
	gold.ForEach(func(ord int) {
		v := site.Corpus.TextContent(ord)
		ok := false
		for _, b := range phoneBrands {
			if strings.HasPrefix(v, b+" ") {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("gold product %q has unknown brand", v)
		}
	})
}

func TestSiteDeterminism(t *testing.T) {
	pool := BusinessPool(11, 500, 0)
	a, err := DealerSite(DealerConfig{Seed: 5, Pool: pool, NumPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DealerSite(DealerConfig{Seed: 5, Pool: pool, NumPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Corpus.Pages {
		if a.Corpus.Pages[i].HTML != b.Corpus.Pages[i].HTML {
			t.Fatalf("page %d differs across identical seeds", i)
		}
	}
	if !a.Gold["name"].Equal(b.Gold["name"]) {
		t.Fatal("gold differs across identical seeds")
	}
}

// TestDealerSiteDriftKeepsDataMutatesTemplate pins the drift contract: a
// drifted site carries exactly the same record data (gold name and zip
// values, page for page) as its undrifted twin, while the rendered HTML
// differs — the template changed, the database did not.
func TestDealerSiteDriftKeepsDataMutatesTemplate(t *testing.T) {
	pool := BusinessPool(11, 500, 0)
	goldValues := func(s *Site, typ string) []string {
		var out []string
		s.Gold[typ].ForEach(func(ord int) {
			out = append(out, strings.Join([]string{
				string(rune('0' + s.Corpus.PageOf(ord))), s.Corpus.TextContent(ord)}, ":"))
		})
		return out
	}
	for _, drift := range []int{1, 2, 3} {
		base, err := DealerSite(DealerConfig{Seed: 42, Pool: pool, NumPages: 6})
		if err != nil {
			t.Fatal(err)
		}
		mut, err := DealerSite(DealerConfig{Seed: 42, Pool: pool, NumPages: 6, Drift: drift})
		if err != nil {
			t.Fatalf("drift %d: %v", drift, err)
		}
		for _, typ := range []string{"name", "zip"} {
			b, m := goldValues(base, typ), goldValues(mut, typ)
			if strings.Join(b, "|") != strings.Join(m, "|") {
				t.Fatalf("drift %d changed %s gold values:\n  base %v\n  mut  %v", drift, typ, b, m)
			}
		}
		same := 0
		for i := range base.Corpus.Pages {
			if base.Corpus.Pages[i].HTML == mut.Corpus.Pages[i].HTML {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("drift %d left %d/%d pages byte-identical", drift, same, len(base.Corpus.Pages))
		}
	}
	// Drift is deterministic: the same config drifts the same way.
	a, _ := DealerSite(DealerConfig{Seed: 42, Pool: pool, NumPages: 6, Drift: 2})
	b, _ := DealerSite(DealerConfig{Seed: 42, Pool: pool, NumPages: 6, Drift: 2})
	for i := range a.Corpus.Pages {
		if a.Corpus.Pages[i].HTML != b.Corpus.Pages[i].HTML {
			t.Fatalf("drift nondeterministic on page %d", i)
		}
	}
}
