package gen

import (
	"fmt"
	"math/rand"

	"autowrap/internal/dom"
)

// ProductsConfig parameterizes one shopping website selling cellphones.
type ProductsConfig struct {
	Seed     int64
	SiteName string
	// Pool is the global product pool.
	Pool []Product
	// NumPages and records per page.
	NumPages               int
	MinRecords, MaxRecords int
	// AccessoryProb is the per-page probability of an accessory promo line
	// mentioning a product name outside the listing (annotator FP).
	AccessoryProb float64
}

func (c ProductsConfig) withDefaults() ProductsConfig {
	if c.SiteName == "" {
		c.SiteName = fmt.Sprintf("shop-site-%d", c.Seed)
	}
	if c.NumPages == 0 {
		c.NumPages = 10
	}
	if c.MinRecords == 0 {
		c.MinRecords = 5
	}
	if c.MaxRecords == 0 {
		c.MaxRecords = 12
	}
	if c.AccessoryProb == 0 {
		c.AccessoryProb = 0.3
	}
	return c
}

type productStyle struct {
	layout    int // 0 grid of divs, 1 table, 2 list
	nameTag   string
	listClass string
}

var productLayoutNames = []string{"grid", "table", "list"}

// ProductsSite generates one shopping website with gold "product" labels.
func ProductsSite(cfg ProductsConfig) (*Site, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	style := productStyle{
		layout:    rng.Intn(3),
		nameTag:   pick(rng, []string{"a", "b", "h3", "span"}),
		listClass: pick(rng, []string{"products", "phonegrid", "itemlist", "catalog"}),
	}
	var pages []*pageBuild
	for pi := 0; pi < cfg.NumPages; pi++ {
		n := cfg.MinRecords + rng.Intn(cfg.MaxRecords-cfg.MinRecords+1)
		items, used := sampleProducts(rng, cfg.Pool, n)
		promo := ""
		if rng.Float64() < cfg.AccessoryProb {
			other := cfg.Pool[rng.Intn(len(cfg.Pool))]
			if !used[other.Name] {
				promo = fmt.Sprintf("Accessories for %s now 20%% off!", other.Name)
			}
		}
		pages = append(pages, productPage(cfg, style, items, promo, rng))
	}
	return finishSite(cfg.SiteName, productLayoutNames[style.layout], false, pages, nil)
}

func sampleProducts(rng *rand.Rand, pool []Product, n int) ([]Product, map[string]bool) {
	used := make(map[string]bool)
	out := make([]Product, 0, n)
	for len(out) < n {
		p := pool[rng.Intn(len(pool))]
		if used[p.Name] {
			continue
		}
		used[p.Name] = true
		out = append(out, p)
	}
	return out, used
}

func productPage(cfg ProductsConfig, style productStyle, items []Product, promo string, rng *rand.Rand) *pageBuild {
	p := newPage()
	html := p.doc.Append(el("html"))
	head := html.Append(el("head"))
	head.Append(elText("title", cfg.SiteName+" — Cell Phones"))
	body := html.Append(el("body"))

	header := body.Append(el("div", "class", "header"))
	header.Append(elText("h1", cfg.SiteName))
	nav := header.Append(el("ul", "class", "topnav"))
	for _, item := range []string{"Phones", "Plans", "Accessories", "Support"} {
		li := nav.Append(el("li"))
		li.Append(elText("a", item, "href", "#"))
	}

	main := body.Append(el("div", "class", "main"))
	main.Append(elText("p", fmt.Sprintf("Showing %d phones", len(items)), "class", "summary"))
	if promo != "" {
		main.Append(elText("p", promo, "class", "promo"))
	}

	renderProductList(p, main, style, items)

	footer := body.Append(el("div", "class", "footer"))
	footer.Append(text(fmt.Sprintf("© 2010 %s — prices subject to change", cfg.SiteName)))
	return p
}

func renderProductList(p *pageBuild, main *dom.Node, style productStyle, items []Product) {
	switch style.layout {
	case 0: // grid of divs
		grid := main.Append(el("div", "class", style.listClass))
		for _, it := range items {
			card := grid.Append(el("div", "class", "card"))
			card.Append(elText(style.nameTag, it.Name))
			card.Append(elText("div", it.Price, "class", "price"))
			card.Append(elText("div", "Free shipping", "class", "ship"))
			p.markGold("product", it.Name, style.nameTag)
		}
	case 1: // table
		tbl := main.Append(el("table", "class", style.listClass))
		for _, it := range items {
			tr := tbl.Append(el("tr"))
			td := tr.Append(el("td"))
			td.Append(elText(style.nameTag, it.Name))
			tr.Append(elText("td", it.Price))
			tr.Append(elText("td", "In stock"))
			p.markGold("product", it.Name, style.nameTag)
		}
	case 2: // list
		ul := main.Append(el("ul", "class", style.listClass))
		for _, it := range items {
			li := ul.Append(el("li"))
			li.Append(elText(style.nameTag, it.Name))
			li.Append(text(" — "))
			li.Append(elText("b", it.Price))
			p.markGold("product", it.Name, style.nameTag)
		}
	}
}
