package annotate

import (
	"math"
	"strings"
	"testing"

	"autowrap/internal/corpus"
)

func listingCorpus() *corpus.Corpus {
	return corpus.ParseHTML([]string{
		`<div><u>PORTER FURNITURE</u><br>201 Hwy 30 West<br>WOODLAND, MS 38652</div>`,
		`<div><u>BESTBUY</u><br>10250 Oak Blvd<br>DAYTON, OH 45402</div>`,
	})
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"Porter Furniture", "porter furniture"},
		{"  A&B, Inc. ", "a b inc"},
		{"WOODLAND, MS 38652", "woodland ms 38652"},
		{"", ""},
		{"---", ""},
		{"Héllo", "h llo"}, // non-ASCII letters are boundaries
	}
	for _, c := range cases {
		got := strings.Join(Tokenize(c.in), " ")
		if got != c.want {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDictionaryExactMention(t *testing.T) {
	d := NewDictionary("d", []string{"Porter Furniture"})
	c := listingCorpus()
	labels := d.Annotate(c)
	if labels.Count() != 1 {
		t.Fatalf("labels = %v", c.Contents(labels))
	}
	if c.TextContent(labels.Indices()[0]) != "PORTER FURNITURE" {
		t.Fatalf("labeled %q", c.TextContent(labels.Indices()[0]))
	}
}

func TestDictionaryContainmentInsideLongerText(t *testing.T) {
	// "Woodland" as a business name matches the address line — the paper's
	// organic noise mode.
	d := NewDictionary("d", []string{"Woodland"})
	c := listingCorpus()
	labels := d.Annotate(c)
	if labels.Count() != 1 || !strings.Contains(c.TextContent(labels.Indices()[0]), "WOODLAND") {
		t.Fatalf("labels = %v", c.Contents(labels))
	}
}

func TestDictionaryWordBoundaries(t *testing.T) {
	d := NewDictionary("d", []string{"Port"})
	c := listingCorpus()
	// "Port" must not match inside "PORTER".
	if labels := d.Annotate(c); !labels.Empty() {
		t.Fatalf("substring matched across word boundary: %v", c.Contents(labels))
	}
}

func TestDictionaryMultiWordOrder(t *testing.T) {
	d := NewDictionary("d", []string{"Furniture Porter"})
	c := listingCorpus()
	if labels := d.Annotate(c); !labels.Empty() {
		t.Fatal("reversed word order should not match")
	}
}

func TestDictionaryCaseInsensitive(t *testing.T) {
	d := NewDictionary("d", []string{"porter furniture"})
	if d.Annotate(listingCorpus()).Count() != 1 {
		t.Fatal("case-insensitive match failed")
	}
}

func TestDictionarySize(t *testing.T) {
	d := NewDictionary("d", []string{"a", "b", "", "   "})
	if d.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (blank entries dropped)", d.Size())
	}
}

func TestZipcodeRegexp(t *testing.T) {
	a := MustRegexp("zip", ZipcodePattern)
	c := listingCorpus()
	labels := a.Annotate(c)
	// Matches: "WOODLAND, MS 38652", "10250 Oak Blvd" (5-digit street
	// number — deliberate noise), "DAYTON, OH 45402".
	if labels.Count() != 3 {
		t.Fatalf("zip labels = %v", c.Contents(labels))
	}
}

func TestZipcodeRejectsLongerRuns(t *testing.T) {
	a := MustRegexp("zip", ZipcodePattern)
	c := corpus.ParseHTML([]string{`<div>123456</div><div>1234</div><div>12345</div>`})
	labels := a.Annotate(c)
	if labels.Count() != 1 {
		t.Fatalf("labels = %v, want only the 5-digit run", c.Contents(labels))
	}
}

func TestNewRegexpError(t *testing.T) {
	if _, err := NewRegexp("bad", "("); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestControlledAnnotatorRates(t *testing.T) {
	// A larger corpus for stable frequencies.
	var rows []string
	for i := 0; i < 40; i++ {
		rows = append(rows, `<div><b>gold`+string(rune('a'+i%26))+`</b><span>junk</span><span>junk2</span></div>`)
	}
	c := corpus.ParseHTML(rows)
	gold := c.MatchingText(func(s string) bool { return strings.HasPrefix(s, "gold") })
	a := &Controlled{Gold: gold, P1: 0.8, P2: 0.1, Seed: 42}
	labels := a.Annotate(c)
	st := Measure(c, labels, gold)
	gotR := float64(st.TP) / float64(gold.Count())
	gotFPRate := float64(st.FP) / float64(c.NumTexts()-gold.Count())
	if math.Abs(gotR-0.8) > 0.2 {
		t.Errorf("recall %v too far from 0.8", gotR)
	}
	if math.Abs(gotFPRate-0.1) > 0.1 {
		t.Errorf("false positive rate %v too far from 0.1", gotFPRate)
	}
}

func TestControlledDeterministic(t *testing.T) {
	c := listingCorpus()
	gold := c.SetOf(0)
	a := &Controlled{Gold: gold, P1: 0.5, P2: 0.5, Seed: 9}
	b := &Controlled{Gold: gold, P1: 0.5, P2: 0.5, Seed: 9}
	if !a.Annotate(c).Equal(b.Annotate(c)) {
		t.Fatal("controlled annotator not deterministic in seed")
	}
}

func TestControlledFor(t *testing.T) {
	var rows []string
	for i := 0; i < 50; i++ {
		rows = append(rows, `<div><b>g`+string(rune('a'+i%26))+string(rune('a'+i/26))+`</b><span>x</span><span>y</span><span>z</span></div>`)
	}
	c := corpus.ParseHTML(rows)
	gold := c.MatchingText(func(s string) bool { return strings.HasPrefix(s, "g") })
	a, err := ControlledFor(c, gold, 0.3, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	labels := a.Annotate(c)
	st := Measure(c, labels, gold)
	// Expected precision 0.5, recall 0.3 (wide tolerance: one draw).
	if p := st.Precision(); math.Abs(p-0.5) > 0.25 {
		t.Errorf("precision %v too far from 0.5", p)
	}
	if r := st.Recall(); math.Abs(r-0.3) > 0.2 {
		t.Errorf("recall %v too far from 0.3", r)
	}
}

func TestControlledForValidation(t *testing.T) {
	c := listingCorpus()
	gold := c.SetOf(0)
	if _, err := ControlledFor(c, gold, 0, 0.5, 1); err == nil {
		t.Fatal("recall 0 should be rejected")
	}
	if _, err := ControlledFor(c, gold, 0.5, 1.5, 1); err == nil {
		t.Fatal("precision > 1 should be rejected")
	}
	if _, err := ControlledFor(c, c.EmptySet(), 0.5, 0.5, 1); err == nil {
		t.Fatal("empty gold should be rejected")
	}
}

func TestStatsMath(t *testing.T) {
	s := Stats{TP: 8, FP: 2, FN: 4, GoldN: 12, NonGoldN: 100}
	if p := s.Precision(); p != 0.8 {
		t.Fatalf("precision = %v", p)
	}
	if r := s.Recall(); math.Abs(r-8.0/12) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	p, r := s.ModelParams()
	if math.Abs(p-(1-2.0/100)) > 1e-12 {
		t.Fatalf("model p = %v", p)
	}
	if math.Abs(r-8.0/12) > 1e-12 {
		t.Fatalf("model r = %v", r)
	}
	sum := s.Add(Stats{TP: 2, FP: 1, FN: 1, GoldN: 3, NonGoldN: 10})
	if sum.TP != 10 || sum.FP != 3 || sum.GoldN != 15 || sum.NonGoldN != 110 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestStatsEdgeCases(t *testing.T) {
	empty := Stats{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("empty stats conventions")
	}
	p, r := empty.ModelParams()
	if p != 1 || r != 1 {
		t.Fatalf("empty ModelParams = %v, %v", p, r)
	}
}
