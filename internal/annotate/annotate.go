// Package annotate implements the automatic annotators of the paper's
// Sec. 2.1/7: cheap, noisy labelers that replace per-site human supervision.
//
//   - Dictionary: labels a text node when it contains an exact mention of a
//     dictionary entry (the Yahoo! Local business-name annotator; the album
//     dictionary of DISC; the cellphone-model dictionary of PRODUCTS).
//   - Regexp: labels nodes matching a pattern (the five-digit US zipcode
//     annotator of Appendix A).
//   - Controlled: the synthetic annotator of Sec. 7.4 that labels each
//     correct node with probability p1 and each incorrect node with
//     probability p2, enabling annotators with any precision/recall.
//
// The package also estimates the annotation-model parameters (p, r) from a
// sample of sites with gold labels (paper: "the p and r of the annotators
// are learned from a sample of half the websites").
package annotate

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"autowrap/internal/bitset"
	"autowrap/internal/corpus"
)

// Annotator produces a (noisy) label set over a corpus.
type Annotator interface {
	Name() string
	Annotate(c *corpus.Corpus) *bitset.Set
}

// Dictionary labels text nodes containing exact mentions of its entries.
// Matching is case-insensitive on word boundaries, so the entry "Woodland"
// matches the address line "WOODLAND, MS 39776" — exactly the organic error
// mode the paper reports ("errors stem from business names matching street
// addresses").
type Dictionary struct {
	name string
	// byFirst indexes entries (as word slices) by their first word.
	byFirst map[string][][]string
	size    int
}

// NewDictionary builds a dictionary annotator from entries.
func NewDictionary(name string, entries []string) *Dictionary {
	d := &Dictionary{name: name, byFirst: make(map[string][][]string)}
	for _, e := range entries {
		words := Tokenize(e)
		if len(words) == 0 {
			continue
		}
		d.byFirst[words[0]] = append(d.byFirst[words[0]], words)
		d.size++
	}
	return d
}

// Name implements Annotator.
func (d *Dictionary) Name() string { return d.name }

// Size returns the number of usable entries.
func (d *Dictionary) Size() int { return d.size }

// Annotate implements Annotator.
func (d *Dictionary) Annotate(c *corpus.Corpus) *bitset.Set {
	return c.MatchingText(d.MatchesText)
}

// MatchesText reports whether the text contains an exact mention of some
// dictionary entry.
func (d *Dictionary) MatchesText(text string) bool {
	words := Tokenize(text)
	for i, w := range words {
		for _, entry := range d.byFirst[w] {
			if len(entry) <= len(words)-i && equalWords(words[i:i+len(entry)], entry) {
				return true
			}
		}
	}
	return false
}

func equalWords(a, b []string) bool {
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Tokenize splits text into lowercase alphanumeric words; everything else
// is a boundary.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Regexp labels text nodes whose content matches the pattern.
type Regexp struct {
	name string
	re   *regexp.Regexp
}

// NewRegexp compiles a regexp annotator.
func NewRegexp(name, pattern string) (*Regexp, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("annotate: bad pattern for %s: %w", name, err)
	}
	return &Regexp{name: name, re: re}, nil
}

// MustRegexp panics on a bad pattern; for static patterns in datasets.
func MustRegexp(name, pattern string) *Regexp {
	a, err := NewRegexp(name, pattern)
	if err != nil {
		panic(err)
	}
	return a
}

// ZipcodePattern matches five-digit US zipcodes on word boundaries; this is
// the zipcode annotator of Appendix A. It deliberately also matches
// five-digit street numbers — the noise source the paper describes.
const ZipcodePattern = `(^|[^0-9])[0-9]{5}([^0-9]|$)`

// Name implements Annotator.
func (a *Regexp) Name() string { return a.name }

// Annotate implements Annotator.
func (a *Regexp) Annotate(c *corpus.Corpus) *bitset.Set {
	return c.MatchingText(a.re.MatchString)
}

// Controlled is the synthetic annotator of Sec. 7.4: given the set of
// correct nodes, it labels each correct node with probability P1 and each
// incorrect node with probability P2.
type Controlled struct {
	Gold *bitset.Set
	P1   float64
	P2   float64
	Seed int64
}

// Name implements Annotator.
func (a *Controlled) Name() string { return "controlled" }

// Annotate implements Annotator. The draw is deterministic in Seed.
func (a *Controlled) Annotate(c *corpus.Corpus) *bitset.Set {
	rng := rand.New(rand.NewSource(a.Seed))
	out := c.EmptySet()
	for ord := 0; ord < c.NumTexts(); ord++ {
		p := a.P2
		if a.Gold.Has(ord) {
			p = a.P1
		}
		if rng.Float64() < p {
			out.Add(ord)
		}
	}
	return out
}

// ControlledFor builds a Controlled annotator achieving (in expectation) the
// given recall and precision on the corpus: recall = p1 and, with n1 correct
// and n2 incorrect nodes, precision = n1·p1 / (n1·p1 + n2·p2), so
// p2 = n1·p1·(1−precision) / (precision·n2) (Sec. 7.4).
func ControlledFor(c *corpus.Corpus, gold *bitset.Set, recall, precision float64, seed int64) (*Controlled, error) {
	if recall <= 0 || recall > 1 || precision <= 0 || precision > 1 {
		return nil, fmt.Errorf("annotate: recall/precision must be in (0,1], got r=%v p=%v", recall, precision)
	}
	n1 := float64(gold.Count())
	n2 := float64(c.NumTexts() - gold.Count())
	if n1 == 0 || n2 == 0 {
		return nil, fmt.Errorf("annotate: degenerate corpus (n1=%v, n2=%v)", n1, n2)
	}
	p2 := n1 * recall * (1 - precision) / (precision * n2)
	if p2 > 1 {
		p2 = 1
	}
	return &Controlled{Gold: gold, P1: recall, P2: p2, Seed: seed}, nil
}

// Stats are observed annotator quality measures against gold labels.
type Stats struct {
	TP, FP, FN int
	// GoldN and NonGoldN are the universe partition sizes.
	GoldN, NonGoldN int
}

// Measure compares a label set against gold over one corpus.
func Measure(c *corpus.Corpus, labels, gold *bitset.Set) Stats {
	tp := bitset.AndCount(labels, gold)
	return Stats{
		TP:       tp,
		FP:       labels.Count() - tp,
		FN:       gold.Count() - tp,
		GoldN:    gold.Count(),
		NonGoldN: c.NumTexts() - gold.Count(),
	}
}

// Add pools stats across sites.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		TP: s.TP + o.TP, FP: s.FP + o.FP, FN: s.FN + o.FN,
		GoldN: s.GoldN + o.GoldN, NonGoldN: s.NonGoldN + o.NonGoldN,
	}
}

// Precision returns TP/(TP+FP), or 1 when no labels were produced.
func (s Stats) Precision() float64 {
	if s.TP+s.FP == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// Recall returns TP/|gold|, or 1 when there is no gold.
func (s Stats) Recall() float64 {
	if s.GoldN == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.GoldN)
}

// ModelParams converts pooled stats into the annotation-model parameters of
// Sec. 6: r is the per-correct-node labeling rate (the recall) and 1−p is
// the per-incorrect-node labeling rate, i.e. p = 1 − FP/|non-gold|.
func (s Stats) ModelParams() (p, r float64) {
	r = s.Recall()
	if s.NonGoldN == 0 {
		return 1, r
	}
	return 1 - float64(s.FP)/float64(s.NonGoldN), r
}
