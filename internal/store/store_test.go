package store_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autowrap/internal/annotate"
	"autowrap/internal/bitset"
	"autowrap/internal/core"
	"autowrap/internal/corpus"
	"autowrap/internal/engine"
	"autowrap/internal/lr"
	"autowrap/internal/rank"
	"autowrap/internal/stats"
	"autowrap/internal/store"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// testPages is a small two-page site with a clean record list.
func testPages() []string {
	return []string{
		`<html><body><h1>Page one</h1><div class="list"><table>` +
			`<tr><td class="v">Alpha</td><td>12</td></tr>` +
			`<tr><td class="v">Beta</td><td>34</td></tr>` +
			`</table></div></body></html>`,
		`<html><body><h1>Page two</h1><div class="list"><table>` +
			`<tr><td class="v">Gamma</td><td>56</td></tr>` +
			`<tr><td class="v">Delta</td><td>78</td></tr>` +
			`</table></div></body></html>`,
	}
}

func testCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	return corpus.ParseHTML(testPages())
}

// valueLabels returns the ordinals of the class="v" cells.
func valueLabels(t *testing.T, c *corpus.Corpus) *bitset.Set {
	t.Helper()
	s := c.MatchingText(func(txt string) bool {
		switch txt {
		case "Alpha", "Beta", "Gamma", "Delta":
			return true
		}
		return false
	})
	if s.Count() != 4 {
		t.Fatalf("expected 4 labels, got %d", s.Count())
	}
	return s
}

func induceXPath(t *testing.T, c *corpus.Corpus) wrapper.Wrapper {
	t.Helper()
	w, err := xpinduct.New(c, xpinduct.Options{}).Induce(valueLabels(t, c))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func induceLR(t *testing.T, c *corpus.Corpus) wrapper.Wrapper {
	t.Helper()
	w, err := lr.New(c, 0).Induce(valueLabels(t, c))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// applyOrdinals maps ApplyPage output on corpus page roots back to corpus
// ordinals for comparison with the native Extract bitset.
func applyOrdinals(t *testing.T, c *corpus.Corpus, p wrapper.Portable) []int {
	t.Helper()
	var ords []int
	for _, page := range c.Pages {
		for _, n := range p.ApplyPage(page.Root) {
			ord := c.OrdinalOf(n)
			if ord < 0 {
				t.Fatalf("ApplyPage returned non-extractable node %q", n.PathString())
			}
			ords = append(ords, ord)
		}
	}
	return ords
}

func assertMatchesNative(t *testing.T, c *corpus.Corpus, w wrapper.Wrapper, p wrapper.Portable) {
	t.Helper()
	got := applyOrdinals(t, c, p)
	want := w.Extract().Indices()
	if len(got) != len(want) {
		t.Fatalf("portable extracted %v, native %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("portable extracted %v, native %v", got, want)
		}
	}
	if len(got) == 0 {
		t.Fatal("degenerate test: native wrapper extracted nothing")
	}
}

func TestCompileMatchesNativeExtraction(t *testing.T) {
	c := testCorpus(t)
	for _, tc := range []struct {
		name string
		w    wrapper.Wrapper
	}{
		{"xpath", induceXPath(t, c)},
		{"lr", induceLR(t, c)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := store.Compile(tc.w)
			if err != nil {
				t.Fatal(err)
			}
			if p.Lang() != tc.name {
				t.Fatalf("Lang() = %q, want %q", p.Lang(), tc.name)
			}
			assertMatchesNative(t, c, tc.w, p)
		})
	}
}

func TestCompileRejectsUnknownWrappers(t *testing.T) {
	if _, err := store.Compile(nil); err == nil {
		t.Fatal("expected error compiling nil wrapper")
	}
}

func TestMarshalWrapperRoundTrip(t *testing.T) {
	c := testCorpus(t)
	for _, tc := range []struct {
		name string
		w    wrapper.Wrapper
	}{
		{"xpath", induceXPath(t, c)},
		{"lr", induceLR(t, c)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := store.Compile(tc.w)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := store.MarshalWrapper(p)
			if err != nil {
				t.Fatal(err)
			}
			// Wire form is stable JSON with the format version stamped.
			var probe map[string]any
			if err := json.Unmarshal(blob, &probe); err != nil {
				t.Fatalf("wire form is not JSON: %v", err)
			}
			if probe["format"] != float64(store.FormatVersion) {
				t.Fatalf("wire form missing format version: %s", blob)
			}
			p2, err := store.UnmarshalWrapper(blob)
			if err != nil {
				t.Fatal(err)
			}
			if p2.Rule() != p.Rule() {
				t.Fatalf("rule changed over the wire: %q -> %q", p.Rule(), p2.Rule())
			}
			assertMatchesNative(t, c, tc.w, p2)
			// Marshal again: byte-identical (stable wire form).
			blob2, err := store.MarshalWrapper(p2)
			if err != nil {
				t.Fatal(err)
			}
			if string(blob) != string(blob2) {
				t.Fatalf("wire form not stable:\n%s\n%s", blob, blob2)
			}
		})
	}
}

func TestUnmarshalWrapperRejectsBadInput(t *testing.T) {
	for _, tc := range []struct{ name, blob string }{
		{"not json", `{{`},
		{"bad format", `{"format":99,"lang":"xpath","rule":"//td/text()"}`},
		{"no format", `{"lang":"xpath","rule":"//td/text()"}`},
		{"unknown lang", `{"format":1,"lang":"regex","rule":".*"}`},
		{"bad xpath", `{"format":1,"lang":"xpath","rule":"//td[@class='x/text()"}`},
		{"element xpath", `{"format":1,"lang":"xpath","rule":"//td"}`},
		{"lr missing payload", `{"format":1,"lang":"lr","rule":"LR(\"a\", \"b\")"}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := store.UnmarshalWrapper([]byte(tc.blob)); err == nil {
				t.Fatalf("expected error for %s", tc.blob)
			}
		})
	}
}

func TestStoreVersioning(t *testing.T) {
	c := testCorpus(t)
	s := store.New()
	px, err := store.Compile(induceXPath(t, c))
	if err != nil {
		t.Fatal(err)
	}
	plr, err := store.Compile(induceLR(t, c))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := s.Put("site-a", px, store.Meta{Score: -1.5, Labels: 4})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Put("site-a", plr, store.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("site-b", px, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || e2.Version != 2 {
		t.Fatalf("versions = %d, %d; want 1, 2", e1.Version, e2.Version)
	}
	latest, ok := s.Latest("site-a")
	if !ok || latest.Version != 2 || latest.Lang != "lr" {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
	v1, ok := s.Version("site-a", 1)
	if !ok || v1.Lang != "xpath" || v1.Score != -1.5 || v1.Labels != 4 {
		t.Fatalf("Version(1) = %+v, %v", v1, ok)
	}
	if _, ok := s.Version("site-a", 3); ok {
		t.Fatal("Version(3) should not exist")
	}
	if _, ok := s.Latest("nope"); ok {
		t.Fatal("Latest on unknown site should fail")
	}
	if got := s.Sites(); len(got) != 2 || got[0] != "site-a" || got[1] != "site-b" {
		t.Fatalf("Sites = %v", got)
	}
	if hist := s.History("site-a"); len(hist) != 2 {
		t.Fatalf("History = %v", hist)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, err := s.Put("", px, store.Meta{}); err == nil {
		t.Fatal("expected error for empty site name")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	c := testCorpus(t)
	s := store.New()
	px, _ := store.Compile(induceXPath(t, c))
	plr, _ := store.Compile(induceLR(t, c))
	if _, err := s.Put("site-a", px, store.Meta{Score: -2, Labels: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("site-a", plr, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("site-b", plr, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wrappers.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// Saving again over an existing file must leave a valid registry
	// (atomic replace, not truncate-then-write).
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s2.Sites(), s.Sites(); len(got) != len(want) {
		t.Fatalf("Sites after load = %v, want %v", got, want)
	}
	latest, ok := s2.Latest("site-a")
	if !ok || latest.Version != 2 {
		t.Fatalf("Latest after load = %+v, %v", latest, ok)
	}
	v1, _ := s2.Version("site-a", 1)
	if v1.Score != -2 || v1.Labels != 4 {
		t.Fatalf("meta lost over save/load: %+v", v1)
	}
	p, err := v1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesNative(t, c, induceXPath(t, c), p)
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".wrapstore-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestStoreLoadRejectsCorruptRegistry(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct{ name, content string }{
		{"not json", `{{{`},
		{"bad format", `{"format":9,"sites":{}}`},
		{"bad rule", `{"format":1,"sites":{"s":[{"site":"s","version":1,"lang":"xpath","rule":"///["}]}}`},
		{"bad version chain", `{"format":1,"sites":{"s":[{"site":"s","version":7,"lang":"lr","lr":{"left":"a","right":"b"}}]}}`},
		{"site mismatch", `{"format":1,"sites":{"s":[{"site":"other","version":1,"lang":"lr","lr":{"left":"a","right":"b"}}]}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := store.Load(write("bad.json", tc.content)); err == nil {
				t.Fatal("expected load error")
			}
		})
	}
	if _, err := store.Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// testScorer builds generic ranking models (mirrors autowrap.GenericModels,
// which the internal packages cannot import).
func testScorer() *rank.Scorer {
	schema := stats.MustKDE([]int{2, 3, 3, 4, 4, 5, 5, 6}, stats.KDEOptions{Support: 64})
	align := stats.MustKDE([]int{0, 0, 0, 1, 1, 2, 3, 5}, stats.KDEOptions{Support: 256})
	return &rank.Scorer{
		Ann: rank.NewAnnotationModel(0.95, 0.30),
		Pub: &rank.PublicationModel{Schema: schema, Align: align},
	}
}

func TestFromBatchStoresWinners(t *testing.T) {
	dict := annotate.NewDictionary("vals", []string{"Alpha", "Beta", "Gamma", "Delta"})
	specs := []engine.SiteSpec{
		{
			Name:      "site-x",
			Corpus:    testCorpus(t),
			Annotator: dict,
			NewInductor: func(c *corpus.Corpus) (wrapper.Inductor, error) {
				return xpinduct.New(c, xpinduct.Options{}), nil
			},
			Config: core.Config{Scorer: testScorer()},
		},
		{
			Name:      "site-y",
			Corpus:    testCorpus(t),
			Annotator: dict,
			NewInductor: func(c *corpus.Corpus) (wrapper.Inductor, error) {
				return lr.New(c, 0), nil
			},
			Config: core.Config{Scorer: testScorer()},
		},
		{
			// A site with no labels is skipped by the engine and must not
			// land in the store.
			Name:      "site-empty",
			Corpus:    testCorpus(t),
			Annotator: annotate.NewDictionary("none", []string{"zzz-not-there"}),
			NewInductor: func(c *corpus.Corpus) (wrapper.Inductor, error) {
				return xpinduct.New(c, xpinduct.Options{}), nil
			},
			Config: core.Config{Scorer: testScorer()},
		},
	}
	batch, err := engine.LearnBatch(context.Background(), specs, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, stored, err := store.FromBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 2 || s.Len() != 2 {
		t.Fatalf("stored %d sites (Len %d), want 2", stored, s.Len())
	}
	for _, site := range []string{"site-x", "site-y"} {
		e, ok := s.Latest(site)
		if !ok {
			t.Fatalf("site %q missing from store", site)
		}
		p, err := e.Compile()
		if err != nil {
			t.Fatal(err)
		}
		// The stored wrapper extracts the record list on a page it has
		// never been applied to as a compiled artifact.
		c := testCorpus(t)
		nodes := p.ApplyPage(c.Pages[1].Root)
		if len(nodes) == 0 {
			t.Fatalf("site %q: stored wrapper extracted nothing", site)
		}
		for _, n := range nodes {
			if txt := strings.TrimSpace(n.Data); txt != "Gamma" && txt != "Delta" {
				t.Fatalf("site %q: extracted unexpected node %q", site, txt)
			}
		}
		if e.Labels == 0 {
			t.Fatalf("site %q: label count not recorded: %+v", site, e)
		}
	}
	if _, ok := s.Latest("site-empty"); ok {
		t.Fatal("skipped site must not be stored")
	}
}

// TestPromoteRollbackLifecycle exercises the staging half of the repair
// loop: Put promotes, PutCandidate stages without flipping serving, and
// Promote/Rollback move the active version explicitly.
func TestPromoteRollbackLifecycle(t *testing.T) {
	c := testCorpus(t)
	s := store.New()
	px, _ := store.Compile(induceXPath(t, c))
	plr, _ := store.Compile(induceLR(t, c))

	if _, ok := s.Active("shop"); ok {
		t.Fatal("empty site reported an active version")
	}
	if _, err := s.Put("shop", px, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if a, ok := s.Active("shop"); !ok || a.Version != 1 {
		t.Fatalf("after Put, active = %+v, %v", a, ok)
	}

	// Staging a candidate must not flip serving.
	cand, err := s.PutCandidate("shop", plr, store.Meta{Score: -1})
	if err != nil {
		t.Fatal(err)
	}
	if cand.Version != 2 {
		t.Fatalf("candidate version = %d, want 2", cand.Version)
	}
	if a, _ := s.Active("shop"); a.Version != 1 {
		t.Fatalf("candidate flipped serving to v%d", a.Version)
	}
	if l, _ := s.Latest("shop"); l.Version != 2 {
		t.Fatalf("Latest = v%d, want the staged candidate", l.Version)
	}

	// Explicit promote flips; rollback reverts to the prior promotion.
	if _, err := s.Promote("shop", 2); err != nil {
		t.Fatal(err)
	}
	if a, _ := s.Active("shop"); a.Version != 2 {
		t.Fatalf("after promote, active = v%d", a.Version)
	}
	back, err := s.Rollback("shop")
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 {
		t.Fatalf("rollback landed on v%d, want 1", back.Version)
	}
	if _, err := s.Rollback("shop"); err == nil {
		t.Fatal("rollback past the first promotion should fail")
	}
	if _, err := s.Promote("shop", 9); err == nil {
		t.Fatal("promoting a missing version should fail")
	}

	// The promotion log survives save/load.
	if _, err := s.Promote("shop", 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := s2.Active("shop"); a.Version != 2 {
		t.Fatalf("active after reload = v%d", a.Version)
	}
	if got := s2.Promotions("shop"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("promotion log after reload = %v", got)
	}
	if back, err := s2.Rollback("shop"); err != nil || back.Version != 1 {
		t.Fatalf("rollback after reload = %+v, %v", back, err)
	}
}

// TestLoadPreLifecycleStoreActivatesLatest checks backward compatibility:
// a registry written before promotion logs existed serves its newest
// version, exactly as it did then.
func TestLoadPreLifecycleStoreActivatesLatest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	old := `{"format":1,"sites":{"s":[
		{"site":"s","version":1,"lang":"lr","lr":{"left":"a","right":"b"}},
		{"site":"s","version":2,"lang":"lr","lr":{"left":"c","right":"d"}}]}}`
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := s.Active("s"); !ok || a.Version != 2 {
		t.Fatalf("pre-lifecycle store active = %+v, %v", a, ok)
	}
}

// TestLoadErrorsNameSiteVersionAndPath pins the debuggability contract: a
// bad stored rule fails at load time naming the file, the site, and the
// version — not just the codec error.
func TestLoadErrorsNameSiteVersionAndPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.json")
	content := `{"format":1,"sites":{"shop-7":[
		{"site":"shop-7","version":1,"lang":"lr","lr":{"left":"a","right":"b"}},
		{"site":"shop-7","version":2,"lang":"xpath","rule":"///["}]}}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := store.Load(path)
	if err == nil {
		t.Fatal("expected load error")
	}
	msg := err.Error()
	for _, want := range []string{path, `"shop-7"`, "v2"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("load error %q does not name %q", msg, want)
		}
	}
	if strings.Count(msg, "store:") != 1 {
		t.Fatalf("load error %q stutters the package prefix", msg)
	}

	// A promotion log pointing at a missing version is named too.
	path2 := filepath.Join(dir, "badlog.json")
	content2 := `{"format":1,"sites":{"s":[{"site":"s","version":1,"lang":"lr","lr":{"left":"a","right":"b"}}]},"promotions":{"s":[3]}}`
	if err := os.WriteFile(path2, []byte(content2), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(path2); err == nil || !strings.Contains(err.Error(), "v3") {
		t.Fatalf("bad promotion log error = %v", err)
	}
}

// TestPutBatchRecordsProfile checks that batch winners carry their
// learn-time health profile into the store.
func TestPutBatchRecordsProfile(t *testing.T) {
	c := testCorpus(t)
	batch, err := engine.LearnBatch(context.Background(), []engine.SiteSpec{{
		Name:   "profiled",
		Corpus: c,
		Labels: valueLabels(t, c),
		NewInductor: func(c *corpus.Corpus) (wrapper.Inductor, error) {
			return xpinduct.New(c, xpinduct.Options{}), nil
		},
		Config: core.Config{Scorer: testScorer()},
	}}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, n, err := store.FromBatch(batch)
	if err != nil || n != 1 {
		t.Fatalf("FromBatch: n=%d err=%v", n, err)
	}
	e, _ := s.Active("profiled")
	if e.Profile == nil {
		t.Fatal("batch winner stored without a profile")
	}
	if e.Profile.Pages != 2 || e.Profile.MeanRecords != 2 || e.Profile.EmptyFrac != 0 {
		t.Fatalf("profile = %+v, want 2 pages x 2 records", e.Profile)
	}
	// The profile survives the wire format.
	path := filepath.Join(t.TempDir(), "p.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := s2.Active("profiled")
	if e2.Profile == nil || e2.Profile.MeanRecords != 2 {
		t.Fatalf("profile lost over save/load: %+v", e2.Profile)
	}
}

// TestCandidateOnlySiteStaysInactiveAcrossReload pins the serving
// invariant through persistence: a site holding only staged (never
// promoted) candidates must not acquire an active version from a
// Save/Load round trip — the pre-lifecycle newest-serves synthesis
// applies only to files with no promotions key at all.
func TestCandidateOnlySiteStaysInactiveAcrossReload(t *testing.T) {
	c := testCorpus(t)
	s := store.New()
	px, _ := store.Compile(induceXPath(t, c))
	if _, err := s.PutCandidate("staged-only", px, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Active("staged-only"); ok {
		t.Fatal("candidate-only site active before save")
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := s2.Active("staged-only"); ok {
		t.Fatalf("reload activated the unpromoted candidate v%d", a.Version)
	}
	if _, ok := s2.Latest("staged-only"); !ok {
		t.Fatal("staged candidate lost over reload")
	}
	// A mixed store keeps the distinction per site.
	if _, err := s.Put("promoted", px, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s3, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Active("staged-only"); ok {
		t.Fatal("mixed store activated the candidate-only site")
	}
	if a, ok := s3.Active("promoted"); !ok || a.Version != 1 {
		t.Fatalf("promoted site active = %+v, %v", a, ok)
	}
}
