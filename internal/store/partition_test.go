package store_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"autowrap/internal/shard"
	"autowrap/internal/store"
)

// fillSites stores n sites with one promoted version each, plus one
// staged candidate on every third site so partitioning has promotion
// state worth preserving.
func fillSites(t *testing.T, s *store.Store, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("site-%03d.example.com", i)
		if _, err := s.Put(names[i], testPortable(), store.Meta{Score: float64(i)}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := s.PutCandidate(names[i], testPortable(), store.Meta{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return names
}

func TestPartitionSplitsDisjointAndComplete(t *testing.T) {
	full := store.New()
	names := fillSites(t, full, 60)
	ring := shard.NewRing(4, 64)

	parts := full.Split(ring, ring.Shards())
	if len(parts) != 4 {
		t.Fatalf("Split returned %d parts, want 4", len(parts))
	}
	seen := make(map[string]int)
	for k, p := range parts {
		for _, site := range p.Sites() {
			if ring.Owner(site) != k {
				t.Fatalf("site %q in partition %d, ring says %d", site, k, ring.Owner(site))
			}
			if prev, dup := seen[site]; dup {
				t.Fatalf("site %q in partitions %d and %d", site, prev, k)
			}
			seen[site] = k
		}
	}
	if len(seen) != len(names) {
		t.Fatalf("partitions cover %d of %d sites", len(seen), len(names))
	}

	// Promotion state survives partitioning: a candidate staged in the full
	// registry is still a candidate in its partition, not serving.
	for _, site := range names {
		p := parts[ring.Owner(site)]
		act, ok := p.Active(site)
		if !ok {
			t.Fatalf("site %q lost its active version in partition", site)
		}
		if act.Version != 1 {
			t.Fatalf("site %q active v%d in partition, want v1", site, act.Version)
		}
	}
	for i, site := range names {
		if i%3 != 0 {
			continue
		}
		p := parts[ring.Owner(site)]
		if latest, _ := p.Latest(site); latest.Version != 2 {
			t.Fatalf("site %q latest v%d in partition, want staged candidate v2", site, latest.Version)
		}
	}
}

func TestMergeRoundTripsSplit(t *testing.T) {
	full := store.New()
	names := fillSites(t, full, 40)
	ring := shard.NewRing(4, 64)

	merged, err := store.Merge(full.Split(ring, ring.Shards())...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != full.Len() {
		t.Fatalf("merged %d sites, want %d", merged.Len(), full.Len())
	}
	for _, site := range names {
		a, aok := full.Active(site)
		b, bok := merged.Active(site)
		if aok != bok || a.Version != b.Version || a.Score != b.Score {
			t.Fatalf("site %q active mismatch after split+merge: %+v/%v vs %+v/%v", site, a, aok, b, bok)
		}
		if len(full.History(site)) != len(merged.History(site)) {
			t.Fatalf("site %q history length changed across split+merge", site)
		}
	}
}

func TestMergeRejectsOverlap(t *testing.T) {
	a, b := store.New(), store.New()
	if _, err := a.Put("dup.example.com", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Put("dup.example.com", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Merge(a, b); err == nil {
		t.Fatal("Merge accepted overlapping partitions; overlap silently drops versions")
	}
}

// TestLoadPartitionMatchesLoadThenPartition pins that the cheap path
// (filtered load, skipped sites never compiled) and the expensive path
// (full load, then in-memory partition) produce the same registry —
// and that every shard's partition sees exactly the sites the ring
// assigns it.
func TestLoadPartitionMatchesLoadThenPartition(t *testing.T) {
	full := store.New()
	names := fillSites(t, full, 50)
	path := filepath.Join(t.TempDir(), "wrappers.json")
	if err := full.Save(path); err != nil {
		t.Fatal(err)
	}
	ring := shard.NewRing(4, 64)

	loaded, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for k := 0; k < ring.Shards(); k++ {
		part, err := store.LoadPartition(path, ring, k)
		if err != nil {
			t.Fatal(err)
		}
		want := loaded.Partition(ring, k)
		if part.Len() != want.Len() {
			t.Fatalf("shard %d: LoadPartition has %d sites, Partition has %d", k, part.Len(), want.Len())
		}
		for _, site := range part.Sites() {
			if ring.Owner(site) != k {
				t.Fatalf("shard %d: LoadPartition kept %q owned by shard %d", k, site, ring.Owner(site))
			}
			a, _ := part.Active(site)
			b, _ := want.Active(site)
			if a.Version != b.Version {
				t.Fatalf("shard %d site %q: active v%d vs v%d", k, site, a.Version, b.Version)
			}
		}
		covered += part.Len()
	}
	if covered != len(names) {
		t.Fatalf("partitions cover %d of %d sites", covered, len(names))
	}
}

func TestLoadPartitionNilRing(t *testing.T) {
	if _, err := store.LoadPartition("nope.json", nil, 0); err == nil {
		t.Fatal("LoadPartition accepted a nil partitioner")
	}
}
