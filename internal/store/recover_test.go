package store_test

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autowrap/internal/chaos"
	"autowrap/internal/lr"
	"autowrap/internal/store"
)

// threeSiteRegistry saves a registry with three healthy sites (one of
// them two versions deep with a staged candidate) and returns its path.
func threeSiteRegistry(t *testing.T) string {
	t.Helper()
	s := store.New()
	for _, site := range []string{"alpha", "beta", "gamma"} {
		if _, err := s.Put(site, &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{
			Profile: &store.Profile{Pages: 4, MeanRecords: 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.PutCandidate("beta", &lr.Compiled{Left: "<i>", Right: "</i>"}, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wrappers.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadRecoveredSkipsCorruptSiteLoadsRest is the regression test the
// chaos harness leans on: after a mid-write corruption poisons one site's
// newest entry, strict Load must refuse the file naming site and version,
// while LoadRecovered must report exactly that site/version and still
// load every other site with its promotion state intact.
func TestLoadRecoveredSkipsCorruptSiteLoadsRest(t *testing.T) {
	path := threeSiteRegistry(t)
	site, version, err := chaos.CorruptStoreEntry(path, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}

	// Strict load refuses the whole file and names the poison.
	if _, err := store.Load(path); err == nil {
		t.Fatal("strict Load accepted a corrupt registry")
	} else if !strings.Contains(err.Error(), site) {
		t.Fatalf("strict Load error does not name site %q: %v", site, err)
	}

	s, bad, err := store.LoadRecovered(path)
	if err != nil {
		t.Fatalf("LoadRecovered failed outright: %v", err)
	}
	if len(bad) != 1 || bad[0].Site != site || bad[0].Version != version {
		t.Fatalf("corrupt entries = %+v, want exactly %s v%d", bad, site, version)
	}
	if bad[0].Err == nil || bad[0].Error() == "" {
		t.Fatalf("corrupt entry carries no cause: %+v", bad[0])
	}
	if _, ok := s.Active(site); ok {
		t.Fatalf("poisoned site %q still has an active version", site)
	}
	want := 2 // three sites minus the poisoned one
	if got := s.Len(); got != want {
		t.Fatalf("recovered %d sites, want %d (all but %s)", got, want, site)
	}
	for _, healthy := range s.Sites() {
		e, ok := s.Active(healthy)
		if !ok {
			t.Fatalf("recovered site %q has no active version", healthy)
		}
		if _, err := e.Compile(); err != nil {
			t.Fatalf("recovered site %q does not compile: %v", healthy, err)
		}
	}
}

// TestLoadRecoveredRejectsEnvelopeDamage pins the fatal half: truncation
// mid-file destroys the JSON envelope, and with no trustworthy site
// boundaries there is nothing to salvage.
func TestLoadRecoveredRejectsEnvelopeDamage(t *testing.T) {
	path := threeSiteRegistry(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadRecovered(path); err == nil {
		t.Fatal("LoadRecovered accepted a truncated registry")
	}
}

// TestLoadRecoveredInconsistentPromotionLog covers the other corruption
// class: a promotion log naming a version that does not exist. The site
// is untrustworthy as a whole and must be skipped, not half-loaded.
func TestLoadRecoveredInconsistentPromotionLog(t *testing.T) {
	path := threeSiteRegistry(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f map[string]json.RawMessage
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	var promos map[string][]int
	if err := json.Unmarshal(f["promotions"], &promos); err != nil {
		t.Fatal(err)
	}
	promos["gamma"] = []int{1, 99}
	f["promotions"], _ = json.Marshal(promos)
	out, _ := json.Marshal(f)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := store.Load(path); err == nil {
		t.Fatal("strict Load accepted an inconsistent promotion log")
	}
	s, bad, err := store.LoadRecovered(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0].Site != "gamma" {
		t.Fatalf("corrupt entries = %+v, want gamma's log", bad)
	}
	var ce store.CorruptEntry
	if !errors.As(error(bad[0]), &ce) {
		t.Fatal("CorruptEntry does not satisfy errors.As")
	}
	if s.Len() != 2 {
		t.Fatalf("recovered %d sites, want 2", s.Len())
	}
	if _, ok := s.Active("gamma"); ok {
		t.Fatal("site with an inconsistent log still serves")
	}
}
