package store_test

import (
	"path/filepath"
	"testing"

	"autowrap/internal/lr"
	"autowrap/internal/store"
	"autowrap/internal/wrapper"
)

func testPortable() wrapper.Portable {
	return &lr.Compiled{Left: `<td class="v">`, Right: `</td>`}
}

// TestEpochSemantics pins the change-notification contract the serving
// dispatcher relies on: every successful mutation of a site bumps its epoch
// by exactly one, other sites' epochs never move, and failed mutations
// leave everything untouched.
func TestEpochSemantics(t *testing.T) {
	s := store.New()
	if got := s.Epoch("shop"); got != 0 {
		t.Fatalf("unknown site epoch = %d, want 0", got)
	}
	if got := s.Generation(); got != 0 {
		t.Fatalf("fresh store generation = %d, want 0", got)
	}

	// Put bumps the written site only.
	if _, err := s.Put("shop", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch("shop"); got != 1 {
		t.Fatalf("after Put: epoch = %d, want 1", got)
	}
	if got := s.Epoch("other"); got != 0 {
		t.Fatalf("after Put(shop): epoch(other) = %d, want 0", got)
	}

	// PutCandidate is a mutation too (the dispatcher may not care, but a
	// repair dashboard does).
	if _, err := s.PutCandidate("shop", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch("shop"); got != 2 {
		t.Fatalf("after PutCandidate: epoch = %d, want 2", got)
	}

	// Promote bumps; promoting the candidate (v2) then rolling back.
	if _, err := s.Promote("shop", 2); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch("shop"); got != 3 {
		t.Fatalf("after Promote: epoch = %d, want 3", got)
	}
	if _, err := s.Rollback("shop"); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch("shop"); got != 4 {
		t.Fatalf("after Rollback: epoch = %d, want 4", got)
	}

	// Promoting the already-active version is a recorded serving decision:
	// it still bumps, so subscribers re-check and find nothing changed.
	if _, err := s.Promote("shop", 1); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch("shop"); got != 5 {
		t.Fatalf("after re-Promote of active: epoch = %d, want 5", got)
	}

	// Failed mutations never bump.
	if _, err := s.Promote("shop", 99); err == nil {
		t.Fatal("Promote of missing version succeeded")
	}
	if _, err := s.Put("", testPortable(), store.Meta{}); err == nil {
		t.Fatal("Put with empty site succeeded")
	}
	if _, err := s.Rollback("nosuch"); err == nil {
		t.Fatal("Rollback of unknown site succeeded")
	}
	if got := s.Epoch("shop"); got != 5 {
		t.Fatalf("after failed mutations: epoch = %d, want 5", got)
	}

	// Generation totals the bumps across sites.
	if _, err := s.Put("other", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation(); got != 6 {
		t.Fatalf("generation = %d, want 6", got)
	}
	if got := s.Epoch("other"); got != 1 {
		t.Fatalf("epoch(other) = %d, want 1", got)
	}
}

// TestEpochNotPersisted pins that epochs are process-local: a reloaded
// registry starts over at 0 — consumers rebuild their caches from scratch
// after a Load, so carrying old counters across would only invite stale
// comparisons.
func TestEpochNotPersisted(t *testing.T) {
	s := store.New()
	if _, err := s.Put("shop", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote("shop", 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Epoch("shop"); got != 0 {
		t.Fatalf("epoch after reload = %d, want 0", got)
	}
	if got := re.Generation(); got != 0 {
		t.Fatalf("generation after reload = %d, want 0", got)
	}
}
