// Partitioned registries: the store-side half of the sharded serving
// plane. A Partitioner (in practice *shard.Ring) decides which shard
// owns each site; LoadPartition reads only that shard's slice of a saved
// registry, Partition carves an in-memory one, and Merge reassembles the
// disjoint pieces for persistence — the shard servers each hold their
// own partition, but the file on disk stays one registry.
package store

import "fmt"

// Partitioner assigns every site name to a shard. Implementations must
// be pure functions of the site's bytes: the same site always maps to
// the same shard, on every call, in every process. *shard.Ring satisfies
// this.
type Partitioner interface {
	Owner(site string) int
}

// LoadPartition reads the registry at path keeping only the sites the
// partitioner assigns to shardID. Skipped sites are not validated or
// compiled, so loading a 1/N partition costs ~1/N of a full Load — this
// is what lets N shard workers boot from one big registry without each
// paying the whole file's compile bill. The envelope (format version,
// JSON shape) is still fully checked, and kept sites get the same eager
// validation as Load.
func LoadPartition(path string, ring Partitioner, shardID int) (*Store, error) {
	if ring == nil {
		return nil, fmt.Errorf("store: load partition: nil partitioner")
	}
	s, _, err := loadFiltered(path, func(site string) bool { return ring.Owner(site) == shardID }, false)
	return s, err
}

// Partition returns a new registry holding only the sites the
// partitioner assigns to shardID: versions and promotion logs copied,
// epochs reset (consumers of a fresh partition rebuild their runtimes,
// exactly as after Load). The receiver is unchanged.
func (s *Store) Partition(ring Partitioner, shardID int) *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := New()
	for site, vs := range s.sites {
		if ring.Owner(site) != shardID {
			continue
		}
		out.sites[site] = append([]Entry(nil), vs...)
		if log := s.promotion[site]; len(log) > 0 {
			out.promotion[site] = append([]int(nil), log...)
		}
	}
	return out
}

// Split partitions the registry into ring-many disjoint registries,
// indexed by shard ID. Every site lands in exactly one piece;
// Merge(Split(s)...) round-trips.
func (s *Store) Split(ring Partitioner, shards int) []*Store {
	out := make([]*Store, shards)
	for k := range out {
		out[k] = s.Partition(ring, k)
	}
	return out
}

// Merge combines disjoint registries into one — the persistence path for
// a sharded fleet, whose shards each mutate their own partition but save
// a single file. A site appearing in more than one input is an error:
// partitions are disjoint by construction, so overlap means the caller
// merged registries from different rings, and silently picking a winner
// would drop versions. Epochs in the result start at zero.
func Merge(parts ...*Store) (*Store, error) {
	out := New()
	for _, p := range parts {
		if p == nil {
			continue
		}
		p.mu.RLock()
		for site, vs := range p.sites {
			if _, dup := out.sites[site]; dup {
				p.mu.RUnlock()
				return nil, fmt.Errorf("store: merge: site %q present in more than one partition", site)
			}
			out.sites[site] = append([]Entry(nil), vs...)
			if log := p.promotion[site]; len(log) > 0 {
				out.promotion[site] = append([]int(nil), log...)
			}
		}
		p.mu.RUnlock()
	}
	return out, nil
}

// SitesByShard summarizes ownership: for each shard in [0, shards), the
// sorted site names the partitioner assigns to it out of this registry.
func (s *Store) SitesByShard(ring Partitioner, shards int) [][]string {
	out := make([][]string, shards)
	for _, site := range s.Sites() { // Sites() sorts, so each bucket stays sorted
		k := ring.Owner(site)
		if k >= 0 && k < shards {
			out[k] = append(out[k], site)
		}
	}
	return out
}
