// Package store is the durable half of the learn/serve split: a versioned
// registry of compiled wrappers keyed by site, a stable JSON wire format
// for single wrappers and whole registries, and atomic save/load so a
// serving process can pick up a learning run's winners after a restart.
// Versions are immutable and append-only — re-learning a site adds a new
// version, it never rewrites history — which is what makes a stored wrapper
// a durable artifact rather than a cache entry.
//
// Which version serves is a separate, explicit decision: each site carries
// a promotion log (Put promotes its new version immediately; PutCandidate
// stages one without promoting), Active names the serving version, and
// Promote/Rollback move it. The drift-repair loop in internal/drift leans
// on this split — a re-learned candidate is staged, validated on held-out
// pages, and only then promoted, with the incumbent one Rollback away.
// Entries also record a learn-time health Profile (per-page record counts
// on the training corpus), the baseline drift detection compares against.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"autowrap/internal/engine"
	"autowrap/internal/wrapper"
)

// Profile is the learn-time extraction footprint of a stored wrapper: what
// "healthy" looked like on the pages the wrapper was induced from. A drift
// monitor compares serving-time behaviour against it — a record-count
// collapse or a surge of empty pages relative to the profile is the signal
// that the site's template changed underneath the wrapper.
type Profile struct {
	// Pages is the number of training pages the profile was measured over.
	Pages int `json:"pages"`
	// MeanRecords is the mean record count over all profiled pages.
	MeanRecords float64 `json:"mean_records"`
	// EmptyFrac is the fraction of profiled pages with zero records.
	EmptyFrac float64 `json:"empty_frac"`
}

// Entry is one immutable stored wrapper version for a site.
type Entry struct {
	Site    string  `json:"site"`
	Version int     `json:"version"` // 1-based, ascending per site
	Lang    string  `json:"lang"`
	Rule    string  `json:"rule,omitempty"`
	LR      *LRRule `json:"lr,omitempty"`
	// Score is the ranking score the wrapper won with (0 when unknown).
	Score float64 `json:"score,omitempty"`
	// Labels counts the noisy labels the site was learned from.
	Labels int `json:"labels,omitempty"`
	// Profile is the learn-time health profile, when recorded; drift
	// monitoring is calibrated against it.
	Profile *Profile `json:"profile,omitempty"`
}

// Compile builds the runnable form of the entry. Entries loaded from disk
// were already validated by Load; compiling is cheap (one parse).
func (e *Entry) Compile() (wrapper.Portable, error) {
	w := wireWrapper{Format: FormatVersion, Lang: e.Lang, Rule: e.Rule, LR: e.LR}
	p, err := w.compile()
	if err != nil {
		return nil, fmt.Errorf("store: site %q v%d: %w", e.Site, e.Version, err)
	}
	return p, nil
}

// Store is a concurrency-safe versioned wrapper registry keyed by site.
// The zero value is not usable; call New or Load.
//
// Every site additionally carries a promotion log: the ordered history of
// versions that were made the serving ("active") version. Put promotes the
// new version immediately (newest-serves, the pre-lifecycle behaviour);
// PutCandidate appends a version without promoting it, which is how the
// drift-repair loop stages an unvalidated re-learned wrapper — serving
// flips only on an explicit Promote, and Rollback reverts to the
// previously promoted version.
type Store struct {
	mu        sync.RWMutex
	sites     map[string][]Entry // ascending Version order
	promotion map[string][]int   // per-site promotion log; last = active
	epoch     map[string]uint64  // per-site change counter; see Epoch
	gen       uint64             // global change counter; see Generation
}

// New returns an empty registry.
func New() *Store {
	return &Store{
		sites:     make(map[string][]Entry),
		promotion: make(map[string][]int),
		epoch:     make(map[string]uint64),
	}
}

// Epoch is the site's change counter: 0 until the site is first written,
// then incremented by exactly one on every successful mutation touching the
// site — Put, PutCandidate, Promote and Rollback. A Promote of the
// already-active version is a recorded no-op and still bumps the epoch (the
// caller asked for a serving decision; subscribers get to notice it), while
// failed mutations never do. A serving layer that cached a compiled runtime
// at epoch e needs to re-read the registry exactly when Epoch(site) != e —
// this is the in-memory change-notification hook that lets a dispatcher
// hot-swap on Promote/Rollback without watching the JSON file.
//
// Epochs are process-local: they are not persisted by Save, and a freshly
// Loaded registry starts every site at 0 again (its consumers rebuild from
// scratch anyway).
func (s *Store) Epoch(site string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch[site]
}

// Generation is the registry-wide change counter: the sum of all epoch
// bumps. A poller watching many sites checks Generation first and only
// walks per-site epochs when it moved.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// bump records a mutation of the site. Called with mu held for writing.
func (s *Store) bump(site string) {
	s.epoch[site]++
	s.gen++
}

// Meta carries optional provenance recorded with a stored wrapper.
type Meta struct {
	Score  float64
	Labels int
	// Profile is the learn-time health profile (optional but recommended:
	// without it a drift monitor can only watch for empties and failures,
	// not record-count collapse).
	Profile *Profile
}

// Put compiles-down and appends a new version of the site's wrapper, makes
// it the active (serving) version, and returns the stored entry. The
// previous versions stay addressable and the promotion is recorded, so a
// later Rollback can revert to what served before.
func (s *Store) Put(site string, p wrapper.Portable, meta Meta) (Entry, error) {
	return s.put(site, p, meta, true)
}

// PutCandidate appends a new version of the site's wrapper without
// promoting it: the active version keeps serving. This is the staging half
// of the repair loop — the candidate gets a durable version number and can
// be validated against held-out pages, then either promoted or left in
// history as a rejected attempt.
func (s *Store) PutCandidate(site string, p wrapper.Portable, meta Meta) (Entry, error) {
	return s.put(site, p, meta, false)
}

func (s *Store) put(site string, p wrapper.Portable, meta Meta, promote bool) (Entry, error) {
	if site == "" {
		return Entry{}, fmt.Errorf("store: empty site name")
	}
	w, err := wireOf(p)
	if err != nil {
		return Entry{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := Entry{
		Site:    site,
		Version: len(s.sites[site]) + 1,
		Lang:    w.Lang,
		Rule:    w.Rule,
		LR:      w.LR,
		Score:   meta.Score,
		Labels:  meta.Labels,
		Profile: meta.Profile,
	}
	s.sites[site] = append(s.sites[site], e)
	if promote {
		s.promotion[site] = append(s.promotion[site], e.Version)
	}
	s.bump(site)
	return e, nil
}

// Active returns the site's serving version: the most recently promoted
// one. A site always has an active version as soon as it has any promoted
// version; candidates staged with PutCandidate never show up here until
// they are promoted.
func (s *Store) Active(site string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	log := s.promotion[site]
	if len(log) == 0 {
		return Entry{}, false
	}
	return s.sites[site][log[len(log)-1]-1], true
}

// Promote makes an existing stored version the site's serving version,
// appending to the promotion log. Promoting the already-active version is
// a no-op. This is the only way a staged candidate starts serving — the
// repair loop calls it strictly after held-out validation.
func (s *Store) Promote(site string, version int) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.sites[site]
	if version < 1 || version > len(vs) {
		return Entry{}, fmt.Errorf("store: promote %s: no version %d (have %d)",
			site, version, len(vs))
	}
	log := s.promotion[site]
	if len(log) == 0 || log[len(log)-1] != version {
		s.promotion[site] = append(log, version)
	}
	s.bump(site)
	return vs[version-1], nil
}

// Rollback reverts the site to the version promoted before the current
// one and returns it. It fails when there is no earlier promotion to
// return to — rollback never guesses.
func (s *Store) Rollback(site string) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	log := s.promotion[site]
	if len(log) < 2 {
		return Entry{}, fmt.Errorf("store: rollback %s: no previous promoted version (log %v)",
			site, log)
	}
	s.promotion[site] = log[:len(log)-1]
	s.bump(site)
	return s.sites[site][log[len(log)-2]-1], nil
}

// Promotions returns the site's promotion log, oldest first; the last
// element is the active version.
func (s *Store) Promotions(site string) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]int(nil), s.promotion[site]...)
}

// Latest returns the newest version stored for the site.
func (s *Store) Latest(site string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.sites[site]
	if len(vs) == 0 {
		return Entry{}, false
	}
	return vs[len(vs)-1], true
}

// Version returns one specific stored version (1-based).
func (s *Store) Version(site string, version int) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.sites[site]
	if version < 1 || version > len(vs) {
		return Entry{}, false
	}
	return vs[version-1], true
}

// History returns every stored version of the site, oldest first.
func (s *Store) History(site string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Entry(nil), s.sites[site]...)
}

// Sites lists the registered site names, sorted.
func (s *Store) Sites() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sites))
	for name := range s.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len counts registered sites (not versions).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sites)
}

// ProfileOf summarizes per-page record counts into a learn-time Profile.
// Serving pages extracted through the winning wrapper on the training
// corpus is exactly what the wrapper "should" keep doing; drift monitoring
// measures departures from this footprint.
func ProfileOf(recordsPerPage []int) *Profile {
	p := &Profile{Pages: len(recordsPerPage)}
	if p.Pages == 0 {
		return p
	}
	total, empties := 0, 0
	for _, n := range recordsPerPage {
		total += n
		if n == 0 {
			empties++
		}
	}
	p.MeanRecords = float64(total) / float64(p.Pages)
	p.EmptyFrac = float64(empties) / float64(p.Pages)
	return p
}

// PutBatch stores the winners of an engine batch run: for every learned
// site with a best-ranked wrapper, compile it and append a version named by
// the site's spec, recording the learn-time health profile (the winner's
// per-page record counts on its training corpus). Sites that failed, were
// skipped, or whose winner has no portable form are left out; their compile
// errors are joined into err without blocking the rest (mirroring the
// engine's per-site isolation).
func (s *Store) PutBatch(batch *engine.BatchResult) (stored int, err error) {
	var errs []error
	for i := range batch.Sites {
		r := &batch.Sites[i]
		if r.Err != nil || r.Skipped || r.Result == nil || r.Result.Best == nil {
			continue
		}
		p, cerr := Compile(r.Result.Best.Wrapper)
		if cerr != nil {
			errs = append(errs, fmt.Errorf("site %q: %w", r.Name, cerr))
			continue
		}
		meta := Meta{Score: r.Result.Best.Score.Total}
		if r.Labels != nil {
			meta.Labels = r.Labels.Count()
		}
		if r.Corpus != nil {
			meta.Profile = ProfileOf(r.Corpus.PerPageCounts(r.Result.Best.Wrapper.Extract()))
		}
		if _, perr := s.Put(r.Name, p, meta); perr != nil {
			errs = append(errs, perr)
			continue
		}
		stored++
	}
	return stored, errors.Join(errs...)
}

// FromBatch builds a fresh registry from a batch run's winners.
func FromBatch(batch *engine.BatchResult) (*Store, int, error) {
	s := New()
	n, err := s.PutBatch(batch)
	return s, n, err
}

// storeFile is the on-disk format: versioned envelope around the registry.
// Promotions is always written (even empty), so its absence identifies a
// pre-lifecycle file; Load then synthesizes a one-entry log activating
// each site's newest version, which is exactly what those files meant
// (newest-serves). A present-but-sparse map is authoritative: a site with
// versions and no log entry holds only unpromoted candidates and must not
// serve.
type storeFile struct {
	Format     int                `json:"format"`
	Sites      map[string][]Entry `json:"sites"`
	Promotions map[string][]int   `json:"promotions"`
}

// Save writes the registry to path atomically: marshal to a temp file in
// the same directory, then rename over the target, so a crash mid-write
// can never leave a truncated registry where a good one was.
func (s *Store) Save(path string) error {
	data, err := s.Encode()
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wrapstore-*.json")
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save: %w", err)
	}
	return nil
}

// Load reads a registry saved by Save and validates it eagerly: format
// version, per-site version numbering, promotion-log consistency, and —
// crucially — that every stored rule still compiles. A corrupted or
// hand-edited store fails at load time with the file path and the
// offending site + version named, not at serve time with a bare codec
// error.
func Load(path string) (*Store, error) {
	s, _, err := loadFiltered(path, nil, false)
	return s, err
}

// CorruptEntry names one site LoadRecovered skipped and why. Version is
// the first version that failed validation (0 when the corruption is in
// the site's promotion log rather than an entry).
type CorruptEntry struct {
	Site    string
	Version int
	Err     error
}

func (c CorruptEntry) Error() string {
	return fmt.Sprintf("store: site %q v%d: %v", c.Site, c.Version, c.Err)
}

func (c CorruptEntry) Unwrap() error { return c.Err }

// LoadRecovered reads a registry tolerating per-site corruption: a site
// with a malformed entry (bad key, non-compiling rule) or an inconsistent
// promotion log is skipped whole — versions are an append-only chain, so
// one poisoned link makes the site's history untrustworthy — and reported
// as a CorruptEntry naming the site and version, while every healthy site
// loads normally. This is the recovery path for a registry damaged by a
// mid-write crash or hostile mutation: strict Load refuses the whole
// file, LoadRecovered salvages what provably still compiles.
//
// Envelope-level damage (unreadable file, invalid JSON, unknown format)
// is still fatal: with no trustworthy site boundaries there is nothing to
// salvage entry-by-entry.
func LoadRecovered(path string) (*Store, []CorruptEntry, error) {
	return loadFiltered(path, nil, true)
}

// loadFiltered is Load with an optional site filter and a corruption
// policy. When keep is non-nil, sites it rejects are skipped entirely —
// not stored, and (the point of partitioned loading) not compiled, so a
// shard's load cost is proportional to the partition it owns, not to the
// whole registry; promotion logs for skipped sites are skipped with them.
// When tolerate is true, per-site corruption skips the site and records a
// CorruptEntry instead of failing the load.
func loadFiltered(path string, keep func(site string) bool, tolerate bool) (*Store, []CorruptEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: load: %w", err)
	}
	return decodeFiltered(data, path, keep, tolerate)
}

// decodeFiltered decodes the storeFile wire form with loadFiltered's
// filter and corruption policy; source names the origin in errors.
func decodeFiltered(data []byte, source string, keep func(site string) bool, tolerate bool) (*Store, []CorruptEntry, error) {
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("store: load %s: %w", source, err)
	}
	if f.Format != FormatVersion {
		return nil, nil, fmt.Errorf("store: load %s: unsupported format %d (want %d)",
			source, f.Format, FormatVersion)
	}
	s := New()
	var bad []CorruptEntry
sites:
	for site, vs := range f.Sites {
		if keep != nil && !keep(site) {
			continue
		}
		for i := range vs {
			e := &vs[i]
			if e.Site != site || e.Version != i+1 {
				if tolerate {
					bad = append(bad, CorruptEntry{Site: site, Version: i + 1,
						Err: fmt.Errorf("entry carries key %q v%d", e.Site, e.Version)})
					continue sites
				}
				return nil, nil, fmt.Errorf("store: load %s: site %q v%d: entry carries key %q v%d",
					source, site, i+1, e.Site, e.Version)
			}
			w := wireWrapper{Format: FormatVersion, Lang: e.Lang, Rule: e.Rule, LR: e.LR}
			if _, err := w.compile(); err != nil {
				if tolerate {
					bad = append(bad, CorruptEntry{Site: site, Version: e.Version, Err: err})
					continue sites
				}
				return nil, nil, fmt.Errorf("store: load %s: site %q v%d (%s rule %q): %w",
					source, site, e.Version, e.Lang, e.Rule, err)
			}
		}
		s.sites[site] = vs
	}
	for site, log := range f.Promotions {
		if keep != nil && !keep(site) {
			continue
		}
		vs, ok := s.sites[site]
		if !ok {
			if tolerate {
				if !skippedSite(bad, site) {
					bad = append(bad, CorruptEntry{Site: site,
						Err: fmt.Errorf("promotion log for unknown site")})
				}
				continue
			}
			return nil, nil, fmt.Errorf("store: load %s: promotion log for unknown site %q",
				source, site)
		}
		logOK := true
		for _, v := range log {
			if v < 1 || v > len(vs) {
				if tolerate {
					// The log and the version chain disagree; neither half
					// of the site can be trusted.
					delete(s.sites, site)
					bad = append(bad, CorruptEntry{Site: site,
						Err: fmt.Errorf("promotion log names v%d, have %d version(s)", v, len(vs))})
					logOK = false
					break
				}
				return nil, nil, fmt.Errorf("store: load %s: site %q: promotion log names v%d, have %d version(s)",
					source, site, v, len(vs))
			}
		}
		if logOK && len(log) > 0 {
			s.promotion[site] = log
		}
	}
	// Only a pre-lifecycle file (no promotions key at all) means
	// newest-serves. When the key is present, a site without a log entry
	// holds only unpromoted candidates — synthesizing an active version
	// for it would flip serving to an unvalidated wrapper.
	if f.Promotions == nil {
		for site, vs := range s.sites {
			if len(vs) > 0 {
				s.promotion[site] = []int{len(vs)}
			}
		}
	}
	return s, bad, nil
}

// skippedSite reports whether the site was already recorded as corrupt.
func skippedSite(bad []CorruptEntry, site string) bool {
	for _, c := range bad {
		if c.Site == site {
			return true
		}
	}
	return false
}
