// Package store is the durable half of the learn/serve split: a versioned
// registry of compiled wrappers keyed by site, a stable JSON wire format
// for single wrappers and whole registries, and atomic save/load so a
// serving process can pick up a learning run's winners after a restart.
// Versions are immutable and append-only — re-learning a site adds a new
// version, it never rewrites history — which is what makes a stored wrapper
// a durable artifact rather than a cache entry.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"autowrap/internal/engine"
	"autowrap/internal/wrapper"
)

// Entry is one immutable stored wrapper version for a site.
type Entry struct {
	Site    string  `json:"site"`
	Version int     `json:"version"` // 1-based, ascending per site
	Lang    string  `json:"lang"`
	Rule    string  `json:"rule,omitempty"`
	LR      *LRRule `json:"lr,omitempty"`
	// Score is the ranking score the wrapper won with (0 when unknown).
	Score float64 `json:"score,omitempty"`
	// Labels counts the noisy labels the site was learned from.
	Labels int `json:"labels,omitempty"`
}

// Compile builds the runnable form of the entry. Entries loaded from disk
// were already validated by Load; compiling is cheap (one parse).
func (e *Entry) Compile() (wrapper.Portable, error) {
	w := wireWrapper{Format: FormatVersion, Lang: e.Lang, Rule: e.Rule, LR: e.LR}
	p, err := w.compile()
	if err != nil {
		return nil, fmt.Errorf("store: site %q v%d: %w", e.Site, e.Version, err)
	}
	return p, nil
}

// Store is a concurrency-safe versioned wrapper registry keyed by site.
// The zero value is not usable; call New or Load.
type Store struct {
	mu    sync.RWMutex
	sites map[string][]Entry // ascending Version order
}

// New returns an empty registry.
func New() *Store {
	return &Store{sites: make(map[string][]Entry)}
}

// Meta carries optional provenance recorded with a stored wrapper.
type Meta struct {
	Score  float64
	Labels int
}

// Put compiles-down and appends a new version of the site's wrapper,
// returning the stored entry. The previous versions stay addressable.
func (s *Store) Put(site string, p wrapper.Portable, meta Meta) (Entry, error) {
	if site == "" {
		return Entry{}, fmt.Errorf("store: empty site name")
	}
	w, err := wireOf(p)
	if err != nil {
		return Entry{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := Entry{
		Site:    site,
		Version: len(s.sites[site]) + 1,
		Lang:    w.Lang,
		Rule:    w.Rule,
		LR:      w.LR,
		Score:   meta.Score,
		Labels:  meta.Labels,
	}
	s.sites[site] = append(s.sites[site], e)
	return e, nil
}

// Latest returns the newest version stored for the site.
func (s *Store) Latest(site string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.sites[site]
	if len(vs) == 0 {
		return Entry{}, false
	}
	return vs[len(vs)-1], true
}

// Version returns one specific stored version (1-based).
func (s *Store) Version(site string, version int) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.sites[site]
	if version < 1 || version > len(vs) {
		return Entry{}, false
	}
	return vs[version-1], true
}

// History returns every stored version of the site, oldest first.
func (s *Store) History(site string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Entry(nil), s.sites[site]...)
}

// Sites lists the registered site names, sorted.
func (s *Store) Sites() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sites))
	for name := range s.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len counts registered sites (not versions).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sites)
}

// PutBatch stores the winners of an engine batch run: for every learned
// site with a best-ranked wrapper, compile it and append a version named by
// the site's spec. Sites that failed, were skipped, or whose winner has no
// portable form are left out; their compile errors are joined into err
// without blocking the rest (mirroring the engine's per-site isolation).
func (s *Store) PutBatch(batch *engine.BatchResult) (stored int, err error) {
	var errs []error
	for i := range batch.Sites {
		r := &batch.Sites[i]
		if r.Err != nil || r.Skipped || r.Result == nil || r.Result.Best == nil {
			continue
		}
		p, cerr := Compile(r.Result.Best.Wrapper)
		if cerr != nil {
			errs = append(errs, fmt.Errorf("site %q: %w", r.Name, cerr))
			continue
		}
		meta := Meta{Score: r.Result.Best.Score.Total}
		if r.Labels != nil {
			meta.Labels = r.Labels.Count()
		}
		if _, perr := s.Put(r.Name, p, meta); perr != nil {
			errs = append(errs, perr)
			continue
		}
		stored++
	}
	return stored, errors.Join(errs...)
}

// FromBatch builds a fresh registry from a batch run's winners.
func FromBatch(batch *engine.BatchResult) (*Store, int, error) {
	s := New()
	n, err := s.PutBatch(batch)
	return s, n, err
}

// storeFile is the on-disk format: versioned envelope around the registry.
type storeFile struct {
	Format int                `json:"format"`
	Sites  map[string][]Entry `json:"sites"`
}

// Save writes the registry to path atomically: marshal to a temp file in
// the same directory, then rename over the target, so a crash mid-write
// can never leave a truncated registry where a good one was.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	f := storeFile{Format: FormatVersion, Sites: s.sites}
	data, err := json.MarshalIndent(f, "", "  ")
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wrapstore-*.json")
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save: %w", err)
	}
	return nil
}

// Load reads a registry saved by Save and validates it eagerly: format
// version, per-site version numbering, and — crucially — that every stored
// rule still compiles, so a corrupted or hand-edited store fails at load
// time with the offending site named, not at serve time.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("store: load %s: %w", path, err)
	}
	if f.Format != FormatVersion {
		return nil, fmt.Errorf("store: load %s: unsupported format %d (want %d)",
			path, f.Format, FormatVersion)
	}
	s := New()
	for site, vs := range f.Sites {
		for i := range vs {
			e := &vs[i]
			if e.Site != site || e.Version != i+1 {
				return nil, fmt.Errorf("store: load %s: site %q entry %d has key %q v%d",
					path, site, i, e.Site, e.Version)
			}
			if _, err := e.Compile(); err != nil {
				return nil, fmt.Errorf("store: load %s: %w", path, err)
			}
		}
		s.sites[site] = vs
	}
	return s, nil
}
