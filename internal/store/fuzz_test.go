package store_test

import (
	"testing"

	"autowrap/internal/store"
)

// FuzzUnmarshalWrapper fuzzes the wrapper wire format: arbitrary input must
// either decode into a wrapper whose re-marshaled form round-trips
// byte-stably, or fail with an error — it must never panic. The seeds cover
// the two wrapper languages, the envelope's edge cases (wrong format
// version, missing LR payload, unknown language), and raw junk.
func FuzzUnmarshalWrapper(f *testing.F) {
	seeds := []string{
		// Valid envelopes.
		`{"format":1,"lang":"xpath","rule":"//td[@class=\"v\"]"}`,
		`{"format":1,"lang":"lr","lr":{"left":"<td class=\"v\">","right":"</td>"}}`,
		`{"format":1,"lang":"lr","rule":"LR(a,b)","lr":{"left":"a","right":"b"}}`,
		// Malformed envelopes that must error, not panic.
		`{"format":2,"lang":"xpath","rule":"//td"}`,
		`{"format":1,"lang":"lr"}`,
		`{"format":1,"lang":"csspath","rule":"td.v"}`,
		`{"format":1,"lang":"xpath","rule":""}`,
		`{"format":1,"lang":"xpath","rule":"//td[@class="}`,
		`{"format":1,"lang":"xpath","rule":"//td[9999999999999999999]"}`,
		`{}`,
		`null`,
		`[]`,
		`{"format":1`,
		"\x00\xff\xfe",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := store.UnmarshalWrapper(data)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		// Decoded wrappers must survive the canonical round trip.
		wire, err := store.MarshalWrapper(p)
		if err != nil {
			t.Fatalf("decoded wrapper does not marshal: %v\ninput: %q", err, data)
		}
		p2, err := store.UnmarshalWrapper(wire)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v\nwire: %s", err, wire)
		}
		if p.Lang() != p2.Lang() || p.Rule() != p2.Rule() {
			t.Fatalf("round trip drifted: %s %q -> %s %q",
				p.Lang(), p.Rule(), p2.Lang(), p2.Rule())
		}
		wire2, err := store.MarshalWrapper(p2)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if string(wire) != string(wire2) {
			t.Fatalf("wire form not stable: %s vs %s", wire, wire2)
		}
	})
}
