// Package filestore is the original durability story behind the
// store.Backend seam: one atomic JSON file holding the whole registry,
// rewritten in full on every lifecycle event. Load and LoadPartition
// delegate to store.Load/store.LoadPartition, and persists go through
// store.Save, so the on-disk format and its validation semantics are
// byte-for-byte the pre-backend ones — a registry written by an old
// build loads here and vice versa.
//
// Persistence is snapshot-style: the backend holds live references to
// the partitions Attach registers (a single server attaches its one
// store at shard 0; a fleet attaches every shard's partition) and, on
// any append, merges them and saves the result. That makes an append
// O(registry) — the cost profile logstore exists to fix — but only the
// mutating event's shard triggers it, and the merge+save runs under the
// backend's own mutex, never a serving lock.
package filestore

import (
	"fmt"
	"os"
	"sync"

	"autowrap/internal/store"
)

// Backend persists the registry as one atomic JSON file at Path.
type Backend struct {
	path string

	mu    sync.Mutex
	parts map[int]*store.Store
}

// Open returns a file backend over path. The file need not exist yet;
// Load on a missing file yields an empty registry, and the first append
// creates it.
func Open(path string) (*Backend, error) {
	if path == "" {
		return nil, fmt.Errorf("filestore: empty path")
	}
	return &Backend{path: path, parts: make(map[int]*store.Store)}, nil
}

// Path returns the registry file's path.
func (b *Backend) Path() string { return b.path }

// Load reads the full registry with store.Load's eager validation. A
// missing file is an empty registry, not an error.
func (b *Backend) Load() (*store.Store, error) {
	if _, err := os.Stat(b.path); os.IsNotExist(err) {
		return store.New(), nil
	}
	return store.Load(b.path)
}

// LoadPartition reads one shard's slice of the registry via
// store.LoadPartition (skipped sites are never compiled).
func (b *Backend) LoadPartition(ring store.Partitioner, shardID int) (*store.Store, error) {
	if _, err := os.Stat(b.path); os.IsNotExist(err) {
		return store.New(), nil
	}
	return store.LoadPartition(b.path, ring, shardID)
}

// Attach registers a shard's live partition; subsequent appends render
// the merged registry from every attached partition.
func (b *Backend) Attach(shardID int, part *store.Store) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parts[shardID] = part
}

// AppendEntry persists a new stored version by saving the full merged
// registry (the event itself is implied by the attached state).
func (b *Backend) AppendEntry(shardID int, e store.Entry, promote bool) error {
	return b.save()
}

// AppendPromotion persists a serving-decision event by saving the full
// merged registry.
func (b *Backend) AppendPromotion(shardID int, site string, op store.Op, version int) error {
	return b.save()
}

// Snapshot saves the full merged registry.
func (b *Backend) Snapshot() error { return b.save() }

// Close releases the backend. The file is already durable after every
// append; Close only drops the partition references.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parts = nil
	return nil
}

func (b *Backend) save() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.parts == nil {
		return fmt.Errorf("filestore: backend closed")
	}
	if len(b.parts) == 0 {
		return fmt.Errorf("filestore: no partitions attached")
	}
	parts := make([]*store.Store, 0, len(b.parts))
	for _, p := range b.parts {
		parts = append(parts, p)
	}
	merged, err := store.Merge(parts...)
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	return merged.Save(b.path)
}

var _ store.Backend = (*Backend)(nil)
