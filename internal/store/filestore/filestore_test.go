package filestore_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autowrap/internal/lr"
	"autowrap/internal/shard"
	"autowrap/internal/store"
	"autowrap/internal/store/filestore"
)

func put(t *testing.T, s *store.Store, site string) store.Entry {
	t.Helper()
	e, err := s.Put(site, &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFileBackendWritesSaveBytes pins the compatibility contract: an
// append through the backend leaves on disk exactly the bytes
// Store.Save would have written for the attached state.
func TestFileBackendWritesSaveBytes(t *testing.T) {
	dir := t.TempDir()
	be, err := filestore.Open(filepath.Join(dir, "wrappers.json"))
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	be.Attach(0, st)
	e := put(t, st, "a.example.com")
	if err := be.AppendEntry(0, e, true); err != nil {
		t.Fatal(err)
	}
	viaBackend, err := os.ReadFile(be.Path())
	if err != nil {
		t.Fatal(err)
	}
	direct := filepath.Join(dir, "direct.json")
	if err := st.Save(direct); err != nil {
		t.Fatal(err)
	}
	viaSave, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaBackend, viaSave) {
		t.Fatalf("backend bytes diverge from Save:\n%s\n--- vs ---\n%s", viaBackend, viaSave)
	}
	// And the old loader reads it back unchanged.
	loaded, err := store.Load(be.Path())
	if err != nil {
		t.Fatal(err)
	}
	if act, ok := loaded.Active("a.example.com"); !ok || act.Version != 1 {
		t.Fatalf("round-trip lost the active version: %+v %v", act, ok)
	}
}

// TestFileBackendMissingFile pins that a fresh backend over a missing
// file is an empty registry, for both full and partitioned loads.
func TestFileBackendMissingFile(t *testing.T) {
	be, err := filestore.Open(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := be.Load()
	if err != nil || st.Len() != 0 {
		t.Fatalf("Load of missing file: %d sites, err %v", st.Len(), err)
	}
	part, err := be.LoadPartition(shard.NewRing(2, 16), 1)
	if err != nil || part.Len() != 0 {
		t.Fatalf("LoadPartition of missing file: %d sites, err %v", part.Len(), err)
	}
}

// TestFileBackendMergesAllPartitions pins fleet persistence: an append
// on one shard saves the merged registry across every attached
// partition, never a lone slice.
func TestFileBackendMergesAllPartitions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wrappers.json")
	be, err := filestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := store.New(), store.New()
	be.Attach(0, p0)
	be.Attach(1, p1)
	put(t, p0, "zero.example.com")
	e := put(t, p1, "one.example.com")
	if err := be.AppendEntry(1, e, true); err != nil {
		t.Fatal(err)
	}
	onDisk, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.Len() != 2 {
		t.Fatalf("persisted %d sites, want the merged 2: %v", onDisk.Len(), onDisk.Sites())
	}
}

// TestFileBackendClosed pins that appends after Close fail loudly
// instead of silently dropping durability.
func TestFileBackendClosed(t *testing.T) {
	be, err := filestore.Open(filepath.Join(t.TempDir(), "wrappers.json"))
	if err != nil {
		t.Fatal(err)
	}
	be.Attach(0, store.New())
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
	if err := be.Snapshot(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("append on closed backend: %v", err)
	}
}
